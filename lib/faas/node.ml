module Engine = Gh_sim.Engine
module Time_ns = Gh_sim.Time_ns
module Trace = Gh_sim.Trace
module Span = Gh_sim.Span
module Metrics = Gh_sim.Metrics
module Rng = Gh_sim.Rng
module Timeseries = Gh_sim.Timeseries
module Slo = Gh_sim.Slo
module Flight_recorder = Gh_sim.Flight_recorder

type config = {
  total_cores : int;
  memory_mb : int;
  idle_timeout : Time_ns.t;
  dispatch_ns : Time_ns.t;
  recovery : Invoker.recovery option;
  admission : Admission.config;
  brownout : Brownout.config option;
  scrub : Container.scrub option;
}

let default_config =
  {
    total_cores = 4;
    memory_mb = 8_192;
    idle_timeout = Time_ns.of_sec 60.0;
    dispatch_ns = Time_ns.of_us 800.0;
    recovery = None;
    admission = Admission.unbounded;
    brownout = None;
    scrub = None;
  }

(* Per-request latency samples kept per function. Far above what any test
   or experiment reads exactly (they stay below capacity, where the
   reservoir is an exact newest-first list), yet bounded, so week-long
   open-loop runs can't grow without limit. The histogram uses [All]
   sampling with the pre-registry reservoir seed, so sample lists are
   bit-identical to the raw-reservoir revisions. *)
let e2e_reservoir_capacity = 8192

type slot = {
  container : Container.t;
  memory_mb : int;
  mutable epoch : int;  (* bumped on every dispatch; guards eviction *)
  mutable alive : bool;
}

type pending = {
  req : Request.t;
  submitted : Time_ns.t;
  on_complete : (Request.t -> Strategy_intf.invocation -> unit) option;
}

type fn_stats = {
  fn_name : string;
  completed : int;
  cold_starts : int;
  evictions : int;
  queue_len : int;
  containers : int;
  e2e_ms : float list;
  timeouts : int;
  failed_requests : int;
  quarantined : int;
  poisonings : int;
  shed : int;
  expired : int;
  deadline_misses : int;
  queue_high_water : int;
  cancelled : int;
}

(* Every per-function count lives in the node's metrics registry; the pool
   holds the looked-up handles so the hot path never re-hashes a name. *)
type pool = {
  fn_name : string;
  spec : Function_model.spec;
  mutable slots : slot list;
  queue : pending Admission.t;
  completed : Metrics.counter;
  cold_starts : Metrics.counter;
  evictions : Metrics.counter;
  e2e : Metrics.histogram;  (* milliseconds *)
  timeouts : Metrics.counter;
  failed_requests : Metrics.counter;
  quarantined : Metrics.counter;
  poisonings : Metrics.counter;
  brownout_shed : Metrics.counter;  (* arrivals dropped by the priority floor *)
  deadline_misses : Metrics.counter;  (* completions delivered past deadline *)
  cancelled : Metrics.counter;  (* queued hedge losers removed by the cluster *)
  verified_blocks : Metrics.counter;  (* snapshot blocks audited at restore *)
  verify_failures : Metrics.counter;  (* restore-time hash-audit failures *)
  scrub_slices : Metrics.counter;  (* clean idle-scrub slices executed *)
  scrubbed_blocks : Metrics.counter;  (* blocks the idle scrubber checked *)
  scrub_corruptions : Metrics.counter;  (* corruptions the scrubber caught *)
  attempts : (int, int) Hashtbl.t;  (* req id -> tries, recovery only *)
}

type t = {
  engine : Engine.t;
  config : config;
  trace : Trace.t option;
  spans : Span.t option;
  metrics : Metrics.t;
  prefix : string;
  rng : Rng.t option;
  (* Windowed observability, all clock-read-only: series roll on ticks
     the node already takes, SLOs classify completions, the recorder
     freezes the pre-failure window on failure edges. *)
  series : Timeseries.t option;
  slos : Slo.t list;
  recorder : Flight_recorder.t option;
  make_strategy : string -> Function_model.spec -> Strategy_intf.t;
  pools : (string, pool) Hashtbl.t;
  brownout : Brownout.t option;
  (* Node-wide gauges mirror the three mutable fields below (the source of
     truth for control decisions) into the registry. *)
  g_used_mb : Metrics.gauge;
  g_high_water_mb : Metrics.gauge;
  g_busy : Metrics.gauge;
  mutable used_mb : int;
  mutable high_water_mb : int;
  mutable busy : int;
  mutable next_container_id : int;
  mutable on_shed : Admission.reason -> Request.t -> unit;
}

let create ?trace ?spans ?metrics ?(metrics_prefix = "") ?rng ?series ?(slos = []) ?recorder
    engine config ~make_strategy =
  let metrics = match metrics with Some m -> m | None -> Metrics.create () in
  let g name = Metrics.gauge metrics (metrics_prefix ^ "node." ^ name) in
  {
    engine;
    config;
    trace;
    spans;
    metrics;
    prefix = metrics_prefix;
    rng;
    series;
    slos;
    recorder;
    make_strategy;
    pools = Hashtbl.create 16;
    brownout = Option.map (fun cfg -> Brownout.create ?trace cfg) config.brownout;
    g_used_mb = g "used_mb";
    g_high_water_mb = g "high_water_mb";
    g_busy = g "cores_busy";
    used_mb = 0;
    high_water_mb = 0;
    busy = 0;
    next_container_id = 0;
    on_shed = (fun _ _ -> ());
  }

let metrics t = t.metrics

let trace_emitf t ~what fmt =
  Trace.emitf_opt t.trace ~at:(Engine.now t.engine) ~category:"node" ~what fmt

let sync_gauges t =
  Metrics.set t.g_used_mb (float_of_int t.used_mb);
  Metrics.set t.g_high_water_mb (float_of_int t.high_water_mb);
  Metrics.set t.g_busy (float_of_int t.busy)

let fn_metric t name field = Printf.sprintf "%snode.%s.%s" t.prefix name field

(* One completion into the windowed series and the SLOs. Reads the clock
   it is handed, schedules nothing. The per-step restore series give
   each restore phase its own quantile window, so a regression in (say)
   page-copy alone is visible without un-averaging the total. *)
let observe_completion t pool ~now ~e2e_ms (inv : Strategy_intf.invocation) =
  (match t.series with
  | Some ts ->
      Timeseries.tick ts ~now;
      Timeseries.observe ts ~now (fn_metric t pool.fn_name "e2e_ms") e2e_ms;
      (match inv.Strategy_intf.breakdown with
      | Some b ->
          List.iter
            (fun (label, ms) ->
              Timeseries.observe ts ~now
                (fn_metric t pool.fn_name ("restore." ^ label ^ "_ms"))
                ms)
            (Groundhog_core.Breakdown.steps_ms b)
      | None -> ())
  | None -> ());
  let ok =
    match inv.Strategy_intf.outcome with
    | Strategy_intf.Completed | Strategy_intf.Poisoned -> true
    | Strategy_intf.Crashed | Strategy_intf.Hung -> false
  in
  List.iter
    (fun slo ->
      Slo.record_completion slo ~now ~ok ~e2e_ms
        ~cold:(inv.Strategy_intf.cold_ns > 0);
      Slo.tick slo ~now)
    t.slos

(* A request the node gave up on (shed, brownout, retry budget): bad for
   availability and latency alike — the caller never got an answer. *)
let observe_failure t ~now =
  List.iter
    (fun slo ->
      Slo.record_completion slo ~now ~ok:false ~e2e_ms:Float.infinity ~cold:false;
      Slo.tick slo ~now)
    t.slos

let record_failure_edge t ~reason ~detail =
  match t.recorder with
  | Some r ->
      ignore
        (Flight_recorder.snapshot r ~now:(Engine.now t.engine) ~node:t.prefix ~reason
           ~detail ())
  | None -> ()

let register t ~name spec =
  if Hashtbl.mem t.pools name then invalid_arg "Node.register: duplicate function";
  let pool_on_shed = ref (fun (_ : Admission.reason) (_ : Request.t) (_ : pending) -> ()) in
  let c field = Metrics.counter t.metrics (fn_metric t name field) in
  let pool =
    {
      fn_name = name;
      spec;
      slots = [];
      queue =
        Admission.create ?trace:t.trace ~label:name
          ~on_shed:(fun r rq p -> !pool_on_shed r rq p)
          t.config.admission;
      completed = c "completed";
      cold_starts = c "cold_starts";
      evictions = c "evictions";
      e2e =
        Metrics.histogram t.metrics
          (fn_metric t name "e2e_ms")
          ~capacity:e2e_reservoir_capacity
          ~seed:(Hashtbl.hash ("node-e2e", name))
          ~sampling:Metrics.All;
      timeouts = c "timeouts";
      failed_requests = c "failed_requests";
      quarantined = c "quarantined";
      poisonings = c "poisonings";
      brownout_shed = c "brownout_shed";
      deadline_misses = c "deadline_misses";
      cancelled = c "cancelled";
      verified_blocks = c "verified_blocks";
      verify_failures = c "verify_failures";
      scrub_slices = c "scrub_slices";
      scrubbed_blocks = c "scrubbed_blocks";
      scrub_corruptions = c "scrub_corruptions";
      attempts = Hashtbl.create 16;
    }
  in
  (pool_on_shed :=
     fun reason req _pending ->
       Hashtbl.remove pool.attempts req.Request.id;
       trace_emitf t ~what:"shed" "%s req#%d (%s)" name req.Request.id
         (Admission.reason_name reason);
       observe_failure t ~now:(Engine.now t.engine);
       (match t.spans with
       | Some sp ->
           let now = Engine.now t.engine in
           Span.phase_stop sp ~at:now ~req_id:req.Request.id ~name:"node-queue" ();
           Span.finish_root sp ~at:now
             ~attrs:[ ("outcome", "shed"); ("reason", Admission.reason_name reason) ]
             ~req_id:req.Request.id ()
       | None -> ());
       t.on_shed reason req);
  Hashtbl.replace t.pools name pool

(* Memory a container of this function will pin: the process footprint plus
   whatever the freshly built strategy's manager buffers (the full snapshot
   for eager Groundhog, ~nothing for BASE or incremental mode). *)
let slot_memory_mb spec (strategy : Strategy_intf.t) =
  let pages = spec.Function_model.mapped_pages + strategy.Strategy_intf.snapshot_pages () in
  max 1 (pages * 4096 / 1048576)

(* Push the controller's level to every live container's strategy. A level
   change is rare (hysteresis), so the full sweep is cheap. *)
let apply_brownout t b =
  let degraded = Brownout.defer_restores b in
  trace_emitf t ~what:"brownout" "%s" (Brownout.level_name (Brownout.level b));
  Hashtbl.iter
    (fun _ pool ->
      List.iter
        (fun s -> (Container.strategy s.container).Strategy_intf.degrade degraded)
        pool.slots)
    t.pools

let rec dispatch t pool slot pending =
  (match t.brownout with
  | Some b ->
      (* Queueing delay is the overload signal: sampled at dispatch, fed to
         the hysteretic controller. *)
      let delay = Engine.now t.engine - pending.submitted in
      if Brownout.observe ~at:(Engine.now t.engine) b delay then apply_brownout t b
  | None -> ());
  slot.epoch <- slot.epoch + 1;
  t.busy <- t.busy + 1;
  sync_gauges t;
  (match t.spans with
  | Some sp ->
      Span.phase_stop sp ~at:(Engine.now t.engine) ~req_id:pending.req.Request.id
        ~name:"node-queue" ()
  | None -> ());
  Container.submit ~dispatch_ns:t.config.dispatch_ns slot.container pending.req
    ~on_response:(fun rq inv ->
      let now = Engine.now t.engine in
      let e2e_ms = Time_ns.to_ms (now - pending.submitted) in
      Metrics.incr pool.completed;
      Metrics.observe pool.e2e e2e_ms;
      observe_completion t pool ~now ~e2e_ms inv;
      (match rq.Request.deadline with
      | Some d when now > d -> Metrics.incr pool.deadline_misses
      | _ -> ());
      (match inv.Strategy_intf.verify with
      | Strategy_intf.Unverified -> ()
      | Strategy_intf.Verified blocks -> Metrics.incr ~by:blocks pool.verified_blocks
      | Strategy_intf.Verify_failed _ -> Metrics.incr pool.verify_failures);
      (match t.spans with
      | Some sp ->
          Span.finish_root sp ~at:now
            ~attrs:
              [
                ("outcome", Strategy_intf.outcome_name inv.Strategy_intf.outcome);
                ("e2e_ns", string_of_int (now - pending.submitted));
              ]
            ~req_id:rq.Request.id ()
      | None -> ());
      match pending.on_complete with Some f -> f rq inv | None -> ())

(* A container just went idle: feed it, retarget the freed core, or start
   the eviction clock. *)
and on_slot_idle t pool slot =
  t.busy <- t.busy - 1;
  sync_gauges t;
  let now = Engine.now t.engine in
  Admission.purge_expired pool.queue ~now;
  if not (Admission.is_empty pool.queue) then begin
    if t.busy < t.config.total_cores then
      match Admission.take pool.queue ~now with
      | Some (_, pending) -> dispatch t pool slot pending
      | None -> ()
    (* else: no core after all (shouldn't happen: one just freed) — the
       backlog stays queued. *)
  end
  else begin
    pump_other_pools t;
    let epoch = slot.epoch in
    Engine.schedule t.engine ~after:t.config.idle_timeout (fun () ->
        if slot.alive && slot.epoch = epoch && Container.is_idle slot.container then
          evict t pool slot)
  end

and evict t pool slot =
  slot.alive <- false;
  pool.slots <- List.filter (fun s -> s != slot) pool.slots;
  (* The strategy's process and snapshot go away with the slot; killing it
     releases whatever it holds elsewhere (notably a dedup registration). *)
  (Container.strategy slot.container).Strategy_intf.kill ();
  Metrics.incr pool.evictions;
  t.used_mb <- t.used_mb - slot.memory_mb;
  sync_gauges t;
  trace_emitf t ~what:"evict" "%s (-%d MB)" pool.fn_name slot.memory_mb;
  (* Freed memory may unblock a queued cold start elsewhere. *)
  pump_other_pools t

(* Quarantine: the container retired itself after repeated recovery
   failures. Its in-flight episode started with a dispatch, so the core is
   handed back here (the counterpart of [on_slot_idle]); memory too. *)
and on_slot_retired t pool slot =
  slot.alive <- false;
  pool.slots <- List.filter (fun s -> s != slot) pool.slots;
  Metrics.incr pool.quarantined;
  record_failure_edge t ~reason:"quarantine" ~detail:pool.fn_name;
  t.used_mb <- t.used_mb - slot.memory_mb;
  t.busy <- t.busy - 1;
  sync_gauges t;
  trace_emitf t ~what:"quarantine" "%s (-%d MB)" pool.fn_name slot.memory_mb;
  pump_pool t pool;
  pump_other_pools t

(* A hung request was killed: the container replaces itself (still holding
   its core); the request retries from the queue under backoff, up to the
   configured attempt budget. *)
and on_slot_failure t recovery pool (_slot : slot) failure =
  match failure with
  | Container.Poisoned_restore _ ->
      (* Response already delivered; the container cold-restarts itself.
         (Counted only under a recovery config, matching the era when the
         handler was not installed without one.) *)
      record_failure_edge t ~reason:"poisoned" ~detail:pool.fn_name;
      if recovery <> None then Metrics.incr pool.poisonings
  | Container.Corrupt_snapshot msg ->
      (* The idle scrubber caught a bad snapshot block before any request
         was served from it. The failing container was idle — its core was
         already handed back — but its rebuild (or retirement) runs on a
         core, so claim one; the recovery's terminal idle/retire transition
         releases it again. *)
      record_failure_edge t ~reason:"scrub-corruption" ~detail:msg;
      Metrics.incr pool.scrub_corruptions;
      t.busy <- t.busy + 1;
      sync_gauges t
  | Container.Timed_out req -> (
      match recovery with
      | None -> ()
      | Some r ->
          Metrics.incr pool.timeouts;
          let tries =
            match Hashtbl.find_opt pool.attempts req.Request.id with Some n -> n | None -> 1
          in
          if tries >= r.Invoker.max_attempts then begin
            Hashtbl.remove pool.attempts req.Request.id;
            Metrics.incr pool.failed_requests;
            observe_failure t ~now:(Engine.now t.engine);
            trace_emitf t ~what:"give-up" "%s req#%d after %d tries" pool.fn_name
              req.Request.id tries;
            match t.spans with
            | Some sp ->
                Span.finish_root sp ~at:(Engine.now t.engine)
                  ~attrs:[ ("outcome", "failed") ]
                  ~req_id:req.Request.id ()
            | None -> ()
          end
          else begin
            Hashtbl.replace pool.attempts req.Request.id (tries + 1);
            let delay = Backoff.delay r.Invoker.retry_backoff ?rng:t.rng ~attempt:tries in
            Engine.schedule t.engine ~after:delay (fun () ->
                let now = Engine.now t.engine in
                if
                  Admission.admit pool.queue ~now req
                    { req; submitted = now; on_complete = None }
                then
                  match t.spans with
                  | Some sp ->
                      Span.phase_start sp ~at:now ~req_id:req.Request.id ~name:"node-queue"
                        ~cat:"queue" ();
                      pump_pool t pool
                  | None -> pump_pool t pool
                else pump_pool t pool)
          end)

(* Create a new container for [pool] if a core and memory allow; the new
   container pays its initialization on its first request. *)
and try_cold_start t pool =
  if t.busy >= t.config.total_cores then None
  else begin
    let strategy = t.make_strategy pool.fn_name pool.spec in
    let memory_mb = slot_memory_mb pool.spec strategy in
    if t.used_mb + memory_mb > t.config.memory_mb then None
    else begin
      let strategy = Invoker.with_cold_start strategy in
      (* A container born under brownout starts degraded. *)
      (match t.brownout with
      | Some b when Brownout.defer_restores b -> strategy.Strategy_intf.degrade true
      | _ -> ());
      let id = t.next_container_id in
      t.next_container_id <- id + 1;
      let container_recovery, rebuild =
        match t.config.recovery with
        | None ->
            (* Passive: hangs wedge their container, poisoned restores
               retire it — fail closed, no replacement (pre-recovery
               behaviour, and bit-identical in fault-free runs). *)
            ( Some
                {
                  Container.default_recovery with
                  Container.timeout_ns = None;
                  quarantine_after = max_int;
                },
              None )
        | Some r ->
            ( Some r.Invoker.container,
              (* The rebuild pays its init during [Replacing], so the raw
                 (not cold-start-wrapped) strategy is wanted here. *)
              Some
                (fun () ->
                  match t.make_strategy pool.fn_name pool.spec with
                  | s -> Ok s
                  | exception Failure msg -> Error msg) )
      in
      let container =
        Container.create ?trace:t.trace ?spans:t.spans ?recovery:container_recovery ?rebuild
          ?rng:t.rng ?scrub:t.config.scrub t.engine ~id strategy
      in
      let slot = { container; memory_mb; epoch = 0; alive = true } in
      Container.set_on_idle container (fun _ -> on_slot_idle t pool slot);
      Container.set_on_failure container (fun _ failure ->
          on_slot_failure t t.config.recovery pool slot failure);
      Container.set_on_scrub container (fun _ blocks ->
          Metrics.incr pool.scrub_slices;
          Metrics.incr ~by:blocks pool.scrubbed_blocks);
      Container.set_on_retired container (fun _ -> on_slot_retired t pool slot);
      pool.slots <- slot :: pool.slots;
      Metrics.incr pool.cold_starts;
      t.used_mb <- t.used_mb + memory_mb;
      t.high_water_mb <- max t.high_water_mb t.used_mb;
      sync_gauges t;
      trace_emitf t ~what:"cold-start" "%s (+%d MB)" pool.fn_name memory_mb;
      Some slot
    end
  end

and pump_pool t pool =
  let progress = ref true in
  while
    !progress
    &&
    (Admission.purge_expired pool.queue ~now:(Engine.now t.engine);
     not (Admission.is_empty pool.queue))
  do
    progress := false;
    let idle =
      List.find_opt (fun s -> s.alive && Container.is_idle s.container) pool.slots
    in
    let now = Engine.now t.engine in
    match idle with
    | Some slot when t.busy < t.config.total_cores -> (
        match Admission.take pool.queue ~now with
        | Some (_, pending) ->
            dispatch t pool slot pending;
            progress := true
        | None -> ())
    | Some _ -> ()
    | None ->
        (* Brownout prefers waiting for a warm container over paying a cold
           start — unless the pool has none at all, in which case a cold
           start is the only route to progress. *)
        let suppress =
          match t.brownout with
          | Some b -> Brownout.suppress_cold_starts b && pool.slots <> []
          | None -> false
        in
        if not suppress then begin
          match try_cold_start t pool with
          | Some slot -> (
              match Admission.take pool.queue ~now with
              | Some (_, pending) ->
                  dispatch t pool slot pending;
                  progress := true
              | None -> ())
          | None -> ()
        end
  done

and pump_other_pools t = Hashtbl.iter (fun _ pool -> pump_pool t pool) t.pools

let submit ?on_complete t ~name req =
  let pool =
    match Hashtbl.find_opt t.pools name with
    | Some p -> p
    | None -> raise Not_found
  in
  let now = Engine.now t.engine in
  (match t.series with Some ts -> Timeseries.tick ts ~now | None -> ());
  (match t.spans with
  | Some sp ->
      ignore
        (Span.ensure_root sp ~at:now ~req_id:req.Request.id
           ~attrs:[ ("principal", req.Request.principal.Principal.name); ("fn", name) ]
           ())
  | None -> ());
  match t.brownout with
  | Some b when Brownout.should_shed b req.Request.principal ->
      (* Priority shed happens before the queue ever sees the request. *)
      Metrics.incr pool.brownout_shed;
      observe_failure t ~now;
      trace_emitf t ~what:"shed" "%s req#%d (brownout, priority %d)" name req.Request.id
        (Principal.priority req.Request.principal);
      (match t.spans with
      | Some sp ->
          Span.finish_root sp ~at:now
            ~attrs:[ ("outcome", "shed"); ("reason", "brownout") ]
            ~req_id:req.Request.id ()
      | None -> ());
      t.on_shed Admission.Brownout req
  | _ ->
      if Admission.admit pool.queue ~now req { req; submitted = now; on_complete } then begin
        (match t.spans with
        | Some sp ->
            Span.phase_start sp ~at:now ~req_id:req.Request.id ~name:"node-queue" ~cat:"queue"
              ()
        | None -> ());
        pump_pool t pool
      end

(* Hedge-loser cancellation: remove a still-queued request silently (no
   shed accounting, no shed hook — it was served elsewhere). Returns false
   when the request is not queued here (already executing or unknown), in
   which case it runs to completion and the cluster discards the response. *)
let cancel t ~name ~req_id =
  match Hashtbl.find_opt t.pools name with
  | None -> false
  | Some pool -> (
      match Admission.cancel pool.queue ~req_id with
      | None -> false
      | Some (_ : pending) ->
          Hashtbl.remove pool.attempts req_id;
          Metrics.incr pool.cancelled;
          trace_emitf t ~what:"cancel" "%s req#%d (hedge loser)" name req_id;
          (match t.spans with
          | Some sp ->
              Span.phase_stop sp ~at:(Engine.now t.engine) ~req_id ~name:"node-queue" ()
          | None -> ());
          true)

(* Idle warm containers for [name] — the snapshot-warm-aware placement
   signal: a dispatch here skips both the cold start and the queue. *)
let warm_idle t ~name =
  match Hashtbl.find_opt t.pools name with
  | None -> 0
  | Some pool ->
      List.fold_left
        (fun n s -> if s.alive && Container.is_idle s.container then n + 1 else n)
        0 pool.slots

let set_on_shed t f = t.on_shed <- f
let brownout_level t = Option.map Brownout.level t.brownout
let brownout_escalations t =
  match t.brownout with Some b -> Brownout.escalations b | None -> 0

let stats t =
  Hashtbl.fold
    (fun _ pool acc ->
      ({
         fn_name = pool.fn_name;
         completed = Metrics.counter_value pool.completed;
         cold_starts = Metrics.counter_value pool.cold_starts;
         evictions = Metrics.counter_value pool.evictions;
         queue_len = Admission.length pool.queue;
         containers = List.length pool.slots;
         e2e_ms = Metrics.values pool.e2e;
         timeouts = Metrics.counter_value pool.timeouts;
         failed_requests = Metrics.counter_value pool.failed_requests;
         quarantined = Metrics.counter_value pool.quarantined;
         poisonings = Metrics.counter_value pool.poisonings;
         shed = Admission.shed_count pool.queue + Metrics.counter_value pool.brownout_shed;
         expired = Admission.expired_count pool.queue;
         deadline_misses = Metrics.counter_value pool.deadline_misses;
         queue_high_water = Admission.high_water pool.queue;
         cancelled = Metrics.counter_value pool.cancelled;
       }
        : fn_stats)
      :: acc)
    t.pools []
  |> List.sort (fun (a : fn_stats) (b : fn_stats) -> compare a.fn_name b.fn_name)

let memory_used_mb t = t.used_mb
let memory_high_water_mb t = t.high_water_mb
let cores_busy t = t.busy
let total_cold_starts t =
  Hashtbl.fold (fun _ p n -> n + Metrics.counter_value p.cold_starts) t.pools 0

let total_evictions t =
  Hashtbl.fold (fun _ p n -> n + Metrics.counter_value p.evictions) t.pools 0

let total_quarantined t =
  Hashtbl.fold (fun _ p n -> n + Metrics.counter_value p.quarantined) t.pools 0

let total_shed t =
  Hashtbl.fold
    (fun _ p n ->
      n + Admission.shed_count p.queue + Metrics.counter_value p.brownout_shed)
    t.pools 0

let total_expired t =
  Hashtbl.fold (fun _ p n -> n + Admission.expired_count p.queue) t.pools 0

let total_deadline_misses t =
  Hashtbl.fold (fun _ p n -> n + Metrics.counter_value p.deadline_misses) t.pools 0
