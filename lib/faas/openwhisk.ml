type config = {
  n_cores : int;
  dispatch_ns : Gh_sim.Time_ns.t;
  overhead : Controller.overhead_model;
  seed : int;
}

let default_config =
  {
    n_cores = 4;
    dispatch_ns = Gh_sim.Time_ns.of_us 800.0;
    overhead = Controller.default_overhead;
    seed = 42;
  }

type t = {
  engine : Gh_sim.Engine.t;
  controller : Controller.t;
  invoker : Invoker.t;
  services : Services.t;
  rng : Gh_sim.Rng.t;
}

let deploy ?trace ?spans ?series ?slos ?ttl_ns ?admission ?scrub config ~make_strategy =
  let engine = Gh_sim.Engine.create () in
  let rng = Gh_sim.Rng.create config.seed in
  let invoker =
    Invoker.create ?trace ?spans ?admission ?scrub engine ~n_containers:config.n_cores
      ~dispatch_ns:config.dispatch_ns ~make_strategy
  in
  let controller =
    Controller.create ~overhead:config.overhead ?ttl_ns ?spans ?series ?slos engine ~rng
      invoker
  in
  { engine; controller; invoker; services = Services.create (); rng }
