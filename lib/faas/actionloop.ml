module Account = Gh_sim.Account

type message = { request : Request.t; payload_kb : int }

type t = {
  rt : Runtime.t;
  inbox : message Queue.t;
  mutable delivered : int;
  mutable delivered_dirty : int;
  mutable io_ns : int;  (* cumulative interposition copy cost, both ways *)
}

let create rt = { rt; inbox = Queue.create (); delivered = 0; delivered_dirty = 0; io_ns = 0 }

let copy_cost_ns (rt : Runtime.t) ~kb =
  rt.Runtime.proxy_fixed_ns + (kb * rt.Runtime.proxy_per_kb_ns)

let deliver t acct ~clean (m : message) =
  if not clean then t.delivered_dirty <- t.delivered_dirty + 1;
  let cost = copy_cost_ns t.rt ~kb:m.payload_kb in
  Account.charge acct cost;
  t.io_ns <- t.io_ns + cost;
  t.delivered <- t.delivered + 1;
  m.request

let offer t acct ~clean req =
  let m = { request = req; payload_kb = req.Request.input_kb } in
  if clean && Queue.is_empty t.inbox then begin
    ignore (deliver t acct ~clean m);
    `Delivered
  end
  else begin
    Queue.push m t.inbox;
    `Buffered
  end

let drain t acct ~clean =
  if not clean then []
  else begin
    let out = ref [] in
    while not (Queue.is_empty t.inbox) do
      out := deliver t acct ~clean (Queue.pop t.inbox) :: !out
    done;
    List.rev !out
  end

(* The response rides the already-open pipe: per-KB copy, no per-message
   wrapper setup (that was paid on the input side). *)
let return_output t acct ~output_kb =
  let cost = output_kb * t.rt.Runtime.proxy_per_kb_ns in
  Account.charge acct cost;
  t.io_ns <- t.io_ns + cost

let io_total_ns t = t.io_ns
let buffered t = Queue.length t.inbox
let delivered t = t.delivered
let delivered_while_dirty t = t.delivered_dirty
