(** A multi-tenant invoker node: many functions, per-function container
    pools, cold starts, idle eviction, and a memory budget.

    The single-function {!Invoker} reproduces the paper's measurement setup
    (a fixed pool, cold starts excluded). This module models the
    surrounding reality of §2: containers are created on demand (paying
    initialization on the first request's critical path), reused while
    warm, shut down after an idle timeout, and bounded by the node's
    memory. A Groundhog container costs more memory than an insecure one —
    its manager holds the snapshot buffer — so isolation also taxes
    container {e density}; the incremental snapshot mode (§5.5) largely
    removes that tax.

    Scheduling: a request for function F goes to an idle warm container of
    F if one exists; otherwise a new container is created when both a core
    and enough memory are free; otherwise the request queues per function
    through an {!Admission} buffer — unbounded FIFO by default
    (bit-identical to the pre-overload-protection node), bounded with a
    shedding policy when configured. Cores are occupied only while a
    container is busy or restoring; memory is held for a container's whole
    lifetime.

    Overload protection: requests whose deadline has passed are shed at
    admission and purged before every dispatch (never occupying a core or
    restore); an optional {!Brownout} controller watches queueing delay
    and degrades service — deferring strategies' post-completion restore
    work, preferring warm containers over cold starts, finally shedding
    low-priority arrivals — recovering hysteretically. *)

type config = {
  total_cores : int;
  memory_mb : int;  (** Budget for containers + manager buffers. *)
  idle_timeout : Gh_sim.Time_ns.t;  (** Idle containers are shut down. *)
  dispatch_ns : Gh_sim.Time_ns.t;
  recovery : Invoker.recovery option;
      (** [Some r]: hung requests are killed at [r]'s container timeout and
          retried under backoff (at most [r.max_attempts] tries), poisoned
          containers are cold-restarted holding their core, and repeat
          offenders are quarantined (core + memory freed). [None]: hangs
          wedge their container and poisoned containers are retired — fail
          closed, no replacement. *)
  admission : Admission.config;
      (** Per-function queue bound + shedding policy; default
          {!Admission.unbounded}. *)
  brownout : Brownout.config option;
      (** [Some cfg] enables the graceful-degradation controller; [None]
          (default) disables it entirely. *)
  scrub : Container.scrub option;
      (** [Some cfg] enables idle-time snapshot scrubbing in every
          container (see {!Container.scrub}). A corruption the scrubber
          finds fails the container through the recovery pipeline before
          any request is served from the bad snapshot; the per-function
          counters [scrub_slices], [scrubbed_blocks] and
          [scrub_corruptions] land in the metrics registry. [None]
          (default) disables scrubbing. *)
}

val default_config : config
(** 4 cores, 8 GiB, 60 s idle timeout, no recovery, unbounded admission,
    no brownout, no scrubbing. *)

type t

type fn_stats = {
  fn_name : string;
  completed : int;
  cold_starts : int;
  evictions : int;
  queue_len : int;
  containers : int;  (** Currently alive. *)
  e2e_ms : float list;
      (** Per-request latency incl. queueing, newest first. Bounded: a
          uniform reservoir sample past 8192 requests. *)
  timeouts : int;  (** Hang timeouts fired for this function. *)
  failed_requests : int;  (** Abandoned after the retry budget. *)
  quarantined : int;  (** Containers permanently retired. *)
  poisonings : int;  (** Failed restores that triggered a cold restart. *)
  shed : int;  (** Dropped: queue overflow + brownout priority shed. *)
  expired : int;  (** Dropped: deadline passed (on arrival or queued). *)
  deadline_misses : int;  (** Completions delivered after their deadline. *)
  queue_high_water : int;  (** Largest backlog ever queued. *)
  cancelled : int;  (** Queued hedge losers removed by {!cancel}. *)
}

val create :
  ?trace:Gh_sim.Trace.t ->
  ?spans:Gh_sim.Span.t ->
  ?metrics:Gh_sim.Metrics.t ->
  ?metrics_prefix:string ->
  ?rng:Gh_sim.Rng.t ->
  ?series:Gh_sim.Timeseries.t ->
  ?slos:Gh_sim.Slo.t list ->
  ?recorder:Gh_sim.Flight_recorder.t ->
  Gh_sim.Engine.t ->
  config ->
  make_strategy:(string -> Function_model.spec -> Strategy_intf.t) ->
  t
(** [make_strategy name spec] builds a fresh strategy instance for one new
    container of function [name] — with recovery enabled it is also the
    cold-restart rebuild path (a [Failure] it raises becomes a failed
    rebuild attempt). [rng] jitters the recovery backoff delays.

    [spans] records request-scoped spans: a root per request (attrs
    [principal], [fn]), a ["node-queue"] phase while queued, the
    containers' exec/restore trees, and root closure with [outcome] and
    [e2e_ns] at response (or shed/give-up). [metrics] supplies the
    registry holding every per-function counter and latency histogram
    (names [<prefix>node.<fn>.<field>]) plus node-wide gauges; a private
    registry is created when omitted, so counting behavior never changes —
    {!stats} reads the same numbers either way.

    [series] collects windowed samples — per-function end-to-end latency
    and per-step restore costs feed its quantile sketches, and its lazy
    window rolls capture the registry's counters and gauges. [slos] are
    evaluated on every completion, shed and give-up; [recorder] snapshots
    the pre-failure window on every failure edge (container poisoned,
    slot quarantined, scrub corruption). All instrumentation reads the
    engine clock only; simulated time and RNG draws are untouched. *)

val metrics : t -> Gh_sim.Metrics.t
(** The registry backing {!stats} — pass it to an exporter. *)

val register : t -> name:string -> Function_model.spec -> unit
(** Deploy a function. @raise Invalid_argument on duplicate names. *)

val submit :
  ?on_complete:(Request.t -> Strategy_intf.invocation -> unit) -> t -> name:string -> Request.t -> unit
(** Accept a request for a deployed function now (simulated time); it is
    dispatched, cold-started, queued, or shed according to the policy
    above. [on_complete] fires when a response is delivered (not for shed,
    expired, or abandoned requests; recovery retries complete without it).
    @raise Not_found for unknown functions. *)

val cancel : t -> name:string -> req_id:int -> bool
(** Remove a still-queued request {e silently} — no shed count, no
    [on_shed] — because a hedged duplicate was served elsewhere. Returns
    [false] when the request is not queued under [name] (unknown, already
    executing, or already done); an executing copy runs to completion and
    its response must be discarded by the caller. *)

val warm_idle : t -> name:string -> int
(** Idle warm containers currently held for [name] (0 for unknown
    functions) — the snapshot-warm-aware placement signal. *)

val set_on_shed : t -> (Admission.reason -> Request.t -> unit) -> unit
(** Called once per shed request, across all pools; the request will never
    produce a response. *)

val brownout_level : t -> Brownout.level option
(** Current degradation level, [None] when brownout is disabled. *)

val brownout_escalations : t -> int

val stats : t -> fn_stats list
val memory_used_mb : t -> int
val memory_high_water_mb : t -> int
val cores_busy : t -> int
val total_cold_starts : t -> int
val total_evictions : t -> int
val total_quarantined : t -> int
val total_shed : t -> int
val total_expired : t -> int
val total_deadline_misses : t -> int
