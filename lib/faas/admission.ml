(* Bounded admission queue with pluggable shedding policy.

   Every queue in the platform used to be a raw unbounded [Queue.t]; under
   sustained overload that means silent latency collapse. This module is the
   shared replacement: a bounded buffer that sheds deterministically — no
   randomness, so a fixed seed replays every drop decision — and counts what
   it drops so experiments can report shed/expired distinctly from work that
   is merely still queued.

   The [unbounded] configuration (capacity = max_int, Fifo) is the
   compatibility default: admit always succeeds, take is FIFO, and no
   expiry purge runs for requests without deadlines, so pre-existing
   experiments are bit-identical. *)

module Time_ns = Gh_sim.Time_ns
module Trace = Gh_sim.Trace

type policy =
  | Fifo  (** Drop-tail: reject the newcomer when full. *)
  | Lifo
      (** Newest-first service under saturation: admit the newcomer, drop the
          oldest queued entry (which has already burned most of its slack). *)
  | Edf_drop
      (** Serve FIFO but, when full, drop whichever entry (newcomer included)
          has the earliest deadline — it is the least likely to make it.
          Entries without deadlines never expire and are dropped last. *)
  | Fair_share
      (** Per-tenant fairness keyed on {!Principal}: when full, drop the
          newest entry of the tenant holding the most queue slots. *)

type reason =
  | Capacity  (** The queue was full. *)
  | Expired  (** The deadline passed while waiting (or on arrival). *)
  | Brownout  (** Dropped by the overload controller's priority shed. *)

let reason_name = function
  | Capacity -> "capacity"
  | Expired -> "expired"
  | Brownout -> "brownout"

let policy_name = function
  | Fifo -> "fifo"
  | Lifo -> "lifo"
  | Edf_drop -> "edf-drop"
  | Fair_share -> "fair-share"

type config = { capacity : int; policy : policy }

let unbounded = { capacity = max_int; policy = Fifo }

let bounded ?(policy = Fifo) capacity =
  if capacity <= 0 then invalid_arg "Admission.bounded: capacity must be positive";
  { capacity; policy }

type 'a entry = { req : Request.t; payload : 'a; seq : int }

type 'a t = {
  cfg : config;
  trace : Trace.t option;
  label : string;  (* names this queue in trace events *)
  (* Oldest first (ascending [seq]). Queues are short (bounded) so list
     surgery is fine; the unbounded default only ever appends and pops
     the head. *)
  mutable items : 'a entry list;
  mutable next_seq : int;
  mutable length : int;
  mutable high_water : int;
  mutable shed : int;
  mutable expired : int;
  on_shed : reason -> Request.t -> 'a -> unit;
}

let create ?trace ?(label = "queue") ?(on_shed = fun _ _ _ -> ()) cfg =
  {
    cfg;
    trace;
    label;
    items = [];
    next_seq = 0;
    length = 0;
    high_water = 0;
    shed = 0;
    expired = 0;
    on_shed;
  }

let length t = t.length
let is_empty t = t.length = 0
let high_water t = t.high_water
let shed_count t = t.shed
let expired_count t = t.expired
let config t = t.cfg

let drop t ~now reason e =
  t.length <- t.length - 1;
  (match reason with Expired -> t.expired <- t.expired + 1 | _ -> t.shed <- t.shed + 1);
  Trace.emitf_opt t.trace ~at:now ~category:"admission" ~what:(reason_name reason)
    "%s req#%d dropped (%s, depth %d)" t.label e.req.Request.id (policy_name t.cfg.policy)
    t.length;
  t.on_shed reason e.req e.payload

(* Shed every queued entry whose deadline has passed: none of them can
   complete in time, so spending a core (or a restore) on them is waste. *)
let purge_expired t ~now =
  if t.length > 0 then begin
    let live, dead = List.partition (fun e -> not (Request.expired e.req ~now)) t.items in
    if dead <> [] then begin
      t.items <- live;
      List.iter (fun e -> drop t ~now Expired e) dead
    end
  end

let append t req payload =
  let e = { req; payload; seq = t.next_seq } in
  t.next_seq <- t.next_seq + 1;
  t.items <- t.items @ [ e ];
  t.length <- t.length + 1;
  if t.length > t.high_water then t.high_water <- t.length;
  e

let remove t victim = t.items <- List.filter (fun e -> e.seq <> victim.seq) t.items

(* The queue-full victim under each policy. [newcomer] is already appended,
   so the choice ranges over the whole over-full queue; returning the
   newcomer means "reject the arrival". All tie-breaks use [seq], so shed
   decisions are a pure function of arrival order — deterministic replay. *)
let pick_victim t newcomer =
  match t.cfg.policy with
  | Fifo -> newcomer
  | Lifo -> List.hd t.items (* oldest *)
  | Edf_drop ->
      let key e = match e.req.Request.deadline with None -> max_int | Some d -> d in
      List.fold_left
        (fun v e ->
          (* Earliest deadline loses; among equals the newest entry does,
             which favors work that has already waited. *)
          if key e < key v || (key e = key v && e.seq > v.seq) then e else v)
        newcomer t.items
  | Fair_share ->
      let counts = Hashtbl.create 8 in
      List.iter
        (fun e ->
          let id = e.req.Request.principal.Principal.id in
          Hashtbl.replace counts id (1 + Option.value ~default:0 (Hashtbl.find_opt counts id)))
        t.items;
      (* Max count, ties to the lowest id: the winner is independent of
         [Hashtbl.fold] order. *)
      let heaviest =
        Hashtbl.fold
          (fun id n best ->
            match best with
            | Some (bid, bn) when bn > n || (bn = n && bid <= id) -> best
            | _ -> Some (id, n))
          counts None
      in
      let id = fst (Option.get heaviest) in
      (* Newest entry of the heaviest tenant: its oldest queued work keeps
         its place in line. *)
      List.fold_left
        (fun v e ->
          if e.req.Request.principal.Principal.id = id then
            match v with Some b when b.seq > e.seq -> v | _ -> Some e
          else v)
        None t.items
      |> Option.get

let admit t ~now req payload =
  purge_expired t ~now;
  if Request.expired req ~now then begin
    (* Dead on arrival: reject at the door, cheapest possible shed. *)
    t.expired <- t.expired + 1;
    Trace.emitf_opt t.trace ~at:now ~category:"admission" ~what:(reason_name Expired)
      "%s req#%d dead on arrival" t.label req.Request.id;
    t.on_shed Expired req payload;
    false
  end
  else begin
    let e = append t req payload in
    if t.length <= t.cfg.capacity then true
    else begin
      let victim = pick_victim t e in
      remove t victim;
      drop t ~now Capacity victim;
      victim.seq <> e.seq
    end
  end

let take t ~now =
  purge_expired t ~now;
  match t.cfg.policy with
  | Fifo | Edf_drop | Fair_share -> (
      match t.items with
      | [] -> None
      | e :: rest ->
          t.items <- rest;
          t.length <- t.length - 1;
          Some (e.req, e.payload))
  | Lifo -> (
      match List.rev t.items with
      | [] -> None
      | e :: rest_rev ->
          t.items <- List.rev rest_rev;
          t.length <- t.length - 1;
          Some (e.req, e.payload))

(* Silent removal for hedge-loser cancellation: the request was (or will
   be) served elsewhere, so this copy must vanish without counting as shed
   or expired and without firing the shed hooks — no metrics residue. *)
let cancel t ~req_id =
  match List.find_opt (fun e -> e.req.Request.id = req_id) t.items with
  | None -> None
  | Some e ->
      remove t e;
      t.length <- t.length - 1;
      Some e.payload

let shed_all ?(now = 0) t reason =
  let dead = t.items in
  t.items <- [];
  List.iter (fun e -> drop t ~now reason e) dead

let iter t f = List.iter (fun e -> f e.req e.payload) t.items
