(** The contract between the platform's containers and a request-isolation
    strategy.

    The container does not know how isolation is implemented; it sees a
    {!t} with a one-time initialization cost and an [invoke] that reports,
    for each request, which costs sat on the request's critical path
    ([on_path_ns]) and which work must finish before the {e next} request
    may enter the container ([post_ns], e.g. Groundhog's restoration).
    Under low load [post_ns] overlaps idle time and is invisible in
    latency; under saturation it eats into throughput — exactly the split
    the paper's low-load / high-load workloads expose (§5.2).

    The {!outcome} field and the {!t}'s [status]/[kill] operations carry
    the failure model: a strategy reports hangs and failed recoveries, and
    the container layer drives kill → cold restart → re-snapshot. *)

type outcome =
  | Completed  (** Response produced; deferred work (if any) succeeded. *)
  | Crashed
      (** The function died mid-request but the strategy recovered the
          container (restore or rebuild); an error response is produced. *)
  | Hung
      (** The function never returned: no response exists, [on_path_ns] is
          only the work done before the stall. Only a platform timeout
          frees the container. *)
  | Poisoned
      (** The strategy's deferred recovery (restore / re-snapshot) failed:
          the response (if any) was already delivered, but the container
          must never serve again — kill + cold restart required. *)

(** What restore-time hash verification saw for an invocation. *)
type verify_outcome =
  | Unverified  (** No audit ran (policy off, or no restore happened). *)
  | Verified of int  (** Audit passed; the number of blocks it checked. *)
  | Verify_failed of string
      (** Audit caught corruption — the container is poisoned and this
          request must NOT have been served from the corrupt state. *)

type invocation = {
  on_path_ns : Gh_sim.Time_ns.t;
      (** Function execution incl. in-function isolation overheads (page
          faults, proxying). Determines invoker-measured latency. *)
  post_ns : Gh_sim.Time_ns.t;
      (** Off-critical-path work (restore / reset / reap) occupying the
          container's core before it can accept the next request. For a
          [Poisoned] outcome: the time burned by the failed attempt. *)
  response : Function_model.response;
  breakdown : Groundhog_core.Breakdown.t option;
      (** Restoration breakdown, for strategies that restore. *)
  isolated : bool;
      (** Did the strategy guarantee the next request sees a clean state? *)
  outcome : outcome;
  verify : verify_outcome;
      (** Hash-audit result for the restore work tied to this invocation
          (the restore that preceded it on-path, or the deferred one that
          followed). *)
  cold_ns : Gh_sim.Time_ns.t;
      (** Span attribution: one-time initialization paid on this request's
          critical path (cold start). Included in [on_path_ns]. *)
  io_ns : Gh_sim.Time_ns.t;
      (** Span attribution: actionloop interposition copy costs (input +
          output). Included in [on_path_ns]. *)
  restore_on_path_ns : Gh_sim.Time_ns.t;
      (** Span attribution: restore work forced onto the critical path
          (e.g. settling a brownout-deferred restore for a different
          principal). Included in [on_path_ns]. *)
  restore_label : string;
      (** Span name for the deferred [post_ns] work (e.g. ["gh-restore"],
          ["reap"]); [""] means a generic ["restore"]. *)
}

val invocation :
  ?post_ns:Gh_sim.Time_ns.t ->
  ?breakdown:Groundhog_core.Breakdown.t ->
  ?isolated:bool ->
  ?verify:verify_outcome ->
  ?cold_ns:Gh_sim.Time_ns.t ->
  ?io_ns:Gh_sim.Time_ns.t ->
  ?restore_on_path_ns:Gh_sim.Time_ns.t ->
  ?restore_label:string ->
  on_path_ns:Gh_sim.Time_ns.t ->
  outcome:outcome ->
  Function_model.response ->
  invocation
(** Smart constructor; every attribution field defaults to zero/empty. *)

val outcome_name : outcome -> string
(** Lower-case label for spans and metrics. *)

type status = [ `Clean | `Dirty | `Restoring | `Poisoned ]

(** One bounded slice of idle-time snapshot scrubbing. *)
type scrub_result =
  | Scrubbed of int * bool
      (** [n] blocks verified clean; [true] means the pass reached the end
          of the snapshot (stop rescheduling until the next idle period). *)
  | Scrub_corrupt of string
      (** Corruption found in the stored snapshot: the strategy poisoned
          itself (and blasted dedup sharers) — kill + cold restart. *)
  | Scrub_skip
      (** Nothing to scrub: no snapshot, already poisoned, or scrubbing
          deferred (brownout). *)

type t = {
  name : string;
  init_ns : Gh_sim.Time_ns.t;
      (** One-time container initialization: runtime boot, warm-up dummy
          request, snapshot (where applicable). *)
  invoke : Request.t -> invocation;
  snapshot_pages : unit -> int;
      (** Pages held in the manager's snapshot buffer (0 when the strategy
          keeps none). *)
  describe : unit -> string;
  status : unit -> status option;
      (** The manager's lifecycle state, [None] for strategies without one
          (fork, base). The fail-closed trace checker polls this at
          dispatch time. *)
  kill : unit -> unit;
      (** SIGKILL the function process: whatever state it held is gone and
          the manager (if any) is poisoned. Idempotent. *)
  degrade : bool -> unit;
      (** Brownout hook: [degrade true] asks the strategy to defer
          non-critical recovery work (e.g. Groundhog's post-completion
          restore) until pressure passes; [degrade false] restores full
          service. Must never weaken isolation across security domains —
          strategies that cannot degrade safely ignore it. *)
  scrub : int -> scrub_result;
      (** [scrub blocks]: verify up to [blocks] stored snapshot blocks
          against their capture-time hashes. Driven by the container's
          idle-time scrubber; strategies without a snapshot (and degraded
          ones — scrubbing is the definition of non-critical work) return
          [Scrub_skip]. *)
  audit : unit -> [ `Intact | `Corrupt of string ] option;
      (** Ground-truth probe for experiments: does the process image the
          next request would see match the snapshot? [None] when the
          strategy has no such oracle. Free — reads memory only. *)
}

val no_post : invocation -> bool
(** True when the invocation leaves no deferred work. *)

val no_status : unit -> status option
(** [fun () -> None]: for strategies (and test stubs) without a manager. *)

val no_kill : unit -> unit
(** No-op kill, for test stubs. *)

val no_degrade : bool -> unit
(** No-op degrade, for strategies with no deferrable work. *)

val no_scrub : int -> scrub_result
(** [fun _ -> Scrub_skip]: for strategies that keep no snapshot. *)

val no_audit : unit -> [ `Intact | `Corrupt of string ] option
(** [fun () -> None]: for strategies with no hash oracle. *)

val outcome_of_response : Function_model.response -> outcome
(** [Hung]/[Crashed]/[Completed] from the response flags — for strategies
    whose deferred work cannot fail. *)

val manager_status : Groundhog_core.Manager.t -> status
(** Lift a manager's lifecycle state into the polymorphic status. *)
