module Engine = Gh_sim.Engine
module Rng = Gh_sim.Rng
module Span = Gh_sim.Span
module Time_ns = Gh_sim.Time_ns

type recovery = {
  container : Container.recovery;
  max_attempts : int;
  retry_backoff : Backoff.t;
}

let default_recovery =
  { container = Container.default_recovery; max_attempts = 3; retry_backoff = Backoff.default }

type recovery_stats = {
  timeouts : int;
  retries : int;
  failed_requests : int;
  quarantined : int;
  replacements : int;
  mttr_ns : Time_ns.t list;
}

type t = {
  engine : Engine.t;
  spans : Span.t option;
  containers : Container.t array;
  (* Payload: the request's response callback. *)
  queue : (Request.t -> Strategy_intf.invocation -> unit) Admission.t;
  dispatch_ns : Gh_sim.Time_ns.t;
  init_ns : Gh_sim.Time_ns.t;
  recovery : recovery option;
  rng : Rng.t option;
  (* Request-retry bookkeeping, only populated when recovery is on. *)
  attempts : (int, int) Hashtbl.t;  (* req id -> tries so far *)
  inflight : (int, Request.t -> Strategy_intf.invocation -> unit) Hashtbl.t;
  mutable timeouts : int;
  mutable retries : int;
  mutable failed_requests : int;
  mutable quarantined : int;
  mutable on_failed : Request.t -> unit;
  mutable on_shed : Admission.reason -> Request.t -> unit;
}

(* A cold container pays its one-time initialization (runtime boot,
   warm-up, snapshot) on the first request's critical path. *)
let with_cold_start (s : Strategy_intf.t) =
  let started = ref false in
  {
    s with
    Strategy_intf.invoke =
      (fun req ->
        let inv = s.Strategy_intf.invoke req in
        if !started then inv
        else begin
          started := true;
          {
            inv with
            Strategy_intf.on_path_ns =
              inv.Strategy_intf.on_path_ns + s.Strategy_intf.init_ns;
            cold_ns = inv.Strategy_intf.cold_ns + s.Strategy_intf.init_ns;
          }
        end);
  }

(* Without recovery, containers get no rebuild path and no hang timeout:
   a hang wedges its container (the pre-recovery behaviour) and a poisoned
   restore retires it — fail closed either way. *)
let passive_recovery =
  {
    Container.default_recovery with
    Container.timeout_ns = None;
    quarantine_after = max_int;
  }

let rec submit t req ~on_response =
  (match t.recovery with
  | Some _ -> Hashtbl.replace t.inflight req.Request.id on_response
  | None -> ());
  let now = Engine.now t.engine in
  (match t.spans with
  | Some sp ->
      ignore
        (Span.ensure_root sp ~at:now ~req_id:req.Request.id
           ~attrs:[ ("principal", req.Request.principal.Principal.name) ]
           ())
  | None -> ());
  if Request.expired req ~now then
    (* Dead on arrival: [admit] rejects it at the door (never enqueued) and
       fires the shed hooks — the cheapest possible rejection. *)
    ignore (Admission.admit t.queue ~now req on_response)
  else
    match find_idle t with
    | Some c -> Container.submit ~dispatch_ns:t.dispatch_ns c req ~on_response
    | None ->
        let enqueued = Admission.admit t.queue ~now req on_response in
        (match t.spans with
        | Some sp when enqueued ->
            Span.phase_start sp ~at:now ~req_id:req.Request.id ~name:"invoker-queue"
              ~cat:"queue" ()
        | _ -> ())

and find_idle t = Array.find_opt Container.is_idle t.containers

let handle_failure t r c failure =
  match failure with
  | Container.Poisoned_restore _ ->
      (* The response was already delivered; the container replaces or
         quarantines itself — nothing to retry. *)
      ()
  | Container.Corrupt_snapshot _ ->
      (* Caught by the idle scrubber before any request touched the bad
         snapshot: no request is in flight, the container recovers
         itself. *)
      ()
  | Container.Timed_out (req : Request.t) ->
      t.timeouts <- t.timeouts + 1;
      ignore c;
      let tries =
        match Hashtbl.find_opt t.attempts req.Request.id with Some n -> n | None -> 1
      in
      if tries >= r.max_attempts then begin
        Hashtbl.remove t.attempts req.Request.id;
        (match Hashtbl.find_opt t.inflight req.Request.id with
        | Some _ -> Hashtbl.remove t.inflight req.Request.id
        | None -> ());
        t.failed_requests <- t.failed_requests + 1;
        (match t.spans with
        | Some sp ->
            Span.finish_root sp ~at:(Engine.now t.engine)
              ~attrs:[ ("outcome", "failed") ]
              ~req_id:req.Request.id ()
        | None -> ());
        t.on_failed req
      end
      else begin
        Hashtbl.replace t.attempts req.Request.id (tries + 1);
        t.retries <- t.retries + 1;
        let delay = Backoff.delay r.retry_backoff ?rng:t.rng ~attempt:tries in
        Engine.schedule t.engine ~after:delay (fun () ->
            match Hashtbl.find_opt t.inflight req.Request.id with
            | Some on_response -> submit t req ~on_response
            | None -> ())
      end

let create ?(prestarted = true) ?trace ?spans ?recovery ?rng ?scrub
    ?(admission = Admission.unbounded) engine ~n_containers ~dispatch_ns ~make_strategy =
  if n_containers < 1 then invalid_arg "Invoker.create: need at least one container";
  let strategies = Array.init n_containers make_strategy in
  let strategies = if prestarted then strategies else Array.map with_cold_start strategies in
  let container_recovery =
    match recovery with Some r -> r.container | None -> passive_recovery
  in
  let rebuild_for i =
    match recovery with
    | None -> None
    | Some _ ->
        Some
          (fun () ->
            match make_strategy i with
            | s -> Ok s
            | exception Failure msg -> Error msg)
  in
  let containers =
    Array.mapi
      (fun i strategy ->
        Container.create ?trace ?spans ~recovery:container_recovery
          ?rebuild:(rebuild_for i) ?rng ?scrub engine ~id:i strategy)
      strategies
  in
  let init_ns =
    Array.fold_left (fun n (s : Strategy_intf.t) -> n + s.Strategy_intf.init_ns) 0 strategies
  in
  (* The shed hook needs [t], which needs the queue: tie the knot via a
     forward reference. *)
  let shed_hook = ref (fun (_ : Admission.reason) (_ : Request.t) _ -> ()) in
  let t =
    {
      engine;
      spans;
      containers;
      queue =
        Admission.create ?trace ~label:"invoker" ~on_shed:(fun r rq p -> !shed_hook r rq p)
          admission;
      dispatch_ns;
      init_ns;
      recovery;
      rng;
      attempts = Hashtbl.create 64;
      inflight = Hashtbl.create 64;
      timeouts = 0;
      retries = 0;
      failed_requests = 0;
      quarantined = 0;
      on_failed = ignore;
      on_shed = (fun _ _ -> ());
    }
  in
  (shed_hook :=
     fun reason req _on_response ->
       (* A shed request will never be dispatched again: drop its retry
          bookkeeping so the tables don't leak. *)
       Hashtbl.remove t.attempts req.Request.id;
       Hashtbl.remove t.inflight req.Request.id;
       (match t.spans with
       | Some sp ->
           let now = Engine.now t.engine in
           Span.phase_stop sp ~at:now ~req_id:req.Request.id ~name:"invoker-queue" ();
           Span.finish_root sp ~at:now
             ~attrs:[ ("outcome", "shed"); ("reason", Admission.reason_name reason) ]
             ~req_id:req.Request.id ()
       | None -> ());
       t.on_shed reason req);
  Array.iter
    (fun c ->
      Container.set_on_idle c (fun c ->
          let now = Engine.now t.engine in
          match Admission.take t.queue ~now with
          | Some (req, on_response) ->
              (match t.spans with
              | Some sp ->
                  Span.phase_stop sp ~at:now ~req_id:req.Request.id ~name:"invoker-queue" ()
              | None -> ());
              Container.submit ~dispatch_ns:t.dispatch_ns c req ~on_response
          | None -> ());
      (match recovery with
      | Some r -> Container.set_on_failure c (fun c failure -> handle_failure t r c failure)
      | None -> ());
      Container.set_on_retired c (fun _ -> t.quarantined <- t.quarantined + 1))
    containers;
  t

let set_on_failed t f = t.on_failed <- f
let set_on_shed t f = t.on_shed <- f
let queue_length t = Admission.length t.queue
let queue_high_water t = Admission.high_water t.queue
let shed_count t = Admission.shed_count t.queue
let expired_count t = Admission.expired_count t.queue
let completed t = Array.fold_left (fun n c -> n + Container.completed c) 0 t.containers
let containers t = t.containers
let init_ns t = t.init_ns

let recovery_stats t =
  {
    timeouts = t.timeouts;
    retries = t.retries;
    failed_requests = t.failed_requests;
    quarantined = t.quarantined;
    replacements =
      Array.fold_left (fun n c -> n + Container.replacements c) 0 t.containers;
    mttr_ns =
      Array.fold_left (fun acc c -> Container.recovery_ns c @ acc) [] t.containers;
  }
