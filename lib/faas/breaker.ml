(* Per-node circuit breaker for the cluster's dispatch path.

   The controller stops routing to a node after a run of consecutive
   attempt failures (timeouts, lost messages): the breaker opens, and only
   a single probe request is let through once a capped-backoff dwell has
   elapsed — half-open. A successful probe closes the breaker; a failed
   one re-opens it with a longer dwell. Dwells reuse the platform's shared
   [Backoff.recovery] schedule, so breaker probes and container rebuilds
   saturate at the same cap.

   Purely controller-side state driven by the engine clock the caller
   passes in: no events are scheduled and no randomness is drawn unless
   the caller supplies an rng for dwell jitter. *)

module Time_ns = Gh_sim.Time_ns
module Rng = Gh_sim.Rng

type state = Closed | Open | Half_open

let state_name = function
  | Closed -> "closed"
  | Open -> "open"
  | Half_open -> "half-open"

(* Stable encoding for the per-node breaker gauge. *)
let state_index = function Closed -> 0 | Open -> 1 | Half_open -> 2

type config = {
  failure_threshold : int;  (* consecutive failures that open the breaker *)
  probe_backoff : Backoff.t;  (* dwell before each half-open probe *)
}

let default_config = { failure_threshold = 3; probe_backoff = Backoff.recovery }

type t = {
  config : config;
  rng : Rng.t option;
  mutable state : state;
  mutable consecutive : int;  (* failures since the last success, Closed only *)
  mutable open_streak : int;  (* consecutive opens: the backoff attempt index *)
  mutable retry_at : Time_ns.t;  (* Open: when the next probe may go out *)
  mutable probing : bool;  (* Half_open: the one probe slot is taken *)
  mutable opens : int;
  mutable transitions : int;
  mutable on_transition : state -> state -> unit;
}

let create ?rng config =
  if config.failure_threshold < 1 then
    invalid_arg "Breaker.create: failure_threshold must be >= 1";
  {
    config;
    rng;
    state = Closed;
    consecutive = 0;
    open_streak = 0;
    retry_at = 0;
    probing = false;
    opens = 0;
    transitions = 0;
    on_transition = (fun _ _ -> ());
  }

let state t = t.state
let opens t = t.opens
let transitions t = t.transitions
let set_on_transition t f = t.on_transition <- f

let goto t next =
  if t.state <> next then begin
    let prev = t.state in
    t.state <- next;
    t.transitions <- t.transitions + 1;
    t.on_transition prev next
  end

let trip t ~now =
  t.open_streak <- t.open_streak + 1;
  t.opens <- t.opens + 1;
  t.probing <- false;
  t.retry_at <- now + Backoff.delay ?rng:t.rng t.config.probe_backoff ~attempt:t.open_streak;
  goto t Open

(* May this node receive a request right now? Pure: no state moves until
   the caller commits with [on_dispatch]. *)
let ready t ~now =
  match t.state with
  | Closed -> true
  | Half_open -> not t.probing
  | Open -> now >= t.retry_at

(* The caller chose this node: consume the probe slot if the breaker is
   (or just became) half-open. *)
let on_dispatch t ~now =
  match t.state with
  | Closed -> ()
  | Open ->
      if now < t.retry_at then invalid_arg "Breaker.on_dispatch: breaker is open";
      goto t Half_open;
      t.probing <- true
  | Half_open ->
      if t.probing then invalid_arg "Breaker.on_dispatch: probe already in flight";
      t.probing <- true

let record_success t =
  match t.state with
  | Closed -> t.consecutive <- 0
  | Half_open ->
      (* The probe came back: the node earned its traffic back. *)
      t.consecutive <- 0;
      t.open_streak <- 0;
      t.probing <- false;
      goto t Closed
  | Open ->
      (* A straggler response from before the trip: evidence, not a probe.
         Leave the dwell untouched. *)
      ()

let record_failure t ~now =
  match t.state with
  | Closed ->
      t.consecutive <- t.consecutive + 1;
      if t.consecutive >= t.config.failure_threshold then trip t ~now
  | Half_open -> trip t ~now
  | Open -> ()
