module Account = Gh_sim.Account
module Fault = Gh_sim.Fault
module Rng = Gh_sim.Rng
module Time_ns = Gh_sim.Time_ns
module As = Gh_mem.Address_space
module Vma = Gh_mem.Vma
module Bitmap = Gh_mem.Bitmap
module Process = Gh_proc.Process
module Registers = Gh_proc.Registers
module Prot = Gh_mem.Prot

type spec = {
  name : string;
  lang : Runtime.lang;
  exec_ns : Time_ns.t;
  exec_jitter : float;
  mapped_pages : int;
  dirtied_pages : int;
  read_pages : int;
  input_kb : int;
  output_kb : int;
  memleak_pages : int;
  leak_slowdown_ns : int;
  buggy_residue_leak : bool;
  gc_extra_dirty : int;
  gc_exec_penalty : float;
  wasm_factor : float option;
  fault_gran : int;
  scattered_writes : bool;
  service_ops : int;
  crash_rate : float;
  hang_rate : float;
}

(* One round trip to a platform service (local key-value store). *)
let service_call_ns = 250_000

let default_spec =
  {
    name = "hello";
    lang = Runtime.C;
    exec_ns = Time_ns.of_ms 1.0;
    exec_jitter = 0.02;
    mapped_pages = 1_000;
    dirtied_pages = 20;
    read_pages = 100;
    input_kb = 2;
    output_kb = 1;
    memleak_pages = 0;
    leak_slowdown_ns = 0;
    buggy_residue_leak = false;
    gc_extra_dirty = 0;
    gc_exec_penalty = 0.0;
    wasm_factor = Some 1.0;
    fault_gran = 1;
    scattered_writes = false;
    service_ops = 0;
    crash_rate = 0.0;
    hang_rate = 0.0;
  }

type response = {
  value : int;
  residue : int list;
  output_kb : int;
  service_denials : int;
  crashed : bool;
  hung : bool;
}

(* A plan is a set of (vma, chunk position, chunk length) ranges covering a
   page quota, spread evenly over the writable pool so that dirty-page
   density translates into run lengths the way it does for real heaps. *)
type chunk = { vma : Vma.t; pos : int; len : int }

type instance = {
  spec : spec;
  rt : Runtime.t;
  process : Process.t;
  pool : Vma.t array;  (* heap + anonymous arenas, the writable pages *)
  write_plan : chunk array;
  read_plan : chunk array;
  prot_region : Vma.t;  (* flipped read-only by churn, flipped back by restore *)
  gc_region : Vma.t option;  (* where Node's GC re-dirtying lands *)
  mutable clean_brk : int;
  mutable highwater_brk : int;
  mutable persistent_map_ids : int list;  (* anon maps left behind by the last invocation *)
  mutable invocations : int;
  mutable services : Services.t option;
}

(* Spread [quota] pages over the pool in chunks of [chunk_len], evenly. If
   the quota approaches the pool size the chunks merge into long runs —
   exactly the density-to-coalescing relation of Fig. 3 (left). *)
let spread_plan pool ~quota ~chunk_len =
  let pool_pages = Array.fold_left (fun n (v : Vma.t) -> n + v.Vma.n_pages) 0 pool in
  let quota = min quota pool_pages in
  if quota = 0 then [||]
  else begin
    let n_chunks = max 1 ((quota + chunk_len - 1) / chunk_len) in
    let spacing = float_of_int pool_pages /. float_of_int n_chunks in
    let chunks = ref [] in
    let remaining = ref quota in
    (* Walk the pool as one linear span; place chunk k at offset k*spacing. *)
    let place global_pos len =
      (* Translate a global pool offset into (vma, pos) and clip runs that
         cross a VMA boundary. *)
      let rec go i off len =
        if len <= 0 || i >= Array.length pool then ()
        else begin
          let v = pool.(i) in
          if off >= v.Vma.n_pages then go (i + 1) (off - v.Vma.n_pages) len
          else begin
            let here = min len (v.Vma.n_pages - off) in
            chunks := { vma = v; pos = off; len = here } :: !chunks;
            go (i + 1) 0 (len - here)
          end
        end
      in
      go 0 global_pos len
    in
    for k = 0 to n_chunks - 1 do
      if !remaining > 0 then begin
        let len = min chunk_len !remaining in
        (* Deterministic jitter within each slot: at low density chunks stay
           isolated; as density grows, neighbouring chunks increasingly abut
           and merge into longer dirty runs — which is what lets the restore
           engine coalesce copies at high dirty fractions (Fig. 3 left). *)
        let slack = max 1 (int_of_float spacing - len + 1) in
        let jitter = Hashtbl.hash (k * 2654435761) mod slack in
        let pos = int_of_float (float_of_int k *. spacing) + jitter in
        place (min pos (pool_pages - len)) len;
        remaining := !remaining - len
      end
    done;
    Array.of_list (List.rev !chunks)
  end

(* A Bernoulli page-level dirty pattern (used by the §5.2 microbenchmark):
   each pool page is dirtied independently with probability quota/pool, so
   maximal dirty runs follow the run statistics of random patterns — short
   and numerous at low density, long and few near full density. *)
let scattered_plan pool ~quota =
  let pool_pages = Array.fold_left (fun n (v : Vma.t) -> n + v.Vma.n_pages) 0 pool in
  let quota = min quota pool_pages in
  if quota = 0 then [||]
  else begin
    let chunks = ref [] in
    let emit vma pos len = if len > 0 then chunks := { vma; pos; len } :: !chunks in
    let base = ref 0 in
    Array.iter
      (fun (v : Vma.t) ->
        let run_start = ref (-1) in
        for i = 0 to v.Vma.n_pages - 1 do
          let g = !base + i in
          let selected = Hashtbl.hash (g * 2654435761) mod pool_pages < quota in
          if selected && !run_start < 0 then run_start := i
          else if (not selected) && !run_start >= 0 then begin
            emit v !run_start (i - !run_start);
            run_start := -1
          end
        done;
        if !run_start >= 0 then emit v !run_start (v.Vma.n_pages - !run_start);
        base := !base + v.Vma.n_pages)
      pool;
    Array.of_list (List.rev !chunks)
  end

let build ?(cost = Gh_kernel.Cost.default) spec =
  let rt = Runtime.for_lang spec.lang in
  let fixed = rt.Runtime.text_pages + rt.Runtime.data_pages + rt.Runtime.stack_pages in
  let pool_pages = max 64 (spec.mapped_pages - fixed) in
  (* ~35 % of the pool is brk heap, the rest is split across arenas. *)
  let heap_pages = max 32 (pool_pages * 35 / 100) in
  let arena_total = pool_pages - heap_pages in
  let n_arenas = max 1 rt.Runtime.arena_count in
  let arena_pages = max 8 (arena_total / n_arenas) in
  let mem =
    As.create ~text_pages:rt.Runtime.text_pages ~data_pages:rt.Runtime.data_pages
      ~heap_pages ~stack_pages:rt.Runtime.stack_pages ~cost ()
  in
  let arenas =
    Array.init n_arenas (fun _ -> As.map mem ~n_pages:arena_pages ~prot:Prot.rw Vma.Anon)
  in
  let prot_region = As.map mem ~n_pages:8 ~prot:Prot.rw Vma.Anon in
  let process = Process.create ~mem ~n_threads:rt.Runtime.threads () in
  let pool = Array.append [| As.heap mem |] arenas in
  (* Huge-page-backed pools: one PTE fault covers a block of pages. *)
  Array.iter (fun (v : Vma.t) -> v.Vma.fault_gran <- max 1 spec.fault_gran) pool;
  let chunk_len = max rt.Runtime.dirty_chunk_pages (min 512 spec.fault_gran) in
  let write_plan =
    if spec.scattered_writes then scattered_plan pool ~quota:spec.dirtied_pages
    else spread_plan pool ~quota:spec.dirtied_pages ~chunk_len
  in
  let read_plan = spread_plan pool ~quota:spec.read_pages ~chunk_len:32 in
  let gc_region =
    if spec.gc_extra_dirty > 0 && Array.length arenas > 0 then Some arenas.(0) else None
  in
  let clean_brk = As.brk mem in
  {
    spec;
    rt;
    process;
    pool;
    write_plan;
    read_plan;
    prot_region;
    gc_region;
    clean_brk;
    highwater_brk = clean_brk + (64 * Vma.page_size);
    persistent_map_ids = [];
    invocations = 0;
    services = None;
  }

let proc t = t.process
let spec t = t.spec
let runtime t = t.rt
let attach_services t services = t.services <- Some services

let mark_clean t =
  t.clean_brk <- As.brk t.process.Process.mem;
  t.highwater_brk <- t.clean_brk

(* Execution context: which process an activation runs in. Normally the
   instance's own process; for fork-based isolation it is a freshly forked
   child, whose VMAs are resolved by id (fork preserves them). *)
type ctx = { proc : Process.t; resolve : Vma.t -> Vma.t }

let self_ctx t = { proc = t.process; resolve = Fun.id }

let child_ctx t child =
  let m = child.Process.mem in
  let table = Hashtbl.create 64 in
  As.iter_vmas m (fun (v : Vma.t) -> Hashtbl.replace table v.Vma.id v);
  let resolve (v : Vma.t) =
    match Hashtbl.find_opt table v.Vma.id with
    | Some v' -> v'
    | None -> invalid_arg (Printf.sprintf "%s: VMA %d missing in child" t.spec.name v.Vma.id)
  in
  { proc = child; resolve }

let cmem ctx = ctx.proc.Process.mem

(* Layout churn: reclaim what the previous invocation left behind (if the
   restore has not already done so), then produce this invocation's layout
   changes — fresh anonymous maps, a protection flip, and a few transient
   map/unmap pairs. Under BASE this reaches a steady state; under Groundhog
   every change is rolled back and recurs each time. *)
let churn t ctx acct rng =
  let m = cmem ctx in
  let churn_ops = t.rt.Runtime.layout_churn in
  if churn_ops > 0 then begin
    (* Trim the brk excursion the previous invocation left behind (glibc
       trims on free); leaky functions never release, so never trim. *)
    if t.spec.memleak_pages = 0 && As.brk m > t.highwater_brk then
      Process.sys_brk ctx.proc acct t.highwater_brk;
    (* Unmap survivors from the previous invocation. *)
    List.iter
      (fun id ->
        match As.find_vma_by_id m id with
        | Some vma -> Process.sys_munmap ctx.proc acct vma
        | None -> ())
      t.persistent_map_ids;
    t.persistent_map_ids <- [];
    (* Persistent anonymous maps (about half the churn budget). *)
    let n_maps = max 1 (churn_ops / 2) in
    for _ = 1 to n_maps do
      let n_pages = 8 + Rng.int rng 24 in
      let vma = Process.sys_mmap ctx.proc acct ~n_pages ~prot:Prot.rw Vma.Anon in
      As.dirty_range m acct vma ~pos:0 ~len:(min 4 n_pages) ~value:1;
      t.persistent_map_ids <- vma.Vma.id :: t.persistent_map_ids
    done;
    (* Protection flip (restored by an mprotect injection under Groundhog). *)
    let prot_region = ctx.resolve t.prot_region in
    if churn_ops >= 4 && prot_region.Vma.prot.Prot.write then
      Process.sys_mprotect ctx.proc acct prot_region Prot.r;
    (* Transient pairs: mapped and unmapped within the invocation. *)
    let transients = max 0 ((churn_ops - n_maps - 2) / 2) in
    for _ = 1 to transients do
      let vma = Process.sys_mmap ctx.proc acct ~n_pages:4 ~prot:Prot.rw Vma.Anon in
      Process.sys_munmap ctx.proc acct vma
    done
  end

(* The invocation ends with the heap grown past the high-water mark (the
   allocator has not trimmed yet); the next invocation — or a Groundhog
   restore — takes it back. *)
let brk_excursion t ctx acct =
  if t.spec.memleak_pages = 0 && t.rt.Runtime.layout_churn >= 2 then
    Process.sys_brk ctx.proc acct (t.highwater_brk + (16 * Vma.page_size))

(* Per-request variance: each request skips a nonce-dependent 1/8 of the
   chunks, so some pages keep the previous request's data (the residue a
   buggy function can leak) without touching pages the warm-up did not
   page in. *)
let dirty_plan t ctx acct ~nonce ~value =
  let m = cmem ctx in
  Array.iteri
    (fun idx { vma; pos; len } ->
      if (idx + nonce) mod 8 <> 0 then begin
        let vma = ctx.resolve vma in
        As.dirty_range m acct vma ~pos ~len ~value
      end)
    t.write_plan

(* Read the working set; a buggy function also exfiltrates foreign secrets
   it happens to observe. *)
let read_working_set t ctx acct ~principal =
  let m = cmem ctx in
  let residue = ref [] in
  let n_residue = ref 0 in
  Array.iter
    (fun { vma; pos; len } ->
      let vma = ctx.resolve vma in
      let len = min len (max 0 (vma.Vma.n_pages - pos)) in
      As.read_range m acct vma ~pos ~len;
      if t.spec.buggy_residue_leak then
        for i = pos to pos + len - 1 do
          let w = As.peek vma i in
          (* A residual secret: tagged word (nonce in the upper bits, owner
             in the lower 16) of neither the caller nor the dummy run. *)
          if w lsr 16 <> 0 && w land 0xFFFF <> 0 && w land 0xFFFF <> 0xFFFF
             && (not (Principal.owns_word principal w))
             && (not (List.mem w !residue))
             && !n_residue < 16
          then begin
            residue := w :: !residue;
            incr n_residue
          end
        done)
    t.read_plan;
  !residue

let leak_resident_pages t ctx = max 0 ((As.brk (cmem ctx) - t.clean_brk) / Vma.page_size)

let grow_leak t ctx acct ~value =
  if t.spec.memleak_pages > 0 then begin
    let m = cmem ctx in
    let heap = As.heap m in
    let old_pages = heap.Vma.n_pages in
    Process.sys_brk ctx.proc acct (As.brk m + (t.spec.memleak_pages * Vma.page_size));
    let grown = heap.Vma.n_pages - old_pages in
    if grown > 0 then As.dirty_range m acct heap ~pos:old_pages ~len:grown ~value
  end

(* Externalized state (§2): the function reads and updates its per-caller
   record in the platform's key-value store, under the activation's
   credentials. The ACL — not the isolation strategy — decides whether the
   calls succeed; denials are reported so tests can observe enforcement. *)
let call_services t acct (req : Request.t) =
  match t.services with
  | None -> 0
  | Some services when t.spec.service_ops > 0 ->
      let principal = req.Request.principal in
      let key = "fn/" ^ string_of_int principal.Principal.id in
      let denials = ref 0 in
      for k = 1 to t.spec.service_ops do
        Account.charge acct service_call_ns;
        let result =
          if k land 1 = 1 then Services.put services principal ~key (Request.secret req)
          else Result.map ignore (Services.get services principal ~key)
        in
        match result with Ok () -> () | Error _ -> incr denials
      done;
      !denials
  | Some _ -> 0

let compute_charge t acct rng ~post_restore ~leaked_before =
  let s = t.spec in
  let base = float_of_int s.exec_ns in
  let noise = Rng.gaussian rng ~mu:1.0 ~sigma:s.exec_jitter in
  let gc = if post_restore then 1.0 +. s.gc_exec_penalty else 1.0 in
  let leak_ns = leaked_before * s.leak_slowdown_ns in
  let ns = int_of_float (base *. Float.max 0.05 noise *. gc) + leak_ns in
  Account.charge acct (max 0 ns)

let scramble_registers ctx rng =
  List.iter
    (fun th -> Registers.scramble th.Gh_proc.Thread.regs rng)
    ctx.proc.Process.threads

(* A crash mid-request: the process did part of its work (some churn, some
   dirtying, clobbered registers) and then died on a bug — its state is
   arbitrary and must not be trusted. *)
let crash_ctx t ctx acct rng (req : Request.t) =
  let secret = Request.secret req in
  churn t ctx acct rng;
  dirty_plan t ctx acct ~nonce:req.Request.nonce ~value:secret;
  Account.charge acct (t.spec.exec_ns / 2);
  scramble_registers ctx rng;
  t.invocations <- t.invocations + 1;
  { value = 0; residue = []; output_kb = 0; service_denials = 0; crashed = true; hung = false }

(* A hang: the process did part of its work and then stopped making
   progress (deadlock, infinite loop, lost I/O). No response is ever
   produced — the platform's timeout is the only way out. The charge here
   is only the work done before the hang; the stall itself occupies the
   container until the timeout fires, which the container layer models. *)
let hang_ctx t ctx acct rng (req : Request.t) =
  let secret = Request.secret req in
  churn t ctx acct rng;
  dirty_plan t ctx acct ~nonce:req.Request.nonce ~value:secret;
  Account.charge acct (t.spec.exec_ns / 2);
  scramble_registers ctx rng;
  t.invocations <- t.invocations + 1;
  { value = 0; residue = []; output_kb = 0; service_denials = 0; crashed = false; hung = true }

let invoke_ctx t ctx acct rng ~post_restore (req : Request.t) =
  (* Draw the spec's own misbehaviour first (guarded, so rate-0 specs draw
     nothing and streams stay bit-identical), then the fault plan's — the
     model rng stream is thus independent of the installed plan. *)
  let spec_hang = t.spec.hang_rate > 0.0 && Rng.float rng 1.0 < t.spec.hang_rate in
  let spec_crash = t.spec.crash_rate > 0.0 && Rng.float rng 1.0 < t.spec.crash_rate in
  let fault = ctx.proc.Process.fault in
  let fault_hang = Fault.fire fault Fault.Fn_hang in
  let fault_crash = Fault.fire fault Fault.Fn_crash in
  if spec_hang || fault_hang then hang_ctx t ctx acct rng req
  else if spec_crash || fault_crash then crash_ctx t ctx acct rng req
  else begin
  let leaked_before = leak_resident_pages t ctx in
  churn t ctx acct rng;
  let secret = Request.secret req in
  dirty_plan t ctx acct ~nonce:req.Request.nonce ~value:secret;
  (match (t.gc_region, post_restore) with
  | Some gc_vma, true when t.spec.gc_extra_dirty > 0 ->
      let gc_vma = ctx.resolve gc_vma in
      let len = min t.spec.gc_extra_dirty gc_vma.Vma.n_pages in
      As.dirty_range (cmem ctx) acct gc_vma ~pos:0 ~len ~value:1
  | _ -> ());
  grow_leak t ctx acct ~value:secret;
  let residue = read_working_set t ctx acct ~principal:req.Request.principal in
  let service_denials = call_services t acct req in
  brk_excursion t ctx acct;
  compute_charge t acct rng ~post_restore ~leaked_before;
  scramble_registers ctx rng;
  t.invocations <- t.invocations + 1;
  let value = secret lxor (t.invocations lsl 8) in
  { value; residue; output_kb = t.spec.output_kb; service_denials; crashed = false; hung = false }
  end

let invoke t acct rng ~post_restore req = invoke_ctx t (self_ctx t) acct rng ~post_restore req

let invoke_on t child acct rng ~post_restore req =
  invoke_ctx t (child_ctx t child) acct rng ~post_restore req

let warmup t acct rng =
  let mark = Account.mark acct in
  let deployer = Principal.make ~id:0xFFFF ~name:"deployer-dummy" in
  let dummy = Request.make ~id:0 ~principal:deployer ~input_kb:t.spec.input_kb () in
  let resp = invoke t acct rng ~post_restore:false dummy in
  ignore resp;
  (* Lazy class loading and interpreter warm-up make the first run slower. *)
  let extra = float_of_int t.spec.exec_ns *. (t.rt.Runtime.warmup_factor -. 1.0) in
  Account.charge acct (int_of_float extra);
  Account.since acct mark

let residue_oracle t principal =
  let count = ref 0 in
  As.iter_vmas t.process.Process.mem (fun (vma : Vma.t) ->
      Bitmap.iter_set vma.Vma.present (fun i ->
          let w = vma.Vma.data.(i) in
          if w <> 0 && w land 0xFFFF <> 0 && w land 0xFFFF <> 0xFFFF
             && (not (Principal.owns_word principal w))
             && w lsr 16 <> 0
          then incr count));
  !count
