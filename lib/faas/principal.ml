type t = { id : int; name : string; priority : int }

let make ~id ~name =
  if id < 0 || id > 0xFFFF then invalid_arg "Principal.make: id out of range";
  { id; name; priority = 1 }

let with_priority t priority =
  if priority < 0 then invalid_arg "Principal.with_priority: negative priority";
  { t with priority }

let equal a b = a.id = b.id
let priority t = t.priority

(* Secrets are tagged words: low 16 bits carry the principal id, the upper
   bits the nonce, offset so the word is never zero. *)
let secret_word t ~nonce = ((nonce + 1) lsl 16) lor t.id
let owns_word t w = w <> 0 && w land 0xFFFF = t.id
let pp ppf t = Format.fprintf ppf "%s#%d" t.name t.id
