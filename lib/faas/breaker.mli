(** Per-node circuit breaker: closed / open / half-open.

    The cluster's dispatch path keeps one breaker per node. A run of
    [failure_threshold] consecutive attempt failures (response timeouts,
    lost dispatches) opens it; while open the node receives no traffic;
    after a capped-backoff dwell a single half-open probe is allowed
    through, and its outcome decides between closing and re-opening with
    a longer dwell. Probe dwells reuse {!Backoff.recovery} — the same
    capped schedule as container cold-restart rebuilds — so every repair
    loop in the platform saturates at the same cap.

    The breaker never schedules events and draws randomness only from an
    rng the caller supplies (dwell jitter): state moves on the timestamps
    passed in, so a fixed seed replays every transition. *)

type state = Closed | Open | Half_open

val state_name : state -> string

val state_index : state -> int
(** Closed 0, Open 1, Half_open 2 — the per-node breaker gauge encoding. *)

type config = {
  failure_threshold : int;
      (** Consecutive failures that trip the breaker. Must be >= 1. *)
  probe_backoff : Backoff.t;
      (** Dwell before the [n]-th consecutive half-open probe (attempt [n]
          of the schedule); {!default_config} shares {!Backoff.recovery}. *)
}

val default_config : config
(** Threshold 3, probes paced by {!Backoff.recovery}. *)

type t

val create : ?rng:Gh_sim.Rng.t -> config -> t
(** @raise Invalid_argument if [failure_threshold < 1]. *)

val state : t -> state

val ready : t -> now:Gh_sim.Time_ns.t -> bool
(** May this node receive a request now? Pure — commit with
    {!on_dispatch}. [true] when closed, when an open dwell has elapsed
    (the would-be probe), or when half-open with no probe in flight. *)

val on_dispatch : t -> now:Gh_sim.Time_ns.t -> unit
(** The caller routed a request here: consumes the half-open probe slot
    (transitioning Open→Half_open if the dwell elapsed). No-op when
    closed. @raise Invalid_argument if {!ready} would have said no. *)

val record_success : t -> unit
(** A response arrived: resets the failure run; a successful probe closes
    the breaker and resets the dwell schedule. *)

val record_failure : t -> now:Gh_sim.Time_ns.t -> unit
(** An attempt failed: counts toward the threshold when closed, re-opens
    with the next (longer, capped) dwell when half-open. *)

val opens : t -> int
(** Times the breaker tripped open. *)

val transitions : t -> int

val set_on_transition : t -> (state -> state -> unit) -> unit
(** Observer for gauge/trace updates; called with (previous, next). *)
