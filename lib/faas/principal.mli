(** Callers of functions — the security identities of the paper's threat
    model (§2, §3.3).

    Activations of the same function can run on behalf of differently
    privileged end-clients; sequential request isolation exists precisely
    so data from Alice's activation cannot reach Bob's. *)

type t = { id : int; name : string; priority : int }

val make : id:int -> name:string -> t
(** Priority defaults to 1. *)

val with_priority : t -> int -> t
(** A copy ranked for load shedding: under brownout the node sheds
    lower-priority principals first. Priority carries no security meaning
    and must be non-negative. *)

val equal : t -> t -> bool

val priority : t -> int

val secret_word : t -> nonce:int -> int
(** A per-principal, per-request data word standing in for private request
    data. Guaranteed non-zero and distinct across principals, so residue in
    page contents is attributable. *)

val owns_word : t -> int -> bool
(** Does this word carry [t]'s secret tag? *)

val pp : Format.formatter -> t -> unit
