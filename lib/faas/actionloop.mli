(** The actionloop interposition protocol (§4.1, §4.5, §5.1).

    OpenWhisk's runtimes use a proxy process that talks HTTP to the
    platform and forwards requests over stdin to the runtime, reading
    results back from stdout. Groundhog splices its manager into exactly
    that pipe pair: inputs from the platform are {e held} by the manager
    until the function process is provably clean, then forwarded; outputs
    flow back through the manager to the platform.

    This module models that interposition explicitly: message queues with
    payload sizes, per-message copy costs, and the §4.5 safety rule —
    {b no input is ever delivered to a dirty process}. The Groundhog
    strategy drives it; tests probe the invariant directly. *)

type message = {
  request : Request.t;
  payload_kb : int;
}

type t

val create : Runtime.t -> t
(** An interposed pipe pair for one container of the given runtime (the
    runtime determines the wrapper's copy costs). *)

val offer : t -> Gh_sim.Account.t -> clean:bool -> Request.t -> [ `Delivered | `Buffered ]
(** The platform writes a request to the manager. If the function process
    is [clean] (and nothing is already queued ahead), the manager forwards
    it at once, paying the interposition copy cost; otherwise the message
    is buffered inside the manager. *)

val drain : t -> Gh_sim.Account.t -> clean:bool -> Request.t list
(** Forward buffered inputs now that the process state is known; delivers
    nothing unless [clean]. Costs are charged per delivered message.
    (One-at-a-time platforms deliver at most one; the queue drains fully
    here and the container serializes execution itself.) *)

val return_output : t -> Gh_sim.Account.t -> output_kb:int -> unit
(** The function's stdout result passes back through the manager to the
    platform; charged per KB (the wrapper's fixed setup was paid on the
    input side). *)

val buffered : t -> int
(** Inputs currently held back. *)

val delivered : t -> int
(** Inputs forwarded to the function process so far. *)

val delivered_while_dirty : t -> int
(** Safety counter: must remain 0 — the §4.5 invariant. *)

val copy_cost_ns : Runtime.t -> kb:int -> int
(** The modelled interposition cost for one message of [kb]. *)

val io_total_ns : t -> int
(** Cumulative copy cost charged through this loop, both directions.
    Strategies mark it around an invoke to attribute the request's
    actionloop I/O to its span. *)
