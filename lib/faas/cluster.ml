(* A fleet of invoker nodes behind one front door, with the management
   plane that keeps requests flowing when nodes misbehave: heartbeat
   health checking (drain -> quarantine -> rejoin), per-node circuit
   breakers, restart supervision, deadline-aware failover retries, and
   hedged requests with loser cancellation.

   Everything observable is deterministic under a fixed seed: node-level
   faults come from the shared {!Gh_sim.Fault} plan (each site its own
   stream), faults are drawn in member-id order on each heartbeat tick,
   and the engine's FIFO tie-break fixes the rest.

   Crash modeling: a crashed member keeps its [Node.t] — the simulation
   events that object already scheduled still run — but its [epoch] is
   bumped, and every response or dispatch is tagged with the epoch it
   started under. An epoch mismatch at delivery time means the work died
   with the node: the response is dropped (counted [lost_responses]),
   never delivered. A restart installs a fresh [Node.t] (the warm pool is
   genuinely gone) against the same metrics registry, so per-node
   counters are cumulative across incarnations.

   Exactly-once delivery: a request's [settled] flag flips at most once —
   on the first valid response or on final failure. Later responses from
   hedges, retries, or timed-out attempts are counted [wasted_responses]
   and suppressed. Conservation invariant (tested): total node
   completions = served-by-response + wasted + lost. *)

module Engine = Gh_sim.Engine
module Time_ns = Gh_sim.Time_ns
module Trace = Gh_sim.Trace
module Span = Gh_sim.Span
module Metrics = Gh_sim.Metrics
module Rng = Gh_sim.Rng
module Fault = Gh_sim.Fault
module Timeseries = Gh_sim.Timeseries
module Slo = Gh_sim.Slo
module Flight_recorder = Gh_sim.Flight_recorder

type placement = Round_robin | Least_loaded | Warm_aware

let placement_name = function
  | Round_robin -> "round-robin"
  | Least_loaded -> "least-loaded"
  | Warm_aware -> "warm-aware"

type config = {
  n_nodes : int;
  node : Node.config;
  placement : placement;
  failover : bool;
  hb_interval : Time_ns.t;
  hang_ns : Time_ns.t;
  response_timeout : Time_ns.t;
  max_attempts : int;
  hedge_after : Time_ns.t option;
  restart_ns : Time_ns.t;
  health : Health.config;
  breaker : Breaker.config;
}

let default_config =
  {
    n_nodes = 3;
    node = Node.default_config;
    placement = Least_loaded;
    failover = true;
    hb_interval = Time_ns.of_ms 100.0;
    hang_ns = Time_ns.of_ms 400.0;
    response_timeout = Time_ns.of_sec 1.0;
    max_attempts = 3;
    hedge_after = None;
    restart_ns = Time_ns.of_ms 500.0;
    health = Health.default_config;
    breaker = Breaker.default_config;
  }

(* One controller-side dispatch of one request to one member, pinned to
   the member epoch it was sent under. [a_done] flips exactly once —
   response, timeout, or successful cancellation — and decrements the
   member's inflight gauge when it does. *)
type attempt = {
  a_member : int;
  a_epoch : int;
  mutable a_done : bool;
  a_span : Span.record option;  (* open attempt span, closed at conclusion *)
}

type rstate = {
  r_req : Request.t;
  r_name : string;
  r_respond : Request.t -> Strategy_intf.invocation -> unit;
  r_submit : Time_ns.t;
  r_root : Span.record option;  (* cluster-owned request root *)
  mutable r_outcome : string;  (* root [outcome] attr, set when settled *)
  mutable r_settled : bool;  (* delivered or finally failed; at most once *)
  mutable r_dispatches : int;
  mutable r_attempts : attempt list;  (* newest first *)
  mutable r_first_fail : Time_ns.t option;  (* first timeout/shed: failover clock *)
}

type member = {
  m_id : int;
  mutable node : Node.t;
  mutable epoch : int;  (* bumped on every death; guards stale deliveries *)
  mutable up : bool;
  mutable hung_until : Time_ns.t;  (* messages in/out held until then *)
  mutable down_since : Time_ns.t;  (* -1 when up; feeds the downtime span *)
  mutable restarting : bool;
  mutable inflight : int;  (* outstanding cluster attempts, all epochs *)
  health : Health.t;
  breaker : Breaker.t;
  g_health : Metrics.gauge;
  g_breaker : Metrics.gauge;
  g_inflight : Metrics.gauge;
  g_up : Metrics.gauge;
}

type t = {
  engine : Engine.t;
  config : config;
  trace : Trace.t option;
  spans : Span.t option;
  series : Timeseries.t option;
  slos : Slo.t list;
  recorder : Flight_recorder.t option;
  metrics : Metrics.t;
  fault : Fault.t;
  rng : Rng.t option;
  make_strategy : string -> Function_model.spec -> Strategy_intf.t;
  members : member array;
  mutable fns : (string * Function_model.spec) list;  (* newest first *)
  requests : (int, rstate) Hashtbl.t;
  mutable rr : int;  (* round-robin cursor *)
  mutable submitted : int;
  mutable on_failed : Request.t -> unit;
  c_served : Metrics.counter;
  c_late_served : Metrics.counter;
  c_failed : Metrics.counter;
  c_retries : Metrics.counter;
  c_hedges : Metrics.counter;
  c_hedge_cancelled : Metrics.counter;
  c_wasted : Metrics.counter;
  c_lost : Metrics.counter;
  c_msg_lost : Metrics.counter;
  c_timeouts : Metrics.counter;
  c_crashes : Metrics.counter;
  c_hangs : Metrics.counter;
  c_restarts : Metrics.counter;
  h_failover_ms : Metrics.histogram;
}

let trace_emitf t ~what fmt =
  Trace.emitf_opt t.trace ~at:(Engine.now t.engine) ~category:"cluster" ~what fmt

(* Node lifecycle transitions get their own category so a timeline can
   filter the fleet's story from the per-request noise. *)
let lifecycle_emitf t ~what fmt =
  Trace.emitf_opt t.trace ~at:(Engine.now t.engine) ~category:"lifecycle" ~what fmt

let node_rng t m_id =
  Option.map (fun r -> Rng.named_split r (Printf.sprintf "cluster-node-%d" m_id)) t.rng

(* ---- observability ----------------------------------------------------
   Strictly read-only on the timeline: lazy series rolls, SLO bucket
   arithmetic and recorder snapshots all happen at call sites that
   already hold the clock — no engine events, no RNG draws. *)

let observe_served t ~now ~e2e_ms inv =
  (match t.series with
  | Some ts ->
      Timeseries.tick ts ~now;
      Timeseries.observe ts ~now "cluster.e2e_ms" e2e_ms
  | None -> ());
  List.iter
    (fun slo ->
      Slo.record_completion slo ~now ~ok:true ~e2e_ms
        ~cold:(inv.Strategy_intf.cold_ns > 0);
      Slo.tick slo ~now)
    t.slos

let observe_failed t ~now =
  List.iter
    (fun slo ->
      Slo.record_completion slo ~now ~ok:false ~e2e_ms:Float.infinity ~cold:false;
      Slo.tick slo ~now)
    t.slos

let record_failure_edge t ~node ~reason ~detail =
  match t.recorder with
  | None -> ()
  | Some r ->
      ignore
        (Flight_recorder.snapshot r ~now:(Engine.now t.engine) ~node ~reason ~detail ())

(* ---- request bookkeeping ---------------------------------------------- *)

let conclude ?(outcome = "done") t a =
  if not a.a_done then begin
    a.a_done <- true;
    let m = t.members.(a.a_member) in
    m.inflight <- m.inflight - 1;
    Metrics.set m.g_inflight (float_of_int m.inflight);
    match (t.spans, a.a_span) with
    | Some sp, Some rec_ ->
        Span.finish sp ~at:(Engine.now t.engine) ~attrs:[ ("outcome", outcome) ] rec_
    | _ -> ()
  end

(* Drop the table entry once nothing can reference the request again:
   settled, and every attempt concluded. The request root closes here —
   the per-track watermark stretches it over attempts concluded after
   the settle (hedge losers, late timeouts), so {!Span.check} holds. *)
let maybe_forget t rs =
  if rs.r_settled && List.for_all (fun a -> a.a_done) rs.r_attempts then begin
    (match (t.spans, rs.r_root) with
    | Some sp, Some _ ->
        Span.finish_root sp ~at:(Engine.now t.engine)
          ~attrs:[ ("outcome", rs.r_outcome) ]
          ~req_id:rs.r_req.Request.id ()
    | _ -> ());
    Hashtbl.remove t.requests rs.r_req.Request.id
  end

let final_fail t rs reason =
  if not rs.r_settled then begin
    rs.r_settled <- true;
    rs.r_outcome <- "failed:" ^ reason;
    Metrics.incr t.c_failed;
    trace_emitf t ~what:"fail" "req#%d abandoned (%s)" rs.r_req.Request.id reason;
    observe_failed t ~now:(Engine.now t.engine);
    t.on_failed rs.r_req;
    maybe_forget t rs
  end

(* ---- placement -------------------------------------------------------- *)

(* Members this request may be dispatched to right now. With failover on,
   the management plane filters: only Healthy members whose breaker admits
   traffic. With failover off the controller is blind — crashed nodes
   still receive (and lose) dispatches. Either way a member already
   holding an outstanding attempt of this request is excluded, so a hedge
   never doubles up on one node. *)
let candidates t rs ~now =
  Array.to_list t.members
  |> List.filter (fun m ->
         (not
            (List.exists (fun a -> (not a.a_done) && a.a_member = m.m_id) rs.r_attempts))
         && ((not t.config.failover)
            || (Health.accepts_traffic m.health && Breaker.ready m.breaker ~now)))

let least_loaded pool =
  match pool with
  | [] -> invalid_arg "Cluster.least_loaded: empty"
  | hd :: tl ->
      List.fold_left
        (fun best m ->
          if m.inflight < best.inflight || (m.inflight = best.inflight && m.m_id < best.m_id)
          then m
          else best)
        hd tl

let pick t rs ~now =
  match candidates t rs ~now with
  | [] -> None
  | cands ->
      (* Prefer a member this request has never tried: a retry on the node
         that just failed it learns nothing. *)
      let tried = List.map (fun a -> a.a_member) rs.r_attempts in
      let untried = List.filter (fun m -> not (List.mem m.m_id tried)) cands in
      let pool = if untried <> [] then untried else cands in
      let chosen =
        match t.config.placement with
        | Round_robin ->
            let n = Array.length t.members in
            let rec go k =
              if k >= n then List.hd pool
              else
                let id = (t.rr + k) mod n in
                match List.find_opt (fun m -> m.m_id = id) pool with
                | Some m ->
                    t.rr <- (id + 1) mod n;
                    m
                | None -> go (k + 1)
            in
            go 0
        | Least_loaded -> least_loaded pool
        | Warm_aware ->
            (* A node holding an idle warm container serves without a cold
               start or queueing; fall back to load otherwise. *)
            let warm =
              List.filter (fun m -> Node.warm_idle m.node ~name:rs.r_name > 0) pool
            in
            least_loaded (if warm <> [] then warm else pool)
      in
      Some chosen

(* ---- dispatch / response / failover ----------------------------------- *)

let rec dispatch ?(hedge = false) t rs m =
  let now = Engine.now t.engine in
  if t.config.failover then Breaker.on_dispatch m.breaker ~now;
  m.inflight <- m.inflight + 1;
  Metrics.set m.g_inflight (float_of_int m.inflight);
  rs.r_dispatches <- rs.r_dispatches + 1;
  (* The placement decision itself is an instant span under the root;
     the attempt span then covers the dispatch until it concludes. *)
  (match (t.spans, rs.r_root) with
  | Some sp, Some root ->
      ignore
        (Span.complete sp ~start:now ~stop:now ~parent:root ~name:"place" ~cat:"cluster"
           ~attrs:
             [
               ("placement", placement_name t.config.placement);
               ("node", Printf.sprintf "n%d" m.m_id);
               ("attempt", string_of_int rs.r_dispatches);
               ("hedge", string_of_bool hedge);
             ]
           ())
  | _ -> ());
  let a_span =
    match (t.spans, rs.r_root) with
    | Some sp, Some root ->
        Some
          (Span.start sp ~at:now ~parent:root
             ~name:(Printf.sprintf "attempt-%d" rs.r_dispatches)
             ~cat:"cluster"
             ~attrs:
               [
                 ("node", Printf.sprintf "n%d" m.m_id);
                 ("epoch", string_of_int m.epoch);
                 ("hedge", string_of_bool hedge);
               ]
             ())
    | _ -> None
  in
  let a = { a_member = m.m_id; a_epoch = m.epoch; a_done = false; a_span } in
  rs.r_attempts <- a :: rs.r_attempts;
  trace_emitf t ~what:"dispatch" "req#%d -> n%d (attempt %d)" rs.r_req.Request.id m.m_id
    rs.r_dispatches;
  (if Fault.fire t.fault Fault.Cluster_msg_loss then begin
     (* The dispatch message never reaches the node; with failover on the
        response timeout recovers, with it off the request is stranded. *)
     Metrics.incr t.c_msg_lost;
     trace_emitf t ~what:"msg-loss" "req#%d -> n%d dropped" rs.r_req.Request.id m.m_id
   end
   else begin
     let deliver () =
       if m.up && m.epoch = a.a_epoch then
         Node.submit m.node ~name:rs.r_name rs.r_req ~on_complete:(fun rq inv ->
             on_node_response t rs a rq inv)
       else begin
         (* The node died before the dispatch arrived. *)
         Metrics.incr t.c_msg_lost;
         trace_emitf t ~what:"msg-loss" "req#%d -> n%d (node dead)" rs.r_req.Request.id
           m.m_id
       end
     in
     if m.hung_until > now then Engine.at t.engine ~time:m.hung_until deliver
     else deliver ()
   end);
  if t.config.failover then
    Engine.schedule t.engine ~after:t.config.response_timeout (fun () ->
        on_attempt_timeout t rs a)

(* A response left the node. It may be stale (pre-crash epoch), late
   (after its attempt timed out), or redundant (a hedge lost the race);
   exactly one response per request ever reaches the client. *)
and on_node_response t rs a rq inv =
  let m = t.members.(a.a_member) in
  let now = Engine.now t.engine in
  if m.hung_until > now then
    (* A hung node holds its responses too; they flush when it wakes. *)
    Engine.at t.engine ~time:m.hung_until (fun () -> on_node_response t rs a rq inv)
  else begin
    (if a.a_epoch <> m.epoch || not m.up then begin
       (* The work finished on an incarnation that has since died: the
          response died with it. Concluding here disarms the pending
          response timeout, so failover must happen now, not then. *)
       Metrics.incr t.c_lost;
       conclude ~outcome:"lost" t a;
       if t.config.failover && not rs.r_settled then begin
         if rs.r_first_fail = None then rs.r_first_fail <- Some now;
         try_redispatch t rs
       end
     end
     else begin
       if t.config.failover then Breaker.record_success m.breaker;
       let late = a.a_done in
       let outcome = if rs.r_settled then "wasted" else "win" in
       conclude ~outcome t a;
       if rs.r_settled then Metrics.incr t.c_wasted
       else begin
         rs.r_settled <- true;
         rs.r_outcome <- "served";
         Metrics.incr t.c_served;
         if late then Metrics.incr t.c_late_served;
         (match rs.r_first_fail with
         | Some tf -> Metrics.observe t.h_failover_ms (Time_ns.to_ms (now - tf))
         | None -> ());
         observe_served t ~now ~e2e_ms:(Time_ns.to_ms (now - rs.r_submit)) inv;
         cancel_losers t rs;
         rs.r_respond rq inv
       end
     end);
    maybe_forget t rs
  end

(* The race is decided: remove still-queued duplicate attempts silently.
   An already-executing loser cannot be recalled — it runs to completion
   and its response is counted wasted above. *)
and cancel_losers t rs =
  List.iter
    (fun a ->
      if not a.a_done then begin
        let m = t.members.(a.a_member) in
        if
          m.up && m.epoch = a.a_epoch
          && Node.cancel m.node ~name:rs.r_name ~req_id:rs.r_req.Request.id
        then begin
          Metrics.incr t.c_hedge_cancelled;
          conclude ~outcome:"cancelled" t a
        end
      end)
    rs.r_attempts

and on_attempt_timeout t rs a =
  if not a.a_done then begin
    conclude ~outcome:"timeout" t a;
    if not rs.r_settled then begin
      let now = Engine.now t.engine in
      Metrics.incr t.c_timeouts;
      if rs.r_first_fail = None then rs.r_first_fail <- Some now;
      let m = t.members.(a.a_member) in
      if t.config.failover then Breaker.record_failure m.breaker ~now;
      trace_emitf t ~what:"timeout" "req#%d on n%d (attempt of epoch %d)"
        rs.r_req.Request.id m.m_id a.a_epoch;
      try_redispatch t rs
    end
  end;
  maybe_forget t rs

(* Failover: re-dispatch a request none of whose attempts are still
   outstanding — within the attempt budget and never past the deadline. *)
and try_redispatch t rs =
  if not rs.r_settled then begin
    let now = Engine.now t.engine in
    if not (List.exists (fun a -> not a.a_done) rs.r_attempts) then begin
      if Request.expired rs.r_req ~now then final_fail t rs "deadline"
      else if rs.r_dispatches >= t.config.max_attempts then final_fail t rs "attempts"
      else
        match pick t rs ~now with
        | Some m ->
            Metrics.incr t.c_retries;
            dispatch t rs m
        | None -> (
            (* Nowhere to go right now. With a deadline the wait is bounded
               (each re-check can end in [final_fail "deadline"]); without
               one, waiting could chain forever — fail fast instead. *)
            match rs.r_req.Request.deadline with
            | None -> final_fail t rs "unrouteable"
            | Some _ ->
                Engine.schedule t.engine ~after:t.config.hb_interval (fun () ->
                    try_redispatch t rs))
    end
  end

and on_node_shed t m reason req =
  match Hashtbl.find_opt t.requests req.Request.id with
  | None -> ()
  | Some rs ->
      (match
         List.find_opt (fun a -> (not a.a_done) && a.a_member = m.m_id) rs.r_attempts
       with
      | Some a -> conclude ~outcome:"shed" t a
      | None -> ());
      (if not rs.r_settled then
         match reason with
         | Admission.Expired ->
             (* The deadline passed while queued: no node can help now. *)
             final_fail t rs "expired"
         | Admission.Capacity | Admission.Brownout ->
             (* Node-local overload, not node failure: fail over without a
                breaker penalty — after one heartbeat, so an overloaded
                fleet drains instead of ping-ponging the same request
                between saturated queues within one instant. Without the
                management plane a shed is simply a failure. *)
             if rs.r_first_fail = None then
               rs.r_first_fail <- Some (Engine.now t.engine);
             if t.config.failover then
               Engine.schedule t.engine ~after:t.config.hb_interval (fun () ->
                   try_redispatch t rs)
             else final_fail t rs "shed");
      maybe_forget t rs

(* ---- fleet lifecycle -------------------------------------------------- *)

and fresh_node t m =
  let node =
    Node.create ?trace:t.trace ~metrics:t.metrics
      ~metrics_prefix:(Printf.sprintf "n%d." m.m_id)
      ?rng:(node_rng t m.m_id) ?series:t.series ?recorder:t.recorder t.engine
      t.config.node ~make_strategy:t.make_strategy
  in
  List.iter (fun (name, spec) -> Node.register node ~name spec) (List.rev t.fns);
  Node.set_on_shed node (fun reason req -> on_node_shed t m reason req);
  node

let kill t m ~why =
  m.up <- false;
  m.epoch <- m.epoch + 1;
  m.down_since <- Engine.now t.engine;
  Metrics.set m.g_up 0.0;
  lifecycle_emitf t ~what:why "n%d down (epoch %d)" m.m_id m.epoch

let crash t m =
  Metrics.incr t.c_crashes;
  kill t m ~why:"crash"

(* Restart supervision (failover on): a fresh incarnation replaces the
   node — warm pool, queue and in-flight work of the old one are gone.
   Metrics counters continue (same registry names), so per-node counts
   are cumulative across incarnations. *)
let restart t m =
  let now = Engine.now t.engine in
  m.epoch <- m.epoch + 1;
  m.up <- true;
  m.hung_until <- 0;
  m.restarting <- false;
  m.node <- fresh_node t m;
  Metrics.incr t.c_restarts;
  Metrics.set m.g_up 1.0;
  (match t.spans with
  | Some sp when m.down_since >= 0 ->
      ignore
        (Span.complete sp ~start:m.down_since ~stop:now
           ~track:(900_000 + m.m_id)
           ~name:(Printf.sprintf "n%d-down" m.m_id)
           ~cat:"cluster" ())
  | _ -> ());
  m.down_since <- -1;
  lifecycle_emitf t ~what:"restart" "n%d up (epoch %d)" m.m_id m.epoch

let on_health_transition t m prev next =
  Metrics.set m.g_health (float_of_int (Health.state_index next));
  lifecycle_emitf t ~what:"health" "n%d %s -> %s" m.m_id (Health.state_name prev)
    (Health.state_name next);
  if next = Health.Quarantined then
    record_failure_edge t
      ~node:(Printf.sprintf "n%d" m.m_id)
      ~reason:"quarantine"
      ~detail:(Printf.sprintf "%s -> %s" (Health.state_name prev) (Health.state_name next));
  if t.config.failover && next = Health.Quarantined && not m.restarting then begin
    m.restarting <- true;
    (* Presumed dead. If it was actually alive (hang, partition) the
       supervisor kills it anyway — in-flight work is lost either way. *)
    if m.up then kill t m ~why:"kill";
    Engine.schedule t.engine ~after:t.config.restart_ns (fun () -> restart t m)
  end

(* One heartbeat interval: draw environment faults and observe heartbeats,
   in member-id order so the fault streams replay identically. A hung or
   dead node sends nothing; [Heartbeat_drop] is drawn only for heartbeats
   actually sent (its nth-occurrence rule means "the nth heartbeat"). *)
let rec tick t ~until () =
  let now = Engine.now t.engine in
  (* Roll the series window and re-evaluate burn rates every heartbeat,
     so alerts fire (and clear) even while no requests complete. *)
  (match t.series with Some ts -> Timeseries.tick ts ~now | None -> ());
  List.iter (fun slo -> Slo.tick slo ~now) t.slos;
  Array.iter
    (fun m ->
      (* Draw for every member, dead or alive (a draw on a dead member is
         a no-op): the occurrence index then advances n_nodes per tick
         unconditionally, so member j's draw on tick k (1-based) is
         occurrence (k-1)*n_nodes + j + 1 — and both failover arms of an
         experiment replay the same fault schedule even after their fleet
         histories diverge. *)
      let crash_draw = Fault.fire t.fault Fault.Node_crash in
      let hang_draw = Fault.fire t.fault Fault.Node_hang in
      if m.up && crash_draw then crash t m;
      if m.up && m.hung_until <= now && hang_draw then begin
        m.hung_until <- now + t.config.hang_ns;
        Metrics.incr t.c_hangs;
        lifecycle_emitf t ~what:"hang" "n%d until %d" m.m_id m.hung_until
      end;
      if t.config.failover then begin
        let sends = m.up && m.hung_until <= now in
        let beat = sends && not (Fault.fire t.fault Fault.Heartbeat_drop) in
        if beat then Health.beat m.health else Health.miss m.health;
        (* The transition hook alone would miss a node that dies again
           while still Quarantined (no edge fires): any down member the
           checker presumes dead gets a supervisor, exactly once. *)
        if (not m.up) && (not m.restarting) && Health.presumed_dead m.health then begin
          m.restarting <- true;
          Engine.schedule t.engine ~after:t.config.restart_ns (fun () -> restart t m)
        end
      end)
    t.members;
  let next = now + t.config.hb_interval in
  if next <= until then Engine.at t.engine ~time:next (tick t ~until)

(* ---- construction / API ---------------------------------------------- *)

let create ?trace ?spans ?series ?(slos = []) ?recorder ?metrics ?rng
    ?(fault = Fault.none) engine config ~make_strategy =
  if config.n_nodes < 1 then invalid_arg "Cluster.create: n_nodes must be >= 1";
  if config.max_attempts < 1 then invalid_arg "Cluster.create: max_attempts must be >= 1";
  let metrics = match metrics with Some m -> m | None -> Metrics.create () in
  let c name = Metrics.counter metrics ("cluster." ^ name) in
  let members =
    Array.init config.n_nodes (fun i ->
        let g name = Metrics.gauge metrics (Printf.sprintf "cluster.n%d.%s" i name) in
        let breaker_rng =
          Option.map (fun r -> Rng.named_split r (Printf.sprintf "breaker-%d" i)) rng
        in
        let node =
          Node.create ?trace ~metrics
            ~metrics_prefix:(Printf.sprintf "n%d." i)
            ?rng:(Option.map
                    (fun r -> Rng.named_split r (Printf.sprintf "cluster-node-%d" i))
                    rng)
            ?series ?recorder engine config.node ~make_strategy
        in
        {
          m_id = i;
          node;
          epoch = 0;
          up = true;
          hung_until = 0;
          down_since = -1;
          restarting = false;
          inflight = 0;
          health = Health.create config.health;
          breaker = Breaker.create ?rng:breaker_rng config.breaker;
          g_health = g "health";
          g_breaker = g "breaker";
          g_inflight = g "inflight";
          g_up = g "up";
        })
  in
  let t =
    {
      engine;
      config;
      trace;
      spans;
      series;
      slos;
      recorder;
      metrics;
      fault;
      rng;
      make_strategy;
      members;
      fns = [];
      requests = Hashtbl.create 256;
      rr = 0;
      submitted = 0;
      on_failed = ignore;
      c_served = c "served";
      c_late_served = c "late_served";
      c_failed = c "failed";
      c_retries = c "retries";
      c_hedges = c "hedges";
      c_hedge_cancelled = c "hedge_cancelled";
      c_wasted = c "wasted_responses";
      c_lost = c "lost_responses";
      c_msg_lost = c "msg_lost";
      c_timeouts = c "attempt_timeouts";
      c_crashes = c "crashes";
      c_hangs = c "hangs";
      c_restarts = c "restarts";
      h_failover_ms =
        Metrics.histogram metrics "cluster.failover_ms" ~capacity:8192
          ~seed:(Hashtbl.hash "cluster-failover")
          ~sampling:Metrics.All;
    }
  in
  Array.iter
    (fun m ->
      Node.set_on_shed m.node (fun reason req -> on_node_shed t m reason req);
      Health.set_on_transition m.health (fun prev next -> on_health_transition t m prev next);
      Breaker.set_on_transition m.breaker (fun prev next ->
          Metrics.set m.g_breaker (float_of_int (Breaker.state_index next));
          lifecycle_emitf t ~what:"breaker" "n%d %s -> %s" m.m_id (Breaker.state_name prev)
            (Breaker.state_name next);
          if next = Breaker.Open then
            record_failure_edge t
              ~node:(Printf.sprintf "n%d" m.m_id)
              ~reason:"breaker-open"
              ~detail:
                (Printf.sprintf "%s -> %s" (Breaker.state_name prev)
                   (Breaker.state_name next)));
      Metrics.set m.g_health 0.0;
      Metrics.set m.g_breaker 0.0;
      Metrics.set m.g_inflight 0.0;
      Metrics.set m.g_up 1.0)
    t.members;
  t

let register t ~name spec =
  if List.mem_assoc name t.fns then invalid_arg "Cluster.register: duplicate function";
  t.fns <- (name, spec) :: t.fns;
  Array.iter (fun m -> Node.register m.node ~name spec) t.members

let start t ~until =
  let first = Engine.now t.engine + t.config.hb_interval in
  if first <= until then Engine.at t.engine ~time:first (tick t ~until)

let submit t ~name req ~on_response =
  if not (List.mem_assoc name t.fns) then raise Not_found;
  t.submitted <- t.submitted + 1;
  let now = Engine.now t.engine in
  let root =
    match t.spans with
    | None -> None
    | Some sp ->
        Some
          (Span.ensure_root sp ~at:now ~req_id:req.Request.id
             ~attrs:
               [ ("principal", req.Request.principal.Principal.name); ("fn", name) ]
             ())
  in
  let rs =
    {
      r_req = req;
      r_name = name;
      r_respond = on_response;
      r_submit = now;
      r_root = root;
      r_outcome = "pending";
      r_settled = false;
      r_dispatches = 0;
      r_attempts = [];
      r_first_fail = None;
    }
  in
  Hashtbl.replace t.requests req.Request.id rs;
  (match pick t rs ~now with
  | Some m -> dispatch t rs m
  | None -> (
      match req.Request.deadline with
      | None -> final_fail t rs "unrouteable"
      | Some _ -> Engine.schedule t.engine ~after:t.config.hb_interval (fun () ->
          try_redispatch t rs)));
  match t.config.hedge_after with
  | Some d when t.config.failover ->
      Engine.schedule t.engine ~after:d (fun () ->
          let now = Engine.now t.engine in
          if
            (not rs.r_settled)
            && rs.r_dispatches = 1
            && rs.r_dispatches < t.config.max_attempts
            && not (Request.expired rs.r_req ~now)
          then
            match pick t rs ~now with
            | Some m ->
                Metrics.incr t.c_hedges;
                trace_emitf t ~what:"hedge" "req#%d -> n%d" rs.r_req.Request.id m.m_id;
                dispatch ~hedge:true t rs m
            | None -> ())
  | _ -> ()

let set_on_failed t f = t.on_failed <- f
let metrics t = t.metrics

(* ---- observation ------------------------------------------------------ *)

type member_view = {
  mv_id : int;
  mv_up : bool;
  mv_health : Health.state;
  mv_breaker : Breaker.state;
  mv_inflight : int;
  mv_epoch : int;
}

let member_views t =
  Array.to_list t.members
  |> List.map (fun m ->
         {
           mv_id = m.m_id;
           mv_up = m.up;
           mv_health = Health.state m.health;
           mv_breaker = Breaker.state m.breaker;
           mv_inflight = m.inflight;
           mv_epoch = m.epoch;
         })

type stats = {
  submitted : int;
  served : int;
  late_served : int;
  failed : int;
  retries : int;
  hedges : int;
  hedge_cancelled : int;
  wasted_responses : int;
  lost_responses : int;
  msg_lost : int;
  attempt_timeouts : int;
  crashes : int;
  hangs : int;
  restarts : int;
  node_completions : int;
  inflight : int;
  pending_requests : int;
  failover_ms : float list;
}

let stats t =
  let v = Metrics.counter_value in
  let node_completions =
    Array.fold_left
      (fun acc m ->
        List.fold_left (fun n (s : Node.fn_stats) -> n + s.Node.completed) acc
          (Node.stats m.node))
      0 t.members
  in
  {
    submitted = t.submitted;
    served = v t.c_served;
    late_served = v t.c_late_served;
    failed = v t.c_failed;
    retries = v t.c_retries;
    hedges = v t.c_hedges;
    hedge_cancelled = v t.c_hedge_cancelled;
    wasted_responses = v t.c_wasted;
    lost_responses = v t.c_lost;
    msg_lost = v t.c_msg_lost;
    attempt_timeouts = v t.c_timeouts;
    crashes = v t.c_crashes;
    hangs = v t.c_hangs;
    restarts = v t.c_restarts;
    node_completions;
    inflight = Array.fold_left (fun n (m : member) -> n + m.inflight) 0 t.members;
    pending_requests = Hashtbl.length t.requests;
    failover_ms = Metrics.values t.h_failover_ms;
  }
