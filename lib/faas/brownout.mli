(** Node-level brownout (graceful-degradation) controller.

    Tracks queueing delay against a target and moves through three levels,
    escalating after [escalate_after] consecutive over-target samples and
    recovering hysteretically after [recover_after] consecutive samples
    under [hysteresis * target] (a Schmitt trigger, so the level doesn't
    flap at the boundary). Deterministic: the trajectory is a pure function
    of the observed delays. *)

type level =
  | Normal  (** Full service. *)
  | Degraded
      (** Defer incremental re-snapshotting off the critical path; prefer
          warm containers over cold starts. *)
  | Shedding  (** Additionally drop arrivals below the priority floor. *)

val level_name : level -> string

type config = {
  target_delay_ns : Gh_sim.Time_ns.t;  (** Queueing-delay target. *)
  escalate_after : int;  (** Consecutive breaches before escalating. *)
  recover_after : int;  (** Consecutive clean samples before recovering. *)
  hysteresis : float;
      (** Recovery threshold as a fraction of the target, in (0, 1]. *)
  shed_below_priority : int;
      (** At [Shedding], arrivals with [Principal.priority < this] drop. *)
}

val default_config : config
(** 50 ms target, escalate after 8, recover after 16 at half the target,
    shed priorities below 1. *)

type t

val create : ?trace:Gh_sim.Trace.t -> config -> t
(** With [trace], level changes emit ["brownout"] escalate/recover
    events (timestamped by {!observe}'s [?at]).
    @raise Invalid_argument on a non-sensical config. *)

val observe : ?at:Gh_sim.Time_ns.t -> t -> Gh_sim.Time_ns.t -> bool
(** [observe t delay_ns] feeds one queueing-delay sample (taken at
    dispatch); returns [true] iff the level changed. [at] only timestamps
    the trace event (default 0). *)

val level : t -> level
val config : t -> config

val should_shed : t -> Principal.t -> bool
(** Is this principal's arrival dropped at the current level? *)

val defer_restores : t -> bool
(** Should strategies defer post-completion restore work? True at any
    level above [Normal]. *)

val suppress_cold_starts : t -> bool
(** Should pools with at least one live container avoid cold-starting
    more? True at any level above [Normal]. *)

val escalations : t -> int
val recoveries : t -> int
