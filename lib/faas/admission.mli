(** Bounded admission queue with pluggable shedding policy.

    The shared overload-protection primitive behind Invoker and Node: a
    bounded request buffer that sheds work deterministically (no randomness —
    a fixed seed replays every drop decision), purges entries whose deadline
    has already passed at every hand-off, and counts what it dropped.

    The {!unbounded} configuration reproduces a raw FIFO [Queue.t] exactly:
    admission always succeeds and, for requests without deadlines, no purge
    ever fires — pre-overload-protection runs are bit-identical. *)

type policy =
  | Fifo  (** Drop-tail: reject the newcomer when full. *)
  | Lifo
      (** Newest-first service under saturation: admit the newcomer, drop the
          oldest queued entry. *)
  | Edf_drop
      (** FIFO service but, when full, drop whichever entry (newcomer
          included) has the earliest deadline. Deadline-free entries are
          dropped last. *)
  | Fair_share
      (** When full, drop the newest entry of the {!Principal} holding the
          most queue slots. *)

type reason =
  | Capacity  (** The queue was full. *)
  | Expired  (** The deadline passed while waiting (or on arrival). *)
  | Brownout  (** Dropped by the overload controller's priority shed. *)

val reason_name : reason -> string
val policy_name : policy -> string

type config = { capacity : int; policy : policy }

val unbounded : config
(** [capacity = max_int], FIFO — behaviorally identical to a raw queue. *)

val bounded : ?policy:policy -> int -> config
(** [bounded ?policy capacity]; policy defaults to [Fifo].
    @raise Invalid_argument if [capacity <= 0]. *)

type 'a t
(** A queue of requests with a ['a] payload (completion callbacks etc.). *)

val create :
  ?trace:Gh_sim.Trace.t ->
  ?label:string ->
  ?on_shed:(reason -> Request.t -> 'a -> unit) ->
  config ->
  'a t
(** [on_shed] fires once per dropped entry, including dead-on-arrival
    rejections that were never enqueued. With [trace], every drop emits an
    ["admission"] event stamped with the caller's [~now]; [label] names
    this queue in those events (default ["queue"]). *)

val admit : 'a t -> now:Gh_sim.Time_ns.t -> Request.t -> 'a -> bool
(** Purge expired entries, then enqueue. Returns [false] iff the request
    itself was shed (dead on arrival, or chosen as the victim of a full
    queue); a [true] return can still have shed some {e other} entry. *)

val take : 'a t -> now:Gh_sim.Time_ns.t -> (Request.t * 'a) option
(** Purge expired entries, then pop the next entry in policy order (FIFO
    for all policies except [Lifo], which serves newest-first). *)

val purge_expired : 'a t -> now:Gh_sim.Time_ns.t -> unit
(** Shed every queued entry whose deadline has passed. Called internally by
    {!admit}/{!take}; exposed so owners can purge before counting. *)

val cancel : 'a t -> req_id:int -> 'a option
(** Remove the queued entry for [req_id], if any, {e silently}: no shed or
    expired count, no shed hook, no trace event — a hedged request's loser
    copy was served elsewhere, and cancellation must leave no metrics
    residue. Returns the removed payload. *)

val shed_all : ?now:Gh_sim.Time_ns.t -> 'a t -> reason -> unit
(** Drop everything queued (e.g. when the owning pool is being torn down).
    [now] only timestamps the trace events (default 0). *)

val iter : 'a t -> (Request.t -> 'a -> unit) -> unit

val length : 'a t -> int
val is_empty : 'a t -> bool

val high_water : 'a t -> int
(** Largest queue length ever observed (after admission, before shedding
    brought it back under capacity). *)

val shed_count : 'a t -> int
(** Entries dropped for [Capacity] or [Brownout]. *)

val expired_count : 'a t -> int
(** Entries dropped for [Expired], including dead-on-arrival rejects. *)

val config : 'a t -> config
