(** One function invocation request, as accepted at the platform's HTTP/S
    endpoint. *)

type t = {
  id : int;  (** Unique per experiment run. *)
  principal : Principal.t;  (** The authenticated caller. *)
  nonce : int;  (** Varies the request's private payload. *)
  input_kb : int;  (** Payload size; drives proxying costs. *)
  deadline : Gh_sim.Time_ns.t option;
      (** Absolute simulated instant after which the response is worthless.
          Stamped once at admission (Controller) and immutable thereafter;
          [None] means the request never expires — the pre-overload-protection
          behavior. *)
}

val make :
  id:int -> principal:Principal.t -> ?input_kb:int -> ?deadline:Gh_sim.Time_ns.t -> unit -> t
(** [nonce] defaults to [id]; [input_kb] to 4; [deadline] to [None]. *)

val with_deadline : t -> Gh_sim.Time_ns.t -> t
(** A copy of the request carrying an absolute deadline. *)

val deadline : t -> Gh_sim.Time_ns.t option

val expired : t -> now:Gh_sim.Time_ns.t -> bool
(** [true] iff the request carries a deadline and [now >= deadline]: work
    started at [now] can no longer complete in time, so every hand-off
    sheds it instead of spending a core or restore on it. *)

val remaining_ns : t -> now:Gh_sim.Time_ns.t -> Gh_sim.Time_ns.t option
(** Nanoseconds until the deadline (negative once past); [None] when the
    request has no deadline. *)

val secret : t -> int
(** The private data word this request carries. *)

val pp : Format.formatter -> t -> unit
