(** A fleet of invoker {!Node}s behind one front door, with the
    management plane that keeps requests flowing when nodes fail:
    heartbeat health checking ({!Health}), per-node circuit breakers
    ({!Breaker}), restart supervision, deadline-aware failover retries,
    and hedged requests with loser cancellation.

    Node-level faults come from the shared {!Gh_sim.Fault} plan
    ([Node_crash], [Node_hang], [Cluster_msg_loss], [Heartbeat_drop]) —
    drawn in member-id order once per heartbeat tick, for every member
    whether up or not (a draw on a dead member is a no-op). The crash and
    hang occurrence index therefore advances [n_nodes] per tick
    unconditionally: member [j]'s draw on tick [k] (1-based) is occurrence
    [(k-1) * n_nodes + j + 1], so a fixed seed replays the exact same
    fault schedule even across runs whose fleet histories diverge. A crashed node loses its warm
    pool, queue and in-flight work (stale responses are dropped by an
    epoch check, counted [lost_responses]); a restarted node returns
    through rejoin probation before taking traffic again.

    Delivery is exactly-once: per request, [on_response] or the
    [on_failed] hook fires — never both, never twice. Duplicate
    responses from hedges, retries or timed-out attempts are counted
    [wasted_responses] and suppressed. Conservation invariant: total
    node completions = served + wasted + lost. *)

type placement =
  | Round_robin
  | Least_loaded  (** Fewest outstanding cluster attempts; ties to lowest id. *)
  | Warm_aware
      (** Prefer nodes holding an idle warm container for the function
          (they serve without a cold start), then least-loaded. *)

val placement_name : placement -> string

type config = {
  n_nodes : int;
  node : Node.config;  (** Every member runs this node configuration. *)
  placement : placement;
  failover : bool;
      (** The management plane switch. [true]: health checking, breakers,
          restarts, retries and hedging are active. [false]: dispatch is
          blind and fire-and-forget — crashed nodes keep receiving (and
          losing) requests, nothing is retried or restarted. Both arms
          draw node faults from the same plan, so the comparison isolates
          the plane itself. *)
  hb_interval : Gh_sim.Time_ns.t;  (** Heartbeat (and fault-draw) period. *)
  hang_ns : Gh_sim.Time_ns.t;  (** Duration of a [Node_hang] stall. *)
  response_timeout : Gh_sim.Time_ns.t;
      (** Per-attempt patience before the attempt is presumed lost. *)
  max_attempts : int;  (** Dispatch budget per request, hedges included. *)
  hedge_after : Gh_sim.Time_ns.t option;
      (** [Some d]: a request still unanswered [d] after its first
          dispatch is hedged to a second node; the first response wins
          and still-queued losers are cancelled. [None]: no hedging. *)
  restart_ns : Gh_sim.Time_ns.t;
      (** Quarantine-to-running delay for the supervisor's restart. *)
  health : Health.config;
  breaker : Breaker.config;
}

val default_config : config
(** 3 nodes, least-loaded, failover on, 100 ms heartbeats, 400 ms hangs,
    1 s response timeout, 3 attempts, no hedging, 500 ms restarts,
    {!Health.default_config}, {!Breaker.default_config}. *)

type t

val create :
  ?trace:Gh_sim.Trace.t ->
  ?spans:Gh_sim.Span.t ->
  ?series:Gh_sim.Timeseries.t ->
  ?slos:Gh_sim.Slo.t list ->
  ?recorder:Gh_sim.Flight_recorder.t ->
  ?metrics:Gh_sim.Metrics.t ->
  ?rng:Gh_sim.Rng.t ->
  ?fault:Gh_sim.Fault.t ->
  Gh_sim.Engine.t ->
  config ->
  make_strategy:(string -> Function_model.spec -> Strategy_intf.t) ->
  t
(** Member node [i] registers its metrics under prefix ["n<i>."] in the
    shared registry, and the cluster adds per-node [cluster.n<i>.health]
    / [.breaker] / [.inflight] / [.up] gauges plus fleet-wide counters
    under ["cluster."]. Counters survive restarts (find-or-create), so
    per-node counts are cumulative across incarnations. [fault] defaults
    to {!Gh_sim.Fault.none} — no draws, bit-identical to a fault-free
    build.

    [spans] records cluster-level spans: one request root per submission,
    an instant ["place"] child per placement decision (attrs [placement],
    [node], [attempt], [hedge]), an ["attempt-k"] child per dispatch
    closed with its outcome ([win] / [wasted] / [lost] / [timeout] /
    [cancelled] / [shed]), plus node downtime windows. The root closes
    once the request is settled and every attempt concluded, so
    {!Gh_sim.Span.check} holds on drained failover-on runs. Member nodes
    run without span recording so hedged duplicates cannot collide on
    per-request phase keys.

    [series] is shared with the member nodes (front-door [cluster.e2e_ms]
    sketch plus the nodes' per-function series over the shared registry);
    [slos] are evaluated at the front door only — every served or
    abandoned request, re-ticked each heartbeat; [recorder] snapshots on
    node quarantine and breaker-open edges and is shared with member
    nodes for their container-level edges.
    @raise Invalid_argument if [n_nodes < 1] or [max_attempts < 1]. *)

val register : t -> name:string -> Function_model.spec -> unit
(** Deploy a function on every member (and every future restart).
    @raise Invalid_argument on duplicate names. *)

val start : t -> until:Gh_sim.Time_ns.t -> unit
(** Begin the heartbeat/fault tick loop, one tick per [hb_interval] up to
    and including [until] (a finite chain, so [Engine.run_all] drains).
    Without it no node faults fire and no health state ever changes. *)

val submit :
  t ->
  name:string ->
  Request.t ->
  on_response:(Request.t -> Strategy_intf.invocation -> unit) -> unit
(** Route one request into the fleet. [on_response] fires at most once —
    first valid response wins, duplicates are suppressed; a request that
    exhausts its budget, expires, or becomes unrouteable fires the
    {!set_on_failed} hook instead. Matches {!Controller.sink}, so a
    partial application [fun req ~on_response -> submit t ~name req
    ~on_response] plugs straight into {!Controller.create_sink}.
    @raise Not_found for unregistered functions. *)

val set_on_failed : t -> (Request.t -> unit) -> unit
(** Called exactly once per abandoned request (never for served ones). *)

val metrics : t -> Gh_sim.Metrics.t

type member_view = {
  mv_id : int;
  mv_up : bool;
  mv_health : Health.state;
  mv_breaker : Breaker.state;
  mv_inflight : int;  (** Outstanding cluster attempts on this member. *)
  mv_epoch : int;  (** Incarnation count (bumped on every death). *)
}

val member_views : t -> member_view list
(** Fleet snapshot in member-id order. *)

type stats = {
  submitted : int;
  served : int;  (** Requests whose response reached the client. *)
  late_served : int;
      (** Subset of [served]: the winning response arrived after its
          attempt had already been timed out. *)
  failed : int;  (** Requests abandoned (budget, deadline, unrouteable). *)
  retries : int;  (** Failover re-dispatches (excludes hedges). *)
  hedges : int;
  hedge_cancelled : int;  (** Still-queued losers removed after the win. *)
  wasted_responses : int;  (** Valid responses suppressed as duplicates. *)
  lost_responses : int;  (** Responses that died with their node. *)
  msg_lost : int;  (** Dispatches dropped in transit or sent to the dead. *)
  attempt_timeouts : int;
  crashes : int;
  hangs : int;
  restarts : int;
  node_completions : int;  (** Sum of member completions, all incarnations. *)
  inflight : int;  (** Outstanding attempts fleet-wide (0 once drained). *)
  pending_requests : int;  (** Requests not yet fully accounted (0 once drained). *)
  failover_ms : float list;
      (** Per served-after-failure request: first failure signal to
          winning response, milliseconds. *)
}

val stats : t -> stats
(** Conservation invariant once the engine has drained (failover on):
    [node_completions = served + wasted_responses + lost_responses],
    [inflight = 0] and [pending_requests = 0]. *)
