(** The platform front door: authentication, routing, result handling.

    Adds the end-to-end overhead that is {e not} the invoker's: the paper's
    E2E latencies exceed invoker latencies by roughly 28–43 ms of platform
    machinery, which dilutes Groundhog's relative overhead in Fig. 4
    (a/c/e). The overhead model reproduces that distribution. *)

type overhead_model = {
  base_ns : Gh_sim.Time_ns.t;  (** Deterministic floor of platform work. *)
  jitter_mu_ns : float;  (** Median of the lognormal jitter component. *)
  jitter_sigma : float;
}

val default_overhead : overhead_model

val sample_overhead : overhead_model -> Gh_sim.Rng.t -> Gh_sim.Time_ns.t

type t

type sink = Request.t -> on_response:(Request.t -> Strategy_intf.invocation -> unit) -> unit
(** Whatever sits behind the front door: given an accepted request, it must
    eventually call [on_response] at most once (shed requests never do). *)

type completion = {
  request : Request.t;
  invocation : Strategy_intf.invocation;
  e2e_ns : Gh_sim.Time_ns.t;  (** Client-observed latency. *)
  invoker_ns : Gh_sim.Time_ns.t;  (** Invoker-measured latency (on-path). *)
}

val create :
  ?overhead:overhead_model ->
  ?ttl_ns:Gh_sim.Time_ns.t ->
  ?spans:Gh_sim.Span.t ->
  ?series:Gh_sim.Timeseries.t ->
  ?slos:Gh_sim.Slo.t list ->
  Gh_sim.Engine.t ->
  rng:Gh_sim.Rng.t ->
  Invoker.t ->
  t
(** [ttl_ns] enables deadlines: each accepted request without one is
    stamped [now + ttl_ns], exactly once, at the front door; the deadline
    then propagates through invoker and container dispatch, each of which
    sheds the request if it has already expired. Omitted (the default), no
    deadline is ever stamped — the pre-overload-protection behavior,
    bit-identical. [spans] opens the request's root span at arrival, wraps
    the front/return platform overheads in ["controller"] spans, and closes
    the root at client response with ["outcome"] and ["e2e_ns"]
    attributes — timestamp reads only, zero simulated cost.

    [series] samples client-observed latency into a [controller.e2e_ms]
    window sketch on every completion; [slos] see every completion
    ([ok] iff the outcome is [Completed] or [Poisoned], latency = e2e)
    and every front-door shed (a bad event). Like [spans], both read the
    clock only — no simulated time is charged. *)

val create_sink :
  ?overhead:overhead_model ->
  ?ttl_ns:Gh_sim.Time_ns.t ->
  ?spans:Gh_sim.Span.t ->
  ?series:Gh_sim.Timeseries.t ->
  ?slos:Gh_sim.Slo.t list ->
  Gh_sim.Engine.t ->
  rng:Gh_sim.Rng.t ->
  sink ->
  t
(** Same front door over an arbitrary backend — how a {!Cluster} sits
    behind the controller. {!create} is [create_sink] over
    [Invoker.submit]; RNG splitting and overhead sampling are identical,
    so swapping one for the other never perturbs the random stream. *)

val submit : t -> Request.t -> on_complete:(completion -> unit) -> unit
(** Accept a request at the endpoint now; the completion callback fires when
    the response has traversed the platform back to the client. Requests
    already expired after the front-door overhead are shed (no completion;
    see {!set_on_shed}). *)

val completions : t -> int

val shed : t -> int
(** Requests the controller itself shed at the front door. *)

val set_on_shed : t -> (Request.t -> unit) -> unit
