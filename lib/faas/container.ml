module Engine = Gh_sim.Engine
module Trace = Gh_sim.Trace
module Span = Gh_sim.Span
module Time_ns = Gh_sim.Time_ns
module Rng = Gh_sim.Rng

type state = Idle | Busy | Restoring | Replacing | Quarantined

type failure =
  | Timed_out of Request.t
  | Poisoned_restore of Request.t
  | Corrupt_snapshot of string

type recovery = {
  timeout_ns : Time_ns.t option;
  quarantine_after : int;
  rebuild_backoff : Backoff.t;
  max_rebuild_attempts : int;
}

let default_recovery =
  {
    timeout_ns = Some (Time_ns.of_sec 1.0);
    quarantine_after = 3;
    (* Shared with the cluster breaker's probe pacing: one capped schedule
       for every repair loop in the platform. *)
    rebuild_backoff = Backoff.recovery;
    max_rebuild_attempts = 5;
  }

type scrub = {
  idle_delay : Time_ns.t;
  interval : Time_ns.t;
  blocks_per_slice : int;
}

let default_scrub =
  {
    idle_delay = Time_ns.of_ms 5.0;
    interval = Time_ns.of_ms 1.0;
    blocks_per_slice = 256;
  }

type t = {
  id : int;
  mutable strategy : Strategy_intf.t;
  engine : Engine.t;
  trace : Trace.t option;
  spans : Span.t option;
  recovery : recovery;
  rebuild : (unit -> (Strategy_intf.t, string) result) option;
  rng : Rng.t option;
  scrub : scrub option;
  mutable state : state;
  mutable completed : int;
  mutable on_idle : t -> unit;
  mutable on_failure : t -> failure -> unit;
  mutable on_retired : t -> unit;
  mutable on_scrub : t -> int -> unit;
  mutable consecutive_failures : int;
  mutable failures : int;
  mutable timeouts : int;
  mutable replacements : int;
  mutable recovery_ns : Time_ns.t list;
  mutable scrub_epoch : int;
  mutable scrub_slices : int;
  mutable scrubbed_blocks : int;
  mutable scrub_corruptions : int;
}

let create ?trace ?spans ?(recovery = default_recovery) ?rebuild ?rng ?scrub engine ~id
    strategy =
  {
    id;
    strategy;
    engine;
    trace;
    spans;
    recovery;
    rebuild;
    rng;
    scrub;
    state = Idle;
    completed = 0;
    on_idle = ignore;
    on_failure = (fun _ _ -> ());
    on_retired = ignore;
    on_scrub = (fun _ _ -> ());
    consecutive_failures = 0;
    failures = 0;
    timeouts = 0;
    replacements = 0;
    recovery_ns = [];
    scrub_epoch = 0;
    scrub_slices = 0;
    scrubbed_blocks = 0;
    scrub_corruptions = 0;
  }

let trace_emit t ~what detail =
  Trace.emitf_opt t.trace ~at:(Engine.now t.engine) ~category:"container" ~what "c%d %s" t.id
    detail

(* Span emission for one invocation. Every bound below is already decided
   when the strategy returns (the simulated work is pure), so the whole
   tree — dispatch, exec with its cold-start / on-path-restore / I/O
   children, and the deferred restore with its Breakdown-step children —
   is recorded up front with exact timestamps. Reads [Engine.now] only:
   zero simulated cost. *)
let span_emit t req (inv : Strategy_intf.invocation) ~dispatch_ns =
  match t.spans with
  | None -> ()
  | Some sp ->
      let now = Engine.now t.engine in
      let root =
        Span.ensure_root sp ~at:now ~req_id:req.Request.id
          ~attrs:[ ("principal", req.Request.principal.Principal.name) ]
          ()
      in
      let t1 = now + dispatch_ns in
      if dispatch_ns > 0 then
        ignore
          (Span.complete sp ~start:now ~stop:t1 ~parent:root ~name:"dispatch" ~cat:"container" ());
      let exec_stop = t1 + inv.Strategy_intf.on_path_ns in
      let exec =
        Span.complete sp ~start:t1 ~stop:exec_stop ~parent:root ~name:"exec" ~cat:"container"
          ~attrs:
            [
              ("container", string_of_int t.id);
              ("strategy", t.strategy.Strategy_intf.name);
              ("outcome", Strategy_intf.outcome_name inv.Strategy_intf.outcome);
              ("isolated", string_of_bool inv.Strategy_intf.isolated);
            ]
          ()
      in
      let cursor = ref t1 in
      if inv.Strategy_intf.cold_ns > 0 then begin
        ignore
          (Span.complete sp ~start:!cursor ~stop:(!cursor + inv.Strategy_intf.cold_ns)
             ~parent:exec ~name:"cold-start" ~cat:"container" ());
        cursor := !cursor + inv.Strategy_intf.cold_ns
      end;
      if inv.Strategy_intf.restore_on_path_ns > 0 then begin
        ignore
          (Span.complete sp ~start:!cursor
             ~stop:(!cursor + inv.Strategy_intf.restore_on_path_ns)
             ~parent:exec ~name:"restore-on-path" ~cat:"restore" ());
        cursor := !cursor + inv.Strategy_intf.restore_on_path_ns
      end;
      if inv.Strategy_intf.io_ns > 0 && exec_stop - inv.Strategy_intf.io_ns >= !cursor then
        ignore
          (Span.complete sp ~start:(exec_stop - inv.Strategy_intf.io_ns) ~stop:exec_stop
             ~parent:exec ~name:"actionloop-io" ~cat:"io" ());
      match inv.Strategy_intf.outcome with
      | Strategy_intf.Hung -> ()
      | outcome when inv.Strategy_intf.post_ns > 0 ->
          let label =
            match inv.Strategy_intf.restore_label with "" -> "restore" | l -> l
          in
          let restore =
            Span.complete sp ~start:exec_stop ~stop:(exec_stop + inv.Strategy_intf.post_ns)
              ~parent:root ~name:label ~cat:"restore"
              ~attrs:
                [
                  ("offpath", "true");
                  ("container", string_of_int t.id);
                  ("outcome", Strategy_intf.outcome_name outcome);
                ]
              ()
          in
          (match inv.Strategy_intf.breakdown with
          | Some b ->
              List.iter
                (fun (step, s0, s1) ->
                  ignore
                    (Span.complete sp ~start:s0 ~stop:s1 ~parent:restore ~name:step
                       ~cat:"restore-step" ()))
                (Groundhog_core.Breakdown.intervals b ~start:exec_stop)
          | None -> ())
      | _ -> ()

let id t = t.id
let state t = t.state
let is_idle t = t.state = Idle
let is_quarantined t = t.state = Quarantined
let completed t = t.completed
let strategy t = t.strategy
let failures t = t.failures
let timeouts t = t.timeouts
let replacements t = t.replacements
let recovery_ns t = t.recovery_ns
let set_on_idle t f = t.on_idle <- f
let set_on_failure t f = t.on_failure <- f
let set_on_retired t f = t.on_retired <- f
let set_on_scrub t f = t.on_scrub <- f
let scrub_slices t = t.scrub_slices
let scrubbed_blocks t = t.scrubbed_blocks
let scrub_corruptions t = t.scrub_corruptions

(* The idle/recovery state machine and the scrubber are one recursive knot:
   going idle starts a scrub pass, a corrupt slice fails the container, and
   a completed replacement goes idle again. *)
let rec become_idle t =
  t.state <- Idle;
  t.scrub_epoch <- t.scrub_epoch + 1;
  trace_emit t ~what:"idle" "";
  t.on_idle t;
  (* [on_idle] may have dispatched the next request already; a slice is
     only worth scheduling when the container actually stayed idle. The
     epoch guard catches the remaining races (gone busy and idle again
     before the slice fires). *)
  match t.scrub with
  | Some cfg when t.state = Idle ->
      let epoch = t.scrub_epoch in
      Engine.schedule t.engine ~after:cfg.idle_delay (fun () -> scrub_slice t cfg epoch)
  | _ -> ()

(* One scrub slice: hash-check a bounded number of snapshot blocks against
   their capture-time hashes. Reading memory is free in simulated time (the
   modelled cost is tallied by the strategy's manager), so the slices never
   perturb the request timeline; a pass runs once per idle period and stops
   at the end of the snapshot, so the event queue always drains. *)
and scrub_slice t cfg epoch =
  if t.state = Idle && t.scrub_epoch = epoch then
    match t.strategy.Strategy_intf.scrub cfg.blocks_per_slice with
    | Strategy_intf.Scrub_skip -> ()
    | Strategy_intf.Scrubbed (blocks, finished) ->
        t.scrub_slices <- t.scrub_slices + 1;
        t.scrubbed_blocks <- t.scrubbed_blocks + blocks;
        t.on_scrub t blocks;
        if not finished then
          Engine.schedule t.engine ~after:cfg.interval (fun () -> scrub_slice t cfg epoch)
    | Strategy_intf.Scrub_corrupt why ->
        t.scrub_corruptions <- t.scrub_corruptions + 1;
        trace_emit t ~what:"scrub-corrupt" why;
        fail t (Corrupt_snapshot why)

(* Quarantine: k consecutive recovery failures (or no way to rebuild) mean
   this container is wasting its core on a hot loop — retire it for good.
   The owner (invoker / node) frees the core and memory in [on_retired]. *)
and retire t =
  t.state <- Quarantined;
  trace_emit t ~what:"quarantine"
    (Printf.sprintf "after %d consecutive failures" t.consecutive_failures);
  t.on_retired t

(* Cold restart: re-exec the function process, warm it up, re-snapshot —
   all charged to the fresh strategy's manager and occupying this core for
   the strategy's [init_ns]. A rebuild that itself fails (e.g. a fault
   during the re-snapshot) retries under capped exponential backoff. *)
and replace t rebuild ~started ~attempt =
  t.state <- Replacing;
  trace_emit t ~what:"replace" (Printf.sprintf "cold-restart attempt %d" attempt);
  match rebuild () with
  | Ok (s : Strategy_intf.t) ->
      Engine.schedule t.engine ~after:s.Strategy_intf.init_ns (fun () ->
          t.strategy <- s;
          t.replacements <- t.replacements + 1;
          t.recovery_ns <- (Engine.now t.engine - started) :: t.recovery_ns;
          trace_emit t ~what:"replaced"
            (Printf.sprintf "recovered in %.2fms" (Time_ns.to_ms (Engine.now t.engine - started)));
          become_idle t)
  | Error msg ->
      trace_emit t ~what:"rebuild-failed" msg;
      if attempt >= t.recovery.max_rebuild_attempts then retire t
      else
        let delay = Backoff.delay t.recovery.rebuild_backoff ?rng:t.rng ~attempt in
        Engine.schedule t.engine ~after:delay (fun () ->
            replace t rebuild ~started ~attempt:(attempt + 1))

and fail t failure =
  (* Whatever the flavour, the process (and its snapshot) is done serving:
     kill first, so the strategy releases everything it holds — notably a
     dedup registration — on every recovery path, including the ones that
     end in quarantine. [kill] is idempotent and free. *)
  t.strategy.Strategy_intf.kill ();
  t.failures <- t.failures + 1;
  t.consecutive_failures <- t.consecutive_failures + 1;
  t.on_failure t failure;
  if t.consecutive_failures >= t.recovery.quarantine_after then retire t
  else
    match t.rebuild with
    | None -> retire t
    | Some rebuild -> replace t rebuild ~started:(Engine.now t.engine) ~attempt:1

let submit ?(dispatch_ns = 0) t req ~on_response =
  if t.state <> Idle then invalid_arg "Container.submit: container busy";
  t.state <- Busy;
  trace_emit t ~what:"serve" (Format.asprintf "%a" Request.pp req);
  (* The strategy computes costs immediately (the simulated work is pure);
     the engine realizes them as elapsed simulated time. *)
  let inv = t.strategy.Strategy_intf.invoke req in
  span_emit t req inv ~dispatch_ns;
  match inv.Strategy_intf.outcome with
  | Strategy_intf.Hung -> (
      (* No response will ever arrive. Hang detection is the engine clock
         reaching the platform's per-request timeout, after which the
         process is killed and the container cold-restarted. *)
      match t.recovery.timeout_ns with
      | Some timeout ->
          Engine.schedule t.engine ~after:(dispatch_ns + timeout) (fun () ->
              t.timeouts <- t.timeouts + 1;
              trace_emit t ~what:"timeout"
                (Printf.sprintf "req#%d killed after %.0fms" req.Request.id
                   (Time_ns.to_ms timeout));
              (match t.spans with
              | Some sp ->
                  let now = Engine.now t.engine in
                  ignore
                    (Span.complete sp ~start:now ~stop:now ~track:req.Request.id
                       ~parent:(Span.ensure_root sp ~at:now ~req_id:req.Request.id ())
                       ~name:"timeout-kill" ~cat:"failure" ())
              | None -> ());
              fail t (Timed_out req))
      | None ->
          (* No timeout configured: the container is stuck for good. *)
          trace_emit t ~what:"hang" (Printf.sprintf "req#%d (no timeout)" req.Request.id))
  | outcome ->
      Engine.schedule t.engine ~after:(dispatch_ns + inv.Strategy_intf.on_path_ns) (fun () ->
          t.completed <- t.completed + 1;
          trace_emit t ~what:"respond"
            (Printf.sprintf "req#%d isolated=%b" req.Request.id inv.Strategy_intf.isolated);
          on_response req inv;
          match outcome with
          | Strategy_intf.Poisoned ->
              (* The deferred restore failed: the burned time still occupies
                 the core, then the recovery pipeline takes over. *)
              if inv.Strategy_intf.post_ns > 0 then begin
                t.state <- Restoring;
                trace_emit t ~what:"restore-failed"
                  (Printf.sprintf "%.2fms burned" (Time_ns.to_ms inv.Strategy_intf.post_ns));
                Engine.schedule t.engine ~after:inv.Strategy_intf.post_ns (fun () ->
                    fail t (Poisoned_restore req))
              end
              else fail t (Poisoned_restore req)
          | _ ->
              (* A request served and recovered end-to-end: the container
                 earned its health back. *)
              t.consecutive_failures <- 0;
              if inv.Strategy_intf.post_ns > 0 then begin
                t.state <- Restoring;
                trace_emit t ~what:"restore"
                  (Printf.sprintf "%.2fms deferred" (Time_ns.to_ms inv.Strategy_intf.post_ns));
                Engine.schedule t.engine ~after:inv.Strategy_intf.post_ns (fun () ->
                    become_idle t)
              end
              else become_idle t)
