(** Deployment assembly: the paper's two-VM OpenWhisk setup (§5.1).

    One VM runs the core platform components (modelled by the controller's
    overhead), the other runs the invoker hosting the function containers —
    one per core, each limited to one core, SMT off. *)

type config = {
  n_cores : int;  (** Containers on the invoker VM (1–4 in the paper). *)
  dispatch_ns : Gh_sim.Time_ns.t;  (** Invoker-side per-request overhead. *)
  overhead : Controller.overhead_model;
  seed : int;
}

val default_config : config

type t = {
  engine : Gh_sim.Engine.t;
  controller : Controller.t;
  invoker : Invoker.t;
  services : Services.t;
  rng : Gh_sim.Rng.t;
}

val deploy :
  ?trace:Gh_sim.Trace.t ->
  ?spans:Gh_sim.Span.t ->
  ?series:Gh_sim.Timeseries.t ->
  ?slos:Gh_sim.Slo.t list ->
  ?ttl_ns:Gh_sim.Time_ns.t ->
  ?admission:Admission.config ->
  ?scrub:Container.scrub ->
  config ->
  make_strategy:(int -> Strategy_intf.t) ->
  t
(** Build engine, invoker (with [n_cores] containers) and controller.
    [make_strategy i] supplies container [i]'s isolation strategy.
    [trace] records container transitions for debugging; [spans] records
    the request-scoped span tree across controller, invoker queue and
    containers (see {!Controller.create}). [ttl_ns] makes the controller
    stamp deadlines (see {!Controller.create}); [admission] bounds the
    invoker queue; [scrub] enables idle-time snapshot scrubbing in every
    container (reads memory and the clock only — timings are unchanged in
    corruption-free runs). [series] / [slos] attach windowed time-series
    collection and burn-rate objectives at the controller (see
    {!Controller.create}). All default to off — the uninstrumented
    deployment is bit-identical to earlier revisions. *)
