(** Executable models of FaaS functions.

    A {!spec} describes a function's measurable behaviour: how long it
    computes, how many pages it maps, dirties and reads per invocation, how
    much layout churn it causes, its payload sizes, and its pathologies
    (memory leaks, residue-copying bugs, Node.js GC/restore interaction).
    The 58-benchmark catalog in [gh_workloads] instantiates specs from the
    paper's Appendix A measurements.

    {!build} turns a spec into an {!instance}: a live simulated process
    whose address space has the spec's composition, plus deterministic
    write/read plans. {!invoke} then {e executes} an activation against
    that process — every page write goes through the fault-accounted
    substrate, so isolation overheads (SD re-arm faults, CoW copies,
    restore work) are computed from mechanism, not transcribed from the
    paper. *)

type spec = {
  name : string;
  lang : Runtime.lang;
  exec_ns : Gh_sim.Time_ns.t;  (** Pure compute per invocation (baseline). *)
  exec_jitter : float;  (** Relative sigma of run-to-run noise. *)
  mapped_pages : int;  (** Address-space size after warm-up. *)
  dirtied_pages : int;  (** Pages written per invocation. *)
  read_pages : int;  (** Pages read per invocation (working set). *)
  input_kb : int;
  output_kb : int;
  memleak_pages : int;  (** Pages leaked (never freed) per invocation. *)
  leak_slowdown_ns : int;  (** Extra compute per resident leaked page. *)
  buggy_residue_leak : bool;
      (** The §1 bug: the function copies residual foreign data into its
          response. *)
  gc_extra_dirty : int;
      (** Node.js only: extra pages dirtied on invocations that follow a
          restore (reverted GC bookkeeping re-triggers collection). *)
  gc_exec_penalty : float;
      (** Node.js only: relative compute penalty on post-restore
          invocations. *)
  wasm_factor : float option;
      (** exec ratio wasm/native when compiled for FAASM; [None] if the
          benchmark was not ported to WebAssembly. *)
  fault_gran : int;
      (** Pages covered by one dirtying fault in the write pool (1 = base
          pages; >1 models transparent-huge-page-backed heaps, where the
          paper's Node benchmarks restore far more pages than they
          fault). *)
  scattered_writes : bool;
      (** Dirty pages Bernoulli-randomly instead of in chunks (the §5.2
          microbenchmark's pattern): dirty-run lengths then follow random
          run statistics, which is what makes restore coalescing kick in
          around 60 % density. *)
  service_ops : int;
      (** Platform-service (key-value) round trips per invocation, made
          with the activation's per-caller credentials (§2). Requires
          {!attach_services}. *)
  crash_rate : float;
      (** Probability per invocation that the (buggy) function crashes
          mid-request, leaving the process in an arbitrary state. Restore-
          capable strategies recover by rolling back; BASE must rebuild the
          container. *)
  hang_rate : float;
      (** Probability per invocation that the function never returns
          (deadlock, infinite loop): no response is produced, the container
          is stuck until the platform's request timeout kills and replaces
          it. *)
}

val default_spec : spec
(** A small, fast C-like function; override fields as needed. *)

type response = {
  value : int;  (** The function's output word. *)
  residue : int list;
      (** Foreign secrets the (buggy) function observed and exfiltrated.
          Empty for correct functions — and, with Groundhog, provably empty
          even for buggy ones. *)
  output_kb : int;
  service_denials : int;
      (** Platform-service calls rejected by the ACL for this activation's
          credentials. *)
  crashed : bool;
      (** The function process died mid-request; no usable result. *)
  hung : bool;
      (** The function never returned; this response object exists only for
          the simulator's bookkeeping — the platform sees nothing until its
          timeout fires. *)
}

type instance

val build : ?cost:Gh_kernel.Cost.t -> spec -> instance
(** Spawn the function process with the spec's memory composition. The
    heap and anonymous arenas start lazy; {!warmup} pages them in.
    [cost] defaults to {!Gh_kernel.Cost.default}. *)

val proc : instance -> Gh_proc.Process.t
val spec : instance -> spec
val runtime : instance -> Runtime.t

val attach_services : instance -> Services.t -> unit
(** Give the function access to platform services; each invocation then
    performs the spec's [service_ops] store operations under the calling
    principal's credentials. *)

val mark_clean : instance -> unit
(** Declare the current state as the clean baseline (call right after
    {!warmup}, when the snapshot is about to be — or has just been —
    taken): rebases the brk high-water mark and the leak baseline. *)

val warmup : instance -> Gh_sim.Account.t -> Gh_sim.Rng.t -> Gh_sim.Time_ns.t
(** The dummy request (§4.1): triggers lazy paging, lazy loading and
    global-state initialization so the snapshot captures them. Returns the
    time it took (slower than a regular invocation by the runtime's
    warm-up factor). *)

val invoke :
  instance ->
  Gh_sim.Account.t ->
  Gh_sim.Rng.t ->
  post_restore:bool ->
  Request.t ->
  response
(** Execute one activation: layout churn, page dirtying with the request's
    secret, working-set reads (collecting residue if buggy), leak growth,
    compute-time charge, register scramble. [post_restore] tells the model
    the process was restored since the last invocation (Node.js GC
    effects). *)

val invoke_on :
  instance ->
  Gh_proc.Process.t ->
  Gh_sim.Account.t ->
  Gh_sim.Rng.t ->
  post_restore:bool ->
  Request.t ->
  response
(** Execute the activation inside a forked child of the instance's process
    (fork-based isolation): the child's VMAs are resolved by id, writes pay
    CoW copy faults, reads pay first-touch faults.
    @raise Invalid_argument if the process is not a fork of this instance. *)

val residue_oracle : instance -> Principal.t -> int
(** Testing oracle: scan the whole address space (uncharged) and count
    present pages holding a secret that does not belong to [principal].
    Zero after a Groundhog restore — that is the security property. *)
