module Rng = Gh_sim.Rng
module Time_ns = Gh_sim.Time_ns

type t = {
  base_ns : Time_ns.t;
  cap_ns : Time_ns.t;
  multiplier : float;
  jitter : float;
}

(* The platform's one recovery-pacing schedule. Container cold-restart
   rebuilds and cluster circuit-breaker probes both retry under this
   configuration — a single set of constants, so every repair loop in the
   system saturates at the same 2 s cap instead of each layer inventing
   its own. *)
let recovery =
  { base_ns = Time_ns.of_ms 10.0; cap_ns = Time_ns.of_sec 2.0; multiplier = 2.0; jitter = 0.1 }

let default = recovery

let make ?(base_ns = default.base_ns) ?(cap_ns = default.cap_ns)
    ?(multiplier = default.multiplier) ?(jitter = default.jitter) () =
  if base_ns < 0 || cap_ns < base_ns then invalid_arg "Backoff.make: need 0 <= base <= cap";
  if multiplier < 1.0 then invalid_arg "Backoff.make: multiplier < 1";
  if jitter < 0.0 || jitter >= 1.0 then invalid_arg "Backoff.make: jitter outside [0,1)";
  { base_ns; cap_ns; multiplier; jitter }

let delay ?rng t ~attempt =
  if attempt < 1 then invalid_arg "Backoff.delay: attempt < 1";
  let raw = float_of_int t.base_ns *. (t.multiplier ** float_of_int (attempt - 1)) in
  let capped = Float.min raw (float_of_int t.cap_ns) in
  let jittered =
    match rng with
    | None -> capped
    | Some rng when t.jitter > 0.0 ->
        (* Uniform in [1-jitter, 1+jitter): de-synchronizes retry storms
           without ever exceeding the cap by more than the jitter band. *)
        capped *. (1.0 -. t.jitter +. Rng.float rng (2.0 *. t.jitter))
    | Some _ -> capped
  in
  min t.cap_ns (max 0 (int_of_float jittered))
