(** Capped exponential backoff with optional jitter, in simulated time.

    Used by the recovery pipeline to pace request retries and container
    rebuild attempts: delays grow geometrically from [base_ns] up to
    [cap_ns] (so a persistently failing container never hot-loops but also
    never waits unboundedly), and an optional rng spreads concurrent
    retries apart. Fully deterministic: without an rng the delay is a pure
    function of the attempt number; with one, it draws from the caller's
    seeded stream. *)

type t = {
  base_ns : Gh_sim.Time_ns.t;
  cap_ns : Gh_sim.Time_ns.t;
  multiplier : float;
  jitter : float;  (** Relative half-width of the jitter band, [0, 1). *)
}

val default : t
(** 10 ms base, 2 s cap, doubling, 10 % jitter. An alias of {!recovery}. *)

val recovery : t
(** The shared recovery-pacing configuration: {!Container} cold-restart
    rebuilds and {!Breaker} half-open probes both retry under this exact
    value (physically the same record), so every repair loop saturates at
    the same cap. *)

val make :
  ?base_ns:Gh_sim.Time_ns.t ->
  ?cap_ns:Gh_sim.Time_ns.t ->
  ?multiplier:float ->
  ?jitter:float ->
  unit ->
  t
(** @raise Invalid_argument unless [0 <= base <= cap], [multiplier >= 1]
    and [jitter] is in [0, 1). *)

val delay : ?rng:Gh_sim.Rng.t -> t -> attempt:int -> Gh_sim.Time_ns.t
(** Delay before retry number [attempt] (1-based: attempt 1 waits
    [base_ns]). Never exceeds [cap_ns]. @raise Invalid_argument if
    [attempt < 1]. *)
