(* How an invocation ended, from the platform's point of view. *)
type outcome =
  | Completed  (** Response produced; deferred work (if any) succeeded. *)
  | Crashed
      (** The function died mid-request but the strategy recovered the
          container (restore or rebuild); an error response is produced. *)
  | Hung
      (** The function never returned: no response exists, [on_path_ns] is
          only the work done before the stall. Only a platform timeout
          frees the container. *)
  | Poisoned
      (** The strategy's deferred recovery (restore / re-snapshot) failed:
          the response (if any) was already delivered, but the container
          must never serve again — kill + cold restart required. *)

type invocation = {
  on_path_ns : Gh_sim.Time_ns.t;
  post_ns : Gh_sim.Time_ns.t;
  response : Function_model.response;
  breakdown : Groundhog_core.Breakdown.t option;
  isolated : bool;
  outcome : outcome;
}

type status = [ `Clean | `Dirty | `Restoring | `Poisoned ]

type t = {
  name : string;
  init_ns : Gh_sim.Time_ns.t;
  invoke : Request.t -> invocation;
  snapshot_pages : unit -> int;
  describe : unit -> string;
  status : unit -> status option;
      (** The manager's lifecycle state, [None] for strategies without one
          (fork, base). The fail-closed trace checker polls this at
          dispatch time. *)
  kill : unit -> unit;
      (** SIGKILL the function process: whatever state it held is gone and
          the manager (if any) is poisoned. Idempotent. *)
  degrade : bool -> unit;
      (** Brownout hook: [degrade true] asks the strategy to defer
          non-critical recovery work (e.g. Groundhog's post-completion
          restore) until pressure passes; [degrade false] restores full
          service. Must never weaken isolation across security domains —
          strategies that cannot degrade safely ignore it. *)
}

let no_post inv = inv.post_ns = 0

(* Constructor helpers for strategies (and tests) without a manager. *)
let no_status () = None
let no_kill () = ()
let no_degrade (_ : bool) = ()

let outcome_of_response (r : Function_model.response) =
  if r.Function_model.hung then Hung
  else if r.Function_model.crashed then Crashed
  else Completed

let manager_status mgr : status =
  match Groundhog_core.Manager.status mgr with
  | Groundhog_core.Manager.Clean -> `Clean
  | Groundhog_core.Manager.Dirty -> `Dirty
  | Groundhog_core.Manager.Restoring -> `Restoring
  | Groundhog_core.Manager.Poisoned -> `Poisoned
