(* How an invocation ended, from the platform's point of view. *)
type outcome =
  | Completed  (** Response produced; deferred work (if any) succeeded. *)
  | Crashed
      (** The function died mid-request but the strategy recovered the
          container (restore or rebuild); an error response is produced. *)
  | Hung
      (** The function never returned: no response exists, [on_path_ns] is
          only the work done before the stall. Only a platform timeout
          frees the container. *)
  | Poisoned
      (** The strategy's deferred recovery (restore / re-snapshot) failed:
          the response (if any) was already delivered, but the container
          must never serve again — kill + cold restart required. *)

(* What restore-time hash verification saw for this invocation. *)
type verify_outcome =
  | Unverified  (** No audit ran (policy off, or no restore happened). *)
  | Verified of int  (** Audit passed; the number of blocks it checked. *)
  | Verify_failed of string
      (** Audit caught corruption — the container is poisoned and this
          request must NOT have been served from the corrupt state. *)

type invocation = {
  on_path_ns : Gh_sim.Time_ns.t;
  post_ns : Gh_sim.Time_ns.t;
  response : Function_model.response;
  breakdown : Groundhog_core.Breakdown.t option;
  isolated : bool;
  outcome : outcome;
  verify : verify_outcome;
  (* Span attribution: how the on-path time decomposes. All three are
     *included in* [on_path_ns], never in addition to it, and default to
     zero — they only feed observability, not accounting. *)
  cold_ns : Gh_sim.Time_ns.t;
      (** One-time initialization paid on this request's critical path
          (container cold start). *)
  io_ns : Gh_sim.Time_ns.t;
      (** Actionloop interposition copy costs (input + output). *)
  restore_on_path_ns : Gh_sim.Time_ns.t;
      (** Restore work forced onto the critical path (e.g. settling a
          brownout-deferred restore for a different principal). *)
  restore_label : string;
      (** Name for the deferred [post_ns] work's span (e.g. ["gh-restore"],
          ["reap"], ["criu-restore"]); [""] for a generic ["restore"]. *)
}

(* Smart constructor: strategies state what they know, everything else
   defaults. Keeps the record extensible without touching every literal. *)
let invocation ?(post_ns = 0) ?breakdown ?(isolated = false) ?(verify = Unverified)
    ?(cold_ns = 0) ?(io_ns = 0) ?(restore_on_path_ns = 0) ?(restore_label = "")
    ~on_path_ns ~outcome response =
  {
    on_path_ns;
    post_ns;
    response;
    breakdown;
    isolated;
    outcome;
    verify;
    cold_ns;
    io_ns;
    restore_on_path_ns;
    restore_label;
  }

let outcome_name = function
  | Completed -> "completed"
  | Crashed -> "crashed"
  | Hung -> "hung"
  | Poisoned -> "poisoned"

type status = [ `Clean | `Dirty | `Restoring | `Poisoned ]

(* One bounded slice of idle-time snapshot scrubbing. *)
type scrub_result =
  | Scrubbed of int * bool
      (** [n] blocks verified clean; [true] means the pass reached the end
          of the snapshot (the caller must stop rescheduling slices until
          the next idle period, or the event loop never drains). *)
  | Scrub_corrupt of string
      (** Corruption found in the stored snapshot: the strategy poisoned
          itself (and blasted dedup sharers) — kill + cold restart. *)
  | Scrub_skip
      (** Nothing to scrub: no snapshot, already poisoned, or scrubbing
          deferred (brownout). *)

type t = {
  name : string;
  init_ns : Gh_sim.Time_ns.t;
  invoke : Request.t -> invocation;
  snapshot_pages : unit -> int;
  describe : unit -> string;
  status : unit -> status option;
      (** The manager's lifecycle state, [None] for strategies without one
          (fork, base). The fail-closed trace checker polls this at
          dispatch time. *)
  kill : unit -> unit;
      (** SIGKILL the function process: whatever state it held is gone and
          the manager (if any) is poisoned. Idempotent. *)
  degrade : bool -> unit;
      (** Brownout hook: [degrade true] asks the strategy to defer
          non-critical recovery work (e.g. Groundhog's post-completion
          restore) until pressure passes; [degrade false] restores full
          service. Must never weaken isolation across security domains —
          strategies that cannot degrade safely ignore it. *)
  scrub : int -> scrub_result;
      (** [scrub blocks]: verify up to [blocks] stored snapshot blocks
          against their capture-time hashes. Driven by the container's
          idle-time scrubber; strategies without a snapshot (and degraded
          ones — scrubbing is the definition of non-critical work) return
          [Scrub_skip]. *)
  audit : unit -> [ `Intact | `Corrupt of string ] option;
      (** Ground-truth probe for experiments: does the process image the
          next request would see match the snapshot? [None] when the
          strategy has no such oracle (no snapshot, not clean via an
          actual restore). Free — reads memory only. *)
}

let no_post inv = inv.post_ns = 0

(* Constructor helpers for strategies (and tests) without a manager. *)
let no_status () = None
let no_kill () = ()
let no_degrade (_ : bool) = ()
let no_scrub (_ : int) = Scrub_skip
let no_audit () = None

let outcome_of_response (r : Function_model.response) =
  if r.Function_model.hung then Hung
  else if r.Function_model.crashed then Crashed
  else Completed

let manager_status mgr : status =
  match Groundhog_core.Manager.status mgr with
  | Groundhog_core.Manager.Clean -> `Clean
  | Groundhog_core.Manager.Dirty -> `Dirty
  | Groundhog_core.Manager.Restoring -> `Restoring
  | Groundhog_core.Manager.Poisoned -> `Poisoned
