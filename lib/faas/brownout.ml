(* Node-level brownout controller.

   Watches queueing delay (time from submit to dispatch) against a target
   and degrades in steps when it is breached persistently:

     Normal   — full service: every completed request is followed by
                incremental re-snapshot/restore as usual.
     Degraded — defer re-snapshotting work off the critical path and stop
                cold-starting new containers while any warm one exists.
     Shedding — additionally drop arrivals from principals below a priority
                floor before they are queued.

   Escalation needs [escalate_after] consecutive over-target samples;
   recovery needs [recover_after] consecutive samples under
   [hysteresis * target]. The asymmetric thresholds (classic Schmitt
   trigger) prevent flapping when delay hovers at the boundary. Samples in
   the dead band between the two thresholds reset both streaks.

   Everything is a pure function of the observed delays — no randomness, so
   a fixed seed replays the same level trajectory. *)

module Time_ns = Gh_sim.Time_ns
module Trace = Gh_sim.Trace

type level = Normal | Degraded | Shedding

let level_name = function
  | Normal -> "normal"
  | Degraded -> "degraded"
  | Shedding -> "shedding"

let rank = function Normal -> 0 | Degraded -> 1 | Shedding -> 2
let of_rank = function 0 -> Normal | 1 -> Degraded | _ -> Shedding

type config = {
  target_delay_ns : Time_ns.t;
  escalate_after : int;
  recover_after : int;
  hysteresis : float;
  shed_below_priority : int;
}

let default_config =
  {
    target_delay_ns = Time_ns.of_ms 50.0;
    escalate_after = 8;
    recover_after = 16;
    hysteresis = 0.5;
    shed_below_priority = 1;
  }

let validate cfg =
  if cfg.target_delay_ns <= 0 then invalid_arg "Brownout: target_delay_ns must be positive";
  if cfg.escalate_after <= 0 || cfg.recover_after <= 0 then
    invalid_arg "Brownout: escalate_after/recover_after must be positive";
  if cfg.hysteresis <= 0.0 || cfg.hysteresis > 1.0 then
    invalid_arg "Brownout: hysteresis must be in (0, 1]"

type t = {
  cfg : config;
  trace : Trace.t option;
  mutable level : level;
  mutable over_streak : int;
  mutable under_streak : int;
  mutable escalations : int;
  mutable recoveries : int;
}

let create ?trace cfg =
  validate cfg;
  {
    cfg;
    trace;
    level = Normal;
    over_streak = 0;
    under_streak = 0;
    escalations = 0;
    recoveries = 0;
  }

let level t = t.level
let config t = t.cfg
let escalations t = t.escalations
let recoveries t = t.recoveries

let observe ?(at = 0) t delay_ns =
  let cfg = t.cfg in
  let recover_below = cfg.hysteresis *. float_of_int cfg.target_delay_ns in
  if delay_ns > cfg.target_delay_ns then begin
    t.over_streak <- t.over_streak + 1;
    t.under_streak <- 0;
    if t.over_streak >= cfg.escalate_after && t.level <> Shedding then begin
      t.level <- of_rank (rank t.level + 1);
      t.over_streak <- 0;
      t.escalations <- t.escalations + 1;
      Trace.emitf_opt t.trace ~at ~category:"brownout" ~what:"escalate"
        "-> %s (delay %.2fms over %.2fms target)" (level_name t.level) (Time_ns.to_ms delay_ns)
        (Time_ns.to_ms cfg.target_delay_ns);
      true
    end
    else false
  end
  else if float_of_int delay_ns <= recover_below then begin
    t.under_streak <- t.under_streak + 1;
    t.over_streak <- 0;
    if t.under_streak >= cfg.recover_after && t.level <> Normal then begin
      t.level <- of_rank (rank t.level - 1);
      t.under_streak <- 0;
      t.recoveries <- t.recoveries + 1;
      Trace.emitf_opt t.trace ~at ~category:"brownout" ~what:"recover"
        "-> %s (delay %.2fms under %.0f%% of target)" (level_name t.level)
        (Time_ns.to_ms delay_ns) (100.0 *. cfg.hysteresis);
      true
    end
    else false
  end
  else begin
    (* Dead band: neither clearly overloaded nor clearly recovered. *)
    t.over_streak <- 0;
    t.under_streak <- 0;
    false
  end

let should_shed t principal =
  t.level = Shedding && Principal.priority principal < t.cfg.shed_below_priority

let defer_restores t = t.level <> Normal
let suppress_cold_starts t = t.level <> Normal
