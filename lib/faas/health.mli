(** Heartbeat-driven health suspicion for one node: the
    drain → quarantine → rejoin lifecycle.

    The cluster reports one observation per heartbeat interval — {!beat}
    or {!miss} — and reads back a four-state view: [Healthy] (in
    rotation), [Draining] (suspected: no new placements, in-flight work
    finishes), [Quarantined] (presumed dead: the supervisor may restart
    it), [Rejoining] (probation: heartbeats must hold for a configured
    run before traffic returns, so a flapping node cannot oscillate).

    Pure state machine — no clocks, no events, no randomness — so every
    transition replays identically from the observation sequence. *)

type state = Healthy | Draining | Quarantined | Rejoining

val state_name : state -> string

val state_index : state -> int
(** Healthy 0, Draining 1, Quarantined 2, Rejoining 3 — the per-node
    health gauge encoding. *)

type config = {
  suspect_after : int;  (** Consecutive misses: Healthy → Draining. *)
  quarantine_after : int;  (** Consecutive misses: Draining → Quarantined. *)
  rejoin_after : int;  (** Consecutive beats: Rejoining → Healthy. *)
}

val default_config : config
(** Suspect after 2 missed beats, quarantine after 4, rejoin after 2. *)

type t

val create : config -> t
(** @raise Invalid_argument unless
    [1 <= suspect_after < quarantine_after] and [rejoin_after >= 1]. *)

val state : t -> state

val beat : t -> unit
(** A heartbeat arrived this interval. *)

val miss : t -> unit
(** No heartbeat arrived this interval. *)

val accepts_traffic : t -> bool
(** [state t = Healthy]. *)

val presumed_dead : t -> bool
(** [state t = Quarantined]. *)

val transitions : t -> int

val set_on_transition : t -> (state -> state -> unit) -> unit
(** Observer for gauge/trace updates; called with (previous, next). *)
