(* Controller-side health view of one node, driven by heartbeats.

   The cluster ticks once per heartbeat interval and reports, for each
   node, whether a heartbeat arrived ([beat]) or not ([miss]). Suspicion
   is a pure function of consecutive misses:

     Healthy --misses >= suspect_after--> Draining
     Draining --misses >= quarantine_after--> Quarantined
     Quarantined --beat--> Rejoining --beats >= rejoin_after--> Healthy

   Draining stops new placements but lets in-flight work finish (the
   drain); Quarantined means presumed dead — the supervisor may restart
   the node; Rejoining is probation: heartbeats must hold for
   [rejoin_after] consecutive intervals before traffic returns, so a
   flapping node cannot oscillate in and out of rotation every beat. *)

type state = Healthy | Draining | Quarantined | Rejoining

let state_name = function
  | Healthy -> "healthy"
  | Draining -> "draining"
  | Quarantined -> "quarantined"
  | Rejoining -> "rejoining"

(* Stable encoding for the per-node health gauge. *)
let state_index = function
  | Healthy -> 0
  | Draining -> 1
  | Quarantined -> 2
  | Rejoining -> 3

type config = {
  suspect_after : int;  (* consecutive misses: Healthy -> Draining *)
  quarantine_after : int;  (* consecutive misses: -> Quarantined *)
  rejoin_after : int;  (* consecutive beats: Rejoining -> Healthy *)
}

let default_config = { suspect_after = 2; quarantine_after = 4; rejoin_after = 2 }

type t = {
  config : config;
  mutable state : state;
  mutable misses : int;  (* consecutive missed heartbeats *)
  mutable beats : int;  (* consecutive heartbeats, Rejoining only *)
  mutable transitions : int;
  mutable on_transition : state -> state -> unit;
}

let create config =
  if config.suspect_after < 1 || config.quarantine_after <= config.suspect_after then
    invalid_arg "Health.create: need 1 <= suspect_after < quarantine_after";
  if config.rejoin_after < 1 then invalid_arg "Health.create: rejoin_after must be >= 1";
  {
    config;
    state = Healthy;
    misses = 0;
    beats = 0;
    transitions = 0;
    on_transition = (fun _ _ -> ());
  }

let state t = t.state
let transitions t = t.transitions
let set_on_transition t f = t.on_transition <- f

let accepts_traffic t = t.state = Healthy
let presumed_dead t = t.state = Quarantined

let goto t next =
  if t.state <> next then begin
    let prev = t.state in
    t.state <- next;
    t.transitions <- t.transitions + 1;
    t.on_transition prev next
  end

let beat t =
  t.misses <- 0;
  match t.state with
  | Healthy -> ()
  | Draining ->
      (* It was only slow: back in rotation without probation — nothing
         was torn down. *)
      goto t Healthy
  | Quarantined ->
      t.beats <- 1;
      if t.config.rejoin_after <= 1 then goto t Healthy else goto t Rejoining
  | Rejoining ->
      t.beats <- t.beats + 1;
      if t.beats >= t.config.rejoin_after then goto t Healthy

let miss t =
  t.beats <- 0;
  t.misses <- t.misses + 1;
  match t.state with
  | Healthy -> if t.misses >= t.config.suspect_after then goto t Draining
  | Draining -> if t.misses >= t.config.quarantine_after then goto t Quarantined
  | Quarantined -> ()
  | Rejoining ->
      (* Probation failed: back to presumed dead. *)
      goto t Quarantined
