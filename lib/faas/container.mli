(** A function container in the discrete-event platform simulation.

    Each container runs one isolation strategy instance, pinned to one core:
    it serves one request at a time ([Busy]) and then performs the
    strategy's deferred work ([Restoring]) before becoming [Idle] again.
    Requests never reach the function process while it is restoring —
    Groundhog's buffering rule (§4.5) — which the state machine enforces
    for every strategy uniformly.

    Failures extend the state machine fail-closed: a hung request is
    detected by the engine clock reaching the per-request timeout, a failed
    restore surfaces as a [Poisoned] invocation outcome; both kill the
    function process and enter [Replacing] (cold restart: re-exec +
    warm-up + re-snapshot, paying the strategy's [init_ns] on this core,
    with capped-backoff retries if the rebuild itself fails). A container
    that fails [quarantine_after] consecutive recoveries is [Quarantined]:
    permanently retired, core and memory handed back via [on_retired] —
    never a hot loop, and never a request served from a non-clean
    process. *)

type state = Idle | Busy | Restoring | Replacing | Quarantined

type failure =
  | Timed_out  (** Request hung; process killed at the timeout. *)
  | Poisoned_restore  (** Deferred restore/verify failed after the response. *)

type recovery = {
  timeout_ns : Gh_sim.Time_ns.t option;
      (** Per-request hang timeout; [None] disables detection (a hung
          request then wedges the container forever). *)
  quarantine_after : int;  (** Consecutive failures before retirement. *)
  rebuild_backoff : Backoff.t;  (** Pacing for failed rebuild retries. *)
  max_rebuild_attempts : int;
}

val default_recovery : recovery
(** 1 s timeout, quarantine after 3, {!Backoff.default}, 5 rebuild tries. *)

type t

val create :
  ?trace:Gh_sim.Trace.t ->
  ?spans:Gh_sim.Span.t ->
  ?recovery:recovery ->
  ?rebuild:(unit -> (Strategy_intf.t, string) result) ->
  ?rng:Gh_sim.Rng.t ->
  Gh_sim.Engine.t ->
  id:int ->
  Strategy_intf.t ->
  t
(** [trace] records serve/respond/restore/idle transitions (and the
    recovery transitions). [spans] records the request-scoped span tree for
    every invocation served here: an ["exec"] span (with cold-start,
    on-path-restore and actionloop-I/O children where the strategy reports
    them) plus the deferred ["restore"] span with one child per
    {!Groundhog_core.Breakdown} step, marked [offpath]. Emission reads the
    engine clock only — it never charges simulated time. [rebuild] builds a
    replacement strategy for the cold-restart path; without it any failure
    retires the container. [rng] jitters the rebuild backoff. *)

val id : t -> int
val state : t -> state
val is_idle : t -> bool
val is_quarantined : t -> bool
val completed : t -> int

val strategy : t -> Strategy_intf.t
(** The {e current} strategy — replaced on every cold restart. *)

val failures : t -> int
val timeouts : t -> int
val replacements : t -> int

val recovery_ns : t -> Gh_sim.Time_ns.t list
(** Time from each failure detection to the container serving again
    (MTTR samples), newest first. *)

val set_on_idle : t -> (t -> unit) -> unit
(** Called (at simulated time) whenever the container becomes idle. *)

val set_on_failure : t -> (t -> failure -> Request.t -> unit) -> unit
(** Called at failure detection, before recovery starts. For [Timed_out]
    the request produced no response — the owner may retry it elsewhere;
    for [Poisoned_restore] the response was already delivered. *)

val set_on_retired : t -> (t -> unit) -> unit
(** Called when the container is quarantined: the owner must free its core
    and memory and stop routing to it. *)

val submit :
  ?dispatch_ns:Gh_sim.Time_ns.t ->
  t ->
  Request.t ->
  on_response:(Request.t -> Strategy_intf.invocation -> unit) ->
  unit
(** Start serving a request now (claiming the container immediately; the
    optional dispatch overhead delays the work). The response callback
    fires after dispatch plus on-path time — never for a hung request; the
    container goes idle only after the strategy's deferred work completes
    as well.
    @raise Invalid_argument if the container is not idle. *)
