(** A function container in the discrete-event platform simulation.

    Each container runs one isolation strategy instance, pinned to one core:
    it serves one request at a time ([Busy]) and then performs the
    strategy's deferred work ([Restoring]) before becoming [Idle] again.
    Requests never reach the function process while it is restoring —
    Groundhog's buffering rule (§4.5) — which the state machine enforces
    for every strategy uniformly.

    Failures extend the state machine fail-closed: a hung request is
    detected by the engine clock reaching the per-request timeout, a failed
    restore surfaces as a [Poisoned] invocation outcome; both kill the
    function process and enter [Replacing] (cold restart: re-exec +
    warm-up + re-snapshot, paying the strategy's [init_ns] on this core,
    with capped-backoff retries if the rebuild itself fails). A container
    that fails [quarantine_after] consecutive recoveries is [Quarantined]:
    permanently retired, core and memory handed back via [on_retired] —
    never a hot loop, and never a request served from a non-clean
    process. *)

type state = Idle | Busy | Restoring | Replacing | Quarantined

type failure =
  | Timed_out of Request.t
      (** The request hung; process killed at the timeout. No response was
          produced — the owner may retry it elsewhere. *)
  | Poisoned_restore of Request.t
      (** The deferred restore (or its hash audit) failed after the
          response was already delivered. *)
  | Corrupt_snapshot of string
      (** The idle-time scrubber found a snapshot block whose content no
          longer matches its capture-time hash — detected {e before} any
          request was served from it. The payload is the corruption
          description. *)

type recovery = {
  timeout_ns : Gh_sim.Time_ns.t option;
      (** Per-request hang timeout; [None] disables detection (a hung
          request then wedges the container forever). *)
  quarantine_after : int;  (** Consecutive failures before retirement. *)
  rebuild_backoff : Backoff.t;  (** Pacing for failed rebuild retries. *)
  max_rebuild_attempts : int;
}

val default_recovery : recovery
(** 1 s timeout, quarantine after 3, {!Backoff.default}, 5 rebuild tries. *)

type scrub = {
  idle_delay : Gh_sim.Time_ns.t;
      (** Quiet time after going idle before the first slice (back-to-back
          traffic never sees a scrub). *)
  interval : Gh_sim.Time_ns.t;  (** Pacing between slices of one pass. *)
  blocks_per_slice : int;  (** Snapshot blocks hash-checked per slice. *)
}
(** Idle-time snapshot scrubbing: while the container is idle, walk its
    strategy's stored snapshot in bounded slices and compare each block
    against its capture-time hash. One pass per idle period — the pass
    stops at the end of the snapshot (so the simulation's event queue
    always drains) and a fresh pass starts the next time the container
    goes idle. Slices read memory and the engine clock only; the modelled
    hashing cost is tallied by the strategy's manager off the timeline, so
    enabling scrubbing never changes request timings. A corrupt block
    fails the container with {!Corrupt_snapshot} (kill + cold restart)
    before the snapshot can poison a restore. *)

val default_scrub : scrub
(** 5 ms idle delay, 1 ms between slices, 256 blocks (~64 MB) per slice. *)

type t

val create :
  ?trace:Gh_sim.Trace.t ->
  ?spans:Gh_sim.Span.t ->
  ?recovery:recovery ->
  ?rebuild:(unit -> (Strategy_intf.t, string) result) ->
  ?rng:Gh_sim.Rng.t ->
  ?scrub:scrub ->
  Gh_sim.Engine.t ->
  id:int ->
  Strategy_intf.t ->
  t
(** [trace] records serve/respond/restore/idle transitions (and the
    recovery transitions). [spans] records the request-scoped span tree for
    every invocation served here: an ["exec"] span (with cold-start,
    on-path-restore and actionloop-I/O children where the strategy reports
    them) plus the deferred ["restore"] span with one child per
    {!Groundhog_core.Breakdown} step, marked [offpath]. Emission reads the
    engine clock only — it never charges simulated time. [rebuild] builds a
    replacement strategy for the cold-restart path; without it any failure
    retires the container. [rng] jitters the rebuild backoff. [scrub]
    (default off) enables idle-time snapshot scrubbing. *)

val id : t -> int
val state : t -> state
val is_idle : t -> bool
val is_quarantined : t -> bool
val completed : t -> int

val strategy : t -> Strategy_intf.t
(** The {e current} strategy — replaced on every cold restart. *)

val failures : t -> int
val timeouts : t -> int
val replacements : t -> int

val recovery_ns : t -> Gh_sim.Time_ns.t list
(** Time from each failure detection to the container serving again
    (MTTR samples), newest first. *)

val scrub_slices : t -> int
(** Scrub slices executed (excluding skipped ones). *)

val scrubbed_blocks : t -> int
(** Snapshot blocks hash-checked by the scrubber, lifetime total. *)

val scrub_corruptions : t -> int
(** Corruptions the scrubber detected (each triggered a recovery). *)

val set_on_idle : t -> (t -> unit) -> unit
(** Called (at simulated time) whenever the container becomes idle. *)

val set_on_failure : t -> (t -> failure -> unit) -> unit
(** Called at failure detection, before recovery starts. The strategy has
    already been killed. [Corrupt_snapshot] fires from the {e idle} state:
    an owner that does core accounting must re-claim the core the idle
    transition handed back, because the recovery (and the idle transition
    that ends it) runs on it. *)

val set_on_scrub : t -> (t -> int -> unit) -> unit
(** Called after every clean scrub slice with the number of blocks it
    checked (corrupt slices surface through [set_on_failure] instead). *)

val set_on_retired : t -> (t -> unit) -> unit
(** Called when the container is quarantined: the owner must free its core
    and memory and stop routing to it. *)

val submit :
  ?dispatch_ns:Gh_sim.Time_ns.t ->
  t ->
  Request.t ->
  on_response:(Request.t -> Strategy_intf.invocation -> unit) ->
  unit
(** Start serving a request now (claiming the container immediately; the
    optional dispatch overhead delays the work). The response callback
    fires after dispatch plus on-path time — never for a hung request; the
    container goes idle only after the strategy's deferred work completes
    as well.
    @raise Invalid_argument if the container is not idle. *)
