module Time_ns = Gh_sim.Time_ns

type t = {
  id : int;
  principal : Principal.t;
  nonce : int;
  input_kb : int;
  deadline : Time_ns.t option;
}

let make ~id ~principal ?(input_kb = 4) ?deadline () =
  { id; principal; nonce = id; input_kb; deadline }

let with_deadline t deadline = { t with deadline = Some deadline }
let deadline t = t.deadline

let expired t ~now =
  match t.deadline with None -> false | Some d -> now >= d

let remaining_ns t ~now =
  match t.deadline with None -> None | Some d -> Some (d - now)

let secret t = Principal.secret_word t.principal ~nonce:t.nonce
let pp ppf t = Format.fprintf ppf "req#%d from %a" t.id Principal.pp t.principal
