(** The invoker: the platform component that hosts containers on one VM and
    dispatches requests to them (§5.1's deployment isolates it on its own
    VM; Groundhog lives inside its containers).

    One container per core, as in the paper's throughput setup. Requests
    queue through an {!Admission} buffer when every container is busy or
    restoring — unbounded FIFO by default (the pre-overload-protection
    behavior, bit-identical), bounded with a shedding policy when the
    deployment opts in. Requests whose deadline has already passed are
    rejected at submit and purged at every dequeue.

    With [recovery] enabled the invoker drives the fail-closed pipeline:
    hung requests are killed at the container timeout and retried under
    capped exponential backoff (up to [max_attempts] tries, then reported
    failed), poisoned containers are cold-restarted off the critical path,
    and containers that keep failing are quarantined — their core is lost
    but never hot-looped. *)

type recovery = {
  container : Container.recovery;
  max_attempts : int;  (** Total tries per request (1 = no retry). *)
  retry_backoff : Backoff.t;  (** Pacing between retries of one request. *)
}

val default_recovery : recovery
(** {!Container.default_recovery}, 3 attempts, {!Backoff.default}. *)

type recovery_stats = {
  timeouts : int;  (** Hang timeouts fired. *)
  retries : int;  (** Requests re-submitted after a timeout. *)
  failed_requests : int;  (** Requests abandoned after [max_attempts]. *)
  quarantined : int;  (** Containers permanently retired. *)
  replacements : int;  (** Successful cold restarts. *)
  mttr_ns : Gh_sim.Time_ns.t list;  (** Failure-to-serving-again samples. *)
}

type t

val create :
  ?prestarted:bool ->
  ?trace:Gh_sim.Trace.t ->
  ?spans:Gh_sim.Span.t ->
  ?recovery:recovery ->
  ?rng:Gh_sim.Rng.t ->
  ?scrub:Container.scrub ->
  ?admission:Admission.config ->
  Gh_sim.Engine.t ->
  n_containers:int ->
  dispatch_ns:Gh_sim.Time_ns.t ->
  make_strategy:(int -> Strategy_intf.t) ->
  t
(** [make_strategy i] builds container [i]'s strategy (its own process);
    with [recovery] it is also the cold-restart rebuild path (a [Failure]
    it raises becomes a failed rebuild attempt, retried under backoff).
    With [prestarted = false], each container pays its strategy's one-time
    initialization (runtime boot + warm-up + snapshot) on the simulated
    timeline before serving its first request — container cold starts.
    [rng] jitters the backoff delays; omit it for fully deterministic
    pacing. Without [recovery], hangs wedge their container and poisoned
    containers are retired (fail closed, no replacement). [scrub] enables
    idle-time snapshot scrubbing in every container (see
    {!Container.scrub}); a corruption it finds recovers the container
    through the same pipeline, before any request is served from the bad
    snapshot. [admission]
    (default {!Admission.unbounded}) bounds the wait queue and selects the
    shedding policy. [spans] records request-scoped spans: a root per
    request, an ["invoker-queue"] phase while queued, and the containers'
    exec/restore trees; shed and abandoned requests get their root closed
    here with an ["outcome"] attribute. *)

val submit :
  t -> Request.t -> on_response:(Request.t -> Strategy_intf.invocation -> unit) -> unit
(** Dispatch to an idle container (after the dispatch overhead) or queue. *)

val with_cold_start : Strategy_intf.t -> Strategy_intf.t
(** Wrap a strategy so its one-time initialization lands on its first
    request's critical path (used by cold-started containers). *)

val set_on_failed : t -> (Request.t -> unit) -> unit
(** Called when a request is abandoned after its last retry. *)

val set_on_shed : t -> (Admission.reason -> Request.t -> unit) -> unit
(** Called once per shed request (queue overflow, expiry, or dead on
    arrival); the request will never produce a response. *)

val queue_length : t -> int

val queue_high_water : t -> int
(** Largest backlog the admission queue ever held. *)

val shed_count : t -> int
(** Requests dropped for capacity. *)

val expired_count : t -> int
(** Requests dropped because their deadline passed (in queue or on
    arrival). *)

val completed : t -> int
val containers : t -> Container.t array
val init_ns : t -> Gh_sim.Time_ns.t
(** Total one-time initialization cost across containers. *)

val recovery_stats : t -> recovery_stats
