module Engine = Gh_sim.Engine
module Rng = Gh_sim.Rng
module Span = Gh_sim.Span
module Time_ns = Gh_sim.Time_ns
module Timeseries = Gh_sim.Timeseries
module Slo = Gh_sim.Slo

type overhead_model = {
  base_ns : Time_ns.t;
  jitter_mu_ns : float;
  jitter_sigma : float;
}

(* Calibrated against Appendix A: e2e − invoker ≈ 28–43 ms. *)
let default_overhead =
  { base_ns = Time_ns.of_ms 24.0; jitter_mu_ns = Float.log 8.0e6; jitter_sigma = 0.65 }

let sample_overhead m rng =
  m.base_ns + int_of_float (Rng.lognormal rng ~mu:m.jitter_mu_ns ~sigma:m.jitter_sigma)

(* What sits behind the front door. The classic shape is a single
   [Invoker]; a [Sink] is any request consumer with the same response
   contract — the cluster plugs in here without the controller knowing
   about nodes, placement, or failover. *)
type sink = Request.t -> on_response:(Request.t -> Strategy_intf.invocation -> unit) -> unit

type t = {
  engine : Engine.t;
  rng : Rng.t;
  spans : Span.t option;
  series : Timeseries.t option;
  slos : Slo.t list;
  sink : sink;
  overhead : overhead_model;
  ttl_ns : Time_ns.t option;
  mutable completions : int;
  mutable shed : int;
  mutable on_shed : Request.t -> unit;
}

type completion = {
  request : Request.t;
  invocation : Strategy_intf.invocation;
  e2e_ns : Time_ns.t;
  invoker_ns : Time_ns.t;
}

let create_sink ?(overhead = default_overhead) ?ttl_ns ?spans ?series ?(slos = []) engine
    ~rng sink =
  (match ttl_ns with
  | Some ttl when ttl <= 0 -> invalid_arg "Controller.create: ttl_ns must be positive"
  | _ -> ());
  {
    engine;
    rng = Rng.split rng;
    spans;
    series;
    slos;
    sink;
    overhead;
    ttl_ns;
    completions = 0;
    shed = 0;
    on_shed = ignore;
  }

let create ?overhead ?ttl_ns ?spans ?series ?slos engine ~rng invoker =
  create_sink ?overhead ?ttl_ns ?spans ?series ?slos engine ~rng (fun req ~on_response ->
      Invoker.submit invoker req ~on_response)

let submit t req ~on_complete =
  let t0 = Engine.now t.engine in
  (* The deadline is stamped exactly once, at the front door; requests
     arriving with one already set keep it. *)
  let req =
    match (t.ttl_ns, req.Request.deadline) with
    | Some ttl, None -> Request.with_deadline req (t0 + ttl)
    | _ -> req
  in
  (* Authentication, routing and the trip to the invoker VM. *)
  let front = sample_overhead t.overhead t.rng * 6 / 10 in
  let back = sample_overhead t.overhead t.rng * 4 / 10 in
  (match t.spans with
  | Some sp ->
      let root =
        Span.ensure_root sp ~at:t0 ~req_id:req.Request.id
          ~attrs:[ ("principal", req.Request.principal.Principal.name) ]
          ()
      in
      ignore
        (Span.complete sp ~start:t0 ~stop:(t0 + front) ~parent:root ~name:"controller-front"
           ~cat:"controller" ())
  | None -> ());
  Engine.schedule t.engine ~after:front (fun () ->
      (* The front-door overhead alone can kill a tight deadline: shed here
         rather than ship a dead request to the invoker. *)
      if Request.expired req ~now:(Engine.now t.engine) then begin
        t.shed <- t.shed + 1;
        let now = Engine.now t.engine in
        List.iter
          (fun slo ->
            Slo.record_completion slo ~now ~ok:false ~e2e_ms:Float.infinity ~cold:false;
            Slo.tick slo ~now)
          t.slos;
        (match t.spans with
        | Some sp ->
            Span.finish_root sp ~at:(Engine.now t.engine)
              ~attrs:[ ("outcome", "shed"); ("reason", "expired") ]
              ~req_id:req.Request.id ()
        | None -> ());
        t.on_shed req
      end
      else
        t.sink req ~on_response:(fun request invocation ->
          let respond_at = Engine.now t.engine in
          (match t.spans with
          | Some sp -> (
              match Span.find_root sp ~req_id:request.Request.id with
              | Some root ->
                  ignore
                    (Span.complete sp ~start:respond_at ~stop:(respond_at + back)
                       ~parent:root ~name:"controller-return" ~cat:"controller" ())
              | None -> ())
          | None -> ());
          Engine.schedule t.engine ~after:back (fun () ->
              t.completions <- t.completions + 1;
              let now = Engine.now t.engine in
              let e2e_ms = Time_ns.to_ms (now - t0) in
              (match t.series with
              | Some ts ->
                  Timeseries.tick ts ~now;
                  Timeseries.observe ts ~now "controller.e2e_ms" e2e_ms
              | None -> ());
              let ok =
                match invocation.Strategy_intf.outcome with
                | Strategy_intf.Completed | Strategy_intf.Poisoned -> true
                | Strategy_intf.Crashed | Strategy_intf.Hung -> false
              in
              List.iter
                (fun slo ->
                  Slo.record_completion slo ~now ~ok ~e2e_ms
                    ~cold:(invocation.Strategy_intf.cold_ns > 0);
                  Slo.tick slo ~now)
                t.slos;
              (match t.spans with
              | Some sp ->
                  Span.finish_root sp ~at:now
                    ~attrs:
                      [
                        ( "outcome",
                          Strategy_intf.outcome_name invocation.Strategy_intf.outcome );
                        ("e2e_ns", string_of_int (now - t0));
                      ]
                    ~req_id:request.Request.id ()
              | None -> ());
              on_complete
                {
                  request;
                  invocation;
                  e2e_ns = now - t0;
                  invoker_ns = invocation.Strategy_intf.on_path_ns;
                })))

let completions t = t.completions
let shed t = t.shed
let set_on_shed t f = t.on_shed <- f
