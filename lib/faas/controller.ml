module Engine = Gh_sim.Engine
module Rng = Gh_sim.Rng
module Time_ns = Gh_sim.Time_ns

type overhead_model = {
  base_ns : Time_ns.t;
  jitter_mu_ns : float;
  jitter_sigma : float;
}

(* Calibrated against Appendix A: e2e − invoker ≈ 28–43 ms. *)
let default_overhead =
  { base_ns = Time_ns.of_ms 24.0; jitter_mu_ns = Float.log 8.0e6; jitter_sigma = 0.65 }

let sample_overhead m rng =
  m.base_ns + int_of_float (Rng.lognormal rng ~mu:m.jitter_mu_ns ~sigma:m.jitter_sigma)

type t = {
  engine : Engine.t;
  rng : Rng.t;
  invoker : Invoker.t;
  overhead : overhead_model;
  ttl_ns : Time_ns.t option;
  mutable completions : int;
  mutable shed : int;
  mutable on_shed : Request.t -> unit;
}

type completion = {
  request : Request.t;
  invocation : Strategy_intf.invocation;
  e2e_ns : Time_ns.t;
  invoker_ns : Time_ns.t;
}

let create ?(overhead = default_overhead) ?ttl_ns engine ~rng invoker =
  (match ttl_ns with
  | Some ttl when ttl <= 0 -> invalid_arg "Controller.create: ttl_ns must be positive"
  | _ -> ());
  {
    engine;
    rng = Rng.split rng;
    invoker;
    overhead;
    ttl_ns;
    completions = 0;
    shed = 0;
    on_shed = ignore;
  }

let submit t req ~on_complete =
  let t0 = Engine.now t.engine in
  (* The deadline is stamped exactly once, at the front door; requests
     arriving with one already set keep it. *)
  let req =
    match (t.ttl_ns, req.Request.deadline) with
    | Some ttl, None -> Request.with_deadline req (t0 + ttl)
    | _ -> req
  in
  (* Authentication, routing and the trip to the invoker VM. *)
  let front = sample_overhead t.overhead t.rng * 6 / 10 in
  let back = sample_overhead t.overhead t.rng * 4 / 10 in
  Engine.schedule t.engine ~after:front (fun () ->
      (* The front-door overhead alone can kill a tight deadline: shed here
         rather than ship a dead request to the invoker. *)
      if Request.expired req ~now:(Engine.now t.engine) then begin
        t.shed <- t.shed + 1;
        t.on_shed req
      end
      else
        Invoker.submit t.invoker req ~on_response:(fun request invocation ->
          Engine.schedule t.engine ~after:back (fun () ->
              t.completions <- t.completions + 1;
              on_complete
                {
                  request;
                  invocation;
                  e2e_ns = Engine.now t.engine - t0;
                  invoker_ns = invocation.Strategy_intf.on_path_ns;
                })))

let completions t = t.completions
let shed t = t.shed
let set_on_shed t f = t.on_shed <- f
