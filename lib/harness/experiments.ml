module Catalog = Gh_workloads.Catalog
module Representative = Gh_workloads.Representative

type id =
  | Fig3_left
  | Fig3_right
  | Fig4
  | Fig5
  | Fig6
  | Fig7
  | Fig8
  | Table1
  | Table2
  | Table3
  | Headline
  | Motivation
  | Ablation_tracking
  | Ablation_coalescing
  | Policy_skip
  | Load_latency
  | Snapshot_cost
  | Multi_tenant
  | Crash_recovery
  | Fault_injection
  | Overload
  | Scrub_integrity

let all =
  [ Fig3_left; Fig3_right; Fig4; Fig5; Fig6; Fig7; Fig8; Table1; Table2; Table3; Headline ]

let extras =
  [
    Motivation;
    Ablation_tracking;
    Ablation_coalescing;
    Policy_skip;
    Load_latency;
    Snapshot_cost;
    Multi_tenant;
    Crash_recovery;
    Fault_injection;
    Overload;
    Scrub_integrity;
  ]

let to_string = function
  | Fig3_left -> "fig3-left"
  | Fig3_right -> "fig3-right"
  | Fig4 -> "fig4"
  | Fig5 -> "fig5"
  | Fig6 -> "fig6"
  | Fig7 -> "fig7"
  | Fig8 -> "fig8"
  | Table1 -> "table1"
  | Table2 -> "table2"
  | Table3 -> "table3"
  | Headline -> "headline"
  | Motivation -> "motivation"
  | Ablation_tracking -> "ablation-tracking"
  | Ablation_coalescing -> "ablation-coalescing"
  | Policy_skip -> "policy-skip"
  | Load_latency -> "load-latency"
  | Snapshot_cost -> "snapshot-cost"
  | Multi_tenant -> "multi-tenant"
  | Crash_recovery -> "crash-recovery"
  | Fault_injection -> "fault-injection"
  | Overload -> "overload"
  | Scrub_integrity -> "scrub-integrity"

let of_string s =
  match String.lowercase_ascii s with
  | "fig3-left" | "fig3left" -> Ok Fig3_left
  | "fig3-right" | "fig3right" -> Ok Fig3_right
  | "fig3" -> Ok Fig3_left
  | "fig4" -> Ok Fig4
  | "fig5" -> Ok Fig5
  | "fig6" -> Ok Fig6
  | "fig7" -> Ok Fig7
  | "fig8" -> Ok Fig8
  | "table1" -> Ok Table1
  | "table2" -> Ok Table2
  | "table3" -> Ok Table3
  | "headline" | "summary" -> Ok Headline
  | "motivation" -> Ok Motivation
  | "ablation-tracking" | "uffd" -> Ok Ablation_tracking
  | "ablation-coalescing" | "coalescing" -> Ok Ablation_coalescing
  | "policy-skip" | "policy" -> Ok Policy_skip
  | "load-latency" | "load" -> Ok Load_latency
  | "snapshot-cost" | "snapshot" -> Ok Snapshot_cost
  | "multi-tenant" | "tenant" | "density" -> Ok Multi_tenant
  | "crash-recovery" | "crash" -> Ok Crash_recovery
  | "fault-injection" | "fault" | "faults" -> Ok Fault_injection
  | "overload" | "brownout" -> Ok Overload
  | "scrub-integrity" | "scrub" | "integrity" -> Ok Scrub_integrity
  | other -> Error (Printf.sprintf "unknown experiment %S" other)

let describe = function
  | Fig3_left -> "microbenchmark latency vs % pages dirtied (100K mapped pages)"
  | Fig3_right -> "microbenchmark latency vs address-space size (1K pages dirtied)"
  | Fig4 -> "relative e2e and invoker latency, all 58 benchmarks"
  | Fig5 -> "relative throughput, all 58 benchmarks"
  | Fig6 -> "restoration duration: GH vs FAASM"
  | Fig7 -> "GH throughput scaling with 1-4 cores (14 representative benchmarks)"
  | Fig8 -> "restoration cost breakdown + snapshot cost (14 representative benchmarks)"
  | Table1 -> "absolute latency and throughput for all configurations"
  | Table2 -> "overheads relative to the insecure baseline"
  | Table3 -> "GH latency/throughput vs restoration cost, sorted by restore time"
  | Headline -> "suite-wide medians/percentiles vs the paper's headline claims"
  | Motivation -> "per-request cost of GH vs coldstart and CRIU-style isolation (motivation)"
  | Ablation_tracking -> "soft-dirty bits vs userfaultfd tracking sweep (ablation)"
  | Ablation_coalescing -> "restore-copy run coalescing on/off sweep (ablation)"
  | Policy_skip -> "rollback-skip policy vs caller diversity (extension of 4.4)"
  | Load_latency -> "open-loop latency vs offered load, BASE vs GH (extension)"
  | Snapshot_cost -> "one-time snapshotting cost across the whole catalog (5.5)"
  | Multi_tenant -> "container density under a shared node: BASE vs eager GH vs incremental GH"
  | Crash_recovery -> "restore as fault recovery: occupancy vs crash rate (extension)"
  | Fault_injection ->
      "seeded fault injection: availability/goodput/MTTR/p99 under fail-closed recovery"
  | Overload ->
      "overload sweep: goodput/shedding/deadline misses with protection on vs off"
  | Scrub_integrity ->
      "snapshot integrity: corruption rate x verification policy (hashing, scrubbing, dedup)"

(* Latency/throughput/breakdown sweeps over the catalog are shared between
   the experiments that need them — Table1 after Fig4 must not re-measure.
   The memo used to be a process-global mutable record, which (a) silently
   reused results across configs within one process and (b) raced if two
   callers ever filled a slot concurrently. It is now a value the caller
   threads through one batch of experiments; each slot is a tiny
   single-assignment cell guarded by a mutex + condition so concurrent
   callers block on the one computation instead of duplicating it. *)
type 'a slot = {
  m : Mutex.t;
  cond : Condition.t;
  mutable state : 'a slot_state;
}

and 'a slot_state = Empty | Running | Done of 'a

let slot () = { m = Mutex.create (); cond = Condition.create (); state = Empty }

(* Fill-once: the first caller computes (outside the lock — the sweeps take
   seconds), later callers wait on the condition. A raising computation
   resets the slot so the next caller retries rather than deadlocking. *)
let memo slot compute =
  let rec await () =
    match slot.state with
    | Done v ->
        Mutex.unlock slot.m;
        v
    | Running ->
        Condition.wait slot.cond slot.m;
        await ()
    | Empty -> (
        slot.state <- Running;
        Mutex.unlock slot.m;
        match compute () with
        | v ->
            Mutex.lock slot.m;
            slot.state <- Done v;
            Condition.broadcast slot.cond;
            Mutex.unlock slot.m;
            v
        | exception exn ->
            let bt = Printexc.get_raw_backtrace () in
            Mutex.lock slot.m;
            slot.state <- Empty;
            Condition.broadcast slot.cond;
            Mutex.unlock slot.m;
            Printexc.raise_with_backtrace exn bt)
  in
  Mutex.lock slot.m;
  await ()

type cache = {
  latency : Latency_exp.result list slot;
  tput : Throughput_exp.result list slot;
  breakdown_all : Breakdown_exp.result list slot;
  breakdown_rep : Breakdown_exp.result list slot;
}

(* The config parameter documents the contract — a cache holds results for
   exactly one configuration; reusing it under another cfg would serve that
   config stale sweeps. *)
let cache (_ : Config.t) =
  {
    latency = slot ();
    tput = slot ();
    breakdown_all = slot ();
    breakdown_rep = slot ();
  }

let latency_results cache cfg =
  memo cache.latency (fun () -> Latency_exp.run cfg Catalog.all)

let tput_results cache cfg =
  memo cache.tput (fun () -> Throughput_exp.run cfg Catalog.all)

let breakdown_all cache cfg =
  memo cache.breakdown_all (fun () -> Breakdown_exp.run cfg Catalog.all)

let breakdown_rep cache cfg =
  memo cache.breakdown_rep (fun () -> Breakdown_exp.run cfg Representative.entries)

(* Single-benchmark experiments pin their workload by catalog name; a
   lookup miss used to surface as [Option.get] (anonymous
   [Invalid_argument]) — fail naming the entry instead. *)
let catalog_entry name =
  match Catalog.find name with
  | Some entry -> entry
  | None -> failwith (Printf.sprintf "Experiments: no catalog entry named %S" name)

let run ?cache:c id cfg ppf =
  let cache = match c with Some c -> c | None -> cache cfg in
  let latency_results cfg = latency_results cache cfg in
  let tput_results cfg = tput_results cache cfg in
  let breakdown_all cfg = breakdown_all cache cfg in
  let breakdown_rep cfg = breakdown_rep cache cfg in
  match id with
  | Fig3_left ->
      Microbench_exp.print ppf
        ~title:"Fig 3 (left) — latency (ms) vs % pages dirtied, 100K mapped pages"
        ~x_label:"%dirtied" (Microbench_exp.run_left cfg)
  | Fig3_right ->
      Microbench_exp.print ppf
        ~title:"Fig 3 (right) — latency (ms) vs address-space size, 1K pages dirtied"
        ~x_label:"pages" (Microbench_exp.run_right cfg)
  | Fig4 -> Latency_exp.print_fig4 ppf (latency_results cfg)
  | Fig5 -> Throughput_exp.print_fig5 ppf (tput_results cfg)
  | Fig6 -> Breakdown_exp.print_fig6 ppf (Breakdown_exp.run cfg Catalog.wasm_ported)
  | Fig7 -> Scaling_exp.print_fig7 ppf (Scaling_exp.run cfg Representative.entries)
  | Fig8 -> Breakdown_exp.print_fig8 ppf (breakdown_rep cfg)
  | Table1 -> Tables.print_table1 ppf (latency_results cfg) (tput_results cfg)
  | Table2 -> Tables.print_table2 ppf (latency_results cfg) (tput_results cfg)
  | Table3 ->
      Tables.print_table3 ppf (latency_results cfg) (tput_results cfg) (breakdown_all cfg)
  | Headline ->
      let summary =
        Summary.compute (latency_results cfg) (tput_results cfg) (breakdown_all cfg)
      in
      Summary.print ppf summary
  | Motivation ->
      let entries = List.filter_map Catalog.find Motivation_exp.default_benchmarks in
      Motivation_exp.print ppf (Motivation_exp.run cfg entries)
  | Ablation_tracking -> Ablation_exp.print_tracking ppf (Ablation_exp.run_tracking cfg ())
  | Ablation_coalescing ->
      Ablation_exp.print_coalescing ppf (Ablation_exp.run_coalescing cfg ())
  | Policy_skip ->
      let entry = catalog_entry "deltablue (p)" in
      Policy_exp.print ppf entry (Policy_exp.run cfg entry)
  | Load_latency ->
      let entry = catalog_entry "deltablue (p)" in
      Load_exp.print ppf entry (Load_exp.run cfg entry)
  | Snapshot_cost -> Snapshot_exp.print ppf (Snapshot_exp.run cfg Catalog.all)
  | Multi_tenant ->
      let entries = List.filter_map Catalog.find Tenant_exp.default_functions in
      Tenant_exp.print ppf (Tenant_exp.run cfg entries)
  | Crash_recovery ->
      let entry = catalog_entry "deltablue (p)" in
      Crash_exp.print ppf entry (Crash_exp.run cfg entry)
  | Fault_injection ->
      let entry = catalog_entry "deltablue (p)" in
      Fault_exp.print ppf entry (Fault_exp.run cfg entry)
  | Overload ->
      let entry = catalog_entry "deltablue (p)" in
      Overload_exp.print ppf entry (Overload_exp.run cfg entry)
  | Scrub_integrity ->
      let entry = catalog_entry "deltablue (p)" in
      Scrub_exp.print ppf entry (Scrub_exp.run cfg entry)

(* Each experiment renders into its own buffer-backed formatter (header
   included); the buffers are concatenated in request order, so the merged
   report is byte-for-byte what serial printing straight to [ppf] produced.
   Experiments themselves run one after another — the parallelism lives in
   the per-cell sweeps underneath (see {!Gh_sim.Domain_pool}) — and they
   share one {!cache} so e.g. Table1 after Fig4 reuses the latency sweep. *)
let run_list ids cfg ppf =
  let cache = cache cfg in
  List.iter
    (fun id ->
      let buf = Buffer.create 4096 in
      let bppf = Format.formatter_of_buffer buf in
      Format.fprintf bppf "@.#### %s: %s@." (to_string id) (describe id);
      run ~cache id cfg bppf;
      Format.pp_print_flush bppf ();
      Format.pp_print_string ppf (Buffer.contents buf))
    ids;
  Format.pp_print_flush ppf ()

let run_all cfg ppf = run_list all cfg ppf
let run_extras cfg ppf = run_list extras cfg ppf
