module Rng = Gh_sim.Rng
module Stats = Gh_sim.Stats
module Registry = Gh_isolation.Registry
module Catalog = Gh_workloads.Catalog
module Fm = Gh_faas.Function_model

type point = {
  rate_rps : float;
  base_mean_ms : float;
  base_p95_ms : float;
  gh_mean_ms : float;
  gh_p95_ms : float;
}

let principals =
  [| Gh_faas.Principal.make ~id:1 ~name:"alice"; Gh_faas.Principal.make ~id:2 ~name:"bob" |]

let measure cfg strategy (entry : Catalog.entry) ~n_containers ~rate_rps ~n_requests =
  let seed =
    cfg.Config.seed
    lxor Hashtbl.hash ("load", entry.Catalog.display, Registry.to_string strategy, rate_rps)
  in
  let root = Rng.create seed in
  let deployment =
    Gh_faas.Openwhisk.deploy ?spans:cfg.Config.spans ?series:cfg.Config.series
      ~slos:cfg.Config.slos
      {
        Gh_faas.Openwhisk.n_cores = n_containers;
        dispatch_ns = cfg.Config.dispatch_ns;
        overhead = Gh_faas.Controller.default_overhead;
        seed;
      }
      ~make_strategy:(fun i ->
        match
          Registry.make strategy ~rng:(Rng.named_split root (string_of_int i)) entry.Catalog.spec
        with
        | Ok s -> s
        | Error msg -> failwith msg)
  in
  let results =
    Gh_faas.Client.open_loop deployment.Gh_faas.Openwhisk.engine
      deployment.Gh_faas.Openwhisk.controller ~rng:(Rng.split root) ~rate_rps
      ~n_requests ~principals ~input_kb:entry.Catalog.spec.Fm.input_kb
  in
  Stats.summarize results.Gh_faas.Client.e2e_ms

let run cfg ?(n_containers = 1) ?(utilizations = [ 0.2; 0.4; 0.6; 0.8; 0.95; 1.1 ]) entry =
  (* The GH service rate (incl. restore) anchors the sweep. *)
  let gh_rate =
    match Throughput_exp.run_one ~n_containers cfg Registry.Gh entry with
    | Some m -> m.Throughput_exp.tput_rps
    | None -> failwith "GH unsupported?"
  in
  let n_requests = max 40 (cfg.Config.tput_requests * n_containers) in
  List.map
    (fun u ->
      let rate_rps = u *. gh_rate in
      let base = measure cfg Registry.Base entry ~n_containers ~rate_rps ~n_requests in
      let gh = measure cfg Registry.Gh entry ~n_containers ~rate_rps ~n_requests in
      {
        rate_rps;
        base_mean_ms = base.Stats.mean;
        base_p95_ms = base.Stats.p95;
        gh_mean_ms = gh.Stats.mean;
        gh_p95_ms = gh.Stats.p95;
      })
    utilizations

let print ppf (entry : Catalog.entry) points =
  let rows =
    List.map
      (fun p ->
        [
          Printf.sprintf "%.1f" p.rate_rps;
          Report.fmt_ms p.base_mean_ms;
          Report.fmt_ms p.base_p95_ms;
          Report.fmt_ms p.gh_mean_ms;
          Report.fmt_ms p.gh_p95_ms;
        ])
      points
  in
  Report.table ppf
    ~title:
      (Printf.sprintf
         "Latency vs offered load on %s (open-loop Poisson, 1 container): restoration is \
          invisible until the server nears saturation"
         entry.Catalog.display)
    ~header:[ "offered r/s"; "BASE mean ms"; "BASE p95"; "GH mean ms"; "GH p95" ]
    rows
