(** Crash recovery (extension): restore-as-fault-tolerance.

    A function that crashes mid-request leaves its process in an arbitrary
    state. BASE has nothing to roll back to — the platform rebuilds the
    container, paying a full cold start; Groundhog (and GH_NOP, which keeps
    the snapshot precisely for this) recovers with an ordinary
    restoration, and FORK simply discards the dead child. This experiment
    sweeps the crash rate and reports the per-request container occupancy
    under each strategy: an incidental but real benefit of keeping a clean
    snapshot around. *)

type point = {
  crash_rate : float;
  occupancy_ms : (Gh_isolation.Registry.id * float) list;
      (** Mean on-path + recovery time per {e successful} request: crashed
          episodes still occupy the container (attempt + recovery) but
          deliver nothing, so they inflate the numerator only. *)
  crashes : (Gh_isolation.Registry.id * int) list;
      (** Observed crash count per strategy (each runs its own seeded
          stream, so counts differ across strategies). *)
}

val strategies : Gh_isolation.Registry.id list
(** BASE, GH, GH_NOP, FORK. *)

val run :
  Config.t -> ?rates:float list -> ?requests:int -> Gh_workloads.Catalog.entry -> point list

val print : Format.formatter -> Gh_workloads.Catalog.entry -> point list -> unit
