module Engine = Gh_sim.Engine
module Rng = Gh_sim.Rng
module Time_ns = Gh_sim.Time_ns
module Fault = Gh_sim.Fault
module Stats = Gh_sim.Stats
module Registry = Gh_isolation.Registry
module Catalog = Gh_workloads.Catalog
module Fm = Gh_faas.Function_model
module Intf = Gh_faas.Strategy_intf
module Invoker = Gh_faas.Invoker
module Container = Gh_faas.Container
module Backoff = Gh_faas.Backoff

type row = {
  strategy : Registry.id;
  fault_rate : float;
  offered : int;
  delivered : int;
  crashed : int;
  failed : int;  (** Abandoned after the retry budget, plus lost in wedges. *)
  timeouts : int;
  retries : int;
  quarantined : int;
  replacements : int;
  unsafe_served : int;
  availability : float;
  goodput_rps : float;
  mttr_ms : float;
  p99_ms : float;
}

type point = { fault_rate : float; rows : row list }

let strategies = [ Registry.Base; Registry.Gh; Registry.Gh_nop; Registry.Fork ]
let default_rates = [ 0.0; 1e-4; 1e-3; 1e-2 ]

let principals =
  [| Gh_faas.Principal.make ~id:1 ~name:"alice"; Gh_faas.Principal.make ~id:2 ~name:"bob" |]

(* The fail-closed checker: every dispatch is gated on the strategy's own
   lifecycle state. A strategy without one (fork, base) reports [None] and
   is exempt — it has no provably-clean notion to violate. *)
let guard unsafe (s : Intf.t) =
  {
    s with
    Intf.invoke =
      (fun req ->
        (match s.Intf.status () with
        | Some `Clean | None -> ()
        | Some _ -> incr unsafe);
        s.Intf.invoke req);
  }

let default_recovery =
  {
    Invoker.container =
      {
        Container.timeout_ns = Some (Time_ns.of_sec 1.0);
        quarantine_after = 3;
        rebuild_backoff = Backoff.recovery;
        max_rebuild_attempts = 5;
      };
    max_attempts = 3;
    retry_backoff = Backoff.default;
  }

let measure cfg strategy spec ~fault_rate ~n_containers ~n_requests =
  if not (Registry.supports strategy spec) then None
  else begin
    let seed =
      cfg.Config.seed
      lxor Hashtbl.hash ("fault", spec.Fm.name, Registry.to_string strategy, fault_rate)
    in
    let root = Rng.create seed in
    let engine = Engine.create () in
    let unsafe = ref 0 in
    let builds = Array.make n_containers 0 in
    let make_strategy i =
      let b = builds.(i) in
      builds.(i) <- b + 1;
      let attempt a =
        let fault =
          if fault_rate > 0.0 then
            (* Loud sites only: every fault here aborts its operation and
               surfaces, which is what the fail-closed gate is about. The
               silent corruption sites complete "successfully" and are
               undetectable without hash verification — they get their own
               sweep ({!Scrub_exp}), where the oracle can call them out. *)
            Fault.uniform
              ~seed:(Hashtbl.hash (seed, i, b, a))
              ~prob:fault_rate
              (Fault.restore_sites @ [ Fault.Fn_crash; Fault.Fn_hang ])
          else Fault.none
        in
        Registry.make strategy ~fault
          ~rng:(Rng.named_split root (Printf.sprintf "c%d.%d.%d" i b a))
          spec
      in
      if b = 0 then begin
        (* Deploy-time builds are retried by the platform until one sticks
           (deterministically: the retry index feeds the plan seed). *)
        let rec go a =
          match attempt a with
          | Ok s -> guard unsafe s
          | Error _ when a < 50 -> go (a + 1)
          | Error msg -> failwith msg
        in
        go 0
      end
      else
        (* Cold-restart rebuilds surface their faults to the recovery
           pipeline, which paces retries with backoff. *)
        match attempt 0 with Ok s -> guard unsafe s | Error msg -> failwith msg
    in
    let recovery =
      (* Hang timeout scaled to the workload so slow benchmarks aren't
         killed while legitimately computing. *)
      let timeout = Time_ns.of_sec 1.0 + (8 * spec.Fm.exec_ns) in
      {
        default_recovery with
        Invoker.container =
          { default_recovery.Invoker.container with Container.timeout_ns = Some timeout };
      }
    in
    let invoker =
      Invoker.create ~trace:(Gh_sim.Trace.create ()) ~recovery ~rng:(Rng.split root) engine
        ~n_containers ~dispatch_ns:cfg.Config.dispatch_ns ~make_strategy
    in
    let delivered = ref 0 and crashed = ref 0 in
    let e2e_ms = ref [] in
    let interval_ns = max (Time_ns.of_ms 1.0) (2 * spec.Fm.exec_ns / n_containers) in
    (* Batch-admit the arrival schedule; list order preserves the seq
       tie-break of the former per-request [Engine.at] loop. *)
    Engine.at_batch engine
      (List.init n_requests (fun j ->
           let i = j + 1 in
           let at = i * interval_ns in
           ( at,
             fun () ->
               let req =
                 Gh_faas.Request.make ~id:i
                   ~principal:principals.(i land 1)
                   ~input_kb:spec.Fm.input_kb ()
               in
               Invoker.submit invoker req ~on_response:(fun _ inv ->
                   match inv.Intf.outcome with
                   | Intf.Crashed -> incr crashed
                   | Intf.Completed | Intf.Poisoned | Intf.Hung ->
                       (* [Poisoned] is a delivered response whose deferred
                          restore then failed; [Hung] never reaches here. *)
                       incr delivered;
                       e2e_ms := Time_ns.to_ms (Engine.now engine - at) :: !e2e_ms) )));
    Engine.run_all engine;
    let duration_s = Time_ns.to_ms (Engine.now engine) /. 1000.0 in
    let rs = Invoker.recovery_stats invoker in
    let lost = n_requests - !delivered - !crashed - rs.Invoker.failed_requests in
    let mttr_ms =
      match rs.Invoker.mttr_ns with
      | [] -> Float.nan
      | samples ->
          Stats.mean (Array.of_list (List.map Time_ns.to_ms samples))
    in
    let p99_ms =
      match !e2e_ms with
      | [] -> Float.nan
      | samples -> (Stats.summarize (Array.of_list samples)).Stats.p99
    in
    Some
      {
        strategy;
        fault_rate;
        offered = n_requests;
        delivered = !delivered;
        crashed = !crashed;
        failed = rs.Invoker.failed_requests + max 0 lost;
        timeouts = rs.Invoker.timeouts;
        retries = rs.Invoker.retries;
        quarantined = rs.Invoker.quarantined;
        replacements = rs.Invoker.replacements;
        unsafe_served = !unsafe;
        availability =
          (if n_requests = 0 then Float.nan
           else float_of_int !delivered /. float_of_int n_requests);
        goodput_rps =
          (if duration_s <= 0.0 then 0.0 else float_of_int !delivered /. duration_s);
        mttr_ms;
        p99_ms;
      }
  end

let run cfg ?(rates = default_rates) ?(n_containers = 2) ?(requests = 120)
    (entry : Catalog.entry) =
  List.map
    (fun fault_rate ->
      {
        fault_rate;
        rows =
          List.filter_map
            (fun strategy ->
              measure cfg strategy entry.Catalog.spec ~fault_rate ~n_containers
                ~n_requests:requests)
            strategies;
      })
    rates

let total_unsafe points =
  List.fold_left
    (fun n p -> List.fold_left (fun n r -> n + r.unsafe_served) n p.rows)
    0 points

let print ppf (entry : Catalog.entry) points =
  let header =
    [
      "fault rate";
      "strategy";
      "avail";
      "goodput r/s";
      "p99 ms";
      "MTTR ms";
      "timeout";
      "retry";
      "fail";
      "quar";
      "rebuild";
      "unsafe";
    ]
  in
  let fmt_opt v = if Float.is_nan v then "-" else Printf.sprintf "%.1f" v in
  let rows =
    List.concat_map
      (fun p ->
        List.map
          (fun r ->
            [
              Printf.sprintf "%.2f%%" (100.0 *. p.fault_rate);
              String.uppercase_ascii (Registry.to_string r.strategy);
              Printf.sprintf "%.1f%%" (100.0 *. r.availability);
              Printf.sprintf "%.1f" r.goodput_rps;
              fmt_opt r.p99_ms;
              fmt_opt r.mttr_ms;
              string_of_int r.timeouts;
              string_of_int r.retries;
              string_of_int r.failed;
              string_of_int r.quarantined;
              string_of_int r.replacements;
              string_of_int r.unsafe_served;
            ])
          p.rows)
      points
  in
  Report.table ppf
    ~title:
      (Printf.sprintf
         "Fault injection on %s: availability, goodput, MTTR and p99 vs fault rate — \
          fail-closed recovery (kill, cold-restart, re-snapshot; quarantine after repeated \
          failures). 'unsafe' counts requests served by a non-clean process and must be 0."
         entry.Catalog.display)
    ~header rows
