type t = {
  seed : int;
  latency_requests : int;
  latency_requests_medium : int;
  latency_requests_long : int;
  tput_requests : int;
  microbench_requests : int;
  breakdown_requests : int;
  n_containers : int;
  dispatch_ns : Gh_sim.Time_ns.t;
  (* Observability sinks. [None] (the default everywhere) runs the
     experiments without instrumentation; attaching collectors never
     changes simulated behavior, only records it. *)
  spans : Gh_sim.Span.t option;
  metrics : Gh_sim.Metrics.t option;
  series : Gh_sim.Timeseries.t option;
  slos : Gh_sim.Slo.t list;
  jobs : int;
}

let default =
  {
    seed = 42;
    latency_requests = 120;
    latency_requests_medium = 30;
    latency_requests_long = 8;
    tput_requests = 120;
    microbench_requests = 40;
    breakdown_requests = 25;
    n_containers = 4;
    dispatch_ns = Gh_sim.Time_ns.of_us 800.0;
    spans = None;
    metrics = None;
    series = None;
    slos = [];
    jobs = 1;
  }

let full =
  {
    default with
    latency_requests = 1_200;
    latency_requests_medium = 200;
    latency_requests_long = 90;
    tput_requests = 600;
    microbench_requests = 150;
    breakdown_requests = 100;
  }

let quick =
  {
    default with
    latency_requests = 20;
    latency_requests_medium = 8;
    latency_requests_long = 3;
    tput_requests = 20;
    microbench_requests = 8;
    breakdown_requests = 6;
  }

(* Observability collectors are plain mutable structures shared across
   every cell of a sweep; rather than wrap each sink in a lock (distorting
   what the traces measure), an instrumented run simply stays serial. *)
let instrumented t =
  t.spans <> None || t.metrics <> None || t.series <> None || t.slos <> []

let effective_jobs t = if instrumented t then 1 else max 1 t.jobs

(* The CLI flags responsible for the serial downgrade, for the warning
   the driver prints when [jobs > 1] is being overridden. *)
let downgrade_reasons t =
  List.filter_map
    (fun (cond, flag) -> if cond then Some flag else None)
    [
      (t.spans <> None, "--trace-out");
      (t.metrics <> None, "--metrics-out");
      (t.series <> None, "--series-out");
      (t.slos <> [], "--slo");
    ]

let sec = 1_000_000_000

let latency_requests_for t (spec : Gh_faas.Function_model.spec) =
  if spec.Gh_faas.Function_model.exec_ns > 10 * sec then t.latency_requests_long
  else if spec.Gh_faas.Function_model.exec_ns > 1 * sec then t.latency_requests_medium
  else t.latency_requests

let tput_requests_for t (spec : Gh_faas.Function_model.spec) =
  if spec.Gh_faas.Function_model.exec_ns > 10 * sec then max 4 (t.tput_requests / 30)
  else if spec.Gh_faas.Function_model.exec_ns > 1 * sec then max 8 (t.tput_requests / 6)
  else t.tput_requests
