module Rng = Gh_sim.Rng
module Time_ns = Gh_sim.Time_ns
module Registry = Gh_isolation.Registry
module Microbench = Gh_workloads.Microbench
module Fm = Gh_faas.Function_model
module Intf = Gh_faas.Strategy_intf

type point = {
  x : float;
  low_ms : (Registry.id * float) list;
  high_ms : (Registry.id * float) list;
}

let strategies = [ Registry.Base; Registry.Gh; Registry.Gh_nop; Registry.Fork ]

let principals =
  [|
    Gh_faas.Principal.make ~id:1 ~name:"alice";
    Gh_faas.Principal.make ~id:2 ~name:"bob";
  |]

(* One (strategy, spec) measurement: mean on-path latency (low load) and
   mean on-path + deferred-work latency (high load, back-to-back). *)
let measure cfg strategy spec =
  if not (Registry.supports strategy spec) then None
  else begin
    let seed = cfg.Config.seed lxor Hashtbl.hash ("ubench", spec.Fm.name, Registry.to_string strategy) in
    let rng = Rng.create seed in
    (* Verified restores (tallied off the timeline): timings identical. *)
    match Registry.make strategy ~verify:Groundhog_core.Manager.Verify_full ~rng spec with
    | Error _ -> None
    | Ok strat ->
        let n = cfg.Config.microbench_requests in
        let discard = 2 in
        let low = ref 0.0 and high = ref 0.0 in
        for i = -discard to n - 1 do
          let req =
            Gh_faas.Request.make ~id:(i + discard + 1) ~principal:principals.((i + discard) mod 2)
              ~input_kb:spec.Fm.input_kb ()
          in
          let inv = strat.Intf.invoke req in
          if i >= 0 then begin
            low := !low +. Time_ns.to_ms inv.Intf.on_path_ns;
            high := !high +. Time_ns.to_ms (inv.Intf.on_path_ns + inv.Intf.post_ns)
          end
        done;
        let n = float_of_int n in
        Some (!low /. n, !high /. n)
  end

(* One cell per (sweep point, strategy): [measure] seeds from the spec's
   name and the strategy, so the flattened product fans across domains and
   regroups by index into the same per-point assoc lists as the serial
   nested loop would build. *)
let run_points cfg specs =
  let n_s = List.length strategies in
  let cells =
    List.concat_map (fun (_, spec) -> List.map (fun s -> (spec, s)) strategies) specs
  in
  let arr =
    Array.of_list
      (Gh_sim.Domain_pool.parallel_map ~jobs:(Config.effective_jobs cfg)
         (fun (spec, s) -> measure cfg s spec)
         cells)
  in
  List.mapi
    (fun i (x, _) ->
      let low = ref [] and high = ref [] in
      List.iteri
        (fun j strategy ->
          match arr.((i * n_s) + j) with
          | Some (l, h) ->
              low := (strategy, l) :: !low;
              high := (strategy, h) :: !high
          | None -> ())
        strategies;
      { x; low_ms = List.rev !low; high_ms = List.rev !high })
    specs

let run_left cfg =
  run_points cfg
    (List.map
       (fun fraction -> (100.0 *. fraction, Microbench.fig3_left_spec fraction))
       Microbench.fig3_left_fractions)

let run_right cfg =
  run_points cfg
    (List.map
       (fun pages -> (float_of_int pages, Microbench.fig3_right_spec pages))
       Microbench.fig3_right_sizes)

let print ppf ~title ~x_label points =
  let columns =
    List.concat_map
      (fun s ->
        let name = String.uppercase_ascii (Registry.to_string s) in
        [ name ^ " low"; name ^ " high" ])
      strategies
  in
  let rows =
    List.map
      (fun p ->
        ( p.x,
          List.concat_map
            (fun s ->
              [
                List.assoc_opt s p.low_ms;
                List.assoc_opt s p.high_ms;
              ])
            strategies ))
      points
  in
  Report.series ppf ~title ~x_label ~columns rows
