module Engine = Gh_sim.Engine
module Rng = Gh_sim.Rng
module Time_ns = Gh_sim.Time_ns
module Stats = Gh_sim.Stats
module Catalog = Gh_workloads.Catalog
module Fm = Gh_faas.Function_model
module Node = Gh_faas.Node
module Manager = Groundhog_core.Manager

type mode = Base | Gh_eager | Gh_incremental

type result = {
  memory_mb : int;
  mode : mode;
  completed : int;
  cold_starts : int;
  evictions : int;
  mean_e2e_ms : float;
  p95_e2e_ms : float;
  high_water_mb : int;
  shed : int;
  expired : int;
  leftover_queue : int;
}

let mode_to_string = function
  | Base -> "base"
  | Gh_eager -> "gh-eager"
  | Gh_incremental -> "gh-incremental"

(* Short functions whose combined compute demand fits the node's cores, so
   that memory density and cold starts — not raw core saturation — drive
   the differences. For warm Python functions the eager snapshot buffer
   (all present pages) nearly doubles a container's memory, so under a
   tight budget eager Groundhog fits visibly fewer warm containers. *)
let default_functions =
  [
    "version (p)";
    "deltablue (p)";
    "json (p)";
    "telco (p)";
    "pickle (p)";
    "float (p)";
    "atax (c)";
    "jacobi-1d (c)";
  ]

let principals =
  [| Gh_faas.Principal.make ~id:1 ~name:"alice"; Gh_faas.Principal.make ~id:2 ~name:"bob" |]

let make_strategy mode root name spec =
  let rng = Rng.named_split root name in
  match mode with
  | Base -> Gh_isolation.Base.make ~rng spec
  | Gh_eager -> Gh_isolation.Gh.make ~rng spec
  | Gh_incremental -> Gh_isolation.Gh.make ~mode:Manager.Incremental ~rng spec

let run_mode cfg ~memory_mb ~duration_s ~rate_rps entries mode =
  let seed = cfg.Config.seed lxor Hashtbl.hash ("tenant", mode_to_string mode) in
  let root = Rng.create seed in
  let engine = Engine.create () in
  let node =
    Node.create ?spans:cfg.Config.spans ?metrics:cfg.Config.metrics
      ?series:cfg.Config.series ~slos:cfg.Config.slos
      ~metrics_prefix:("tenant." ^ mode_to_string mode ^ ".") engine
      {
        Node.default_config with
        Node.memory_mb;
        idle_timeout = Time_ns.of_sec 8.0;
        dispatch_ns = cfg.Config.dispatch_ns;
      }
      ~make_strategy:(fun name spec -> make_strategy mode root name spec)
  in
  List.iter
    (fun (e : Catalog.entry) -> Node.register node ~name:e.Catalog.display e.Catalog.spec)
    entries;
  (* Independent Poisson arrival streams per function. *)
  let horizon = Time_ns.of_sec duration_s in
  let next_id = ref 0 in
  List.iter
    (fun (e : Catalog.entry) ->
      (* Arrival streams are seeded independently of the mode so all three
         configurations face the identical request sequence. *)
      let arrivals =
        Rng.create (cfg.Config.seed lxor Hashtbl.hash ("tenant-arrivals", e.Catalog.display))
      in
      let rec arrive () =
        if Engine.now engine < horizon then begin
          incr next_id;
          let req =
            Gh_faas.Request.make ~id:!next_id
              ~principal:principals.(!next_id mod 2)
              ~input_kb:e.Catalog.spec.Fm.input_kb ()
          in
          Node.submit node ~name:e.Catalog.display req;
          let gap = int_of_float (Rng.exponential arrivals ~mean:(1.0e9 /. rate_rps)) in
          Engine.schedule engine ~after:(max 1 gap) arrive
        end
      in
      Engine.schedule engine ~after:(Rng.int arrivals (Time_ns.of_ms 50.0)) arrive)
    entries;
  Engine.run engine ~until:(horizon + Time_ns.of_sec 10.0);
  let stats = Node.stats node in
  let latencies =
    Array.of_list (List.concat_map (fun (s : Node.fn_stats) -> s.Node.e2e_ms) stats)
  in
  let summary = if Array.length latencies = 0 then None else Some (Stats.summarize latencies) in
  {
    memory_mb;
    mode;
    completed = List.fold_left (fun n (s : Node.fn_stats) -> n + s.Node.completed) 0 stats;
    cold_starts = Node.total_cold_starts node;
    evictions = Node.total_evictions node;
    mean_e2e_ms = (match summary with Some s -> s.Stats.mean | None -> Float.nan);
    p95_e2e_ms = (match summary with Some s -> s.Stats.p95 | None -> Float.nan);
    high_water_mb = Node.memory_high_water_mb node;
    shed = Node.total_shed node;
    expired = Node.total_expired node;
    leftover_queue = List.fold_left (fun n (s : Node.fn_stats) -> n + s.Node.queue_len) 0 stats;
  }

let run cfg ?(memory_budgets_mb = [ 512; 288; 224 ]) ?(duration_s = 30.0) ?(rate_rps = 4.0)
    entries =
  List.concat_map
    (fun memory_mb ->
      List.map
        (run_mode cfg ~memory_mb ~duration_s ~rate_rps entries)
        [ Base; Gh_eager; Gh_incremental ])
    memory_budgets_mb

let print ppf results =
  let rows =
    List.map
      (fun r ->
        [
          string_of_int r.memory_mb;
          mode_to_string r.mode;
          string_of_int r.completed;
          string_of_int r.cold_starts;
          string_of_int r.evictions;
          Report.fmt_ms r.mean_e2e_ms;
          Report.fmt_ms r.p95_e2e_ms;
          string_of_int r.high_water_mb;
          string_of_int r.shed;
          string_of_int r.expired;
          string_of_int r.leftover_queue;
        ])
      results
  in
  Report.table ppf
    ~title:
      "Multi-tenant node: isolation vs container density (8 functions, shared cores and a \
       tight memory budget, cold starts and idle eviction)"
    ~header:
      [
        "memory MB";
        "mode";
        "completed";
        "cold starts";
        "evictions";
        "mean e2e ms";
        "p95 e2e ms";
        "mem high-water MB";
        "shed";
        "expired";
        "still queued";
      ]
    rows
