(** Snapshot integrity sweep (robustness extension): corruption rate x
    verification policy across every strategy.

    Each container's fault plan enables only the {e corruption} sites:
    snapshot captures can silently flip a bit or tear a block in the
    stored buffer, and restores can silently skip writes — none of them
    fail any operation, so without integrity checking the damage surfaces
    only as wrong request results. The sweep runs the recovery-enabled
    invoker under four policies: [Off] (no checking — the vulnerable
    baseline), [Scrub_only] (idle-time scrubbing of the stored snapshot),
    [Sampled k] (scrubbing + every k-th restored block audited, rotating
    deterministically), and [Full] (scrubbing + every restore fully
    audited).

    Ground truth is an oracle checked at every dispatch: strategies that
    can prove what their process should contain (eager GH right after a
    restore, CRIU between restores) audit the live process against the
    snapshot hashes; serving a request while that audit fails is a
    {e corrupted serve}. Under [Full] the count must be zero — every
    corrupt restore is caught and poisoned before the next dispatch —
    and the harness exposes {!protected_corrupted_serves} as the CI gate.
    Under [Off] a nonzero count demonstrates the window the machinery
    closes. [Sampled] bounds the window to k restores; [Scrub_only]
    catches stored-side damage but not skipped restore writes.

    GH-family cells also register their snapshots in a cross-container
    {!Groundhog_core.Dedup} index, reporting pages saved by sharing
    identical blocks. All of it is deterministic from the config seed. *)

type policy = Off | Scrub_only | Sampled of int | Full

val policy_name : policy -> string

val default_policies : policy list
(** [Off; Scrub_only; Sampled 4; Full]. *)

val default_rates : float list
(** [0; 0.02; 0.1] per-site corruption probability. *)

val strategies : Gh_isolation.Registry.id list
(** All seven registry strategies (filtered per-spec by support). *)

type row = {
  strategy : Gh_isolation.Registry.id;
  rate : float;
  policy : policy;
  offered : int;
  delivered : int;
  corrupted_served : int;  (** Oracle hits at dispatch — 0 under [Full]. *)
  verify_detections : int;  (** Restore-time audit failures. *)
  scrub_detections : int;  (** Idle-scrubber corruption finds. *)
  verified_blocks : int;  (** Blocks audited at restore time. *)
  scrubbed_blocks : int;  (** Blocks checked by the idle scrubber. *)
  detect_ms : float;
      (** Mean time from snapshot capture to detection; NaN without
          detections. *)
  mttr_ms : float;  (** Mean failure-to-serving-again; NaN without samples. *)
  quarantined : int;
  replacements : int;
  overhead_ms : float;
      (** The modelled hashing cost of all audits and scrub slices —
          tallied, never charged to the simulated timeline. *)
  dedup_saved_pages : int option;  (** [None] for non-dedup strategies. *)
  dedup_shared_blocks : int option;
}

type point = { rate : float; policy : policy; rows : row list }

val measure :
  Config.t ->
  Gh_isolation.Registry.id ->
  Gh_faas.Function_model.spec ->
  rate:float ->
  policy:policy ->
  n_containers:int ->
  n_requests:int ->
  row option
(** One cell; [None] when the strategy doesn't support the spec.
    Deterministic: the same seed, spec, rate and policy reproduce the
    identical corruption schedule and output. *)

val run :
  Config.t ->
  ?rates:float list ->
  ?policies:policy list ->
  ?n_containers:int ->
  ?requests:int ->
  Gh_workloads.Catalog.entry ->
  point list

val protected_corrupted_serves : point list -> int
(** Corrupted serves under [Full] — the CI gate checks this is 0. *)

val unprotected_corrupted_serves : point list -> int
(** Corrupted serves under [Off] — nonzero at nonzero rates shows the
    window the integrity machinery closes. *)

val print : Format.formatter -> Gh_workloads.Catalog.entry -> point list -> unit
