(* SLO observability sweep: the 3-node fleet of Cluster_exp under
   injected node faults and offered-load pressure, with the full
   observability stack attached — windowed time series, burn-rate SLO
   alerting, and the failure flight recorder — measuring how much
   warning the alerts give before users visibly leave the objective.

   The claim under test is fail-closed alerting: on the failover-on arm,
   every episode in which an objective is breached (the exact event log,
   replayed cumulatively, drops below the objective's target) must be
   preceded — or met at the same instant — by a fired alert for that
   objective. A breach nobody was paged for is a violation, and so is a
   flight-recorder dump that fails schema validation or does not cover
   the configured pre-failure window.

   The gate binds availability and latency: the stock cold-start
   objective (target 0.75) cannot mathematically trip the workbook burn
   rates (6x and 14.4x the 0.25 budget both exceed an error rate of 1),
   so its series and alerts are reported but never gated. The
   failover-off arm is reported for contrast only: with the management
   plane off, whole-fleet damage is permanent and a breach without a
   timely alert is the expected catastrophe, not a regression. *)

module Engine = Gh_sim.Engine
module Rng = Gh_sim.Rng
module Time_ns = Gh_sim.Time_ns
module Stats = Gh_sim.Stats
module Fault = Gh_sim.Fault
module Trace = Gh_sim.Trace
module Span = Gh_sim.Span
module Metrics = Gh_sim.Metrics
module Timeseries = Gh_sim.Timeseries
module Slo = Gh_sim.Slo
module Flight_recorder = Gh_sim.Flight_recorder
module Registry = Gh_isolation.Registry
module Catalog = Gh_workloads.Catalog
module Synthetic = Gh_workloads.Synthetic
module Fm = Gh_faas.Function_model
module Intf = Gh_faas.Strategy_intf
module Request = Gh_faas.Request
module Admission = Gh_faas.Admission
module Node = Gh_faas.Node
module Cluster = Gh_faas.Cluster
module Controller = Gh_faas.Controller

type row = {
  fault_per_min : float;
  load_factor : float;  (** Offered rate as a fraction of fleet capacity. *)
  failover : bool;
  offered : int;
  served : int;
  availability : float;
  p99_ms : float;
  alerts_fired : int;  (** Fire transitions across every objective. *)
  first_alert_ms : float;  (** Measurement start to first fire; nan if none. *)
  avail_breach_ms : float;  (** nan when availability never left objective. *)
  avail_lead_ms : float;  (** Breach minus first availability fire. *)
  latency_breach_ms : float;
  latency_lead_ms : float;
  unalerted_breaches : int;  (** Gated objectives breached with no prior fire. *)
  dumps : int;  (** Flight-recorder dumps taken. *)
  dump_errors : int;  (** Schema or window-coverage failures. Must be 0. *)
  span_errors : int;  (** {!Gh_sim.Span.check} failures (failover on). *)
  series_windows : int;  (** Rolled time-series windows. *)
}

type point = { fault_per_min : float; rows : row list }

let default_fault_rates = [ 0.0; 0.2 ]
let default_load_factors = [ 0.45; 1.25 ]
let n_nodes = 3
let cores_per_node = 2
let slo_base_ns = Time_ns.of_ms 200.0
let recorder_window_ns = Time_ns.of_ms 500.0

let principals =
  [| Gh_faas.Principal.make ~id:1 ~name:"alice"; Gh_faas.Principal.make ~id:2 ~name:"bob" |]

let service_ns cfg spec ~seed =
  match Registry.make Registry.Gh ~rng:(Rng.create (seed lxor 0x510)) spec with
  | Error msg -> failwith ("Slo_exp: cannot build probe strategy: " ^ msg)
  | Ok s ->
      let n = 8 in
      let total = ref 0 in
      for i = 1 to n do
        let req =
          Request.make ~id:(1_000_000 + i)
            ~principal:principals.(i land 1)
            ~input_kb:spec.Fm.input_kb ()
        in
        let inv = s.Intf.invoke req in
        total := !total + inv.Intf.on_path_ns + inv.Intf.post_ns
      done;
      (!total / n) + cfg.Config.dispatch_ns

(* One classified request event, replayed after the run to find the
   exact moment users left an objective (the SLO's sketchless ground
   truth). Failures carry [e2e_ms = infinity] and [cold = false]. *)
type ev = { ev_at : Time_ns.t; ev_ok : bool; ev_e2e_ms : float }

(* First instant the cumulative bad fraction exceeds the budget with
   enough events — the replayed "users have visibly left the objective".
   Used for availability, whose tiny budget (0.1%) sits far below the
   burn thresholds: any real failure burst trips the alert first. *)
let breach_at events ~classify ~target ~min_events =
  let rec go good bad = function
    | [] -> None
    | e :: rest ->
        let ok = classify e in
        let good = if ok then good + 1 else good in
        let bad = if ok then bad else bad + 1 in
        let total = good + bad in
        if
          total >= min_events
          && float_of_int bad /. float_of_int total > 1.0 -. target
        then Some e.ev_at
        else go good bad rest
  in
  go 0 0 events

(* First instant a trailing window holds a sustained episode: bad
   fraction at least [frac] over [window_ns] with enough events. The
   latency gate uses this at twice the fast-page burn over the fast
   rule's long window — strictly more severe than the alert condition,
   so an episode that breaches here must already have been firing. *)
let windowed_breach_at events ~classify ~window_ns ~frac ~min_events =
  let arr = Array.of_list events in
  let n = Array.length arr in
  let rec go i lo bad total =
    if i >= n then None
    else begin
      let e = arr.(i) in
      (* Slide the window start past events older than [window_ns]. *)
      let rec drop lo bad total =
        if lo < i && arr.(lo).ev_at < e.ev_at - window_ns then
          drop (lo + 1)
            (if classify arr.(lo) then bad else bad - 1)
            (total - 1)
        else (lo, bad, total)
      in
      let lo, bad, total = drop lo bad total in
      let bad = if classify e then bad else bad + 1 in
      let total = total + 1 in
      if total >= min_events && float_of_int bad /. float_of_int total >= frac then
        Some e.ev_at
      else go (i + 1) lo bad total
    end
  in
  go 0 0 0 0

let first_fire slo =
  List.find_map
    (fun (a : Slo.alert) -> if a.Slo.a_kind = `Fire then Some a.Slo.a_at else None)
    (Slo.alerts slo)

let count_fires slo =
  List.length (List.filter (fun (a : Slo.alert) -> a.Slo.a_kind = `Fire) (Slo.alerts slo))

let measure cfg spec ~fault_per_min ~load_factor ~failover ~requests =
  (* Both failover arms share the seed: identical arrivals and fault
     schedule, so the comparison isolates the management plane. *)
  let seed =
    cfg.Config.seed lxor Hashtbl.hash ("slo", spec.Fm.name, fault_per_min, load_factor)
  in
  let root = Rng.create seed in
  let service = service_ns cfg spec ~seed in
  let fleet_cores = n_nodes * cores_per_node in
  let capacity_rps = float_of_int fleet_cores *. 1.0e9 /. float_of_int service in
  let rate_rps =
    Float.min (load_factor *. capacity_rps) (float_of_int requests /. 2.0)
  in
  let hb = Time_ns.of_ms 100.0 in
  let response_timeout = max (Time_ns.of_ms 250.0) (6 * service) in
  let ttl = max (Time_ns.of_sec 2.0) (8 * response_timeout) in
  let latency_limit_ms = Time_ns.to_ms response_timeout in
  let warmup = Time_ns.of_sec 2.0 in
  let arrivals =
    let arng = Rng.create (seed lxor Hashtbl.hash "slo-arrivals") in
    List.map
      (fun t -> t + warmup)
      (Synthetic.burst ~duty:0.5 ~cycle_s:1.0 arng ~rate_rps ~n:requests)
  in
  let last_arrival = List.fold_left max warmup arrivals in
  let horizon = last_arrival + ttl + Time_ns.of_sec 2.0 in
  let fault =
    if fault_per_min <= 0.0 then Fault.none
    else begin
      let plan = Fault.create ~seed:(Hashtbl.hash (seed, "slo-plan")) in
      let ticks_per_min = 60.0 *. 1.0e9 /. float_of_int hb in
      let per_tick = fault_per_min /. ticks_per_min in
      (* Two scheduled crashes across the arrival span (see Cluster_exp
         for the occurrence arithmetic) on top of the background rate:
         every faulty cell contains real episodes at any seed. *)
      let crash_nths =
        List.map
          (fun (node, f) ->
            let tick =
              max 1 ((warmup + int_of_float (f *. float_of_int (last_arrival - warmup))) / hb)
            in
            ((tick - 1) * n_nodes) + node + 1)
          [ (0, 0.15); (1, 0.55) ]
      in
      Fault.set plan Fault.Node_crash ~prob:per_tick ~nth:crash_nths ();
      Fault.set plan Fault.Node_hang ~prob:(2.0 *. per_tick) ();
      Fault.set plan Fault.Cluster_msg_loss ~prob:0.002 ();
      Fault.set plan Fault.Heartbeat_drop ~prob:0.01 ();
      plan
    end
  in
  let engine = Engine.create () in
  let registry = Metrics.create () in
  let trace = Trace.create ~capacity:50_000 () in
  let spans = Span.create () in
  let series = Timeseries.create ~window_ns:(Time_ns.of_ms 50.0) registry in
  let slos =
    Slo.standard ~trace ~metrics:registry ~base_ns:slo_base_ns ~latency_limit_ms
      ~availability_target:0.999 ()
  in
  let recorder =
    Flight_recorder.create ~capacity:64 ~window_ns:recorder_window_ns ~trace ~series
      ~name:
        (Printf.sprintf "slo-%s-f%.2f-l%.2f-%s" spec.Fm.name fault_per_min load_factor
           (if failover then "on" else "off"))
      ()
  in
  let builds = ref 0 in
  let make_strategy _name sp =
    incr builds;
    match
      Registry.make Registry.Gh ~rng:(Rng.named_split root (Printf.sprintf "c%d" !builds)) sp
    with
    | Ok s -> s
    | Error msg -> failwith ("Slo_exp: " ^ msg)
  in
  let cluster_config =
    {
      Cluster.n_nodes;
      node =
        {
          Node.total_cores = cores_per_node;
          memory_mb = 65_536;
          idle_timeout = Time_ns.of_sec 600.0;
          dispatch_ns = cfg.Config.dispatch_ns;
          recovery = None;
          admission = Admission.bounded ~policy:Admission.Edf_drop (10 * cores_per_node);
          brownout = None;
          scrub = None;
        };
      placement = Cluster.Least_loaded;
      failover;
      hb_interval = hb;
      hang_ns = 4 * hb;
      response_timeout;
      max_attempts = 4;
      hedge_after = (if failover then Some (3 * response_timeout / 4) else None);
      restart_ns = Time_ns.of_ms 500.0;
      health = Gh_faas.Health.default_config;
      breaker = Gh_faas.Breaker.default_config;
    }
  in
  let cluster =
    Cluster.create ~trace ~spans ~series ~slos ~recorder ~metrics:registry
      ~rng:(Rng.named_split root "cluster") ~fault engine cluster_config ~make_strategy
  in
  let fn = spec.Fm.name in
  Cluster.register cluster ~name:fn spec;
  let controller =
    Controller.create_sink ~ttl_ns:ttl engine
      ~rng:(Rng.named_split root "controller")
      (fun req ~on_response -> Cluster.submit cluster ~name:fn req ~on_response)
  in
  (* The exact per-request log, measured requests only (warm-ups are
     invisible to the breach replay, like any pre-launch traffic). *)
  let events = ref [] in
  let served = ref 0 in
  let e2e_samples = ref [] in
  Cluster.set_on_failed cluster (fun req ->
      if req.Request.id < 1_000_000 then
        events :=
          { ev_at = Engine.now engine; ev_ok = false; ev_e2e_ms = Float.infinity }
          :: !events);
  Controller.set_on_shed controller (fun req ->
      if req.Request.id < 1_000_000 then
        events :=
          { ev_at = Engine.now engine; ev_ok = false; ev_e2e_ms = Float.infinity }
          :: !events);
  for i = 1 to fleet_cores do
    Engine.at engine ~time:0 (fun () ->
        Cluster.submit cluster ~name:fn
          (Request.make ~id:(2_000_000 + i)
             ~principal:principals.(i land 1)
             ~input_kb:spec.Fm.input_kb ())
          ~on_response:(fun _ _ -> ()))
  done;
  Cluster.start cluster ~until:horizon;
  Engine.at_batch engine
    (List.mapi
       (fun i at ->
         let id = i + 1 in
         ( at,
           fun () ->
             let req =
               Request.make ~id
                 ~principal:principals.(i land 1)
                 ~input_kb:spec.Fm.input_kb ()
             in
             Controller.submit controller req
               ~on_complete:(fun (c : Controller.completion) ->
                 incr served;
                 let ms = Time_ns.to_ms c.Controller.e2e_ns in
                 e2e_samples := ms :: !e2e_samples;
                 events :=
                   { ev_at = Engine.now engine; ev_ok = true; ev_e2e_ms = ms }
                   :: !events) ))
       arrivals);
  Engine.run_all engine;
  Timeseries.flush series ~now:(Engine.now engine);
  let events = List.rev !events in
  let offered = List.length arrivals in
  (* Lead times: replayed breach instant minus the objective's first
     fired alert. Negative lead (alert after the breach) is exactly what
     the violation count below catches. *)
  let slo_named name = List.find (fun s -> Slo.name s = name) slos in
  let avail_slo = slo_named "availability" in
  let lat_slo = slo_named "latency-p99" in
  let avail_breach =
    breach_at events ~classify:(fun e -> e.ev_ok) ~target:0.999 ~min_events:20
  in
  (* Latency budget (1%) is wide enough that a single slow straggler
     moves the cumulative fraction past it long before any burn-rate
     rule could react; the user-visible breach is instead a sustained
     episode: slow fraction at twice the fast-page burn (2 x 14.4 x
     budget) over the fast rule's long window (12 x base). Reaching
     that level implies the fast-rule condition held strictly earlier. *)
  let lat_breach =
    windowed_breach_at events
      ~classify:(fun e -> e.ev_ok && e.ev_e2e_ms <= latency_limit_ms)
      ~window_ns:(12 * slo_base_ns)
      ~frac:(2.0 *. 14.4 *. 0.01) ~min_events:20
  in
  let lead breach slo =
    match (breach, first_fire slo) with
    | Some b, Some f -> Time_ns.to_ms (b - f)
    | _ -> Float.nan
  in
  let unalerted breach slo =
    match breach with
    | None -> 0
    | Some b -> (
        match first_fire slo with Some f when f <= b -> 0 | _ -> 1)
  in
  let unalerted_breaches =
    if failover then unalerted avail_breach avail_slo + unalerted lat_breach lat_slo
    else 0
  in
  (* Every dump must parse under the exported schema and cover the
     configured pre-failure window. *)
  let dump_errors =
    (match Flight_recorder.validate (Flight_recorder.to_json recorder) with
    | Ok n when n = List.length (Flight_recorder.dumps recorder) -> 0
    | Ok _ -> 1
    | Error _ -> 1)
    + List.length
        (List.filter
           (fun (d : Flight_recorder.dump) ->
             d.Flight_recorder.d_window_ns <> recorder_window_ns)
           (Flight_recorder.dumps recorder))
  in
  (* With failover off, attempts on dead nodes legitimately never
     conclude, so their spans (and roots) stay open; only the arm that
     promises full accounting is held to span closure. *)
  let span_errors =
    if failover then match Span.check spans with Ok () -> 0 | Error _ -> 1 else 0
  in
  let alerts_fired = List.fold_left (fun n s -> n + count_fires s) 0 slos in
  let first_alert =
    List.fold_left
      (fun acc s ->
        match (acc, first_fire s) with
        | None, f -> f
        | Some a, Some f -> Some (min a f)
        | Some a, None -> Some a)
      None slos
  in
  let summary =
    match !e2e_samples with
    | [] -> None
    | samples -> Some (Stats.summarize (Array.of_list samples))
  in
  let rel_ms = function Some t -> Time_ns.to_ms (t - warmup) | None -> Float.nan in
  {
    fault_per_min;
    load_factor;
    failover;
    offered;
    served = !served;
    availability =
      (if offered = 0 then Float.nan else float_of_int !served /. float_of_int offered);
    p99_ms = (match summary with Some s -> s.Stats.p99 | None -> Float.nan);
    alerts_fired;
    first_alert_ms = rel_ms first_alert;
    avail_breach_ms = rel_ms avail_breach;
    avail_lead_ms = lead avail_breach avail_slo;
    latency_breach_ms = rel_ms lat_breach;
    latency_lead_ms = lead lat_breach lat_slo;
    unalerted_breaches;
    dumps = Flight_recorder.total recorder;
    dump_errors;
    span_errors;
    series_windows = Timeseries.rolled_windows series;
  }

let run cfg ?(fault_rates = default_fault_rates) ?(load_factors = default_load_factors)
    ?(requests = 160) (entry : Catalog.entry) =
  List.map
    (fun fault_per_min ->
      {
        fault_per_min;
        rows =
          List.concat_map
            (fun load_factor ->
              [
                measure cfg entry.Catalog.spec ~fault_per_min ~load_factor ~failover:true
                  ~requests;
                measure cfg entry.Catalog.spec ~fault_per_min ~load_factor ~failover:false
                  ~requests;
              ])
            load_factors;
      })
    fault_rates

(* The CI gate: a gated objective breached with no prior alert on the
   failover-on arm, a flight-recorder dump that fails validation or
   window coverage, or a span-closure failure. *)
let violations points =
  List.fold_left
    (fun n p ->
      List.fold_left
        (fun n r -> n + r.unalerted_breaches + r.dump_errors + r.span_errors)
        n p.rows)
    0 points

let print ppf (entry : Catalog.entry) points =
  let header =
    [
      "fault/min";
      "load";
      "fo";
      "offered";
      "served";
      "avail";
      "p99 ms";
      "alerts";
      "alert@ms";
      "av-breach";
      "av-lead";
      "lat-breach";
      "lat-lead";
      "unalerted";
      "dumps";
      "dump-err";
      "span-err";
      "windows";
    ]
  in
  let fmt_opt v = if Float.is_nan v then "-" else Printf.sprintf "%.0f" v in
  let rows =
    List.concat_map
      (fun p ->
        List.map
          (fun (r : row) ->
            [
              Printf.sprintf "%.2f" r.fault_per_min;
              Printf.sprintf "%.0f%%" (100.0 *. r.load_factor);
              (if r.failover then "on" else "off");
              string_of_int r.offered;
              string_of_int r.served;
              Printf.sprintf "%.1f%%" (100.0 *. r.availability);
              (if Float.is_nan r.p99_ms then "-" else Printf.sprintf "%.1f" r.p99_ms);
              string_of_int r.alerts_fired;
              fmt_opt r.first_alert_ms;
              fmt_opt r.avail_breach_ms;
              fmt_opt r.avail_lead_ms;
              fmt_opt r.latency_breach_ms;
              fmt_opt r.latency_lead_ms;
              string_of_int r.unalerted_breaches;
              string_of_int r.dumps;
              string_of_int r.dump_errors;
              string_of_int r.span_errors;
              string_of_int r.series_windows;
            ])
          p.rows)
      points
  in
  Report.table ppf
    ~title:
      (Printf.sprintf
         "SLO burn-rate alerting on %s: %d-node fleet under injected faults and offered \
          load, burn-rate alerts (availability 99.9%%, p99 latency, cold-start) vs the \
          replayed breach instant. 'unalerted'/'dump-err'/'span-err' must be 0 on \
          failover-on rows: every breach pre-announced, every flight-recorder dump \
          schema-valid and window-covering, every span tree closed."
         entry.Catalog.display n_nodes)
    ~header rows
