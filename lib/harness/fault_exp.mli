(** Fault injection (robustness extension): the fail-closed recovery
    pipeline under seeded faults.

    Each container gets a deterministic fault plan (every injection site —
    ptrace stops, /proc reads, snapshot page copies, restore syscalls,
    function crashes and hangs — fails with the swept probability, from its
    own seeded stream), and the invoker runs with recovery enabled: hung
    requests are killed at a timeout and retried under capped backoff,
    poisoned containers are cold-restarted (kill + re-exec + warm-up +
    re-snapshot, off the critical path), and repeat offenders are
    quarantined. The experiment reports availability, goodput, MTTR and
    p99 latency per strategy and fault rate.

    The fail-closed property is checked on every dispatch: a strategy with
    a lifecycle state must report [`Clean] at the instant a request enters
    it. Any violation is counted in [unsafe_served] — the harness treats a
    nonzero total as a hard failure. *)

type row = {
  strategy : Gh_isolation.Registry.id;
  fault_rate : float;
  offered : int;
  delivered : int;  (** Responses produced (including crash-error ones' complement). *)
  crashed : int;  (** Error responses from mid-request crashes. *)
  failed : int;  (** Abandoned after the retry budget, plus lost in wedges. *)
  timeouts : int;
  retries : int;
  quarantined : int;
  replacements : int;  (** Successful cold restarts. *)
  unsafe_served : int;  (** Requests served by a non-clean process — must be 0. *)
  availability : float;  (** delivered / offered. *)
  goodput_rps : float;  (** Delivered responses per simulated second. *)
  mttr_ms : float;  (** Mean failure-to-serving-again time; NaN without samples. *)
  p99_ms : float;  (** Of delivered end-to-end latencies; NaN without samples. *)
}

type point = { fault_rate : float; rows : row list }

val strategies : Gh_isolation.Registry.id list
(** BASE, GH, GH_NOP, FORK. *)

val default_rates : float list
(** [0, 1e-4, 1e-3, 1e-2] per-site fault probability. *)

val measure :
  Config.t ->
  Gh_isolation.Registry.id ->
  Gh_faas.Function_model.spec ->
  fault_rate:float ->
  n_containers:int ->
  n_requests:int ->
  row option
(** One cell of the sweep; [None] when the strategy doesn't support the
    spec. Deterministic: the same config seed, spec and rate reproduce the
    identical fault schedule and output. *)

val run :
  Config.t ->
  ?rates:float list ->
  ?n_containers:int ->
  ?requests:int ->
  Gh_workloads.Catalog.entry ->
  point list

val total_unsafe : point list -> int
(** Sum of [unsafe_served] over the sweep — the CI gate checks this is 0. *)

val print : Format.formatter -> Gh_workloads.Catalog.entry -> point list -> unit
