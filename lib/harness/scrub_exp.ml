module Engine = Gh_sim.Engine
module Rng = Gh_sim.Rng
module Time_ns = Gh_sim.Time_ns
module Fault = Gh_sim.Fault
module Stats = Gh_sim.Stats
module Registry = Gh_isolation.Registry
module Catalog = Gh_workloads.Catalog
module Fm = Gh_faas.Function_model
module Intf = Gh_faas.Strategy_intf
module Invoker = Gh_faas.Invoker
module Container = Gh_faas.Container
module Backoff = Gh_faas.Backoff
module Manager = Groundhog_core.Manager
module Snapshot = Groundhog_core.Snapshot
module Dedup = Groundhog_core.Dedup
module Cost = Gh_kernel.Cost

type policy = Off | Scrub_only | Sampled of int | Full

let policy_name = function
  | Off -> "off"
  | Scrub_only -> "scrub"
  | Sampled k -> Printf.sprintf "sampled-%d" k
  | Full -> "full"

let default_policies = [ Off; Scrub_only; Sampled 4; Full ]
let default_rates = [ 0.0; 0.02; 0.1 ]
let strategies = Registry.all

type row = {
  strategy : Registry.id;
  rate : float;
  policy : policy;
  offered : int;
  delivered : int;
  corrupted_served : int;
  verify_detections : int;
  scrub_detections : int;
  verified_blocks : int;
  scrubbed_blocks : int;
  detect_ms : float;
  mttr_ms : float;
  quarantined : int;
  replacements : int;
  overhead_ms : float;
  dedup_saved_pages : int option;
  dedup_shared_blocks : int option;
}

type point = { rate : float; policy : policy; rows : row list }

let principals =
  [| Gh_faas.Principal.make ~id:1 ~name:"alice"; Gh_faas.Principal.make ~id:2 ~name:"bob" |]

(* The ground-truth oracle, checked at every dispatch: a strategy that can
   prove what its process should contain (eager GH after a real restore,
   CRIU between restores) audits the process against the snapshot hashes.
   [Some `Corrupt] at dispatch means the next response would be computed
   from corrupted state — the event the integrity machinery exists to
   prevent. Strategies without a valid reference ([None]) are exempt. The
   oracle itself reads memory only; it never alters the run it judges. *)
type cell_stats = {
  mutable corrupted_served : int;
  mutable verify_detections : int;
  mutable verified_blocks : int;
  mutable detect_ns : Time_ns.t list;
}

let observe engine stats (s : Intf.t) =
  let born = Engine.now engine in
  {
    s with
    Intf.invoke =
      (fun req ->
        (match s.Intf.audit () with
        | Some (`Corrupt _) -> stats.corrupted_served <- stats.corrupted_served + 1
        | Some `Intact | None -> ());
        let inv = s.Intf.invoke req in
        (match inv.Intf.verify with
        | Intf.Verify_failed _ ->
            stats.verify_detections <- stats.verify_detections + 1;
            stats.detect_ns <- (Engine.now engine - born) :: stats.detect_ns
        | Intf.Verified blocks -> stats.verified_blocks <- stats.verified_blocks + blocks
        | Intf.Unverified -> ());
        inv);
    scrub =
      (fun blocks ->
        match s.Intf.scrub blocks with
        | Intf.Scrub_corrupt why ->
            (* Counted per container below; only the latency sample needs
               the snapshot's birth time, which lives in this closure. *)
            stats.detect_ns <- (Engine.now engine - born) :: stats.detect_ns;
            Intf.Scrub_corrupt why
        | r -> r);
  }

let default_recovery =
  {
    Invoker.container =
      {
        Container.timeout_ns = Some (Time_ns.of_sec 1.0);
        quarantine_after = 3;
        rebuild_backoff = Backoff.recovery;
        max_rebuild_attempts = 5;
      };
    max_attempts = 3;
    retry_backoff = Backoff.default;
  }

let measure cfg strategy spec ~rate ~policy ~n_containers ~n_requests =
  if not (Registry.supports strategy spec) then None
  else begin
    let seed =
      cfg.Config.seed
      lxor Hashtbl.hash
             ("scrub", spec.Fm.name, Registry.to_string strategy, rate, policy_name policy)
    in
    let root = Rng.create seed in
    let engine = Engine.create () in
    let stats =
      { corrupted_served = 0; verify_detections = 0; verified_blocks = 0; detect_ns = [] }
    in
    let verify =
      match policy with
      | Off | Scrub_only -> Manager.Verify_off
      | Sampled k -> Manager.Verify_sampled k
      | Full -> Manager.Verify_full
    in
    (* One dedup index per cell: both containers of the function register
       their snapshots and share identical blocks. *)
    let dedup = Dedup.create () in
    let builds = Array.make n_containers 0 in
    let make_strategy i =
      let b = builds.(i) in
      builds.(i) <- b + 1;
      (* Corruption sites only: captures can silently flip a bit or tear a
         block in the stored snapshot, restores can silently skip writes.
         Unlike crash faults these never fail the build — that is the
         point: the damage is invisible until something checks hashes. *)
      let fault =
        if rate > 0.0 then
          Fault.uniform ~seed:(Hashtbl.hash (seed, i, b)) ~prob:rate Fault.corruption_sites
        else Fault.none
      in
      match
        Registry.make strategy ~fault ~verify ~dedup
          ~rng:(Rng.named_split root (Printf.sprintf "c%d.%d" i b))
          spec
      with
      | Ok s -> observe engine stats s
      | Error msg -> failwith msg
    in
    let recovery =
      let timeout = Time_ns.of_sec 1.0 + (8 * spec.Fm.exec_ns) in
      {
        default_recovery with
        Invoker.container =
          { default_recovery.Invoker.container with Container.timeout_ns = Some timeout };
      }
    in
    let scrub = match policy with Off -> None | _ -> Some Container.default_scrub in
    let invoker =
      Invoker.create ~recovery ~rng:(Rng.split root) ?scrub engine ~n_containers
        ~dispatch_ns:cfg.Config.dispatch_ns ~make_strategy
    in
    let delivered = ref 0 in
    let interval_ns = max (Time_ns.of_ms 1.0) (2 * spec.Fm.exec_ns / n_containers) in
    Engine.at_batch engine
      (List.init n_requests (fun j ->
           let i = j + 1 in
           ( i * interval_ns,
             fun () ->
               let req =
                 Gh_faas.Request.make ~id:i
                   ~principal:principals.(i land 1)
                   ~input_kb:spec.Fm.input_kb ()
               in
               Invoker.submit invoker req ~on_response:(fun _ _ -> incr delivered) )));
    Engine.run_all engine;
    let rs = Invoker.recovery_stats invoker in
    let containers = Invoker.containers invoker in
    let scrub_detections =
      Array.fold_left (fun n c -> n + Container.scrub_corruptions c) 0 containers
    in
    let scrubbed_blocks =
      Array.fold_left (fun n c -> n + Container.scrubbed_blocks c) 0 containers
    in
    let mean_ms samples =
      match samples with
      | [] -> Float.nan
      | l -> Stats.mean (Array.of_list (List.map Time_ns.to_ms l))
    in
    (* The integrity tax, had it been charged: every audited or scrubbed
       block is [block_pages] page hashes at the modelled per-page rate.
       It is tallied here — never injected into the timeline — which is
       why every verified table in the suite is bit-identical to its
       unverified ancestor. *)
    let overhead_ms =
      Time_ns.to_ms
        ((stats.verified_blocks + scrubbed_blocks)
        * Snapshot.block_pages * Cost.default.Cost.hash_per_page_ns)
    in
    let with_dedup = Dedup.registrations dedup > 0 in
    Some
      {
        strategy;
        rate;
        policy;
        offered = n_requests;
        delivered = !delivered;
        corrupted_served = stats.corrupted_served;
        verify_detections = stats.verify_detections;
        scrub_detections;
        verified_blocks = stats.verified_blocks;
        scrubbed_blocks;
        detect_ms = mean_ms stats.detect_ns;
        mttr_ms = mean_ms rs.Invoker.mttr_ns;
        quarantined = rs.Invoker.quarantined;
        replacements = rs.Invoker.replacements;
        overhead_ms;
        dedup_saved_pages = (if with_dedup then Some (Dedup.saved_pages dedup) else None);
        dedup_shared_blocks = (if with_dedup then Some (Dedup.shared_blocks dedup) else None);
      }
  end

let run cfg ?(rates = default_rates) ?(policies = default_policies) ?(n_containers = 2)
    ?(requests = 60) (entry : Catalog.entry) =
  List.concat_map
    (fun rate ->
      List.map
        (fun policy ->
          {
            rate;
            policy;
            rows =
              List.filter_map
                (fun strategy ->
                  measure cfg strategy entry.Catalog.spec ~rate ~policy ~n_containers
                    ~n_requests:requests)
                strategies;
          })
        policies)
    rates

let protected_corrupted_serves points =
  List.fold_left
    (fun n p ->
      if p.policy = Full then
        List.fold_left (fun n (r : row) -> n + r.corrupted_served) n p.rows
      else n)
    0 points

let unprotected_corrupted_serves points =
  List.fold_left
    (fun n p ->
      if p.policy = Off then
        List.fold_left (fun n (r : row) -> n + r.corrupted_served) n p.rows
      else n)
    0 points

let print ppf (entry : Catalog.entry) points =
  let header =
    [
      "rate";
      "policy";
      "strategy";
      "served";
      "CORRUPT";
      "vdetect";
      "sdetect";
      "vblocks";
      "sblocks";
      "detect ms";
      "MTTR ms";
      "quar";
      "rebuild";
      "tax ms";
      "dedup pg";
    ]
  in
  let fmt_opt v = if Float.is_nan v then "-" else Printf.sprintf "%.1f" v in
  let rows =
    List.concat_map
      (fun p ->
        List.map
          (fun r ->
            [
              Printf.sprintf "%.0f%%" (100.0 *. p.rate);
              policy_name p.policy;
              String.uppercase_ascii (Registry.to_string r.strategy);
              Printf.sprintf "%d/%d" r.delivered r.offered;
              string_of_int r.corrupted_served;
              string_of_int r.verify_detections;
              string_of_int r.scrub_detections;
              string_of_int r.verified_blocks;
              string_of_int r.scrubbed_blocks;
              fmt_opt r.detect_ms;
              fmt_opt r.mttr_ms;
              string_of_int r.quarantined;
              string_of_int r.replacements;
              Printf.sprintf "%.1f" r.overhead_ms;
              (match r.dedup_saved_pages with Some n -> string_of_int n | None -> "-");
            ])
          p.rows)
      points
  in
  Report.table ppf
    ~title:
      (Printf.sprintf
         "Snapshot integrity on %s: corruption rate x verification policy. 'CORRUPT' counts \
          requests dispatched to a process whose restored state no longer matches the \
          snapshot hashes (the oracle; must be 0 under policy 'full'); 'tax ms' is the \
          modelled hashing cost, tallied off the timeline."
         entry.Catalog.display)
    ~header rows
