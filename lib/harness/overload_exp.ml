(* Overload sweep: open-loop bursty arrivals at a multiple of each
   strategy's measured capacity, with the platform's overload protection
   (deadlines + bounded EDF admission + brownout) on and off.

   The claim under test: with protection on, goodput (completions within
   deadline) plateaus at capacity instead of collapsing, requests that
   cannot make their deadline are shed before they consume a core or a
   restore, and no request is ever served by a non-clean process — even
   while brownout defers Groundhog's restores. With protection off the
   same arrival stream (same seed, same instants) drives the queues to
   divergence and the tail to collapse.

   Determinism: arrivals are keyed by (seed, strategy, utilization) and
   shared between the protected and unprotected runs; shedding is
   policy-deterministic (no randomness), so the whole sweep — including
   every drop decision — replays bit-identically from the seed. *)

module Engine = Gh_sim.Engine
module Rng = Gh_sim.Rng
module Time_ns = Gh_sim.Time_ns
module Stats = Gh_sim.Stats
module Registry = Gh_isolation.Registry
module Catalog = Gh_workloads.Catalog
module Synthetic = Gh_workloads.Synthetic
module Fm = Gh_faas.Function_model
module Intf = Gh_faas.Strategy_intf
module Request = Gh_faas.Request
module Principal = Gh_faas.Principal
module Admission = Gh_faas.Admission
module Brownout = Gh_faas.Brownout
module Node = Gh_faas.Node

type row = {
  strategy : Registry.id;
  protected : bool;
  util : float;
  offered : int;
  offered_rps : float;
  completed : int;
  goodput : int;  (** Completed within the deadline budget. *)
  goodput_rps : float;
  shed : int;
  expired : int;
  failed : int;
  deadline_misses : int;  (** Late completions, as counted by the node. *)
  miss_rate : float;  (** Late completions / completions. *)
  p50_ms : float;
  p99_ms : float;
  queue_high_water : int;
  cold_starts : int;
  brownout_escalations : int;
  unsafe_served : int;  (** Dispatches to a non-clean process. Must be 0. *)
  leaked_words : int;  (** Foreign residue words served by an isolating strategy. *)
  shed_served : int;  (** Shed requests that still consumed work. Must be 0. *)
  late_uncounted : int;  (** Late completions the node failed to count. Must be 0. *)
}

type point = { util : float; rows : row list }

let default_strategies = [ Registry.Base; Registry.Gh ]
let default_utils = [ 0.5; 0.8; 1.1; 1.5; 2.0 ]

let principals =
  [|
    Gh_faas.Principal.make ~id:1 ~name:"alice";
    Gh_faas.Principal.make ~id:2 ~name:"bob";
    (* Best-effort tenant: first to go when brownout reaches [Shedding]. *)
    Gh_faas.Principal.with_priority (Gh_faas.Principal.make ~id:3 ~name:"carol") 0;
  |]

type guard_stats = {
  served : (int, unit) Hashtbl.t;
  mutable unsafe : int;
  mutable leaks : int;
}

(* Every dispatch is gated on the strategy's own lifecycle state (as in
   Fault_exp), and additionally on residue: an isolating strategy serving a
   word tagged with another principal's id is a cross-domain leak. Brownout's
   deferred restores must never trip either check. *)
let guard stats (s : Intf.t) =
  {
    s with
    Intf.invoke =
      (fun req ->
        let gated = s.Intf.status () <> None in
        (match s.Intf.status () with
        | Some `Clean | None -> ()
        | Some _ -> stats.unsafe <- stats.unsafe + 1);
        Hashtbl.replace stats.served req.Request.id ();
        let inv = s.Intf.invoke req in
        if gated then
          List.iter
            (fun w ->
              if w <> 0 && not (Principal.owns_word req.Request.principal w) then
                stats.leaks <- stats.leaks + 1)
            inv.Intf.response.Fm.residue;
        inv);
  }

(* Mean per-request core occupancy (critical path + deferred work), measured
   on a throwaway instance: the denominator of the utilization sweep. The
   probe alternates principals so Groundhog's restore is always charged. *)
let service_ns cfg strategy spec ~seed =
  match Registry.make strategy ~rng:(Rng.create (seed lxor 0x5eed)) spec with
  | Error msg -> failwith ("Overload_exp: cannot build probe strategy: " ^ msg)
  | Ok s ->
      let n = 8 in
      let total = ref 0 in
      for i = 1 to n do
        let req =
          Request.make ~id:(1_000_000 + i)
            ~principal:principals.(i land 1)
            ~input_kb:spec.Fm.input_kb ()
        in
        let inv = s.Intf.invoke req in
        total := !total + inv.Intf.on_path_ns + inv.Intf.post_ns
      done;
      (!total / n) + cfg.Config.dispatch_ns

let measure cfg strategy spec ~util ~requests ~protected =
  let seed =
    cfg.Config.seed lxor Hashtbl.hash ("overload", spec.Fm.name, Registry.to_string strategy)
  in
  let service = service_ns cfg strategy spec ~seed in
  let cores = cfg.Config.n_containers in
  let capacity_rps = float_of_int cores *. 1.0e9 /. float_of_int service in
  let rate_rps = util *. capacity_rps in
  (* Deadline budget: generous at light load (queueing headroom) but far
     below the divergence latencies an unbounded queue reaches. *)
  let ttl = max (Time_ns.of_ms 50.0) (8 * service) in
  (* One warm-up request per core at t=0 (no deadline, uncounted) pays the
     container cold starts before measurement; arrivals begin afterwards so
     every cell measures the steady warm pool, not the boot transient. *)
  let warmup = Time_ns.of_sec 30.0 in
  (* Protected and unprotected runs share the arrival stream verbatim. *)
  let arrivals =
    let arng = Rng.create (seed lxor Hashtbl.hash ("arrivals", util)) in
    List.map
      (fun t -> t + warmup)
      (Synthetic.burst ~duty:0.5 ~cycle_s:1.0 arng ~rate_rps ~n:requests)
  in
  let root = Rng.create seed in
  let engine = Engine.create () in
  let stats = { served = Hashtbl.create 256; unsafe = 0; leaks = 0 } in
  let builds = ref 0 in
  let make_strategy _name sp =
    incr builds;
    match
      Registry.make strategy ~rng:(Rng.named_split root (Printf.sprintf "c%d" !builds)) sp
    with
    | Ok s -> guard stats s
    | Error msg -> failwith ("Overload_exp: " ^ msg)
  in
  let node_config =
    {
      Node.total_cores = cores;
      memory_mb = 65_536;
      idle_timeout = Time_ns.of_sec 600.0;
      dispatch_ns = cfg.Config.dispatch_ns;
      recovery = None;
      admission =
        (if protected then Admission.bounded ~policy:Admission.Edf_drop (6 * cores)
         else Admission.unbounded);
      brownout =
        (if protected then
           Some
             {
               Brownout.target_delay_ns = max (Time_ns.of_ms 5.0) (ttl / 3);
               escalate_after = 6;
               recover_after = 8;
               hysteresis = 0.5;
               shed_below_priority = 1;
             }
         else None);
      scrub = None;
    }
  in
  (* Each (strategy, protection, utilization) cell gets its own metric
     namespace so one shared registry can hold the whole sweep. *)
  let metrics_prefix =
    Printf.sprintf "overload.%s.%s.u%.1f." (Registry.to_string strategy)
      (if protected then "prot" else "raw")
      util
  in
  let node =
    Node.create ?spans:cfg.Config.spans ?metrics:cfg.Config.metrics
      ?series:cfg.Config.series ~slos:cfg.Config.slos ~metrics_prefix engine node_config
      ~make_strategy
  in
  let fn = "overload-fn" in
  Node.register node ~name:fn spec;
  let shed_ids = Hashtbl.create 64 in
  Node.set_on_shed node (fun _reason req -> Hashtbl.replace shed_ids req.Request.id ());
  (* id -> (arrival, completion): the experiment's own late-completion
     recount, independent of the node's deadline_misses counter. *)
  let completions = Hashtbl.create 256 in
  for i = 1 to cores do
    Engine.at engine ~time:0 (fun () ->
        Node.submit node ~name:fn
          (Request.make ~id:(2_000_000 + i)
             ~principal:principals.(i mod Array.length principals)
             ~input_kb:spec.Fm.input_kb ()))
  done;
  (* Batch-admit the whole burst in one pass; list order keeps the FIFO
     tie-break identical to the per-arrival [Engine.at] loop it replaces. *)
  Engine.at_batch engine
    (List.mapi
       (fun i at ->
         let id = i + 1 in
         ( at,
           fun () ->
             let req =
               Request.make ~id
                 ~principal:principals.(i mod Array.length principals)
                 ~input_kb:spec.Fm.input_kb
                 ?deadline:(if protected then Some (at + ttl) else None)
                 ()
             in
             Node.submit node ~name:fn req ~on_complete:(fun rq _inv ->
                 Hashtbl.replace completions rq.Request.id (at, Engine.now engine)) ))
       arrivals);
  Engine.run_all engine;
  let offered = List.length arrivals in
  let duration_s =
    let last = List.fold_left max 0 arrivals and first = List.fold_left min max_int arrivals in
    Float.max 1e-9 (Time_ns.to_ms (last - first + ttl) /. 1000.0)
  in
  let completed = Hashtbl.length completions in
  let e2e_ms = ref [] in
  let misses_recounted = ref 0 in
  Hashtbl.iter
    (fun _ (arrival, finish) ->
      e2e_ms := Time_ns.to_ms (finish - arrival) :: !e2e_ms;
      if finish > arrival + ttl then incr misses_recounted)
    completions;
  let goodput = completed - !misses_recounted in
  let shed_served =
    Hashtbl.fold
      (fun id () n -> if Hashtbl.mem stats.served id then n + 1 else n)
      shed_ids 0
  in
  let reported_misses = Node.total_deadline_misses node in
  let late_uncounted = if protected then abs (!misses_recounted - reported_misses) else 0 in
  let failed =
    List.fold_left (fun n (s : Node.fn_stats) -> n + s.Node.failed_requests) 0 (Node.stats node)
  in
  let qhw =
    List.fold_left (fun n (s : Node.fn_stats) -> max n s.Node.queue_high_water) 0
      (Node.stats node)
  in
  let summary =
    match !e2e_ms with
    | [] -> None
    | samples -> Some (Stats.summarize (Array.of_list samples))
  in
  {
    strategy;
    protected;
    util;
    offered;
    offered_rps = rate_rps;
    completed;
    goodput;
    goodput_rps = float_of_int goodput /. duration_s;
    shed = Node.total_shed node;
    expired = Node.total_expired node;
    failed;
    deadline_misses = reported_misses;
    miss_rate =
      (if completed = 0 then 0.0
       else float_of_int !misses_recounted /. float_of_int completed);
    p50_ms = (match summary with Some s -> s.Stats.median | None -> Float.nan);
    p99_ms = (match summary with Some s -> s.Stats.p99 | None -> Float.nan);
    queue_high_water = qhw;
    cold_starts = Node.total_cold_starts node;
    brownout_escalations = Node.brownout_escalations node;
    unsafe_served = stats.unsafe;
    leaked_words = stats.leaks;
    shed_served;
    late_uncounted;
  }

let run cfg ?(strategies = default_strategies) ?(utils = default_utils) ?(requests = 240)
    (entry : Catalog.entry) =
  List.map
    (fun util ->
      {
        util;
        rows =
          List.concat_map
            (fun strategy ->
              if not (Registry.supports strategy entry.Catalog.spec) then []
              else
                [
                  measure cfg strategy entry.Catalog.spec ~util ~requests ~protected:true;
                  measure cfg strategy entry.Catalog.spec ~util ~requests ~protected:false;
                ])
            strategies;
      })
    utils

(* The CI gate: every way a run can violate the overload contract, summed.
   [unsafe_served]: a request dispatched into a non-clean process;
   [leaked_words]: cross-principal residue served by an isolating strategy;
   [shed_served]: a shed request that nevertheless consumed work;
   [late_uncounted]: a completion past its deadline the node missed. *)
let violations points =
  List.fold_left
    (fun n p ->
      List.fold_left
        (fun n r -> n + r.unsafe_served + r.leaked_words + r.shed_served + r.late_uncounted)
        n p.rows)
    0 points

let print ppf (entry : Catalog.entry) points =
  let header =
    [
      "util";
      "strategy";
      "prot";
      "offered";
      "done";
      "goodput";
      "gp r/s";
      "shed";
      "expired";
      "fail";
      "late";
      "p50 ms";
      "p99 ms";
      "q hi";
      "cold";
      "brown";
      "unsafe";
    ]
  in
  let fmt_opt v = if Float.is_nan v then "-" else Printf.sprintf "%.1f" v in
  let rows =
    List.concat_map
      (fun p ->
        List.map
          (fun (r : row) ->
            [
              Printf.sprintf "%.1fx" r.util;
              String.uppercase_ascii (Registry.to_string r.strategy);
              (if r.protected then "on" else "off");
              string_of_int r.offered;
              string_of_int r.completed;
              string_of_int r.goodput;
              Printf.sprintf "%.1f" r.goodput_rps;
              string_of_int r.shed;
              string_of_int r.expired;
              string_of_int r.failed;
              string_of_int r.deadline_misses;
              fmt_opt r.p50_ms;
              fmt_opt r.p99_ms;
              string_of_int r.queue_high_water;
              string_of_int r.cold_starts;
              string_of_int r.brownout_escalations;
              string_of_int (r.unsafe_served + r.leaked_words + r.shed_served);
            ])
          p.rows)
      points
  in
  Report.table ppf
    ~title:
      (Printf.sprintf
         "Overload sweep on %s: bursty open-loop arrivals at a multiple of measured \
          capacity, protection (deadlines + bounded EDF admission + brownout) on vs off. \
          Goodput = completions within deadline; with protection on it plateaus at \
          capacity instead of collapsing. 'unsafe' must be 0: no request is ever served \
          by a non-clean process, shed requests consume no work, late completions are \
          always counted."
         entry.Catalog.display)
    ~header rows
