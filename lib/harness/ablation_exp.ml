module Rng = Gh_sim.Rng
module Time_ns = Gh_sim.Time_ns
module Account = Gh_sim.Account
module Cost = Gh_kernel.Cost
module Fm = Gh_faas.Function_model
module Manager = Groundhog_core.Manager
module Breakdown = Groundhog_core.Breakdown
module Microbench = Gh_workloads.Microbench

let principals =
  [| Gh_faas.Principal.make ~id:1 ~name:"alice"; Gh_faas.Principal.make ~id:2 ~name:"bob" |]

(* Measure a microbenchmark under Groundhog built on a variant cost model:
   returns (mean in-function ms, mean restore ms). *)
let measure_with_cost cfg cost spec =
  let rng = Rng.create (cfg.Config.seed lxor Hashtbl.hash spec.Fm.name) in
  let inst = Fm.build ~cost spec in
  let init = Account.create () in
  ignore (Fm.warmup inst init rng);
  Fm.mark_clean inst;
  let mgr = Manager.create (Fm.proc inst) in
  ignore (Manager.take_snapshot_exn mgr);
  let n = max 3 cfg.Config.microbench_requests in
  let discard = 2 in
  let low = ref 0.0 and restore = ref 0.0 in
  for i = -discard to n - 1 do
    let acct = Account.create () in
    let req =
      Gh_faas.Request.make ~id:(i + discard + 1)
        ~principal:principals.((i + discard) mod 2)
        ~input_kb:spec.Fm.input_kb ()
    in
    ignore (Fm.invoke inst acct rng ~post_restore:(i > -discard) req);
    Manager.mark_dirty mgr;
    let b = Manager.restore_exn mgr in
    if i >= 0 then begin
      low := !low +. Time_ns.to_ms (Account.total acct);
      restore := !restore +. Time_ns.to_ms b.Breakdown.total_ns
    end
  done;
  (!low /. float_of_int n, !restore /. float_of_int n)

type tracking_point = {
  dirtied : int;
  sd_low_ms : float;
  sd_restore_ms : float;
  uffd_low_ms : float;
  uffd_restore_ms : float;
  klist_low_ms : float;
  klist_restore_ms : float;
}

let densities mapped = [ 0; mapped / 100; mapped / 20; mapped / 5; mapped / 2; mapped ]

let run_tracking cfg ?(mapped = 20_000) () =
  List.map
    (fun dirtied ->
      let spec = Microbench.spec ~mapped_pages:mapped ~dirtied_pages:dirtied in
      let sd_low_ms, sd_restore_ms = measure_with_cost cfg Cost.default spec in
      let uffd_low_ms, uffd_restore_ms = measure_with_cost cfg Cost.uffd_tracking spec in
      let klist_low_ms, klist_restore_ms =
        measure_with_cost cfg Cost.kernel_list_tracking spec
      in
      {
        dirtied;
        sd_low_ms;
        sd_restore_ms;
        uffd_low_ms;
        uffd_restore_ms;
        klist_low_ms;
        klist_restore_ms;
      })
    (densities mapped)

type coalescing_point = { dirtied : int; with_ms : float; without_ms : float }

let run_coalescing cfg ?(mapped = 20_000) () =
  List.filter_map
    (fun dirtied ->
      if dirtied = 0 then None
      else begin
        let spec = Microbench.spec ~mapped_pages:mapped ~dirtied_pages:dirtied in
        let _, with_ms = measure_with_cost cfg Cost.default spec in
        let _, without_ms = measure_with_cost cfg Cost.no_coalescing spec in
        Some { dirtied; with_ms; without_ms }
      end)
    (densities mapped)

let print_tracking ppf points =
  let rows =
    List.map
      (fun (p : tracking_point) ->
        [
          string_of_int p.dirtied;
          Report.fmt_ms p.sd_low_ms;
          Report.fmt_ms p.sd_restore_ms;
          Report.fmt_ms p.uffd_low_ms;
          Report.fmt_ms p.uffd_restore_ms;
          Report.fmt_ms p.klist_low_ms;
          Report.fmt_ms p.klist_restore_ms;
          (let total = [
             (p.sd_low_ms +. p.sd_restore_ms, "soft-dirty");
             (p.uffd_low_ms +. p.uffd_restore_ms, "uffd");
             (p.klist_low_ms +. p.klist_restore_ms, "kernel-list");
           ]
           in
           snd (List.fold_left min (List.hd total) (List.tl total)));
        ])
      points
  in
  Report.table ppf
    ~title:
      "Ablation: dirty-page tracking (per-request ms) — soft-dirty bits (§4.3, chosen), \
       userfaultfd (prototyped, rejected), and the footnote-6 in-kernel dirty list"
    ~header:
      [
        "dirtied";
        "SD in-fn";
        "SD restore";
        "UFFD in-fn";
        "UFFD restore";
        "KLIST in-fn";
        "KLIST restore";
        "cheapest";
      ]
    rows

let print_coalescing ppf points =
  let rows =
    List.map
      (fun (p : coalescing_point) ->
        [
          string_of_int p.dirtied;
          Report.fmt_ms p.with_ms;
          Report.fmt_ms p.without_ms;
          Report.fmt_ratio (p.without_ms /. Float.max 1e-9 p.with_ms);
        ])
      points
  in
  Report.table ppf
    ~title:"Ablation: restore-copy run coalescing (restore ms with vs without batching)"
    ~header:[ "dirtied"; "coalesced"; "per-page ops"; "slowdown" ]
    rows
