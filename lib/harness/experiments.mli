(** The experiment registry: one named entry per table and figure in the
    paper's evaluation (the DESIGN.md per-experiment index), runnable from
    the CLI ([gh-bench <id>]) and from bench/main.ml. *)

type id =
  | Fig3_left
  | Fig3_right
  | Fig4
  | Fig5
  | Fig6
  | Fig7
  | Fig8
  | Table1
  | Table2
  | Table3
  | Headline
  (* Beyond the paper: ablations and extensions indexed in DESIGN.md. *)
  | Motivation  (** §1's trivial solutions (COLDSTART, CRIU) vs GH. *)
  | Ablation_tracking  (** Soft-dirty vs userfaultfd (§4.3). *)
  | Ablation_coalescing  (** Restore-copy run batching. *)
  | Policy_skip  (** The §4.4 rollback-skip policy vs caller diversity. *)
  | Load_latency  (** Open-loop latency vs offered load (§4's claim). *)
  | Snapshot_cost  (** §5.5 across the whole catalog. *)
  | Multi_tenant
      (** Container density on a shared node: eager GH snapshot buffers vs
          incremental mode (extension). *)
  | Crash_recovery
      (** Restore as fault recovery: BASE rebuilds crashed containers,
          snapshot-holders roll back (extension). *)
  | Fault_injection
  | Overload
      (** Seeded fault injection through the fail-closed recovery pipeline:
          availability, goodput, MTTR, p99 vs fault rate (robustness
          extension). *)
  | Scrub_integrity
      (** Snapshot integrity: corruption rate x verification policy, with
          idle-time scrubbing and dedup sharing (robustness extension). *)

val all : id list
(** The paper's tables and figures, in order. *)

val extras : id list
(** The ablation/extension experiments. *)

val to_string : id -> string
val of_string : string -> (id, string) result
val describe : id -> string

type cache
(** Memo for the catalog-wide latency/throughput/breakdown sweeps shared
    between experiments (Table1 after Fig4 reuses the latency sweep).
    Safe for concurrent callers: each slot fills exactly once, other
    callers block until it is done. A cache belongs to one configuration;
    never reuse it with a different [Config.t]. *)

val cache : Config.t -> cache
(** A fresh, empty cache for one batch of experiments under this config. *)

val run : ?cache:cache -> id -> Config.t -> Format.formatter -> unit
(** Execute the experiment and print its table/series. Pass [cache] to
    share the catalog-wide sweeps across several [run] calls; without it
    each call measures independently. *)

val run_all : Config.t -> Format.formatter -> unit
(** Run {!all} — the paper set. *)

val run_extras : Config.t -> Format.formatter -> unit
