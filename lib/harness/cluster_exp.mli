(** Cluster fault-tolerance sweep: a multi-node fleet behind the
    controller under seeded node-level faults, with the management plane
    (health checks, circuit breakers, restart supervision, failover
    retries, hedging) on and off over identical request streams.

    Each nonzero fault rate combines a per-tick crash probability with
    three scheduled crashes spread across the arrival span, so every
    cell exercises real fleet damage deterministically at any seed. *)

type row = {
  rate_per_min : float;  (** Per-node crash rate, fraction per minute. *)
  placement : Gh_faas.Cluster.placement;
  failover : bool;
  offered : int;
  served : int;
  failed : int;
  availability : float;  (** served / offered. *)
  goodput_rps : float;
  p50_ms : float;
  p99_ms : float;
  failover_p99_ms : float;  (** First failure signal to winning response. *)
  retries : int;
  hedges : int;
  cancelled : int;
  crashes : int;
  hangs : int;
  restarts : int;
  timeouts : int;
  wasted : int;
  lost : int;
  double_served : int;  (** Must be 0. *)
  shed_and_served : int;  (** Must be 0. *)
  conservation_residue : int;  (** Must be 0. *)
  inflight_residue : int;  (** Must be 0 (checked with failover on). *)
}

type point = { rate_per_min : float; rows : row list }

val default_rates : float list
val default_placements : Gh_faas.Cluster.placement list

val measure :
  Config.t ->
  Gh_faas.Function_model.spec ->
  rate_per_min:float ->
  placement:Gh_faas.Cluster.placement ->
  failover:bool ->
  requests:int ->
  row

val run :
  Config.t ->
  ?rates:float list ->
  ?placements:Gh_faas.Cluster.placement list ->
  ?requests:int ->
  Gh_workloads.Catalog.entry ->
  point list

val violations : point list -> int
(** Delivery-contract breaches across all cells: double-serves,
    shed-and-served requests, conservation residue, dangling attempts.
    The CI gate — must be 0. *)

val print : Format.formatter -> Gh_workloads.Catalog.entry -> point list -> unit
