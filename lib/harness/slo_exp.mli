(** SLO observability sweep: the {!Cluster_exp} fleet under injected
    faults and offered-load pressure with the full observability stack
    attached — {!Gh_sim.Timeseries}, {!Gh_sim.Slo} burn-rate alerts and
    the {!Gh_sim.Flight_recorder} — measuring alert lead time against
    the replayed instant users visibly left each objective.

    Fail-closed contract (CI-gated via {!violations}, failover-on arm
    only): every breach of a gated objective (availability, latency)
    must be preceded by a fired alert, every flight-recorder dump must
    validate and cover the configured pre-failure window, and every
    span tree must close. The cold-start objective is reported but not
    gated: its 0.75 target cannot mathematically trip the workbook burn
    rates. *)

type row = {
  fault_per_min : float;
  load_factor : float;  (** Offered rate as a fraction of fleet capacity. *)
  failover : bool;
  offered : int;
  served : int;
  availability : float;
  p99_ms : float;
  alerts_fired : int;  (** Fire transitions across every objective. *)
  first_alert_ms : float;  (** Measurement start to first fire; nan if none. *)
  avail_breach_ms : float;  (** nan when availability never left objective. *)
  avail_lead_ms : float;  (** Breach minus first availability fire. *)
  latency_breach_ms : float;
      (** Sustained slow episode: slow fraction at twice the fast-page
          burn over the fast rule's long window; nan when none. *)
  latency_lead_ms : float;
  unalerted_breaches : int;  (** Gated objectives breached with no prior fire. *)
  dumps : int;  (** Flight-recorder dumps taken. *)
  dump_errors : int;  (** Schema or window-coverage failures. Must be 0. *)
  span_errors : int;  (** {!Gh_sim.Span.check} failures (failover on). *)
  series_windows : int;  (** Rolled time-series windows. *)
}

type point = { fault_per_min : float; rows : row list }

val default_fault_rates : float list
val default_load_factors : float list

val run :
  Config.t ->
  ?fault_rates:float list ->
  ?load_factors:float list ->
  ?requests:int ->
  Gh_workloads.Catalog.entry ->
  point list
(** Each (fault rate, load factor) cell runs both failover arms over the
    same seeded arrivals and fault schedule. *)

val violations : point list -> int
(** Unalerted gated breaches + invalid or window-short dumps + span
    failures, failover-on rows only. 0 is the CI gate. *)

val print : Format.formatter -> Gh_workloads.Catalog.entry -> point list -> unit
