module Rng = Gh_sim.Rng
module Time_ns = Gh_sim.Time_ns
module Registry = Gh_isolation.Registry
module Catalog = Gh_workloads.Catalog
module Fm = Gh_faas.Function_model

type measurement = {
  strategy : Registry.id;
  tput_rps : float;
  mean_cycle_ms : float;
}

type result = {
  entry : Catalog.entry;
  measurements : measurement list;
}

let default_strategies = [ Registry.Base; Registry.Gh; Registry.Gh_nop; Registry.Fork ]

let principals =
  [|
    Gh_faas.Principal.make ~id:1 ~name:"alice";
    Gh_faas.Principal.make ~id:2 ~name:"bob";
    Gh_faas.Principal.make ~id:3 ~name:"carol";
  |]

let run_one ?n_containers cfg strategy (entry : Catalog.entry) =
  let n_containers = Option.value n_containers ~default:cfg.Config.n_containers in
  let seed =
    cfg.Config.seed
    lxor Hashtbl.hash (entry.Catalog.display, Registry.to_string strategy, n_containers)
  in
  let root = Rng.create seed in
  if not (Registry.supports strategy entry.Catalog.spec) then None
  else begin
      let make_strategy i =
        (* Verification on, tallied off the timeline: bit-identical to the
           unverified sweep (see {!Latency_exp}). *)
        match
          Registry.make strategy ~verify:Groundhog_core.Manager.Verify_full
            ~rng:(Rng.named_split root (string_of_int i)) entry.Catalog.spec
        with
        | Ok s -> s
        | Error msg -> failwith msg
      in
      let deployment =
        (* Idle-time scrubbing is live during the throughput runs too: the
           slices read snapshot memory between requests and find nothing in
           a corruption-free run, so throughput is unchanged — the point is
           that integrity checking rides along at zero simulated cost. *)
        Gh_faas.Openwhisk.deploy ?spans:cfg.Config.spans ?series:cfg.Config.series
          ~slos:cfg.Config.slos ~scrub:Gh_faas.Container.default_scrub
          {
            Gh_faas.Openwhisk.n_cores = n_containers;
            dispatch_ns = cfg.Config.dispatch_ns;
            overhead = Gh_faas.Controller.default_overhead;
            seed;
          }
          ~make_strategy
      in
      let n_requests = Config.tput_requests_for cfg entry.Catalog.spec * n_containers in
      let results =
        (* The window must cover the platform round-trip times a container's
           service rate, or submission throttles throughput (the paper
           chose the in-flight count empirically to saturate). *)
        Gh_faas.Client.saturate deployment.Gh_faas.Openwhisk.engine
          deployment.Gh_faas.Openwhisk.controller ~n_requests
          ~window:(max 16 (48 * n_containers))
          ~principals ~input_kb:entry.Catalog.spec.Fm.input_kb
      in
      let tput = Gh_faas.Client.throughput_rps results in
      let mean_cycle_ms =
        if tput <= 0.0 then Float.nan else 1000.0 *. float_of_int n_containers /. tput
      in
      Some { strategy; tput_rps = tput; mean_cycle_ms }
  end

(* Cells are pure in (cfg, entry, strategy) — [run_one] derives every RNG
   stream from the cell's identity — so the sweep fans across domains and
   regroups by input position for a byte-identical merge. *)
let run ?(strategies = default_strategies) cfg entries =
  let n_s = List.length strategies in
  let cells =
    List.concat_map (fun entry -> List.map (fun s -> (entry, s)) strategies) entries
  in
  let arr =
    Array.of_list
      (Gh_sim.Domain_pool.parallel_map ~jobs:(Config.effective_jobs cfg)
         (fun (entry, s) -> run_one cfg s entry)
         cells)
  in
  List.mapi
    (fun i entry ->
      let measurements =
        List.filter_map Fun.id (List.init n_s (fun j -> arr.((i * n_s) + j)))
      in
      { entry; measurements })
    entries

let find result strategy = List.find_opt (fun m -> m.strategy = strategy) result.measurements

let print_fig5 ppf results =
  let columns = [ Registry.Gh; Registry.Gh_nop; Registry.Fork ] in
  let header =
    "benchmark"
    :: (List.map (fun s -> String.uppercase_ascii (Registry.to_string s)) columns
       @ [ "BASE r/s"; "paper GH pred" ])
  in
  let rows =
    List.map
      (fun r ->
        let base = find r Registry.Base in
        let rel s =
          match (find r s, base) with
          | Some m, Some b when b.tput_rps > 0.0 -> Report.fmt_ratio (m.tput_rps /. b.tput_rps)
          | _ -> "-"
        in
        (* The paper's predicted relative throughput: the reciprocal of
           1 + (in-function + restoration overhead)/baseline latency. *)
        let prediction =
          let reference = r.entry.Catalog.reference in
          let base_ms = reference.Gh_workloads.Paper_ref.base_invoker_ms in
          let gh_ms = reference.Gh_workloads.Paper_ref.gh_invoker_ms in
          let restore_ms = reference.Gh_workloads.Paper_ref.restore_ms in
          if base_ms <= 0.0 then Float.nan
          else 1.0 /. (1.0 +. ((gh_ms -. base_ms +. restore_ms) /. base_ms))
        in
        r.entry.Catalog.display
        :: (List.map rel columns
           @ [
               (match base with Some b -> Report.fmt_tput b.tput_rps | None -> "-");
               Report.fmt_ratio prediction;
             ]))
      results
  in
  Report.table ppf
    ~title:"Fig 5 — relative throughput vs BASE (higher is better)"
    ~header rows
