(* Cluster fault-tolerance sweep: a 3-node fleet behind the controller,
   node-level faults (crashes, hangs, message loss, heartbeat drops)
   injected from the seeded plan, with the management plane — health
   checks, circuit breakers, restart supervision, failover retries and
   hedging — on and off over the same seeded request stream.

   The claim under test: with failover on, availability stays near 100%
   and p99 inflation is bounded even while nodes crash mid-run (lost
   work is re-dispatched within its deadline); with failover off the
   same crash schedule permanently removes capacity and goodput
   collapses. Either way the delivery contract holds: no request is
   served twice, none is both failed and served, and every node
   completion is accounted (served, suppressed duplicate, or died with
   its node).

   Crash schedule: a per-tick probability derived from the configured
   per-minute rate, plus three scheduled occurrences (the fault plan's
   [nth] rule) spread over the arrival span — so every nonzero-rate cell
   exercises real crashes deterministically, at any seed, and the two
   failover arms face the same early fleet damage. *)

module Engine = Gh_sim.Engine
module Rng = Gh_sim.Rng
module Time_ns = Gh_sim.Time_ns
module Stats = Gh_sim.Stats
module Fault = Gh_sim.Fault
module Registry = Gh_isolation.Registry
module Catalog = Gh_workloads.Catalog
module Synthetic = Gh_workloads.Synthetic
module Fm = Gh_faas.Function_model
module Intf = Gh_faas.Strategy_intf
module Request = Gh_faas.Request
module Admission = Gh_faas.Admission
module Node = Gh_faas.Node
module Cluster = Gh_faas.Cluster
module Controller = Gh_faas.Controller

type row = {
  rate_per_min : float;
  placement : Cluster.placement;
  failover : bool;
  offered : int;
  served : int;
  failed : int;
  availability : float;
  goodput_rps : float;
  p50_ms : float;
  p99_ms : float;
  failover_p99_ms : float;  (** First failure signal to winning response. *)
  retries : int;
  hedges : int;
  cancelled : int;  (** Still-queued hedge losers removed after the win. *)
  crashes : int;
  hangs : int;
  restarts : int;
  timeouts : int;
  wasted : int;
  lost : int;
  double_served : int;  (** Requests delivered more than once. Must be 0. *)
  shed_and_served : int;  (** Requests both failed and served. Must be 0. *)
  conservation_residue : int;
      (** node completions - (served-by-response + wasted + lost). Must be 0. *)
  inflight_residue : int;
      (** Attempts/requests unaccounted after drain (failover on). Must be 0. *)
}

type point = { rate_per_min : float; rows : row list }

let default_rates = [ 0.0; 0.01; 0.05; 0.2 ]
let default_placements = [ Cluster.Least_loaded; Cluster.Warm_aware ]
let n_nodes = 3
let cores_per_node = 2

let principals =
  [| Gh_faas.Principal.make ~id:1 ~name:"alice"; Gh_faas.Principal.make ~id:2 ~name:"bob" |]

(* Mean per-request core occupancy on a throwaway instance: sizes the
   offered rate, the response timeout and the deadline. *)
let service_ns cfg spec ~seed =
  match Registry.make Registry.Gh ~rng:(Rng.create (seed lxor 0x5eed)) spec with
  | Error msg -> failwith ("Cluster_exp: cannot build probe strategy: " ^ msg)
  | Ok s ->
      let n = 8 in
      let total = ref 0 in
      for i = 1 to n do
        let req =
          Request.make ~id:(1_000_000 + i)
            ~principal:principals.(i land 1)
            ~input_kb:spec.Fm.input_kb ()
        in
        let inv = s.Intf.invoke req in
        total := !total + inv.Intf.on_path_ns + inv.Intf.post_ns
      done;
      (!total / n) + cfg.Config.dispatch_ns

let measure cfg spec ~rate_per_min ~placement ~failover ~requests =
  (* The seed is shared by the two failover arms: identical arrivals and
     an identical initial fault schedule, so the comparison isolates the
     management plane. *)
  let seed =
    cfg.Config.seed
    lxor Hashtbl.hash ("cluster", spec.Fm.name, Cluster.placement_name placement, rate_per_min)
  in
  let root = Rng.create seed in
  let service = service_ns cfg spec ~seed in
  let fleet_cores = n_nodes * cores_per_node in
  let capacity_rps = float_of_int fleet_cores *. 1.0e9 /. float_of_int service in
  (* Sized so the fleet minus one node still has burst headroom (the
     failover arms isolate fault handling, not overload — Overload_exp
     covers that), and so the arrival span holds three scheduled crashes
     spaced wider than one detect+restart+rejoin cycle (~1.1 s). *)
  let rate_rps = Float.min (0.45 *. capacity_rps) (float_of_int requests /. 4.5) in
  let hb = Time_ns.of_ms 100.0 in
  (* Attempt patience: generous against honest queueing (the fault-free
     p99 is well under this), small against the deadline so a timed-out
     attempt leaves room to fail over and still serve. *)
  let response_timeout = max (Time_ns.of_ms 250.0) (6 * service) in
  (* Client deadline: room for two timed-out attempts plus a served one
     even when a restart window (~1 s) sits in the middle. *)
  let ttl = max (Time_ns.of_sec 2.0) (8 * response_timeout) in
  let warmup = Time_ns.of_sec 2.0 in
  let arrivals =
    let arng = Rng.create (seed lxor Hashtbl.hash "cluster-arrivals") in
    List.map
      (fun t -> t + warmup)
      (Synthetic.burst ~duty:0.5 ~cycle_s:1.0 arng ~rate_rps ~n:requests)
  in
  let last_arrival = List.fold_left max warmup arrivals in
  let horizon = last_arrival + ttl + Time_ns.of_sec 2.0 in
  let fault =
    if rate_per_min <= 0.0 then Fault.none
    else begin
      let plan = Fault.create ~seed:(Hashtbl.hash (seed, "cluster-plan")) in
      let ticks_per_min = 60.0 *. 1.0e9 /. float_of_int hb in
      let per_tick = rate_per_min /. ticks_per_min in
      (* Three crashes scheduled across the arrival span (occurrence index
         ~ n_nodes draws per tick while the fleet is whole), on top of the
         rate-derived background probability. *)
      let crash_nths =
        List.filter_map
          (fun (node, f) ->
            (* Crash draws advance n_nodes per tick whether members are up
               or not, so member [node]'s draw on tick k (1-based) is
               occurrence (k-1)*n_nodes + node + 1: three crashes, three
               distinct members, at fixed times in both failover arms. *)
            let tick =
              max 1 ((warmup + int_of_float (f *. float_of_int (last_arrival - warmup))) / hb)
            in
            let occ = ((tick - 1) * n_nodes) + node + 1 in
            if occ >= 1 then Some occ else None)
          (* Early enough that most of the stream faces a damaged fleet,
             spaced wider than one detect+restart+rejoin cycle (~1.1 s)
             so the failover arm rarely loses the whole fleet at once. *)
          [ (0, 0.05); (1, 0.35); (2, 0.65) ]
      in
      Fault.set plan Fault.Node_crash ~prob:per_tick ~nth:crash_nths ();
      Fault.set plan Fault.Node_hang ~prob:(2.0 *. per_tick) ();
      Fault.set plan Fault.Cluster_msg_loss ~prob:0.002 ();
      Fault.set plan Fault.Heartbeat_drop ~prob:0.01 ();
      plan
    end
  in
  let engine = Engine.create () in
  let metrics = Gh_sim.Metrics.create () in
  let builds = ref 0 in
  let make_strategy _name sp =
    incr builds;
    match
      Registry.make Registry.Gh ~rng:(Rng.named_split root (Printf.sprintf "c%d" !builds)) sp
    with
    | Ok s -> s
    | Error msg -> failwith ("Cluster_exp: " ^ msg)
  in
  let cluster_config =
    {
      Cluster.n_nodes;
      node =
        {
          Node.total_cores = cores_per_node;
          memory_mb = 65_536;
          idle_timeout = Time_ns.of_sec 600.0;
          dispatch_ns = cfg.Config.dispatch_ns;
          recovery = None;
          admission = Admission.bounded ~policy:Admission.Edf_drop (10 * cores_per_node);
          brownout = None;
          scrub = None;
        };
      placement;
      failover;
      hb_interval = hb;
      hang_ns = 4 * hb;
      response_timeout;
      max_attempts = 4;
      (* Hedge just under the attempt timeout: only requests already far
         into the fault-free tail grow a second attempt, and a genuinely
         lost one still hedges before the timeout's breaker penalty. *)
      hedge_after = (if failover then Some (3 * response_timeout / 4) else None);
      restart_ns = Time_ns.of_ms 500.0;
      health = Gh_faas.Health.default_config;
      breaker = Gh_faas.Breaker.default_config;
    }
  in
  let cluster =
    Cluster.create ~metrics ~rng:(Rng.named_split root "cluster") ~fault engine
      cluster_config ~make_strategy
  in
  let fn = spec.Fm.name in
  Cluster.register cluster ~name:fn spec;
  let controller =
    Controller.create_sink ~ttl_ns:ttl engine
      ~rng:(Rng.named_split root "controller")
      (fun req ~on_response -> Cluster.submit cluster ~name:fn req ~on_response)
  in
  let served_ids = Hashtbl.create 256 in
  let failed_ids = Hashtbl.create 64 in
  let double_served = ref 0 in
  let e2e_ms = ref [] in
  Cluster.set_on_failed cluster (fun req -> Hashtbl.replace failed_ids req.Request.id ());
  Controller.set_on_shed controller (fun req -> Hashtbl.replace failed_ids req.Request.id ());
  (* One warm-up request per core at t=0 (no deadline, uncounted) pays the
     fleet's container cold starts before measurement. *)
  for i = 1 to fleet_cores do
    Engine.at engine ~time:0 (fun () ->
        Cluster.submit cluster ~name:fn
          (Request.make ~id:(2_000_000 + i)
             ~principal:principals.(i land 1)
             ~input_kb:spec.Fm.input_kb ())
          ~on_response:(fun _ _ -> ()))
  done;
  Cluster.start cluster ~until:horizon;
  Engine.at_batch engine
    (List.mapi
       (fun i at ->
         let id = i + 1 in
         ( at,
           fun () ->
             let req =
               Request.make ~id
                 ~principal:principals.(i land 1)
                 ~input_kb:spec.Fm.input_kb ()
             in
             Controller.submit controller req
               ~on_complete:(fun (c : Controller.completion) ->
                 if Hashtbl.mem served_ids c.Controller.request.Request.id then
                   incr double_served
                 else begin
                   Hashtbl.replace served_ids c.Controller.request.Request.id ();
                   e2e_ms := Time_ns.to_ms c.Controller.e2e_ns :: !e2e_ms
                 end) ))
       arrivals);
  Engine.run_all engine;
  let s = Cluster.stats cluster in
  let offered = List.length arrivals in
  let served = Hashtbl.length served_ids in
  let shed_and_served =
    Hashtbl.fold
      (fun id () n -> if Hashtbl.mem served_ids id then n + 1 else n)
      failed_ids 0
  in
  let conservation_residue =
    s.Cluster.node_completions
    - (s.Cluster.served + s.Cluster.wasted_responses + s.Cluster.lost_responses)
  in
  (* With failover off, attempts on dead nodes legitimately never conclude
     (nothing times them out); the residue check only binds the arm that
     promises full accounting. *)
  let inflight_residue =
    if failover then s.Cluster.inflight + s.Cluster.pending_requests else 0
  in
  let duration_s =
    Float.max 1e-9 (Time_ns.to_ms (last_arrival - warmup + ttl) /. 1000.0)
  in
  let summary =
    match !e2e_ms with
    | [] -> None
    | samples -> Some (Stats.summarize (Array.of_list samples))
  in
  let failover_p99_ms =
    match s.Cluster.failover_ms with
    | [] -> Float.nan
    | samples -> (Stats.summarize (Array.of_list samples)).Stats.p99
  in
  {
    rate_per_min;
    placement;
    failover;
    offered;
    served;
    failed = Hashtbl.length failed_ids;
    availability =
      (if offered = 0 then Float.nan else float_of_int served /. float_of_int offered);
    goodput_rps = float_of_int served /. duration_s;
    p50_ms = (match summary with Some s -> s.Stats.median | None -> Float.nan);
    p99_ms = (match summary with Some s -> s.Stats.p99 | None -> Float.nan);
    failover_p99_ms;
    retries = s.Cluster.retries;
    hedges = s.Cluster.hedges;
    cancelled = s.Cluster.hedge_cancelled;
    crashes = s.Cluster.crashes;
    hangs = s.Cluster.hangs;
    restarts = s.Cluster.restarts;
    timeouts = s.Cluster.attempt_timeouts;
    wasted = s.Cluster.wasted_responses;
    lost = s.Cluster.lost_responses;
    double_served = !double_served;
    shed_and_served;
    conservation_residue;
    inflight_residue;
  }

let run cfg ?(rates = default_rates) ?(placements = default_placements) ?(requests = 200)
    (entry : Catalog.entry) =
  List.map
    (fun rate_per_min ->
      {
        rate_per_min;
        rows =
          List.concat_map
            (fun placement ->
              [
                measure cfg entry.Catalog.spec ~rate_per_min ~placement ~failover:true
                  ~requests;
                measure cfg entry.Catalog.spec ~rate_per_min ~placement ~failover:false
                  ~requests;
              ])
            placements;
      })
    rates

(* The CI gate: every way a cell can violate the delivery contract.
   [double_served]: a response delivered twice; [shed_and_served]: a
   request both failed and served; [conservation_residue]: a node
   completion unaccounted for; [inflight_residue]: attempts or requests
   left dangling after drain with failover on. *)
let violations points =
  List.fold_left
    (fun n p ->
      List.fold_left
        (fun n r ->
          n + r.double_served + r.shed_and_served + abs r.conservation_residue
          + r.inflight_residue)
        n p.rows)
    0 points

let print ppf (entry : Catalog.entry) points =
  let header =
    [
      "rate/min";
      "placement";
      "fo";
      "offered";
      "served";
      "fail";
      "avail";
      "gp r/s";
      "p50 ms";
      "p99 ms";
      "fo p99";
      "retry";
      "hedge";
      "cancel";
      "crash";
      "restart";
      "tmo";
      "waste";
      "lost";
      "viol";
    ]
  in
  let fmt_opt v = if Float.is_nan v then "-" else Printf.sprintf "%.1f" v in
  let rows =
    List.concat_map
      (fun p ->
        List.map
          (fun (r : row) ->
            [
              Printf.sprintf "%.0f%%" (100.0 *. r.rate_per_min);
              Cluster.placement_name r.placement;
              (if r.failover then "on" else "off");
              string_of_int r.offered;
              string_of_int r.served;
              string_of_int r.failed;
              Printf.sprintf "%.1f%%" (100.0 *. r.availability);
              Printf.sprintf "%.1f" r.goodput_rps;
              fmt_opt r.p50_ms;
              fmt_opt r.p99_ms;
              fmt_opt r.failover_p99_ms;
              string_of_int r.retries;
              string_of_int r.hedges;
              string_of_int r.cancelled;
              string_of_int r.crashes;
              string_of_int r.restarts;
              string_of_int r.timeouts;
              string_of_int r.wasted;
              string_of_int r.lost;
              string_of_int
                (r.double_served + r.shed_and_served + abs r.conservation_residue
               + r.inflight_residue);
            ])
          p.rows)
      points
  in
  Report.table ppf
    ~title:
      (Printf.sprintf
         "Cluster fault tolerance on %s: %d nodes, node crashes/hangs/message loss from \
          the seeded plan, failover (health checks, breakers, restarts, retries, \
          hedging) on vs off over identical request streams. 'viol' must be 0: no \
          double-serve, no shed-and-served, every node completion accounted."
         entry.Catalog.display n_nodes)
    ~header rows
