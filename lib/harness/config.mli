(** Experiment configuration: how many invocations each measurement uses.

    The paper averages 1,200 invocations (90 for C functions longer than
    10 s); the default profile scales those down so the full suite
    regenerates in minutes, and [full] restores paper-sized runs. Request
    counts per benchmark adapt to its duration so that simulating a 196 s
    PolyBench kernel doesn't take 1,200 iterations. *)

type t = {
  seed : int;
  latency_requests : int;  (** Fast benchmarks (≤ 1 s). *)
  latency_requests_medium : int;  (** 1–10 s benchmarks. *)
  latency_requests_long : int;  (** > 10 s benchmarks. *)
  tput_requests : int;  (** Saturation measurement length. *)
  microbench_requests : int;  (** Per Fig. 3 sweep point. *)
  breakdown_requests : int;  (** Restores averaged for Fig. 8. *)
  n_containers : int;  (** Throughput containers (= cores). *)
  dispatch_ns : Gh_sim.Time_ns.t;  (** Invoker dispatch overhead. *)
  spans : Gh_sim.Span.t option;
      (** Span collector attached to every deployment the experiments
          build; [None] (default) disables request tracing. Sim-time
          neutral either way. *)
  metrics : Gh_sim.Metrics.t option;
      (** Shared metrics registry for node-based experiments; [None]
          (default) gives each node a private registry. *)
  series : Gh_sim.Timeseries.t option;
      (** Windowed time-series collector threaded into every deployment
          the experiments build; [None] (default) disables collection. *)
  slos : Gh_sim.Slo.t list;
      (** Burn-rate objectives evaluated at every front door; [[]]
          (default) disables SLO evaluation. *)
  jobs : int;
      (** Domains to fan sweep cells across ({!Gh_sim.Domain_pool}).
          1 (default) keeps every sweep serial; any value produces
          byte-identical report output because each cell derives its RNG
          from the seed and the cell's identity, never from run order. *)
}

val default : t
val full : t
(** Paper-sized request counts (slow; use for final numbers). *)

val quick : t
(** Minimal counts for CI smoke runs. *)

val effective_jobs : t -> int
(** [jobs], clamped to 1 when any observability collector (spans,
    metrics, series, SLOs) is attached: the collectors are shared mutable
    state, so instrumented runs serialize rather than lock every record
    call. *)

val downgrade_reasons : t -> string list
(** The CLI flags whose collectors force {!effective_jobs} to 1 —
    empty when no collector is attached. The driver names them in the
    warning it prints when a [-j] > 1 request is being overridden. *)

val latency_requests_for : t -> Gh_faas.Function_model.spec -> int
(** Adaptive request count by benchmark duration. *)

val tput_requests_for : t -> Gh_faas.Function_model.spec -> int
