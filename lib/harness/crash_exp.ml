module Rng = Gh_sim.Rng
module Time_ns = Gh_sim.Time_ns
module Registry = Gh_isolation.Registry
module Catalog = Gh_workloads.Catalog
module Fm = Gh_faas.Function_model
module Intf = Gh_faas.Strategy_intf

type point = {
  crash_rate : float;
  occupancy_ms : (Registry.id * float) list;
  crashes : (Registry.id * int) list;
}

let strategies = [ Registry.Base; Registry.Gh; Registry.Gh_nop; Registry.Fork ]

let alice = Gh_faas.Principal.make ~id:1 ~name:"alice"
let bob = Gh_faas.Principal.make ~id:2 ~name:"bob"

let measure cfg strategy spec ~requests =
  let seed = cfg.Config.seed lxor Hashtbl.hash ("crash", spec.Fm.name, Registry.to_string strategy) in
  match Registry.make strategy ~rng:(Rng.create seed) spec with
  | Error _ -> None
  | Ok strat ->
      let busy = ref 0 and crashes = ref 0 and succeeded = ref 0 in
      for i = 1 to requests do
        let principal = if i land 1 = 1 then alice else bob in
        let inv =
          strat.Intf.invoke (Gh_faas.Request.make ~id:i ~principal ~input_kb:spec.Fm.input_kb ())
        in
        (* The container is occupied for the whole episode — including the
           crashed attempt and its recovery — but only completed requests
           count as delivered work, so the mean is occupancy per
           {e successful} request. *)
        busy := !busy + inv.Intf.on_path_ns + inv.Intf.post_ns;
        match inv.Intf.outcome with
        | Intf.Completed -> incr succeeded
        | Intf.Crashed -> incr crashes
        | Intf.Hung | Intf.Poisoned -> ()
      done;
      if !succeeded = 0 then None
      else Some (Time_ns.to_ms (!busy / !succeeded), !crashes)

let run cfg ?(rates = [ 0.0; 0.01; 0.05; 0.2 ]) ?(requests = 80) (entry : Catalog.entry) =
  List.map
    (fun crash_rate ->
      let spec = { entry.Catalog.spec with Fm.crash_rate } in
      let occupancy = ref [] in
      let crashes = ref [] in
      List.iter
        (fun strategy ->
          match measure cfg strategy spec ~requests with
          | Some (ms, n) ->
              occupancy := (strategy, ms) :: !occupancy;
              crashes := (strategy, n) :: !crashes
          | None -> ())
        strategies;
      { crash_rate; occupancy_ms = List.rev !occupancy; crashes = List.rev !crashes })
    rates

let print ppf (entry : Catalog.entry) points =
  let header =
    "crash rate"
    :: (List.map
          (fun s -> String.uppercase_ascii (Registry.to_string s) ^ " ms/req")
          strategies
       @ [ "crashes (per strategy)" ])
  in
  let rows =
    List.map
      (fun p ->
        Printf.sprintf "%.0f%%" (100.0 *. p.crash_rate)
        :: (List.map
              (fun s ->
                match List.assoc_opt s p.occupancy_ms with
                | Some ms -> Report.fmt_ms ms
                | None -> "-")
              strategies
           @ [
               String.concat "/"
                 (List.map
                    (fun s ->
                      match List.assoc_opt s p.crashes with
                      | Some n -> string_of_int n
                      | None -> "-")
                    strategies);
             ]))
      points
  in
  Report.table ppf
    ~title:
      (Printf.sprintf
         "Crash recovery on %s: container occupancy per successful request vs crash rate — \
          BASE rebuilds the container, snapshot-holders just restore"
         entry.Catalog.display)
    ~header rows
