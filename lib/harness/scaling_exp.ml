module Registry = Gh_isolation.Registry
module Catalog = Gh_workloads.Catalog
module Stats = Gh_sim.Stats

type result = {
  entry : Catalog.entry;
  by_cores : (int * float) list;
  std_by_cores : (int * float) list;
}

(* The sweep is a triple loop (entry × cores × repeat); every iteration is
   an independent throughput run seeded by (seed + 1000·repeat, entry,
   cores), so the whole product flattens into one cell list for the domain
   pool and regroups by index into the same per-entry points. *)
let run ?(max_cores = 4) ?(repeats = 3) cfg entries =
  let cells =
    List.concat_map
      (fun entry ->
        List.concat_map
          (fun cores -> List.init repeats (fun r -> (entry, cores, r)))
          (List.init max_cores (fun i -> i + 1)))
      entries
  in
  let samples =
    Array.of_list
      (Gh_sim.Domain_pool.parallel_map ~jobs:(Config.effective_jobs cfg)
         (fun (entry, cores, r) ->
           let cfg = { cfg with Config.seed = cfg.Config.seed + (1000 * r) } in
           match Throughput_exp.run_one ~n_containers:cores cfg Registry.Gh entry with
           | Some m -> Some m.Throughput_exp.tput_rps
           | None -> None)
         cells)
  in
  List.mapi
    (fun i entry ->
      let points =
        List.filter_map
          (fun cores ->
            let base = ((i * max_cores) + (cores - 1)) * repeats in
            let samples =
              List.filter_map (fun r -> samples.(base + r)) (List.init repeats Fun.id)
            in
            match samples with
            | [] -> None
            | _ ->
                let a = Array.of_list samples in
                Some (cores, Stats.mean a, Stats.std a))
          (List.init max_cores (fun i -> i + 1))
      in
      {
        entry;
        by_cores = List.map (fun (c, m, _) -> (c, m)) points;
        std_by_cores = List.map (fun (c, _, sd) -> (c, sd)) points;
      })
    entries

let linearity r =
  match (List.assoc_opt 1 r.by_cores, List.rev r.by_cores) with
  | Some t1, (k, tk) :: _ when t1 > 0.0 && k > 1 -> Some (tk /. (float_of_int k *. t1))
  | _ -> None

let print_fig7 ppf results =
  let cores = match results with { by_cores; _ } :: _ -> List.map fst by_cores | [] -> [] in
  let header =
    "benchmark"
    :: (List.map (fun c -> Printf.sprintf "%d core%s" c (if c > 1 then "s" else "")) cores
       @ [ "linearity" ])
  in
  let rows =
    List.map
      (fun r ->
        r.entry.Catalog.display
        :: (List.map (fun c ->
                match (List.assoc_opt c r.by_cores, List.assoc_opt c r.std_by_cores) with
                | Some t, Some sd -> Printf.sprintf "%s +/-%.2g" (Report.fmt_tput t) sd
                | _ -> "-")
              cores
           @ [
               (match linearity r with Some l -> Printf.sprintf "%.2f" l | None -> "-");
             ]))
      results
  in
  Report.table ppf
    ~title:
      "Fig 7 — GH throughput (req/s) scaling with cores (1 container per core; mean +/- std        over repeated seeded runs)"
    ~header rows
