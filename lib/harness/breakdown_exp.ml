module Rng = Gh_sim.Rng
module Time_ns = Gh_sim.Time_ns
module Registry = Gh_isolation.Registry
module Catalog = Gh_workloads.Catalog
module Breakdown = Groundhog_core.Breakdown
module Fm = Gh_faas.Function_model
module Intf = Gh_faas.Strategy_intf

type result = {
  entry : Catalog.entry;
  mean : Breakdown.t;
  restore_ms : float;
  snapshot_ms : float;
  snapshot_pages : int;
  total_pages : int;
  faasm_reset_ms : float option;
}

let principals =
  [|
    Gh_faas.Principal.make ~id:1 ~name:"alice";
    Gh_faas.Principal.make ~id:2 ~name:"bob";
  |]

let collect_breakdowns strat n input_kb =
  let acc = ref Breakdown.zero in
  let count = ref 0 in
  for i = 0 to n - 1 do
    let req =
      Gh_faas.Request.make ~id:(i + 1) ~principal:principals.(i mod 2) ~input_kb ()
    in
    let inv = strat.Intf.invoke req in
    match inv.Intf.breakdown with
    | Some b ->
        acc := Breakdown.add !acc b;
        incr count
    | None -> ()
  done;
  if !count = 0 then Breakdown.zero else Breakdown.scale !acc (1.0 /. float_of_int !count)

let run_one ?(with_faasm = true) cfg (entry : Catalog.entry) =
  let seed = cfg.Config.seed lxor Hashtbl.hash ("breakdown", entry.Catalog.display) in
  let rng = Rng.create seed in
  let n = min (Config.latency_requests_for cfg entry.Catalog.spec) cfg.Config.breakdown_requests in
  let n = max 3 n in
  (* Verified restores (tallied off the timeline): breakdowns identical. *)
  let strategy, state =
    Gh_isolation.Gh.make_with_state ~verify:Groundhog_core.Manager.Verify_full
      ~rng:(Rng.split rng) entry.Catalog.spec
  in
  let mean = collect_breakdowns strategy n entry.Catalog.spec.Fm.input_kb in
  let snapshot = Groundhog_core.Manager.snapshot (Gh_isolation.Gh.manager state) in
  let snapshot_ms, snapshot_pages =
    match snapshot with
    | Some s ->
        ( Time_ns.to_ms s.Groundhog_core.Snapshot.capture_ns,
          s.Groundhog_core.Snapshot.present_pages )
    | None -> (Float.nan, 0)
  in
  let total_pages =
    Gh_mem.Address_space.total_pages
      (Fm.proc (Gh_isolation.Gh.instance state)).Gh_proc.Process.mem
  in
  let faasm_reset_ms =
    if (not with_faasm) || not (Registry.supports Registry.Faasm entry.Catalog.spec) then None
    else begin
      match Registry.make Registry.Faasm ~rng:(Rng.split rng) entry.Catalog.spec with
      | Error _ -> None
      | Ok faasm ->
          let b = collect_breakdowns faasm (max 3 (n / 2)) entry.Catalog.spec.Fm.input_kb in
          Some (Time_ns.to_ms b.Breakdown.total_ns)
    end
  in
  {
    entry;
    mean;
    restore_ms = Time_ns.to_ms mean.Breakdown.total_ns;
    snapshot_ms;
    snapshot_pages;
    total_pages;
    faasm_reset_ms;
  }

(* One cell per entry (the per-entry seed depends only on the display
   name), fanned across domains; parallel_map preserves input order. *)
let run ?with_faasm cfg entries =
  Gh_sim.Domain_pool.parallel_map ~jobs:(Config.effective_jobs cfg)
    (run_one ?with_faasm cfg) entries

let print_fig8 ppf results =
  let step_labels = List.map fst (Breakdown.steps Breakdown.zero) in
  let header =
    ("benchmark" :: List.map (fun l -> l ^ "%") step_labels)
    @ [ "restore ms"; "pages K"; "restored K"; "snapshot ms" ]
  in
  let rows =
    List.map
      (fun r ->
        let total = float_of_int (max 1 r.mean.Breakdown.total_ns) in
        let pct (_, ns) = Printf.sprintf "%.1f" (100.0 *. float_of_int ns /. total) in
        (r.entry.Catalog.display :: List.map pct (Breakdown.steps r.mean))
        @ [
            Report.fmt_ms r.restore_ms;
            Printf.sprintf "%.2f" (float_of_int r.total_pages /. 1000.0);
            Printf.sprintf "%.2f" (float_of_int r.mean.Breakdown.pages_restored /. 1000.0);
            Report.fmt_ms r.snapshot_ms;
          ])
      results
  in
  Report.table ppf
    ~title:"Fig 8 — restoration cost breakdown (% of total) + one-time snapshot cost"
    ~header rows

let print_fig6 ppf results =
  let header = [ "benchmark"; "GH restore ms"; "FAASM reset ms" ] in
  let rows =
    List.map
      (fun r ->
        [
          r.entry.Catalog.display;
          Report.fmt_ms r.restore_ms;
          (match r.faasm_reset_ms with Some v -> Report.fmt_ms v | None -> "-");
        ])
      results
  in
  Report.table ppf ~title:"Fig 6 — restoration duration (off the critical path): GH vs FAASM"
    ~header rows
