module Rng = Gh_sim.Rng
module Stats = Gh_sim.Stats
module Time_ns = Gh_sim.Time_ns
module Registry = Gh_isolation.Registry
module Catalog = Gh_workloads.Catalog
module Fm = Gh_faas.Function_model
module Intf = Gh_faas.Strategy_intf

type measurement = {
  strategy : Registry.id;
  invoker : Stats.summary;
  e2e : Stats.summary;
}

type result = {
  entry : Catalog.entry;
  measurements : measurement list;
}

let default_strategies =
  [ Registry.Base; Registry.Gh; Registry.Gh_nop; Registry.Fork; Registry.Faasm ]

let principals =
  [|
    Gh_faas.Principal.make ~id:1 ~name:"alice";
    Gh_faas.Principal.make ~id:2 ~name:"bob";
  |]

let run_one cfg strategy (entry : Catalog.entry) =
  let seed = cfg.Config.seed lxor Hashtbl.hash (entry.Catalog.display, Registry.to_string strategy) in
  let rng = Rng.create seed in
  if not (Registry.supports strategy entry.Catalog.spec) then None
  else begin
    (* Full restore-time verification is on for the measured runs: the
       audit reads memory only and tallies its modelled cost off the
       timeline, so the figures are bit-identical to unverified runs —
       integrity checking is free in simulated time by construction. *)
    match
      Registry.make strategy ~verify:Groundhog_core.Manager.Verify_full ~rng:(Rng.split rng)
        entry.Catalog.spec
    with
    | Error _ -> None
    | Ok strat ->
      let overhead_rng = Rng.split rng in
      let n = Config.latency_requests_for cfg entry.Catalog.spec in
      (* The first requests after container start are warm-up (one-time
         re-arm fault storms); the paper's measurements exclude them. *)
      let discard = 2 in
      let invoker_ms = Array.make n 0.0 in
      let e2e_ms = Array.make n 0.0 in
      for i = -discard to n - 1 do
        let principal = principals.((i + discard) mod Array.length principals) in
        let req =
          Gh_faas.Request.make ~id:(i + discard + 1) ~principal
            ~input_kb:entry.Catalog.spec.Fm.input_kb ()
        in
        let inv = strat.Intf.invoke req in
        if i >= 0 then begin
          let platform = Gh_faas.Controller.sample_overhead Gh_faas.Controller.default_overhead overhead_rng in
          invoker_ms.(i) <- Time_ns.to_ms inv.Intf.on_path_ns;
          e2e_ms.(i) <- Time_ns.to_ms (inv.Intf.on_path_ns + platform)
        end
      done;
      Some { strategy; invoker = Stats.summarize invoker_ms; e2e = Stats.summarize e2e_ms }
  end

(* Each (entry, strategy) cell seeds its own RNG from the pair's identity
   (see [run_one]), so cells are pure in (cfg, cell) and the sweep can fan
   them across domains; regrouping by input position makes the merged
   result — and hence the printed report — byte-identical to the serial
   sweep. *)
let run ?(strategies = default_strategies) cfg entries =
  let n_s = List.length strategies in
  let cells =
    List.concat_map (fun entry -> List.map (fun s -> (entry, s)) strategies) entries
  in
  let arr =
    Array.of_list
      (Gh_sim.Domain_pool.parallel_map ~jobs:(Config.effective_jobs cfg)
         (fun (entry, s) -> run_one cfg s entry)
         cells)
  in
  List.mapi
    (fun i entry ->
      let measurements =
        List.filter_map Fun.id (List.init n_s (fun j -> arr.((i * n_s) + j)))
      in
      { entry; measurements })
    entries

let find result strategy =
  List.find_opt (fun m -> m.strategy = strategy) result.measurements

let relative_to_base result =
  match find result Registry.Base with
  | None -> []
  | Some base ->
      List.filter_map
        (fun m ->
          if m.strategy = Registry.Base then None
          else
            Some
              ( m.strategy,
                m.e2e.Stats.mean /. base.e2e.Stats.mean,
                m.invoker.Stats.mean /. base.invoker.Stats.mean ))
        result.measurements

let print_part ppf ~title ~pick results =
  let columns = [ Registry.Gh; Registry.Gh_nop; Registry.Fork; Registry.Faasm ] in
  let header =
    "benchmark" :: List.map (fun s -> String.uppercase_ascii (Registry.to_string s)) columns
  in
  let rows =
    List.map
      (fun r ->
        let rel = relative_to_base r in
        r.entry.Catalog.display
        :: List.map
             (fun s ->
               match List.find_opt (fun (id, _, _) -> id = s) rel with
               | Some (_, e2e, inv) -> Report.fmt_ratio (pick e2e inv)
               | None -> "-")
             columns)
      results
  in
  Report.table ppf ~title ~header rows

let print_fig4 ppf results =
  let suites =
    [
      ("(a) e2e latency, pyperformance (p)", Catalog.Pyperformance, `E2e);
      ("(b) invoker latency, pyperformance (p)", Catalog.Pyperformance, `Invoker);
      ("(c) e2e latency, PolyBench (c)", Catalog.Polybench, `E2e);
      ("(d) invoker latency, PolyBench (c)", Catalog.Polybench, `Invoker);
      ("(e) e2e latency, FaaSProfiler (p)+(n)", Catalog.Faasprofiler, `E2e);
      ("(f) invoker latency, FaaSProfiler (p)+(n)", Catalog.Faasprofiler, `Invoker);
    ]
  in
  List.iter
    (fun (title, suite, which) ->
      let subset = List.filter (fun r -> r.entry.Catalog.suite = suite) results in
      let pick e2e inv = match which with `E2e -> e2e | `Invoker -> inv in
      print_part ppf ~title:(Printf.sprintf "Fig 4 %s — relative to BASE (lower is better)" title)
        ~pick subset)
    suites
