(** Overload-protection sweep: open-loop bursty arrivals at multiples of
    each strategy's measured capacity, with the platform's protection stack
    (deadlines + bounded EDF admission + brownout) on and off over the same
    deterministic arrival stream.

    Reports goodput (completions within deadline), shed/expired/failed
    counts, deadline-miss rate, and p50/p99 latency per utilization point,
    and cross-checks the overload contract: no request served by a
    non-clean process, no cross-principal residue from an isolating
    strategy, no shed request that consumed work, no late completion the
    node failed to count. *)

type row = {
  strategy : Gh_isolation.Registry.id;
  protected : bool;
  util : float;  (** Offered load as a multiple of measured capacity. *)
  offered : int;
  offered_rps : float;
  completed : int;
  goodput : int;  (** Completed within the deadline budget. *)
  goodput_rps : float;
  shed : int;
  expired : int;
  failed : int;
  deadline_misses : int;  (** Late completions, as counted by the node. *)
  miss_rate : float;  (** Late completions / completions. *)
  p50_ms : float;
  p99_ms : float;
  queue_high_water : int;
  cold_starts : int;
  brownout_escalations : int;
  unsafe_served : int;  (** Dispatches to a non-clean process. Must be 0. *)
  leaked_words : int;  (** Foreign residue served by an isolating strategy. Must be 0. *)
  shed_served : int;  (** Shed requests that still consumed work. Must be 0. *)
  late_uncounted : int;  (** Late completions the node failed to count. Must be 0. *)
}

type point = { util : float; rows : row list }

val default_strategies : Gh_isolation.Registry.id list
(** [Base; Gh]. *)

val default_utils : float list
(** [0.5; 0.8; 1.1; 1.5; 2.0]. *)

val run :
  Config.t ->
  ?strategies:Gh_isolation.Registry.id list ->
  ?utils:float list ->
  ?requests:int ->
  Gh_workloads.Catalog.entry ->
  point list
(** One protected + one unprotected measurement per (strategy, util), both
    over the identical arrival stream (keyed by seed, strategy, util).
    [requests] (default 240) arrivals per measurement. Strategies the spec
    does not support are skipped. Fully deterministic — including every
    shed decision — per [cfg.seed]. *)

val violations : point list -> int
(** Sum of all invariant breaches ([unsafe_served] + [leaked_words] +
    [shed_served] + [late_uncounted]) across the sweep; the CI gate
    requires 0. *)

val print : Format.formatter -> Gh_workloads.Catalog.entry -> point list -> unit
