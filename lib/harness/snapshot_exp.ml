module Rng = Gh_sim.Rng
module Time_ns = Gh_sim.Time_ns
module Catalog = Gh_workloads.Catalog
module Intf = Gh_faas.Strategy_intf
module Gh = Gh_isolation.Gh
module Manager = Groundhog_core.Manager
module Snapshot = Groundhog_core.Snapshot
module Incremental = Groundhog_core.Incremental
module Fm = Gh_faas.Function_model
module Account = Gh_sim.Account

type row = {
  entry : Catalog.entry;
  snapshot_ms : float;
  present_pages : int;
  buffer_mb : float;
  init_ms : float;
  incr_capture_ms : float;
  incr_buffer_mb : float;
}

let mb_of_pages pages = float_of_int pages *. 4096.0 /. 1048576.0

(* Serve a few requests against an incremental-snapshot manager and report
   (capture ms, manager buffer MB after the requests). *)
let incremental_probe cfg (entry : Catalog.entry) =
  let seed = cfg.Config.seed lxor Hashtbl.hash ("snapshot-incr", entry.Catalog.display) in
  let rng = Rng.create seed in
  let inst = Fm.build entry.Catalog.spec in
  ignore (Fm.warmup inst (Account.create ()) rng);
  Fm.mark_clean inst;
  let mgr = Manager.create ~mode:Manager.Incremental (Fm.proc inst) in
  let capture_ns = Manager.take_snapshot_exn mgr in
  let n = max 3 (min 8 cfg.Config.breakdown_requests) in
  for i = 1 to n do
    let req =
      Gh_faas.Request.make ~id:i
        ~principal:(Gh_faas.Principal.make ~id:(1 + (i mod 2)) ~name:"p")
        ~input_kb:entry.Catalog.spec.Fm.input_kb ()
    in
    ignore (Fm.invoke inst (Account.create ()) rng ~post_restore:(i > 1) req);
    Manager.mark_dirty mgr;
    ignore (Manager.restore_exn mgr)
  done;
  (Time_ns.to_ms capture_ns, mb_of_pages (Manager.buffer_pages mgr))

(* Per-entry cells (seeds hash the display name), fanned across domains;
   parallel_map keeps catalog order so [print]'s sort sees the same list. *)
let run cfg entries =
  Gh_sim.Domain_pool.parallel_map ~jobs:(Config.effective_jobs cfg)
    (fun (entry : Catalog.entry) ->
      let seed = cfg.Config.seed lxor Hashtbl.hash ("snapshot", entry.Catalog.display) in
      let strategy, state = Gh.make_with_state ~rng:(Rng.create seed) entry.Catalog.spec in
      let snap = Option.get (Manager.snapshot (Gh.manager state)) in
      let incr_capture_ms, incr_buffer_mb = incremental_probe cfg entry in
      {
        entry;
        snapshot_ms = Time_ns.to_ms snap.Snapshot.capture_ns;
        present_pages = snap.Snapshot.present_pages;
        buffer_mb = mb_of_pages snap.Snapshot.present_pages;
        init_ms = Time_ns.to_ms strategy.Intf.init_ns;
        incr_capture_ms;
        incr_buffer_mb;
      })
    entries

let print ppf rows =
  let sorted = List.sort (fun a b -> compare a.present_pages b.present_pages) rows in
  let table_rows =
    List.map
      (fun r ->
        [
          r.entry.Catalog.display;
          string_of_int r.present_pages;
          Printf.sprintf "%.1f" r.buffer_mb;
          Report.fmt_ms r.snapshot_ms;
          Report.fmt_ms r.init_ms;
          Report.fmt_ms r.incr_capture_ms;
          Printf.sprintf "%.1f" r.incr_buffer_mb;
        ])
      sorted
  in
  Report.table ppf
    ~title:
      "Snapshotting overhead (§5.5): eager capture vs the proposed incremental (CoW-salvage) \
       snapshots (sorted by footprint)"
    ~header:
      [
        "benchmark";
        "present pages";
        "eager MB";
        "eager ms";
        "container init ms";
        "incr capture ms";
        "incr MB (after reqs)";
      ]
    table_rows
