(** Multi-tenant node experiment: what request isolation costs in container
    {e density}, not just cycles.

    Several functions share one invoker node with a fixed core count and
    memory budget; containers cold-start on demand and are evicted when
    idle. An eager Groundhog manager pins a snapshot buffer the size of the
    function's footprint, so fewer containers fit and more requests eat
    cold starts or queueing; the incremental snapshot mode (§5.5) keeps
    Groundhog's isolation at near-BASE density. *)

type mode = Base | Gh_eager | Gh_incremental

type result = {
  memory_mb : int;
  mode : mode;
  completed : int;
  cold_starts : int;
  evictions : int;
  mean_e2e_ms : float;
  p95_e2e_ms : float;
  high_water_mb : int;
  shed : int;  (** Dropped by admission control or brownout, never served. *)
  expired : int;  (** Dropped because their deadline passed, never served. *)
  leftover_queue : int;  (** Requests still queued when the run ended. *)
}

val mode_to_string : mode -> string

val run :
  Config.t ->
  ?memory_budgets_mb:int list ->
  ?duration_s:float ->
  ?rate_rps:float ->
  Gh_workloads.Catalog.entry list ->
  result list
(** Drive identical Poisson arrival sequences at [rate_rps] per function
    for [duration_s] of simulated time, for each (memory budget × mode)
    combination. Default budgets: generous, tight, and starving. *)

val default_functions : string list
val print : Format.formatter -> result list -> unit
