type tracking = Soft_dirty | Uffd | Kernel_list

type t = {
  tracking : tracking;
  uffd_fault_ns : int;
  page_write_ns : int;
  page_read_ns : int;
  sd_fault_ns : int;
  cow_fault_ns : int;
  first_touch_fault_ns : int;
  demand_zero_fault_ns : int;
  maps_read_per_vma_ns : int;
  pagemap_scan_per_page_ns : int;
  clear_refs_per_page_ns : int;
  ptrace_attach_ns : int;
  ptrace_interrupt_per_thread_ns : int;
  ptrace_getregs_per_thread_ns : int;
  ptrace_setregs_per_thread_ns : int;
  ptrace_detach_per_thread_ns : int;
  syscall_inject_ns : int;
  snapshot_copy_per_page_ns : int;
  restore_copy_per_page_ns : int;
  restore_copy_run_setup_ns : int;
  coalesce_runs : bool;
  stack_zero_per_page_ns : int;
  layout_diff_per_vma_ns : int;
  mmap_ns : int;
  munmap_ns : int;
  brk_ns : int;
  mprotect_ns : int;
  madvise_ns : int;
  fork_base_ns : int;
  fork_per_vma_ns : int;
  fork_per_present_page_ns : int;
  faasm_reset_base_ns : int;
  faasm_reset_per_dirty_page_ns : int;
  hash_per_page_ns : int;
}

(* Calibration anchors (Appendix A, Table 3 of the paper):
   - C PolyBench process: ~1 thread, ~0.98K pages, ~20 restored pages,
     restore 0.5–1.3 ms.
   - Python: ~2 threads, 3–8K pages, 0.2–3K restored, restore 1.7–12 ms.
   - Node.js: ~6 threads, 157–208K pages, restore 12.6–162 ms; scans of the
     huge address space dominate.
   - SD re-arm faults cost well under a microsecond; CoW faults several
     times more (fault + 4 KiB copy); fork also pays first-touch faults on
     reads, making it slower than GH at equal dirty rates. *)
let default =
  {
    tracking = Soft_dirty;
    uffd_fault_ns = 3_600;
    page_write_ns = 18;
    page_read_ns = 9;
    sd_fault_ns = 480;
    cow_fault_ns = 2_900;
    first_touch_fault_ns = 260;
    demand_zero_fault_ns = 350;
    maps_read_per_vma_ns = 2_400;
    pagemap_scan_per_page_ns = 58;
    clear_refs_per_page_ns = 15;
    ptrace_attach_ns = 26_000;
    ptrace_interrupt_per_thread_ns = 150_000;
    ptrace_getregs_per_thread_ns = 9_000;
    ptrace_setregs_per_thread_ns = 9_500;
    ptrace_detach_per_thread_ns = 21_000;
    syscall_inject_ns = 60_000;
    snapshot_copy_per_page_ns = 840;
    restore_copy_per_page_ns = 2_200;
    restore_copy_run_setup_ns = 6_000;
    coalesce_runs = true;
    stack_zero_per_page_ns = 130;
    layout_diff_per_vma_ns = 750;
    mmap_ns = 2_100;
    munmap_ns = 1_900;
    brk_ns = 900;
    mprotect_ns = 1_500;
    madvise_ns = 1_300;
    fork_base_ns = 95_000;
    fork_per_vma_ns = 1_400;
    fork_per_present_page_ns = 95;
    faasm_reset_base_ns = 210_000;
    faasm_reset_per_dirty_page_ns = 3_000;
    hash_per_page_ns = 150;
  }

let no_coalescing = { default with coalesce_runs = false }
let uffd_tracking = { default with tracking = Uffd }
let kernel_list_tracking = { default with tracking = Kernel_list }

let pp ppf t =
  let tracking =
    match t.tracking with
    | Soft_dirty -> "soft-dirty"
    | Uffd -> "uffd"
    | Kernel_list -> "kernel-list"
  in
  Format.fprintf ppf
    "@[<v>tracking=%s sd_fault=%dns cow_fault=%dns first_touch=%dns@ \
     scan=%dns/page clear_refs=%dns/page maps=%dns/vma@ \
     interrupt=%dns/thread inject=%dns/syscall@ \
     copy=%dns/page run-setup=%dns coalesce=%d@]"
    tracking t.sd_fault_ns t.cow_fault_ns t.first_touch_fault_ns
    t.pagemap_scan_per_page_ns t.clear_refs_per_page_ns t.maps_read_per_vma_ns
    t.ptrace_interrupt_per_thread_ns t.syscall_inject_ns t.restore_copy_per_page_ns
    t.restore_copy_run_setup_ns (if t.coalesce_runs then 1 else 0)
