(** The calibrated cost model of the simulated kernel.

    Every substrate operation charges simulated nanoseconds according to the
    constants below. The constants are calibrated (see DESIGN.md §6) so the
    anchors of the paper's Appendix A hold approximately on the default
    profile: a C hello-world restores in ~0.5 ms, a Python one in ~1.7 ms, a
    Node.js process with ~157K mapped pages in ~13 ms, a soft-dirty re-arm
    fault is several times cheaper than a CoW copy fault, pagemap scans are
    linear in mapped pages, and restoration copies are linear in dirtied
    pages with a cheaper bulk rate once contiguous runs can be coalesced.

    Experiments never edit constants in place: use [{ default with ... }]
    to derive variant profiles (e.g. the ablation benches). *)

type tracking =
  | Soft_dirty
      (** Kernel-maintained dirty bits: cheap per-write re-arm fault; the
          restore-time scan walks every mapped page's pagemap entry. *)
  | Uffd
      (** userfaultfd write-protection: every first write takes a user-space
          round trip (expensive), but the manager already knows the dirty
          set, so no restore-time scan is needed. The paper prototyped and
          rejected this (§4.3); we keep it as an ablation. *)
  | Kernel_list
      (** The paper's footnote-6 hypothetical: a custom in-kernel facility
          that hands the manager the {e list} of modified pages. Writes pay
          the ordinary soft-dirty re-arm fault; the restore-time walk costs
          per {e dirty} page instead of per mapped page. Requires kernel
          changes, which Groundhog's design rules out — kept as the upper
          bound an in-kernel assist could buy. *)

type t = {
  tracking : tracking;
  uffd_fault_ns : int;
      (** Write-protect fault handled in user space (Uffd tracking only). *)
  (* -- In-function memory access (used by workload models). -- *)
  page_write_ns : int;  (** Write one word to an already-mapped page. *)
  page_read_ns : int;  (** Read one word from an already-mapped page. *)
  (* -- Page-fault flavours. -- *)
  sd_fault_ns : int;
      (** Minor fault taken on the first write to a page after a soft-dirty
          reset: the kernel re-arms the SD bit. This is Groundhog's only
          on-critical-path overhead (§5.2.1). *)
  cow_fault_ns : int;
      (** Copy-on-write fault: trap plus a 4 KiB page copy. Paid by the
          FORK and FAASM strategies on every first write to a shared page. *)
  first_touch_fault_ns : int;
      (** First access (even a read) to a page whose PTE does not exist yet
          in a freshly forked child: dTLB miss + lazy page-table population
          (§5.2.3's explanation of FORK's slope vs address-space size). *)
  demand_zero_fault_ns : int;
      (** First touch of a lazily allocated anonymous page. *)
  (* -- /proc introspection. -- *)
  maps_read_per_vma_ns : int;  (** Parse one line of /proc/pid/maps. *)
  pagemap_scan_per_page_ns : int;
      (** Read one 64-bit pagemap entry while hunting soft-dirty bits. *)
  clear_refs_per_page_ns : int;
      (** Per-page cost of the clear_refs full-address-space walk. *)
  (* -- ptrace orchestration. -- *)
  ptrace_attach_ns : int;  (** Fixed attach/seize cost. *)
  ptrace_interrupt_per_thread_ns : int;  (** Stop one thread. *)
  ptrace_getregs_per_thread_ns : int;
  ptrace_setregs_per_thread_ns : int;
  ptrace_detach_per_thread_ns : int;
  syscall_inject_ns : int;
      (** One injected syscall: two SIGTRAP round-trips plus register
          save/restore (§4.4's layout-reversal mechanism). *)
  (* -- Snapshot / restore memory copying. -- *)
  snapshot_copy_per_page_ns : int;  (** Copy one page into manager memory. *)
  restore_copy_per_page_ns : int;  (** Per 4 KiB page moved. *)
  restore_copy_run_setup_ns : int;
      (** Fixed setup per contiguous run: Groundhog coalesces each maximal
          run of dirty pages into a single large copy, so restoring costs
          [setup + len·per_page] per run. As dirty density grows past
          ~50–60 %, scattered pages merge into fewer longer runs, the
          per-run setups amortize, and the latency-vs-density slope drops —
          the Fig. 3 (left) slope change. *)
  coalesce_runs : bool;
      (** Ablation hook: [false] restores each page as its own operation
          (setup charged per page). *)
  stack_zero_per_page_ns : int;  (** Zero one page of the stack. *)
  layout_diff_per_vma_ns : int;  (** Compare one VMA against the snapshot. *)
  (* -- Direct syscall costs (paid by the function while executing). -- *)
  mmap_ns : int;
  munmap_ns : int;
  brk_ns : int;
  mprotect_ns : int;
  madvise_ns : int;
  (* -- fork(2). -- *)
  fork_base_ns : int;
  fork_per_vma_ns : int;
  fork_per_present_page_ns : int;
      (** Page-table duplication cost per present page. *)
  (* -- FAASM-style linear-memory reset. -- *)
  faasm_reset_base_ns : int;
  faasm_reset_per_dirty_page_ns : int;
  (* -- Snapshot integrity. -- *)
  hash_per_page_ns : int;
      (** Hash one 4 KiB page already in cache (xxHash-class throughput).
          The integrity layer's accounting unit: capture-time hashing,
          restore-time verification and idle scrubbing are *tallied* at
          this rate in the metrics registry, but never injected into the
          event timeline (see DESIGN §14's charging model). *)
}

val default : t
(** The calibrated profile described above. *)

val no_coalescing : t
(** Ablation: restoration never batches contiguous dirty runs — every page
    pays the per-operation setup. *)

val uffd_tracking : t
(** The §4.3 userfaultfd ablation profile. *)

val kernel_list_tracking : t
(** The footnote-6 hypothetical: in-kernel dirty-page lists — normal write
    faults, dirty-proportional restore-time walk. *)

val pp : Format.formatter -> t -> unit
