(** The /proc view of a simulated process.

    This is Groundhog's observation channel: [read_maps] stands for
    /proc/pid/maps, [scan_soft_dirty] for walking /proc/pid/pagemap hunting
    bit 55, and [clear_refs] for writing "4" to /proc/pid/clear_refs. Costs
    are charged to the caller's account at this boundary, exactly where the
    real system pays them (§4.3, §4.4). *)

type maps_entry = {
  vma_id : int;
  start_addr : int;
  n_pages : int;
  prot : Gh_mem.Prot.t;
  kind : Gh_mem.Vma.kind;
}
(** One line of /proc/pid/maps. [vma_id] is a simulator convenience; the
    restore engine diffs by address range, as the real system must. *)

val read_maps : Gh_sim.Account.t -> Process.t -> (maps_entry list, Gh_sim.Fault.site) result
(** Charged per VMA parsed (also when a fault fires). Entries ascend by
    start address. *)

val entry_of_vma : Gh_mem.Vma.t -> maps_entry

val scan_soft_dirty :
  Gh_sim.Account.t -> Process.t -> ((Gh_mem.Vma.t * Gh_mem.Bitmap.t) list, Gh_sim.Fault.site) result
(** Walk every mapped page's pagemap entry; return a {e copy} of each VMA's
    soft-dirty bitmap. Charged per mapped page — this is the scan whose
    cost grows with address-space size (Fig. 3 right, dashed). *)

val dirty_sets : Process.t -> (Gh_mem.Vma.t * Gh_mem.Bitmap.t) list
(** The same data, uncharged — what a userfaultfd-tracking manager already
    has in hand (the Uffd ablation). Never faults: no kernel crossing. *)

val clear_refs : Gh_sim.Account.t -> Process.t -> (unit, Gh_sim.Fault.site) result
(** Reset soft-dirty bits over the whole address space; charged per mapped
    page (the kernel walks the page tables). *)

type statm = { total_pages : int; present_pages : int; dirty_pages : int }

val read_statm : Gh_sim.Account.t -> Process.t -> statm
(** Charged one maps-line read. *)
