module Account = Gh_sim.Account
module Cost = Gh_kernel.Cost
module As = Gh_mem.Address_space

type t = {
  pid : int;
  mem : As.t;
  mutable threads : Thread.t list;
  mutable next_tid : int;
  mutable fault : Gh_sim.Fault.t;
  mutable traced : bool;
}

(* Atomic: processes are created concurrently when experiment cells run
   on Domain_pool workers. The pid value never feeds costs, RNG streams
   or report output — it only has to be unique — so the allocation order
   changing under parallelism cannot change any figure. *)
let next_pid = Atomic.make 1000

let fresh_pid () = 1 + Atomic.fetch_and_add next_pid 1

let create ?pid ?(fault = Gh_sim.Fault.none) ~mem ~n_threads () =
  if n_threads < 1 then invalid_arg "Process.create: need at least one thread";
  let pid = match pid with Some p -> p | None -> fresh_pid () in
  let threads = List.init n_threads (fun i -> Thread.create ~tid:(pid + i)) in
  { pid; mem; threads; next_tid = pid + n_threads; fault; traced = false }

let set_fault t fault = t.fault <- fault

let cost t = As.cost t.mem
let n_threads t = List.length t.threads

let main_thread t =
  match t.threads with
  | th :: _ -> th
  | [] -> invalid_arg "Process.main_thread: no threads"

let find_thread t tid = List.find_opt (fun th -> th.Thread.tid = tid) t.threads

let spawn_thread t acct =
  let c = cost t in
  Account.charge acct (c.Cost.mmap_ns + c.Cost.brk_ns);
  let th = Thread.create ~tid:t.next_tid in
  t.next_tid <- t.next_tid + 1;
  t.threads <- t.threads @ [ th ];
  th

let exit_thread t th =
  if List.length t.threads <= 1 then invalid_arg "Process.exit_thread: last thread";
  t.threads <- List.filter (fun x -> x != th) t.threads

let sys_mmap t acct ~n_pages ~prot kind =
  Account.charge acct (cost t).Cost.mmap_ns;
  As.map t.mem ~n_pages ~prot kind

let sys_munmap t acct vma =
  Account.charge acct (cost t).Cost.munmap_ns;
  As.unmap t.mem vma

let sys_brk t acct addr =
  Account.charge acct (cost t).Cost.brk_ns;
  As.set_brk t.mem addr

let sys_mprotect t acct vma prot =
  Account.charge acct (cost t).Cost.mprotect_ns;
  As.mprotect t.mem vma prot

let sys_madvise_dontneed t acct vma ~pos ~len =
  Account.charge acct (cost t).Cost.madvise_ns;
  As.madvise_dontneed t.mem vma ~pos ~len

let fork t acct =
  let c = cost t in
  let present = As.present_pages t.mem in
  Account.charge acct
    (c.Cost.fork_base_ns
    + (c.Cost.fork_per_vma_ns * As.vma_count t.mem)
    + (c.Cost.fork_per_present_page_ns * present));
  let child_mem = As.clone_cow t.mem in
  let caller = main_thread t in
  let child = create ~fault:t.fault ~mem:child_mem ~n_threads:1 () in
  Registers.assign (main_thread child).Thread.regs ~from:caller.Thread.regs;
  child

let recycle t = As.recycle t.mem

let pp ppf t =
  Format.fprintf ppf "pid=%d threads=%d pages=%d present=%d" t.pid (n_threads t)
    (As.total_pages t.mem) (As.present_pages t.mem)
