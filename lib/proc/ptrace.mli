(** The ptrace facility: interrupt, register access, syscall injection,
    memory writes.

    A {!session} is an attachment of a tracer (the Groundhog manager) to a
    process. While attached, all of the tracee's threads are stopped, so
    the tracer can mutate its state consistently. Every operation charges
    the tracer's account — these are the off-critical-path costs that make
    up the Fig. 8 restoration breakdown.

    Operations that can fail under an installed {!Gh_sim.Fault} plan
    return a [result] carrying the fault site; the cost of the attempt is
    still charged. Misuse (double attach, using a dead session, bad
    ranges) remains an exception — those are caller bugs, not faults. *)

type session

exception Already_attached
exception Not_attached

val attach : Gh_sim.Account.t -> Process.t -> (session, Gh_sim.Fault.site) result
(** Seize the process and interrupt every thread. Charged one attach plus
    one interrupt per thread (also on fault-induced failure).
    @raise Already_attached if some tracer holds the process. *)

val detach : session -> Gh_sim.Account.t -> unit
(** Resume all threads. Charged per thread. The session is dead after.
    Idempotent: detaching a dead session is a no-op (and free) — the
    recovery path may kill a container whose restore already tore the
    session down. Never faults. *)

val is_attached : Process.t -> bool
val process : session -> Process.t

val getregs : session -> Gh_sim.Account.t -> Thread.t -> (Registers.t, Gh_sim.Fault.site) result
(** A copy of the thread's registers. *)

val setregs :
  session -> Gh_sim.Account.t -> Thread.t -> Registers.t -> (unit, Gh_sim.Fault.site) result

type injected =
  | Mmap_at of { start_addr : int; n_pages : int; prot : Gh_mem.Prot.t; kind : Gh_mem.Vma.kind }
  | Munmap of Gh_mem.Vma.t
  | Brk of int
  | Mremap of { vma : Gh_mem.Vma.t; n_pages : int }
  | Mprotect of Gh_mem.Vma.t * Gh_mem.Prot.t
  | Madvise_dontneed of { vma : Gh_mem.Vma.t; pos : int; len : int }

val inject_syscall :
  session -> Gh_sim.Account.t -> injected -> (Gh_mem.Vma.t option, Gh_sim.Fault.site) result
(** Execute a syscall inside the stopped tracee (save registers, point RIP
    at a syscall instruction, resume, trap, restore — modelled as one
    [syscall_inject_ns] charge plus the syscall's own cost). Returns the
    created VMA for [Mmap_at], [None] otherwise. A fault aborts before
    the layout change but after the injection charge. *)

val write_pages :
  session ->
  Gh_sim.Account.t ->
  Gh_mem.Vma.t ->
  pos:int ->
  len:int ->
  src:int array ->
  src_pos:int ->
  (unit, Gh_sim.Fault.site) result
(** Restore page contents from the manager's snapshot buffer. The whole
    contiguous run is coalesced into one copy operation — one setup charge
    plus a per-page rate — the §5.2.2 coalescing optimization. (With
    [coalesce_runs = false] every page pays its own setup.) *)

val zero_pages :
  session -> Gh_sim.Account.t -> Gh_mem.Vma.t -> pos:int -> len:int -> (unit, Gh_sim.Fault.site) result
(** Zero a run of pages at the stack-zeroing rate (cheaper than restoring
    from the snapshot buffer: no source read). *)
