module Account = Gh_sim.Account
module Fault = Gh_sim.Fault
module Cost = Gh_kernel.Cost
module As = Gh_mem.Address_space
module Vma = Gh_mem.Vma
module Bitmap = Gh_mem.Bitmap

type maps_entry = {
  vma_id : int;
  start_addr : int;
  n_pages : int;
  prot : Gh_mem.Prot.t;
  kind : Vma.kind;
}

let entry_of_vma (v : Vma.t) =
  {
    vma_id = v.Vma.id;
    start_addr = v.Vma.start_addr;
    n_pages = v.Vma.n_pages;
    prot = v.Vma.prot;
    kind = v.Vma.kind;
  }

(* As in Ptrace: a firing fault still charges the attempt's cost. *)
let read_maps acct (p : Process.t) =
  let mem = p.Process.mem in
  let c = As.cost mem in
  Account.charge acct (As.vma_count mem * c.Cost.maps_read_per_vma_ns);
  if Fault.fire p.Process.fault Fault.Procfs_maps then Error Fault.Procfs_maps
  else begin
    let acc = ref [] in
    As.iter_vmas mem (fun v -> acc := entry_of_vma v :: !acc);
    Ok (List.rev !acc)
  end

let dirty_sets (p : Process.t) =
  let acc = ref [] in
  As.iter_vmas p.Process.mem (fun (v : Vma.t) ->
      acc := (v, Bitmap.copy v.Vma.soft_dirty) :: !acc);
  List.rev !acc

let scan_soft_dirty acct (p : Process.t) =
  let c = As.cost p.Process.mem in
  Account.charge acct (As.total_pages p.Process.mem * c.Cost.pagemap_scan_per_page_ns);
  if Fault.fire p.Process.fault Fault.Procfs_scan then Error Fault.Procfs_scan
  else Ok (dirty_sets p)

let clear_refs acct (p : Process.t) =
  let c = As.cost p.Process.mem in
  Account.charge acct (As.total_pages p.Process.mem * c.Cost.clear_refs_per_page_ns);
  if Fault.fire p.Process.fault Fault.Procfs_clear then Error Fault.Procfs_clear
  else Ok (As.clear_refs p.Process.mem)

type statm = { total_pages : int; present_pages : int; dirty_pages : int }

let read_statm acct (p : Process.t) =
  let c = As.cost p.Process.mem in
  Account.charge acct c.Cost.maps_read_per_vma_ns;
  {
    total_pages = As.total_pages p.Process.mem;
    present_pages = As.present_pages p.Process.mem;
    dirty_pages = As.dirty_pages p.Process.mem;
  }
