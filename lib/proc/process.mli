(** A simulated OS process: an address space plus threads.

    Syscall wrappers ([sys_mmap], [sys_brk], ...) are the function-side
    entry points: they charge the syscall's direct cost to the supplied
    account and then perform the layout change. (The restore engine instead
    goes through {!Ptrace.inject_syscall}, which additionally pays the
    injection overhead.) *)

type t = {
  pid : int;
  mem : Gh_mem.Address_space.t;
  mutable threads : Thread.t list;  (** Ascending tid; never empty. *)
  mutable next_tid : int;
  mutable fault : Gh_sim.Fault.t;
      (** Fault plan consulted by the kernel-side operations acting on this
          process (ptrace, procfs, snapshot copies). [Fault.none] by
          default: zero cost, no random draws. *)
  mutable traced : bool;
      (** Whether a {!Ptrace} session currently holds this process. Kept
          per-process (not in a global table) so recycled pids on distinct
          simulated nodes cannot collide. *)
}

val create :
  ?pid:int -> ?fault:Gh_sim.Fault.t -> mem:Gh_mem.Address_space.t -> n_threads:int -> unit -> t
(** A process with [n_threads] threads (≥ 1). *)

val set_fault : t -> Gh_sim.Fault.t -> unit
(** Install a fault plan; children created by {!fork} inherit it. *)

val cost : t -> Gh_kernel.Cost.t
val n_threads : t -> int
val main_thread : t -> Thread.t
val find_thread : t -> int -> Thread.t option

val spawn_thread : t -> Gh_sim.Account.t -> Thread.t
(** clone(2): charged as one mmap (thread stack) plus a syscall. *)

val exit_thread : t -> Thread.t -> unit
(** Remove a thread. @raise Invalid_argument when removing the last one. *)

(** {2 Syscalls (function-side, charged)} *)

val sys_mmap :
  t -> Gh_sim.Account.t -> n_pages:int -> prot:Gh_mem.Prot.t -> Gh_mem.Vma.kind -> Gh_mem.Vma.t

val sys_munmap : t -> Gh_sim.Account.t -> Gh_mem.Vma.t -> unit
val sys_brk : t -> Gh_sim.Account.t -> int -> unit
val sys_mprotect : t -> Gh_sim.Account.t -> Gh_mem.Vma.t -> Gh_mem.Prot.t -> unit
val sys_madvise_dontneed : t -> Gh_sim.Account.t -> Gh_mem.Vma.t -> pos:int -> len:int -> unit

val recycle : t -> unit
(** Release the process's page buffers into this domain's
    {!Gh_sim.Buffer_pool} — the wait4-reap analog for discarded fork
    children. The process must never be touched again. *)

val fork : t -> Gh_sim.Account.t -> t
(** fork(2): the child gets a CoW copy of the address space and {e only the
    calling thread} — the standard POSIX semantics that make fork-based
    isolation unusable for multi-threaded runtimes (§3.2). Charged
    proportionally to VMAs and present pages (page-table duplication). *)

val pp : Format.formatter -> t -> unit
