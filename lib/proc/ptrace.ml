module Account = Gh_sim.Account
module Fault = Gh_sim.Fault
module Cost = Gh_kernel.Cost
module As = Gh_mem.Address_space
module Vma = Gh_mem.Vma
module Bitmap = Gh_mem.Bitmap

type session = { proc : Process.t; mutable alive : bool }

exception Already_attached
exception Not_attached

let cost (s : session) = As.cost s.proc.Process.mem

let check s = if not s.alive then raise Not_attached

(* Fault checks go through [Fault.fire], whose first move is a pointer
   compare against [Fault.none] — free when faults are disabled. When a
   fault fires we still charge the operation's cost: the attempt took
   the time even though it failed. *)
let fires (p : Process.t) site = Fault.fire p.Process.fault site

let attach acct (p : Process.t) =
  if p.Process.traced then raise Already_attached;
  let c = As.cost p.Process.mem in
  Account.charge acct
    (c.Cost.ptrace_attach_ns + (Process.n_threads p * c.Cost.ptrace_interrupt_per_thread_ns));
  if fires p Fault.Ptrace_attach then Error Fault.Ptrace_attach
  else begin
    p.Process.traced <- true;
    List.iter (fun th -> th.Thread.state <- Thread.Stopped) p.Process.threads;
    Ok { proc = p; alive = true }
  end

(* Idempotent: the recovery path may detach a session that a failed
   restore already tore down. Never faults — killing must always work. *)
let detach s acct =
  if s.alive then begin
    let c = cost s in
    Account.charge acct (Process.n_threads s.proc * c.Cost.ptrace_detach_per_thread_ns);
    List.iter (fun th -> th.Thread.state <- Thread.Running) s.proc.Process.threads;
    s.proc.Process.traced <- false;
    s.alive <- false
  end

let is_attached (p : Process.t) = p.Process.traced
let process s = s.proc

let getregs s acct th =
  check s;
  Account.charge acct (cost s).Cost.ptrace_getregs_per_thread_ns;
  if fires s.proc Fault.Ptrace_regs then Error Fault.Ptrace_regs
  else Ok (Registers.copy th.Thread.regs)

let setregs s acct th regs =
  check s;
  Account.charge acct (cost s).Cost.ptrace_setregs_per_thread_ns;
  if fires s.proc Fault.Ptrace_regs then Error Fault.Ptrace_regs
  else Ok (Registers.assign th.Thread.regs ~from:regs)

type injected =
  | Mmap_at of { start_addr : int; n_pages : int; prot : Gh_mem.Prot.t; kind : Vma.kind }
  | Munmap of Vma.t
  | Brk of int
  | Mremap of { vma : Vma.t; n_pages : int }
  | Mprotect of Vma.t * Gh_mem.Prot.t
  | Madvise_dontneed of { vma : Vma.t; pos : int; len : int }

let inject_syscall s acct call =
  check s;
  let c = cost s in
  let mem = s.proc.Process.mem in
  Account.charge acct c.Cost.syscall_inject_ns;
  if fires s.proc Fault.Ptrace_inject then Error Fault.Ptrace_inject
  else
    Ok
      (match call with
      | Mmap_at { start_addr; n_pages; prot; kind } ->
          Account.charge acct c.Cost.mmap_ns;
          Some (As.map_at mem ~start_addr ~n_pages ~prot kind)
      | Munmap vma ->
          Account.charge acct c.Cost.munmap_ns;
          As.unmap mem vma;
          None
      | Brk addr ->
          Account.charge acct c.Cost.brk_ns;
          As.set_brk mem addr;
          None
      | Mremap { vma; n_pages } ->
          Account.charge acct (c.Cost.mmap_ns + c.Cost.munmap_ns);
          As.resize_vma mem vma n_pages;
          None
      | Mprotect (vma, prot) ->
          Account.charge acct c.Cost.mprotect_ns;
          As.mprotect mem vma prot;
          None
      | Madvise_dontneed { vma; pos; len } ->
          Account.charge acct c.Cost.madvise_ns;
          As.madvise_dontneed mem vma ~pos ~len;
          None)

let write_pages s acct vma ~pos ~len ~src ~src_pos =
  check s;
  if len < 0 || pos < 0 || pos + len > vma.Vma.n_pages || src_pos < 0
     || src_pos + len > Array.length src
  then invalid_arg "Ptrace.write_pages: range out of bounds";
  let c = cost s in
  let setups = if c.Cost.coalesce_runs then 1 else len in
  Account.charge acct ((setups * c.Cost.restore_copy_run_setup_ns) + (len * c.Cost.restore_copy_per_page_ns));
  if fires s.proc Fault.Ptrace_write then Error Fault.Ptrace_write
  else begin
    As.poke_range vma ~pos ~len ~src ~src_pos;
    Ok ()
  end

let zero_pages s acct vma ~pos ~len =
  check s;
  if len < 0 || pos < 0 || pos + len > vma.Vma.n_pages then
    invalid_arg "Ptrace.zero_pages: range out of bounds";
  let c = cost s in
  let setups = if c.Cost.coalesce_runs then 1 else len in
  Account.charge acct
    (((setups * c.Cost.restore_copy_run_setup_ns) / 2) + (len * c.Cost.stack_zero_per_page_ns));
  if fires s.proc Fault.Ptrace_write then Error Fault.Ptrace_write
  else begin
    As.zero_range vma ~pos ~len;
    Ok ()
  end
