module As = Gh_mem.Address_space
module Vma = Gh_mem.Vma
module Bitmap = Gh_mem.Bitmap
module Process = Gh_proc.Process
module Thread = Gh_proc.Thread
module Registers = Gh_proc.Registers

type mismatch = { what : string; where : string }

let fail what where = Error { what; where }

let check_region (snap : Snapshot.region) (vma : Vma.t) =
  let where = Printf.sprintf "region %x" snap.Snapshot.start_addr in
  if vma.Vma.n_pages <> snap.Snapshot.n_pages then fail "region size" where
  else if not (Gh_mem.Prot.equal vma.Vma.prot snap.Snapshot.prot) then fail "protection" where
  else begin
    (* Presence first, word-wise; then the page contents. *)
    match Bitmap.first_diff vma.Vma.present snap.Snapshot.present with
    | Some i ->
        fail "presence" (Printf.sprintf "region %x page %d" snap.Snapshot.start_addr i)
    | None ->
        let result = ref (Ok ()) in
        (try
           for i = 0 to snap.Snapshot.n_pages - 1 do
             if vma.Vma.data.(i) <> snap.Snapshot.data.(i) then begin
               result :=
                 fail "page content"
                   (Printf.sprintf "region %x page %d" snap.Snapshot.start_addr i);
               raise Exit
             end
           done
         with Exit -> ());
        !result
  end

let ( let* ) r f = match r with Ok () -> f () | Error _ as e -> e

let rec check_regions snap_regions vmas =
  match (snap_regions, vmas) with
  | [], [] -> Ok ()
  | (snap : Snapshot.region) :: _, [] ->
      fail "region missing" (Printf.sprintf "region %x" snap.Snapshot.start_addr)
  | [], (vma : Vma.t) :: _ ->
      fail "extra region" (Printf.sprintf "region %x" vma.Vma.start_addr)
  | snap :: srest, vma :: vrest ->
      if snap.Snapshot.start_addr <> vma.Vma.start_addr then
        fail "region address" (Printf.sprintf "region %x vs %x" snap.Snapshot.start_addr vma.Vma.start_addr)
      else
        let* () = check_region snap vma in
        check_regions srest vrest

let check_threads (snapshot : Snapshot.t) (p : Process.t) =
  if List.length snapshot.Snapshot.regs <> Process.n_threads p then
    fail "thread count" (Printf.sprintf "%d threads" (Process.n_threads p))
  else begin
    let rec go = function
      | [] -> Ok ()
      | (tid, regs) :: rest -> begin
          match Process.find_thread p tid with
          | None -> fail "thread missing" (Printf.sprintf "tid %d" tid)
          | Some th ->
              if not (Registers.equal th.Thread.regs regs) then
                fail "registers" (Printf.sprintf "tid %d" tid)
              else go rest
        end
    in
    go snapshot.Snapshot.regs
  end

let state_matches (snapshot : Snapshot.t) (p : Process.t) =
  let* () =
    if As.brk p.Process.mem = snapshot.Snapshot.brk then Ok ()
    else fail "brk" (Printf.sprintf "%x vs %x" (As.brk p.Process.mem) snapshot.Snapshot.brk)
  in
  let* () = check_regions snapshot.Snapshot.regions (As.vmas p.Process.mem) in
  check_threads snapshot p

let pp_mismatch ppf m = Format.fprintf ppf "%s at %s" m.what m.where

(* Hash audit: re-hash the *restored process's* memory per block and
   compare against the snapshot's reference hashes. Where [state_matches]
   reads every snapshot word (a full second copy's worth of compares),
   the audit reads only the restored memory and 1 stored hash per block —
   and [stride]/[offset] let the manager rotate a sampled sweep across
   restores. Catches everything the block granularity can express:
   corrupted stored pages served by restore, torn captures, and restore
   runs that were silently skipped. *)
let audit_hashes ?(stride = 1) ?(offset = 0) (snapshot : Snapshot.t) (p : Process.t) =
  if stride <= 0 then invalid_arg "Verify.audit_hashes: stride must be positive";
  let offset = ((offset mod stride) + stride) mod stride in
  let checked = ref 0 in
  let bad = ref None in
  let corrupt (snap : Snapshot.region) block what =
    bad := Some { Snapshot.region_addr = snap.Snapshot.start_addr; block; what };
    raise Exit
  in
  let gb = ref 0 in
  (try
     List.iter
       (fun (snap : Snapshot.region) ->
         let nb = Snapshot.region_blocks snap in
         (match As.find_vma p.Process.mem snap.Snapshot.start_addr with
         | None -> corrupt snap 0 "region missing from restored address space"
         | Some vma ->
             if vma.Vma.n_pages <> snap.Snapshot.n_pages then
               corrupt snap 0 "restored region size mismatch";
             for b = 0 to nb - 1 do
               if (!gb + b) mod stride = offset then begin
                 let pos = b * Snapshot.block_pages in
                 let len = Snapshot.block_len snap b in
                 if Snapshot.hash_words vma.Vma.data ~pos ~len <> Snapshot.block_hash snap b
                 then corrupt snap b "restored block hash mismatch";
                 incr checked
               end
             done);
         gb := !gb + nb)
       snapshot.Snapshot.regions
   with Exit -> ());
  match !bad with Some c -> Error c | None -> Ok !checked
