module Account = Gh_sim.Account
module Cost = Gh_kernel.Cost
module As = Gh_mem.Address_space
module Vma = Gh_mem.Vma
module Bitmap = Gh_mem.Bitmap
module Process = Gh_proc.Process
module Ptrace = Gh_proc.Ptrace
module Procfs = Gh_proc.Procfs

type t = {
  snap : Snapshot.t;
  proc : Process.t;
  by_id : (int, Snapshot.region * Bitmap.t) Hashtbl.t;  (* vma id -> (region, saved) *)
  mutable saved : int;
}

(* Metadata-only region record: geometry and presence eagerly, contents
   materialized by the salvage hook. *)
let shell_region (v : Vma.t) =
  let zeros = Bitmap.create v.Vma.n_pages in
  (* The shell's data starts all-zero; the salvage hook keeps [zeros] in
     step as it materialises real contents. *)
  Bitmap.fill zeros true;
  let n_blocks =
    (v.Vma.n_pages + Snapshot.block_pages - 1) / Snapshot.block_pages
  in
  (* Hashes match the all-zero shell contents; the salvage hook marks
     blocks stale as it materialises real contents, and they re-seal
     against the salvaged data at the next audit. *)
  let hashes =
    Array.init n_blocks (fun b ->
        Snapshot.zero_block_hash
          (min Snapshot.block_pages (v.Vma.n_pages - (b * Snapshot.block_pages))))
  in
  {
    Snapshot.start_addr = v.Vma.start_addr;
    n_pages = v.Vma.n_pages;
    prot = v.Vma.prot;
    kind = v.Vma.kind;
    data = Array.make v.Vma.n_pages 0;
    present = Bitmap.copy v.Vma.present;
    zeros;
    hashes;
    hstale = Bitmap.create n_blocks;
  }

exception Stop of Gh_sim.Fault.site

let ok_or_stop = function Ok v -> v | Error site -> raise (Stop site)

let capture acct (p : Process.t) =
  let start = Account.mark acct in
  let cost = As.cost p.Process.mem in
  match Ptrace.attach acct p with
  | Error _ as e -> e
  | Ok session -> (
      try
        let regs =
          List.map
            (fun th ->
              (th.Gh_proc.Thread.tid, ok_or_stop (Ptrace.getregs session acct th)))
            p.Process.threads
        in
        let _maps = ok_or_stop (Procfs.read_maps acct p) in
        let vmas = As.vmas p.Process.mem in
        let by_id = Hashtbl.create 64 in
        let regions =
          List.map
            (fun (v : Vma.t) ->
              let region = shell_region v in
              Hashtbl.replace by_id v.Vma.id (region, Bitmap.create v.Vma.n_pages);
              region)
            vmas
        in
        (* Arm both tracking mechanisms: soft-dirty for the restore engine's
           dirty sets, CoW write-protection for lazy content salvage. The arming
           walk costs about a clear_refs pass. *)
        ok_or_stop (Procfs.clear_refs acct p);
        As.arm_cow_all p.Process.mem;
        Account.charge acct (As.present_pages p.Process.mem * cost.Cost.clear_refs_per_page_ns);
        Ptrace.detach session acct;
        let present_pages =
          List.fold_left (fun n (v : Vma.t) -> n + Bitmap.count v.Vma.present) 0 vmas
        in
        let snap =
          Snapshot.make
            ~brk:(As.brk p.Process.mem)
            ~regs ~regions ~present_pages
            ~capture_ns:(Account.since acct start)
        in
        let t = { snap; proc = p; by_id; saved = 0 } in
        As.set_cow_hook p.Process.mem
          (Some
             (fun vma i ->
               match Hashtbl.find_opt t.by_id vma.Vma.id with
               | Some (region, saved) when i < region.Snapshot.n_pages ->
                   if not (Bitmap.get saved i) then begin
                     region.Snapshot.data.(i) <- vma.Vma.data.(i);
                     Bitmap.set region.Snapshot.zeros i (vma.Vma.data.(i) = 0);
                     (* Salvage is a legitimate content change: mark the
                        block stale so the hash re-seals instead of
                        flagging the salvaged bytes as corruption. *)
                     Bitmap.set region.Snapshot.hstale (i / Snapshot.block_pages) true;
                     Bitmap.set saved i true;
                     t.saved <- t.saved + 1
                   end
               | _ -> ()));
        Ok t
      with Stop site ->
        Ptrace.detach session acct;
        Error site)

let capture_exn acct p =
  match capture acct p with
  | Ok t -> t
  | Error site -> failwith ("Incremental.capture: fault at " ^ Gh_sim.Fault.site_name site)

let snapshot t = t.snap
let restore acct t p = Restore.run acct t.snap p
let saved_pages t = t.saved
let capture_ns t = t.snap.Snapshot.capture_ns
let detach_hook t = As.set_cow_hook t.proc.Process.mem None
