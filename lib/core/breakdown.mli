(** Per-step cost breakdown of one restoration (§5.4, Fig. 8). *)

type t = {
  interrupt_ns : int;  (** ptrace attach + stopping every thread. *)
  read_maps_ns : int;  (** Reading /proc/pid/maps. *)
  scan_ns : int;  (** Scanning pagemap for soft-dirty bits. *)
  diff_ns : int;  (** Diffing the memory layout against the snapshot. *)
  syscalls_ns : int;  (** Injected syscalls reversing layout changes. *)
  copy_ns : int;  (** Restoring page contents (and zeroing the stack). *)
  regs_ns : int;  (** Restoring registers of all threads. *)
  reset_ns : int;  (** Resetting soft-dirty bits. *)
  detach_ns : int;
  total_ns : int;
  pages_scanned : int;  (** Mapped pages whose pagemap entry was read. *)
  pages_restored : int;  (** Pages whose contents were written back. *)
  pages_madvised : int;  (** Newly paged pages returned to lazy state. *)
  syscalls_injected : int;
  threads : int;
}

val zero : t

val add : t -> t -> t
(** Field-wise sum (for averaging across invocations). *)

val scale : t -> float -> t

val steps : t -> (string * int) list
(** Ordered (label, ns) pairs of the nine steps — Fig. 8's stack. *)

val steps_ms : t -> (string * float) list
(** The nonzero steps as (label, milliseconds) — per-step samples for
    windowed quantile series. *)

val intervals : t -> start:int -> (string * int * int) list
(** The nonzero steps as consecutive (label, start, stop) windows laid
    out from [start] in step order. The steps are charged back-to-back
    during a restore, so the windows tile [start, start + total_ns]
    exactly — ready to become child spans of a restore span. *)

val pp : Format.formatter -> t -> unit
