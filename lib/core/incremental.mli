(** Incremental (copy-on-write) snapshots — §5.5's proposed optimization.

    An eager {!Snapshot.capture} copies every present page into the
    manager, so snapshot time and manager memory are proportional to the
    function's whole paged-in footprint (tens to hundreds of MB for
    Node.js). The paper notes the alternative: arm copy-on-write at
    snapshot time and salvage a page's original contents the {e first}
    time it is ever modified — a one-time on-critical-path copy per unique
    modified page over the container's lifetime, after which manager
    memory holds only what restores actually need.

    [capture] records layout, presence bitmaps, brk and registers eagerly
    (cheap) and installs the address space's salvage hook; the returned
    {!Snapshot.t} materializes page contents lazily, and — because the
    hook always fires before content is lost — is always complete enough
    for {!Restore.run}, which works on it unchanged. Restores are
    bit-for-bit identical to eager snapshots (property-tested). *)

type t

val capture : Gh_sim.Account.t -> Gh_proc.Process.t -> (t, Gh_sim.Fault.site) result
(** Interrupt, record metadata, arm CoW + soft-dirty tracking, resume.
    Charged without the per-page copies of an eager capture. On a fault the
    process is resumed and nothing is armed.
    @raise Gh_proc.Ptrace.Already_attached if a tracer holds the process. *)

val capture_exn : Gh_sim.Account.t -> Gh_proc.Process.t -> t
(** {!capture} for fault-free contexts. @raise Failure on a fault. *)

val snapshot : t -> Snapshot.t
(** The progressively materialized snapshot — pass to {!Restore.run}.
    (Note: {!Verify.state_matches} compares {e every} present page's
    contents, so it only agrees with an incremental snapshot once all
    pages have been salvaged; restores themselves never read unsalvaged
    pages, because an unsalvaged page is by construction unmodified.) *)

val restore :
  Gh_sim.Account.t -> t -> Gh_proc.Process.t -> (Breakdown.t, Gh_sim.Fault.site) result
(** {!Restore.run} on the materialized snapshot. Unlike the eager path,
    restored pages are {e not} re-armed for CoW: their originals are
    already saved, so later invocations pay no further salvage faults
    ("one-time per unique modified page"). *)

val saved_pages : t -> int
(** Pages salvaged so far — the manager's data memory, in pages. *)

val capture_ns : t -> Gh_sim.Time_ns.t

val detach_hook : t -> unit
(** Stop salvaging (e.g. when tearing the container down). *)
