(** Bit-for-bit comparison of a process against a snapshot.

    This is the security property: a restored process must be
    indistinguishable from the snapshotted one, so no data written by the
    previous request can survive. Used by the test suite and by the
    manager's optional paranoid mode. *)

type mismatch = {
  what : string;  (** e.g. ["page content"], ["brk"], ["region missing"]. *)
  where : string;  (** Address / tid context for diagnostics. *)
}

val state_matches : Snapshot.t -> Gh_proc.Process.t -> (unit, mismatch) result
(** [Ok ()] iff layout (regions, sizes, protections), brk, every present
    bit, every page's content, the thread set, and every register file all
    equal the snapshot. Stops at the first mismatch. *)

val pp_mismatch : Format.formatter -> mismatch -> unit

val audit_hashes :
  ?stride:int ->
  ?offset:int ->
  Snapshot.t ->
  Gh_proc.Process.t ->
  (int, Snapshot.corruption) result
(** Re-hash the restored process's memory per {!Snapshot.block_pages}-page
    block against the snapshot's reference hashes; [Ok n] is the number of
    blocks checked. Checks only blocks whose flat index ≡ [offset]
    (mod [stride]) — [stride = 1] (default) is a full audit; the manager's
    sampled policy rotates [offset] across restores so every block is
    eventually covered. Unlike {!state_matches} this reads no stored page
    words (one hash per block), and it catches silently-skipped restore
    runs, served bitflips and torn captures alike. Reads memory only:
    charges nothing, draws no randomness. *)
