module Account = Gh_sim.Account
module Fault = Gh_sim.Fault
module Cost = Gh_kernel.Cost
module As = Gh_mem.Address_space
module Vma = Gh_mem.Vma
module Bitmap = Gh_mem.Bitmap
module Process = Gh_proc.Process
module Ptrace = Gh_proc.Ptrace
module Procfs = Gh_proc.Procfs

type region = {
  start_addr : int;
  n_pages : int;
  prot : Gh_mem.Prot.t;
  kind : Vma.kind;
  data : int array;
  present : Bitmap.t;
  zeros : Bitmap.t;
  hashes : int array;
  hstale : Bitmap.t;
}

(* -- Content hashing ----------------------------------------------------
   One hash per 63-page block (the bitmap word granularity, so the hash
   pass shares the zero-elision scan's word loop). The per-word update is
   injective in the word for a fixed running state, and injective in the
   state for a fixed word — so any single-word difference within a block
   is *guaranteed* to change the block hash (multi-word collisions are
   ~2^-63). That makes bitflip detection a theorem, not a probability. *)

let block_pages = Bitmap.bits_per_word

let hash_mix h x =
  let h = h lxor x in
  let h = h * 0x2545F4914F6CDD1D in
  h lxor (h lsr 29)

let hash_words data ~pos ~len =
  let h = ref (hash_mix 0x27D4EB2F165667C5 len) in
  for i = pos to pos + len - 1 do
    h := hash_mix !h (Array.unsafe_get data i)
  done;
  !h

(* All-zero blocks get their hash by construction — no data read. Full
   blocks dominate, so the 63-page constant is precomputed once. *)
let zero_words = Array.make block_pages 0
let zero_full_hash = hash_words zero_words ~pos:0 ~len:block_pages

let zero_block_hash len =
  if len = block_pages then zero_full_hash else hash_words zero_words ~pos:0 ~len

let region_blocks (r : region) = (r.n_pages + block_pages - 1) / block_pages

let block_len (r : region) b = min block_pages (r.n_pages - (b * block_pages))

(* The reference hash for block [b]. For eager captures this is the hash
   taken from the *source* during the copy; for incremental shells the
   salvage hook marks salvaged blocks stale, and the first audit re-seals
   them from the (legitimately updated) stored content. *)
let block_hash (r : region) b =
  if Bitmap.get r.hstale b then begin
    r.hashes.(b) <- hash_words r.data ~pos:(b * block_pages) ~len:(block_len r b);
    Bitmap.set r.hstale b false
  end;
  r.hashes.(b)

(* Does the stored content still match the reference hash? Stale blocks
   seal (their content is the reference) and thus always pass. *)
let verify_block (r : region) b =
  let stored = block_hash r b in
  stored = hash_words r.data ~pos:(b * block_pages) ~len:(block_len r b)

type t = {
  brk : int;
  regs : (int * Gh_proc.Registers.t) list;
  regions : region list;
  by_start : (int, region) Hashtbl.t;
  present_pages : int;
  capture_ns : Gh_sim.Time_ns.t;
}

(* Duplicate start addresses are a hard error: the old first-wins guard
   silently shadowed the second region, so its pages could never be found
   (nor restored) through the index — exactly the kind of quiet data loss
   the integrity layer exists to rule out. *)
let make ~brk ~regs ~regions ~present_pages ~capture_ns =
  let by_start = Hashtbl.create (2 * List.length regions) in
  List.iter
    (fun r ->
      if Hashtbl.mem by_start r.start_addr then
        invalid_arg
          (Printf.sprintf "Snapshot.make: duplicate region start address 0x%x" r.start_addr);
      Hashtbl.add by_start r.start_addr r)
    regions;
  { brk; regs; regions; by_start; present_pages; capture_ns }

(* Early exit out of the iteration callbacks below; caught at the
   [capture] boundary, never escapes this module. *)
exception Stop of Fault.site

let ok_or_stop = function Ok v -> v | Error site -> raise (Stop site)

let copy_region acct fault cost (v : Vma.t) =
  let present = Bitmap.copy v.Vma.present in
  let n_present = Bitmap.count present in
  Account.charge acct (n_present * cost.Cost.snapshot_copy_per_page_ns);
  if Fault.fire fault Fault.Snapshot_copy then raise (Stop Fault.Snapshot_copy);
  (* Zero-elided copy: scan the source per 63-page bitmap block, record
     which pages are zero, and skip the blit for all-zero blocks — the
     destination is already zeroed. Stacks and barely-touched heaps are
     mostly zero, so most blocks move no data. The [zeros] map is what
     lets the restore engine split Zero/Copy runs without re-scanning
     page contents on every restore. *)
  let n = v.Vma.n_pages in
  let src = v.Vma.data in
  let data = Array.make n 0 in
  let zeros = Bitmap.create n in
  let bpw = Bitmap.bits_per_word in
  let n_blocks = (n + bpw - 1) / bpw in
  let hashes = Array.make n_blocks 0 in
  let i = ref 0 in
  while !i < n do
    let lim = min bpw (n - !i) in
    let w = ref 0 in
    for b = 0 to lim - 1 do
      if Array.unsafe_get src (!i + b) = 0 then w := !w lor (1 lsl b)
    done;
    Bitmap.set_word zeros (!i / bpw) !w;
    (* The block hash is taken from the *source* while it is hot in cache;
       all-zero blocks get theirs by construction, so the hash pass is
       elided exactly where the copy is. Hashing before the store also
       means a corrupted buffer (below) never forges its own hash. *)
    if !w <> Bitmap.mask ~pos:0 ~len:lim then begin
      Array.blit src !i data !i lim;
      hashes.(!i / bpw) <- hash_words src ~pos:!i ~len:lim
    end
    else hashes.(!i / bpw) <- zero_block_hash lim;
    i := !i + lim
  done;
  (* Silent corruption sites. Both fire *after* the hash pass — the hashes
     reflect the true source, so the damage below is detectable. One
     occurrence per region copied. *)
  if Fault.fire fault Fault.Snapshot_bitflip && n > 0 then begin
    (* A stray bit flips in the manager's buffer: one stored word changes,
       the zeros map goes quietly stale with it (real corruption updates
       no metadata). *)
    let page = Fault.draw fault Fault.Snapshot_bitflip ~bound:n in
    let bit = Fault.draw fault Fault.Snapshot_bitflip ~bound:62 in
    data.(page) <- data.(page) lxor (1 lsl bit)
  end;
  if Fault.fire fault Fault.Snapshot_torn && n > 1 then begin
    (* The capture is interrupted mid-region but reported complete: pages
       past the tear keep the buffer's pre-copy contents (zeros). The
       zeros map describes what is actually stored, so a restore would
       faithfully write the torn — wrong — content back. *)
    let cut = 1 + Fault.draw fault Fault.Snapshot_torn ~bound:(n - 1) in
    Array.fill data cut (n - cut) 0;
    Bitmap.set_range zeros ~pos:cut ~len:(n - cut) true
  end;
  {
    start_addr = v.Vma.start_addr;
    n_pages = n;
    prot = v.Vma.prot;
    kind = v.Vma.kind;
    data;
    present;
    zeros;
    hashes;
    hstale = Bitmap.create n_blocks;
  }

let capture acct (p : Process.t) =
  let start = Account.mark acct in
  let cost = As.cost p.Process.mem in
  match Ptrace.attach acct p with
  | Error _ as e -> e
  | Ok session -> (
      try
        let regs =
          List.map
            (fun th ->
              (th.Gh_proc.Thread.tid, ok_or_stop (Ptrace.getregs session acct th)))
            p.Process.threads
        in
        (* Walking /proc/pid/maps tells us what to copy. *)
        let _maps = ok_or_stop (Procfs.read_maps acct p) in
        let regions =
          List.map (copy_region acct p.Process.fault cost) (As.vmas p.Process.mem)
        in
        let brk = As.brk p.Process.mem in
        (* Arm tracking: from here on, modified pages are observable. *)
        ok_or_stop (Procfs.clear_refs acct p);
        Ptrace.detach session acct;
        let present_pages =
          List.fold_left (fun n r -> n + Bitmap.count r.present) 0 regions
        in
        Ok (make ~brk ~regs ~regions ~present_pages ~capture_ns:(Account.since acct start))
      with Stop site ->
        (* Fail closed: resume the process and report; the partial copy is
           discarded, the caller must not treat the process as clean. *)
        Ptrace.detach session acct;
        Error site)

let capture_exn acct p =
  match capture acct p with
  | Ok t -> t
  | Error site -> failwith ("Snapshot.capture: fault at " ^ Fault.site_name site)

let find_region t ~start_addr = Hashtbl.find_opt t.by_start start_addr

let memory_words t = List.fold_left (fun n r -> n + Array.length r.data) 0 t.regions

(* -- Self-scrubbing -----------------------------------------------------
   Re-hash stored blocks and compare against the reference hashes taken at
   capture. Detects buffer corruption (bitflips, torn captures) before a
   restore ever serves it. Blocks are addressed by a flat cursor across
   regions so callers can walk the snapshot in bounded slices. *)

type corruption = { region_addr : int; block : int; what : string }

let pp_corruption ppf c =
  Format.fprintf ppf "%s at region %x block %d" c.what c.region_addr c.block

let total_blocks t = List.fold_left (fun n r -> n + region_blocks r) 0 t.regions

type scrub_result = {
  checked_blocks : int;
  checked_pages : int;
  next_cursor : int;  (** 0 once the pass reached the end of the snapshot. *)
  corrupt : corruption option;
}

let scrub t ~cursor ~blocks =
  let cursor = max 0 cursor in
  let checked = ref 0 and pages = ref 0 in
  let corrupt = ref None in
  let base = ref 0 in
  let hit_budget = ref false in
  (try
     List.iter
       (fun r ->
         let nb = region_blocks r in
         for b = max 0 (cursor - !base) to nb - 1 do
           if !checked >= blocks then begin
             hit_budget := true;
             raise Exit
           end;
           if not (verify_block r b) then begin
             corrupt :=
               Some
                 { region_addr = r.start_addr; block = b; what = "stored block hash mismatch" };
             raise Exit
           end;
           incr checked;
           pages := !pages + block_len r b
         done;
         base := !base + nb)
       t.regions
   with Exit -> ());
  let next_cursor =
    if !corrupt = None && !hit_budget then cursor + !checked else 0
  in
  {
    checked_blocks = !checked;
    checked_pages = !pages;
    next_cursor;
    corrupt = !corrupt;
  }

let self_check t =
  let r = scrub t ~cursor:0 ~blocks:max_int in
  r.corrupt

let pp ppf t =
  Format.fprintf ppf "snapshot: %d regions, %d present pages, %d threads, captured in %a"
    (List.length t.regions) t.present_pages (List.length t.regs) Gh_sim.Time_ns.pp
    t.capture_ns
