module Account = Gh_sim.Account
module Fault = Gh_sim.Fault
module Cost = Gh_kernel.Cost
module As = Gh_mem.Address_space
module Vma = Gh_mem.Vma
module Bitmap = Gh_mem.Bitmap
module Process = Gh_proc.Process
module Ptrace = Gh_proc.Ptrace
module Procfs = Gh_proc.Procfs

type region = {
  start_addr : int;
  n_pages : int;
  prot : Gh_mem.Prot.t;
  kind : Vma.kind;
  data : int array;
  present : Bitmap.t;
  zeros : Bitmap.t;
}

type t = {
  brk : int;
  regs : (int * Gh_proc.Registers.t) list;
  regions : region list;
  by_start : (int, region) Hashtbl.t;
  present_pages : int;
  capture_ns : Gh_sim.Time_ns.t;
}

(* Regions can share a start address only when one is zero-length; keep
   the first (list-order) one, matching what the linear search returned. *)
let make ~brk ~regs ~regions ~present_pages ~capture_ns =
  let by_start = Hashtbl.create (2 * List.length regions) in
  List.iter
    (fun r ->
      if not (Hashtbl.mem by_start r.start_addr) then Hashtbl.add by_start r.start_addr r)
    regions;
  { brk; regs; regions; by_start; present_pages; capture_ns }

(* Early exit out of the iteration callbacks below; caught at the
   [capture] boundary, never escapes this module. *)
exception Stop of Fault.site

let ok_or_stop = function Ok v -> v | Error site -> raise (Stop site)

let copy_region acct fault cost (v : Vma.t) =
  let present = Bitmap.copy v.Vma.present in
  let n_present = Bitmap.count present in
  Account.charge acct (n_present * cost.Cost.snapshot_copy_per_page_ns);
  if Fault.fire fault Fault.Snapshot_copy then raise (Stop Fault.Snapshot_copy);
  (* Zero-elided copy: scan the source per 63-page bitmap block, record
     which pages are zero, and skip the blit for all-zero blocks — the
     destination is already zeroed. Stacks and barely-touched heaps are
     mostly zero, so most blocks move no data. The [zeros] map is what
     lets the restore engine split Zero/Copy runs without re-scanning
     page contents on every restore. *)
  let n = v.Vma.n_pages in
  let src = v.Vma.data in
  let data = Array.make n 0 in
  let zeros = Bitmap.create n in
  let bpw = Bitmap.bits_per_word in
  let i = ref 0 in
  while !i < n do
    let lim = min bpw (n - !i) in
    let w = ref 0 in
    for b = 0 to lim - 1 do
      if Array.unsafe_get src (!i + b) = 0 then w := !w lor (1 lsl b)
    done;
    Bitmap.set_word zeros (!i / bpw) !w;
    if !w <> Bitmap.mask ~pos:0 ~len:lim then Array.blit src !i data !i lim;
    i := !i + lim
  done;
  {
    start_addr = v.Vma.start_addr;
    n_pages = n;
    prot = v.Vma.prot;
    kind = v.Vma.kind;
    data;
    present;
    zeros;
  }

let capture acct (p : Process.t) =
  let start = Account.mark acct in
  let cost = As.cost p.Process.mem in
  match Ptrace.attach acct p with
  | Error _ as e -> e
  | Ok session -> (
      try
        let regs =
          List.map
            (fun th ->
              (th.Gh_proc.Thread.tid, ok_or_stop (Ptrace.getregs session acct th)))
            p.Process.threads
        in
        (* Walking /proc/pid/maps tells us what to copy. *)
        let _maps = ok_or_stop (Procfs.read_maps acct p) in
        let regions =
          List.map (copy_region acct p.Process.fault cost) (As.vmas p.Process.mem)
        in
        let brk = As.brk p.Process.mem in
        (* Arm tracking: from here on, modified pages are observable. *)
        ok_or_stop (Procfs.clear_refs acct p);
        Ptrace.detach session acct;
        let present_pages =
          List.fold_left (fun n r -> n + Bitmap.count r.present) 0 regions
        in
        Ok (make ~brk ~regs ~regions ~present_pages ~capture_ns:(Account.since acct start))
      with Stop site ->
        (* Fail closed: resume the process and report; the partial copy is
           discarded, the caller must not treat the process as clean. *)
        Ptrace.detach session acct;
        Error site)

let capture_exn acct p =
  match capture acct p with
  | Ok t -> t
  | Error site -> failwith ("Snapshot.capture: fault at " ^ Fault.site_name site)

let find_region t ~start_addr = Hashtbl.find_opt t.by_start start_addr

let memory_words t = List.fold_left (fun n r -> n + Array.length r.data) 0 t.regions

let pp ppf t =
  Format.fprintf ppf "snapshot: %d regions, %d present pages, %d threads, captured in %a"
    (List.length t.regions) t.present_pages (List.length t.regs) Gh_sim.Time_ns.pp
    t.capture_ns
