module Account = Gh_sim.Account
module Fault = Gh_sim.Fault
module Cost = Gh_kernel.Cost
module As = Gh_mem.Address_space
module Vma = Gh_mem.Vma
module Bitmap = Gh_mem.Bitmap
module Process = Gh_proc.Process
module Ptrace = Gh_proc.Ptrace
module Procfs = Gh_proc.Procfs

type region = {
  start_addr : int;
  n_pages : int;
  prot : Gh_mem.Prot.t;
  kind : Vma.kind;
  data : int array;
  present : Bitmap.t;
}

type t = {
  brk : int;
  regs : (int * Gh_proc.Registers.t) list;
  regions : region list;
  present_pages : int;
  capture_ns : Gh_sim.Time_ns.t;
}

(* Early exit out of the iteration callbacks below; caught at the
   [capture] boundary, never escapes this module. *)
exception Stop of Fault.site

let ok_or_stop = function Ok v -> v | Error site -> raise (Stop site)

let copy_region acct fault cost (v : Vma.t) =
  let present = Bitmap.copy v.Vma.present in
  let n_present = Bitmap.count present in
  Account.charge acct (n_present * cost.Cost.snapshot_copy_per_page_ns);
  if Fault.fire fault Fault.Snapshot_copy then raise (Stop Fault.Snapshot_copy);
  {
    start_addr = v.Vma.start_addr;
    n_pages = v.Vma.n_pages;
    prot = v.Vma.prot;
    kind = v.Vma.kind;
    data = Array.copy v.Vma.data;
    present;
  }

let capture acct (p : Process.t) =
  let start = Account.mark acct in
  let cost = As.cost p.Process.mem in
  match Ptrace.attach acct p with
  | Error _ as e -> e
  | Ok session -> (
      try
        let regs =
          List.map
            (fun th ->
              (th.Gh_proc.Thread.tid, ok_or_stop (Ptrace.getregs session acct th)))
            p.Process.threads
        in
        (* Walking /proc/pid/maps tells us what to copy. *)
        let _maps = ok_or_stop (Procfs.read_maps acct p) in
        let regions =
          List.map (copy_region acct p.Process.fault cost) (As.vmas p.Process.mem)
        in
        let brk = As.brk p.Process.mem in
        (* Arm tracking: from here on, modified pages are observable. *)
        ok_or_stop (Procfs.clear_refs acct p);
        Ptrace.detach session acct;
        let present_pages =
          List.fold_left (fun n r -> n + Bitmap.count r.present) 0 regions
        in
        Ok { brk; regs; regions; present_pages; capture_ns = Account.since acct start }
      with Stop site ->
        (* Fail closed: resume the process and report; the partial copy is
           discarded, the caller must not treat the process as clean. *)
        Ptrace.detach session acct;
        Error site)

let capture_exn acct p =
  match capture acct p with
  | Ok t -> t
  | Error site -> failwith ("Snapshot.capture: fault at " ^ Fault.site_name site)

let find_region t ~start_addr = List.find_opt (fun r -> r.start_addr = start_addr) t.regions

let memory_words t = List.fold_left (fun n r -> n + Array.length r.data) 0 t.regions

let pp ppf t =
  Format.fprintf ppf "snapshot: %d regions, %d present pages, %d threads, captured in %a"
    (List.length t.regions) t.present_pages (List.length t.regs) Gh_sim.Time_ns.pp
    t.capture_ns
