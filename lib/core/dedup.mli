(** Content-addressed cross-container snapshot dedup (ROADMAP item 3).

    Containers of the same function reach near-identical warm states, so
    their eager snapshots store largely the same
    {!Snapshot.block_pages}-page blocks. The index keeps one canonical
    copy per distinct block content (hash-keyed, content-guarded against
    collisions); a sharer joining an existing entry stores nothing for
    that block. All-zero blocks are excluded — the zero map already
    elides them, so they cost nothing with or without dedup.

    The price of sharing is blast radius: one physical copy serving many
    containers means a corrupted shared block taints {e every} sharer.
    {!blast} models exactly that — the detection pipeline calls it with
    the corruption's location and every other holder's [on_corrupt] fires
    so the fail-closed recovery can poison them all.

    Reads and hashes stored memory only: registering, scrubbing and
    blasting charge nothing and draw no randomness. *)

type t
(** One dedup index, scoped per function (snapshots of different
    functions never share). *)

type sharer
(** One registered snapshot's membership handle. *)

val create : unit -> t

val register :
  t -> owner:string -> on_corrupt:(Snapshot.corruption -> unit) -> Snapshot.t -> sharer
(** Fold an eager snapshot into the index. [on_corrupt] fires when a
    shared block this snapshot holds is corrupted {e via another
    sharer's} detection ({!blast}); the corruption carries this holder's
    own (region, block) location. *)

val unregister : t -> sharer -> unit
(** Remove a sharer (container killed): its blocks drop out of the
    index once the last holder leaves. Idempotent. *)

val charged_pages : sharer -> int
(** Present pages this sharer actually stores: its snapshot's
    [present_pages] minus the present pages of every block that joined a
    pre-existing canonical copy. Fixed at registration time. *)

val owner : sharer -> string

val saved_pages : t -> int
(** Present pages the index currently avoids storing:
    Σ over entries of (holders − 1) × block's present pages. *)

val unique_blocks : t -> int
val shared_blocks : t -> int
(** Entries with ≥ 2 holders. *)

val registrations : t -> int
(** Snapshots ever registered (not decremented by unregister). *)

val blast : t -> sharer -> region_addr:int -> block:int -> what:string -> int
(** Corruption was detected at [region_addr]/[block] of [sharer]'s
    snapshot: notify every {e other} holder of that canonical block via
    its [on_corrupt] (with its own location), and return how many were
    hit. 0 when the block is unshared or not indexed (all-zero). *)

val corrupt_shared : t -> int -> (string * int * int) list option
(** Fault-modeling hook for tests: flip a bit in the [n]-th shared
    canonical copy, written through {e every} holder's stored region —
    what a bitflip in a physically deduplicated store does. Returns each
    holder's (owner, region start, block), or [None] if there is no such
    shared entry. *)

val scrub_index : t -> Snapshot.corruption option
(** Verify the index: every canonical copy still hashes to its key and
    every holder's stored block still equals the canonical content. *)
