module Account = Gh_sim.Account
module Fault = Gh_sim.Fault
module Process = Gh_proc.Process

type mode = Eager | Incremental

type status = Clean | Dirty | Restoring | Poisoned

type failure = { what : string; spent_ns : Gh_sim.Time_ns.t }

type t = {
  proc : Process.t;
  acct : Account.t;
  paranoid : bool;
  mode : mode;
  mutable snap : Snapshot.t option;
  mutable incr : Incremental.t option;
  mutable status : status;
  mutable restores : int;
  mutable failures : int;
  mutable last_failure : failure option;
}

let create ?(paranoid = false) ?(mode = Eager) proc =
  if paranoid && mode = Incremental then
    invalid_arg "Manager.create: paranoid verification requires eager snapshots";
  {
    proc;
    acct = Account.create ();
    paranoid;
    mode;
    snap = None;
    incr = None;
    status = Dirty;
    restores = 0;
    failures = 0;
    last_failure = None;
  }

let process t = t.proc
let account t = t.acct
let status t = t.status

let status_name = function
  | Clean -> "clean"
  | Dirty -> "dirty"
  | Restoring -> "restoring"
  | Poisoned -> "poisoned"

let fail t what start =
  let f = { what; spent_ns = Account.since t.acct start } in
  t.status <- Poisoned;
  t.failures <- t.failures + 1;
  t.last_failure <- Some f;
  Error f

let take_snapshot t =
  (match t.snap with
  | Some _ -> failwith "Groundhog manager: snapshot already taken"
  | None -> ());
  let start = Account.mark t.acct in
  let snap =
    match t.mode with
    | Eager -> Snapshot.capture t.acct t.proc
    | Incremental -> (
        match Incremental.capture t.acct t.proc with
        | Ok incr ->
            t.incr <- Some incr;
            Ok (Incremental.snapshot incr)
        | Error _ as e -> e)
  in
  match snap with
  | Ok snap ->
      t.snap <- Some snap;
      t.status <- Clean;
      Ok snap.Snapshot.capture_ns
  | Error site -> fail t ("snapshot fault at " ^ Fault.site_name site) start

let take_snapshot_exn t =
  match take_snapshot t with
  | Ok ns -> ns
  | Error f -> failwith ("Groundhog manager: " ^ f.what)

let snapshot t = t.snap

let mark_dirty t = match t.status with Poisoned -> () | _ -> t.status <- Dirty

let is_clean t = t.status = Clean

let restore t =
  if t.status = Poisoned then
    (* Absorbing: once the process state is unknown, no restore may prove
       it clean again — only kill + cold restart. *)
    Error { what = "manager is poisoned (fail closed)"; spent_ns = 0 }
  else
  match t.snap with
  | None -> failwith "Groundhog manager: restore before snapshot"
  | Some snap -> (
      let start = Account.mark t.acct in
      t.status <- Restoring;
      match Restore.run t.acct snap t.proc with
      | Error site -> fail t ("restore fault at " ^ Fault.site_name site) start
      | Ok breakdown ->
          let verified =
            if not t.paranoid then Ok ()
            else
              match Verify.state_matches snap t.proc with
              | Ok () -> Ok ()
              | Error m ->
                  fail t
                    (Format.asprintf "restore verification failed: %a" Verify.pp_mismatch m)
                    start
          in
          (match verified with
          | Ok () ->
              (* The only transition into [Clean] besides the snapshot
                 itself: a restore that ran to completion (and verified,
                 when paranoid). *)
              t.status <- Clean;
              t.restores <- t.restores + 1
          | Error _ -> ());
          Result.map (fun () -> breakdown) verified)

let restore_exn t =
  match restore t with
  | Ok b -> b
  | Error f -> failwith ("Groundhog manager: " ^ f.what)

let skip_restore t =
  if t.status = Poisoned then
    invalid_arg "Manager.skip_restore: container is poisoned (fail closed)";
  t.status <- Clean

let poison t what =
  t.status <- Poisoned;
  t.failures <- t.failures + 1;
  t.last_failure <- Some { what; spent_ns = 0 }

let restores_performed t = t.restores
let failures t = t.failures
let last_failure t = t.last_failure
let total_manager_ns t = Account.total t.acct

let buffer_pages t =
  match (t.mode, t.incr, t.snap) with
  | Incremental, Some incr, _ -> Incremental.saved_pages incr
  | _, _, Some snap -> snap.Snapshot.present_pages
  | _ -> 0
