module Account = Gh_sim.Account
module Fault = Gh_sim.Fault
module Process = Gh_proc.Process
module As = Gh_mem.Address_space
module Cost = Gh_kernel.Cost

type mode = Eager | Incremental

type status = Clean | Dirty | Restoring | Poisoned

type failure = { what : string; spent_ns : Gh_sim.Time_ns.t }

type verify = Verify_off | Verify_sampled of int | Verify_full

type t = {
  proc : Process.t;
  acct : Account.t;
  paranoid : bool;
  verify : verify;
  mode : mode;
  mutable snap : Snapshot.t option;
  mutable incr : Incremental.t option;
  mutable status : status;
  mutable restores : int;
  mutable failures : int;
  mutable last_failure : failure option;
  (* -- Integrity accounting. Verification and scrubbing read memory and
     nothing else: their modeled cost is tallied here (pages hashed ×
     [hash_per_page_ns]) but never charged to [acct] — the event timeline
     is bit-identical with them on or off (DESIGN §14). -- *)
  mutable verified_blocks : int;
  mutable last_verify_blocks : int;
  mutable verify_ns : int;
  mutable verify_failures : int;
  mutable scrubbed_blocks : int;
  mutable scrub_ns : int;
  mutable scrub_cursor : int;
  mutable clean_via_restore : bool;
  mutable last_corruption : Snapshot.corruption option;
}

let create ?(paranoid = false) ?(verify = Verify_off) ?(mode = Eager) proc =
  if paranoid && mode = Incremental then
    invalid_arg "Manager.create: paranoid verification requires eager snapshots";
  if verify <> Verify_off && mode = Incremental then
    invalid_arg "Manager.create: hash verification requires eager snapshots";
  (match verify with
  | Verify_sampled k when k < 1 ->
      invalid_arg "Manager.create: sampled verification needs a stride >= 1"
  | _ -> ());
  {
    proc;
    acct = Account.create ();
    paranoid;
    verify;
    mode;
    snap = None;
    incr = None;
    status = Dirty;
    restores = 0;
    failures = 0;
    last_failure = None;
    verified_blocks = 0;
    last_verify_blocks = 0;
    verify_ns = 0;
    verify_failures = 0;
    scrubbed_blocks = 0;
    scrub_ns = 0;
    scrub_cursor = 0;
    clean_via_restore = false;
    last_corruption = None;
  }

let process t = t.proc
let account t = t.acct
let status t = t.status

let status_name = function
  | Clean -> "clean"
  | Dirty -> "dirty"
  | Restoring -> "restoring"
  | Poisoned -> "poisoned"

let fail t what start =
  let f = { what; spent_ns = Account.since t.acct start } in
  t.status <- Poisoned;
  t.failures <- t.failures + 1;
  t.last_failure <- Some f;
  Error f

let take_snapshot t =
  (match t.snap with
  | Some _ -> failwith "Groundhog manager: snapshot already taken"
  | None -> ());
  let start = Account.mark t.acct in
  let snap =
    match t.mode with
    | Eager -> Snapshot.capture t.acct t.proc
    | Incremental -> (
        match Incremental.capture t.acct t.proc with
        | Ok incr ->
            t.incr <- Some incr;
            Ok (Incremental.snapshot incr)
        | Error _ as e -> e)
  in
  match snap with
  | Ok snap ->
      t.snap <- Some snap;
      t.status <- Clean;
      (* Clean-by-capture, not by restore: the warm process itself is the
         reference state, so even a corrupted *buffer* cannot taint the
         first serve — the audit oracle stays unavailable until a restore
         has actually copied stored bytes into the process. *)
      t.clean_via_restore <- false;
      Ok snap.Snapshot.capture_ns
  | Error site -> fail t ("snapshot fault at " ^ Fault.site_name site) start

let take_snapshot_exn t =
  match take_snapshot t with
  | Ok ns -> ns
  | Error f -> failwith ("Groundhog manager: " ^ f.what)

let snapshot t = t.snap

let mark_dirty t = match t.status with Poisoned -> () | _ -> t.status <- Dirty

let is_clean t = t.status = Clean

(* Restore-time hash audit per the [verify] policy. Sampled verification
   checks every [k]-th block, rotating the offset with the restore count so
   consecutive restores sweep disjoint block classes and any persistent
   corruption is caught within [k] restores. Reads restored memory and the
   stored hashes only — no account charge, no randomness. *)
let run_audit t snap =
  let stride, offset =
    match t.verify with
    | Verify_off -> (0, 0)
    | Verify_full -> (1, 0)
    | Verify_sampled k -> (k, t.restores mod k)
  in
  if stride = 0 then Ok ()
  else
    let cost = As.cost t.proc.Process.mem in
    match Verify.audit_hashes ~stride ~offset snap t.proc with
    | Ok blocks ->
        t.verified_blocks <- t.verified_blocks + blocks;
        t.last_verify_blocks <- blocks;
        t.verify_ns <-
          t.verify_ns + (blocks * Snapshot.block_pages * cost.Cost.hash_per_page_ns);
        Ok ()
    | Error c ->
        t.verify_failures <- t.verify_failures + 1;
        t.last_verify_blocks <- 0;
        t.last_corruption <- Some c;
        Error (Format.asprintf "hash audit failed: %a" Snapshot.pp_corruption c)

let restore t =
  if t.status = Poisoned then
    (* Absorbing: once the process state is unknown, no restore may prove
       it clean again — only kill + cold restart. *)
    Error { what = "manager is poisoned (fail closed)"; spent_ns = 0 }
  else
  match t.snap with
  | None -> failwith "Groundhog manager: restore before snapshot"
  | Some snap -> (
      let start = Account.mark t.acct in
      t.status <- Restoring;
      match Restore.run t.acct snap t.proc with
      | Error site -> fail t ("restore fault at " ^ Fault.site_name site) start
      | Ok breakdown ->
          let verified =
            if not t.paranoid then Ok ()
            else
              match Verify.state_matches snap t.proc with
              | Ok () -> Ok ()
              | Error m ->
                  fail t
                    (Format.asprintf "restore verification failed: %a" Verify.pp_mismatch m)
                    start
          in
          let verified =
            match verified with
            | Error _ as e -> e
            | Ok () -> (
                match run_audit t snap with
                | Ok () -> Ok ()
                | Error what -> fail t what start)
          in
          (match verified with
          | Ok () ->
              (* The only transition into [Clean] besides the snapshot
                 itself: a restore that ran to completion (and verified,
                 when paranoid or hash-audited). *)
              t.status <- Clean;
              t.clean_via_restore <- true;
              t.restores <- t.restores + 1
          | Error _ -> ());
          Result.map (fun () -> breakdown) verified)

let restore_exn t =
  match restore t with
  | Ok b -> b
  | Error f -> failwith ("Groundhog manager: " ^ f.what)

let skip_restore t =
  if t.status = Poisoned then
    invalid_arg "Manager.skip_restore: container is poisoned (fail closed)";
  t.status <- Clean;
  (* Clean by policy, not by copying stored bytes: the process content is
     whatever the trusting callers left, so the hash oracle must not judge
     it against the snapshot. *)
  t.clean_via_restore <- false

let poison t what =
  t.status <- Poisoned;
  t.failures <- t.failures + 1;
  t.last_failure <- Some { what; spent_ns = 0 }

(* One bounded slice of stored-side integrity scrubbing: re-hash up to
   [blocks] snapshot blocks from the cursor. Detects buffer corruption
   (bitflips, torn captures) while the container idles — before a restore
   ever serves it. The cursor walks one full pass and reports completion
   so the caller can stop rescheduling (and not spin the event loop). *)
let scrub t ~blocks =
  if t.status = Poisoned then `Skip
  else
    match t.snap with
    | None -> `Skip
    | Some snap -> (
        let r = Snapshot.scrub snap ~cursor:t.scrub_cursor ~blocks in
        let cost = As.cost t.proc.Process.mem in
        t.scrubbed_blocks <- t.scrubbed_blocks + r.Snapshot.checked_blocks;
        t.scrub_ns <- t.scrub_ns + (r.Snapshot.checked_pages * cost.Cost.hash_per_page_ns);
        t.scrub_cursor <- r.Snapshot.next_cursor;
        match r.Snapshot.corrupt with
        | Some c ->
            t.last_corruption <- Some c;
            t.status <- Poisoned;
            t.failures <- t.failures + 1;
            t.last_failure <-
              Some
                {
                  what = Format.asprintf "scrub: %a" Snapshot.pp_corruption c;
                  spent_ns = 0;
                };
            `Corrupt c
        | None -> `Checked (r.Snapshot.checked_blocks, r.Snapshot.next_cursor = 0))

(* Ground-truth probe for experiments: would serving from the current
   process state serve corrupted bytes? Only meaningful when the state
   was produced by an actual restore (stored bytes copied in) — after a
   fresh snapshot or a trusted skip the process itself is the reference,
   so there is nothing to judge. Eager mode only: an incremental shell
   stores just the salvaged pages, so its hashes cover the buffer, not
   the full process image. *)
let audit_oracle t =
  match (t.snap, t.status, t.mode) with
  | Some snap, Clean, Eager when t.clean_via_restore ->
      Some
        (match Verify.audit_hashes snap t.proc with
        | Ok _ -> `Intact
        | Error c -> `Corrupt (Format.asprintf "%a" Snapshot.pp_corruption c))
  | _ -> None

let restores_performed t = t.restores
let failures t = t.failures
let last_failure t = t.last_failure
let total_manager_ns t = Account.total t.acct
let verified_blocks t = t.verified_blocks
let last_verify_blocks t = t.last_verify_blocks
let verify_ns t = t.verify_ns
let verify_failures t = t.verify_failures
let scrubbed_blocks t = t.scrubbed_blocks
let scrub_ns t = t.scrub_ns
let last_corruption t = t.last_corruption

let buffer_pages t =
  match (t.mode, t.incr, t.snap) with
  | Incremental, Some incr, _ -> Incremental.saved_pages incr
  | _, _, Some snap -> snap.Snapshot.present_pages
  | _ -> 0
