type t = {
  interrupt_ns : int;
  read_maps_ns : int;
  scan_ns : int;
  diff_ns : int;
  syscalls_ns : int;
  copy_ns : int;
  regs_ns : int;
  reset_ns : int;
  detach_ns : int;
  total_ns : int;
  pages_scanned : int;
  pages_restored : int;
  pages_madvised : int;
  syscalls_injected : int;
  threads : int;
}

let zero =
  {
    interrupt_ns = 0;
    read_maps_ns = 0;
    scan_ns = 0;
    diff_ns = 0;
    syscalls_ns = 0;
    copy_ns = 0;
    regs_ns = 0;
    reset_ns = 0;
    detach_ns = 0;
    total_ns = 0;
    pages_scanned = 0;
    pages_restored = 0;
    pages_madvised = 0;
    syscalls_injected = 0;
    threads = 0;
  }

let add a b =
  {
    interrupt_ns = a.interrupt_ns + b.interrupt_ns;
    read_maps_ns = a.read_maps_ns + b.read_maps_ns;
    scan_ns = a.scan_ns + b.scan_ns;
    diff_ns = a.diff_ns + b.diff_ns;
    syscalls_ns = a.syscalls_ns + b.syscalls_ns;
    copy_ns = a.copy_ns + b.copy_ns;
    regs_ns = a.regs_ns + b.regs_ns;
    reset_ns = a.reset_ns + b.reset_ns;
    detach_ns = a.detach_ns + b.detach_ns;
    total_ns = a.total_ns + b.total_ns;
    pages_scanned = a.pages_scanned + b.pages_scanned;
    pages_restored = a.pages_restored + b.pages_restored;
    pages_madvised = a.pages_madvised + b.pages_madvised;
    syscalls_injected = a.syscalls_injected + b.syscalls_injected;
    threads = a.threads + b.threads;
  }

let scale a k =
  let s x = int_of_float ((float_of_int x *. k) +. 0.5) in
  {
    interrupt_ns = s a.interrupt_ns;
    read_maps_ns = s a.read_maps_ns;
    scan_ns = s a.scan_ns;
    diff_ns = s a.diff_ns;
    syscalls_ns = s a.syscalls_ns;
    copy_ns = s a.copy_ns;
    regs_ns = s a.regs_ns;
    reset_ns = s a.reset_ns;
    detach_ns = s a.detach_ns;
    total_ns = s a.total_ns;
    pages_scanned = s a.pages_scanned;
    pages_restored = s a.pages_restored;
    pages_madvised = s a.pages_madvised;
    syscalls_injected = s a.syscalls_injected;
    threads = s a.threads;
  }

let steps t =
  [
    ("interrupt", t.interrupt_ns);
    ("read-maps", t.read_maps_ns);
    ("scan-pages", t.scan_ns);
    ("diff-layout", t.diff_ns);
    ("inject-syscalls", t.syscalls_ns);
    ("restore-memory", t.copy_ns);
    ("restore-registers", t.regs_ns);
    ("reset-SD-bits", t.reset_ns);
    ("detach", t.detach_ns);
  ]

(* The nonzero steps in milliseconds, ready for per-window quantile
   sketches: a time-series collector records one sample per step per
   restore, so a regression in any single step shows up in its own
   series instead of being averaged into the total. *)
let steps_ms t =
  List.filter_map
    (fun (label, ns) ->
      if ns <= 0 then None else Some (label, Gh_sim.Time_ns.to_ms ns))
    (steps t)

(* The steps as consecutive (label, start, stop) windows from [start]:
   restore.ml charges them back-to-back (each is an [Account.since] between
   contiguous marks), so laying them out sequentially reproduces the real
   timeline and the windows sum exactly to [total_ns]. Zero-length steps
   are dropped. *)
let intervals t ~start =
  let _, acc =
    List.fold_left
      (fun (at, acc) (label, ns) ->
        if ns <= 0 then (at, acc) else (at + ns, (label, at, at + ns) :: acc))
      (start, []) (steps t)
  in
  List.rev acc

let pp ppf t =
  Format.fprintf ppf "@[<v>restore total %a (%d pages restored, %d madvised, %d syscalls)@ "
    Gh_sim.Time_ns.pp t.total_ns t.pages_restored t.pages_madvised t.syscalls_injected;
  List.iter
    (fun (label, ns) ->
      if ns > 0 then
        Format.fprintf ppf "%-18s %a (%4.1f%%)@ " label Gh_sim.Time_ns.pp ns
          (100.0 *. float_of_int ns /. float_of_int (max 1 t.total_ns)))
    (steps t);
  Format.fprintf ppf "@]"
