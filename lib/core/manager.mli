(** The Groundhog manager (§4, Fig. 2): the per-container process that
    interposes between the FaaS platform and the function process.

    Lifecycle: the manager is created around a freshly exec'd function
    process; after the runtime has served a dummy request (triggering lazy
    paging, class loading and global-state initialization), the manager
    takes the snapshot; thereafter each completed invocation is followed by
    a {!restore} before the next request may be forwarded ({!is_clean}
    gates request delivery — Groundhog buffers inputs until the process is
    clean, §4.5).

    The lifecycle is fail-closed: the status lattice is

    {v
            take_snapshot ok            restore ok (+ verify ok)
      Dirty ---------------> Clean <------------------ Restoring
        ^                      |                            |
        |      mark_dirty      |     restore started        |
        +----------------------+  (Dirty -> Restoring)      |
                                                            v
                 any snapshot/restore/verify failure --> Poisoned
    v}

    [Poisoned] is absorbing: no operation on this manager ever returns it
    to [Clean] — the only way forward is to kill the process and build a
    fresh manager (cold restart + re-snapshot), which the [Gh_faas]
    recovery pipeline drives.

    The manager's CPU time accumulates on its own {!account}: this work is
    off the request's critical path, which is why it only shows up in
    throughput (high-load) measurements. *)

type t

type mode =
  | Eager  (** Copy every present page at snapshot time (the paper's
               evaluated configuration). *)
  | Incremental
      (** §5.5's optimization: arm copy-on-write at snapshot time and
          salvage originals on first modification — manager memory then
          grows with the pages ever modified, at the price of a one-time
          on-critical-path CoW fault per unique page. *)

type status =
  | Clean  (** Provably holds no residue; may serve a request. *)
  | Dirty  (** A request has touched the process; restore pending. *)
  | Restoring  (** A restore is in flight. *)
  | Poisoned
      (** A snapshot, restore, or verification failed: the process state is
          unknown. Absorbing — only kill + cold restart recovers. *)

type failure = {
  what : string;  (** Human-readable cause (fault site or verify mismatch). *)
  spent_ns : Gh_sim.Time_ns.t;  (** Manager time burned by the failed attempt. *)
}

(** Restore-time hash-audit policy. Unlike [paranoid] (which re-reads
    every stored word), the audit hashes the {e restored process's}
    memory per {!Snapshot.block_pages}-page block against the hashes
    captured from the source — so it also catches corruption of the
    stored buffer itself and silently-skipped restore writes. Its
    modeled cost is tallied on {!verify_ns} / {!verified_blocks}, never
    charged to the account (DESIGN §14: the timeline is identical with
    verification on or off). *)
type verify =
  | Verify_off
  | Verify_sampled of int
      (** Check every [k]-th block, rotating the offset with the restore
          count: any persistent corruption is caught within [k]
          restores at [1/k] of the full audit's work. *)
  | Verify_full  (** Check every block on every restore. *)

val create : ?paranoid:bool -> ?verify:verify -> ?mode:mode -> Gh_proc.Process.t -> t
(** [paranoid] makes every {!restore} verify the result against the
    snapshot and poison the manager on any mismatch (off by default;
    incompatible with [Incremental]). [verify] (default [Verify_off])
    adds the hash audit after each restore — also eager-only: an
    incremental shell's hashes cover the salvaged buffer, not the full
    process image. [mode] defaults to [Eager]. The fresh manager starts
    [Dirty] — nothing is proven until the snapshot. *)

val process : t -> Gh_proc.Process.t
val account : t -> Gh_sim.Account.t

val status : t -> status
val status_name : status -> string

val take_snapshot : t -> (Gh_sim.Time_ns.t, failure) result
(** Capture the clean state; returns the capture cost and transitions to
    [Clean]. Must be called exactly once, before the first {!restore}; a
    fault during capture poisons the manager.
    @raise Failure if a snapshot was already taken. *)

val take_snapshot_exn : t -> Gh_sim.Time_ns.t
(** {!take_snapshot} for fault-free contexts. @raise Failure on a fault. *)

val snapshot : t -> Snapshot.t option

val mark_dirty : t -> unit
(** Note that a request reached the function process: the container is no
    longer clean and the next request must wait for a restore. Does not
    un-poison. *)

val is_clean : t -> bool
(** True when the process provably holds no residue of a previous request:
    right after the snapshot, or right after a restore. *)

val restore : t -> (Breakdown.t, failure) result
(** Revert to the snapshot (§4.4). [Ok] transitions to [Clean]; any fault
    or (paranoid) verification mismatch transitions to [Poisoned] and
    reports how much manager time the failed attempt burned.
    @raise Failure if no snapshot exists. *)

val restore_exn : t -> Breakdown.t
(** {!restore} for fault-free contexts. @raise Failure on a fault. *)

val skip_restore : t -> unit
(** The same-security-domain optimization (§4.4): consecutive requests from
    mutually trusting callers may skip the rollback. Marks the container
    clean {e without} restoring — the caller is responsible for the policy
    decision (see [Gh_isolation.Policy]).
    @raise Invalid_argument on a [Poisoned] manager: trust between callers
    never licenses serving from a process in an unknown state. *)

val poison : t -> string -> unit
(** External failure (kill after a hang, timeout): force [Poisoned]. *)

val restores_performed : t -> int

val failures : t -> int
(** Snapshot/restore/verify failures so far (including {!poison} calls). *)

val last_failure : t -> failure option

val total_manager_ns : t -> Gh_sim.Time_ns.t
(** All manager CPU time so far: snapshot + every restore. *)

(** {1 Integrity: scrubbing, audit accounting, ground truth} *)

val scrub :
  t -> blocks:int -> [ `Skip | `Checked of int * bool | `Corrupt of Snapshot.corruption ]
(** One bounded slice of stored-side scrubbing: re-hash up to [blocks]
    snapshot blocks from the internal cursor. [`Checked (n, finished)]
    verified [n] clean blocks, [finished] meaning the pass reached the
    snapshot's end (the caller should stop rescheduling until the next
    idle period). [`Corrupt] poisons the manager — the stored buffer can
    no longer be trusted to restore from. [`Skip] when poisoned or not
    yet snapshotted. Detects bitflips and torn captures in the buffer;
    restore-skips live in the restore path and are the audit's job. *)

val audit_oracle : t -> [ `Intact | `Corrupt of string ] option
(** Ground truth for experiments: does the current process image match
    the snapshot hashes? [Some] only when [Clean] {e via an actual
    restore} (eager mode) — after a fresh snapshot or a trusted
    [skip_restore] the process itself is the reference and the probe is
    meaningless. Free: reads memory only. *)

val verified_blocks : t -> int
(** Blocks hash-audited across all restores. *)

val last_verify_blocks : t -> int
(** Blocks audited by the most recent successful restore (0 if the last
    audit failed or never ran). *)

val verify_ns : t -> int
(** Modeled audit cost (pages hashed × [hash_per_page_ns]) — tallied,
    never charged to the account. *)

val verify_failures : t -> int
val scrubbed_blocks : t -> int

val scrub_ns : t -> int
(** Modeled scrub cost, same tally-only discipline as {!verify_ns}. *)

val last_corruption : t -> Snapshot.corruption option
(** Location of the most recent corruption found by the audit or the
    scrubber — the dedup layer uses it to poison every sharer of the
    block. *)

val buffer_pages : t -> int
(** Pages of function memory held in the manager: the whole present
    footprint for [Eager], only the salvaged pages for [Incremental]. *)
