(** In-memory process snapshots (§4.2).

    A snapshot is taken once per container, right after the dummy request
    warmed the runtime: the manager interrupts the process, stores every
    thread's CPU state, walks /proc to collect the memory layout and the
    contents of all present pages into its own memory, resets the
    soft-dirty tracking state, and resumes the process. *)

type region = {
  start_addr : int;
  n_pages : int;
  prot : Gh_mem.Prot.t;
  kind : Gh_mem.Vma.kind;
  data : int array;  (** Copy of every page's word (index = page offset). *)
  present : Gh_mem.Bitmap.t;  (** Which pages had frames at snapshot time. *)
  zeros : Gh_mem.Bitmap.t;
      (** Which stored pages are all-zero ([data.(i) = 0]), captured
          during the copy — the restore engine's Zero/Copy split consults
          this instead of re-scanning page contents per restore. *)
}

type t = {
  brk : int;
  regs : (int * Gh_proc.Registers.t) list;  (** tid → register copy. *)
  regions : region list;  (** Ascending by start address. *)
  by_start : (int, region) Hashtbl.t;  (** Start address → region index. *)
  present_pages : int;  (** Total pages copied into the manager. *)
  capture_ns : Gh_sim.Time_ns.t;  (** Cost of taking this snapshot. *)
}

val make :
  brk:int ->
  regs:(int * Gh_proc.Registers.t) list ->
  regions:region list ->
  present_pages:int ->
  capture_ns:Gh_sim.Time_ns.t ->
  t
(** Assemble a snapshot, building the by-start index. Regions sharing a
    start address (possible only with zero-length regions) resolve to the
    first in list order, like the linear search used to. *)

val capture : Gh_sim.Account.t -> Gh_proc.Process.t -> (t, Gh_sim.Fault.site) result
(** Interrupt, copy, arm soft-dirty tracking, resume. All costs are charged
    to the manager's account; [capture_ns] records the total. On a fault
    the process is resumed, the partial copy discarded, and the site
    returned — the caller must not treat the process as clean.
    @raise Gh_proc.Ptrace.Already_attached if a tracer already holds the
    process. *)

val capture_exn : Gh_sim.Account.t -> Gh_proc.Process.t -> t
(** {!capture} for fault-free contexts. @raise Failure on a fault. *)

val find_region : t -> start_addr:int -> region option

val memory_words : t -> int
(** Size of the snapshot buffer, in stored page words (= pages copied). *)

val pp : Format.formatter -> t -> unit
