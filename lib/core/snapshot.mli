(** In-memory process snapshots (§4.2).

    A snapshot is taken once per container, right after the dummy request
    warmed the runtime: the manager interrupts the process, stores every
    thread's CPU state, walks /proc to collect the memory layout and the
    contents of all present pages into its own memory, resets the
    soft-dirty tracking state, and resumes the process. *)

type region = {
  start_addr : int;
  n_pages : int;
  prot : Gh_mem.Prot.t;
  kind : Gh_mem.Vma.kind;
  data : int array;  (** Copy of every page's word (index = page offset). *)
  present : Gh_mem.Bitmap.t;  (** Which pages had frames at snapshot time. *)
  zeros : Gh_mem.Bitmap.t;
      (** Which stored pages are all-zero ([data.(i) = 0]), captured
          during the copy — the restore engine's Zero/Copy split consults
          this instead of re-scanning page contents per restore. *)
  hashes : int array;
      (** One content hash per {!block_pages}-page block, taken from the
          *source* during the zero-elided copy (all-zero blocks get theirs
          by construction, no data read). The snapshot's cryptographic
          identity: scrubbing re-hashes stored data against these;
          restore-time verification re-hashes restored memory. *)
  hstale : Gh_mem.Bitmap.t;
      (** Blocks whose stored content was legitimately updated after
          capture (incremental salvage): their hash re-seals from the
          stored data at the next audit. *)
}

(** {1 Content hashing} *)

val block_pages : int
(** Pages per hash block (= [Bitmap.bits_per_word], 63). *)

val hash_words : int array -> pos:int -> len:int -> int
(** Hash [len] page words starting at [pos]. Any single-word change is
    guaranteed to change the hash (the per-word mix is injective). *)

val zero_block_hash : int -> int
(** [zero_block_hash len] = [hash_words] of [len] zero words, without
    reading data (precomputed for full blocks). *)

val region_blocks : region -> int
val block_len : region -> int -> int
(** Pages covered by block [b] (= {!block_pages} except the last). *)

val block_hash : region -> int -> int
(** The reference hash for block [b]; re-seals stale (salvage-touched)
    blocks from the stored content first. *)

val verify_block : region -> int -> bool
(** Does the stored content of block [b] still match its reference hash?
    Stale blocks seal and trivially pass. *)

type t = {
  brk : int;
  regs : (int * Gh_proc.Registers.t) list;  (** tid → register copy. *)
  regions : region list;  (** Ascending by start address. *)
  by_start : (int, region) Hashtbl.t;  (** Start address → region index. *)
  present_pages : int;  (** Total pages copied into the manager. *)
  capture_ns : Gh_sim.Time_ns.t;  (** Cost of taking this snapshot. *)
}

val make :
  brk:int ->
  regs:(int * Gh_proc.Registers.t) list ->
  regions:region list ->
  present_pages:int ->
  capture_ns:Gh_sim.Time_ns.t ->
  t
(** Assemble a snapshot, building the by-start index. The start address
    is each region's identity — scrub cursors, dedup membership and
    restore verification all key on it — so two regions sharing one
    would make every downstream result ambiguous.
    @raise Invalid_argument if two regions share a start address. *)

val capture : Gh_sim.Account.t -> Gh_proc.Process.t -> (t, Gh_sim.Fault.site) result
(** Interrupt, copy, arm soft-dirty tracking, resume. All costs are charged
    to the manager's account; [capture_ns] records the total. On a fault
    the process is resumed, the partial copy discarded, and the site
    returned — the caller must not treat the process as clean.
    @raise Gh_proc.Ptrace.Already_attached if a tracer already holds the
    process. *)

val capture_exn : Gh_sim.Account.t -> Gh_proc.Process.t -> t
(** {!capture} for fault-free contexts. @raise Failure on a fault. *)

val find_region : t -> start_addr:int -> region option

val memory_words : t -> int
(** Size of the snapshot buffer, in stored page words (= pages copied). *)

(** {1 Self-scrubbing}

    Re-hash stored blocks against the reference hashes captured from the
    source: detects buffer corruption ({!Gh_sim.Fault.Snapshot_bitflip},
    {!Gh_sim.Fault.Snapshot_torn}) before a restore ever serves it. *)

type corruption = { region_addr : int; block : int; what : string }

val pp_corruption : Format.formatter -> corruption -> unit

val total_blocks : t -> int
(** Hash blocks across all regions — the length of one full scrub pass. *)

type scrub_result = {
  checked_blocks : int;
  checked_pages : int;
  next_cursor : int;  (** 0 once the pass reached the end of the snapshot. *)
  corrupt : corruption option;
}

val scrub : t -> cursor:int -> blocks:int -> scrub_result
(** Verify up to [blocks] blocks starting at flat block index [cursor]
    (counted across regions in order). Stops early at the first
    corruption. Reads stored memory only — charges nothing, draws no
    randomness. *)

val self_check : t -> corruption option
(** One unbounded scrub pass over the whole snapshot. *)

val pp : Format.formatter -> t -> unit
