module Account = Gh_sim.Account
module Fault = Gh_sim.Fault
module Cost = Gh_kernel.Cost
module As = Gh_mem.Address_space
module Vma = Gh_mem.Vma
module Bitmap = Gh_mem.Bitmap
module Process = Gh_proc.Process
module Ptrace = Gh_proc.Ptrace
module Procfs = Gh_proc.Procfs
module Thread = Gh_proc.Thread
module Registers = Gh_proc.Registers

(* What to do with one page of a matched region. Pages that are clean with
   unchanged presence are kept as-is and never reach an action run. *)
type action =
  | Copy  (* write the snapshot's content back *)
  | Zero  (* stack page whose snapshot content is zero: memset, no source read *)
  | Madvise  (* newly paged during the invocation: return to lazy *)

(* Per-page classification, word-batched. For each packed word of the
   region's bitmaps we compute

     restore = snap_present land (dirty lor lnot now_present)
     madvise = lnot snap_present land now_present

   and everything else is Keep. Pages past the end of the [dirty] map are
   treated as dirty — tracking information is missing for them (the VMA was
   resized between the pagemap scan and now), and restoring an unmodified
   page is safe where keeping a modified one is a leak. Pages past the end
   of [vma]'s own maps read as non-present, matching a freshly re-created
   mapping. The Copy/Zero split (stack pages whose snapshot content is
   zero: memset, no source read) is decided per page, but only inside
   restore runs of stack regions. *)

let full_word = -1 (* all 63 bits; OCaml ints are 63-bit two's complement *)

(* Apply [f pos len action] to each maximal run of equal non-Keep actions. *)
let iter_action_runs (snap : Snapshot.region) (vma : Vma.t) dirty f =
  let n = snap.Snapshot.n_pages in
  let bpw = Bitmap.bits_per_word in
  let nw = (n + bpw - 1) / bpw in
  let dirty_len = Bitmap.length dirty in
  let is_stack = snap.Snapshot.kind = Vma.Stack in
  let emit pos len cls =
    if cls = 2 then f pos len Madvise
    else if not is_stack then f pos len Copy
    else begin
      (* Split a stack restore run into Zero / Copy stretches by hopping
         word-by-word over the snapshot's [zeros] map (captured once at
         snapshot time) instead of re-scanning page contents per restore.
         Bits past the map's length read as zero, which [lnot] turns into
         a spurious boundary — clamping to [stop] keeps it inert. *)
      let zeros = snap.Snapshot.zeros in
      let stop = pos + len in
      let i = ref pos in
      while !i < stop do
        let z = Bitmap.get zeros !i in
        let start = !i in
        let scanning = ref true in
        while !scanning && !i < stop do
          let wi = !i / bpw and b = !i mod bpw in
          let w = Bitmap.word zeros wi in
          let flips = (if z then lnot w else w) lsr b in
          if flips = 0 then i := min stop ((wi + 1) * bpw)
          else begin
            i := min stop (!i + Bitmap.ctz flips);
            scanning := false
          end
        done;
        f start (!i - start) (if z then Zero else Copy)
      done
    end
  in
  (* Run state across words: class 0 = Keep (no open run), 1 = restore,
     2 = madvise. *)
  let cur = ref 0 and run_start = ref 0 in
  let flush stop =
    if !cur <> 0 then begin
      emit !run_start (stop - !run_start) !cur;
      cur := 0
    end
  in
  for wi = 0 to nw - 1 do
    let base = wi * bpw in
    let valid = if base + bpw <= n then full_word else (1 lsl (n - base)) - 1 in
    let sp = Bitmap.word snap.Snapshot.present wi in
    let np = Bitmap.word vma.Vma.present wi in
    let dirty_pad =
      if base + bpw <= dirty_len then 0
      else if base >= dirty_len then full_word
      else full_word lsl (dirty_len - base)
    in
    let dv = Bitmap.word dirty wi lor dirty_pad in
    let restore_mask = sp land (dv lor lnot np) land valid in
    let madv_mask = lnot sp land np land valid in
    if restore_mask = 0 && madv_mask = 0 then flush base
    else begin
      (* Hop between class boundaries with trailing-zero-count. *)
      let stop = min bpw (n - base) in
      let pos = ref 0 in
      while !pos < stop do
        let cls =
          if (restore_mask lsr !pos) land 1 = 1 then 1
          else if (madv_mask lsr !pos) land 1 = 1 then 2
          else 0
        in
        let mask =
          match cls with
          | 1 -> restore_mask
          | 2 -> madv_mask
          | _ -> lnot (restore_mask lor madv_mask)
        in
        let inv = lnot mask lsr !pos in
        let run_stop = if inv = 0 then stop else min stop (!pos + Bitmap.ctz inv) in
        if cls <> !cur then begin
          flush (base + !pos);
          if cls <> 0 then begin
            cur := cls;
            run_start := base + !pos
          end
        end;
        pos := run_stop
      done
    end
  done;
  flush n

(* Early exit out of the iteration callbacks below; caught at the [run]
   boundary, never escapes this module. *)
exception Stop of Fault.site

let ok_or_stop = function Ok v -> v | Error site -> raise (Stop site)

(* Returns (pages copied/zeroed, pages madvised, madvise syscall count,
   time spent in madvise injections) — the injections are part of the
   layout-reversal budget, not the memory-copy budget. *)
let restore_region session acct fault (snap : Snapshot.region) (vma : Vma.t) dirty =
  let restored = ref 0 and madvised = ref 0 and injected = ref 0 in
  let inject_ns = ref 0 in
  iter_action_runs snap vma dirty (fun pos len action ->
      match action with
      | Copy ->
          (* Silent-corruption site: the run is "restored" (counted,
             reported complete) but never written — the previous request's
             bytes survive. No error surfaces; only the restore-time hash
             audit can see it. *)
          if Fault.fire fault Fault.Restore_skip then restored := !restored + len
          else begin
            ok_or_stop
              (Ptrace.write_pages session acct vma ~pos ~len ~src:snap.Snapshot.data
                 ~src_pos:pos);
            restored := !restored + len
          end
      | Zero ->
          ok_or_stop (Ptrace.zero_pages session acct vma ~pos ~len);
          restored := !restored + len
      | Madvise ->
          let m = Account.mark acct in
          ignore
            (ok_or_stop
               (Ptrace.inject_syscall session acct (Ptrace.Madvise_dontneed { vma; pos; len })));
          inject_ns := !inject_ns + Account.since acct m;
          incr injected;
          madvised := !madvised + len);
  (!restored, !madvised, !injected, !inject_ns)

let empty_dirty = Bitmap.create 0

let run acct (snapshot : Snapshot.t) (p : Process.t) =
  let cost = As.cost p.Process.mem in
  let mark () = Account.mark acct in
  let t0 = mark () in

  (* 1. Interrupt the function process. *)
  match Ptrace.attach acct p with
  | Error _ as e -> e
  | Ok session ->
  try
  let interrupt_ns = Account.since acct t0 in

  (* 2. Read the memory-mapped regions. *)
  let m = mark () in
  let maps = ok_or_stop (Procfs.read_maps acct p) in
  let read_maps_ns = Account.since acct m in

  (* 3. Identify dirtied pages. Soft-dirty tracking pays a scan of every
     mapped page here; Uffd tracking already holds the dirty set but must
     have paid per-write notifications during the invocation. *)
  let m = mark () in
  let pages_scanned, dirty_list =
    match cost.Cost.tracking with
    | Cost.Soft_dirty -> (As.total_pages p.Process.mem, ok_or_stop (Procfs.scan_soft_dirty acct p))
    | Cost.Uffd ->
        (* The manager already holds the dirty set (it took the faults). *)
        let sets = Procfs.dirty_sets p in
        (List.fold_left (fun n (_, d) -> n + Bitmap.count d) 0 sets, sets)
    | Cost.Kernel_list ->
        (* Footnote 6: the kernel hands over just the modified pages. *)
        let sets = Procfs.dirty_sets p in
        let dirty = List.fold_left (fun n (_, d) -> n + Bitmap.count d) 0 sets in
        Account.charge acct (dirty * cost.Cost.pagemap_scan_per_page_ns);
        (dirty, sets)
  in
  let scan_ns = Account.since acct m in
  let dirty_by_id = Hashtbl.create 64 in
  List.iter (fun ((v : Vma.t), d) -> Hashtbl.replace dirty_by_id v.Vma.id d) dirty_list;
  let dirty_of (v : Vma.t) =
    match Hashtbl.find_opt dirty_by_id v.Vma.id with Some d -> d | None -> empty_dirty
  in

  (* 4. Diff the memory layout against the snapshot. *)
  let m = mark () in
  let changes = Layout_diff.diff acct ~cost snapshot maps in
  let diff_ns = Account.since acct m in

  (* 5. Reverse layout changes by injecting syscalls. Heap resizes are
     folded into a single brk restoration below. *)
  let m = mark () in
  let injected = ref 0 in
  let recreated = ref [] in
  let inject call =
    incr injected;
    ok_or_stop (Ptrace.inject_syscall session acct call)
  in
  List.iter
    (fun change ->
      match change with
      | Layout_diff.Added entry -> begin
          match As.find_vma_by_id p.Process.mem entry.Procfs.vma_id with
          | Some vma -> ignore (inject (Ptrace.Munmap vma))
          | None -> ()
        end
      | Layout_diff.Removed snap ->
          let vma =
            inject
              (Ptrace.Mmap_at
                 {
                   start_addr = snap.Snapshot.start_addr;
                   n_pages = snap.Snapshot.n_pages;
                   prot = snap.Snapshot.prot;
                   kind = snap.Snapshot.kind;
                 })
          in
          recreated := (snap, Option.get vma) :: !recreated
      | Layout_diff.Resized { now; snap } ->
          (* Heap resizes that moved brk are folded into the single brk
             restoration below. A heap that was mremap-grown with brk left
             in place (resize_vma, not set_brk) would be missed by that
             fold and keep its dirtied tail across the restore, so it needs
             an explicit mremap like any other region. *)
          let folded_into_brk =
            snap.Snapshot.kind = Vma.Heap && As.brk p.Process.mem <> snapshot.Snapshot.brk
          in
          if not folded_into_brk then begin
            match As.find_vma_by_id p.Process.mem now.Procfs.vma_id with
            | Some vma -> ignore (inject (Ptrace.Mremap { vma; n_pages = snap.Snapshot.n_pages }))
            | None -> ()
          end
      | Layout_diff.Prot_changed { now; snap } -> begin
          match As.find_vma_by_id p.Process.mem now.Procfs.vma_id with
          | Some vma -> ignore (inject (Ptrace.Mprotect (vma, snap.Snapshot.prot)))
          | None -> ()
        end)
    changes;
  if As.brk p.Process.mem <> snapshot.Snapshot.brk then
    ignore (inject (Ptrace.Brk snapshot.Snapshot.brk));
  let syscalls_ns = Account.since acct m in

  (* 6. Restore page contents: dirty pages and presence mismatches in the
     surviving regions, everything present in re-created regions; newly
     paged pages are madvised back to the lazy state. *)
  let m = mark () in
  let restored = ref 0 and madvised = ref 0 in
  let madvise_inject_ns = ref 0 in
  List.iter
    (fun (snap : Snapshot.region) ->
      match As.find_vma p.Process.mem snap.Snapshot.start_addr with
      | None -> ()
      | Some vma ->
          let dirty =
            if List.exists (fun (s, _) -> s == snap) !recreated then empty_dirty
            else dirty_of vma
          in
          let r, md, inj, inj_ns =
            restore_region session acct p.Process.fault snap vma dirty
          in
          restored := !restored + r;
          madvised := !madvised + md;
          injected := !injected + inj;
          madvise_inject_ns := !madvise_inject_ns + inj_ns)
    snapshot.Snapshot.regions;
  let copy_ns = Account.since acct m - !madvise_inject_ns in
  let syscalls_ns = syscalls_ns + !madvise_inject_ns in

  (* 7. Restore registers; reconcile the thread set with the snapshot
     (threads spawned by the invocation are killed, threads that exited are
     recreated — recreation first, so the process is never thread-less). *)
  let m = mark () in
  (* Accumulate re-created threads and append once — the old per-thread
     [threads <- threads @ [th]] was quadratic in thread count. The
     accumulator must still be flushed on a fault: the fail-closed detach
     below charges per thread, and the threads created before the fault
     exist. *)
  let new_threads = ref [] in
  let flush_new () =
    if !new_threads <> [] then begin
      p.Process.threads <- p.Process.threads @ List.rev !new_threads;
      new_threads := []
    end
  in
  (try
     List.iter
       (fun (tid, regs) ->
         let th =
           match Process.find_thread p tid with
           | Some th -> th
           | None ->
               let th = Thread.create ~tid in
               th.Thread.state <- Thread.Stopped;
               new_threads := th :: !new_threads;
               th
         in
         ok_or_stop (Ptrace.setregs session acct th regs))
       snapshot.Snapshot.regs
   with Stop _ as e ->
     flush_new ();
     raise e);
  flush_new ();
  let extras =
    List.filter
      (fun th -> not (List.mem_assoc th.Thread.tid snapshot.Snapshot.regs))
      p.Process.threads
  in
  List.iter (fun th -> Process.exit_thread p th) extras;
  let regs_ns = Account.since acct m in

  (* 8. Reset dirty tracking for the next invocation. *)
  let m = mark () in
  (match cost.Cost.tracking with
  | Cost.Soft_dirty -> ok_or_stop (Procfs.clear_refs acct p)
  | Cost.Uffd | Cost.Kernel_list ->
      (* Re-arm only the pages that were dirtied. *)
      Account.charge acct (!restored * cost.Cost.clear_refs_per_page_ns);
      As.clear_refs p.Process.mem);
  let reset_ns = Account.since acct m in

  (* 9. Detach; the process may accept the next request. *)
  let m = mark () in
  Ptrace.detach session acct;
  let detach_ns = Account.since acct m in

  Ok
    {
      Breakdown.interrupt_ns;
      read_maps_ns;
      scan_ns;
      diff_ns;
      syscalls_ns;
      copy_ns;
      regs_ns;
      reset_ns;
      detach_ns;
      total_ns = Account.since acct t0;
      pages_scanned;
      pages_restored = !restored;
      pages_madvised = !madvised;
      syscalls_injected = !injected;
      threads = Process.n_threads p;
    }
  with Stop site ->
    (* Fail closed: the process is in an unknown, partially-reverted state.
       Resume it (so a kill can reap it) and report the site — the caller
       must poison the container, never serve from it. *)
    Ptrace.detach session acct;
    Error site

let run_exn acct snapshot p =
  match run acct snapshot p with
  | Ok b -> b
  | Error site -> failwith ("Restore.run: fault at " ^ Fault.site_name site)
