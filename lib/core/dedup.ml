(* Content-addressed cross-container snapshot dedup (ROADMAP item 3).

   Containers of the same function reach near-identical warm states, so
   their eager snapshots store largely the same blocks. The index maps
   block-content hashes to one canonical copy; a sharer joining an
   existing entry is charged nothing for that block. The flip side is
   blast radius: one physical copy serving many containers means a
   corrupted shared block taints *every* sharer — [blast] models exactly
   that, pushing the corruption through each holder's stored region and
   notifying its owner so the fail-closed pipeline can poison them all. *)

module Bitmap = Gh_mem.Bitmap

type entry = {
  hash : int;
  words : int array;  (* canonical block content (guards hash collisions) *)
  pages : int;  (* present pages in the canonical block, for savings accounting *)
  mutable holders : (sharer * Snapshot.region * int) list;
}

and sharer = {
  owner : string;
  on_corrupt : Snapshot.corruption -> unit;
  snap : Snapshot.t;
  blocks : (int * int, entry) Hashtbl.t;  (* (region start, block) -> entry *)
  mutable charged : int;  (* present pages actually stored for this sharer *)
  mutable registered : bool;
}

type t = {
  index : (int, entry list) Hashtbl.t;  (* hash -> entries (collision list) *)
  mutable registrations : int;
}

let create () = { index = Hashtbl.create 256; registrations = 0 }

let block_equal words (r : Snapshot.region) pos len =
  Array.length words = len
  &&
  try
    for i = 0 to len - 1 do
      if words.(i) <> r.Snapshot.data.(pos + i) then raise Exit
    done;
    true
  with Exit -> false

(* Present pages within block [b]: block granularity equals the bitmap's
   word granularity, so this is one masked popcount. *)
let present_in_block (r : Snapshot.region) b len =
  Bitmap.popcount (Bitmap.word r.Snapshot.present b land Bitmap.mask ~pos:0 ~len)

let register t ~owner ~on_corrupt (snap : Snapshot.t) =
  let sharer =
    {
      owner;
      on_corrupt;
      snap;
      blocks = Hashtbl.create 64;
      charged = snap.Snapshot.present_pages;
      registered = true;
    }
  in
  List.iter
    (fun (r : Snapshot.region) ->
      for b = 0 to Snapshot.region_blocks r - 1 do
        let len = Snapshot.block_len r b in
        let pos = b * Snapshot.block_pages in
        let zmask = Bitmap.mask ~pos:0 ~len in
        (* All-zero blocks store no content (the zero map elides them
           already) — nothing to dedup, nothing to share. *)
        if Bitmap.word r.Snapshot.zeros b land zmask <> zmask then begin
          let hash = Snapshot.block_hash r b in
          let bucket =
            match Hashtbl.find_opt t.index hash with Some l -> l | None -> []
          in
          match List.find_opt (fun e -> block_equal e.words r pos len) bucket with
          | Some e ->
              (* Joined an existing canonical copy: this sharer stores
                 nothing for the block. *)
              e.holders <- (sharer, r, b) :: e.holders;
              Hashtbl.replace sharer.blocks (r.Snapshot.start_addr, b) e;
              sharer.charged <- sharer.charged - present_in_block r b len
          | None ->
              let e =
                {
                  hash;
                  words = Array.sub r.Snapshot.data pos len;
                  pages = present_in_block r b len;
                  holders = [ (sharer, r, b) ];
                }
              in
              Hashtbl.replace t.index hash (e :: bucket);
              Hashtbl.replace sharer.blocks (r.Snapshot.start_addr, b) e
        end
      done)
    snap.Snapshot.regions;
  t.registrations <- t.registrations + 1;
  sharer

let unregister t sharer =
  if sharer.registered then begin
    sharer.registered <- false;
    Hashtbl.iter
      (fun _ e ->
        e.holders <- List.filter (fun (h, _, _) -> h != sharer) e.holders;
        if e.holders = [] then
          let bucket = Hashtbl.find_opt t.index e.hash in
          match bucket with
          | None -> ()
          | Some l -> (
              match List.filter (fun e' -> e' != e) l with
              | [] -> Hashtbl.remove t.index e.hash
              | l' -> Hashtbl.replace t.index e.hash l'))
      sharer.blocks;
    Hashtbl.reset sharer.blocks
  end

let charged_pages sharer = sharer.charged
let owner sharer = sharer.owner

let fold_entries t ~init ~f =
  Hashtbl.fold (fun _ bucket acc -> List.fold_left f acc bucket) t.index init

let saved_pages t =
  fold_entries t ~init:0 ~f:(fun acc e ->
      acc + ((List.length e.holders - 1) * e.pages))

let unique_blocks t = fold_entries t ~init:0 ~f:(fun acc _ -> acc + 1)

let shared_blocks t =
  fold_entries t ~init:0 ~f:(fun acc e ->
      if List.length e.holders > 1 then acc + 1 else acc)

let blast t sharer ~region_addr ~block ~what =
  ignore t;
  match Hashtbl.find_opt sharer.blocks (region_addr, block) with
  | None -> 0  (* unshared (or all-zero) block: blast radius is the owner alone *)
  | Some e ->
      let others = List.filter (fun (h, _, _) -> h != sharer) e.holders in
      List.iter
        (fun (h, (r : Snapshot.region), b) ->
          h.on_corrupt { Snapshot.region_addr = r.Snapshot.start_addr; block = b; what })
        others;
      List.length others

(* Test / fault-modeling API: corrupt the [n]-th shared canonical copy.
   The index models ONE physical copy per entry, so the damage is written
   through every holder's stored region — exactly what a bitflip in a
   physically deduplicated store would do. Returns each holder's
   (owner, region, block) location so tests can assert the blast. *)
let corrupt_shared t n =
  let shared =
    fold_entries t ~init:[] ~f:(fun acc e ->
        if List.length e.holders > 1 then e :: acc else acc)
  in
  let shared = List.sort (fun a b -> compare a.hash b.hash) shared in
  match List.nth_opt shared n with
  | None -> None
  | Some e ->
      List.iter
        (fun (_, (r : Snapshot.region), b) ->
          let pos = b * Snapshot.block_pages in
          r.Snapshot.data.(pos) <- r.Snapshot.data.(pos) lxor 1)
        e.holders;
      Some
        (List.map
           (fun (h, (r : Snapshot.region), b) -> (h.owner, r.Snapshot.start_addr, b))
           e.holders)

(* Scrub the index itself: every canonical copy must still hash to its
   key, and every holder's stored block must still equal the canonical
   content (the model keeps per-holder arrays; physical dedup would make
   the second check vacuous). *)
let scrub_index t =
  let bad = ref None in
  (try
     Hashtbl.iter
       (fun hash bucket ->
         List.iter
           (fun e ->
             if
               Snapshot.hash_words e.words ~pos:0 ~len:(Array.length e.words) <> hash
             then begin
               bad :=
                 Some
                   {
                     Snapshot.region_addr = 0;
                     block = 0;
                     what = "dedup index: canonical block no longer matches its hash";
                   };
               raise Exit
             end;
             List.iter
               (fun (_, (r : Snapshot.region), b) ->
                 if not (block_equal e.words r (b * Snapshot.block_pages) (Array.length e.words))
                 then begin
                   bad :=
                     Some
                       {
                         Snapshot.region_addr = r.Snapshot.start_addr;
                         block = b;
                         what = "dedup index: holder diverged from canonical block";
                       };
                   raise Exit
                 end)
               e.holders)
           bucket)
       t.index
   with Exit -> ());
  !bad

let registrations t = t.registrations
