(** The restore engine (§4.4): revert a process to its snapshot.

    The manager interrupts the process, identifies all changes to the
    memory layout from /proc, reverses them by injecting syscalls, restores
    the contents of soft-dirty pages (coalescing contiguous runs into bulk
    copies), zeroes dirtied stack pages, returns newly paged pages to the
    lazy state with madvise, restores every thread's registers, resets the
    soft-dirty bits, and detaches.

    After [run] returns, the process state is identical to the snapshot —
    {!Verify.state_matches} checks this bit-for-bit, and the property tests
    exercise it against randomized mutation sequences. *)

val run :
  Gh_sim.Account.t -> Snapshot.t -> Gh_proc.Process.t -> (Breakdown.t, Gh_sim.Fault.site) result
(** Restore the process; all costs are charged to the manager's account and
    itemized in the returned breakdown. On [Error site] an injected fault
    interrupted the restore: the process was resumed but is in an unknown,
    partially-reverted state — the caller must treat it as poisoned and
    never serve a request from it (fail closed, §4.4).

    @raise Gh_proc.Ptrace.Already_attached if a tracer holds the process. *)

val run_exn : Gh_sim.Account.t -> Snapshot.t -> Gh_proc.Process.t -> Breakdown.t
(** {!run} for fault-free contexts. @raise Failure on a fault. *)
