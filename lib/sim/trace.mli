(** Lightweight structured event tracing for the simulator.

    A trace is a bounded ring buffer of timestamped events. Components that
    accept an optional trace emit one event per interesting transition
    (request dispatched, restore started, container idle, ...); the
    examples and the debugging workflow render them as a timeline.

    Tracing is off (and free) unless a trace is attached. *)

type t

type event = {
  at : Time_ns.t;  (** Simulated timestamp. *)
  category : string;  (** e.g. ["container"], ["restore"], ["client"]. *)
  what : string;  (** Short event label. *)
  detail : string;  (** Free-form context. *)
}

val create : ?capacity:int -> unit -> t
(** Ring buffer holding the most recent [capacity] events (default 4096). *)

val emit : t -> at:Time_ns.t -> category:string -> what:string -> string -> unit

val emitf :
  t -> at:Time_ns.t -> category:string -> what:string -> ('a, unit, string, unit) format4 -> 'a

val emitf_opt :
  t option ->
  at:Time_ns.t ->
  category:string ->
  what:string ->
  ('a, unit, string, unit) format4 ->
  'a
(** Like {!emitf} on [Some tr]; on [None] the format arguments are
    consumed without ever building the detail string (allocation-free). *)

val events : t -> event list
(** Oldest first. At most [capacity] events (older ones were dropped). *)

val dropped : t -> int
(** How many events were evicted by the ring. *)

val length : t -> int
val clear : t -> unit

val find : t -> category:string -> event list
(** Events of one category, oldest first. *)

val pp_event : Format.formatter -> event -> unit
val render : Format.formatter -> t -> unit
(** The whole timeline, one event per line. *)
