(* A self-balancing pool of OCaml 5 domains for embarrassingly parallel
   experiment sweeps.

   The scheduling discipline is a shared pile: every worker (the calling
   domain included) repeatedly steals the next unclaimed job index from one
   atomic counter, so a domain that lands a cheap cell immediately comes
   back for another while a domain stuck on a 196-second PolyBench cell
   keeps crunching — dynamic load balancing without per-worker deques,
   which is all a workload of independent, side-effect-free cells needs.

   Determinism contract: [parallel_map f xs] returns results in input
   order (each worker writes slot [i] of a pre-sized array), and since
   every job seeds its own RNG from its cell key, the merged output is
   byte-identical to [List.map f xs] no matter how the jobs interleave.
   Exceptions replay List.map's semantics too: every job runs to
   completion regardless of other jobs failing, and the exception of the
   *lowest* raising index is re-raised (with its backtrace) — exactly the
   one [List.map] would have surfaced first.

   Nested calls run serially on the calling worker: the pool already owns
   the machine's parallelism, so a sweep spawned from inside a cell must
   not multiply domains. *)

type error = { index : int; exn : exn; bt : Printexc.raw_backtrace }

let recommended_jobs () = Domain.recommended_domain_count ()

(* True while the current domain is executing pool jobs; nested
   [parallel_map] calls observe it and degrade to [List.map]. *)
let inside_pool = Domain.DLS.new_key (fun () -> false)

(* Minor/major words allocated by *worker* domains, accumulated at each
   domain's exit ([Gc.stat] is per-domain in OCaml 5, so the spawning
   domain's own counters never see this churn). Read by [--gc-stats]. *)
let gc_mutex = Mutex.create ()
let worker_minor_words = ref 0.0
let worker_major_words = ref 0.0

let reset_worker_gc_words () =
  Mutex.protect gc_mutex (fun () ->
      worker_minor_words := 0.0;
      worker_major_words := 0.0)

let worker_gc_words () =
  Mutex.protect gc_mutex (fun () -> (!worker_minor_words, !worker_major_words))

let serial_map f xs = List.map f xs

let parallel_map ?jobs f xs =
  let jobs = match jobs with Some j -> j | None -> recommended_jobs () in
  let n = List.length xs in
  if jobs <= 1 || n <= 1 || Domain.DLS.get inside_pool then serial_map f xs
  else begin
    let tasks = Array.of_list xs in
    let results = Array.make n None in
    let next = Atomic.make 0 in
    let err_mutex = Mutex.create () in
    let errors = ref ([] : error list) in
    let work () =
      let continue = ref true in
      while !continue do
        let i = Atomic.fetch_and_add next 1 in
        if i >= n then continue := false
        else
          match f tasks.(i) with
          | v -> results.(i) <- Some v
          | exception exn ->
              let bt = Printexc.get_raw_backtrace () in
              Mutex.protect err_mutex (fun () -> errors := { index = i; exn; bt } :: !errors)
      done
    in
    let worker () =
      Domain.DLS.set inside_pool true;
      let st0 = Gc.quick_stat () in
      Fun.protect work ~finally:(fun () ->
          let st1 = Gc.quick_stat () in
          Mutex.protect gc_mutex (fun () ->
              worker_minor_words := !worker_minor_words +. st1.Gc.minor_words -. st0.Gc.minor_words;
              worker_major_words :=
                !worker_major_words +. st1.Gc.major_words -. st0.Gc.major_words))
    in
    let domains = List.init (min jobs n - 1) (fun _ -> Domain.spawn worker) in
    (* The calling domain is a worker too; flag it so f's own nested
       sweeps serialize, and restore the flag whatever happens. *)
    Domain.DLS.set inside_pool true;
    Fun.protect work ~finally:(fun () -> Domain.DLS.set inside_pool false);
    List.iter Domain.join domains;
    match List.sort (fun a b -> compare a.index b.index) !errors with
    | [] ->
        Array.to_list
          (Array.map (function Some v -> v | None -> assert false) results)
    | first :: _ -> Printexc.raise_with_backtrace first.exn first.bt
  end
