(** Sim-clock-windowed time series over a {!Metrics} registry.

    A collector turns the registry's point-in-time state into series —
    per-window counter deltas, gauge samples at window close, and
    caller-observed {!Sketch} quantile windows — without ever touching
    the engine: windows roll lazily when instrumented code hands it the
    clock via {!tick}/{!observe}. Attaching one is sim-time neutral.

    Window [w] covers [[w * window_ns, (w+1) * window_ns)] on the sim
    clock, so series collected independently (per node, per domain)
    {!merge} by window index: counter deltas add, gauge samples union,
    sketches {!Sketch.merge} — all order-independent and bit-identical
    under any sharding. *)

type t

val default_window_ns : Time_ns.t
(** 100 ms of simulated time. *)

val create : ?window_ns:Time_ns.t -> ?alpha:float -> Metrics.t -> t
(** [alpha] is the relative-error bound of the per-window sketches
    (default 0.01). @raise Invalid_argument if [window_ns <= 0]. *)

val window_ns : t -> Time_ns.t
val alpha : t -> float
val window_of : t -> at:Time_ns.t -> int

val tick : t -> now:Time_ns.t -> unit
(** Roll windows up to [now]: if the clock has entered a new window,
    close the old one (record counter deltas and gauge samples). Cheap
    when nothing changed; call it from any site that holds the clock. *)

val observe : t -> now:Time_ns.t -> string -> float -> unit
(** Add a sample to the named sketch series in the current window
    (rolls first, like {!tick}). *)

val flush : t -> now:Time_ns.t -> unit
(** Close the in-progress window so every recorded delta/sample is
    visible to the accessors and exporters. Call once before export. *)

val rolled_windows : t -> int

val counter_points : t -> string -> (int * int) list
(** (window, delta) pairs, oldest first; zero deltas are never stored. *)

val gauge_points : t -> string -> (int * float) list
val sketch_windows : t -> string -> (int * Sketch.t) list

val names : t -> (string * [ `Counter | `Gauge | `Sketch ]) list
(** Every series, sorted by name within each kind. *)

val recent : t -> since:Time_ns.t -> (string * (int * float) list) list
(** Counter deltas and gauge samples in windows at or after [since] —
    the flight recorder's pre-failure metric view. Sorted by name. *)

val merge : t -> t -> t
(** Combine two collectors' series by window index. The result is a
    read-only view (it has no registry; [tick] on it records nothing).
    Bit-identical regardless of merge order or sharding.
    @raise Invalid_argument on a window or alpha mismatch. *)

val render_prom : Format.formatter -> t -> unit
(** Prometheus text exposition: sanitized metric names (original dotted
    name as a [series] label), one timestamped sample per window. *)

val to_json : t -> Json.t
