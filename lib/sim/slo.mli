(** Declarative service-level objectives with multi-window,
    multi-burn-rate alerting (the SRE-workbook recipe, scaled to
    simulated time) and hysteresis.

    An objective classifies each completion as good or bad; {!tick}
    evaluates every rule's burn rate — error rate over the error budget
    [1 - target] — across a long and a short window, firing when both
    burn (real spend that is still happening) and clearing after
    [clear_after] consecutive clean evaluations. Firing and clearing
    emit into the attached {!Trace} (category ["slo"]) and {!Metrics}
    ([slo.<name>.fired] / [.cleared] / [.good] / [.bad] counters and a
    [.firing] gauge). Everything only reads the clock it is handed:
    evaluation never schedules engine work or perturbs the run. *)

type objective =
  | Availability of { target : float }  (** Fraction of requests served. *)
  | Latency of { limit_ms : float; target : float }
      (** Fraction of requests answered within [limit_ms] (a failed
          request also violates: the user never got an answer). *)
  | Cold_start of { target : float }
      (** Fraction of serves not paying a cold start. *)

val objective_name : objective -> string

type rule = { long_ns : Time_ns.t; short_ns : Time_ns.t; burn : float }

val default_rules : base_ns:Time_ns.t -> rule list
(** The workbook's fast (14.4x over 5m/1h) and slow (6x over 30m/6h)
    pairs with the fast short window scaled to [base_ns]. *)

type config = {
  name : string;
  objective : objective;
  rules : rule list;
  clear_after : int;  (** Clean {!tick}s before a firing alert clears. *)
  min_events : int;  (** Long-window events required before firing. *)
}

type alert = {
  a_at : Time_ns.t;
  a_kind : [ `Fire | `Clear ];
  a_rule : int;  (** Tripping rule index on fire; [-1] on clear. *)
  a_burn_long : float;
  a_burn_short : float;
}

type t

val create : ?trace:Trace.t -> ?metrics:Metrics.t -> config -> t
(** @raise Invalid_argument on an empty rule list, a target outside
    (0, 1), non-positive burn, or [long_ns < short_ns]. *)

val name : t -> string
val config : t -> config

val record : t -> now:Time_ns.t -> good:bool -> unit
(** One classified event at [now]. *)

val record_completion :
  t -> now:Time_ns.t -> ok:bool -> e2e_ms:float -> cold:bool -> unit
(** Classify one request completion under this SLO's objective and
    {!record} it ([e2e_ms] is ignored by availability, [cold] by
    latency; failed requests are invisible to the cold-start SLI). *)

val tick : t -> now:Time_ns.t -> unit
(** Evaluate the rules and update firing state. Call from sites that
    already hold the clock (heartbeats, completions). *)

val firing : t -> bool
val alerts : t -> alert list
(** Fire/clear transitions, oldest first. *)

val totals : t -> int * int
(** Lifetime (good, bad) event counts. *)

val standard :
  ?trace:Trace.t ->
  ?metrics:Metrics.t ->
  ?base_ns:Time_ns.t ->
  ?latency_limit_ms:float ->
  ?availability_target:float ->
  unit ->
  t list
(** The fleet's stock objectives: availability (default 99.9%), latency
    under [latency_limit_ms] at 99%, and cold-start rate, each on
    {!default_rules} with [base_ns] (default 200 ms sim time). *)

val to_json : t -> Json.t
