(** Per-domain reuse pools for the big page-data arrays (fork clones,
    VMA resizes, snapshot copy buffers).

    Acquire/release touch only the calling domain's pool (via
    [Domain.DLS]), so there is no synchronization on the hot path and the
    pool composes with {!Domain_pool} sharding by construction. Arrays
    are keyed by exact length; [acquire_zeroed] is observationally
    identical to [Array.make n 0]. Releasing an array the caller still
    reads from is the usual use-after-free hazard — release only at a
    clear end-of-life point (a reaped fork child, a replaced backing
    array).

    Setting [GH_BUFFER_POOL=off] in the environment disables reuse
    entirely (every acquire allocates, every release is dropped) — the
    baseline side of the GC-churn comparison. *)

val acquire_zeroed : int -> int array
(** All slots zero, like [Array.make n 0]. *)

val acquire_raw : int -> int array
(** Contents unspecified: the caller must overwrite every slot before
    reading any. *)

val release : int array -> unit
(** Hand an array back to this domain's pool. Drops it (for the GC) once
    the pool holds 64 M words. Never release an array that anything can
    still read. *)

type stats = { hits : int; misses : int; releases : int; held_words : int }

val stats : unit -> stats
(** This domain's pool counters (for [--gc-stats] reporting). *)
