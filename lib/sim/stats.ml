type summary = {
  n : int;
  mean : float;
  std : float;
  min : float;
  max : float;
  p10 : float;
  p25 : float;
  median : float;
  p75 : float;
  p90 : float;
  p95 : float;
  p99 : float;
}

let mean a =
  if Array.length a = 0 then invalid_arg "Stats.mean: empty sample";
  Array.fold_left ( +. ) 0.0 a /. float_of_int (Array.length a)

let std a =
  let n = Array.length a in
  if n < 2 then 0.0
  else begin
    let m = mean a in
    let acc = Array.fold_left (fun acc x -> acc +. ((x -. m) *. (x -. m))) 0.0 a in
    sqrt (acc /. float_of_int (n - 1))
  end

let percentile sorted q =
  let n = Array.length sorted in
  if n = 0 then invalid_arg "Stats.percentile: empty sample";
  if n = 1 then sorted.(0)
  else begin
    let rank = q /. 100.0 *. float_of_int (n - 1) in
    let lo = int_of_float (floor rank) in
    let hi = int_of_float (ceil rank) in
    if lo = hi then sorted.(lo)
    else begin
      let frac = rank -. float_of_int lo in
      sorted.(lo) +. (frac *. (sorted.(hi) -. sorted.(lo)))
    end
  end

let summarize a =
  if Array.length a = 0 then invalid_arg "Stats.summarize: empty sample";
  if Array.exists Float.is_nan a then invalid_arg "Stats.summarize: NaN in sample";
  let sorted = Array.copy a in
  Array.sort Float.compare sorted;
  let p q = percentile sorted q in
  {
    n = Array.length a;
    mean = mean a;
    std = std a;
    min = sorted.(0);
    max = sorted.(Array.length sorted - 1);
    p10 = p 10.0;
    p25 = p 25.0;
    median = p 50.0;
    p75 = p 75.0;
    p90 = p 90.0;
    p95 = p 95.0;
    p99 = p 99.0;
  }

let pp_summary ppf s =
  Format.fprintf ppf "n=%d mean=%.3f +/-%.3f median=%.3f p95=%.3f [%.3f, %.3f]"
    s.n s.mean s.std s.median s.p95 s.min s.max

module Online = struct
  type t = { mutable n : int; mutable mu : float; mutable m2 : float }

  let create () = { n = 0; mu = 0.0; m2 = 0.0 }

  let add t x =
    t.n <- t.n + 1;
    let delta = x -. t.mu in
    t.mu <- t.mu +. (delta /. float_of_int t.n);
    t.m2 <- t.m2 +. (delta *. (x -. t.mu))

  let count t = t.n
  let mean t = t.mu
  let std t = if t.n < 2 then 0.0 else sqrt (t.m2 /. float_of_int (t.n - 1))

  let merge a b =
    if a.n = 0 then { n = b.n; mu = b.mu; m2 = b.m2 }
    else if b.n = 0 then { n = a.n; mu = a.mu; m2 = a.m2 }
    else begin
      let n = a.n + b.n in
      let delta = b.mu -. a.mu in
      let mu = a.mu +. (delta *. float_of_int b.n /. float_of_int n) in
      let m2 =
        a.m2 +. b.m2
        +. (delta *. delta *. float_of_int a.n *. float_of_int b.n /. float_of_int n)
      in
      { n; mu; m2 }
    end
end
