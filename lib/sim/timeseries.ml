(* Sim-clock-windowed series over a Metrics registry.

   The collector never schedules engine work, draws randomness, or
   charges simulated time: windows roll lazily whenever an instrumented
   component hands it the current clock ([tick]/[observe] at sites that
   already hold [now]). Attaching one is therefore sim-time neutral and
   a run's figures stay bit-identical with collection on or off.

   Three series kinds:
   - counters: per-window deltas of every registry counter (zero deltas
     are dropped, so quiet windows cost nothing);
   - gauges: the registry value sampled at each window close;
   - sketches: caller-observed samples (latencies, restore steps)
     aggregated per window in a mergeable {!Sketch}.

   Window indexes come straight off the sim clock (window [w] covers
   [w * window_ns, (w+1) * window_ns)), so series collected by
   different collectors — per node, per domain — merge by window index:
   counter deltas add, gauge samples union, sketches {!Sketch.merge}.
   Everything exported is sorted (names, window indexes), never in
   hashtable order, so the merge is bit-identical under any sharding. *)

type t = {
  registry : Metrics.t option;  (* None for merge results *)
  window_ns : Time_ns.t;
  alpha : float;
  mutable current : int;  (* window index being filled *)
  mutable rolled : int;  (* closed windows (diagnostic) *)
  last_counts : (string, int) Hashtbl.t;  (* counter -> value at last roll *)
  counters : (string, (int * int) list ref) Hashtbl.t;  (* newest first *)
  gauges : (string, (int * float) list ref) Hashtbl.t;  (* newest first *)
  sketches : (string, (int * Sketch.t) list ref) Hashtbl.t;  (* newest first *)
}

let default_window_ns = Time_ns.of_ms 100.0

let make ?(window_ns = default_window_ns) ?(alpha = 0.01) registry =
  if window_ns <= 0 then invalid_arg "Timeseries.create: window_ns must be positive";
  {
    registry;
    window_ns;
    alpha;
    current = 0;
    rolled = 0;
    last_counts = Hashtbl.create 64;
    counters = Hashtbl.create 64;
    gauges = Hashtbl.create 64;
    sketches = Hashtbl.create 64;
  }

let create ?window_ns ?alpha registry = make ?window_ns ?alpha (Some registry)
let window_ns t = t.window_ns
let alpha t = t.alpha
let window_of t ~at = at / t.window_ns
let rolled_windows t = t.rolled

let push tbl name point =
  match Hashtbl.find_opt tbl name with
  | Some r -> r := point :: !r
  | None -> Hashtbl.replace tbl name (ref [ point ])

(* Close the window currently being filled: counter deltas since the
   last close and a sample of every gauge, attributed to [t.current].
   Iteration follows the registry's sorted snapshot — never hashtable
   order — so two collectors over equal registries close identically. *)
let close_window t =
  (match t.registry with
  | None -> ()
  | Some reg ->
      List.iter
        (fun (name, metric) ->
          match metric with
          | Metrics.Counter c ->
              let v = Metrics.counter_value c in
              let prev =
                match Hashtbl.find_opt t.last_counts name with Some p -> p | None -> 0
              in
              if v <> prev then begin
                Hashtbl.replace t.last_counts name v;
                push t.counters name (t.current, v - prev)
              end
          | Metrics.Gauge g -> push t.gauges name (t.current, Metrics.gauge_value g)
          | Metrics.Histogram _ -> ())
        (Metrics.snapshot reg));
  t.rolled <- t.rolled + 1

let tick t ~now =
  let w = window_of t ~at:now in
  if w > t.current then begin
    close_window t;
    t.current <- w
  end

let observe t ~now name v =
  tick t ~now;
  let sk =
    match Hashtbl.find_opt t.sketches name with
    | Some r -> (
        match !r with
        | (w, sk) :: _ when w = t.current -> sk
        | _ ->
            let sk = Sketch.create ~alpha:t.alpha () in
            r := (t.current, sk) :: !r;
            sk)
    | None ->
        let sk = Sketch.create ~alpha:t.alpha () in
        Hashtbl.replace t.sketches name (ref [ (t.current, sk) ]);
        sk
  in
  Sketch.observe sk v

(* Force the in-progress window closed (for export at end of run). The
   cursor moves past it so a later [tick] cannot close it twice. *)
let flush t ~now =
  tick t ~now;
  close_window t;
  t.current <- t.current + 1

(* ---- accessors (exported data is always oldest-first, sorted) -------- *)

let sorted_names tbl = Hashtbl.fold (fun k _ acc -> k :: acc) tbl [] |> List.sort compare

let counter_points t name =
  match Hashtbl.find_opt t.counters name with Some r -> List.rev !r | None -> []

let gauge_points t name =
  match Hashtbl.find_opt t.gauges name with Some r -> List.rev !r | None -> []

let sketch_windows t name =
  match Hashtbl.find_opt t.sketches name with Some r -> List.rev !r | None -> []

let names t =
  List.map (fun n -> (n, `Counter)) (sorted_names t.counters)
  @ List.map (fun n -> (n, `Gauge)) (sorted_names t.gauges)
  @ List.map (fun n -> (n, `Sketch)) (sorted_names t.sketches)

(* Counter deltas and gauge samples in windows at or after [since] — the
   flight recorder's "metric deltas over the pre-failure window". *)
let recent t ~since =
  let w0 = since / t.window_ns in
  let cut points = List.filter (fun (w, _) -> w >= w0) points in
  List.filter_map
    (fun name ->
      match cut (List.map (fun (w, d) -> (w, float_of_int d)) (counter_points t name)) with
      | [] -> None
      | pts -> Some (name, pts))
    (sorted_names t.counters)
  @ List.filter_map
      (fun name ->
        match cut (gauge_points t name) with
        | [] -> None
        | pts -> Some (name, pts))
      (sorted_names t.gauges)

(* ---- merge ----------------------------------------------------------- *)

let merge_points combine a b =
  (* Both inputs oldest-first with strictly increasing windows. *)
  let rec go a b acc =
    match (a, b) with
    | [], rest | rest, [] -> List.rev_append acc rest
    | (wa, va) :: ta, (wb, vb) :: tb ->
        if wa < wb then go ta b ((wa, va) :: acc)
        else if wb < wa then go a tb ((wb, vb) :: acc)
        else go ta tb ((wa, combine va vb) :: acc)
  in
  go a b []

let merge a b =
  if a.window_ns <> b.window_ns then invalid_arg "Timeseries.merge: window_ns mismatch";
  if a.alpha <> b.alpha then invalid_arg "Timeseries.merge: alpha mismatch";
  let m = make ~window_ns:a.window_ns ~alpha:a.alpha None in
  m.current <- max a.current b.current;
  m.rolled <- a.rolled + b.rolled;
  let union_names tbl_a tbl_b =
    List.sort_uniq compare (sorted_names tbl_a @ sorted_names tbl_b)
  in
  List.iter
    (fun name ->
      let pts = merge_points ( + ) (counter_points a name) (counter_points b name) in
      if pts <> [] then Hashtbl.replace m.counters name (ref (List.rev pts)))
    (union_names a.counters b.counters);
  List.iter
    (fun name ->
      (* Gauge samples from distinct collectors are distinct observations:
         keep both, ordered by (window, value) for determinism. *)
      let pts =
        List.sort compare (gauge_points a name @ gauge_points b name)
      in
      if pts <> [] then Hashtbl.replace m.gauges name (ref (List.rev pts)))
    (union_names a.gauges b.gauges);
  List.iter
    (fun name ->
      let pts =
        merge_points Sketch.merge (sketch_windows a name) (sketch_windows b name)
      in
      if pts <> [] then Hashtbl.replace m.sketches name (ref (List.rev pts)))
    (union_names a.sketches b.sketches);
  m

(* ---- exporters ------------------------------------------------------- *)

let sanitize name =
  String.map
    (fun c ->
      match c with 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' -> c | _ -> '_')
    name

let window_end_ms t w = Time_ns.to_ms ((w + 1) * t.window_ns)

(* Prometheus text exposition: one sample per closed window, timestamped
   at the window's end (milliseconds). The original (dotted) series name
   rides in a label; the metric name itself is sanitized. *)
let render_prom ppf t =
  let pname name = "gh_" ^ sanitize name in
  List.iter
    (fun name ->
      let p = pname name in
      Format.fprintf ppf "# TYPE %s counter@\n" p;
      List.iter
        (fun (w, d) ->
          Format.fprintf ppf "%s{series=%S} %d %.0f@\n" p name d (window_end_ms t w))
        (counter_points t name))
    (sorted_names t.counters);
  List.iter
    (fun name ->
      let p = pname name in
      Format.fprintf ppf "# TYPE %s gauge@\n" p;
      List.iter
        (fun (w, v) ->
          Format.fprintf ppf "%s{series=%S} %g %.0f@\n" p name v (window_end_ms t w))
        (gauge_points t name))
    (sorted_names t.gauges);
  List.iter
    (fun name ->
      let p = pname name in
      Format.fprintf ppf "# TYPE %s summary@\n" p;
      List.iter
        (fun (w, sk) ->
          let ts = window_end_ms t w in
          List.iter
            (fun q ->
              match Sketch.quantile sk q with
              | Some v ->
                  Format.fprintf ppf "%s{series=%S,quantile=\"%g\"} %g %.0f@\n" p name q v
                    ts
              | None -> ())
            [ 0.5; 0.9; 0.99 ];
          Format.fprintf ppf "%s_count{series=%S} %d %.0f@\n" p name (Sketch.count sk) ts)
        (sketch_windows t name))
    (sorted_names t.sketches)

let to_json t =
  let counters =
    List.map
      (fun name ->
        Json.Assoc
          [
            ("name", Json.String name);
            ( "points",
              Json.List
                (List.map
                   (fun (w, d) -> Json.List [ Json.Int w; Json.Int d ])
                   (counter_points t name)) );
          ])
      (sorted_names t.counters)
  in
  let gauges =
    List.map
      (fun name ->
        Json.Assoc
          [
            ("name", Json.String name);
            ( "points",
              Json.List
                (List.map
                   (fun (w, v) -> Json.List [ Json.Int w; Json.Float v ])
                   (gauge_points t name)) );
          ])
      (sorted_names t.gauges)
  in
  let sketches =
    List.map
      (fun name ->
        Json.Assoc
          [
            ("name", Json.String name);
            ( "windows",
              Json.List
                (List.map
                   (fun (w, sk) ->
                     Json.Assoc [ ("w", Json.Int w); ("sketch", Sketch.to_json sk) ])
                   (sketch_windows t name)) );
          ])
      (sorted_names t.sketches)
  in
  Json.Assoc
    [
      ("window_ns", Json.Int t.window_ns);
      ("alpha", Json.Float t.alpha);
      ("counters", Json.List counters);
      ("gauges", Json.List gauges);
      ("sketches", Json.List sketches);
    ]
