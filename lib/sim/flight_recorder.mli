(** A failure flight recorder: bounded ring of forensic dumps, each
    freezing the recent past — trace events, closed spans, and windowed
    metric deltas — at the instant a failure edge fires (container
    poisoned, node quarantine, breaker open, scrub corruption).

    The recorder copies nothing until {!snapshot} is called from a
    failure handler that already holds the clock; it never schedules
    engine work, so recording is sim-time neutral. *)

type dump = {
  d_at : Time_ns.t;
  d_reason : string;
  d_detail : string;
  d_node : string;
  d_window_ns : Time_ns.t;
  d_events : Trace.event list;  (** Within [[d_at - window, d_at]], oldest first. *)
  d_spans : Span.record list;  (** Closed spans overlapping the window. *)
  d_series : (string * (int * float) list) list;
      (** Counter deltas / gauge samples in windows inside the window. *)
}

type t

val create :
  ?capacity:int ->
  ?window_ns:Time_ns.t ->
  ?trace:Trace.t ->
  ?spans:Span.t ->
  ?series:Timeseries.t ->
  name:string ->
  unit ->
  t
(** Ring of at most [capacity] dumps (default 16), each covering the
    [window_ns] (default 500 ms sim time) before the failure.
    @raise Invalid_argument on a non-positive capacity or window. *)

val name : t -> string
val window_ns : t -> Time_ns.t

val snapshot :
  t -> now:Time_ns.t -> ?node:string -> reason:string -> detail:string -> unit -> dump
(** Freeze the pre-failure window from the attached collectors. The
    oldest dump is evicted once the ring is full. *)

val dumps : t -> dump list
(** Retained dumps, oldest first. *)

val total : t -> int
(** Dumps ever taken (including evicted ones). *)

val dump_to_json : dump -> Json.t
val to_json : t -> Json.t

val validate : Json.t -> (int, string) result
(** Schema-check an exported recorder document (like
    {!Span.validate_chrome}): every dump must carry its timestamp,
    reason, node and window, and every event/span/series point must lie
    within that dump's pre-failure window. Returns the dump count. *)
