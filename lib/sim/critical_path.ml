(* Critical-path attribution over request span trees.

   For every completed request the analyzer walks its span tree and
   charges each phase its *self time* (duration minus the duration of its
   children), then aggregates those charges over percentile tail buckets
   of end-to-end latency: the p99 bucket answers "what dominates the
   slowest 1% of requests?" — the question Groundhog's off-path-restore
   claim lives or dies by.

   Off-path work (a restore deferred past the response, marked with the
   ["offpath"] attribute) is excluded together with its subtree: it did
   not contribute to the request's latency. The request total prefers the
   root's ["e2e_ns"] attribute (stamped by whichever component closed the
   request) over the root span's extent, which may include the off-path
   tail. Time under the root no child accounts for is reported as
   ["(unattributed)"]. *)

type phase = { phase_name : string; self_ns : int; share : float }

type bucket = {
  label : string;  (** e.g. ["p99"]. *)
  cutoff_ns : int;  (** Requests with e2e >= cutoff fall in the bucket. *)
  n_requests : int;
  phases : phase list;  (** Largest share first. *)
}

type report = { total_requests : int; buckets : bucket list }

let is_offpath r = List.mem_assoc "offpath" r.Span.attrs

(* (total_ns, phase self-times) for one request tree. *)
let attribute_request children root =
  let total =
    match List.assoc_opt "e2e_ns" root.Span.attrs with
    | Some s -> ( match int_of_string_opt s with Some n -> n | None -> 0)
    | None -> ( match Span.duration_ns root with Some d -> d | None -> 0)
  in
  let phase_ns : (string, int) Hashtbl.t = Hashtbl.create 16 in
  let add name ns =
    Hashtbl.replace phase_ns name (ns + Option.value ~default:0 (Hashtbl.find_opt phase_ns name))
  in
  let kids r =
    List.filter (fun c -> not (is_offpath c)) (Option.value ~default:[] (children r.Span.id))
  in
  let rec walk r =
    let cs = kids r in
    let child_ns =
      List.fold_left
        (fun acc c -> acc + Option.value ~default:0 (Span.duration_ns c))
        0 cs
    in
    (match Span.duration_ns r with
    | Some d when r.Span.id <> root.Span.id -> add r.Span.name (max 0 (d - child_ns))
    | _ -> ());
    List.iter walk cs
  in
  walk root;
  let attributed = Hashtbl.fold (fun _ ns acc -> acc + ns) phase_ns 0 in
  if total > attributed then add "(unattributed)" (total - attributed);
  (total, phase_ns)

let default_percentiles = [ 50.0; 90.0; 99.0 ]

let analyze ?(percentiles = default_percentiles) spans =
  let records = Span.records spans in
  let by_parent : (int, Span.record list) Hashtbl.t = Hashtbl.create 64 in
  List.iter
    (fun r ->
      match r.Span.parent with
      | Some p -> Hashtbl.replace by_parent p (r :: Option.value ~default:[] (Hashtbl.find_opt by_parent p))
      | None -> ())
    records;
  let children id = Option.map List.rev (Hashtbl.find_opt by_parent id) in
  let roots =
    List.filter
      (fun r -> r.Span.parent = None && r.Span.name = "request" && not (Span.is_open r))
      records
  in
  let attributed = List.map (attribute_request children) roots in
  let totals = Array.of_list (List.map fst attributed) in
  let sorted = Array.copy totals in
  Array.sort compare sorted;
  let bucket q =
    let label = Printf.sprintf "p%g" q in
    if Array.length sorted = 0 then
      { label; cutoff_ns = 0; n_requests = 0; phases = [] }
    else begin
      let cutoff =
        int_of_float (Stats.percentile (Array.map float_of_int sorted) q)
      in
      let members = List.filter (fun (total, _) -> total >= cutoff) attributed in
      let members = if members = [] then [ List.hd attributed ] else members in
      let denom =
        List.fold_left (fun acc (total, _) -> acc + total) 0 members |> max 1
      in
      let sums : (string, int) Hashtbl.t = Hashtbl.create 16 in
      List.iter
        (fun (_, phase_ns) ->
          Hashtbl.iter
            (fun name ns ->
              Hashtbl.replace sums name (ns + Option.value ~default:0 (Hashtbl.find_opt sums name)))
            phase_ns)
        members;
      let phases =
        Hashtbl.fold
          (fun phase_name self_ns acc ->
            { phase_name; self_ns; share = float_of_int self_ns /. float_of_int denom } :: acc)
          sums []
        |> List.sort (fun a b ->
               match compare b.self_ns a.self_ns with
               | 0 -> compare a.phase_name b.phase_name
               | c -> c)
      in
      { label; cutoff_ns = cutoff; n_requests = List.length members; phases }
    end
  in
  { total_requests = List.length roots; buckets = List.map bucket percentiles }

let dominating bucket = match bucket.phases with [] -> None | p :: _ -> Some p

let pp_bucket ppf b =
  match dominating b with
  | None -> Format.fprintf ppf "%-4s (no requests)" b.label
  | Some top ->
      Format.fprintf ppf "%-4s (n=%d, e2e >= %.2f ms) dominated by %s: %.1f%%" b.label
        b.n_requests (Time_ns.to_ms b.cutoff_ns) top.phase_name (100.0 *. top.share);
      let rest = List.filteri (fun i _ -> i > 0 && i <= 4) b.phases in
      if rest <> [] then begin
        Format.fprintf ppf "  [";
        List.iteri
          (fun i p ->
            Format.fprintf ppf "%s%s %.1f%%"
              (if i > 0 then ", " else "")
              p.phase_name (100.0 *. p.share))
          rest;
        Format.fprintf ppf "]"
      end

let pp ppf report =
  Format.fprintf ppf "@[<v>critical path over %d requests:@ " report.total_requests;
  List.iter (fun b -> Format.fprintf ppf "%a@ " pp_bucket b) report.buckets;
  Format.fprintf ppf "@]"
