(** A registry of named counters, gauges and histograms.

    Components look a handle up once (by name, at creation time) and
    mutate it directly on the hot path. Histograms keep exact count /
    mean / std over every observation plus a bounded sample for
    quantiles; the sample is either exhaustive ({!All}, a {!Reservoir}
    whose seed the caller pins — bit-identical to using a raw reservoir)
    or deterministic head-based sampling ({!Head}). Nothing here touches
    wall clocks or shared randomness, so registries are sim-time neutral
    and replay identically under a fixed seed. *)

type counter
type gauge
type histogram

type sampling =
  | All
  | Head of { head : int; stride : int }
      (** Keep the first [head] observations, then every [stride]-th. *)

type metric = Counter of counter | Gauge of gauge | Histogram of histogram

type t

val create : unit -> t

val counter : t -> string -> counter
(** Find-or-create. @raise Invalid_argument if the name is registered as
    a different kind. *)

val gauge : t -> string -> gauge

val histogram : ?capacity:int -> ?seed:int -> ?sampling:sampling -> t -> string -> histogram
(** Find-or-create (creation parameters are ignored on a hit). Default:
    capacity 4096, seed [Hashtbl.hash name], [Head {head = 512; stride = 16}]. *)

val default_sampling : sampling

val incr : ?by:int -> counter -> unit
val counter_value : counter -> int
val set : gauge -> float -> unit
val gauge_value : gauge -> float

val observe : histogram -> float -> unit
val values : histogram -> float list
(** The stored sample, newest first (exact and complete while the
    observation count is below capacity under [All]). *)

val observed : histogram -> int
(** Observations offered, sampled or not. *)

val hist_count : histogram -> int
val hist_mean : histogram -> float
val hist_std : histogram -> float

val counter_name : counter -> string
val gauge_name : gauge -> string
val histogram_name : histogram -> string

val find : t -> string -> metric option
val find_counter : t -> string -> counter option
val find_histogram : t -> string -> histogram option

val snapshot : t -> (string * metric) list
(** Every metric, sorted by name. *)

val render : Format.formatter -> t -> unit
(** Text snapshot, one sorted line per metric — stable for golden-file
    diffs. *)

val to_json : t -> Json.t
