(** Shard independent experiment cells across OCaml 5 domains.

    [parallel_map] preserves input order and replays [List.map]'s
    exception semantics, so as long as each job is a pure function of its
    input (the harness cells all seed their own RNG from the cell key),
    the merged output is byte-identical to the serial run — the
    determinism contract DESIGN §15 spells out. *)

val recommended_jobs : unit -> int
(** [Domain.recommended_domain_count ()]: the pool size that saturates
    this machine. *)

val parallel_map : ?jobs:int -> ('a -> 'b) -> 'a list -> 'b list
(** [parallel_map ~jobs f xs] applies [f] to every element of [xs] using
    up to [jobs] domains (the caller is one of them; [jobs] defaults to
    {!recommended_jobs}) and returns the results in input order.

    Idle domains steal the next unclaimed job from a shared atomic pile,
    so skewed per-job costs self-balance. With [jobs <= 1], a singleton
    or empty list, or when called from inside a pool job (nested sweeps
    must not multiply domains), this is exactly [List.map f xs] — no
    domain is spawned.

    If any jobs raise, every remaining job still runs, and the exception
    of the lowest raising index is re-raised with its backtrace — the
    same exception [List.map f xs] would have produced. *)

val worker_gc_words : unit -> float * float
(** (minor, major) words allocated inside completed worker domains since
    the last {!reset_worker_gc_words} — [Gc.stat] is per-domain in OCaml
    5, so the spawning domain's own counters miss this churn. The
    caller's share of pool work is not included (it is already in the
    caller's [Gc.stat]). *)

val reset_worker_gc_words : unit -> unit
