(** A log-bucketed quantile sketch (DDSketch-style) with deterministic,
    order-independent merging.

    Observations land in geometric buckets whose midpoints estimate any
    contained value within relative error [alpha]; all state is integer
    counts plus an exact min/max, so {!merge} is bucket-wise integer
    addition — associative, commutative, and bit-identical however the
    stream was sharded. There is deliberately no floating-point running
    sum (float addition is order-dependent and would break exact merge
    equality under the Domain_pool discipline). *)

type t

val create : ?alpha:float -> unit -> t
(** Default relative-error bound [alpha] = 0.01.
    @raise Invalid_argument unless [0 < alpha < 1]. *)

val alpha : t -> float

val observe : t -> float -> unit
(** @raise Invalid_argument on NaN or negative values. *)

val count : t -> int
val zero_count : t -> int
(** Observations below the indexable threshold (1e-9), held exactly. *)

val is_empty : t -> bool
val min_value : t -> float option
val max_value : t -> float option

val quantile : t -> float -> float option
(** [quantile t q] estimates the value of rank [floor (q * (count - 1))]
    within relative error [alpha], clamped to the observed min/max
    (exact at [q = 0.0] and [q = 1.0]); [None] while empty.
    @raise Invalid_argument unless [0 <= q <= 1]. *)

val merge : t -> t -> t
(** A fresh sketch holding both streams. Associative, commutative, and
    {!equal}-identical across any sharding of the same observations.
    @raise Invalid_argument on an alpha mismatch. *)

val equal : t -> t -> bool
(** Structural equality of all state: counts, buckets, min/max. *)

val buckets : t -> (int * int) list
(** Nonzero (bucket index, count) pairs, sorted by index. *)

val to_json : t -> Json.t
val pp : Format.formatter -> t -> unit
