(** Minimal JSON values: compact printing and strict parsing.

    Covers exactly what the observability exporters need (Chrome
    trace-event files, metrics snapshots) with no external dependency.
    Numbers parse to [Int] when the literal has no fraction or exponent,
    [Float] otherwise. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Assoc of (string * t) list

val to_string : t -> string
(** Compact (single-line) rendering with full string escaping. *)

val to_buffer : Buffer.t -> t -> unit

val of_string : string -> (t, string) result
(** Strict parse of a complete document; [Error] carries the offset. *)

val member : string -> t -> t option
(** Field lookup on an [Assoc]; [None] on anything else. *)

val to_number : t -> float option
(** [Int] or [Float] as a float. *)

val to_str : t -> string option
val to_list : t -> t list option
