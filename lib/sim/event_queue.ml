(* Calendar (bucketed-ring) priority queue for the event engine.

   The binary [Heap] pays an O(log n) pointer-chasing sift per operation and
   allocates a boxed entry per push; at the million-pending scale of the
   cluster sweeps both costs dominate the hot loop. This queue instead hashes
   each key into a ring of [ring_size] buckets of width [2^bits] key units,
   so in the common case a push is an array append and a pop reads the
   cursor's bucket. Each bucket is a tiny structure-of-arrays min-heap on
   (key, seq), which keeps the total order — including the FIFO tie-break
   among equal keys — exactly the binary heap's, while sift depth stays at
   the handful of entries sharing one bucket.

   Layout invariants:
   - The ring covers the virtual bucket indices [wbase, wbase + ring_size)
     (vidx = key asr bits); each slot therefore holds at most one vidx's
     entries at a time ("single lap").
   - [cur] is the drain cursor, wbase <= cur <= wbase + ring_size; every
     bucket strictly before it is empty. An occupancy bitset lets the cursor
     skip runs of empty buckets a word at a time.
   - Keys at or beyond the horizon spill, unsorted, into [far]; when the
     ring drains, [rotate] re-centers the window on the earliest spilled
     key, retunes the bucket width to the spill's spread, and pulls every
     spilled entry inside the new horizon back into the ring. The width
     heuristic keeps the horizon at >= 1/4 of the spill's span, so a spill
     is consumed in at most a handful of rotations.
   - Keys below the window (possible only through [at]-after-[run ~until]
     patterns, where the window has advanced past the wall clock) go to the
     [near] heap, which always drains before the ring: near keys are
     strictly below the window start, ring keys at or above it.

   Entries are pooled: the SoA arrays are reused across drain cycles, and a
   vacated value slot is overwritten with [dummy] immediately so a popped
   closure is collectable — the space leak the binary heap had. Arrays
   shrink when mostly empty, so a long-lived drained queue does not pin its
   peak-capacity arrays either. *)

let ring_size = 1024
let ring_mask = ring_size - 1
let occ_words = ring_size / 32
let max_bits = 44 (* 2^44 ns buckets: horizon ~200 sim-days, far beyond any sweep *)

type 'a bucket = {
  mutable keys : int array;
  mutable seqs : int array;
  mutable vals : 'a array;
  mutable blen : int;
}

type 'a t = {
  dummy : 'a;
  buckets : 'a bucket array;
  occ : int array;
  mutable bits : int;
  mutable wbase : int;
  mutable cur : int;
  near : 'a bucket; (* min-heap of keys below the window (rare) *)
  far : 'a bucket; (* unsorted spill beyond the horizon; [blen] is its length *)
  mutable far_min : int;
  mutable len : int;
  mutable next_seq : int;
}

let bucket_make () = { keys = [||]; seqs = [||]; vals = [||]; blen = 0 }

let bucket_resize dummy b ncap =
  let nk = Array.make ncap 0 in
  let ns = Array.make ncap 0 in
  let nv = Array.make ncap dummy in
  Array.blit b.keys 0 nk 0 b.blen;
  Array.blit b.seqs 0 ns 0 b.blen;
  Array.blit b.vals 0 nv 0 b.blen;
  b.keys <- nk;
  b.seqs <- ns;
  b.vals <- nv

let bucket_reserve dummy b n =
  let cap = Array.length b.keys in
  if n > cap then bucket_resize dummy b (max n (max 8 (cap * 2)))

let bucket_maybe_shrink dummy b =
  let cap = Array.length b.keys in
  if cap > 64 && b.blen * 4 < cap then bucket_resize dummy b (max 16 (cap / 2))

let bucket_clear b =
  b.keys <- [||];
  b.seqs <- [||];
  b.vals <- [||];
  b.blen <- 0

(* Min-heap push on (key, seq); ascending appends exit after one compare, so
   batch-admitting a sorted arrival list costs O(1) per entry. *)
let bucket_push dummy b ~key ~seq v =
  bucket_reserve dummy b (b.blen + 1);
  let keys = b.keys and seqs = b.seqs and vals = b.vals in
  let i = ref b.blen in
  b.blen <- b.blen + 1;
  keys.(!i) <- key;
  seqs.(!i) <- seq;
  vals.(!i) <- v;
  let continue = ref true in
  while !continue && !i > 0 do
    let p = (!i - 1) / 2 in
    if key < keys.(p) || (key = keys.(p) && seq < seqs.(p)) then begin
      keys.(!i) <- keys.(p);
      seqs.(!i) <- seqs.(p);
      vals.(!i) <- vals.(p);
      keys.(p) <- key;
      seqs.(p) <- seq;
      vals.(p) <- v;
      i := p
    end
    else continue := false
  done

let bucket_pop dummy b =
  let keys = b.keys and seqs = b.seqs and vals = b.vals in
  let key0 = keys.(0) and val0 = vals.(0) in
  let n = b.blen - 1 in
  b.blen <- n;
  if n > 0 then begin
    let k = keys.(n) and s = seqs.(n) and v = vals.(n) in
    keys.(0) <- k;
    seqs.(0) <- s;
    vals.(0) <- v;
    let i = ref 0 in
    let continue = ref true in
    while !continue do
      let l = (2 * !i) + 1 in
      if l >= n then continue := false
      else begin
        let r = l + 1 in
        let c =
          if r < n && (keys.(r) < keys.(l) || (keys.(r) = keys.(l) && seqs.(r) < seqs.(l)))
          then r
          else l
        in
        if keys.(c) < k || (keys.(c) = k && seqs.(c) < s) then begin
          keys.(!i) <- keys.(c);
          seqs.(!i) <- seqs.(c);
          vals.(!i) <- vals.(c);
          keys.(c) <- k;
          seqs.(c) <- s;
          vals.(c) <- v;
          i := c
        end
        else continue := false
      end
    done
  end;
  vals.(n) <- dummy;
  (* unpin the popped closure *)
  bucket_maybe_shrink dummy b;
  (key0, val0)

let ctz x =
  let n = ref 0 and x = ref x in
  if !x land 0xFFFF = 0 then begin
    n := !n + 16;
    x := !x lsr 16
  end;
  if !x land 0xFF = 0 then begin
    n := !n + 8;
    x := !x lsr 8
  end;
  if !x land 0xF = 0 then begin
    n := !n + 4;
    x := !x lsr 4
  end;
  if !x land 0x3 = 0 then begin
    n := !n + 2;
    x := !x lsr 2
  end;
  if !x land 0x1 = 0 then incr n;
  !n

let occ_set t s = t.occ.(s lsr 5) <- t.occ.(s lsr 5) lor (1 lsl (s land 31))
let occ_clear t s = t.occ.(s lsr 5) <- t.occ.(s lsr 5) land lnot (1 lsl (s land 31))

(* First occupied virtual index in [from, wbase + ring_size), or -1. Words
   are 32 slots, and ring_size is a multiple of 32, so a word never straddles
   the ring wrap; the single-lap invariant makes slot occupancy equivalent to
   vidx occupancy inside the window. *)
let next_occupied t from =
  let limit = t.wbase + ring_size in
  let rec scan vidx =
    if vidx >= limit then -1
    else begin
      let s = vidx land ring_mask in
      let b = s land 31 in
      let word = t.occ.(s lsr 5) lsr b in
      if word <> 0 then begin
        let cand = vidx + ctz word in
        if cand < limit then cand else -1
      end
      else scan (vidx + (32 - b))
    end
  in
  scan from

let create ~dummy =
  {
    dummy;
    buckets = Array.init ring_size (fun _ -> bucket_make ());
    occ = Array.make occ_words 0;
    bits = 12;
    (* ~4us buckets to start; rotations retune *)
    wbase = 0;
    cur = 0;
    near = bucket_make ();
    far = bucket_make ();
    far_min = max_int;
    len = 0;
    next_seq = 0;
  }

let is_empty t = t.len = 0
let size t = t.len

let push_entry t ~key ~seq v =
  if t.len = 0 then begin
    (* Empty queue: re-center the window so the key lands in the ring. *)
    t.wbase <- key asr t.bits;
    t.cur <- t.wbase
  end;
  t.len <- t.len + 1;
  let vidx = key asr t.bits in
  if vidx < t.wbase then bucket_push t.dummy t.near ~key ~seq v
  else if vidx - t.wbase >= ring_size then begin
    let f = t.far in
    bucket_reserve t.dummy f (f.blen + 1);
    f.keys.(f.blen) <- key;
    f.seqs.(f.blen) <- seq;
    f.vals.(f.blen) <- v;
    f.blen <- f.blen + 1;
    if key < t.far_min then t.far_min <- key
  end
  else begin
    let s = vidx land ring_mask in
    let b = t.buckets.(s) in
    if b.blen = 0 then occ_set t s;
    bucket_push t.dummy b ~key ~seq v;
    if vidx < t.cur then t.cur <- vidx
  end

let push t ~key v =
  let seq = t.next_seq in
  t.next_seq <- seq + 1;
  push_entry t ~key ~seq v

let push_list t items =
  match items with
  | [] -> ()
  | _ ->
      (* One pass over the list; presize the spill stack so a long arrival
         list admits without repeated regrowth (bulk admissions mostly land
         beyond the horizon). *)
      let n = List.length items in
      bucket_reserve t.dummy t.far (t.far.blen + n);
      List.iter
        (fun (key, v) ->
          let seq = t.next_seq in
          t.next_seq <- seq + 1;
          push_entry t ~key ~seq v)
        items

(* Ring drained but entries remain beyond the horizon: re-center and retune.
   Progress is guaranteed — the earliest spilled key always lands in the new
   window's first bucket. *)
let rotate t =
  let f = t.far in
  assert (f.blen > 0);
  let fmin = ref max_int and fmax = ref min_int in
  for i = 0 to f.blen - 1 do
    let k = f.keys.(i) in
    if k < !fmin then fmin := k;
    if k > !fmax then fmax := k
  done;
  (* Width heuristic: ~2 entries per bucket on average, but never so narrow
     that the horizon covers less than a quarter of the spill's span. *)
  let span = !fmax - !fmin in
  let width = max 1 (max (span * 2 / max 1 f.blen) (span / (ring_size * 4))) in
  let bits = ref 0 in
  while 1 lsl !bits < width && !bits < max_bits do
    incr bits
  done;
  t.bits <- !bits;
  t.wbase <- !fmin asr !bits;
  t.cur <- t.wbase;
  let limit = t.wbase + ring_size in
  let kept = ref 0 in
  t.far_min <- max_int;
  for i = 0 to f.blen - 1 do
    let key = f.keys.(i) in
    let vidx = key asr t.bits in
    if vidx < limit then begin
      let s = vidx land ring_mask in
      let b = t.buckets.(s) in
      if b.blen = 0 then occ_set t s;
      bucket_push t.dummy b ~key ~seq:f.seqs.(i) f.vals.(i)
    end
    else begin
      f.keys.(!kept) <- key;
      f.seqs.(!kept) <- f.seqs.(i);
      f.vals.(!kept) <- f.vals.(i);
      if key < t.far_min then t.far_min <- key;
      incr kept
    end
  done;
  for i = !kept to f.blen - 1 do
    f.vals.(i) <- t.dummy
  done;
  f.blen <- !kept;
  bucket_maybe_shrink t.dummy f

(* Advance the cursor to the first nonempty bucket, rotating windows as
   needed. Precondition: [near] empty and [len > 0]. *)
let rec settle t =
  let v = next_occupied t t.cur in
  if v >= 0 then t.cur <- v
  else begin
    rotate t;
    settle t
  end

let pop t =
  if t.len = 0 then None
  else begin
    t.len <- t.len - 1;
    if t.near.blen > 0 then Some (bucket_pop t.dummy t.near)
    else begin
      settle t;
      let s = t.cur land ring_mask in
      let b = t.buckets.(s) in
      let kv = bucket_pop t.dummy b in
      if b.blen = 0 then occ_clear t s;
      Some kv
    end
  end

let peek_key t =
  if t.len = 0 then None
  else if t.near.blen > 0 then Some t.near.keys.(0)
  else begin
    settle t;
    Some t.buckets.(t.cur land ring_mask).keys.(0)
  end

let clear t =
  Array.iter bucket_clear t.buckets;
  bucket_clear t.near;
  bucket_clear t.far;
  Array.fill t.occ 0 occ_words 0;
  t.far_min <- max_int;
  t.len <- 0;
  t.wbase <- 0;
  t.cur <- 0
