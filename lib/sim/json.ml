(* Minimal JSON printer + parser, enough for the Chrome trace-event
   exporter and the metrics snapshot. No external dependencies: the
   toolchain image carries no JSON library, and the subset we need
   (objects, arrays, strings, numbers, booleans, null) is small. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Assoc of (string * t) list

(* -- printing -- *)

let escape_to b s =
  Buffer.add_char b '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 -> Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.add_char b '"'

(* Floats that hold an integral value print without a fractional part —
   most trace timestamps are whole microseconds, and Perfetto accepts
   either. 12 significant digits cover nanosecond-resolution timestamps
   up to ~1000 simulated seconds without rounding. *)
let float_repr f =
  if Float.is_integer f && Float.abs f < 1e15 then Printf.sprintf "%.0f" f
  else Printf.sprintf "%.12g" f

let rec to_buffer b = function
  | Null -> Buffer.add_string b "null"
  | Bool v -> Buffer.add_string b (if v then "true" else "false")
  | Int i -> Buffer.add_string b (string_of_int i)
  | Float f -> Buffer.add_string b (float_repr f)
  | String s -> escape_to b s
  | List items ->
      Buffer.add_char b '[';
      List.iteri
        (fun i x ->
          if i > 0 then Buffer.add_char b ',';
          to_buffer b x)
        items;
      Buffer.add_char b ']'
  | Assoc fields ->
      Buffer.add_char b '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char b ',';
          escape_to b k;
          Buffer.add_char b ':';
          to_buffer b v)
        fields;
      Buffer.add_char b '}'

let to_string t =
  let b = Buffer.create 4096 in
  to_buffer b t;
  Buffer.contents b

(* -- parsing (recursive descent) -- *)

exception Parse_error of string

type cursor = { src : string; mutable pos : int }

let error c msg = raise (Parse_error (Printf.sprintf "%s at offset %d" msg c.pos))

let peek c = if c.pos < String.length c.src then Some c.src.[c.pos] else None

let skip_ws c =
  while
    c.pos < String.length c.src
    && match c.src.[c.pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false
  do
    c.pos <- c.pos + 1
  done

let expect c ch =
  match peek c with
  | Some x when x = ch -> c.pos <- c.pos + 1
  | _ -> error c (Printf.sprintf "expected '%c'" ch)

let literal c word value =
  let n = String.length word in
  if c.pos + n <= String.length c.src && String.sub c.src c.pos n = word then begin
    c.pos <- c.pos + n;
    value
  end
  else error c (Printf.sprintf "expected '%s'" word)

let parse_string c =
  expect c '"';
  let b = Buffer.create 16 in
  let rec loop () =
    match peek c with
    | None -> error c "unterminated string"
    | Some '"' -> c.pos <- c.pos + 1
    | Some '\\' ->
        c.pos <- c.pos + 1;
        (match peek c with
        | Some '"' -> Buffer.add_char b '"'; c.pos <- c.pos + 1
        | Some '\\' -> Buffer.add_char b '\\'; c.pos <- c.pos + 1
        | Some '/' -> Buffer.add_char b '/'; c.pos <- c.pos + 1
        | Some 'n' -> Buffer.add_char b '\n'; c.pos <- c.pos + 1
        | Some 'r' -> Buffer.add_char b '\r'; c.pos <- c.pos + 1
        | Some 't' -> Buffer.add_char b '\t'; c.pos <- c.pos + 1
        | Some 'b' -> Buffer.add_char b '\b'; c.pos <- c.pos + 1
        | Some 'f' -> Buffer.add_char b '\012'; c.pos <- c.pos + 1
        | Some 'u' ->
            c.pos <- c.pos + 1;
            if c.pos + 4 > String.length c.src then error c "truncated \\u escape";
            let hex = String.sub c.src c.pos 4 in
            let code =
              try int_of_string ("0x" ^ hex) with _ -> error c "bad \\u escape"
            in
            c.pos <- c.pos + 4;
            (* Encode the code point as UTF-8; surrogate pairs are not
               reassembled (our own output never emits them). *)
            if code < 0x80 then Buffer.add_char b (Char.chr code)
            else if code < 0x800 then begin
              Buffer.add_char b (Char.chr (0xC0 lor (code lsr 6)));
              Buffer.add_char b (Char.chr (0x80 lor (code land 0x3F)))
            end
            else begin
              Buffer.add_char b (Char.chr (0xE0 lor (code lsr 12)));
              Buffer.add_char b (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
              Buffer.add_char b (Char.chr (0x80 lor (code land 0x3F)))
            end
        | _ -> error c "bad escape");
        loop ()
    | Some ch ->
        Buffer.add_char b ch;
        c.pos <- c.pos + 1;
        loop ()
  in
  loop ();
  Buffer.contents b

let parse_number c =
  let start = c.pos in
  let is_num_char ch =
    match ch with '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true | _ -> false
  in
  while c.pos < String.length c.src && is_num_char c.src.[c.pos] do
    c.pos <- c.pos + 1
  done;
  let s = String.sub c.src start (c.pos - start) in
  match int_of_string_opt s with
  | Some i -> Int i
  | None -> (
      match float_of_string_opt s with
      | Some f -> Float f
      | None -> error c (Printf.sprintf "bad number %S" s))

let rec parse_value c =
  skip_ws c;
  match peek c with
  | None -> error c "unexpected end of input"
  | Some '{' ->
      c.pos <- c.pos + 1;
      skip_ws c;
      if peek c = Some '}' then begin c.pos <- c.pos + 1; Assoc [] end
      else begin
        let fields = ref [] in
        let rec members () =
          skip_ws c;
          let k = parse_string c in
          skip_ws c;
          expect c ':';
          let v = parse_value c in
          fields := (k, v) :: !fields;
          skip_ws c;
          match peek c with
          | Some ',' -> c.pos <- c.pos + 1; members ()
          | Some '}' -> c.pos <- c.pos + 1
          | _ -> error c "expected ',' or '}'"
        in
        members ();
        Assoc (List.rev !fields)
      end
  | Some '[' ->
      c.pos <- c.pos + 1;
      skip_ws c;
      if peek c = Some ']' then begin c.pos <- c.pos + 1; List [] end
      else begin
        let items = ref [] in
        let rec elements () =
          let v = parse_value c in
          items := v :: !items;
          skip_ws c;
          match peek c with
          | Some ',' -> c.pos <- c.pos + 1; elements ()
          | Some ']' -> c.pos <- c.pos + 1
          | _ -> error c "expected ',' or ']'"
        in
        elements ();
        List (List.rev !items)
      end
  | Some '"' -> String (parse_string c)
  | Some 't' -> literal c "true" (Bool true)
  | Some 'f' -> literal c "false" (Bool false)
  | Some 'n' -> literal c "null" Null
  | Some _ -> parse_number c

let of_string s =
  let c = { src = s; pos = 0 } in
  match parse_value c with
  | v ->
      skip_ws c;
      if c.pos <> String.length s then Error (Printf.sprintf "trailing garbage at offset %d" c.pos)
      else Ok v
  | exception Parse_error msg -> Error msg

(* -- accessors -- *)

let member key = function
  | Assoc fields -> List.assoc_opt key fields
  | _ -> None

let to_number = function Int i -> Some (float_of_int i) | Float f -> Some f | _ -> None
let to_str = function String s -> Some s | _ -> None
let to_list = function List l -> Some l | _ -> None
