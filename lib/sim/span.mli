(** Request-scoped span trees on the simulated clock.

    A collector records one span tree per request: a ["request"] root plus
    a child per phase (controller overhead, admission queue, dispatch,
    exec, restore, ...). Components open and close spans at every
    hand-off; the collector only ever {e reads} the timestamps it is
    given — it never schedules engine work, charges simulated time, or
    draws randomness — so attaching one is sim-time neutral: every figure
    stays bit-identical with tracing on or off.

    Deferred work whose length is decided up front (a strategy's restore
    runs for exactly [post_ns]) may be recorded via {!complete} with a
    future stop timestamp; {!finish_root} closes the root at the maximum
    of the completion time and the latest child stop, so those children
    still nest. *)

type record = {
  id : int;
  parent : int option;
  track : int;  (** Request id; exported as the Chrome [tid]. *)
  name : string;
  cat : string;
  start_ns : Time_ns.t;
  mutable stop_ns : Time_ns.t;
  mutable attrs : (string * string) list;
}

type t

val create : unit -> t

val start :
  t ->
  at:Time_ns.t ->
  ?parent:record ->
  ?track:int ->
  name:string ->
  ?cat:string ->
  ?attrs:(string * string) list ->
  unit ->
  record
(** Open a span. The track defaults to the parent's (0 for a parentless
    span). *)

val finish : t -> at:Time_ns.t -> ?attrs:(string * string) list -> record -> unit
(** Close an open span. @raise Invalid_argument on double-close or a stop
    before the start. *)

val complete :
  t ->
  start:Time_ns.t ->
  stop:Time_ns.t ->
  ?parent:record ->
  ?track:int ->
  name:string ->
  ?cat:string ->
  ?attrs:(string * string) list ->
  unit ->
  record
(** Record a span whose bounds are both known (the stop may lie in the
    simulated future — see the module comment). *)

val add_attr : record -> string -> string -> unit

val is_open : record -> bool
val duration_ns : record -> Time_ns.t option

val ensure_root : t -> at:Time_ns.t -> req_id:int -> ?attrs:(string * string) list -> unit -> record
(** The request's root span, created on first use. *)

val find_root : t -> req_id:int -> record option

val finish_root : t -> at:Time_ns.t -> ?attrs:(string * string) list -> req_id:int -> unit -> unit
(** Close the request's root (no-op if absent), first closing any phase
    still open under it; the stop is the max of [at] and the latest child
    stop on the request's track. *)

val phase_start :
  t ->
  at:Time_ns.t ->
  req_id:int ->
  name:string ->
  ?cat:string ->
  ?attrs:(string * string) list ->
  unit ->
  unit
(** Open a phase keyed by [(req_id, name)] under the request's root, so
    the closing site needs no handle from the opening site. Reopening a
    key closes the stale phase first. *)

val phase_stop :
  t -> at:Time_ns.t -> req_id:int -> name:string -> ?attrs:(string * string) list -> unit -> unit
(** Close the keyed phase; no-op if none is open. *)

val records : t -> record list
(** Every span recorded, oldest first. *)

val count : t -> int
val open_count : t -> int

val check : t -> (unit, string) result
(** Structural invariants: every span closed, every child within its
    parent's bounds. *)

val to_chrome : t -> Json.t
(** Chrome trace-event document (Perfetto-loadable): one ["X"] complete
    event per closed span ([ts]/[dur] in microseconds, [tid] = request id)
    plus ["M"] thread-name metadata. Open spans are skipped. *)

val chrome_json : t -> string

val validate_chrome : Json.t -> (int, string) result
(** Check a parsed document against the Chrome trace-event schema;
    returns the number of events. *)
