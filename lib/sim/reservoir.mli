(** Bounded uniform sample of a float stream (Vitter's Algorithm R).

    Long open-loop runs produce one latency sample per request; keeping
    them all is an unbounded memory leak. A reservoir keeps a fixed-size
    uniform sample instead, from which quantiles are computed.

    Determinism contract: below capacity the reservoir stores every value
    exactly, in arrival order, and consumes no randomness — quantiles are
    identical to what an unbounded list would report, and disabled-protection
    runs stay bit-identical. Past capacity, replacement decisions come from a
    private generator seeded at {!create}, so runs replay exactly. *)

type t

val create : ?seed:int -> int -> t
(** [create ?seed capacity] makes an empty reservoir holding at most
    [capacity] values. [seed] (default 0) keys the replacement stream.
    @raise Invalid_argument if [capacity <= 0]. *)

val add : t -> float -> unit

val seen : t -> int
(** Total values offered, including ones not retained. *)

val stored : t -> int
(** Values currently held: [min (seen t) capacity]. *)

val capacity : t -> int

val to_list : t -> float list
(** Retained values, newest-first while below capacity (the [v :: acc]
    convention of the accumulator lists this module replaces). *)

val fold : ('a -> float -> 'a) -> 'a -> t -> 'a
