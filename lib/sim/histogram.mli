(** Log-bucketed histograms for latency distributions.

    Latencies span orders of magnitude, so buckets grow geometrically.
    The text rendering gives each bucket a bar scaled to its share —
    enough to see bimodality (e.g. warm requests vs cold starts) that
    a mean and a p95 hide. *)

type t

val create : ?buckets_per_decade:int -> min_value:float -> max_value:float -> unit -> t
(** Geometric buckets covering [\[min_value, max_value\]]; samples below
    [min_value] clamp into the first bucket, samples above the covered
    range are tallied in an explicit overflow bucket (see {!overflow})
    rather than clamped, so tail quantiles stay honest. Defaults to 5
    buckets/decade.
    @raise Invalid_argument unless [0 < min_value < max_value]. *)

val add : t -> float -> unit
val add_all : t -> float array -> unit
val count : t -> int

val overflow : t -> int
(** Samples that fell above the last bucket's upper bound. *)

val max_seen : t -> float
(** Largest sample added so far ([neg_infinity] when empty). *)

val buckets : t -> (float * float * int) list
(** (lower bound, upper bound, count) for each regular bucket, ascending;
    overflow samples are not included. *)

val quantile : t -> float -> float
(** [quantile t q] for [q] in [\[0,1\]]: the upper bound of the bucket
    holding the q-th sample (a bucket-resolution approximation). When the
    q-th sample lies in the overflow bucket — which has no upper bound —
    the largest observed sample ({!max_seen}) is returned instead of a
    fabricated bound.
    @raise Invalid_argument if empty or [q] out of range. *)

val render : ?width:int -> Format.formatter -> t -> unit
(** One line per non-empty bucket: range, count, bar. *)
