(* Process-wide registry of named counters / gauges / histograms.

   One typed API replaces scattered per-component mutable counters: a
   component asks the registry for a handle once (at creation) and bumps
   it on the hot path with a plain field write — no hashing per event.

   Determinism: a histogram's bounded sample is either exhaustive
   ([All] — backed by a {!Reservoir} whose seed the caller fixes, so code
   migrated from a raw reservoir stays bit-identical), or deterministically
   head-based ([Head] — keep the first [head] observations, then every
   [stride]-th), never wall-clock- or shared-RNG-dependent. Exact count /
   mean / std are maintained over *all* observations either way. *)

type counter = { c_name : string; mutable count : int }
type gauge = { g_name : string; mutable value : float }

type sampling =
  | All  (** Every observation goes to the reservoir (exact below capacity). *)
  | Head of { head : int; stride : int }
      (** Keep the first [head] observations, then every [stride]-th. *)

type histogram = {
  h_name : string;
  res : Reservoir.t;
  sampling : sampling;
  online : Stats.Online.t;
  mutable offered : int;  (* observations seen, sampled or not *)
}

type metric = Counter of counter | Gauge of gauge | Histogram of histogram

type t = { tbl : (string, metric) Hashtbl.t }

let create () = { tbl = Hashtbl.create 64 }

let kind_name = function Counter _ -> "counter" | Gauge _ -> "gauge" | Histogram _ -> "histogram"

let wrong_kind name got want =
  invalid_arg (Printf.sprintf "Metrics: %S is a %s, not a %s" name (kind_name got) want)

let counter t name =
  match Hashtbl.find_opt t.tbl name with
  | Some (Counter c) -> c
  | Some m -> wrong_kind name m "counter"
  | None ->
      let c = { c_name = name; count = 0 } in
      Hashtbl.replace t.tbl name (Counter c);
      c

let gauge t name =
  match Hashtbl.find_opt t.tbl name with
  | Some (Gauge g) -> g
  | Some m -> wrong_kind name m "gauge"
  | None ->
      let g = { g_name = name; value = 0.0 } in
      Hashtbl.replace t.tbl name (Gauge g);
      g

let default_sampling = Head { head = 512; stride = 16 }

let histogram ?(capacity = 4096) ?seed ?(sampling = default_sampling) t name =
  (match sampling with
  | Head { head; stride } ->
      if head < 0 || stride <= 0 then invalid_arg "Metrics.histogram: bad Head sampling"
  | All -> ());
  match Hashtbl.find_opt t.tbl name with
  | Some (Histogram h) -> h
  | Some m -> wrong_kind name m "histogram"
  | None ->
      let seed = match seed with Some s -> s | None -> Hashtbl.hash name in
      let h =
        {
          h_name = name;
          res = Reservoir.create ~seed capacity;
          sampling;
          online = Stats.Online.create ();
          offered = 0;
        }
      in
      Hashtbl.replace t.tbl name (Histogram h);
      h

let incr ?(by = 1) c = c.count <- c.count + by
let counter_value c = c.count
let set g v = g.value <- v
let gauge_value g = g.value

let observe h v =
  Stats.Online.add h.online v;
  (match h.sampling with
  | All -> Reservoir.add h.res v
  | Head { head; stride } ->
      if h.offered < head || (h.offered - head) mod stride = 0 then Reservoir.add h.res v);
  h.offered <- h.offered + 1

let values h = Reservoir.to_list h.res
let observed h = h.offered
let hist_count h = Stats.Online.count h.online
let hist_mean h = Stats.Online.mean h.online
let hist_std h = Stats.Online.std h.online

let counter_name c = c.c_name
let gauge_name g = g.g_name
let histogram_name h = h.h_name

let find t name = Hashtbl.find_opt t.tbl name

let find_counter t name =
  match find t name with Some (Counter c) -> Some c | _ -> None

let find_histogram t name =
  match find t name with Some (Histogram h) -> Some h | _ -> None

let snapshot t =
  Hashtbl.fold (fun name m acc -> (name, m) :: acc) t.tbl []
  |> List.sort (fun (a, _) (b, _) -> compare a b)

(* -- rendering -- *)

let quantiles h =
  match values h with
  | [] -> None
  | vs -> Some (Stats.summarize (Array.of_list vs))

let render_metric ppf (name, m) =
  match m with
  | Counter c -> Format.fprintf ppf "counter   %-44s %d@." name c.count
  | Gauge g -> Format.fprintf ppf "gauge     %-44s %g@." name g.value
  | Histogram h -> (
      match quantiles h with
      | None -> Format.fprintf ppf "histogram %-44s count=0@." name
      | Some s ->
          Format.fprintf ppf
            "histogram %-44s count=%d mean=%.3f p50=%.3f p90=%.3f p99=%.3f max=%.3f (sampled %d)@."
            name (hist_count h) (hist_mean h) s.Stats.median s.Stats.p90 s.Stats.p99 s.Stats.max
            (Reservoir.stored h.res))

let render ppf t = List.iter (render_metric ppf) (snapshot t)

let to_json t =
  let metric_json = function
    | Counter c -> Json.Assoc [ ("type", Json.String "counter"); ("value", Json.Int c.count) ]
    | Gauge g -> Json.Assoc [ ("type", Json.String "gauge"); ("value", Json.Float g.value) ]
    | Histogram h ->
        let q =
          match quantiles h with
          | None -> []
          | Some s ->
              [
                ("p50", Json.Float s.Stats.median);
                ("p90", Json.Float s.Stats.p90);
                ("p99", Json.Float s.Stats.p99);
                ("max", Json.Float s.Stats.max);
              ]
        in
        Json.Assoc
          ([
             ("type", Json.String "histogram");
             ("count", Json.Int (hist_count h));
             ("mean", Json.Float (hist_mean h));
             ("sampled", Json.Int (Reservoir.stored h.res));
           ]
          @ q)
  in
  Json.Assoc (List.map (fun (name, m) -> (name, metric_json m)) (snapshot t))
