(* A log-bucketed quantile sketch (DDSketch-style) with integer bucket
   counts, built for deterministic merging.

   Values are mapped to geometric buckets: bucket [i] covers
   (gamma^(i-1), gamma^i] with gamma = (1 + alpha) / (1 - alpha), so the
   bucket midpoint estimates any contained value within relative error
   [alpha]. Every piece of mutable state is an integer count or a
   min/max of observed values, so [merge] is a bucket-wise integer
   addition: associative, commutative, and bit-identical regardless of
   how observations were sharded — the property the Domain_pool
   discipline needs to combine per-domain series without breaking the
   byte-identity gate.

   Deliberately absent: a floating-point running sum (float addition is
   order-dependent, which would break exact merge equality). *)

type t = {
  alpha : float;
  gamma : float;
  log_gamma : float;
  buckets : (int, int) Hashtbl.t;  (* bucket index -> count *)
  mutable zero : int;  (* observations below [min_indexable] *)
  mutable count : int;
  mutable min_v : float;  (* +inf while empty *)
  mutable max_v : float;  (* -inf while empty *)
}

(* Values below this collapse into the zero bucket: the relative-error
   guarantee is meaningless at sub-nanosecond float dust, and bounding
   the index range keeps bucket indexes small ints. *)
let min_indexable = 1e-9

let create ?(alpha = 0.01) () =
  if not (alpha > 0.0 && alpha < 1.0) then
    invalid_arg "Sketch.create: alpha must be in (0, 1)";
  let gamma = (1.0 +. alpha) /. (1.0 -. alpha) in
  {
    alpha;
    gamma;
    log_gamma = Float.log gamma;
    buckets = Hashtbl.create 64;
    zero = 0;
    count = 0;
    min_v = Float.infinity;
    max_v = Float.neg_infinity;
  }

let alpha t = t.alpha
let count t = t.count
let zero_count t = t.zero
let is_empty t = t.count = 0
let min_value t = if t.count = 0 then None else Some t.min_v
let max_value t = if t.count = 0 then None else Some t.max_v

let bucket_index t v = int_of_float (Float.ceil (Float.log v /. t.log_gamma))

let observe t v =
  if Float.is_nan v || v < 0.0 then
    invalid_arg "Sketch.observe: value must be a non-negative number";
  t.count <- t.count + 1;
  t.min_v <- Float.min t.min_v v;
  t.max_v <- Float.max t.max_v v;
  if v < min_indexable then t.zero <- t.zero + 1
  else begin
    let i = bucket_index t v in
    let n = match Hashtbl.find_opt t.buckets i with Some n -> n | None -> 0 in
    Hashtbl.replace t.buckets i (n + 1)
  end

let buckets t =
  Hashtbl.fold (fun i n acc -> (i, n) :: acc) t.buckets []
  |> List.sort (fun (a, _) (b, _) -> compare a b)

let merge a b =
  if a.alpha <> b.alpha then invalid_arg "Sketch.merge: alpha mismatch";
  let m = create ~alpha:a.alpha () in
  let add (i, n) =
    let prev = match Hashtbl.find_opt m.buckets i with Some p -> p | None -> 0 in
    Hashtbl.replace m.buckets i (prev + n)
  in
  List.iter add (buckets a);
  List.iter add (buckets b);
  m.zero <- a.zero + b.zero;
  m.count <- a.count + b.count;
  m.min_v <- Float.min a.min_v b.min_v;
  m.max_v <- Float.max a.max_v b.max_v;
  m

let equal a b =
  a.alpha = b.alpha && a.count = b.count && a.zero = b.zero
  && (a.count = 0 || (a.min_v = b.min_v && a.max_v = b.max_v))
  && buckets a = buckets b

(* The value whose rank is floor(q * (count - 1)) in the sorted stream,
   estimated from the bucket walk. Bucket [i]'s midpoint
   2 * gamma^i / (gamma + 1) is within [alpha] relative error of every
   value the bucket can hold; clamping to the observed min/max tightens
   the extremes (and makes q = 0 / q = 1 exact). *)
let quantile t q =
  if not (q >= 0.0 && q <= 1.0) then invalid_arg "Sketch.quantile: q must be in [0, 1]";
  if t.count = 0 then None
  else begin
    let rank = int_of_float (q *. float_of_int (t.count - 1)) in
    let est =
      if rank < t.zero then 0.0
      else begin
        let rec walk cum = function
          | [] -> t.max_v
          | (i, n) :: rest ->
              let cum = cum + n in
              if cum > rank then 2.0 *. (t.gamma ** float_of_int i) /. (t.gamma +. 1.0)
              else walk cum rest
        in
        walk t.zero (buckets t)
      end
    in
    Some (Float.max t.min_v (Float.min t.max_v est))
  end

let to_json t =
  Json.Assoc
    [
      ("alpha", Json.Float t.alpha);
      ("count", Json.Int t.count);
      ("zero", Json.Int t.zero);
      ("min", if t.count = 0 then Json.Null else Json.Float t.min_v);
      ("max", if t.count = 0 then Json.Null else Json.Float t.max_v);
      ( "buckets",
        Json.List
          (List.map (fun (i, n) -> Json.List [ Json.Int i; Json.Int n ]) (buckets t)) );
    ]

let pp ppf t =
  let q p = match quantile t p with Some v -> v | None -> Float.nan in
  Format.fprintf ppf "sketch(n=%d p50=%.3f p90=%.3f p99=%.3f max=%.3f)" t.count (q 0.5)
    (q 0.9) (q 0.99)
    (if t.count = 0 then Float.nan else t.max_v)
