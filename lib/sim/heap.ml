(* Reference binary min-heap. The engine's hot loop runs on
   [Event_queue]; this implementation is kept as the simple, obviously
   correct ordering oracle the differential property tests compare against
   (the same scalar-reference pattern the page kernels use).

   Slots are ['a entry option] so a vacated slot can be overwritten with
   [None]: an earlier version left popped entries reachable at
   [data.(len)] and beyond, pinning every dispatched event closure — and,
   on a long-lived drained heap, its whole peak-capacity array — against
   the GC. The array also shrinks on large drains for the same reason. *)

type 'a entry = { key : int; seq : int; value : 'a }

type 'a t = {
  mutable data : 'a entry option array;
  mutable len : int;
  mutable next_seq : int;
}

let create () = { data = [||]; len = 0; next_seq = 0 }
let is_empty t = t.len = 0
let size t = t.len

let get t i = match t.data.(i) with Some e -> e | None -> assert false
let less a b = a.key < b.key || (a.key = b.key && a.seq < b.seq)

let grow t =
  let cap = Array.length t.data in
  if t.len = cap then begin
    let ncap = if cap = 0 then 16 else cap * 2 in
    let ndata = Array.make ncap None in
    Array.blit t.data 0 ndata 0 t.len;
    t.data <- ndata
  end

let shrink t =
  let cap = Array.length t.data in
  if cap > 64 && t.len * 4 < cap then begin
    let ndata = Array.make (max 16 (cap / 2)) None in
    Array.blit t.data 0 ndata 0 t.len;
    t.data <- ndata
  end

let push t ~key value =
  let entry = { key; seq = t.next_seq; value } in
  t.next_seq <- t.next_seq + 1;
  grow t;
  t.data.(t.len) <- Some entry;
  t.len <- t.len + 1;
  (* Sift up. *)
  let i = ref (t.len - 1) in
  let continue = ref true in
  while !continue && !i > 0 do
    let parent = (!i - 1) / 2 in
    if less (get t !i) (get t parent) then begin
      let tmp = t.data.(parent) in
      t.data.(parent) <- t.data.(!i);
      t.data.(!i) <- tmp;
      i := parent
    end
    else continue := false
  done

let pop t =
  if t.len = 0 then None
  else begin
    let top = get t 0 in
    t.len <- t.len - 1;
    if t.len > 0 then begin
      t.data.(0) <- t.data.(t.len);
      (* Sift down. *)
      let i = ref 0 in
      let continue = ref true in
      while !continue do
        let l = (2 * !i) + 1 and r = (2 * !i) + 2 in
        let smallest = ref !i in
        if l < t.len && less (get t l) (get t !smallest) then smallest := l;
        if r < t.len && less (get t r) (get t !smallest) then smallest := r;
        if !smallest <> !i then begin
          let tmp = t.data.(!smallest) in
          t.data.(!smallest) <- t.data.(!i);
          t.data.(!i) <- tmp;
          i := !smallest
        end
        else continue := false
      done
    end;
    t.data.(t.len) <- None;
    (* release the popped entry *)
    shrink t;
    Some (top.key, top.value)
  end

let peek_key t = if t.len = 0 then None else Some (get t 0).key

let clear t =
  t.data <- [||];
  t.len <- 0
