(** Deterministic, seeded fault injection for the simulated OS.

    A fault plan maps {e injection sites} (ptrace stops, /proc reads,
    snapshot page copies, function crashes and hangs) to rules: a
    per-occurrence probability, a list of scheduled occurrence indices,
    or both. Every site draws from its own {!Rng} stream keyed by the
    site name, so the schedule of one site never perturbs another and
    the same seed + rules reproduce the exact same fault sequence.

    The distinguished {!none} plan makes the disabled case free: callers
    guard every injection point with {!is_none} (a pointer comparison),
    so with faults off no random numbers are drawn and no state is
    touched — simulation output is bit-identical to a build without the
    fault layer. *)

type site =
  | Ptrace_attach      (** attaching the tracer to a process *)
  | Ptrace_regs        (** reading or writing register sets *)
  | Ptrace_inject      (** injecting a syscall into the tracee *)
  | Ptrace_write       (** writing pages through the tracer *)
  | Procfs_maps        (** reading /proc/pid/maps *)
  | Procfs_scan        (** scanning /proc/pid/pagemap soft-dirty bits *)
  | Procfs_clear       (** writing /proc/pid/clear_refs *)
  | Snapshot_copy      (** copying a region's pages into the snapshot *)
  | Fn_crash           (** the function body crashes mid-request *)
  | Fn_hang            (** the function body never returns *)
  | Node_crash         (** a whole node dies: warm pool and in-flight work lost *)
  | Node_hang          (** a node stops responding for a while (GC storm, IO stall) *)
  | Cluster_msg_loss   (** a controller→node dispatch message is lost (partition) *)
  | Heartbeat_drop     (** a node→controller heartbeat is lost in transit *)
  | Snapshot_bitflip   (** a captured page word is silently corrupted in the buffer *)
  | Snapshot_torn      (** capture interrupted mid-region: a tail of stale bytes persists *)
  | Restore_skip       (** a dirty run is silently not written back during restore *)

type t

val none : t
(** The empty plan: never fires, draws nothing. *)

val is_none : t -> bool
(** [is_none t] is a physical-equality test against {!none}; O(1). *)

val create : seed:int -> t
(** A fresh plan with no rules. Equal seeds give equal schedules once
    equal rules are installed. *)

val set : t -> site -> ?prob:float -> ?nth:int list -> unit -> unit
(** [set t site ~prob ~nth ()] installs a rule: the site fires on each
    occurrence with probability [prob] (default 0), and additionally on
    the occurrences whose 1-based index appears in [nth] (default []).
    Raises [Invalid_argument] on {!none} or if [prob] is outside
    [\[0,1\]]. *)

val uniform : seed:int -> prob:float -> site list -> t
(** [uniform ~seed ~prob sites] is a plan firing each listed site with
    probability [prob] per occurrence. *)

val fire : t -> site -> bool
(** [fire t site] records one occurrence of [site] and reports whether
    the fault fires. Always [false] for {!none} (and cost-free: no
    counter bump, no random draw). *)

val occurrences : t -> site -> int
(** How many times [site] has been reached. *)

val fired : t -> site -> int
(** How many times [site] has fired. *)

val draw : t -> site -> bound:int -> int
(** [draw t site ~bound] draws a uniform int in [\[0, bound)] from the
    site's own stream — the corruption parameter (page index, tear point)
    for a site that just fired. Only call after {!fire} returned [true]:
    the draw advances the site's stream, so guarding it keeps disabled
    and miss-only runs bit-identical. Raises [Invalid_argument] on
    {!none} or a non-positive bound. *)

val total_fired : t -> int
(** Total fired faults across all sites. *)

val all_sites : site list
val restore_sites : site list
(** The sites exercised by snapshot/restore machinery (everything except
    [Fn_crash], [Fn_hang] and the node-level sites). *)

val cluster_sites : site list
(** The node-level sites exercised only by the cluster layer
    ([Node_crash], [Node_hang], [Cluster_msg_loss], [Heartbeat_drop]).
    Single-node runs never reach them, so their streams stay untouched. *)

val corruption_sites : site list
(** The silent data-corruption sites ([Snapshot_bitflip], [Snapshot_torn],
    [Restore_skip]): the operation "succeeds" but leaves wrong bytes
    behind. Only content-hash verification or scrubbing can detect them —
    no [Error site] is ever surfaced. *)

val site_name : site -> string
val pp_site : Format.formatter -> site -> unit
