(** Discrete-event simulation engine.

    The throughput and scaling experiments run the FaaS platform as a
    discrete-event simulation: clients, invokers, containers and Groundhog
    managers schedule callbacks at future simulated instants, and the engine
    dispatches them in timestamp order (FIFO among equal timestamps).

    The latency experiments don't need the engine at all — they execute one
    request at a time and read costs straight off the accounts. *)

type t

val create : unit -> t

val now : t -> Time_ns.t
(** Current simulated time. *)

val schedule : t -> after:Time_ns.t -> (unit -> unit) -> unit
(** [schedule t ~after f] runs [f] at [now t + after].
    @raise Invalid_argument if [after] is negative. *)

val at : t -> time:Time_ns.t -> (unit -> unit) -> unit
(** [at t ~time f] runs [f] at absolute instant [time], which must not be
    in the simulated past. *)

val at_batch : t -> (Time_ns.t * (unit -> unit)) list -> unit
(** Admit a whole arrival list in one pass. Equivalent to calling {!at} on
    each pair in list order — FIFO ties among equal instants follow list
    position — but validated up front (no event is admitted if any instant
    is in the past) and admitted without per-event queue re-entry, which is
    what the bulk [Synthetic.burst] schedules want.
    @raise Invalid_argument if any instant is in the simulated past. *)

val run : t -> until:Time_ns.t -> unit
(** Dispatch events in order until the queue drains or simulated time would
    exceed [until]. Events scheduled exactly at [until] still run. *)

val default_max_events : int
(** The {!run_all} guard threshold when none is given: 200 million events,
    orders of magnitude above any legitimate experiment. *)

val run_all : ?max_events:int -> t -> unit
(** Dispatch until the queue is empty. [max_events] (default
    {!default_max_events}) bounds the total number of dispatched events so a
    self-sustaining event chain fails with a diagnostic instead of diverging.
    @raise Failure when the guard trips.
    @raise Invalid_argument if [max_events <= 0]. *)

val pending : t -> int
(** Number of queued events. *)
