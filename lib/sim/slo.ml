(* Declarative service-level objectives evaluated as multi-window,
   multi-burn-rate alerts (the SRE-workbook recipe, scaled to sim time).

   An objective reduces every request completion to a good/bad event:
   availability (served vs failed), latency (under the limit vs over),
   cold-start rate (warm vs cold). Events land in coarse time buckets;
   [tick] evaluates each alert rule's burn rate — observed error rate
   over the error budget (1 - target) — over a long and a short window.
   A rule trips only when BOTH windows burn: the long window proves the
   budget spend is real, the short window proves it is still happening
   (so alerts clear quickly once the episode ends). Hysteresis: a firing
   alert clears only after [clear_after] consecutive clean evaluations.

   Like the rest of the observability stack this module only reads the
   clock it is handed — no engine, no randomness, no charged time. *)

type objective =
  | Availability of { target : float }
  | Latency of { limit_ms : float; target : float }
  | Cold_start of { target : float }  (* fraction of serves that are warm *)

let objective_name = function
  | Availability _ -> "availability"
  | Latency _ -> "latency"
  | Cold_start _ -> "cold-start"

let target_of = function
  | Availability { target } | Latency { target; _ } | Cold_start { target } -> target

type rule = { long_ns : Time_ns.t; short_ns : Time_ns.t; burn : float }

type config = {
  name : string;
  objective : objective;
  rules : rule list;
  clear_after : int;
  min_events : int;
}

(* The workbook's 5m/1h + 30m/6h pairs keep their shape, scaled so the
   fast rule's short window is [base_ns]. *)
let default_rules ~base_ns =
  [
    { long_ns = 12 * base_ns; short_ns = base_ns; burn = 14.4 };
    { long_ns = 72 * base_ns; short_ns = 6 * base_ns; burn = 6.0 };
  ]

type alert = {
  a_at : Time_ns.t;
  a_kind : [ `Fire | `Clear ];
  a_rule : int;  (* index into [rules]; the tripping rule on fire *)
  a_burn_long : float;
  a_burn_short : float;
}

type bucket = { mutable good : int; mutable bad : int }

type t = {
  cfg : config;
  bucket_ns : Time_ns.t;
  horizon_ns : Time_ns.t;
  buckets : (int, bucket) Hashtbl.t;
  mutable total_good : int;
  mutable total_bad : int;
  mutable firing : bool;
  mutable clean_streak : int;
  mutable rev_alerts : alert list;
  trace : Trace.t option;
  c_good : Metrics.counter option;
  c_bad : Metrics.counter option;
  c_fired : Metrics.counter option;
  c_cleared : Metrics.counter option;
  g_firing : Metrics.gauge option;
}

let rec gcd a b = if b = 0 then a else gcd b (a mod b)

let create ?trace ?metrics config =
  if config.rules = [] then invalid_arg "Slo.create: no rules";
  let target = target_of config.objective in
  if not (target > 0.0 && target < 1.0) then
    invalid_arg "Slo.create: target must be in (0, 1)";
  List.iter
    (fun r ->
      if r.short_ns <= 0 || r.long_ns < r.short_ns then
        invalid_arg "Slo.create: need 0 < short_ns <= long_ns";
      if r.burn <= 0.0 then invalid_arg "Slo.create: burn must be positive")
    config.rules;
  let bucket_ns =
    List.fold_left (fun g r -> gcd (gcd g r.long_ns) r.short_ns) 0 config.rules
  in
  let horizon_ns = List.fold_left (fun m r -> max m r.long_ns) 0 config.rules in
  let handle kind =
    Option.map
      (fun m -> Metrics.counter m (Printf.sprintf "slo.%s.%s" config.name kind))
      metrics
  in
  {
    cfg = config;
    bucket_ns;
    horizon_ns;
    buckets = Hashtbl.create 64;
    total_good = 0;
    total_bad = 0;
    firing = false;
    clean_streak = 0;
    rev_alerts = [];
    trace;
    c_good = handle "good";
    c_bad = handle "bad";
    c_fired = handle "fired";
    c_cleared = handle "cleared";
    g_firing =
      Option.map
        (fun m ->
          let g = Metrics.gauge m (Printf.sprintf "slo.%s.firing" config.name) in
          Metrics.set g 0.0;
          g)
        metrics;
  }

let name t = t.cfg.name
let config t = t.cfg
let firing t = t.firing
let alerts t = List.rev t.rev_alerts
let totals t = (t.total_good, t.total_bad)

let record t ~now ~good =
  let idx = now / t.bucket_ns in
  let b =
    match Hashtbl.find_opt t.buckets idx with
    | Some b -> b
    | None ->
        let b = { good = 0; bad = 0 } in
        Hashtbl.replace t.buckets idx b;
        b
  in
  if good then begin
    b.good <- b.good + 1;
    t.total_good <- t.total_good + 1;
    Option.iter Metrics.incr t.c_good
  end
  else begin
    b.bad <- b.bad + 1;
    t.total_bad <- t.total_bad + 1;
    Option.iter Metrics.incr t.c_bad
  end

(* One completion event, classified by this SLO's objective. A failed
   request is bad for availability AND for latency (the user never got
   an answer inside the limit); the cold-start SLI only sees serves. *)
let record_completion t ~now ~ok ~e2e_ms ~cold =
  match t.cfg.objective with
  | Availability _ -> record t ~now ~good:ok
  | Latency { limit_ms; _ } -> record t ~now ~good:(ok && e2e_ms <= limit_ms)
  | Cold_start _ -> if ok then record t ~now ~good:(not cold)

(* Events in the window (now - w, now], counted at bucket granularity:
   a bucket participates if it starts inside the window. The window edge
   is therefore quantized by bucket_ns — deterministic, and tight enough
   since bucket_ns divides every configured window. *)
let window_counts t ~now w =
  let lo = max 0 ((now - w) / t.bucket_ns + 1) in
  let hi = now / t.bucket_ns in
  let good = ref 0 and bad = ref 0 in
  for i = lo to hi do
    match Hashtbl.find_opt t.buckets i with
    | Some b ->
        good := !good + b.good;
        bad := !bad + b.bad
    | None -> ()
  done;
  (!good, !bad)

let burn_rate t ~now w =
  let good, bad = window_counts t ~now w in
  let total = good + bad in
  if total = 0 then (0.0, 0)
  else begin
    let err = float_of_int bad /. float_of_int total in
    let budget = 1.0 -. target_of t.cfg.objective in
    (err /. budget, total)
  end

let prune t ~now =
  let cutoff = ((now - t.horizon_ns) / t.bucket_ns) - 2 in
  if cutoff > 0 then begin
    let stale = Hashtbl.fold (fun i _ acc -> if i < cutoff then i :: acc else acc) t.buckets [] in
    List.iter (Hashtbl.remove t.buckets) stale
  end

let emit t ~now what detail =
  (match t.trace with
  | Some tr -> Trace.emit tr ~at:now ~category:"slo" ~what detail
  | None -> ())

let tick t ~now =
  prune t ~now;
  (* First rule whose long AND short windows both exceed its burn
     threshold, with enough long-window events to mean anything. *)
  let tripping =
    let rec go i = function
      | [] -> None
      | r :: rest ->
          let bl, nl = burn_rate t ~now r.long_ns in
          let bs, _ = burn_rate t ~now r.short_ns in
          if nl >= t.cfg.min_events && bl >= r.burn && bs >= r.burn then Some (i, bl, bs)
          else go (i + 1) rest
    in
    go 0 t.cfg.rules
  in
  match (t.firing, tripping) with
  | false, Some (i, bl, bs) ->
      t.firing <- true;
      t.clean_streak <- 0;
      t.rev_alerts <-
        { a_at = now; a_kind = `Fire; a_rule = i; a_burn_long = bl; a_burn_short = bs }
        :: t.rev_alerts;
      Option.iter Metrics.incr t.c_fired;
      Option.iter (fun g -> Metrics.set g 1.0) t.g_firing;
      emit t ~now "fire"
        (Printf.sprintf "%s rule#%d burn long=%.1f short=%.1f" t.cfg.name i bl bs)
  | true, Some _ -> t.clean_streak <- 0
  | true, None ->
      t.clean_streak <- t.clean_streak + 1;
      if t.clean_streak >= t.cfg.clear_after then begin
        t.firing <- false;
        t.clean_streak <- 0;
        t.rev_alerts <-
          { a_at = now; a_kind = `Clear; a_rule = -1; a_burn_long = 0.0; a_burn_short = 0.0 }
          :: t.rev_alerts;
        Option.iter Metrics.incr t.c_cleared;
        Option.iter (fun g -> Metrics.set g 0.0) t.g_firing;
        emit t ~now "clear" t.cfg.name
      end
  | false, None -> ()

(* A ready-made objective set for the CLI and the slo experiment:
   availability, p99-style latency, and cold-start rate, each on the
   scaled fast+slow rule pair. *)
let standard ?trace ?metrics ?(base_ns = Time_ns.of_ms 200.0) ?(latency_limit_ms = 250.0)
    ?(availability_target = 0.999) () =
  let rules = default_rules ~base_ns in
  let mk name objective min_events =
    create ?trace ?metrics { name; objective; rules; clear_after = 3; min_events }
  in
  [
    mk "availability" (Availability { target = availability_target }) 20;
    mk "latency-p99" (Latency { limit_ms = latency_limit_ms; target = 0.99 }) 20;
    mk "cold-start" (Cold_start { target = 0.75 }) 40;
  ]

let to_json t =
  Json.Assoc
    [
      ("name", Json.String t.cfg.name);
      ("objective", Json.String (objective_name t.cfg.objective));
      ("target", Json.Float (target_of t.cfg.objective));
      ("good", Json.Int t.total_good);
      ("bad", Json.Int t.total_bad);
      ("firing", Json.Bool t.firing);
      ( "alerts",
        Json.List
          (List.map
             (fun a ->
               Json.Assoc
                 [
                   ("at_ns", Json.Int a.a_at);
                   ("kind", Json.String (match a.a_kind with `Fire -> "fire" | `Clear -> "clear"));
                   ("rule", Json.Int a.a_rule);
                   ("burn_long", Json.Float a.a_burn_long);
                   ("burn_short", Json.Float a.a_burn_short);
                 ])
             (alerts t)) );
    ]
