(** Sample statistics for experiment measurements.

    Two entry points: an online accumulator ({!Online}) for streaming
    mean/variance, and whole-sample summaries ({!summary}) with exact
    percentiles, used by the harness to report the same statistics as the
    paper (mean ± std, median, p10/p25/p75/p90/p95). *)

type summary = {
  n : int;
  mean : float;
  std : float;  (** Sample (Bessel-corrected) standard deviation. *)
  min : float;
  max : float;
  p10 : float;
  p25 : float;
  median : float;
  p75 : float;
  p90 : float;
  p95 : float;
  p99 : float;
}

val summarize : float array -> summary
(** Exact summary of a non-empty sample. Sorts a copy of the input with
    [Float.compare] (total, deterministic order).
    @raise Invalid_argument on an empty array, or if the sample contains a
    NaN — there is no meaningful rank for NaN, so it is rejected rather
    than silently sorted to one end. *)

val percentile : float array -> float -> float
(** [percentile sorted q] with [q] in [\[0,100\]] over a {e sorted,
    NaN-free} array, using linear interpolation between closest ranks.
    ({!summarize} enforces the NaN-free precondition for its callers.) *)

val mean : float array -> float
val std : float array -> float

val pp_summary : Format.formatter -> summary -> unit

module Online : sig
  (** Welford's online mean/variance accumulator. *)

  type t

  val create : unit -> t
  val add : t -> float -> unit
  val count : t -> int
  val mean : t -> float
  val std : t -> float

  val merge : t -> t -> t
  (** Combine two accumulators (Chan et al. parallel formula). *)
end
