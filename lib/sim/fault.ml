(* Deterministic, seeded fault injection.

   A plan maps injection sites to rules. Each site draws from its own
   [Rng] stream (derived via {!Rng.named_split} from the plan seed), so
   adding a rule for one site never perturbs the schedule of another,
   and the same seed + same rules always yield the same fault schedule.

   The distinguished [none] plan is a physical-equality sentinel: every
   caller first checks [is_none] (one pointer compare) so a disabled
   fault layer costs nothing and draws no random numbers. *)

type site =
  | Ptrace_attach
  | Ptrace_regs
  | Ptrace_inject
  | Ptrace_write
  | Procfs_maps
  | Procfs_scan
  | Procfs_clear
  | Snapshot_copy
  | Fn_crash
  | Fn_hang
  | Node_crash
  | Node_hang
  | Cluster_msg_loss
  | Heartbeat_drop
  | Snapshot_bitflip
  | Snapshot_torn
  | Restore_skip

let site_index = function
  | Ptrace_attach -> 0
  | Ptrace_regs -> 1
  | Ptrace_inject -> 2
  | Ptrace_write -> 3
  | Procfs_maps -> 4
  | Procfs_scan -> 5
  | Procfs_clear -> 6
  | Snapshot_copy -> 7
  | Fn_crash -> 8
  | Fn_hang -> 9
  | Node_crash -> 10
  | Node_hang -> 11
  | Cluster_msg_loss -> 12
  | Heartbeat_drop -> 13
  | Snapshot_bitflip -> 14
  | Snapshot_torn -> 15
  | Restore_skip -> 16

let n_sites = 17

let all_sites =
  [ Ptrace_attach; Ptrace_regs; Ptrace_inject; Ptrace_write;
    Procfs_maps; Procfs_scan; Procfs_clear; Snapshot_copy;
    Fn_crash; Fn_hang;
    Node_crash; Node_hang; Cluster_msg_loss; Heartbeat_drop;
    Snapshot_bitflip; Snapshot_torn; Restore_skip ]

(* Node-level sites, exercised only by the cluster layer: whole-node
   crashes and hangs, controller<->node message loss/partition, and
   dropped heartbeats. Each keeps its own stream, so a single-node run
   never draws from (or perturbs) any of them. *)
let cluster_sites = [ Node_crash; Node_hang; Cluster_msg_loss; Heartbeat_drop ]

(* Sites exercised by the snapshot/restore machinery (as opposed to the
   function body itself). A uniform plan over these stresses the
   fail-closed recovery path. *)
let restore_sites =
  [ Ptrace_attach; Ptrace_regs; Ptrace_inject; Ptrace_write;
    Procfs_maps; Procfs_scan; Procfs_clear; Snapshot_copy ]

(* Silent data-corruption sites: unlike the loud sites above (which abort
   the operation and surface an [Error site]), these complete "successfully"
   while leaving wrong bytes behind. Only content hashing — restore-time
   verification or idle-time scrubbing — can detect them. *)
let corruption_sites = [ Snapshot_bitflip; Snapshot_torn; Restore_skip ]

let site_name = function
  | Ptrace_attach -> "ptrace-attach"
  | Ptrace_regs -> "ptrace-regs"
  | Ptrace_inject -> "ptrace-inject"
  | Ptrace_write -> "ptrace-write"
  | Procfs_maps -> "procfs-maps"
  | Procfs_scan -> "procfs-scan"
  | Procfs_clear -> "procfs-clear"
  | Snapshot_copy -> "snapshot-copy"
  | Fn_crash -> "fn-crash"
  | Fn_hang -> "fn-hang"
  | Node_crash -> "node-crash"
  | Node_hang -> "node-hang"
  | Cluster_msg_loss -> "cluster-msg-loss"
  | Heartbeat_drop -> "heartbeat-drop"
  | Snapshot_bitflip -> "snapshot-bitflip"
  | Snapshot_torn -> "snapshot-torn"
  | Restore_skip -> "restore-skip"

type rule = { prob : float; nth : int list }

type t = {
  rules : rule option array;
  rngs : Rng.t array;
  seen : int array;
  hits : int array;
}

let make_arrays seed =
  let root = Rng.create seed in
  let rngs =
    Array.init n_sites (fun i ->
        Rng.named_split root (site_name (List.nth all_sites i)))
  in
  {
    rules = Array.make n_sites None;
    rngs;
    seen = Array.make n_sites 0;
    hits = Array.make n_sites 0;
  }

let none = make_arrays 0

let is_none t = t == none

let create ~seed = make_arrays seed

let set t site ?(prob = 0.0) ?(nth = []) () =
  if is_none t then invalid_arg "Fault.set: cannot add rules to Fault.none";
  if prob < 0.0 || prob > 1.0 then invalid_arg "Fault.set: prob outside [0,1]";
  t.rules.(site_index site) <- Some { prob; nth }

let uniform ~seed ~prob sites =
  let t = create ~seed in
  List.iter (fun s -> set t s ~prob ()) sites;
  t

let fire t site =
  if is_none t then false
  else
    let i = site_index site in
    match t.rules.(i) with
    | None -> false
    | Some r ->
        t.seen.(i) <- t.seen.(i) + 1;
        let by_schedule = List.mem t.seen.(i) r.nth in
        let by_chance = r.prob > 0.0 && Rng.float t.rngs.(i) 1.0 < r.prob in
        if by_schedule || by_chance then begin
          t.hits.(i) <- t.hits.(i) + 1;
          true
        end
        else false

(* Parameter draw for a site that just fired (which page to flip, where to
   tear). Drawn from the site's own stream, so it only advances when the
   site actually fires — disabled plans and other sites are unaffected. *)
let draw t site ~bound =
  if is_none t then invalid_arg "Fault.draw: Fault.none never fires";
  if bound <= 0 then invalid_arg "Fault.draw: bound must be positive";
  Rng.int t.rngs.(site_index site) bound

let occurrences t site = t.seen.(site_index site)
let fired t site = t.hits.(site_index site)
let total_fired t = Array.fold_left ( + ) 0 t.hits

let pp_site ppf s = Format.pp_print_string ppf (site_name s)
