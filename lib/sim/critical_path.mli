(** Critical-path attribution over {!Span} trees.

    Walks each completed request's span tree, charges every phase its
    self time (duration minus children), and aggregates over percentile
    tail buckets of end-to-end latency — answering "which phase dominates
    the slowest requests?". Spans carrying an ["offpath"] attribute (work
    deferred past the response) are excluded with their subtrees; the
    per-request total prefers the root's ["e2e_ns"] attribute over the
    root's extent. *)

type phase = { phase_name : string; self_ns : int; share : float }

type bucket = {
  label : string;
  cutoff_ns : int;  (** Requests with e2e >= cutoff fall in the bucket. *)
  n_requests : int;
  phases : phase list;  (** Largest share first. *)
}

type report = { total_requests : int; buckets : bucket list }

val default_percentiles : float list
(** [[50; 90; 99]]. *)

val analyze : ?percentiles:float list -> Span.t -> report

val dominating : bucket -> phase option

val pp_bucket : Format.formatter -> bucket -> unit
val pp : Format.formatter -> report -> unit
