(** A binary min-heap keyed by integer priority (event timestamps).

    Ties are broken by insertion order, so events scheduled for the same
    instant fire FIFO — a property the discrete-event engine relies on for
    determinism.

    The engine itself now runs on {!Event_queue}; this heap is the simple
    reference implementation the differential property tests compare it
    against, so the two must keep identical observable ordering. Popped
    slots are overwritten and the array shrinks on large drains, so a
    drained heap no longer pins dispatched closures (or its peak-capacity
    array) against the GC. *)

type 'a t

val create : unit -> 'a t
val is_empty : 'a t -> bool
val size : 'a t -> int

val push : 'a t -> key:int -> 'a -> unit

val pop : 'a t -> (int * 'a) option
(** Remove and return the minimum-key element, if any. *)

val peek_key : 'a t -> int option
(** The minimum key without removing it. *)

val clear : 'a t -> unit
