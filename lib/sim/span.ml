(* Request-scoped spans with parent/child causality on the simulated
   clock.

   A collector is attached (optionally) to the FaaS stack; every hand-off
   opens or closes a span. Instrumentation is sim-time neutral by
   construction: this module only ever *reads* timestamps handed to it —
   it never touches an engine, schedules work, or draws randomness — so a
   run with a collector attached is bit-identical to one without.

   Spans form a tree per request: one root ("request") per request id,
   children for each phase (controller overhead, queueing, dispatch, exec,
   restore, ...). Two conventions keep the instrumentation call sites
   simple:

   - [phase_start]/[phase_stop] key open phases by (request id, name), so
     the component closing a phase (e.g. the dequeue site) needs no handle
     from the component that opened it (the enqueue site).
   - Deferred work whose duration is already decided (a strategy's restore
     runs for exactly [post_ns]) may be emitted as a completed span with a
     *future* stop timestamp; [finish_root] closes the root at the maximum
     of the completion time and the latest child stop (the per-track
     watermark), so such children still nest. *)

type record = {
  id : int;
  parent : int option;
  track : int;  (** Request id; becomes the Chrome [tid]. *)
  name : string;
  cat : string;
  start_ns : Time_ns.t;
  mutable stop_ns : Time_ns.t;  (* [open_stop] while the span is open *)
  mutable attrs : (string * string) list;
}

let open_stop = min_int

type t = {
  mutable rev_records : record list;
  mutable n_records : int;
  mutable n_open : int;
  mutable next_id : int;
  roots : (int, record) Hashtbl.t;  (* request id -> open root *)
  phases : (int * string, record) Hashtbl.t;  (* (request id, name) -> open span *)
  watermark : (int, Time_ns.t) Hashtbl.t;  (* track -> latest child stop *)
}

let create () =
  {
    rev_records = [];
    n_records = 0;
    n_open = 0;
    next_id = 0;
    roots = Hashtbl.create 64;
    phases = Hashtbl.create 64;
    watermark = Hashtbl.create 64;
  }

let is_open r = r.stop_ns = open_stop
let duration_ns r = if is_open r then None else Some (r.stop_ns - r.start_ns)
let add_attr r k v = r.attrs <- r.attrs @ [ (k, v) ]

let records t = List.rev t.rev_records
let count t = t.n_records
let open_count t = t.n_open

let bump_watermark t ~track stop =
  match Hashtbl.find_opt t.watermark track with
  | Some w when w >= stop -> ()
  | _ -> Hashtbl.replace t.watermark track stop

let start t ~at ?parent ?track ~name ?(cat = "span") ?(attrs = []) () =
  let track =
    match (track, parent) with
    | Some tr, _ -> tr
    | None, Some p -> p.track
    | None, None -> 0
  in
  let r =
    {
      id = t.next_id;
      parent = Option.map (fun p -> p.id) parent;
      track;
      name;
      cat;
      start_ns = at;
      stop_ns = open_stop;
      attrs;
    }
  in
  t.next_id <- t.next_id + 1;
  t.rev_records <- r :: t.rev_records;
  t.n_records <- t.n_records + 1;
  t.n_open <- t.n_open + 1;
  r

let finish t ~at ?(attrs = []) r =
  if not (is_open r) then invalid_arg (Printf.sprintf "Span.finish: %S already closed" r.name);
  if at < r.start_ns then
    invalid_arg (Printf.sprintf "Span.finish: %S would close before it started" r.name);
  r.stop_ns <- at;
  if attrs <> [] then r.attrs <- r.attrs @ attrs;
  t.n_open <- t.n_open - 1;
  bump_watermark t ~track:r.track at

let complete t ~start:s ~stop ?parent ?track ~name ?cat ?attrs () =
  if stop < s then invalid_arg (Printf.sprintf "Span.complete: %S has negative duration" name);
  let r = start t ~at:s ?parent ?track ~name ?cat ?attrs () in
  r.stop_ns <- stop;
  t.n_open <- t.n_open - 1;
  bump_watermark t ~track:r.track stop;
  r

(* -- request roots -- *)

let find_root t ~req_id = Hashtbl.find_opt t.roots req_id

let ensure_root t ~at ~req_id ?(attrs = []) () =
  match find_root t ~req_id with
  | Some r -> r
  | None ->
      let r = start t ~at ~track:req_id ~name:"request" ~cat:"request" ~attrs () in
      Hashtbl.replace t.roots req_id r;
      r

let finish_root t ~at ?(attrs = []) ~req_id () =
  match find_root t ~req_id with
  | None -> ()
  | Some r ->
      Hashtbl.remove t.roots req_id;
      (* Close any phase still open under this root (e.g. a queue wait cut
         short by a shed): the request is over, so is the phase. *)
      let stale =
        Hashtbl.fold
          (fun (rid, name) p acc -> if rid = req_id then (name, p) :: acc else acc)
          t.phases []
      in
      List.iter
        (fun (name, p) ->
          Hashtbl.remove t.phases (req_id, name);
          finish t ~at:(max at p.start_ns) p)
        stale;
      let stop =
        match Hashtbl.find_opt t.watermark r.track with
        | Some w -> max at w
        | None -> at
      in
      finish t ~at:stop ~attrs r

(* -- keyed phases -- *)

let phase_start t ~at ~req_id ~name ?(cat = "phase") ?attrs () =
  let root = ensure_root t ~at ~req_id () in
  (* A phase reopened under the same key (e.g. a retried request queueing
     again) closes the stale one first: phases never overlap themselves. *)
  (match Hashtbl.find_opt t.phases (req_id, name) with
  | Some stale ->
      Hashtbl.remove t.phases (req_id, name);
      finish t ~at:(max at stale.start_ns) stale
  | None -> ());
  let r = start t ~at ~parent:root ~name ~cat ?attrs () in
  Hashtbl.replace t.phases (req_id, name) r

let phase_stop t ~at ~req_id ~name ?(attrs = []) () =
  match Hashtbl.find_opt t.phases (req_id, name) with
  | None -> ()
  | Some r ->
      Hashtbl.remove t.phases (req_id, name);
      finish t ~at:(max at r.start_ns) ~attrs r

(* -- invariant checking (for tests and CI) -- *)

let check t =
  let by_id = Hashtbl.create (max 16 t.n_records) in
  List.iter (fun r -> Hashtbl.replace by_id r.id r) t.rev_records;
  let rec walk = function
    | [] -> Ok ()
    | r :: rest ->
        if is_open r then Error (Printf.sprintf "span #%d %S never closed" r.id r.name)
        else begin
          match r.parent with
          | None -> walk rest
          | Some pid -> (
              match Hashtbl.find_opt by_id pid with
              | None -> Error (Printf.sprintf "span #%d %S has unknown parent #%d" r.id r.name pid)
              | Some p ->
                  if is_open p then
                    Error (Printf.sprintf "span #%d %S nested under open parent %S" r.id r.name p.name)
                  else if r.start_ns < p.start_ns || r.stop_ns > p.stop_ns then
                    Error
                      (Printf.sprintf
                         "span #%d %S [%d,%d] escapes parent %S [%d,%d]"
                         r.id r.name r.start_ns r.stop_ns p.name p.start_ns p.stop_ns)
                  else walk rest)
        end
  in
  walk t.rev_records

(* -- Chrome trace-event export -- *)

let us_of_ns ns = float_of_int ns /. 1000.0

let chrome_event r =
  let args =
    List.map (fun (k, v) -> (k, Json.String v)) r.attrs
    @ (match r.parent with Some p -> [ ("parent_span", Json.Int p) ] | None -> [])
    @ [ ("span_id", Json.Int r.id) ]
  in
  Json.Assoc
    [
      ("name", Json.String r.name);
      ("cat", Json.String r.cat);
      ("ph", Json.String "X");
      ("ts", Json.Float (us_of_ns r.start_ns));
      ("dur", Json.Float (us_of_ns (r.stop_ns - r.start_ns)));
      ("pid", Json.Int 1);
      ("tid", Json.Int r.track);
      ("args", Json.Assoc args);
    ]

let metadata_events t =
  let tracks = Hashtbl.create 16 in
  List.iter
    (fun r -> if not (Hashtbl.mem tracks r.track) then Hashtbl.replace tracks r.track ())
    (records t);
  let sorted = List.sort compare (Hashtbl.fold (fun k () acc -> k :: acc) tracks []) in
  Json.Assoc
    [
      ("name", Json.String "process_name");
      ("ph", Json.String "M");
      ("pid", Json.Int 1);
      ("tid", Json.Int 0);
      ("args", Json.Assoc [ ("name", Json.String "groundhog-sim") ]);
    ]
  :: List.map
       (fun track ->
         Json.Assoc
           [
             ("name", Json.String "thread_name");
             ("ph", Json.String "M");
             ("pid", Json.Int 1);
             ("tid", Json.Int track);
             ("args", Json.Assoc [ ("name", Json.String (Printf.sprintf "request %d" track)) ]);
           ])
       sorted

let to_chrome t =
  let spans = List.filter (fun r -> not (is_open r)) (records t) in
  Json.Assoc
    [
      ("traceEvents", Json.List (metadata_events t @ List.map chrome_event spans));
      ("displayTimeUnit", Json.String "ms");
    ]

let chrome_json t = Json.to_string (to_chrome t)

(* Schema check used by CI and the [trace-validate] subcommand: the
   document must be a Chrome trace-event container whose events Perfetto
   will accept. Returns the number of events. *)
let validate_chrome json =
  let ( let* ) = Result.bind in
  let* events =
    match Json.member "traceEvents" json with
    | Some (Json.List l) -> Ok l
    | Some _ -> Error "traceEvents is not an array"
    | None -> Error "missing traceEvents"
  in
  let check_event i ev =
    let field name = Json.member name ev in
    let* _ =
      match Option.bind (field "name") Json.to_str with
      | Some _ -> Ok ()
      | None -> Error (Printf.sprintf "event %d: missing string \"name\"" i)
    in
    let* ph =
      match Option.bind (field "ph") Json.to_str with
      | Some ph -> Ok ph
      | None -> Error (Printf.sprintf "event %d: missing string \"ph\"" i)
    in
    let* _ =
      match (Option.bind (field "pid") Json.to_number, Option.bind (field "tid") Json.to_number) with
      | Some _, Some _ -> Ok ()
      | _ -> Error (Printf.sprintf "event %d: missing numeric pid/tid" i)
    in
    match ph with
    | "M" -> Ok ()
    | "X" -> (
        let* ts =
          match Option.bind (field "ts") Json.to_number with
          | Some ts -> Ok ts
          | None -> Error (Printf.sprintf "event %d: missing numeric \"ts\"" i)
        in
        let* dur =
          match Option.bind (field "dur") Json.to_number with
          | Some d -> Ok d
          | None -> Error (Printf.sprintf "event %d: complete event without \"dur\"" i)
        in
        if dur < 0.0 then Error (Printf.sprintf "event %d: negative duration" i)
        else if ts < 0.0 then Error (Printf.sprintf "event %d: negative timestamp" i)
        else Ok ())
    | other -> Error (Printf.sprintf "event %d: unsupported phase %S" i other)
  in
  let rec all i = function
    | [] -> Ok (List.length events)
    | ev :: rest ->
        let* () = check_event i ev in
        all (i + 1) rest
  in
  all 0 events
