type t = {
  min_value : float;
  ratio : float;  (* bucket upper/lower bound ratio *)
  counts : int array;
  mutable overflow : int;  (* samples above the last bucket's upper bound *)
  mutable max_seen : float;
  mutable total : int;
}

let create ?(buckets_per_decade = 5) ~min_value ~max_value () =
  if min_value <= 0.0 || max_value <= min_value then
    invalid_arg "Histogram.create: need 0 < min_value < max_value";
  if buckets_per_decade < 1 then invalid_arg "Histogram.create: need at least 1 bucket/decade";
  let ratio = 10.0 ** (1.0 /. float_of_int buckets_per_decade) in
  let n =
    int_of_float (ceil (log (max_value /. min_value) /. log ratio)) |> max 1
  in
  { min_value; ratio; counts = Array.make n 0; overflow = 0; max_seen = neg_infinity; total = 0 }

(* Index of the covering bucket, or the bucket count for values above the
   covered range — those are tallied separately so tail quantiles don't get
   silently under-reported as the last bucket's bound. The log quotient only
   seeds the search: its round-off can land a value sitting exactly on a
   bucket boundary (min *. ratio^k) one bucket off, so the index is nudged
   until it agrees with the exact bound grid [bounds] reports. *)
let bucket_of t v =
  if v <= t.min_value then 0
  else begin
    let n = Array.length t.counts in
    let lo k = t.min_value *. (t.ratio ** float_of_int k) in
    let i = int_of_float (log (v /. t.min_value) /. log t.ratio) in
    let i = ref (if i < 0 then 0 else min i n) in
    while !i < n && v >= lo (!i + 1) do
      incr i
    done;
    while !i > 0 && v < lo !i do
      decr i
    done;
    !i
  end

let add t v =
  let i = bucket_of t v in
  if i = Array.length t.counts then t.overflow <- t.overflow + 1
  else t.counts.(i) <- t.counts.(i) + 1;
  if v > t.max_seen then t.max_seen <- v;
  t.total <- t.total + 1

let add_all t a = Array.iter (add t) a
let count t = t.total
let overflow t = t.overflow
let max_seen t = t.max_seen

let bounds t i =
  let lo = t.min_value *. (t.ratio ** float_of_int i) in
  (lo, lo *. t.ratio)

let buckets t =
  List.init (Array.length t.counts) (fun i ->
      let lo, hi = bounds t i in
      (lo, hi, t.counts.(i)))

let quantile t q =
  if t.total = 0 then invalid_arg "Histogram.quantile: empty";
  if q < 0.0 || q > 1.0 then invalid_arg "Histogram.quantile: q out of range";
  let target = int_of_float (ceil (q *. float_of_int t.total)) |> max 1 in
  let rec go i seen =
    if i >= Array.length t.counts then
      (* The q-th sample is in the overflow bucket, which has no upper
         bound; the largest value actually observed is the honest answer. *)
      t.max_seen
    else begin
      let seen = seen + t.counts.(i) in
      if seen >= target then snd (bounds t i) else go (i + 1) seen
    end
  in
  go 0 0

let render ?(width = 40) ppf t =
  let peak = Array.fold_left max 1 t.counts |> max t.overflow in
  List.iter
    (fun (lo, hi, n) ->
      if n > 0 then begin
        let bar = String.make (max 1 (n * width / peak)) '#' in
        Format.fprintf ppf "%10.2f - %10.2f  %6d  %s@." lo hi n bar
      end)
    (buckets t);
  if t.overflow > 0 then begin
    let lo = fst (bounds t (Array.length t.counts)) in
    let bar = String.make (max 1 (t.overflow * width / peak)) '#' in
    Format.fprintf ppf "%10.2f - %10s  %6d  %s@." lo
      (Printf.sprintf "%.2f" t.max_seen)
      t.overflow bar
  end
