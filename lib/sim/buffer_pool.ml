(* Per-domain reuse pools for the big page-data arrays.

   The simulator's memory model churns through multi-hundred-KB int
   arrays: every fork-isolation request clones the whole address space
   (one array per VMA, discarded when the child is reaped), every
   mremap/brk resize swaps the heap's backing array, and every snapshot
   capture copies each region. Fresh [Array.make] for each of these puts
   megabytes per request on the major heap; recycling the arrays through
   a free list caps that churn at the working set.

   One pool per domain, reached through [Domain.DLS]: acquire/release
   never synchronize, so pooling costs nothing on the experiment hot path
   and is trivially safe under {!Domain_pool} sharding. An array released
   on one domain is reused only by that domain — cross-domain traffic
   would need locks and buys nothing for per-cell lifetimes.

   Arrays are pooled by *exact* length (consumers treat [Array.length]
   as the page count, so an over-sized array would corrupt bitmap/blit
   arithmetic) and handed back either zeroed — indistinguishable from
   [Array.make n 0] — or raw for callers that overwrite every slot.
   Each pool holds at most [max_held_words] (64 M words, 512 MB) and
   drops releases beyond that on the floor for the GC to take. *)

let max_held_words = 64 * 1024 * 1024

(* GH_BUFFER_POOL=off restores the pre-pool allocation profile (every
   acquire a fresh [Array.make], every release dropped) — the A/B knob
   behind the GC-churn numbers in BENCH_engine.json. *)
let enabled =
  match Sys.getenv_opt "GH_BUFFER_POOL" with
  | Some ("0" | "off" | "false") -> false
  | _ -> true

(* Arrays below a cache line are cheaper to allocate than to look up. *)
let min_pooled_len = 64

type pool = {
  by_len : (int, int array list) Hashtbl.t;
  mutable held_words : int;
  mutable hits : int;
  mutable misses : int;
  mutable released : int;
}

let key : pool Domain.DLS.key =
  Domain.DLS.new_key (fun () ->
      { by_len = Hashtbl.create 64; held_words = 0; hits = 0; misses = 0; released = 0 })

let pool () = Domain.DLS.get key

(* Contents unspecified: the caller promises to overwrite every slot. *)
let acquire_raw n =
  if n < min_pooled_len || not enabled then Array.make n 0
  else begin
    let p = pool () in
    match Hashtbl.find_opt p.by_len n with
    | Some (arr :: rest) ->
        (if rest = [] then Hashtbl.remove p.by_len n else Hashtbl.replace p.by_len n rest);
        p.held_words <- p.held_words - n;
        p.hits <- p.hits + 1;
        arr
    | Some [] | None ->
        p.misses <- p.misses + 1;
        Array.make n 0
  end

(* Indistinguishable from [Array.make n 0]. *)
let acquire_zeroed n =
  if n < min_pooled_len then Array.make n 0
  else begin
    let arr = acquire_raw n in
    Array.fill arr 0 n 0;
    arr
  end

let release arr =
  let n = Array.length arr in
  if n >= min_pooled_len && enabled then begin
    let p = pool () in
    if p.held_words + n <= max_held_words then begin
      let tail = Option.value (Hashtbl.find_opt p.by_len n) ~default:[] in
      Hashtbl.replace p.by_len n (arr :: tail);
      p.held_words <- p.held_words + n;
      p.released <- p.released + 1
    end
  end

type stats = { hits : int; misses : int; releases : int; held_words : int }

let stats () =
  let p = pool () in
  { hits = p.hits; misses = p.misses; releases = p.released; held_words = p.held_words }
