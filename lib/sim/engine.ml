(* The hot loop runs on the calendar queue; the binary [Heap] survives as
   the ordering oracle for the differential property tests. Both order
   events by (time, insertion seq), so swapping queues is invisible to every
   experiment: `run all` replays event-for-event. *)

let nop () = ()

type t = { mutable clock : Time_ns.t; queue : (unit -> unit) Event_queue.t }

let create () = { clock = 0; queue = Event_queue.create ~dummy:nop }
let now t = t.clock

let at t ~time f =
  if time < t.clock then invalid_arg "Engine.at: instant in the simulated past";
  Event_queue.push t.queue ~key:time f

let at_batch t events =
  (* Validate everything up front so a bad instant raises before any event
     is admitted, then admit the whole list in one pass. *)
  List.iter
    (fun (time, _) ->
      if time < t.clock then invalid_arg "Engine.at_batch: instant in the simulated past")
    events;
  Event_queue.push_list t.queue events

let schedule t ~after f =
  if after < 0 then invalid_arg "Engine.schedule: negative delay";
  at t ~time:(t.clock + after) f

let step t =
  match Event_queue.pop t.queue with
  | None -> false
  | Some (time, f) ->
      t.clock <- time;
      f ();
      true

let run t ~until =
  let continue = ref true in
  while !continue do
    match Event_queue.peek_key t.queue with
    | Some key when key <= until -> ignore (step t)
    | Some _ | None -> continue := false
  done;
  if t.clock < until then t.clock <- until

(* Generous enough that every legitimate experiment stays far below it: the
   full-profile sweeps dispatch a few million events, so two hundred million
   means a self-sustaining chain, not a big workload. *)
let default_max_events = 200_000_000

let run_all ?(max_events = default_max_events) t =
  if max_events <= 0 then invalid_arg "Engine.run_all: max_events must be positive";
  let fired = ref 0 in
  let continue = ref true in
  while !continue do
    if !fired >= max_events && Event_queue.size t.queue > 0 then
      failwith
        (Printf.sprintf
           "Engine.run_all: dispatched %d events without draining (clock=%dns, %d still \
            pending) — likely a self-sustaining event chain; pass ~max_events to raise \
            the guard"
           !fired t.clock (Event_queue.size t.queue))
    else if step t then incr fired
    else continue := false
  done

let pending t = Event_queue.size t.queue
