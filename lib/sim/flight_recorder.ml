(* Crash forensics for the simulated fleet: a bounded ring of dumps,
   each freezing the observable past — recent trace events, closed
   spans, and per-window metric deltas — at the moment a failure edge
   fires (container poisoned, node quarantined, breaker opened, scrub
   corruption).

   The recorder holds no copies of anything until a snapshot is taken;
   it reads the attached collectors' rings at that instant. Like every
   observability component it never schedules engine work or draws
   randomness — snapshots happen inside failure handlers that already
   hold the clock, so recording is sim-time neutral. *)

type dump = {
  d_at : Time_ns.t;
  d_reason : string;  (* failure edge: "poisoned", "quarantine", ... *)
  d_detail : string;
  d_node : string;  (* "" when the source has no node identity *)
  d_window_ns : Time_ns.t;
  d_events : Trace.event list;  (* within [d_at - window, d_at], oldest first *)
  d_spans : Span.record list;  (* closed spans overlapping the window *)
  d_series : (string * (int * float) list) list;  (* window-indexed deltas/samples *)
}

type t = {
  name : string;
  capacity : int;
  window_ns : Time_ns.t;
  trace : Trace.t option;
  spans : Span.t option;
  series : Timeseries.t option;
  mutable rev_dumps : dump list;  (* newest first, at most [capacity] *)
  mutable held : int;
  mutable total : int;
}

let create ?(capacity = 16) ?(window_ns = Time_ns.of_ms 500.0) ?trace ?spans ?series ~name
    () =
  if capacity < 1 then invalid_arg "Flight_recorder.create: capacity must be >= 1";
  if window_ns <= 0 then invalid_arg "Flight_recorder.create: window_ns must be positive";
  {
    name;
    capacity;
    window_ns;
    trace;
    spans;
    series;
    rev_dumps = [];
    held = 0;
    total = 0;
  }

let name t = t.name
let window_ns t = t.window_ns
let total t = t.total
let dumps t = List.rev t.rev_dumps

let snapshot t ~now ?(node = "") ~reason ~detail () =
  let since = max 0 (now - t.window_ns) in
  let events =
    match t.trace with
    | None -> []
    | Some tr -> List.filter (fun (e : Trace.event) -> e.Trace.at >= since) (Trace.events tr)
  in
  let spans =
    match t.spans with
    | None -> []
    | Some sp ->
        List.filter
          (fun (r : Span.record) ->
            (not (Span.is_open r)) && r.Span.stop_ns >= since && r.Span.start_ns <= now)
          (Span.records sp)
  in
  let series = match t.series with None -> [] | Some ts -> Timeseries.recent ts ~since in
  let d =
    {
      d_at = now;
      d_reason = reason;
      d_detail = detail;
      d_node = node;
      d_window_ns = t.window_ns;
      d_events = events;
      d_spans = spans;
      d_series = series;
    }
  in
  t.rev_dumps <- d :: t.rev_dumps;
  t.total <- t.total + 1;
  if t.held >= t.capacity then
    (* Drop the oldest dump: the ring keeps the most recent failures. *)
    t.rev_dumps <- List.filteri (fun i _ -> i < t.capacity) t.rev_dumps
  else t.held <- t.held + 1;
  d

(* ---- export ----------------------------------------------------------- *)

let dump_to_json d =
  Json.Assoc
    [
      ("at_ns", Json.Int d.d_at);
      ("reason", Json.String d.d_reason);
      ("detail", Json.String d.d_detail);
      ("node", Json.String d.d_node);
      ("window_ns", Json.Int d.d_window_ns);
      ( "events",
        Json.List
          (List.map
             (fun (e : Trace.event) ->
               Json.Assoc
                 [
                   ("at_ns", Json.Int e.Trace.at);
                   ("category", Json.String e.Trace.category);
                   ("what", Json.String e.Trace.what);
                   ("detail", Json.String e.Trace.detail);
                 ])
             d.d_events) );
      ( "spans",
        Json.List
          (List.map
             (fun (r : Span.record) ->
               Json.Assoc
                 [
                   ("name", Json.String r.Span.name);
                   ("cat", Json.String r.Span.cat);
                   ("track", Json.Int r.Span.track);
                   ("start_ns", Json.Int r.Span.start_ns);
                   ("stop_ns", Json.Int r.Span.stop_ns);
                 ])
             d.d_spans) );
      ( "series",
        Json.List
          (List.map
             (fun (name, pts) ->
               Json.Assoc
                 [
                   ("name", Json.String name);
                   ( "points",
                     Json.List
                       (List.map
                          (fun (w, v) -> Json.List [ Json.Int w; Json.Float v ])
                          pts) );
                 ])
             d.d_series) );
    ]

let to_json t =
  Json.Assoc
    [
      ("recorder", Json.String t.name);
      ("window_ns", Json.Int t.window_ns);
      ("total", Json.Int t.total);
      ("dumps", Json.List (List.map dump_to_json (dumps t)));
    ]

(* ---- schema validation (CI, like Span.validate_chrome) ---------------- *)

let ( let* ) = Result.bind

let req_int name j =
  match Option.bind (Json.member name j) Json.to_number with
  | Some v -> Ok (int_of_float v)
  | None -> Error (Printf.sprintf "missing numeric %S" name)

let req_str name j =
  match Option.bind (Json.member name j) Json.to_str with
  | Some s -> Ok s
  | None -> Error (Printf.sprintf "missing string %S" name)

let req_list name j =
  match Option.bind (Json.member name j) Json.to_list with
  | Some l -> Ok l
  | None -> Error (Printf.sprintf "missing array %S" name)

let check_dump i d =
  let ctx msg = Printf.sprintf "dump %d: %s" i msg in
  let* at = Result.map_error ctx (req_int "at_ns" d) in
  let* _ = Result.map_error ctx (req_str "reason" d) in
  let* _ = Result.map_error ctx (req_str "node" d) in
  let* window = Result.map_error ctx (req_int "window_ns" d) in
  if window <= 0 then Error (ctx "window_ns must be positive")
  else begin
    let since = max 0 (at - window) in
    let* events = Result.map_error ctx (req_list "events" d) in
    let* () =
      List.fold_left
        (fun acc ev ->
          let* () = acc in
          let* e_at = Result.map_error ctx (req_int "at_ns" ev) in
          let* _ = Result.map_error ctx (req_str "what" ev) in
          if e_at < since || e_at > at then
            Error (ctx (Printf.sprintf "event at %d outside window [%d, %d]" e_at since at))
          else Ok ())
        (Ok ()) events
    in
    let* spans = Result.map_error ctx (req_list "spans" d) in
    let* () =
      List.fold_left
        (fun acc sp ->
          let* () = acc in
          let* start = Result.map_error ctx (req_int "start_ns" sp) in
          let* stop = Result.map_error ctx (req_int "stop_ns" sp) in
          let* _ = Result.map_error ctx (req_str "name" sp) in
          if stop < start then Error (ctx "span with negative duration")
          else if stop < since || start > at then
            Error (ctx "span does not overlap the dump window")
          else Ok ())
        (Ok ()) spans
    in
    let* series = Result.map_error ctx (req_list "series" d) in
    List.fold_left
      (fun acc s ->
        let* () = acc in
        let* _ = Result.map_error ctx (req_str "name" s) in
        let* points = Result.map_error ctx (req_list "points" s) in
        List.fold_left
          (fun acc p ->
            let* () = acc in
            match p with
            | Json.List [ w; v ] when Json.to_number w <> None && Json.to_number v <> None
              ->
                Ok ()
            | _ -> Error (ctx "series point is not a [window, value] pair"))
          (Ok ()) points)
      (Ok ()) series
  end

let validate json =
  let* _ = req_str "recorder" json in
  let* _ = req_int "window_ns" json in
  let* dumps = req_list "dumps" json in
  let* () =
    List.fold_left
      (fun acc (i, d) ->
        let* () = acc in
        check_dump i d)
      (Ok ())
      (List.mapi (fun i d -> (i, d)) dumps)
  in
  Ok (List.length dumps)
