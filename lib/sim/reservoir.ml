(* Bounded uniform sample of a float stream (Vitter's Algorithm R).

   Below capacity the reservoir stores every value exactly, in arrival
   order, and never touches its RNG — so short runs report the same
   quantiles as an unbounded list and stay bit-identical to code that
   kept one. Past capacity each new value replaces a uniformly chosen
   slot with probability capacity/seen. *)

type t = {
  capacity : int;
  rng : Rng.t;
  buf : float array;
  mutable seen : int;
}

let create ?(seed = 0) capacity =
  if capacity <= 0 then invalid_arg "Reservoir.create: capacity must be positive";
  { capacity; rng = Rng.create seed; buf = Array.make capacity 0.0; seen = 0 }

let capacity t = t.capacity
let seen t = t.seen
let stored t = min t.seen t.capacity

let add t v =
  if t.seen < t.capacity then t.buf.(t.seen) <- v
  else begin
    let j = Rng.int t.rng (t.seen + 1) in
    if j < t.capacity then t.buf.(j) <- v
  end;
  t.seen <- t.seen + 1

(* Newest-first, matching the accumulator-list convention (`v :: acc`)
   this module replaces. Only exact below capacity; past it the sample
   retains slot order, which is good enough for quantiles. *)
let to_list t =
  let n = stored t in
  List.init n (fun i -> t.buf.(n - 1 - i))

let fold f init t =
  let acc = ref init in
  for i = 0 to stored t - 1 do
    acc := f !acc t.buf.(i)
  done;
  !acc
