type event = { at : Time_ns.t; category : string; what : string; detail : string }

type t = {
  buf : event option array;
  mutable next : int;  (* total events ever emitted *)
  (* Per-category sequence numbers, newest first. Maintained at emit time
     so [find] touches only its own category instead of rescanning the
     whole ring; sequences evicted by the ring are pruned lazily on the
     next lookup. *)
  index : (string, int list ref) Hashtbl.t;
}

let create ?(capacity = 4096) () =
  if capacity < 1 then invalid_arg "Trace.create: capacity must be positive";
  { buf = Array.make capacity None; next = 0; index = Hashtbl.create 16 }

let emit t ~at ~category ~what detail =
  t.buf.(t.next mod Array.length t.buf) <- Some { at; category; what; detail };
  (match Hashtbl.find_opt t.index category with
  | Some seqs -> seqs := t.next :: !seqs
  | None -> Hashtbl.replace t.index category (ref [ t.next ]));
  t.next <- t.next + 1

let emitf t ~at ~category ~what fmt =
  Printf.ksprintf (fun detail -> emit t ~at ~category ~what detail) fmt

(* The common call-site shape is "emit if a trace is attached". Routing
   the format through [ikfprintf] when none is makes the disabled path
   allocation-free: the format arguments are consumed without building
   the string. *)
let emitf_opt t ~at ~category ~what fmt =
  match t with
  | Some tr -> Printf.ksprintf (fun detail -> emit tr ~at ~category ~what detail) fmt
  | None -> Printf.ikfprintf ignore () fmt

let length t = min t.next (Array.length t.buf)
let dropped t = max 0 (t.next - Array.length t.buf)

let events t =
  let cap = Array.length t.buf in
  let n = length t in
  let start = if t.next > cap then t.next mod cap else 0 in
  List.init n (fun i ->
      match t.buf.((start + i) mod cap) with
      | Some e -> e
      | None -> assert false (* slots below [length] are always filled *))

let clear t =
  Array.fill t.buf 0 (Array.length t.buf) None;
  t.next <- 0;
  Hashtbl.reset t.index

let find t ~category =
  match Hashtbl.find_opt t.index category with
  | None -> []
  | Some seqs ->
      let oldest_live = t.next - Array.length t.buf in
      (* Prune ring-evicted sequence numbers (they are a suffix of the
         newest-first list), then write the trimmed list back so later
         lookups stay proportional to the live entries. *)
      let live = List.filter (fun seq -> seq >= oldest_live) !seqs in
      seqs := live;
      List.rev_map
        (fun seq ->
          match t.buf.(seq mod Array.length t.buf) with
          | Some e -> e
          | None -> assert false (* live sequences point at filled slots *))
        live

let pp_event ppf e =
  Format.fprintf ppf "[%a] %-10s %-18s %s" Time_ns.pp e.at e.category e.what e.detail

let render ppf t =
  if dropped t > 0 then Format.fprintf ppf "... (%d earlier events dropped)@." (dropped t);
  List.iter (fun e -> Format.fprintf ppf "%a@." pp_event e) (events t)
