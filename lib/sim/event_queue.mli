(** Calendar-queue event scheduler: the engine's hot-loop priority queue.

    Orders elements exactly like {!Heap} — ascending integer key, FIFO among
    equal keys — but hashes keys into a ring of time buckets so the common
    push/pop is O(1) instead of an O(log n) sift, stores entries in pooled
    structure-of-arrays buckets so a push allocates nothing, and overwrites
    vacated slots so popped values are immediately collectable. {!Heap} is
    retained as the reference implementation; the property suite checks the
    two agree on every (key, seq) pop order.

    Worst cases degrade gracefully: keys beyond the ring's horizon spill to
    an overflow stack that is redistributed (and the bucket width retuned)
    when the ring drains, and keys below the window — possible only by
    scheduling just above a wall clock the window has already passed — go to
    a small auxiliary heap that always drains first. *)

type 'a t

val create : dummy:'a -> 'a t
(** [create ~dummy] is an empty queue. [dummy] is a throwaway value of the
    element type used to fill vacated pool slots (e.g. [fun () -> ()] for a
    thunk queue); it is never returned by {!pop}. *)

val is_empty : 'a t -> bool
val size : 'a t -> int

val push : 'a t -> key:int -> 'a -> unit

val push_list : 'a t -> (int * 'a) list -> unit
(** Batch admission: push every [(key, value)] pair in list order — the
    sequence numbers, and hence FIFO ties, match a [push] loop exactly — in
    a single pre-sized pass. Sorted arrival lists (e.g. [Synthetic.burst])
    admit at O(1) per entry. *)

val pop : 'a t -> (int * 'a) option
(** Remove and return the minimum-key element, if any; FIFO among equal
    keys. *)

val peek_key : 'a t -> int option
(** The minimum key without removing it. *)

val clear : 'a t -> unit
(** Drop every element and release the pooled storage. *)
