module Account = Gh_sim.Account
module Cost = Gh_kernel.Cost

type t = {
  cost : Cost.t;
  mutable vmas : Vma.t list;
  mutable brk_addr : int;
  heap_base : int;
  heap_id : int;
  stack_id : int;
  mutable next_vma_id : int;
  mutable mmap_cursor : int;
  mutable sd_on : bool;
  mutable cow_hook : (Vma.t -> int -> unit) option;
      (* Called just before a CoW-armed page's current contents are lost —
         overwritten by a write, zapped by madvise, or dropped with its
         mapping. Incremental snapshots use it to salvage original data. *)
}

let page_size = Vma.page_size

(* Conventional bases, loosely after x86-64 Linux. *)
let text_base = 0x0000_0040_0000
let heap_base_default = 0x0000_0100_0000
let mmap_base = 0x7f00_0000_0000
let stack_base = 0x7ffd_0000_0000

let fresh_id t =
  let id = t.next_vma_id in
  t.next_vma_id <- id + 1;
  id

let insert_sorted vmas vma =
  let rec go = function
    | [] -> [ vma ]
    | v :: rest when v.Vma.start_addr < vma.Vma.start_addr -> v :: go rest
    | rest -> vma :: rest
  in
  go vmas

let create ?(text_pages = 512) ?(data_pages = 128) ?(heap_pages = 256)
    ?(stack_pages = 32) ~cost () =
  (* The brk heap sits above the data segment (with a guard gap), like the
     loader would place it; the fixed default only holds for small
     binaries. *)
  let data_end = text_base + ((text_pages + data_pages) * page_size) in
  let heap_base = max heap_base_default (data_end + (64 * page_size)) in
  let t =
    {
      cost;
      vmas = [];
      brk_addr = heap_base + (heap_pages * page_size);
      heap_base;
      heap_id = 1;
      stack_id = 3;
      next_vma_id = 4;
      mmap_cursor = mmap_base;
      sd_on = false;
      cow_hook = None;
    }
  in
  let text = Vma.create ~id:0 ~start_addr:text_base ~n_pages:text_pages ~prot:Prot.rx Vma.Text in
  let heap =
    Vma.create ~id:t.heap_id ~start_addr:heap_base ~n_pages:heap_pages ~prot:Prot.rw
      Vma.Heap
  in
  let data =
    Vma.create ~id:2
      ~start_addr:(text_base + (text_pages * page_size))
      ~n_pages:data_pages ~prot:Prot.rw Vma.Data
  in
  let stack =
    Vma.create ~id:t.stack_id ~start_addr:stack_base ~n_pages:stack_pages ~prot:Prot.rw Vma.Stack
  in
  (* The loader already touched text and data. *)
  Bitmap.fill text.Vma.present true;
  Bitmap.fill data.Vma.present true;
  t.vmas <- List.fold_left insert_sorted [] [ text; heap; data; stack ];
  t

let cost t = t.cost
let vmas t = t.vmas
let vma_count t = List.length t.vmas
let brk t = t.brk_addr

let find_vma_by_id t id = List.find_opt (fun v -> v.Vma.id = id) t.vmas
let find_vma t addr = List.find_opt (fun v -> Vma.contains v addr) t.vmas

let heap t =
  match find_vma_by_id t t.heap_id with
  | Some v -> v
  | None -> invalid_arg "Address_space.heap: heap was unmapped"

let stack t =
  match find_vma_by_id t t.stack_id with
  | Some v -> v
  | None -> invalid_arg "Address_space.stack: stack was unmapped"

(* Fault accounting shared by the single-page and bulk accessors. The
   counters let bulk ranges charge once instead of per page. *)
type fault_counts = {
  mutable first_touch : int;
  mutable demand_zero : int;
  mutable cow : int;
  mutable track : int;  (* SD re-arm or Uffd round trip *)
}

let no_faults () = { first_touch = 0; demand_zero = 0; cow = 0; track = 0 }

let set_cow_hook t hook = t.cow_hook <- hook

let fire_cow_hook t vma i =
  match t.cow_hook with Some hook -> hook vma i | None -> ()

(* Salvage every still-armed page of a range whose contents are about to
   disappear (munmap, madvise, brk shrink). *)
let salvage_range t (vma : Vma.t) ~pos ~len =
  if t.cow_hook <> None then begin
    let len = min len (vma.Vma.n_pages - pos) in
    if len > 0 then
      Bitmap.iter_set_range vma.Vma.cow_pending ~pos ~len (fun i ->
          fire_cow_hook t vma i;
          Bitmap.set vma.Vma.cow_pending i false)
  end

let charge_faults t acct fc ~gran ~reads ~writes =
  let c = t.cost in
  let track_ns =
    match c.Cost.tracking with
    | Cost.Soft_dirty | Cost.Kernel_list -> c.Cost.sd_fault_ns
    | Cost.Uffd -> c.Cost.uffd_fault_ns
  in
  (* With huge-page-backed regions one PTE fault covers [gran] pages. *)
  let per_block n = if gran <= 1 then n else (n + gran - 1) / gran in
  Account.charge acct
    ((fc.first_touch * c.Cost.first_touch_fault_ns)
    + (per_block fc.demand_zero * c.Cost.demand_zero_fault_ns)
    + (fc.cow * c.Cost.cow_fault_ns)
    + (per_block fc.track * track_ns)
    + (reads * c.Cost.page_read_ns)
    + (writes * c.Cost.page_write_ns))

let write_one t fc (vma : Vma.t) i v =
  if not vma.prot.Prot.write then invalid_arg "Address_space: write to non-writable VMA";
  if Bitmap.get vma.untouched i then begin
    fc.first_touch <- fc.first_touch + 1;
    Bitmap.set vma.untouched i false
  end;
  if not (Bitmap.get vma.present i) then begin
    fc.demand_zero <- fc.demand_zero + 1;
    Bitmap.set vma.present i true;
    (* A freshly faulted-in page is born dirty: no separate re-arm fault. *)
    Bitmap.set vma.soft_dirty i true
  end
  else begin
    if Bitmap.get vma.cow_pending i then begin
      fc.cow <- fc.cow + 1;
      fire_cow_hook t vma i;
      Bitmap.set vma.cow_pending i false
    end;
    if t.sd_on && not (Bitmap.get vma.soft_dirty i) then fc.track <- fc.track + 1;
    Bitmap.set vma.soft_dirty i true
  end;
  vma.data.(i) <- v

let read_one t fc (vma : Vma.t) i =
  ignore t;
  if not vma.prot.Prot.read then invalid_arg "Address_space: read from non-readable VMA";
  if Bitmap.get vma.untouched i then begin
    fc.first_touch <- fc.first_touch + 1;
    Bitmap.set vma.untouched i false
  end;
  if not (Bitmap.get vma.present i) then begin
    (* Read fault maps the shared zero page. Like Linux, the freshly
       created PTE is born soft-dirty — this is what lets Groundhog notice
       pages whose contents were zapped (madvise) and then merely read. *)
    fc.demand_zero <- fc.demand_zero + 1;
    Bitmap.set vma.present i true;
    Bitmap.set vma.soft_dirty i true
  end;
  vma.data.(i)

let check_page_bounds (vma : Vma.t) i =
  if i < 0 || i >= vma.n_pages then invalid_arg "Address_space: page index out of bounds"

let write_page t acct vma i v =
  check_page_bounds vma i;
  let fc = no_faults () in
  write_one t fc vma i v;
  charge_faults t acct fc ~gran:vma.Vma.fault_gran ~reads:0 ~writes:1

let read_page t acct vma i =
  check_page_bounds vma i;
  let fc = no_faults () in
  let v = read_one t fc vma i in
  charge_faults t acct fc ~gran:vma.Vma.fault_gran ~reads:1 ~writes:0;
  v

let write_addr t acct addr v =
  match find_vma t addr with
  | None -> invalid_arg "Address_space.write_addr: segfault (unmapped address)"
  | Some vma -> write_page t acct vma (Vma.page_index vma addr) v

let read_addr t acct addr =
  match find_vma t addr with
  | None -> invalid_arg "Address_space.read_addr: segfault (unmapped address)"
  | Some vma -> read_page t acct vma (Vma.page_index vma addr)

let dirty_range t acct vma ~pos ~len ~value =
  if len < 0 || pos < 0 || pos + len > vma.Vma.n_pages then
    invalid_arg "Address_space.dirty_range: range out of bounds";
  let fc = no_faults () in
  for i = pos to pos + len - 1 do
    write_one t fc vma i value
  done;
  charge_faults t acct fc ~gran:vma.Vma.fault_gran ~reads:0 ~writes:len

let read_range t acct vma ~pos ~len =
  if len < 0 || pos < 0 || pos + len > vma.Vma.n_pages then
    invalid_arg "Address_space.read_range: range out of bounds";
  let fc = no_faults () in
  for i = pos to pos + len - 1 do
    ignore (read_one t fc vma i)
  done;
  charge_faults t acct fc ~gran:vma.Vma.fault_gran ~reads:len ~writes:0

let peek (vma : Vma.t) i =
  check_page_bounds vma i;
  vma.Vma.data.(i)

let poke (vma : Vma.t) i v =
  check_page_bounds vma i;
  vma.Vma.data.(i) <- v;
  Bitmap.set vma.Vma.present i true;
  Bitmap.set vma.Vma.soft_dirty i true;
  Bitmap.set vma.Vma.cow_pending i false

let overlaps_existing t ~start_addr ~n_pages =
  let stop = start_addr + (n_pages * page_size) in
  List.exists
    (fun v -> start_addr < Vma.end_addr v && v.Vma.start_addr < stop)
    t.vmas

let map_at t ~start_addr ~n_pages ~prot kind =
  if overlaps_existing t ~start_addr ~n_pages then
    invalid_arg "Address_space.map_at: overlapping mapping";
  let vma = Vma.create ~id:(fresh_id t) ~start_addr ~n_pages ~prot kind in
  t.vmas <- insert_sorted t.vmas vma;
  vma

let map t ~n_pages ~prot kind =
  let start_addr = t.mmap_cursor in
  t.mmap_cursor <- t.mmap_cursor + ((n_pages + 16) * page_size);
  map_at t ~start_addr ~n_pages ~prot kind

let unmap t vma =
  if not (List.memq vma t.vmas) then invalid_arg "Address_space.unmap: foreign VMA";
  salvage_range t vma ~pos:0 ~len:vma.Vma.n_pages;
  t.vmas <- List.filter (fun v -> v != vma) t.vmas

let set_brk t addr =
  if addr < t.heap_base then invalid_arg "Address_space.set_brk: below heap base";
  let n_pages = (addr - t.heap_base + page_size - 1) / page_size in
  let heap_vma = heap t in
  if n_pages < heap_vma.Vma.n_pages then
    salvage_range t heap_vma ~pos:n_pages ~len:(heap_vma.Vma.n_pages - n_pages);
  Vma.resize heap_vma n_pages;
  t.brk_addr <- addr

let mprotect t vma prot =
  if not (List.memq vma t.vmas) then invalid_arg "Address_space.mprotect: foreign VMA";
  vma.Vma.prot <- prot

let madvise_dontneed t vma ~pos ~len =
  if not (List.memq vma t.vmas) then invalid_arg "Address_space.madvise: foreign VMA";
  if len < 0 || pos < 0 || pos + len > vma.Vma.n_pages then
    invalid_arg "Address_space.madvise_dontneed: range out of bounds";
  salvage_range t vma ~pos ~len;
  Bitmap.set_range vma.Vma.present ~pos ~len false;
  Bitmap.set_range vma.Vma.soft_dirty ~pos ~len false;
  Bitmap.set_range vma.Vma.cow_pending ~pos ~len false;
  Array.fill vma.Vma.data pos len 0

let resize_vma t vma n_pages =
  if not (List.memq vma t.vmas) then invalid_arg "Address_space.resize_vma: foreign VMA";
  let stop = vma.Vma.start_addr + (n_pages * page_size) in
  let collision =
    List.exists
      (fun v -> v != vma && vma.Vma.start_addr < Vma.end_addr v && v.Vma.start_addr < stop)
      t.vmas
  in
  if collision then invalid_arg "Address_space.resize_vma: growth collides with a neighbour";
  if n_pages < vma.Vma.n_pages then
    salvage_range t vma ~pos:n_pages ~len:(vma.Vma.n_pages - n_pages);
  Vma.resize vma n_pages;
  if vma.Vma.id = t.heap_id then t.brk_addr <- min t.brk_addr (Vma.end_addr vma)

let sd_enabled t = t.sd_on

let clear_refs t =
  t.sd_on <- true;
  List.iter (fun v -> Bitmap.fill v.Vma.soft_dirty false) t.vmas

(* The child must not inherit the parent's salvage hook: its CoW faults
   belong to fork semantics, not to the parent's incremental snapshot. *)
let clone_cow t = { t with vmas = List.map Vma.clone_cow t.vmas; cow_hook = None }

let arm_cow_all t =
  List.iter (fun (v : Vma.t) -> v.Vma.cow_pending <- Bitmap.copy v.Vma.present) t.vmas

let total_pages t = List.fold_left (fun acc v -> acc + v.Vma.n_pages) 0 t.vmas
let present_pages t = List.fold_left (fun acc v -> acc + Bitmap.count v.Vma.present) 0 t.vmas
let dirty_pages t = List.fold_left (fun acc v -> acc + Bitmap.count v.Vma.soft_dirty) 0 t.vmas

let pp ppf t =
  Format.fprintf ppf "@[<v>brk=%012x sd=%b@ %a@]" t.brk_addr t.sd_on
    (Format.pp_print_list Vma.pp) t.vmas
