module Account = Gh_sim.Account
module Cost = Gh_kernel.Cost

(* VMAs live in a sorted array (ascending start address) with a by-id
   hash table and a one-entry MRU cursor on the side. Page accesses are
   overwhelmingly sequential within one region, so the MRU hit rate is
   near 1; the binary search only runs on region switches. Layout
   changes (map/unmap) rebuild the array — they are orders of magnitude
   rarer than lookups. *)
type t = {
  cost : Cost.t;
  mutable arr : Vma.t array;  (* ascending by start_addr, non-overlapping *)
  by_id : (int, Vma.t) Hashtbl.t;
  mutable mru : Vma.t option;
  mutable brk_addr : int;
  heap_base : int;
  heap_id : int;
  stack_id : int;
  mutable next_vma_id : int;
  mutable mmap_cursor : int;
  mutable sd_on : bool;
  mutable cow_hook : (Vma.t -> int -> unit) option;
      (* Called just before a CoW-armed page's current contents are lost —
         overwritten by a write, zapped by madvise, or dropped with its
         mapping. Incremental snapshots use it to salvage original data. *)
}

let page_size = Vma.page_size

(* Conventional bases, loosely after x86-64 Linux. *)
let text_base = 0x0000_0040_0000
let heap_base_default = 0x0000_0100_0000
let mmap_base = 0x7f00_0000_0000
let stack_base = 0x7ffd_0000_0000

let fresh_id t =
  let id = t.next_vma_id in
  t.next_vma_id <- id + 1;
  id

(* First index whose VMA starts at or above [key]. *)
let lower_bound arr key =
  let lo = ref 0 and hi = ref (Array.length arr) in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if (Array.unsafe_get arr mid).Vma.start_addr < key then lo := mid + 1
    else hi := mid
  done;
  !lo

let insert_vma t vma =
  let n = Array.length t.arr in
  let idx = lower_bound t.arr vma.Vma.start_addr in
  let arr = Array.make (n + 1) vma in
  Array.blit t.arr 0 arr 0 idx;
  Array.blit t.arr idx arr (idx + 1) (n - idx);
  t.arr <- arr;
  Hashtbl.replace t.by_id vma.Vma.id vma

let remove_vma t idx =
  let vma = t.arr.(idx) in
  t.arr <- Array.init (Array.length t.arr - 1) (fun i ->
      if i < idx then t.arr.(i) else t.arr.(i + 1));
  Hashtbl.remove t.by_id vma.Vma.id;
  (match t.mru with Some v when v == vma -> t.mru <- None | _ -> ())

(* Locate [vma] by pointer identity: binary-search to its start, then walk
   the (tiny) run of equal starts. Replaces the old List.memq checks. *)
let index_of t (vma : Vma.t) =
  let n = Array.length t.arr in
  let rec scan i =
    if i >= n then -1
    else
      let v = Array.unsafe_get t.arr i in
      if v.Vma.start_addr > vma.Vma.start_addr then -1
      else if v == vma then i
      else scan (i + 1)
  in
  scan (lower_bound t.arr vma.Vma.start_addr)

let create ?(text_pages = 512) ?(data_pages = 128) ?(heap_pages = 256)
    ?(stack_pages = 32) ~cost () =
  (* The brk heap sits above the data segment (with a guard gap), like the
     loader would place it; the fixed default only holds for small
     binaries. *)
  let data_end = text_base + ((text_pages + data_pages) * page_size) in
  let heap_base = max heap_base_default (data_end + (64 * page_size)) in
  let t =
    {
      cost;
      arr = [||];
      by_id = Hashtbl.create 16;
      mru = None;
      brk_addr = heap_base + (heap_pages * page_size);
      heap_base;
      heap_id = 1;
      stack_id = 3;
      next_vma_id = 4;
      mmap_cursor = mmap_base;
      sd_on = false;
      cow_hook = None;
    }
  in
  let text = Vma.create ~id:0 ~start_addr:text_base ~n_pages:text_pages ~prot:Prot.rx Vma.Text in
  let heap =
    Vma.create ~id:t.heap_id ~start_addr:heap_base ~n_pages:heap_pages ~prot:Prot.rw
      Vma.Heap
  in
  let data =
    Vma.create ~id:2
      ~start_addr:(text_base + (text_pages * page_size))
      ~n_pages:data_pages ~prot:Prot.rw Vma.Data
  in
  let stack =
    Vma.create ~id:t.stack_id ~start_addr:stack_base ~n_pages:stack_pages ~prot:Prot.rw Vma.Stack
  in
  (* The loader already touched text and data. *)
  Bitmap.fill text.Vma.present true;
  Bitmap.fill data.Vma.present true;
  List.iter (insert_vma t) [ text; heap; data; stack ];
  t

let cost t = t.cost
let vmas t = Array.to_list t.arr
let iter_vmas t f = Array.iter f t.arr
let vma_count t = Array.length t.arr
let brk t = t.brk_addr

let find_vma_by_id t id = Hashtbl.find_opt t.by_id id

(* Zero-length VMAs occupy no address range but do occupy array slots
   (and can share a start with a live VMA), so the predecessor walk has
   to step over them before it can conclude "unmapped". *)
let find_vma t addr =
  match t.mru with
  | Some v when Vma.contains v addr -> Some v
  | _ ->
      let rec back j =
        if j < 0 then None
        else
          let v = Array.unsafe_get t.arr j in
          if Vma.contains v addr then begin
            t.mru <- Some v;
            Some v
          end
          else if v.Vma.n_pages = 0 then back (j - 1)
          else None
      in
      back (lower_bound t.arr (addr + 1) - 1)

let heap t =
  match find_vma_by_id t t.heap_id with
  | Some v -> v
  | None -> invalid_arg "Address_space.heap: heap was unmapped"

let stack t =
  match find_vma_by_id t t.stack_id with
  | Some v -> v
  | None -> invalid_arg "Address_space.stack: stack was unmapped"

(* Fault accounting shared by the single-page and bulk accessors. The
   counters let bulk ranges charge once instead of per page. *)
type fault_counts = {
  mutable first_touch : int;
  mutable demand_zero : int;
  mutable cow : int;
  mutable track : int;  (* SD re-arm or Uffd round trip *)
}

let no_faults () = { first_touch = 0; demand_zero = 0; cow = 0; track = 0 }

let set_cow_hook t hook = t.cow_hook <- hook

let fire_cow_hook t vma i =
  match t.cow_hook with Some hook -> hook vma i | None -> ()

(* Salvage every still-armed page of a range whose contents are about to
   disappear (munmap, madvise, brk shrink). *)
let salvage_range t (vma : Vma.t) ~pos ~len =
  if t.cow_hook <> None then begin
    let len = min len (vma.Vma.n_pages - pos) in
    if len > 0 then
      Bitmap.iter_set_range vma.Vma.cow_pending ~pos ~len (fun i ->
          fire_cow_hook t vma i;
          Bitmap.set vma.Vma.cow_pending i false)
  end

let charge_faults t acct fc ~gran ~reads ~writes =
  let c = t.cost in
  let track_ns =
    match c.Cost.tracking with
    | Cost.Soft_dirty | Cost.Kernel_list -> c.Cost.sd_fault_ns
    | Cost.Uffd -> c.Cost.uffd_fault_ns
  in
  (* With huge-page-backed regions one PTE fault covers [gran] pages. *)
  let per_block n = if gran <= 1 then n else (n + gran - 1) / gran in
  Account.charge acct
    ((fc.first_touch * c.Cost.first_touch_fault_ns)
    + (per_block fc.demand_zero * c.Cost.demand_zero_fault_ns)
    + (fc.cow * c.Cost.cow_fault_ns)
    + (per_block fc.track * track_ns)
    + (reads * c.Cost.page_read_ns)
    + (writes * c.Cost.page_write_ns))

let write_one t fc (vma : Vma.t) i v =
  if not vma.prot.Prot.write then invalid_arg "Address_space: write to non-writable VMA";
  if Bitmap.get vma.untouched i then begin
    fc.first_touch <- fc.first_touch + 1;
    Bitmap.set vma.untouched i false
  end;
  if not (Bitmap.get vma.present i) then begin
    fc.demand_zero <- fc.demand_zero + 1;
    Bitmap.set vma.present i true;
    (* A freshly faulted-in page is born dirty: no separate re-arm fault. *)
    Bitmap.set vma.soft_dirty i true
  end
  else begin
    if Bitmap.get vma.cow_pending i then begin
      fc.cow <- fc.cow + 1;
      fire_cow_hook t vma i;
      Bitmap.set vma.cow_pending i false
    end;
    if t.sd_on && not (Bitmap.get vma.soft_dirty i) then fc.track <- fc.track + 1;
    Bitmap.set vma.soft_dirty i true
  end;
  vma.data.(i) <- v

let read_one t fc (vma : Vma.t) i =
  ignore t;
  if not vma.prot.Prot.read then invalid_arg "Address_space: read from non-readable VMA";
  if Bitmap.get vma.untouched i then begin
    fc.first_touch <- fc.first_touch + 1;
    Bitmap.set vma.untouched i false
  end;
  if not (Bitmap.get vma.present i) then begin
    (* Read fault maps the shared zero page. Like Linux, the freshly
       created PTE is born soft-dirty — this is what lets Groundhog notice
       pages whose contents were zapped (madvise) and then merely read. *)
    fc.demand_zero <- fc.demand_zero + 1;
    Bitmap.set vma.present i true;
    Bitmap.set vma.soft_dirty i true
  end;
  vma.data.(i)

let check_page_bounds (vma : Vma.t) i =
  if i < 0 || i >= vma.n_pages then invalid_arg "Address_space: page index out of bounds"

let write_page t acct vma i v =
  check_page_bounds vma i;
  let fc = no_faults () in
  write_one t fc vma i v;
  charge_faults t acct fc ~gran:vma.Vma.fault_gran ~reads:0 ~writes:1

let read_page t acct vma i =
  check_page_bounds vma i;
  let fc = no_faults () in
  let v = read_one t fc vma i in
  charge_faults t acct fc ~gran:vma.Vma.fault_gran ~reads:1 ~writes:0;
  v

let write_addr t acct addr v =
  match find_vma t addr with
  | None -> invalid_arg "Address_space.write_addr: segfault (unmapped address)"
  | Some vma -> write_page t acct vma (Vma.page_index vma addr) v

let read_addr t acct addr =
  match find_vma t addr with
  | None -> invalid_arg "Address_space.read_addr: segfault (unmapped address)"
  | Some vma -> read_page t acct vma (Vma.page_index vma addr)

let check_range (vma : Vma.t) ~pos ~len op =
  if len < 0 || pos < 0 || pos + len > vma.Vma.n_pages then
    invalid_arg ("Address_space." ^ op ^ ": range out of bounds")

(* Bulk page kernels. One iteration per packed 63-page bitmap word:
   fault classes fall out of popcounts over word masks, bitmap updates
   are word ops, data moves are Array.fill/blit. The classification
   mirrors [write_one] exactly:
     first-touch : untouched ∧ m            (then untouched &= ¬m)
     demand-zero : ¬present ∧ m             (born dirty, no re-arm)
     CoW         : cow_pending ∧ present ∧ m
     re-arm      : sd_on ∧ present ∧ ¬soft_dirty ∧ m
   Words holding CoW hits while a salvage hook is installed take the
   scalar path so the hook still observes pre-write contents page by
   page, in page order — bit-identical behavior by construction. *)
let dirty_range t acct vma ~pos ~len ~value =
  check_range vma ~pos ~len "dirty_range";
  let fc = no_faults () in
  if len > 0 then begin
    if not vma.Vma.prot.Prot.write then
      invalid_arg "Address_space: write to non-writable VMA";
    let present = vma.Vma.present
    and sd = vma.Vma.soft_dirty
    and cowp = vma.Vma.cow_pending
    and unt = vma.Vma.untouched in
    let stop = pos + len in
    let i = ref pos in
    while !i < stop do
      let wi = !i / Bitmap.bits_per_word in
      let b = !i mod Bitmap.bits_per_word in
      let n = min (stop - !i) (Bitmap.bits_per_word - b) in
      let m = Bitmap.mask ~pos:b ~len:n in
      let pw = Bitmap.word present wi in
      let cow_hits = Bitmap.word cowp wi land pw land m in
      if cow_hits <> 0 && t.cow_hook <> None then
        for k = !i to !i + n - 1 do
          write_one t fc vma k value
        done
      else begin
        let uw = Bitmap.word unt wi land m in
        if uw <> 0 then begin
          fc.first_touch <- fc.first_touch + Bitmap.popcount uw;
          Bitmap.andnot_word unt wi uw
        end;
        let dz = lnot pw land m in
        if dz <> 0 then fc.demand_zero <- fc.demand_zero + Bitmap.popcount dz;
        if cow_hits <> 0 then begin
          fc.cow <- fc.cow + Bitmap.popcount cow_hits;
          Bitmap.andnot_word cowp wi cow_hits
        end;
        if t.sd_on then begin
          let rearm = pw land lnot (Bitmap.word sd wi) land m in
          if rearm <> 0 then fc.track <- fc.track + Bitmap.popcount rearm
        end;
        Bitmap.or_word present wi m;
        Bitmap.or_word sd wi m;
        Array.fill vma.Vma.data !i n value
      end;
      i := !i + n
    done
  end;
  charge_faults t acct fc ~gran:vma.Vma.fault_gran ~reads:0 ~writes:len

let read_range t acct vma ~pos ~len =
  check_range vma ~pos ~len "read_range";
  let fc = no_faults () in
  if len > 0 then begin
    if not vma.Vma.prot.Prot.read then
      invalid_arg "Address_space: read from non-readable VMA";
    let present = vma.Vma.present
    and sd = vma.Vma.soft_dirty
    and unt = vma.Vma.untouched in
    let stop = pos + len in
    let i = ref pos in
    while !i < stop do
      let wi = !i / Bitmap.bits_per_word in
      let b = !i mod Bitmap.bits_per_word in
      let n = min (stop - !i) (Bitmap.bits_per_word - b) in
      let m = Bitmap.mask ~pos:b ~len:n in
      let uw = Bitmap.word unt wi land m in
      if uw <> 0 then begin
        fc.first_touch <- fc.first_touch + Bitmap.popcount uw;
        Bitmap.andnot_word unt wi uw
      end;
      (* Only pages faulted in by this read become (born-dirty) present;
         already-present pages stay clean under a read. *)
      let dz = lnot (Bitmap.word present wi) land m in
      if dz <> 0 then begin
        fc.demand_zero <- fc.demand_zero + Bitmap.popcount dz;
        Bitmap.or_word present wi dz;
        Bitmap.or_word sd wi dz
      end;
      i := !i + n
    done
  end;
  charge_faults t acct fc ~gran:vma.Vma.fault_gran ~reads:len ~writes:0

(* Retained scalar reference implementations: the differential property
   tests and the mem bench group compare the word kernels against these. *)
module Scalar = struct
  let dirty_range t acct vma ~pos ~len ~value =
    check_range vma ~pos ~len "dirty_range";
    let fc = no_faults () in
    for i = pos to pos + len - 1 do
      write_one t fc vma i value
    done;
    charge_faults t acct fc ~gran:vma.Vma.fault_gran ~reads:0 ~writes:len

  let read_range t acct vma ~pos ~len =
    check_range vma ~pos ~len "read_range";
    let fc = no_faults () in
    for i = pos to pos + len - 1 do
      ignore (read_one t fc vma i)
    done;
    charge_faults t acct fc ~gran:vma.Vma.fault_gran ~reads:len ~writes:0
end

let peek (vma : Vma.t) i =
  check_page_bounds vma i;
  vma.Vma.data.(i)

let poke (vma : Vma.t) i v =
  check_page_bounds vma i;
  vma.Vma.data.(i) <- v;
  Bitmap.set vma.Vma.present i true;
  Bitmap.set vma.Vma.soft_dirty i true;
  Bitmap.set vma.Vma.cow_pending i false

(* Bulk [poke]: one blit plus three word-batched range ops. Same
   per-page effect (data set, present + soft-dirty, pending CoW
   cancelled, untouched untouched). *)
let poke_range (vma : Vma.t) ~pos ~len ~src ~src_pos =
  check_range vma ~pos ~len "poke_range";
  if src_pos < 0 || src_pos + len > Array.length src then
    invalid_arg "Address_space.poke_range: source range out of bounds";
  Array.blit src src_pos vma.Vma.data pos len;
  Bitmap.set_range vma.Vma.present ~pos ~len true;
  Bitmap.set_range vma.Vma.soft_dirty ~pos ~len true;
  Bitmap.set_range vma.Vma.cow_pending ~pos ~len false

let zero_range (vma : Vma.t) ~pos ~len =
  check_range vma ~pos ~len "zero_range";
  Array.fill vma.Vma.data pos len 0;
  Bitmap.set_range vma.Vma.present ~pos ~len true;
  Bitmap.set_range vma.Vma.soft_dirty ~pos ~len true;
  Bitmap.set_range vma.Vma.cow_pending ~pos ~len false

(* Nonzero-length VMAs have monotone end addresses (sorted and
   non-overlapping), so the predecessor walk below can stop at the first
   one that ends at or below [start_addr]; only zero-length entries —
   which pin no range but may share a start with a live VMA — need to be
   stepped over. *)
let overlaps_existing t ~start_addr ~n_pages =
  let stop = start_addr + (n_pages * page_size) in
  let rec back j =
    j >= 0
    &&
    let v = Array.unsafe_get t.arr j in
    if start_addr < Vma.end_addr v then true
    else v.Vma.n_pages = 0 && back (j - 1)
  in
  back (lower_bound t.arr stop - 1)

let map_at t ~start_addr ~n_pages ~prot kind =
  if overlaps_existing t ~start_addr ~n_pages then
    invalid_arg "Address_space.map_at: overlapping mapping";
  let vma = Vma.create ~id:(fresh_id t) ~start_addr ~n_pages ~prot kind in
  insert_vma t vma;
  vma

(* Highest free gap in [mmap_base, stack_base): the fallback allocator
   once the bump cursor runs dry. Scanning top-down and placing at the
   top of the gap keeps reused ranges away from the heap and makes the
   placement independent of unmap order. Zero-length VMAs pin no
   address range and are skipped. *)
let find_free_gap t ~span =
  let rec go j upper =
    if upper - mmap_base < span then None
    else if j < 0 then Some (upper - span)
    else
      let v = Array.unsafe_get t.arr j in
      if v.Vma.n_pages = 0 then go (j - 1) upper
      else if Vma.end_addr v <= mmap_base then Some (upper - span)
      else if v.Vma.start_addr >= upper then go (j - 1) upper
      else if upper - Vma.end_addr v >= span then Some (upper - span)
      else go (j - 1) (min upper v.Vma.start_addr)
  in
  go (Array.length t.arr - 1) stack_base

let map t ~n_pages ~prot kind =
  let span = (n_pages + 16) * page_size in
  let start_addr =
    if t.mmap_cursor + span <= stack_base then begin
      let s = t.mmap_cursor in
      t.mmap_cursor <- s + span;
      s
    end
    else
      (* The bump cursor never reuses unmapped ranges; long-lived spaces
         with mmap/munmap churn would otherwise run off the end of the
         mmap area even though almost all of it is free. *)
      match find_free_gap t ~span with
      | Some s -> s
      | None -> invalid_arg "Address_space.map: out of address space"
  in
  map_at t ~start_addr ~n_pages ~prot kind

let unmap t vma =
  let idx = index_of t vma in
  if idx < 0 then invalid_arg "Address_space.unmap: foreign VMA";
  salvage_range t vma ~pos:0 ~len:vma.Vma.n_pages;
  remove_vma t idx

let set_brk t addr =
  if addr < t.heap_base then invalid_arg "Address_space.set_brk: below heap base";
  let n_pages = (addr - t.heap_base + page_size - 1) / page_size in
  let heap_vma = heap t in
  if n_pages < heap_vma.Vma.n_pages then
    salvage_range t heap_vma ~pos:n_pages ~len:(heap_vma.Vma.n_pages - n_pages);
  Vma.resize heap_vma n_pages;
  t.brk_addr <- addr

let mprotect t vma prot =
  if index_of t vma < 0 then invalid_arg "Address_space.mprotect: foreign VMA";
  vma.Vma.prot <- prot

let madvise_dontneed t vma ~pos ~len =
  if index_of t vma < 0 then invalid_arg "Address_space.madvise: foreign VMA";
  if len < 0 || pos < 0 || pos + len > vma.Vma.n_pages then
    invalid_arg "Address_space.madvise_dontneed: range out of bounds";
  salvage_range t vma ~pos ~len;
  Bitmap.set_range vma.Vma.present ~pos ~len false;
  Bitmap.set_range vma.Vma.soft_dirty ~pos ~len false;
  Bitmap.set_range vma.Vma.cow_pending ~pos ~len false;
  Array.fill vma.Vma.data pos len 0

let resize_vma t vma n_pages =
  if index_of t vma < 0 then invalid_arg "Address_space.resize_vma: foreign VMA";
  let stop = vma.Vma.start_addr + (n_pages * page_size) in
  (* Only successors can collide with growth (predecessors overlapping
     [vma]'s start would already overlap it today). *)
  let collision =
    let n = Array.length t.arr in
    let rec scan i =
      i < n
      &&
      let v = Array.unsafe_get t.arr i in
      v.Vma.start_addr < stop
      && ((v != vma && vma.Vma.start_addr < Vma.end_addr v) || scan (i + 1))
    in
    scan (lower_bound t.arr vma.Vma.start_addr)
  in
  if collision then invalid_arg "Address_space.resize_vma: growth collides with a neighbour";
  if n_pages < vma.Vma.n_pages then
    salvage_range t vma ~pos:n_pages ~len:(vma.Vma.n_pages - n_pages);
  Vma.resize vma n_pages;
  if vma.Vma.id = t.heap_id then t.brk_addr <- min t.brk_addr (Vma.end_addr vma)

let sd_enabled t = t.sd_on

let clear_refs t =
  t.sd_on <- true;
  Array.iter (fun v -> Bitmap.fill v.Vma.soft_dirty false) t.arr

(* The child must not inherit the parent's salvage hook: its CoW faults
   belong to fork semantics, not to the parent's incremental snapshot. *)
let clone_cow t =
  let child =
    {
      t with
      arr = Array.map Vma.clone_cow t.arr;
      by_id = Hashtbl.create (Array.length t.arr * 2);
      mru = None;
      cow_hook = None;
    }
  in
  Array.iter (fun (v : Vma.t) -> Hashtbl.replace child.by_id v.Vma.id v) child.arr;
  child

(* End of life for a discarded clone: recycle every VMA's page buffer
   into this domain's pool. The space must never be touched again. *)
let recycle t =
  Array.iter Vma.recycle t.arr;
  t.mru <- None

let arm_cow_all t =
  Array.iter (fun (v : Vma.t) -> v.Vma.cow_pending <- Bitmap.copy v.Vma.present) t.arr

let total_pages t = Array.fold_left (fun acc v -> acc + v.Vma.n_pages) 0 t.arr
let present_pages t = Array.fold_left (fun acc v -> acc + Bitmap.count v.Vma.present) 0 t.arr
let dirty_pages t = Array.fold_left (fun acc v -> acc + Bitmap.count v.Vma.soft_dirty) 0 t.arr

let pp ppf t =
  Format.fprintf ppf "@[<v>brk=%012x sd=%b@ %a@]" t.brk_addr t.sd_on
    (Format.pp_print_list Vma.pp) (Array.to_list t.arr)
