(* Packed bitmap: 63 usable bits per OCaml-native word. The hot loops —
   count, iter_set, fold_runs — go word-at-a-time and use popcount /
   trailing-zero bit tricks, so all-clean and all-set stretches cost one
   compare per 63 pages instead of one branch per page. *)

let bits_per_word = 63

(* All 63 bits set. OCaml ints are 63-bit two's complement, so -1 is the
   full mask and [lsr]/[land]/[lor] treat words as plain bit vectors. *)
let full = -1

type t = { len : int; words : int array }

let n_words len = (len + bits_per_word - 1) / bits_per_word

(* Invariant: bits at positions >= len in the last word are 0, so count /
   iter_set / fold_runs never have to special-case the tail. *)
let tail_mask len =
  let r = len mod bits_per_word in
  if r = 0 then full else (1 lsl r) - 1

let clamp_tail t =
  let nw = Array.length t.words in
  if nw > 0 && t.len mod bits_per_word <> 0 then
    t.words.(nw - 1) <- t.words.(nw - 1) land tail_mask t.len

let create len =
  if len < 0 then invalid_arg "Bitmap.create: negative length";
  { len; words = Array.make (n_words len) 0 }

let length t = t.len

let check_index t i op =
  if i < 0 || i >= t.len then invalid_arg ("Bitmap." ^ op ^ ": index out of bounds")

let get t i =
  check_index t i "get";
  (Array.unsafe_get t.words (i / bits_per_word) lsr (i mod bits_per_word)) land 1 <> 0

let set t i v =
  check_index t i "set";
  let w = i / bits_per_word and b = i mod bits_per_word in
  let cur = Array.unsafe_get t.words w in
  Array.unsafe_set t.words w (if v then cur lor (1 lsl b) else cur land lnot (1 lsl b))

let fill t v =
  Array.fill t.words 0 (Array.length t.words) (if v then full else 0);
  if v then clamp_tail t

let copy t = { len = t.len; words = Array.copy t.words }

let resize t len =
  if len < 0 then invalid_arg "Bitmap.resize: negative length";
  let nt = { len; words = Array.make (n_words len) 0 } in
  Array.blit t.words 0 nt.words 0 (min (Array.length t.words) (Array.length nt.words));
  clamp_tail nt;
  nt

let word t i = if i < Array.length t.words then Array.unsafe_get t.words i else 0

let word_count t = Array.length t.words

let check_word t wi op =
  if wi < 0 || wi >= Array.length t.words then
    invalid_arg ("Bitmap." ^ op ^ ": word index out of bounds")

(* Word-level mask ops for the bulk page kernels (dirty_range/read_range and
   the restore copy backends). [or_word] clamps against the tail so the
   bits-past-length invariant survives any mask; the other two can only
   clear bits and need no clamp. *)
let or_word t wi m =
  check_word t wi "or_word";
  let m =
    if wi = Array.length t.words - 1 then m land tail_mask t.len else m
  in
  Array.unsafe_set t.words wi (Array.unsafe_get t.words wi lor m)

let andnot_word t wi m =
  check_word t wi "andnot_word";
  Array.unsafe_set t.words wi (Array.unsafe_get t.words wi land lnot m)

let set_word t wi w =
  check_word t wi "set_word";
  let w = if wi = Array.length t.words - 1 then w land tail_mask t.len else w in
  Array.unsafe_set t.words wi w

(* Mask of bit positions [pos, pos+len) within one word (len <= 63). *)
let mask ~pos ~len =
  if len <= 0 then 0 else if len >= bits_per_word then full else ((1 lsl len) - 1) lsl pos

(* Branch-free popcount, split into two halves so every mask literal fits
   in OCaml's 63-bit int. *)
let popcount32 x =
  let x = x - ((x lsr 1) land 0x55555555) in
  let x = (x land 0x33333333) + ((x lsr 2) land 0x33333333) in
  let x = (x + (x lsr 4)) land 0x0F0F0F0F in
  (* OCaml ints don't truncate at 32 bits, so mask the byte-sum down. *)
  (x * 0x01010101) lsr 24 land 0xFF

let popcount w = popcount32 (w land 0xFFFFFFFF) + popcount32 (w lsr 32)

(* Trailing zeros: isolate the lowest set bit, then binary-search its
   position with shifts — about half the ALU work of a popcount-based
   count, and this sits in the inner loop of every set-bit iteration.
   Returns [bits_per_word] for zero. *)
let ctz w =
  if w = 0 then bits_per_word
  else begin
    let w = ref (w land -w) in
    let n = ref 0 in
    if !w land 0xFFFFFFFF = 0 then begin
      n := 32;
      w := !w lsr 32
    end;
    if !w land 0xFFFF = 0 then begin
      n := !n + 16;
      w := !w lsr 16
    end;
    if !w land 0xFF = 0 then begin
      n := !n + 8;
      w := !w lsr 8
    end;
    if !w land 0xF = 0 then begin
      n := !n + 4;
      w := !w lsr 4
    end;
    if !w land 0x3 = 0 then begin
      n := !n + 2;
      w := !w lsr 2
    end;
    if !w land 0x1 = 0 then incr n;
    !n
  end

let count t =
  let c = ref 0 in
  for i = 0 to Array.length t.words - 1 do
    let w = Array.unsafe_get t.words i in
    if w <> 0 then c := !c + popcount w
  done;
  !c

let check_range t ~pos ~len op =
  if len < 0 || pos < 0 || pos + len > t.len then
    invalid_arg ("Bitmap." ^ op ^ ": range out of bounds")

let set_range t ~pos ~len v =
  check_range t ~pos ~len "set_range";
  let i = ref pos in
  let stop = pos + len in
  while !i < stop do
    let w = !i / bits_per_word and b = !i mod bits_per_word in
    let n = min (stop - !i) (bits_per_word - b) in
    let m = mask ~pos:b ~len:n in
    t.words.(w) <- (if v then t.words.(w) lor m else t.words.(w) land lnot m);
    i := !i + n
  done

(* Call [f] on each set bit of [w], offset by [base]. Mostly-set words are
   cheaper to scan linearly than to ctz-hop bit by bit; mostly-clear words
   are the opposite, and skipping straight to each set bit is the whole
   point of the packed representation. *)
let iter_word base w f =
  if w <> 0 then begin
    if popcount w > 31 then
      for b = 0 to bits_per_word - 1 do
        if (w lsr b) land 1 = 1 then f (base + b)
      done
    else begin
      let w = ref w in
      while !w <> 0 do
        f (base + ctz !w);
        w := !w land (!w - 1)
      done
    end
  end

let iter_set t f =
  for wi = 0 to Array.length t.words - 1 do
    iter_word (wi * bits_per_word) (Array.unsafe_get t.words wi) f
  done

let iter_set_range t ~pos ~len f =
  check_range t ~pos ~len "iter_set_range";
  let stop = pos + len in
  let wi_lo = pos / bits_per_word in
  let wi_hi = if len = 0 then wi_lo - 1 else (stop - 1) / bits_per_word in
  for wi = wi_lo to wi_hi do
    let base = wi * bits_per_word in
    let m =
      let lo = max 0 (pos - base) and hi = min bits_per_word (stop - base) in
      mask ~pos:lo ~len:(hi - lo)
    in
    iter_word base (Array.unsafe_get t.words wi land m) f
  done

let fold_runs t ~init ~f =
  let acc = ref init in
  let run_start = ref (-1) in
  let nw = Array.length t.words in
  for wi = 0 to nw - 1 do
    let w = Array.unsafe_get t.words wi in
    let base = wi * bits_per_word in
    if w = 0 then begin
      if !run_start >= 0 then begin
        acc := f !acc ~pos:!run_start ~len:(base - !run_start);
        run_start := -1
      end
    end
    else if w = full then begin
      if !run_start < 0 then run_start := base
    end
    else begin
      (* Mixed word: hop between set-bit and clear-bit boundaries with ctz. *)
      let pos = ref 0 in
      while !pos < bits_per_word do
        if !run_start >= 0 then begin
          let inv = lnot w lsr !pos in
          if inv = 0 then pos := bits_per_word
          else begin
            let zero_pos = !pos + ctz inv in
            acc := f !acc ~pos:!run_start ~len:(base + zero_pos - !run_start);
            run_start := -1;
            pos := zero_pos
          end
        end
        else begin
          let rem = w lsr !pos in
          if rem = 0 then pos := bits_per_word
          else begin
            pos := !pos + ctz rem;
            run_start := base + !pos
          end
        end
      done
    end
  done;
  if !run_start >= 0 then acc := f !acc ~pos:!run_start ~len:(t.len - !run_start);
  !acc

let assign dst src =
  let n = min (Array.length dst.words) (Array.length src.words) in
  Array.blit src.words 0 dst.words 0 n;
  Array.fill dst.words n (Array.length dst.words - n) 0;
  (* [src]'s own tail invariant covers bits in [src.len, n*63); only bits
     past [dst.len] (when [src] is the longer map) need clearing. *)
  clamp_tail dst

let equal a b =
  a.len = b.len && Array.for_all2 ( = ) a.words b.words

let first_diff a b =
  if a.len <> b.len then invalid_arg "Bitmap.first_diff: length mismatch";
  let res = ref None in
  (try
     for wi = 0 to Array.length a.words - 1 do
       let d = Array.unsafe_get a.words wi lxor Array.unsafe_get b.words wi in
       if d <> 0 then begin
         res := Some ((wi * bits_per_word) + ctz d);
         raise Exit
       end
     done
   with Exit -> ());
  !res
