(** Virtual memory areas: contiguous page-granular mappings.

    Each page carries one data word — enough to give leaks and restores real
    data semantics (a secret written by request A is a concrete value that
    request B can observe) while keeping 200K-page address spaces cheap to
    simulate. Timing is charged separately, per 4 KiB page, by the cost
    model. *)

val page_size : int
(** 4096 bytes; all addresses are page-aligned. *)

type kind =
  | Text  (** Program text / shared libraries. *)
  | Data  (** Statically allocated writable data. *)
  | Heap  (** The brk-managed heap. *)
  | Stack
  | Anon  (** mmap'd anonymous memory (malloc arenas, runtime pools). *)
  | Wasm_linear  (** FAASM-style contiguous linear memory. *)

type t = {
  id : int;  (** Unique within an address space; survives resizes. *)
  mutable start_addr : int;
  mutable n_pages : int;
  mutable prot : Prot.t;
  kind : kind;
  mutable data : int array;  (** One word per page. *)
  mutable present : Bitmap.t;  (** Page has a frame (was touched). *)
  mutable soft_dirty : Bitmap.t;  (** Kernel soft-dirty bit. *)
  mutable cow_pending : Bitmap.t;  (** Next write pays a CoW copy fault. *)
  mutable untouched : Bitmap.t;  (** Next access pays a first-touch fault. *)
  mutable fault_gran : int;
      (** Pages covered by one PTE-level fault: 1 for base pages, up to 512
          when the region is backed by transparent huge pages — one re-arm
          or demand-zero fault then covers the whole block. *)
}

val create : id:int -> start_addr:int -> n_pages:int -> prot:Prot.t -> kind -> t
val end_addr : t -> int
val contains : t -> int -> bool

val page_index : t -> int -> int
(** [page_index t addr] is the page offset of [addr] within [t].
    @raise Invalid_argument if [addr] is outside [t]. *)

val kind_to_string : kind -> string

val resize : t -> int -> unit
(** Grow (zero-filled, non-present new pages) or shrink at the end. *)

val clone_cow : t -> t
(** Deep copy for fork: data duplicated, [cow_pending] and [untouched] set
    on every present page so the child pays CoW/first-touch faults. *)

val recycle : t -> unit
(** Release the page buffer into this domain's {!Gh_sim.Buffer_pool} and
    replace it with an empty array. Only for VMAs that nothing will touch
    again (a reaped fork child); any later page access raises. *)

val restore_data_from : t -> int array -> Bitmap.t -> unit
(** [restore_data_from t data present] overwrites page contents and
    presence wholesale (FAASM-style remap; the caller charges costs).
    Arrays may be shorter or longer than [t]; the common prefix is used. *)

val pp : Format.formatter -> t -> unit
(** One /proc/pid/maps-style line. *)
