(** A process address space: sorted, non-overlapping VMAs plus the brk.

    Two kinds of entry point, mirroring who pays for what on real hardware:

    - {b Function-side accessors} ([read_page], [write_page], [dirty_range],
      [read_range]) charge the given account for the memory access {e and}
      any page faults it triggers — demand-zero on first touch, CoW copy
      in forked children, the soft-dirty re-arm fault after a [clear_refs],
      or the userfaultfd round trip under Uffd tracking. These are the
      on-critical-path costs of §5.2.1.

    - {b Kernel-side raw access} ([peek], [poke]) is uncharged mechanism;
      the ptrace / procfs layer in [gh_proc] charges for it at the same
      boundary the real system pays (per pagemap entry scanned, per page
      copied, per injected syscall).

    Layout operations ([map], [unmap], [set_brk], ...) only maintain the
    mapping; their syscall cost is charged by the caller (the syscall layer
    during function execution, or the restore engine via injected
    syscalls). *)

type t

val create :
  ?text_pages:int ->
  ?data_pages:int ->
  ?heap_pages:int ->
  ?stack_pages:int ->
  cost:Gh_kernel.Cost.t ->
  unit ->
  t
(** A conventional layout: text (r-x), data (rw-), brk heap (rw-), stack
    (rw-), and an empty mmap area. Text and data pages start present (the
    loader touched them); heap and stack start lazy. *)

val cost : t -> Gh_kernel.Cost.t
val vmas : t -> Vma.t list
(** Ascending by start address. *)

val iter_vmas : t -> (Vma.t -> unit) -> unit
(** Apply to each VMA in ascending start order, without materialising the
    list — the allocation-free walk for scan-heavy callers (procfs,
    statistics). *)

val vma_count : t -> int
val brk : t -> int
val heap : t -> Vma.t
val stack : t -> Vma.t
val find_vma : t -> int -> Vma.t option
val find_vma_by_id : t -> int -> Vma.t option

(** {2 Function-side memory access (charged)} *)

val write_page : t -> Gh_sim.Account.t -> Vma.t -> int -> int -> unit
(** [write_page t acct vma i v] writes word [v] to page [i]. *)

val read_page : t -> Gh_sim.Account.t -> Vma.t -> int -> int

val write_addr : t -> Gh_sim.Account.t -> int -> int -> unit
(** Address-based variant. @raise Invalid_argument on an unmapped address
    (a simulated segfault). *)

val read_addr : t -> Gh_sim.Account.t -> int -> int

val dirty_range : t -> Gh_sim.Account.t -> Vma.t -> pos:int -> len:int -> value:int -> unit
(** Write [value] to [len] consecutive pages starting at [pos]; the bulk
    equivalent of [write_page], with one aggregate charge. *)

val read_range : t -> Gh_sim.Account.t -> Vma.t -> pos:int -> len:int -> unit
(** Touch (read) [len] consecutive pages. *)

(** Scalar reference implementations of the bulk accessors, retained for
    the differential property tests and the mem bench group. Identical
    observable behavior (bitmaps, data, fault counts, charged ns) to the
    word-batched kernels above — per-page loops over the same primitive
    the batched code falls back to for CoW-salvage words. *)
module Scalar : sig
  val dirty_range :
    t -> Gh_sim.Account.t -> Vma.t -> pos:int -> len:int -> value:int -> unit

  val read_range : t -> Gh_sim.Account.t -> Vma.t -> pos:int -> len:int -> unit
end

(** {2 Kernel-side raw access (uncharged)} *)

val peek : Vma.t -> int -> int
(** Read a page's word without faults or charges (and without marking the
    page present: snapshots see the true state). *)

val poke : Vma.t -> int -> int -> unit
(** Kernel write: sets the word, marks the page present and soft-dirty
    (a restore write does modify memory; Groundhog resets SD bits after
    restoring, which is what makes this safe). Clears any pending CoW. *)

val poke_range : Vma.t -> pos:int -> len:int -> src:int array -> src_pos:int -> unit
(** Bulk [poke]: blit [len] words from [src] starting at [src_pos] into
    pages [pos, pos+len), with word-batched bitmap updates. The restore
    copy backend. *)

val zero_range : Vma.t -> pos:int -> len:int -> unit
(** Bulk [poke] of zeros: the restore stack-zeroing backend. *)

(** {2 Layout operations (mechanism only)} *)

val map : t -> n_pages:int -> prot:Prot.t -> Vma.kind -> Vma.t
(** Allocate at the mmap cursor. *)

val map_at : t -> start_addr:int -> n_pages:int -> prot:Prot.t -> Vma.kind -> Vma.t
(** Map at a fixed address (used by restore to re-create removed regions).
    @raise Invalid_argument if the range overlaps an existing VMA. *)

val unmap : t -> Vma.t -> unit
(** @raise Invalid_argument if the VMA is not part of this space. *)

val set_brk : t -> int -> unit
(** Grow or shrink the heap; new pages are lazy (non-present).
    @raise Invalid_argument below the heap base. *)

val mprotect : t -> Vma.t -> Prot.t -> unit

val madvise_dontneed : t -> Vma.t -> pos:int -> len:int -> unit
(** Drop frames: pages become non-present, zeroed, clean. *)

val resize_vma : t -> Vma.t -> int -> unit
(** Grow/shrink a VMA in place (stack growth, mremap-style growth).
    @raise Invalid_argument if growth would overlap the next VMA. *)

(** {2 Soft-dirty facility} *)

val sd_enabled : t -> bool
val clear_refs : t -> unit
(** Reset every soft-dirty bit and arm the re-arm faults (the write to
    /proc/pid/clear_refs). Marks tracking as enabled. *)

(** {2 Fork / CoW} *)

val clone_cow : t -> t
(** Child address space: identical layout and contents; every present page
    CoW-pending and first-touch-pending. *)

val recycle : t -> unit
(** Release every VMA's page buffer into this domain's
    {!Gh_sim.Buffer_pool}. Only for spaces nothing will touch again
    (a reaped fork child); any later page access raises. *)

val arm_cow_all : t -> unit
(** Make every present page CoW-pending in place — the FAASM-style reset,
    where the linear memory is remapped copy-on-write onto the snapshot. *)

val set_cow_hook : t -> (Vma.t -> int -> unit) option -> unit
(** Install a salvage hook: it fires (with the page's contents still
    intact) just before a CoW-armed page is first overwritten, zapped by
    madvise, dropped by a brk/mremap shrink, or unmapped. Incremental
    snapshots (§5.5's proposed optimization) use it to save original page
    contents lazily — manager memory then grows with the pages actually
    modified, not the whole footprint. *)

(** {2 Statistics (uncharged)} *)

val total_pages : t -> int
val present_pages : t -> int
val dirty_pages : t -> int

val pp : Format.formatter -> t -> unit
