(** Dense per-page bit maps (present, soft-dirty, CoW-pending, ...).

    Packed 63 pages per OCaml-native word. Restoration cost is dominated by
    O(mapped pages) scans over these maps (paper §4.4, Fig. 8), so the scan
    entry points — {!count}, {!iter_set}, {!fold_runs} — work
    word-at-a-time: popcount for counting, trailing-zero-count hops for run
    boundaries, and whole-word skips over all-clean / all-set stretches.

    Invariant maintained throughout: bits at positions [>= length t] in the
    final word are zero. *)

type t

val bits_per_word : int
(** Pages per packed word (63: OCaml-native ints). *)

val create : int -> t
(** [create n] is an all-zero map over [n] pages. *)

val length : t -> int

val get : t -> int -> bool
(** @raise Invalid_argument if the index is out of bounds. *)

val set : t -> int -> bool -> unit
(** @raise Invalid_argument if the index is out of bounds. *)

val fill : t -> bool -> unit

val set_range : t -> pos:int -> len:int -> bool -> unit
(** Set [len] consecutive bits from [pos], whole words at a time.
    @raise Invalid_argument if the range is out of bounds. *)

val copy : t -> t

val assign : t -> t -> unit
(** [assign dst src] overwrites [dst] with [src] over the common prefix and
    clears the rest of [dst]; lengths are unchanged. Word-level blit. *)

val resize : t -> int -> t
(** [resize t n] keeps the common prefix, zero-extends when growing. *)

val count : t -> int
(** Number of set bits (per-word popcount). *)

val popcount : int -> int
(** Set bits in one packed word (branch-free SWAR). *)

val ctz : int -> int
(** Trailing zeros of a packed word; [bits_per_word] for zero. *)

val word : t -> int -> int
(** [word t i] is the [i]-th packed word — bits
    [i * bits_per_word .. (i+1) * bits_per_word - 1] — or [0] when [i] is
    past the last word. For word-batched consumers (the restore engine's
    classifier); bits past [length t] are always zero. *)

val word_count : t -> int
(** Number of packed words backing the map. *)

val or_word : t -> int -> int -> unit
(** [or_word t i m] sets the bits of mask [m] in word [i]; bits of [m] past
    [length t] are ignored (the tail invariant is preserved).
    @raise Invalid_argument if [i] is not a backing-word index. *)

val andnot_word : t -> int -> int -> unit
(** [andnot_word t i m] clears the bits of mask [m] in word [i].
    @raise Invalid_argument if [i] is not a backing-word index. *)

val set_word : t -> int -> int -> unit
(** [set_word t i w] overwrites word [i] with [w], clamped to the map's
    length. @raise Invalid_argument if [i] is not a backing-word index. *)

val mask : pos:int -> len:int -> int
(** Mask of bit positions [\[pos, pos+len)] within one packed word
    ([pos + len <= bits_per_word]); the word-kernel building block. *)

val iter_set : t -> (int -> unit) -> unit
(** Apply to each set index, ascending; zero words are skipped whole. *)

val iter_set_range : t -> pos:int -> len:int -> (int -> unit) -> unit
(** [iter_set] restricted to [\[pos, pos+len)].
    @raise Invalid_argument if the range is out of bounds. *)

val fold_runs : t -> init:'a -> f:('a -> pos:int -> len:int -> 'a) -> 'a
(** Fold over maximal runs of consecutive set bits, ascending — used by the
    restore engine's copy coalescing. Run boundaries are located with
    trailing-zero-count on the word and its complement. *)

val equal : t -> t -> bool
(** Same length and same bits (word-wise compare). *)

val first_diff : t -> t -> int option
(** Index of the first differing bit between two equal-length maps.
    @raise Invalid_argument on a length mismatch. *)
