let page_size = 4096

type kind = Text | Data | Heap | Stack | Anon | Wasm_linear

type t = {
  id : int;
  mutable start_addr : int;
  mutable n_pages : int;
  mutable prot : Prot.t;
  kind : kind;
  mutable data : int array;
  mutable present : Bitmap.t;
  mutable soft_dirty : Bitmap.t;
  mutable cow_pending : Bitmap.t;
  mutable untouched : Bitmap.t;
  mutable fault_gran : int;
}

let create ~id ~start_addr ~n_pages ~prot kind =
  if start_addr mod page_size <> 0 then invalid_arg "Vma.create: unaligned start";
  if n_pages < 0 then invalid_arg "Vma.create: negative size";
  {
    id;
    start_addr;
    n_pages;
    prot;
    kind;
    data = Gh_sim.Buffer_pool.acquire_zeroed n_pages;
    present = Bitmap.create n_pages;
    soft_dirty = Bitmap.create n_pages;
    cow_pending = Bitmap.create n_pages;
    untouched = Bitmap.create n_pages;
    fault_gran = 1;
  }

let end_addr t = t.start_addr + (t.n_pages * page_size)
let contains t addr = addr >= t.start_addr && addr < end_addr t

let page_index t addr =
  if not (contains t addr) then invalid_arg "Vma.page_index: address outside region";
  (addr - t.start_addr) / page_size

let kind_to_string = function
  | Text -> "text"
  | Data -> "data"
  | Heap -> "heap"
  | Stack -> "stack"
  | Anon -> "anon"
  | Wasm_linear -> "wasm"

let resize t n_pages =
  if n_pages < 0 then invalid_arg "Vma.resize: negative size";
  if n_pages <> t.n_pages then begin
    let keep = min t.n_pages n_pages in
    let data = Gh_sim.Buffer_pool.acquire_raw n_pages in
    Array.blit t.data 0 data 0 keep;
    if n_pages > keep then Array.fill data keep (n_pages - keep) 0;
    Gh_sim.Buffer_pool.release t.data;
    t.data <- data;
    t.present <- Bitmap.resize t.present n_pages;
    t.soft_dirty <- Bitmap.resize t.soft_dirty n_pages;
    t.cow_pending <- Bitmap.resize t.cow_pending n_pages;
    t.untouched <- Bitmap.resize t.untouched n_pages;
    t.n_pages <- n_pages
  end

let clone_cow t =
  let data = Gh_sim.Buffer_pool.acquire_raw t.n_pages in
  Array.blit t.data 0 data 0 t.n_pages;
  {
    t with
    data;
    present = Bitmap.copy t.present;
    soft_dirty = Bitmap.copy t.soft_dirty;
    cow_pending = Bitmap.copy t.present;
    untouched = Bitmap.copy t.present;
  }

(* End of life: hand the page buffer back to this domain's pool. The
   empty replacement makes any later page access fail loudly (index out
   of bounds) instead of silently reading recycled memory. *)
let recycle t =
  Gh_sim.Buffer_pool.release t.data;
  t.data <- [||]

let restore_data_from t data present =
  let n = min t.n_pages (Array.length data) in
  Array.blit data 0 t.data 0 n;
  Bitmap.assign t.present present;
  for i = Bitmap.length present to t.n_pages - 1 do
    t.data.(i) <- 0
  done

let pp ppf t =
  Format.fprintf ppf "%012x-%012x %a %s (%d pages, %d present, %d dirty)"
    t.start_addr (end_addr t) Prot.pp t.prot (kind_to_string t.kind) t.n_pages
    (Bitmap.count t.present) (Bitmap.count t.soft_dirty)
