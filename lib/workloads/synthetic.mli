(** Synthetic function-model generator.

    Draws random-but-plausible function specs spanning the catalog's
    envelope (duration, footprint, dirty rate, payload, runtime, THP
    granularity, pathologies). Used by the property tests to exercise the
    isolation strategies far outside the 58 fixed benchmarks, and handy for
    capacity-planning "what-if" sweeps. *)

type profile = {
  min_exec_ms : float;
  max_exec_ms : float;
  min_mapped : int;
  max_mapped : int;
  max_dirty_fraction : float;  (** Of the mapped pages. *)
  allow_pathologies : bool;  (** Leaks, GC penalties, buggy residue copy. *)
}

val default_profile : profile
(** Roughly the catalog's envelope, pathologies allowed. *)

val tiny_profile : profile
(** Small/fast specs for property tests. *)

val draw : ?profile:profile -> Gh_sim.Rng.t -> Gh_faas.Function_model.spec
(** A random spec; every field but the name is deterministic per RNG state.
    The name mixes the 24-bit random tag with a process-wide monotonic
    counter so names never collide (per-function stats are keyed by name,
    and random tags alone birthday-collide at the thousands-of-functions
    scale); the counter consumes no randomness, so the RNG stream is
    identical to older versions. The generated spec is always buildable:
    page quotas are clipped to the footprint and the runtime's fixed
    regions. *)

val draw_many : ?profile:profile -> Gh_sim.Rng.t -> int -> Gh_faas.Function_model.spec list

val burst :
  ?duty:float ->
  ?cycle_s:float ->
  Gh_sim.Rng.t ->
  rate_rps:float ->
  n:int ->
  Gh_sim.Time_ns.t list
(** [burst rng ~rate_rps ~n] draws [n] absolute arrival instants (ascending,
    starting near 0) from a two-state modulated Poisson process: arrivals
    bunch into ON windows covering a [duty] fraction (default 0.3) of each
    exponentially distributed cycle (mean [cycle_s], default 2 s), so the
    rate inside a burst is [rate_rps / duty] while the long-run offered rate
    stays [rate_rps]. Deterministic per RNG state.
    @raise Invalid_argument on non-positive rates/cycles, [duty] outside
    (0, 1], or negative [n]. *)

val hanging :
  ?p:float ->
  ?base:Gh_faas.Function_model.spec ->
  unit ->
  Gh_faas.Function_model.spec
(** A spec that never returns with probability [p] per invocation
    (default 0.01, base {!Gh_faas.Function_model.default_spec}): the
    recovery pipeline's hang-timeout path needs requests that genuinely
    stall. @raise Invalid_argument if [p] is outside [0, 1]. *)
