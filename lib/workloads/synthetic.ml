module Rng = Gh_sim.Rng
module Time_ns = Gh_sim.Time_ns
module Fm = Gh_faas.Function_model
module Runtime = Gh_faas.Runtime

type profile = {
  min_exec_ms : float;
  max_exec_ms : float;
  min_mapped : int;
  max_mapped : int;
  max_dirty_fraction : float;
  allow_pathologies : bool;
}

let default_profile =
  {
    min_exec_ms = 0.5;
    max_exec_ms = 5_000.0;
    min_mapped = 1_000;
    max_mapped = 200_000;
    max_dirty_fraction = 0.3;
    allow_pathologies = true;
  }

let tiny_profile =
  {
    min_exec_ms = 0.1;
    max_exec_ms = 20.0;
    min_mapped = 800;
    max_mapped = 6_000;
    max_dirty_fraction = 0.2;
    allow_pathologies = true;
  }

let languages = [| Runtime.C; Runtime.Python; Runtime.Nodejs |]

(* Log-uniform draw: FaaS durations and footprints span orders of
   magnitude, so uniform draws would oversample the big end. *)
let log_uniform rng lo hi =
  let lo = Float.max 1e-9 lo in
  exp (Rng.float rng (log hi -. log lo) +. log lo)

(* Names key per-function tallies (fn_stats, the capacity planner), so two
   specs sharing one silently merges their stats — and 24-bit random tags
   birthday-collide with ~50% odds by ~4800 draws. A process-wide counter
   mixed into the formatted name makes them collision-free; the RNG stream
   is consumed exactly as before, so every other field of a draw is
   unchanged for existing seeds. *)
(* Atomic: arrival schedules can be generated from Domain_pool workers.
   Uniqueness is all that matters; the counter consumes no randomness. *)
let draw_counter = Atomic.make 0

let draw ?(profile = default_profile) rng =
  let lang = languages.(Rng.int rng (Array.length languages)) in
  let rt = Runtime.for_lang lang in
  let fixed = rt.Runtime.text_pages + rt.Runtime.data_pages + rt.Runtime.stack_pages in
  let mapped =
    max (fixed + 128)
      (int_of_float (log_uniform rng (float_of_int profile.min_mapped) (float_of_int profile.max_mapped)))
  in
  let pool = mapped - fixed in
  let dirtied =
    max 1 (int_of_float (Rng.float rng (profile.max_dirty_fraction *. float_of_int pool)))
  in
  let read_pages = min pool (max dirtied (mapped * Rng.int_in rng 5 15 / 100)) in
  let exec_ms = log_uniform rng profile.min_exec_ms profile.max_exec_ms in
  let pathological k = profile.allow_pathologies && Rng.int rng k = 0 in
  {
    Fm.default_spec with
    Fm.name =
      (let tag = Rng.int rng 0xFFFFFF in
       let uniq = Atomic.fetch_and_add draw_counter 1 in
       Printf.sprintf "synthetic-%x-%x" tag uniq);
    lang;
    exec_ns = Time_ns.of_ms exec_ms;
    exec_jitter = Rng.float rng 0.1;
    mapped_pages = mapped;
    dirtied_pages = dirtied;
    read_pages;
    input_kb = 1 + Rng.int rng 64;
    output_kb = 1 + Rng.int rng 8;
    memleak_pages = (if pathological 8 then Rng.int_in rng 10 100 else 0);
    leak_slowdown_ns = (if pathological 8 then Rng.int_in rng 1_000 10_000 else 0);
    buggy_residue_leak = pathological 4;
    gc_exec_penalty =
      (if lang = Runtime.Nodejs && pathological 3 then Rng.float rng 0.3 else 0.0);
    wasm_factor = (if Rng.bool rng then Some (0.5 +. Rng.float rng 2.5) else None);
    fault_gran = (if pathological 5 then Rng.int_in rng 2 64 else 1);
  }

let draw_many ?profile rng n = List.init n (fun _ -> draw ?profile rng)

(* Open-loop bursty arrivals: a two-state (ON/OFF) modulated Poisson
   process. The long-run offered rate is [rate_rps], but arrivals bunch
   into ON windows covering a [duty] fraction of each (exponentially
   distributed) cycle, so the instantaneous rate inside a burst is
   [rate_rps / duty] — the surge regime overload protection exists for.
   Deterministic per RNG state; returns absolute arrival instants. *)
let burst ?(duty = 0.3) ?(cycle_s = 2.0) rng ~rate_rps ~n =
  if rate_rps <= 0.0 then invalid_arg "Synthetic.burst: rate_rps must be positive";
  if duty <= 0.0 || duty > 1.0 then invalid_arg "Synthetic.burst: duty outside (0,1]";
  if cycle_s <= 0.0 then invalid_arg "Synthetic.burst: cycle_s must be positive";
  if n < 0 then invalid_arg "Synthetic.burst: negative n";
  let gap_mean_ns = 1.0e9 /. (rate_rps /. duty) in
  let on_mean_ns = duty *. cycle_s *. 1.0e9 in
  let off_mean_ns = (1.0 -. duty) *. cycle_s *. 1.0e9 in
  let draw_len mean = max 1 (int_of_float (Rng.exponential rng ~mean)) in
  let rec go acc k t on_end =
    if k >= n then List.rev acc
    else begin
      let t' = t + draw_len gap_mean_ns in
      if t' <= on_end then go (t' :: acc) (k + 1) t' on_end
      else
        (* The burst ended before the next arrival: skip the OFF period and
           restart the clock at the head of a fresh ON window. *)
        let start = on_end + draw_len off_mean_ns in
        go acc k start (start + draw_len on_mean_ns)
    end
  in
  go [] 0 0 (draw_len on_mean_ns)

(* A function that deadlocks with probability [p]: the recovery-pipeline
   experiments need a workload whose requests sometimes never return. *)
let hanging ?(p = 0.01) ?(base = Fm.default_spec) () =
  if p < 0.0 || p > 1.0 then invalid_arg "Synthetic.hanging: p outside [0,1]";
  {
    base with
    Fm.name = Printf.sprintf "%s-hang" base.Fm.name;
    hang_rate = p;
  }
