module Fm = Gh_faas.Function_model
module Runtime = Gh_faas.Runtime
module Time_ns = Gh_sim.Time_ns

type suite = Pyperformance | Polybench | Faasprofiler

type entry = {
  display : string;
  suite : suite;
  reference : Paper_ref.t;
  spec : Fm.spec;
}

(* One row of Appendix A, Table 3 (with the FAASM column joined in from
   Table 1): name, language, suite, BASE invoker ms (mean, std), BASE
   throughput, GH invoker ms, GH throughput, restore ms, mapped pages (K),
   faults per invocation (K), restored pages (K), FAASM invoker ms. *)
type row = {
  r_name : string;
  r_lang : Runtime.lang;
  r_suite : suite;
  r_base_ms : float;
  r_base_std : float;
  r_base_tput : float;
  r_gh_ms : float;
  r_gh_tput : float;
  r_restore_ms : float;
  r_pages_k : float;
  r_faults_k : float;
  r_restored_k : float;
  r_faasm_ms : float option;
}

let c = Runtime.C
and p = Runtime.Python
and n = Runtime.Nodejs

let pb = Polybench
and pf = Pyperformance
and fp = Faasprofiler

let row r_name r_lang r_suite r_base_ms r_base_std r_base_tput r_gh_ms r_gh_tput r_restore_ms
    r_pages_k r_faults_k r_restored_k r_faasm_ms =
  {
    r_name;
    r_lang;
    r_suite;
    r_base_ms;
    r_base_std;
    r_base_tput;
    r_gh_ms;
    r_gh_tput;
    r_restore_ms;
    r_pages_k;
    r_faults_k;
    r_restored_k;
    r_faasm_ms;
  }

(* Table 3 of the paper, ascending restore time. *)
let rows =
  [
    row "cholesky" c pb 166182.8 9208.7 0.02 175691.9 0.02 0.57 0.98 0.02 0.01 (Some 112430.0);
    row "jacobi-1d" c pb 3.8 1.25 671.34 4.2 578.99 0.62 0.98 0.03 0.02 (Some 4.01);
    row "durbin" c pb 7.6 1.35 314.68 8.0 295.98 0.62 0.98 0.03 0.02 (Some 5.43);
    row "jacobi-2d" c pb 2329.3 17.0 1.05 2343.4 1.05 0.69 0.98 0.02 0.01 (Some 4971.0);
    row "lu" c pb 196555.8 11445.0 0.02 207603.5 0.02 0.74 0.98 0.02 0.01 (Some 138303.0);
    row "seidel-2d" c pb 23140.1 22.0 0.16 23139.0 0.16 0.75 0.98 0.02 0.02 (Some 18836.0);
    row "deriche" c pb 1115.0 86.2 4.47 1115.0 4.43 0.75 0.98 0.02 0.01 (Some 674.0);
    row "adi" c pb 28311.1 923.2 0.12 28857.6 0.12 0.77 0.98 0.02 0.02 (Some 19504.0);
    row "floyd-warshall" c pb 21151.4 39.4 0.17 21171.3 0.17 0.78 0.98 0.02 0.01 (Some 21840.0);
    row "bicg" c pb 42.8 1.9 81.05 43.2 79.87 0.93 0.98 0.03 0.03 (Some 25.9);
    row "fdtd-2d" c pb 2179.1 23.9 0.89 2182.6 0.89 0.97 0.98 0.02 0.02 (Some 2695.0);
    row "trisolv" c pb 23.1 1.5 138.18 23.2 134.92 0.97 0.98 0.03 0.02 (Some 11.4);
    row "atax" c pb 36.4 1.6 93.55 36.8 91.99 0.99 0.98 0.03 0.03 (Some 22.2);
    row "nussinov" c pb 39122.6 4053.1 0.09 38323.5 0.09 1.02 0.98 0.02 0.02 (Some 30232.0);
    row "ludcmp" c pb 193545.9 6456.0 0.02 199550.2 0.02 1.02 0.98 0.03 0.02 (Some 138991.0);
    row "mvt" c pb 140.3 3.1 28.78 144.3 28.28 1.16 0.98 0.04 0.03 (Some 76.7);
    row "doitgen" c pb 650.5 14.6 5.98 650.0 5.96 1.31 0.98 0.04 0.02 (Some 662.0);
    row "version" p pf 3.1 1.55 990.38 4.0 562.89 1.66 3.14 0.17 0.17 (Some 3.89);
    row "get-time" p fp 2.9 1.19 1038.74 4.1 552.09 1.66 3.19 0.18 0.18 None;
    row "covariance" c pb 33020.6 494.9 0.10 34971.3 0.10 1.97 0.98 0.04 0.02 (Some 17964.0);
    row "correlation" c pb 32429.6 692.9 0.10 34328.9 0.09 2.00 0.98 0.04 0.02 (Some 19377.0);
    row "3mm" c pb 45729.0 1717.4 0.07 46824.4 0.06 2.32 0.98 0.04 0.02 (Some 31627.0);
    row "gramschmidt" c pb 60899.8 6020.3 0.06 64980.4 0.05 2.53 0.98 0.04 0.02 (Some 44627.0);
    row "pickle" p pf 105.6 1.9 35.49 105.7 34.98 2.90 3.45 0.23 0.23 (Some 184.0);
    row "2mm" c pb 27236.2 1544.4 0.12 28887.4 0.10 3.12 0.98 0.04 0.02 (Some 20590.0);
    row "fannkuch" p pf 4.6 1.24 572.32 6.1 350.22 3.14 6.12 0.19 0.19 (Some 105.0);
    row "unpack_seq" p pf 3.3 1.22 801.86 5.0 398.15 3.17 6.12 0.20 0.20 (Some 103.0);
    row "primes" p fp 1829.7 53.5 2.04 1830.7 1.99 3.24 3.22 0.51 0.53 None;
    row "json" p fp 9.9 3.4 150.00 13.0 135.34 3.71 3.33 0.64 0.87 None;
    row "scimark" p pf 1812.6 30.7 2.12 1806.6 2.12 3.77 3.26 0.51 0.52 (Some 3482.0);
    row "telco" p pf 155.6 3.8 25.01 158.0 23.77 3.91 3.29 0.53 0.53 (Some 315.0);
    row "json_loads" p pf 102.0 2.0 36.46 103.3 35.29 4.04 6.12 0.22 0.22 (Some 252.0);
    row "nbody" p pf 2823.7 69.0 1.34 2845.0 1.34 4.08 6.12 0.21 0.21 (Some 5361.0);
    row "richards" p pf 353.1 4.6 10.68 351.1 10.85 4.16 6.18 0.23 0.23 (Some 607.0);
    row "md2html" p fp 31.0 2.0 93.94 32.7 88.50 4.25 4.93 0.63 0.62 None;
    row "spectral" p pf 592.8 9.9 6.45 605.2 6.40 4.29 6.12 0.03 0.02 (Some 1323.0);
    row "hexiom" p pf 218.2 4.2 17.45 219.2 17.28 4.35 6.18 0.28 0.21 (Some 467.0);
    row "raytrace" p pf 2459.2 67.3 1.58 2463.9 1.57 4.42 6.25 0.26 0.25 (Some 4001.0);
    row "deltablue" p pf 20.4 1.6 157.63 21.3 140.26 4.42 6.18 0.30 0.33 (Some 129.0);
    row "logging" p pf 1249.4 652.6 0.00 227.9 16.34 4.77 6.12 0.23 0.33 (Some 345.0);
    row "json_dumps" p pf 533.1 6.0 7.19 551.5 6.95 4.77 6.37 0.42 0.41 (Some 900.0);
    row "chaos" p pf 648.5 86.1 6.03 652.0 5.94 4.92 6.32 0.31 0.31 (Some 1201.0);
    row "float" p pf 27.1 1.9 125.98 27.8 109.09 4.93 6.26 0.47 0.47 (Some 141.0);
    row "pidigits" p pf 2347.6 5.8 1.64 2349.1 1.63 5.40 6.14 0.81 0.81 (Some 6994.0);
    row "sentiment" p fp 6.5 1.8 385.07 8.9 230.39 6.00 16.86 0.57 0.57 None;
    row "pyaes" p pf 4672.0 63.7 0.82 4751.3 0.80 6.02 6.21 0.83 0.84 (Some 8559.0);
    row "go" p pf 593.0 6.6 6.48 596.6 6.42 6.90 6.25 0.84 0.95 (Some 982.0);
    row "base64" p fp 743.2 7.1 5.18 761.5 5.10 7.67 5.13 1.86 1.66 None;
    row "mdp" p pf 6345.5 64.0 0.59 6412.3 0.58 9.55 7.33 2.22 2.85 (Some 12295.0);
    row "pyflate" p pf 1599.8 16.4 2.39 1622.5 2.34 11.67 8.25 3.01 2.33 (Some 2644.0);
    row "get-time" n fp 3.7 1.29 942.07 6.4 133.45 12.58 156.76 0.59 0.64 None;
    row "json" n fp 9.4 3.55 159.09 16.1 86.58 13.02 156.78 0.67 0.85 None;
    row "autocomplete" n fp 3.8 1.41 922.59 6.3 121.98 13.52 156.98 0.69 0.92 None;
    row "ocr-img" n fp 2491.7 10.6 1.53 2508.5 1.52 13.95 156.80 0.89 1.08 None;
    row "heat-3d" c pb 3059.5 81.6 1.02 3272.0 0.98 16.09 4.35 0.02 3.39 (Some 8645.0);
    row "img-resize" n fp 445.3 74.3 6.57 721.7 4.10 61.83 179.43 9.58 18.05 None;
    row "primes" n fp 274.6 20.1 11.79 287.1 8.16 84.74 201.35 1.27 34.20 None;
    row "base64" n fp 644.0 20.2 5.62 715.1 4.34 161.93 208.42 47.98 53.83 None;
  ]

(* Payload sizes the paper states or implies: json parses a 200 kB
   document, img-resize a 76 kB image; the rest take small inputs. *)
let input_kb_of name =
  match name with
  | "json" -> 200
  | "img-resize" -> 76
  | "ocr-img" -> 64
  | "base64" -> 24
  | _ -> 4

(* Per-benchmark pathologies reported in §5.3.1. *)
let memleak_of name lang =
  (* logging(p) leaks memory and slows down run over run under BASE;
     Groundhog's rollback erases the leak. *)
  if name = "logging" && lang = Runtime.Python then Some (200, 8_000) else None

let gc_penalty_of name lang =
  if lang <> Runtime.Nodejs then 0.0
  else
    match name with
    | "img-resize" -> 0.55  (* restore reverts GC state; collections re-run *)
    | "base64" -> 0.055
    | "primes" -> 0.03
    | "ocr-img" -> 0.005
    | _ -> 0.0

let spec_of_row r =
  let mapped = int_of_float (r.r_pages_k *. 1000.0) in
  let dirtied = max 10 (int_of_float (r.r_restored_k *. 1000.0)) in
  let faults = max 1 (int_of_float (r.r_faults_k *. 1000.0)) in
  let fault_gran = max 1 (min 512 ((dirtied + faults - 1) / faults)) in
  let leak = memleak_of r.r_name r.r_lang in
  let exec_ms =
    (* logging(p)'s catalogued BASE latency is inflated by its own leak;
       the leak-free execution time is what GH measured. *)
    match leak with Some _ -> r.r_gh_ms | None -> r.r_base_ms
  in
  let jitter = Float.min 0.30 (Float.max 0.005 (r.r_base_std /. Float.max 1e-6 r.r_base_ms)) in
  let wasm_factor =
    Option.map (fun faasm_ms -> faasm_ms /. Float.max 1e-6 r.r_base_ms) r.r_faasm_ms
  in
  {
    Fm.name = r.r_name;
    lang = r.r_lang;
    exec_ns = Time_ns.of_ms exec_ms;
    exec_jitter = (match leak with Some _ -> 0.02 | None -> jitter);
    mapped_pages = mapped;
    dirtied_pages = dirtied;
    read_pages = max dirtied (mapped * 9 / 100);
    input_kb = input_kb_of r.r_name;
    output_kb = 2;
    memleak_pages = (match leak with Some (pages, _) -> pages | None -> 0);
    leak_slowdown_ns = (match leak with Some (_, ns) -> ns | None -> 0);
    buggy_residue_leak = false;
    gc_extra_dirty = 0;
    gc_exec_penalty = gc_penalty_of r.r_name r.r_lang;
    wasm_factor;
    fault_gran;
    scattered_writes = false;
    service_ops = 0;
    crash_rate = 0.0;
    hang_rate = 0.0;
  }

let entry_of_row r =
  {
    display = Printf.sprintf "%s %s" r.r_name (Runtime.lang_suffix r.r_lang);
    suite = r.r_suite;
    reference =
      {
        Paper_ref.base_invoker_ms = r.r_base_ms;
        base_invoker_std_ms = r.r_base_std;
        base_tput = r.r_base_tput;
        gh_invoker_ms = r.r_gh_ms;
        gh_tput = r.r_gh_tput;
        restore_ms = r.r_restore_ms;
        pages_k = r.r_pages_k;
        faults_k = r.r_faults_k;
        restored_k = r.r_restored_k;
        faasm_invoker_ms = r.r_faasm_ms;
      };
    spec = spec_of_row r;
  }

let all = List.map entry_of_row rows

let find name =
  List.find_opt
    (fun e -> e.display = name || e.spec.Fm.name = name)
    all

let by_suite suite = List.filter (fun e -> e.suite = suite) all
let by_lang lang = List.filter (fun e -> e.spec.Fm.lang = lang) all
let wasm_ported = List.filter (fun e -> e.spec.Fm.wasm_factor <> None) all

let suite_to_string = function
  | Pyperformance -> "pyperformance"
  | Polybench -> "polybench"
  | Faasprofiler -> "faasprofiler"

let names () = List.map (fun e -> e.display) all
