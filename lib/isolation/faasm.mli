(** FAASM-style request isolation (§5.3.3).

    Functions compile to WebAssembly and run as Faaslets inside a shared
    process; each function's state lives in one contiguous linear-memory
    region that can be reset between requests by remapping it
    copy-on-write onto a pre-warmed checkpoint. Cheap reset — but execution
    speed is dictated by WebAssembly vs native compilation (CPython gets
    slower, PolyBench often faster), and only wasm-portable functions
    qualify. Writes after a reset pay CoW copy faults.

    We model the wasm/native execution ratio with the spec's
    [wasm_factor] and drive the reset from the same substrate: the
    checkpoint is a snapshot, the reset restores dirty pages and re-arms
    copy-on-write, and its charged cost is the remap model
    ([faasm_reset_base_ns] + dirty pages × [faasm_reset_per_dirty_page_ns]). *)

val make :
  ?fault:Gh_sim.Fault.t ->
  rng:Gh_sim.Rng.t ->
  Gh_faas.Function_model.spec ->
  (Gh_faas.Strategy_intf.t, string) result
(** [Error] when the benchmark has no WebAssembly port
    ([spec.wasm_factor = None]). *)
