(** CRIU-style request isolation (§6, related work).

    Checkpoint/Restore-In-Userspace-based snapshotting serializes the whole
    process image (all present pages, file descriptors, credentials,
    namespaces) and restores by deserializing it back — which is why the
    paper dismisses it for request isolation: restoration costs are on the
    order of {e seconds} per container, against Groundhog's milliseconds.
    VAS-CRIU's in-memory address-space images get that to ~0.5 s; we model
    that favourable in-memory variant.

    The isolation is real in the simulation (the state truly reverts); the
    charged cost is the image-deserialization model: a fixed base plus a
    per-present-page rate, independent of how little was dirtied — the
    structural flaw Groundhog's dirty-proportional restore fixes. *)

val make :
  ?verify:Groundhog_core.Manager.verify ->
  ?fault:Gh_sim.Fault.t ->
  rng:Gh_sim.Rng.t ->
  Gh_faas.Function_model.spec ->
  Gh_faas.Strategy_intf.t
(** [verify] (default off) hash-audits each image restore; an audit
    failure surfaces as a [Poisoned] invocation with [Verify_failed] and
    the strategy never serves again (its scrub/audit hooks go silent). *)

val restore_cost_ns : present_pages:int -> int
(** The modelled image-restore cost (exposed for tests and tables). *)
