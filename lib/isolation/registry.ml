type id = Base | Gh | Gh_nop | Fork | Faasm | Coldstart | Criu

let all = [ Base; Gh; Gh_nop; Fork; Faasm; Coldstart; Criu ]

let to_string = function
  | Base -> "base"
  | Gh -> "gh"
  | Gh_nop -> "gh-nop"
  | Fork -> "fork"
  | Faasm -> "faasm"
  | Coldstart -> "coldstart"
  | Criu -> "criu"

let of_string s =
  match String.lowercase_ascii s with
  | "base" -> Ok Base
  | "gh" | "groundhog" -> Ok Gh
  | "gh-nop" | "ghnop" | "gh_nop" -> Ok Gh_nop
  | "fork" -> Ok Fork
  | "faasm" -> Ok Faasm
  | "coldstart" | "cold" -> Ok Coldstart
  | "criu" | "vas-criu" -> Ok Criu
  | other -> Error (Printf.sprintf "unknown strategy %S" other)

let supports id (spec : Gh_faas.Function_model.spec) =
  match id with
  | Fork ->
      (Gh_faas.Runtime.for_lang spec.Gh_faas.Function_model.lang).Gh_faas.Runtime.threads = 1
  | Faasm -> spec.Gh_faas.Function_model.wasm_factor <> None
  | Base | Gh | Gh_nop | Coldstart | Criu -> true

let make id ?fault ?verify ?dedup ~rng spec =
  let build () =
    match id with
    | Base -> Ok (Base.make ?fault ~rng spec)
    | Gh -> Ok (Gh.make ?verify ?dedup ?fault ~rng spec)
    | Gh_nop -> Ok (Gh_nop.make ?verify ?dedup ?fault ~rng spec)
    | Fork -> Fork_isolation.make ?fault ~rng spec
    | Faasm -> Faasm.make ?fault ~rng spec
    | Coldstart -> Ok (Coldstart.make ?fault ~rng spec)
    | Criu -> Ok (Criu.make ?verify ?fault ~rng spec)
  in
  (* A fault during container initialization (warm-up snapshot) raises
     [Failure site]; surface it as a failed build so the recovery
     pipeline's rebuild path can retry it under backoff. *)
  match build () with r -> r | exception Failure msg -> Error msg
