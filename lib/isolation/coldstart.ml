module Account = Gh_sim.Account
module Rng = Gh_sim.Rng
module Fm = Gh_faas.Function_model
module Intf = Gh_faas.Strategy_intf
module Snapshot = Groundhog_core.Snapshot
module Restore = Groundhog_core.Restore

let make ?(fault = Gh_sim.Fault.none) ~rng spec =
  let inst = Fm.build spec in
  Gh_proc.Process.set_fault (Fm.proc inst) fault;
  let rng = Rng.split rng in
  let init_acct = Account.create () in
  let warm_ns = Fm.warmup inst init_acct rng in
  Fm.mark_clean inst;
  let rt = Fm.runtime inst in
  let init_ns = rt.Gh_faas.Runtime.init_ns + Account.total init_acct in
  (* A snapshot gives us the mechanics of "a fresh container's state"
     without rebuilding the whole process per request; the per-request
     charge is nevertheless the full cold-start cost. *)
  let scratch = Account.create () in
  let snap = Snapshot.capture_exn scratch (Fm.proc inst) in
  let invoke req =
    let acct = Account.create () in
    (* Cold start: boot a container, boot the runtime, initialize state. *)
    let boot_ns = rt.Gh_faas.Runtime.init_ns + warm_ns in
    Account.charge acct boot_ns;
    let response = Fm.invoke inst acct rng ~post_restore:false req in
    if response.Fm.hung then
      Intf.invocation ~on_path_ns:(Account.total acct) ~cold_ns:boot_ns ~isolated:true
        ~outcome:Intf.Hung response
    else begin
      let outcome =
        (* The "fresh container" reset is simulation mechanics; if it
           faults, this container can't serve again. *)
        match Restore.run scratch snap (Fm.proc inst) with
        | Ok _ -> Intf.outcome_of_response response
        | Error _ -> Intf.Poisoned
      in
      Intf.invocation ~on_path_ns:(Account.total acct) ~cold_ns:boot_ns ~isolated:true
        ~outcome response
    end
  in
  {
    Intf.name = "coldstart";
    init_ns;
    invoke;
    snapshot_pages = (fun () -> 0);
    describe = (fun () -> "fresh container per request (trivial isolation)");
    status = Intf.no_status;
    kill = Intf.no_kill;
    degrade = Intf.no_degrade;
    scrub = Intf.no_scrub;
    audit = Intf.no_audit;
  }
