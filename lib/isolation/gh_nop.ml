module Account = Gh_sim.Account
module Rng = Gh_sim.Rng
module Fm = Gh_faas.Function_model
module Intf = Gh_faas.Strategy_intf
module Manager = Groundhog_core.Manager
module Snapshot = Groundhog_core.Snapshot
module Dedup = Groundhog_core.Dedup

let make ?(verify = Manager.Verify_off) ?dedup ?(fault = Gh_sim.Fault.none) ~rng spec =
  let inst = Fm.build spec in
  Gh_proc.Process.set_fault (Fm.proc inst) fault;
  let rng = Rng.split rng in
  let init_acct = Account.create () in
  let _warm = Fm.warmup inst init_acct rng in
  Fm.mark_clean inst;
  let mgr = Manager.create ~verify (Fm.proc inst) in
  let snap_ns = Manager.take_snapshot_exn mgr in
  let rt = Fm.runtime inst in
  let init_ns = rt.Gh_faas.Runtime.init_ns + Account.total init_acct + snap_ns in
  let loop = Gh_faas.Actionloop.create rt in
  let sharer = ref None in
  (match (dedup, Manager.snapshot mgr) with
  | Some d, Some snap ->
      sharer :=
        Some
          ( d,
            Dedup.register d ~owner:"gh-nop"
              ~on_corrupt:(fun c ->
                if Manager.status mgr <> Manager.Poisoned then
                  Manager.poison mgr
                    (Format.asprintf "dedup blast: %a" Snapshot.pp_corruption c))
              snap )
  | _ -> ());
  (* Corruption was detected; if the *stored* block itself is damaged the
     canonical copy is shared, so blast every other holder (fail closed).
     A restore-skip leaves the store intact and blasts nothing. *)
  let blast_stored () =
    match (!sharer, Manager.last_corruption mgr) with
    | Some (d, sh), Some c ->
        let stored_bad =
          match Manager.snapshot mgr with
          | None -> false
          | Some snap -> (
              match Snapshot.find_region snap ~start_addr:c.Snapshot.region_addr with
              | None -> false
              | Some r -> not (Snapshot.verify_block r c.Snapshot.block))
        in
        if stored_bad then
          ignore
            (Dedup.blast d sh ~region_addr:c.Snapshot.region_addr
               ~block:c.Snapshot.block ~what:c.Snapshot.what)
    | _ -> ()
  in
  let verify_on = verify <> Manager.Verify_off in
  let invoke req =
    let acct = Account.create () in
    let io0 = Gh_faas.Actionloop.io_total_ns loop in
    (* Same interposition as full Groundhog; the single-domain container is
       always "clean" in the policy sense, so inputs flow immediately. *)
    ignore (Gh_faas.Actionloop.offer loop acct ~clean:true req);
    let response = Fm.invoke inst acct rng ~post_restore:false req in
    Manager.mark_dirty mgr;
    let io_ns () = Gh_faas.Actionloop.io_total_ns loop - io0 in
    if response.Fm.hung then
      Intf.invocation ~on_path_ns:(Account.total acct) ~io_ns:(io_ns ()) ~outcome:Intf.Hung
        response
    else begin
      Gh_faas.Actionloop.return_output loop acct ~output_kb:response.Fm.output_kb;
      (* Restoration is skipped between same-domain requests — but a crashed
         process is rolled back: the snapshot doubles as crash recovery. *)
      if response.Fm.crashed then begin
        let vf0 = Manager.verify_failures mgr in
        match Manager.restore mgr with
        | Ok b ->
            let v =
              if verify_on then Intf.Verified (Manager.last_verify_blocks mgr)
              else Intf.Unverified
            in
            Intf.invocation ~on_path_ns:(Account.total acct) ~io_ns:(io_ns ())
              ~post_ns:b.Groundhog_core.Breakdown.total_ns ~breakdown:b ~verify:v
              ~restore_label:"crash-restore" ~outcome:Intf.Crashed response
        | Error f ->
            let v =
              if Manager.verify_failures mgr > vf0 then begin
                blast_stored ();
                Intf.Verify_failed f.Manager.what
              end
              else Intf.Unverified
            in
            Intf.invocation ~on_path_ns:(Account.total acct) ~io_ns:(io_ns ())
              ~post_ns:f.Manager.spent_ns ~verify:v ~restore_label:"crash-restore"
              ~outcome:Intf.Poisoned response
      end
      else begin
        Manager.skip_restore mgr;
        Intf.invocation ~on_path_ns:(Account.total acct) ~io_ns:(io_ns ())
          ~outcome:Intf.Completed response
      end
    end
  in
  {
    Intf.name = "gh-nop";
    init_ns;
    invoke;
    snapshot_pages =
      (fun () ->
        match Manager.snapshot mgr with
        | Some snap -> snap.Groundhog_core.Snapshot.present_pages
        | None -> 0);
    describe = (fun () -> "Groundhog without restoration (single security domain)");
    status = (fun () -> Some (Intf.manager_status mgr));
    kill =
      (fun () ->
        if Manager.status mgr <> Manager.Poisoned then Manager.poison mgr "killed";
        match !sharer with
        | Some (d, sh) ->
            Dedup.unregister d sh;
            sharer := None
        | None -> ());
    (* GH-NOP never restores, so there is nothing to defer. *)
    degrade = Intf.no_degrade;
    scrub =
      (fun blocks ->
        match Manager.scrub mgr ~blocks with
        | `Skip -> Intf.Scrub_skip
        | `Checked (n, finished) -> Intf.Scrubbed (n, finished)
        | `Corrupt c ->
            blast_stored ();
            Intf.Scrub_corrupt (Format.asprintf "%a" Snapshot.pp_corruption c));
    audit = (fun () -> Manager.audit_oracle mgr);
  }
