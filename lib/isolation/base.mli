(** BASE: the insecure baseline — plain container reuse, no request
    isolation (§5.1). The container is initialized and warmed once;
    every subsequent request executes directly in the shared, never-reset
    process. Fast, and leaky by construction.

    If the function process crashes mid-request, BASE has nothing to roll
    back to: the platform rebuilds the container, paying the full cold
    start before the next request. *)

val make :
  ?fault:Gh_sim.Fault.t ->
  rng:Gh_sim.Rng.t ->
  Gh_faas.Function_model.spec ->
  Gh_faas.Strategy_intf.t

val make_on : rng:Gh_sim.Rng.t -> Gh_faas.Function_model.instance -> Gh_faas.Strategy_intf.t
(** Wrap an instance the caller already built (shared-instance tests). *)
