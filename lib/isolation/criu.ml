module Account = Gh_sim.Account
module Rng = Gh_sim.Rng
module Fm = Gh_faas.Function_model
module Intf = Gh_faas.Strategy_intf
module Manager = Groundhog_core.Manager
module Snapshot = Groundhog_core.Snapshot
module Restore = Groundhog_core.Restore
module Verify = Groundhog_core.Verify
module Breakdown = Groundhog_core.Breakdown

(* VAS-CRIU-like in-memory restore: rebuild the address space from the
   image. ~120 ms fixed (task/resource restoration, page-table rebuild
   orchestration) plus ~6 us per present page (image read + placement) —
   lands at the ~0.5 s the paper quotes for typical containers. *)
let restore_base_ns = 120_000_000
let restore_per_page_ns = 6_000

let restore_cost_ns ~present_pages = restore_base_ns + (present_pages * restore_per_page_ns)

let make ?(verify = Manager.Verify_off) ?(fault = Gh_sim.Fault.none) ~rng spec =
  let inst = Fm.build spec in
  Gh_proc.Process.set_fault (Fm.proc inst) fault;
  let rng = Rng.split rng in
  let init_acct = Account.create () in
  let _warm = Fm.warmup inst init_acct rng in
  Fm.mark_clean inst;
  (* Checkpoint: serialize the full image (charged per present page). *)
  let snap = Snapshot.capture_exn init_acct (Fm.proc inst) in
  Account.charge init_acct (restore_per_page_ns * snap.Snapshot.present_pages);
  let rt = Fm.runtime inst in
  let init_ns = rt.Gh_faas.Runtime.init_ns + Account.total init_acct in
  let scratch = Account.create () in
  (* No manager here; the integrity state is the strategy's own. *)
  let poisoned = ref false in
  let dirty = ref false in
  let restores = ref 0 in
  let scrub_cursor = ref 0 in
  (* Restore-time hash audit, same policy semantics as the manager's:
     reads restored memory only, never the simulated clock. *)
  let run_audit () =
    let stride, offset =
      match verify with
      | Manager.Verify_off -> (0, 0)
      | Manager.Verify_full -> (1, 0)
      | Manager.Verify_sampled k -> (max 1 k, !restores mod max 1 k)
    in
    if stride = 0 then Ok (-1)
    else Verify.audit_hashes ~stride ~offset snap (Fm.proc inst)
  in
  let invoke req =
    let acct = Account.create () in
    dirty := true;
    let response = Fm.invoke inst acct rng ~post_restore:true req in
    if response.Fm.hung then
      Intf.invocation ~on_path_ns:(Account.total acct) ~outcome:Intf.Hung response
    else begin
      (* The mechanism really reverts the state; the charge is the image
         deserialization model, not a dirty-proportional restore. *)
      let reset_ns = restore_cost_ns ~present_pages:snap.Snapshot.present_pages in
      match Restore.run scratch snap (Fm.proc inst) with
      | Error _ ->
          (* The image restore failed mid-way: the attempt's cost is spent
             and the process state is unknown. *)
          poisoned := true;
          Intf.invocation ~on_path_ns:(Account.total acct) ~post_ns:reset_ns
            ~restore_label:"criu-restore" ~outcome:Intf.Poisoned response
      | Ok mechanics -> (
          let audit = run_audit () in
          incr restores;
          match audit with
          | Error c ->
              (* The restore "completed" but the restored image does not
                 match the checkpoint: serve nothing further from it. *)
              poisoned := true;
              Intf.invocation ~on_path_ns:(Account.total acct) ~post_ns:reset_ns
                ~verify:
                  (Intf.Verify_failed
                     (Format.asprintf "%a" Snapshot.pp_corruption c))
                ~restore_label:"criu-restore" ~outcome:Intf.Poisoned response
          | Ok audited ->
              dirty := false;
              let breakdown =
                {
                  Breakdown.zero with
                  Breakdown.copy_ns = reset_ns;
                  total_ns = reset_ns;
                  pages_restored = snap.Snapshot.present_pages;
                  pages_madvised = mechanics.Breakdown.pages_madvised;
                }
              in
              Intf.invocation ~on_path_ns:(Account.total acct) ~post_ns:reset_ns
                ~breakdown ~isolated:true
                ~verify:(if audited < 0 then Intf.Unverified else Intf.Verified audited)
                ~restore_label:"criu-restore"
                ~outcome:(Intf.outcome_of_response response) response)
    end
  in
  {
    Intf.name = "criu";
    init_ns;
    invoke;
    snapshot_pages = (fun () -> snap.Snapshot.present_pages);
    describe =
      (fun () -> "CRIU-style full-image checkpoint/restore per request (related work)");
    status = Intf.no_status;
    kill = Intf.no_kill;
    degrade = Intf.no_degrade;
    scrub =
      (fun blocks ->
        if !poisoned then Intf.Scrub_skip
        else
          let r = Snapshot.scrub snap ~cursor:!scrub_cursor ~blocks in
          scrub_cursor := r.Snapshot.next_cursor;
          match r.Snapshot.corrupt with
          | Some c ->
              poisoned := true;
              Intf.Scrub_corrupt (Format.asprintf "%a" Snapshot.pp_corruption c)
          | None -> Intf.Scrubbed (r.Snapshot.checked_blocks, r.Snapshot.next_cursor = 0));
    audit =
      (fun () ->
        (* Every completed CRIU invocation ends in a full-image restore, so
           between requests the image is the reference — except right after
           boot (the warm process itself is the reference, even if the
           stored image is corrupt) or mid-hang. *)
        if !poisoned || !dirty || !restores = 0 then None
        else
          Some
            (match Verify.audit_hashes snap (Fm.proc inst) with
            | Ok _ -> `Intact
            | Error c -> `Corrupt (Format.asprintf "%a" Snapshot.pp_corruption c)));
  }
