module Account = Gh_sim.Account
module Rng = Gh_sim.Rng
module Fm = Gh_faas.Function_model
module Intf = Gh_faas.Strategy_intf
module Snapshot = Groundhog_core.Snapshot
module Restore = Groundhog_core.Restore
module Breakdown = Groundhog_core.Breakdown

(* VAS-CRIU-like in-memory restore: rebuild the address space from the
   image. ~120 ms fixed (task/resource restoration, page-table rebuild
   orchestration) plus ~6 us per present page (image read + placement) —
   lands at the ~0.5 s the paper quotes for typical containers. *)
let restore_base_ns = 120_000_000
let restore_per_page_ns = 6_000

let restore_cost_ns ~present_pages = restore_base_ns + (present_pages * restore_per_page_ns)

let make ?(fault = Gh_sim.Fault.none) ~rng spec =
  let inst = Fm.build spec in
  Gh_proc.Process.set_fault (Fm.proc inst) fault;
  let rng = Rng.split rng in
  let init_acct = Account.create () in
  let _warm = Fm.warmup inst init_acct rng in
  Fm.mark_clean inst;
  (* Checkpoint: serialize the full image (charged per present page). *)
  let snap = Snapshot.capture_exn init_acct (Fm.proc inst) in
  Account.charge init_acct (restore_per_page_ns * snap.Snapshot.present_pages);
  let rt = Fm.runtime inst in
  let init_ns = rt.Gh_faas.Runtime.init_ns + Account.total init_acct in
  let scratch = Account.create () in
  let invoke req =
    let acct = Account.create () in
    let response = Fm.invoke inst acct rng ~post_restore:true req in
    if response.Fm.hung then
      Intf.invocation ~on_path_ns:(Account.total acct) ~outcome:Intf.Hung response
    else begin
      (* The mechanism really reverts the state; the charge is the image
         deserialization model, not a dirty-proportional restore. *)
      let reset_ns = restore_cost_ns ~present_pages:snap.Snapshot.present_pages in
      match Restore.run scratch snap (Fm.proc inst) with
      | Error _ ->
          (* The image restore failed mid-way: the attempt's cost is spent
             and the process state is unknown. *)
          Intf.invocation ~on_path_ns:(Account.total acct) ~post_ns:reset_ns
            ~restore_label:"criu-restore" ~outcome:Intf.Poisoned response
      | Ok mechanics ->
          let breakdown =
            {
              Breakdown.zero with
              Breakdown.copy_ns = reset_ns;
              total_ns = reset_ns;
              pages_restored = snap.Snapshot.present_pages;
              pages_madvised = mechanics.Breakdown.pages_madvised;
            }
          in
          Intf.invocation ~on_path_ns:(Account.total acct) ~post_ns:reset_ns ~breakdown
            ~isolated:true ~restore_label:"criu-restore"
            ~outcome:(Intf.outcome_of_response response) response
    end
  in
  {
    Intf.name = "criu";
    init_ns;
    invoke;
    snapshot_pages = (fun () -> snap.Snapshot.present_pages);
    describe =
      (fun () -> "CRIU-style full-image checkpoint/restore per request (related work)");
    status = Intf.no_status;
    kill = Intf.no_kill;
    degrade = Intf.no_degrade;
  }
