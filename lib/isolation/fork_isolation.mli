(** FORK: fork-based request isolation (§3.2, §5.2.3).

    The function process is initialized and warmed; each request is served
    by a freshly forked child that is discarded afterwards, leaving the
    parent pristine. Costs sit on the critical path: the fork itself
    (page-table duplication grows with the address space), a CoW copy fault
    for every page the request writes, and a first-touch fault for every
    page it merely reads in the fresh child.

    Only applicable to single-threaded runtimes: fork(2) clones just the
    calling thread, so a multi-threaded runtime (Node.js) would lose its
    worker threads. *)

val make :
  ?fault:Gh_sim.Fault.t ->
  rng:Gh_sim.Rng.t ->
  Gh_faas.Function_model.spec ->
  (Gh_faas.Strategy_intf.t, string) result
(** [Error] when the spec's runtime is multi-threaded. *)
