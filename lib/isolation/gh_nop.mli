(** GH_NOP: Groundhog with restoration disabled (§5.1).

    The manager still interposes on the protocol and takes the initial
    snapshot (arming soft-dirty tracking once), but never restores. This is
    the configuration for consecutive requests from one security domain; it
    also isolates Groundhog's tracking cost from its restoration cost —
    the difference between GH and GH_NOP is the restoration.

    Because the soft-dirty bits set during the first invocation are never
    reset, later invocations take no re-arm faults — GH_NOP's in-function
    overhead is just the proxying. That property {e emerges} from the
    substrate here; it is not special-cased. *)

val make :
  ?verify:Groundhog_core.Manager.verify ->
  ?dedup:Groundhog_core.Dedup.t ->
  ?fault:Gh_sim.Fault.t ->
  rng:Gh_sim.Rng.t ->
  Gh_faas.Function_model.spec ->
  Gh_faas.Strategy_intf.t
(** [verify] (default off) hash-audits the crash-restore path — the only
    restore GH_NOP ever performs. [dedup] registers the snapshot in a
    cross-container index, like {!Gh.make}. *)
