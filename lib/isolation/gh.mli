(** GH: Groundhog — full sequential request isolation (§4).

    Container initialization runs the dummy request and takes the snapshot;
    each invocation pays the stdin/stdout proxying cost and the soft-dirty
    re-arm faults on the critical path, and a restoration off the critical
    path before the next request may enter. *)

type interposition =
  | Intercept
      (** The evaluated configuration (§4.5, footnote 7): the manager
          copies every input and output through its own pipes — no platform
          changes required. *)
  | Platform_signal
      (** §4.5's optimization: the platform forwards inputs directly to the
          function process after waiting for the manager's clean signal,
          and outputs bypass the manager — eliminating the copy overhead at
          the price of a small trusted platform change. *)

val make :
  ?policy:Policy.t ->
  ?paranoid:bool ->
  ?verify:Groundhog_core.Manager.verify ->
  ?dedup:Groundhog_core.Dedup.t ->
  ?mode:Groundhog_core.Manager.mode ->
  ?interposition:interposition ->
  ?fault:Gh_sim.Fault.t ->
  rng:Gh_sim.Rng.t ->
  Gh_faas.Function_model.spec ->
  Gh_faas.Strategy_intf.t
(** [policy] defaults to [Always_isolate]; with [Trust_same_principal] the
    {!Gh_faas.Strategy_intf.t.invoke} path still restores eagerly (no
    lookahead), but {!invoke_with_lookahead} exposes the skip. [paranoid]
    verifies each restore bit-for-bit (testing). [verify] (default off)
    hash-audits each restore and reports the result on the invocation's
    [verify] field; an audit failure poisons the manager and — when the
    corrupt block is dedup-shared — blasts every sharer. [dedup]
    registers the snapshot in a cross-container index (eager mode only);
    [snapshot_pages] then reports only the pages this container actually
    stores, and [kill] unregisters. [mode] selects eager or incremental
    (§5.5) snapshots; default eager. [fault] attaches a fault plan to the
    function process (default {!Gh_sim.Fault.none}); a fault during the
    initial snapshot raises [Failure] (a failed container build).

    A failed restore poisons the manager and surfaces as a
    [Poisoned]-outcome invocation whose [post_ns] is the manager time the
    attempt burned; a hang surfaces as [Hung] with no restore performed. *)

type state
(** The strategy's internals, exposed for the policy ablation and tests. *)

val make_with_state :
  ?policy:Policy.t ->
  ?paranoid:bool ->
  ?verify:Groundhog_core.Manager.verify ->
  ?dedup:Groundhog_core.Dedup.t ->
  ?mode:Groundhog_core.Manager.mode ->
  ?interposition:interposition ->
  ?fault:Gh_sim.Fault.t ->
  rng:Gh_sim.Rng.t ->
  Gh_faas.Function_model.spec ->
  Gh_faas.Strategy_intf.t * state

val manager : state -> Groundhog_core.Manager.t
val instance : state -> Gh_faas.Function_model.instance

val actionloop : state -> Gh_faas.Actionloop.t
(** The interposed pipe pair (for tests probing the §4.5 invariant). *)

val deferred_restores : state -> int
(** How many post-completion restores brownout degradation deferred. Each
    deferral is settled at the next dispatch: free when the same principal
    returns (§4.4 same-security-domain argument), an on-path restore when a
    different principal arrives — so no request ever runs over another
    domain's residue. *)

val invoke_with_lookahead :
  state -> Gh_faas.Request.t -> next:Gh_faas.Request.t option -> Gh_faas.Strategy_intf.invocation
(** The §4.4 optimization: when the next queued request is visible and the
    policy trusts the transition, the rollback is skipped ([post_ns] = 0).
    With no lookahead the restore always runs (the safe default). *)
