module Account = Gh_sim.Account
module Rng = Gh_sim.Rng
module Fm = Gh_faas.Function_model
module Intf = Gh_faas.Strategy_intf
module Manager = Groundhog_core.Manager
module Actionloop = Gh_faas.Actionloop

type interposition = Intercept | Platform_signal

type state = {
  inst : Fm.instance;
  mgr : Manager.t;
  loop : Actionloop.t;
  interposition : interposition;
  rng : Rng.t;
  policy : Policy.t;
  mutable last_req : Gh_faas.Request.t option;
  mutable restored_since_last : bool;
}

let manager s = s.mgr
let instance s = s.inst
let actionloop s = s.loop

let run_function s req =
  let acct = Account.create () in
  let rt = Fm.runtime s.inst in
  (* The input reaches the function only when the process is provably
     clean (§4.5): via the interposed actionloop pipes (Intercept, paying
     copy costs) or forwarded directly by the platform after the manager's
     clean signal (Platform_signal, free). *)
  let req =
    match s.interposition with
    | Platform_signal ->
        if not (Manager.is_clean s.mgr) then
          failwith "Groundhog: platform forwarded input to a dirty process";
        req
    | Intercept -> begin
        match Actionloop.offer s.loop acct ~clean:(Manager.is_clean s.mgr) req with
        | `Delivered -> req
        | `Buffered -> begin
            (* The container serializes requests, so this only happens if
               the caller raced a restore; deliver once the state is known. *)
            match Actionloop.drain s.loop acct ~clean:(Manager.is_clean s.mgr) with
            | [ r ] -> r
            | _ -> failwith "Groundhog actionloop: input held back from a dirty process"
          end
      end
  in
  (* The first invocation after a restore runs against cold caches and
     madvised (refaulting) pages. *)
  if s.restored_since_last then Account.charge acct rt.Gh_faas.Runtime.restore_warmup_ns;
  let response = Fm.invoke s.inst acct s.rng ~post_restore:s.restored_since_last req in
  Manager.mark_dirty s.mgr;
  (if not response.Fm.hung then
     match s.interposition with
     | Intercept -> Actionloop.return_output s.loop acct ~output_kb:response.Fm.output_kb
     | Platform_signal -> ());
  (Account.total acct, response)

let invoke_with_lookahead s req ~next =
  let on_path_ns, response = run_function s req in
  s.last_req <- Some req;
  if response.Fm.hung then
    (* No output, no restore: the process is wedged mid-request and the
       manager stays [Dirty] — only a platform timeout (kill + cold
       restart) can free the container. *)
    {
      Intf.on_path_ns;
      post_ns = 0;
      response;
      breakdown = None;
      isolated = false;
      outcome = Intf.Hung;
    }
  else begin
    let skip =
      match next with
      | Some n -> not (Policy.requires_restore s.policy ~prev:(Some req) ~next:n)
      | None -> false
    in
    if skip then begin
      Manager.skip_restore s.mgr;
      s.restored_since_last <- false;
      {
        Intf.on_path_ns;
        post_ns = 0;
        response;
        breakdown = None;
        isolated = false;
        outcome = Intf.outcome_of_response response;
      }
    end
    else begin
      match Manager.restore s.mgr with
      | Ok breakdown ->
          s.restored_since_last <- true;
          {
            Intf.on_path_ns;
            post_ns = breakdown.Groundhog_core.Breakdown.total_ns;
            response;
            breakdown = Some breakdown;
            isolated = true;
            outcome = Intf.outcome_of_response response;
          }
      | Error f ->
          (* The failed attempt still burned manager time; the manager is
             now [Poisoned] and the container must be killed and rebuilt. *)
          {
            Intf.on_path_ns;
            post_ns = f.Manager.spent_ns;
            response;
            breakdown = None;
            isolated = false;
            outcome = Intf.Poisoned;
          }
    end
  end

let make_with_state ?(policy = Policy.Always_isolate) ?(paranoid = false)
    ?(mode = Manager.Eager) ?(interposition = Intercept) ?(fault = Gh_sim.Fault.none) ~rng
    spec =
  let inst = Fm.build spec in
  Gh_proc.Process.set_fault (Fm.proc inst) fault;
  let rng = Rng.split rng in
  let init_acct = Account.create () in
  let _warm = Fm.warmup inst init_acct rng in
  Fm.mark_clean inst;
  let mgr = Manager.create ~paranoid ~mode (Fm.proc inst) in
  let snap_ns = Manager.take_snapshot_exn mgr in
  let rt = Fm.runtime inst in
  let init_ns = rt.Gh_faas.Runtime.init_ns + Account.total init_acct + snap_ns in
  let loop = Actionloop.create rt in
  let s =
    { inst; mgr; loop; interposition; rng; policy; last_req = None; restored_since_last = false }
  in
  let strategy =
    {
      Intf.name = "gh";
      init_ns;
      invoke = (fun req -> invoke_with_lookahead s req ~next:None);
      snapshot_pages = (fun () -> Manager.buffer_pages mgr);
      describe =
        (fun () ->
          Printf.sprintf "Groundhog: snapshot/restore isolation (policy %s)"
            (Policy.to_string policy));
      status = (fun () -> Some (Intf.manager_status mgr));
      kill =
        (fun () ->
          if Manager.status mgr <> Manager.Poisoned then Manager.poison mgr "killed");
    }
  in
  (strategy, s)

let make ?policy ?paranoid ?mode ?interposition ?fault ~rng spec =
  let strategy, _state =
    make_with_state ?policy ?paranoid ?mode ?interposition ?fault ~rng spec
  in
  strategy
