module Account = Gh_sim.Account
module Rng = Gh_sim.Rng
module Fm = Gh_faas.Function_model
module Intf = Gh_faas.Strategy_intf
module Manager = Groundhog_core.Manager
module Snapshot = Groundhog_core.Snapshot
module Dedup = Groundhog_core.Dedup
module Actionloop = Gh_faas.Actionloop

type interposition = Intercept | Platform_signal

type state = {
  inst : Fm.instance;
  mgr : Manager.t;
  loop : Actionloop.t;
  interposition : interposition;
  rng : Rng.t;
  policy : Policy.t;
  verify_on : bool;
  mutable sharer : (Dedup.t * Dedup.sharer) option;
  mutable last_req : Gh_faas.Request.t option;
  mutable restored_since_last : bool;
  (* Brownout: while [degraded], the post-completion restore is deferred —
     the rollback debt is remembered in [deferred_from] and settled at the
     next dispatch (free if the same principal returns, on-path restore
     otherwise). *)
  mutable degraded : bool;
  mutable deferred_from : Gh_faas.Principal.t option;
  mutable deferred_restores : int;
}

let manager s = s.mgr
let instance s = s.inst
let actionloop s = s.loop
let deferred_restores s = s.deferred_restores

(* Corruption was just detected. If the *stored* block itself fails
   verification, the canonical copy is damaged and every dedup sharer of
   it restores from the same bytes — blast them all (fail closed). A
   restore-skip leaves the store intact, so it blasts nothing. *)
let blast_if_stored_corrupt s =
  match (s.sharer, Manager.last_corruption s.mgr) with
  | Some (d, sh), Some c ->
      let stored_bad =
        match Manager.snapshot s.mgr with
        | None -> false
        | Some snap -> (
            match Snapshot.find_region snap ~start_addr:c.Snapshot.region_addr with
            | None -> false
            | Some r -> not (Snapshot.verify_block r c.Snapshot.block))
      in
      if stored_bad then
        ignore
          (Dedup.blast d sh ~region_addr:c.Snapshot.region_addr ~block:c.Snapshot.block
             ~what:c.Snapshot.what)
  | _ -> ()

(* [Manager.restore] plus the per-invocation verify outcome: [Verified n]
   when the policy audited this restore, [Verify_failed] when the audit is
   what killed it (also the dedup blast trigger). *)
let restore_verified s =
  let vf0 = Manager.verify_failures s.mgr in
  match Manager.restore s.mgr with
  | Ok b ->
      let v =
        if s.verify_on then Intf.Verified (Manager.last_verify_blocks s.mgr)
        else Intf.Unverified
      in
      Ok (b, v)
  | Error f ->
      let v =
        if Manager.verify_failures s.mgr > vf0 then begin
          blast_if_stored_corrupt s;
          Intf.Verify_failed f.Manager.what
        end
        else Intf.Unverified
      in
      Error (f, v)

let run_function s req =
  let acct = Account.create () in
  let io0 = Actionloop.io_total_ns s.loop in
  let rt = Fm.runtime s.inst in
  (* The input reaches the function only when the process is provably
     clean (§4.5): via the interposed actionloop pipes (Intercept, paying
     copy costs) or forwarded directly by the platform after the manager's
     clean signal (Platform_signal, free). *)
  let req =
    match s.interposition with
    | Platform_signal ->
        if not (Manager.is_clean s.mgr) then
          failwith "Groundhog: platform forwarded input to a dirty process";
        req
    | Intercept -> begin
        match Actionloop.offer s.loop acct ~clean:(Manager.is_clean s.mgr) req with
        | `Delivered -> req
        | `Buffered -> begin
            (* The container serializes requests, so this only happens if
               the caller raced a restore; deliver once the state is known. *)
            match Actionloop.drain s.loop acct ~clean:(Manager.is_clean s.mgr) with
            | [ r ] -> r
            | _ -> failwith "Groundhog actionloop: input held back from a dirty process"
          end
      end
  in
  (* The first invocation after a restore runs against cold caches and
     madvised (refaulting) pages. *)
  if s.restored_since_last then Account.charge acct rt.Gh_faas.Runtime.restore_warmup_ns;
  let response = Fm.invoke s.inst acct s.rng ~post_restore:s.restored_since_last req in
  Manager.mark_dirty s.mgr;
  (if not response.Fm.hung then
     match s.interposition with
     | Intercept -> Actionloop.return_output s.loop acct ~output_kb:response.Fm.output_kb
     | Platform_signal -> ());
  (Account.total acct, Actionloop.io_total_ns s.loop - io0, response)

(* Pay off a restore deferred under brownout, before [req] may run. If the
   same principal is back, the residue is its own data — the same-security-
   domain argument as §4.4's [Trust_same_principal] — and the debt collapses
   for free. A different principal forces the restore onto this request's
   critical path; it must complete before any input is forwarded. *)
let settle_deferred s req =
  match s.deferred_from with
  | None -> Ok (0, Intf.Unverified)
  | Some p ->
      s.deferred_from <- None;
      if Gh_faas.Principal.equal p req.Gh_faas.Request.principal then
        Ok (0, Intf.Unverified)
      else begin
        Manager.mark_dirty s.mgr;
        match restore_verified s with
        | Ok (breakdown, v) ->
            s.restored_since_last <- true;
            Ok (breakdown.Groundhog_core.Breakdown.total_ns, v)
        | Error _ as e -> e
      end

let invoke_with_lookahead s req ~next =
  match settle_deferred s req with
  | Error (f, verify) ->
      (* The catch-up restore failed: the manager is poisoned and the
         request was never started — fail closed with an error response. *)
      Intf.invocation ~on_path_ns:f.Manager.spent_ns
        ~restore_on_path_ns:f.Manager.spent_ns ~verify ~outcome:Intf.Poisoned
        { Fm.value = 0; residue = []; output_kb = 0; service_denials = 0;
          crashed = true; hung = false }
  | Ok (settle_ns, settle_verify) ->
  let on_path_ns, io_ns, response = run_function s req in
  let on_path_ns = settle_ns + on_path_ns in
  s.last_req <- Some req;
  if response.Fm.hung then
    (* No output, no restore: the process is wedged mid-request and the
       manager stays [Dirty] — only a platform timeout (kill + cold
       restart) can free the container. *)
    Intf.invocation ~on_path_ns ~io_ns ~restore_on_path_ns:settle_ns
      ~verify:settle_verify ~outcome:Intf.Hung response
  else begin
    let skip =
      match next with
      | Some n -> not (Policy.requires_restore s.policy ~prev:(Some req) ~next:n)
      | None -> false
    in
    if skip then begin
      Manager.skip_restore s.mgr;
      s.restored_since_last <- false;
      Intf.invocation ~on_path_ns ~io_ns ~restore_on_path_ns:settle_ns
        ~verify:settle_verify ~outcome:(Intf.outcome_of_response response) response
    end
    else if s.degraded && not response.Fm.crashed && Manager.status s.mgr = Manager.Dirty
    then begin
      (* Brownout: defer the incremental re-snapshot/restore instead of
         burning the core now. [skip_restore] marks the process policy-clean
         (the §4.4 same-domain argument applied optimistically); the debt in
         [deferred_from] is validated at the next dispatch, so no request
         from a different principal can ever run over this residue. Crashed
         responses always restore immediately — the process state is not
         merely dirty but wrecked. *)
      Manager.skip_restore s.mgr;
      s.restored_since_last <- false;
      s.deferred_from <- Some req.Gh_faas.Request.principal;
      s.deferred_restores <- s.deferred_restores + 1;
      Intf.invocation ~on_path_ns ~io_ns ~restore_on_path_ns:settle_ns
        ~verify:settle_verify ~outcome:(Intf.outcome_of_response response) response
    end
    else begin
      match restore_verified s with
      | Ok (breakdown, verify) ->
          s.restored_since_last <- true;
          Intf.invocation ~on_path_ns ~io_ns ~restore_on_path_ns:settle_ns
            ~post_ns:breakdown.Groundhog_core.Breakdown.total_ns ~breakdown
            ~isolated:true ~verify ~restore_label:"gh-restore"
            ~outcome:(Intf.outcome_of_response response) response
      | Error (f, verify) ->
          (* The failed attempt still burned manager time; the manager is
             now [Poisoned] and the container must be killed and rebuilt. *)
          Intf.invocation ~on_path_ns ~io_ns ~restore_on_path_ns:settle_ns
            ~post_ns:f.Manager.spent_ns ~verify ~restore_label:"gh-restore"
            ~outcome:Intf.Poisoned response
    end
  end

let make_with_state ?(policy = Policy.Always_isolate) ?(paranoid = false)
    ?(verify = Manager.Verify_off) ?dedup ?(mode = Manager.Eager)
    ?(interposition = Intercept) ?(fault = Gh_sim.Fault.none) ~rng spec =
  let inst = Fm.build spec in
  Gh_proc.Process.set_fault (Fm.proc inst) fault;
  let rng = Rng.split rng in
  let init_acct = Account.create () in
  let _warm = Fm.warmup inst init_acct rng in
  Fm.mark_clean inst;
  let mgr = Manager.create ~paranoid ~verify ~mode (Fm.proc inst) in
  let snap_ns = Manager.take_snapshot_exn mgr in
  let rt = Fm.runtime inst in
  let init_ns = rt.Gh_faas.Runtime.init_ns + Account.total init_acct + snap_ns in
  let loop = Actionloop.create rt in
  let s =
    {
      inst;
      mgr;
      loop;
      interposition;
      rng;
      policy;
      verify_on = verify <> Manager.Verify_off;
      sharer = None;
      last_req = None;
      restored_since_last = false;
      degraded = false;
      deferred_from = None;
      deferred_restores = 0;
    }
  in
  (* Fold the fresh snapshot into the function's dedup index (eager mode
     only — incremental shells materialize lazily, so their content is not
     stable at registration time). [on_corrupt] is the receiving end of
     another sharer's blast: our stored copy of that block is the same
     physical bytes, so we are poisoned too. *)
  (match (dedup, mode, Manager.snapshot mgr) with
  | Some d, Manager.Eager, Some snap ->
      let sharer =
        Dedup.register d ~owner:"gh"
          ~on_corrupt:(fun c ->
            if Manager.status mgr <> Manager.Poisoned then
              Manager.poison mgr
                (Format.asprintf "dedup blast: %a" Snapshot.pp_corruption c))
          snap
      in
      s.sharer <- Some (d, sharer)
  | _ -> ());
  let strategy =
    {
      Intf.name = "gh";
      init_ns;
      invoke = (fun req -> invoke_with_lookahead s req ~next:None);
      snapshot_pages =
        (fun () ->
          (* With dedup, report only the pages this container actually
             stores (shared blocks are charged to their first holder). *)
          match s.sharer with
          | Some (_, sharer) -> Dedup.charged_pages sharer
          | None -> Manager.buffer_pages mgr);
      describe =
        (fun () ->
          Printf.sprintf "Groundhog: snapshot/restore isolation (policy %s)"
            (Policy.to_string policy));
      status = (fun () -> Some (Intf.manager_status mgr));
      kill =
        (fun () ->
          if Manager.status mgr <> Manager.Poisoned then Manager.poison mgr "killed";
          match s.sharer with
          | Some (d, sharer) ->
              Dedup.unregister d sharer;
              s.sharer <- None
          | None -> ());
      degrade = (fun d -> s.degraded <- d);
      scrub =
        (fun blocks ->
          (* Brownout-aware: scrubbing is the definition of deferrable
             work, so a degraded container skips its slices entirely. *)
          if s.degraded then Intf.Scrub_skip
          else
            match Manager.scrub mgr ~blocks with
            | `Skip -> Intf.Scrub_skip
            | `Checked (n, finished) -> Intf.Scrubbed (n, finished)
            | `Corrupt c ->
                (* Stored-side corruption is definitely in the buffer:
                   blast every sharer of the block's canonical copy. *)
                blast_if_stored_corrupt s;
                Intf.Scrub_corrupt (Format.asprintf "%a" Snapshot.pp_corruption c));
      audit = (fun () -> Manager.audit_oracle mgr);
    }
  in
  (strategy, s)

let make ?policy ?paranoid ?verify ?dedup ?mode ?interposition ?fault ~rng spec =
  let strategy, _state =
    make_with_state ?policy ?paranoid ?verify ?dedup ?mode ?interposition ?fault ~rng spec
  in
  strategy
