module Account = Gh_sim.Account
module Rng = Gh_sim.Rng
module Fm = Gh_faas.Function_model
module Intf = Gh_faas.Strategy_intf
module Process = Gh_proc.Process

(* Reaping the child (wait4 plus page-table teardown) overlaps the next
   request; the kernel frees the CoW structures asynchronously. *)
let reap_ns = 60_000

let make ?(fault = Gh_sim.Fault.none) ~rng spec =
  let rt = Gh_faas.Runtime.for_lang spec.Fm.lang in
  if rt.Gh_faas.Runtime.threads > 1 then
    Error
      (Printf.sprintf "fork-based isolation cannot snapshot the %d-thread %s runtime"
         rt.Gh_faas.Runtime.threads
         (Gh_faas.Runtime.lang_to_string rt.Gh_faas.Runtime.lang))
  else begin
    let inst = Fm.build spec in
    Process.set_fault (Fm.proc inst) fault;
    let rng = Rng.split rng in
    let init_acct = Account.create () in
    let _warm = Fm.warmup inst init_acct rng in
    Fm.mark_clean inst;
    let init_ns = rt.Gh_faas.Runtime.init_ns + Account.total init_acct in
    let loop = Gh_faas.Actionloop.create rt in
    let invoke req =
      let acct = Account.create () in
      let io0 = Gh_faas.Actionloop.io_total_ns loop in
      (* The freshly forked child is by construction clean: inputs flow
         through the interposition immediately. *)
      ignore (Gh_faas.Actionloop.offer loop acct ~clean:true req);
      (* fork(2) and the runtime's atfork work are on the critical path. *)
      let child = Process.fork (Fm.proc inst) acct in
      Account.charge acct rt.Gh_faas.Runtime.fork_extra_ns;
      let response = Fm.invoke_on inst child acct rng ~post_restore:false req in
      if response.Fm.hung then
        (* The child is wedged; the parent stays pristine, but no response
           exists — only the platform timeout frees the request's core. *)
        Intf.invocation ~on_path_ns:(Account.total acct)
          ~io_ns:(Gh_faas.Actionloop.io_total_ns loop - io0) ~isolated:true
          ~outcome:Intf.Hung response
      else begin
        Gh_faas.Actionloop.return_output loop acct ~output_kb:response.Fm.output_kb;
        (* The reap frees the child's pages: recycle its clone buffers
           into this domain's pool so the next fork reuses them instead
           of churning the major heap. (A hung child stays mapped until
           the platform timeout kills it, so only this path recycles.) *)
        Process.recycle child;
        Intf.invocation ~on_path_ns:(Account.total acct)
          ~io_ns:(Gh_faas.Actionloop.io_total_ns loop - io0) ~post_ns:reap_ns
          ~isolated:true ~restore_label:"reap"
          ~outcome:(Intf.outcome_of_response response) response
      end
    in
    Ok
      {
        Intf.name = "fork";
        init_ns;
        invoke;
        snapshot_pages = (fun () -> 0);
        describe = (fun () -> "fork-per-request isolation (single-threaded runtimes only)");
        status = Intf.no_status;
        kill = Intf.no_kill;
        degrade = Intf.no_degrade;
        scrub = Intf.no_scrub;
        audit = Intf.no_audit;
      }
  end
