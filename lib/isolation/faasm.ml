module Account = Gh_sim.Account
module Rng = Gh_sim.Rng
module Cost = Gh_kernel.Cost
module Fm = Gh_faas.Function_model
module Intf = Gh_faas.Strategy_intf
module Snapshot = Groundhog_core.Snapshot
module Restore = Groundhog_core.Restore
module Breakdown = Groundhog_core.Breakdown

let make ?(fault = Gh_sim.Fault.none) ~rng spec =
  match spec.Fm.wasm_factor with
  | None ->
      Error (Printf.sprintf "%s has no WebAssembly port" spec.Fm.name)
  | Some factor ->
      (* The wasm build runs [factor] times the native speed; the linear
         memory's dirty tracking is free (the runtime owns the region), so
         no soft-dirty re-arm faults — writes pay CoW faults instead, armed
         at every reset. *)
      let scaled =
        {
          spec with
          Fm.exec_ns = int_of_float (float_of_int spec.Fm.exec_ns *. factor);
        }
      in
      let cost = { Cost.default with Cost.sd_fault_ns = 0 } in
      let inst = Fm.build ~cost scaled in
      Gh_proc.Process.set_fault (Fm.proc inst) fault;
      let rng = Rng.split rng in
      let init_acct = Account.create () in
      let _warm = Fm.warmup inst init_acct rng in
      Fm.mark_clean inst;
      let snap = Snapshot.capture_exn init_acct (Fm.proc inst) in
      Gh_mem.Address_space.arm_cow_all (Fm.proc inst).Gh_proc.Process.mem;
      let rt = Fm.runtime inst in
      let init_ns = rt.Gh_faas.Runtime.init_ns + Account.total init_acct in
      let scratch = Account.create () in
      let invoke req =
        let acct = Account.create () in
        let response = Fm.invoke inst acct rng ~post_restore:false req in
        if response.Fm.hung then
          Intf.invocation ~on_path_ns:(Account.total acct) ~outcome:Intf.Hung response
        else begin
          (* Reset: the mechanism really restores (so isolation is real),
             but the charged cost is the remap model, not a pagemap scan. *)
          match Restore.run scratch snap (Fm.proc inst) with
          | Error _ ->
              (* The linear-memory remap failed: the Faaslet's state is
                 unknown; only the base reset cost was spent. *)
              Intf.invocation ~on_path_ns:(Account.total acct)
                ~post_ns:Cost.default.Cost.faasm_reset_base_ns
                ~restore_label:"faasm-reset" ~outcome:Intf.Poisoned response
          | Ok mechanics ->
              Gh_mem.Address_space.arm_cow_all (Fm.proc inst).Gh_proc.Process.mem;
              let restored = mechanics.Breakdown.pages_restored in
              let reset_ns =
                Cost.default.Cost.faasm_reset_base_ns
                + (restored * Cost.default.Cost.faasm_reset_per_dirty_page_ns)
              in
              let breakdown =
                {
                  Breakdown.zero with
                  Breakdown.copy_ns = reset_ns;
                  total_ns = reset_ns;
                  pages_restored = restored;
                  pages_madvised = mechanics.Breakdown.pages_madvised;
                  syscalls_injected = mechanics.Breakdown.syscalls_injected;
                }
              in
              Intf.invocation ~on_path_ns:(Account.total acct) ~post_ns:reset_ns
                ~breakdown ~isolated:true ~restore_label:"faasm-reset"
                ~outcome:(Intf.outcome_of_response response) response
        end
      in
      Ok
        {
          Intf.name = "faasm";
          init_ns;
          invoke;
          snapshot_pages = (fun () -> snap.Snapshot.present_pages);
          describe =
            (fun () ->
              Printf.sprintf "FAASM: wasm Faaslet with CoW linear-memory reset (x%.2f native)"
                factor);
          status = Intf.no_status;
          kill = Intf.no_kill;
          degrade = Intf.no_degrade;
          scrub = Intf.no_scrub;
          audit = Intf.no_audit;
        }
