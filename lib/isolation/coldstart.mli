(** COLDSTART: the trivial solution — a fresh container per request (§1).

    Every invocation pays full container initialization (runtime boot plus
    warm-up) on the critical path. Perfectly isolated and impractically
    slow for short functions; included as the motivation baseline. *)

val make :
  ?fault:Gh_sim.Fault.t ->
  rng:Gh_sim.Rng.t ->
  Gh_faas.Function_model.spec ->
  Gh_faas.Strategy_intf.t
