(** The named strategy registry used by the harness and the CLI. *)

type id = Base | Gh | Gh_nop | Fork | Faasm | Coldstart | Criu

val all : id list
val to_string : id -> string

val of_string : string -> (id, string) result

val supports : id -> Gh_faas.Function_model.spec -> bool
(** Cheap support check (no process is built): FORK needs a
    single-threaded runtime, FAASM a WebAssembly port. *)

val make :
  id ->
  ?fault:Gh_sim.Fault.t ->
  ?verify:Groundhog_core.Manager.verify ->
  ?dedup:Groundhog_core.Dedup.t ->
  rng:Gh_sim.Rng.t ->
  Gh_faas.Function_model.spec ->
  (Gh_faas.Strategy_intf.t, string) result
(** Build the strategy for a benchmark; [Error] when the combination is
    unsupported (FORK on multi-threaded runtimes, FAASM without a wasm
    port) — or, with a [fault] plan attached, when a fault fires during
    the container's initial snapshot (a failed build, retryable).
    [verify] (restore-time hash audit) applies to the strategies that
    restore from a snapshot (GH, GH_NOP's crash path, CRIU); [dedup]
    (cross-container snapshot sharing) to the manager-based ones (GH,
    GH_NOP). Both are silently ignored elsewhere. *)
