module Account = Gh_sim.Account
module Rng = Gh_sim.Rng
module Fm = Gh_faas.Function_model
module Intf = Gh_faas.Strategy_intf

let make_on ~rng inst =
  let rt = Fm.runtime inst in
  let init_acct = Account.create () in
  let _warm = Fm.warmup inst init_acct rng in
  Fm.mark_clean inst;
  let init_ns = rt.Gh_faas.Runtime.init_ns + Account.total init_acct in
  (* A crashed container has no snapshot to fall back on: the platform must
     rebuild it from scratch. (The snapshot below is simulation mechanics
     that stands in for the rebuild; the charge is the full cold start.) *)
  let scratch = Account.create () in
  let rebuild_state = Groundhog_core.Snapshot.capture_exn scratch (Fm.proc inst) in
  let invoke req =
    let acct = Account.create () in
    let response = Fm.invoke inst acct rng ~post_restore:false req in
    if response.Fm.hung then
      Intf.invocation ~on_path_ns:(Account.total acct) ~outcome:Intf.Hung response
    else if response.Fm.crashed then begin
      (* The rebuild charge is paid either way; if the rebuild mechanics
         themselves fault, the container is unusable — poisoned. *)
      let outcome =
        match Groundhog_core.Restore.run scratch rebuild_state (Fm.proc inst) with
        | Ok _ -> Intf.Crashed
        | Error _ -> Intf.Poisoned
      in
      Intf.invocation ~on_path_ns:(Account.total acct) ~post_ns:init_ns
        ~restore_label:"rebuild" ~outcome response
    end
    else Intf.invocation ~on_path_ns:(Account.total acct) ~outcome:Intf.Completed response
  in
  {
    Intf.name = "base";
    init_ns;
    invoke;
    snapshot_pages = (fun () -> 0);
    describe = (fun () -> "insecure baseline: warm container reuse, no isolation");
    status = Intf.no_status;
    kill = Intf.no_kill;
    (* No post-completion recovery work exists to defer. *)
    degrade = Intf.no_degrade;
    scrub = Intf.no_scrub;
    audit = Intf.no_audit;
  }

let make ?(fault = Gh_sim.Fault.none) ~rng spec =
  let inst = Fm.build spec in
  Gh_proc.Process.set_fault (Fm.proc inst) fault;
  make_on ~rng inst
