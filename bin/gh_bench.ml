(* gh-bench: regenerate the paper's tables and figures, inspect the
   benchmark catalog, or run a single benchmark under one isolation
   strategy. *)

open Cmdliner

let profile_conv =
  let parse = function
    | "quick" -> Ok Gh_harness.Config.quick
    | "default" -> Ok Gh_harness.Config.default
    | "full" -> Ok Gh_harness.Config.full
    | s -> Error (`Msg (Printf.sprintf "unknown profile %S (quick|default|full)" s))
  in
  let print ppf _ = Format.pp_print_string ppf "<profile>" in
  Arg.conv (parse, print)

let profile_arg =
  let doc = "Measurement profile: quick, default or full (paper-sized runs)." in
  Arg.(value & opt profile_conv Gh_harness.Config.default & info [ "profile"; "p" ] ~doc)

let seed_arg =
  let doc = "Root random seed (experiments are deterministic per seed)." in
  Arg.(value & opt int 42 & info [ "seed" ] ~doc)

let jobs_arg =
  let doc =
    "Fan experiment cells across $(docv) domains (0 = one per core). The report is \
     byte-identical for any value — each cell seeds its own RNG from the root seed and \
     the cell's identity, and results merge in input order."
  in
  Arg.(value & opt int 1 & info [ "jobs"; "j" ] ~docv:"N" ~doc)

let gc_stats_arg =
  let doc =
    "After the run, print GC allocation totals (all domains) and snapshot buffer-pool \
     reuse counters to stderr; stdout is untouched, so reports stay bit-identical."
  in
  Arg.(value & flag & info [ "gc-stats" ] ~doc)

let with_seed cfg seed = { cfg with Gh_harness.Config.seed = seed }

let with_jobs cfg jobs =
  let jobs = if jobs <= 0 then Gh_sim.Domain_pool.recommended_jobs () else jobs in
  { cfg with Gh_harness.Config.jobs = jobs }

(* Allocation totals must sum every domain: Gc.stat is per-domain in
   OCaml 5, so the pool accumulates its workers' words as they exit and we
   add the main domain's own tally here. Stderr only — never the report. *)
let print_gc_stats () =
  let st = Gc.quick_stat () in
  let w_minor, w_major = Gh_sim.Domain_pool.worker_gc_words () in
  let pool = Gh_sim.Buffer_pool.stats () in
  Printf.eprintf
    "gc-stats: minor_words=%.0f major_words=%.0f (main domain %.0f/%.0f, workers \
     %.0f/%.0f)\n"
    (st.Gc.minor_words +. w_minor)
    (st.Gc.major_words +. w_major)
    st.Gc.minor_words st.Gc.major_words w_minor w_major;
  Printf.eprintf
    "gc-stats: buffer-pool hits=%d misses=%d releases=%d held_words=%d (main domain \
     only)\n%!"
    pool.Gh_sim.Buffer_pool.hits pool.Gh_sim.Buffer_pool.misses
    pool.Gh_sim.Buffer_pool.releases pool.Gh_sim.Buffer_pool.held_words

let write_file path content =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc content);
  Printf.printf "wrote %s\n%!" path

let export_observability ?trace_out ?metrics_out spans metrics =
  (match trace_out with
  | Some path -> write_file path (Gh_sim.Span.chrome_json spans)
  | None -> ());
  match metrics_out with
  | Some path ->
      let buf = Buffer.create 4096 in
      let ppf = Format.formatter_of_buffer buf in
      Gh_sim.Metrics.render ppf metrics;
      Format.pp_print_flush ppf ();
      write_file path (Buffer.contents buf)
  | None -> ()

(* -- run -- *)

let experiments_arg =
  let doc = "Experiments to run (see `gh-bench list'), or 'all' (the paper set) / 'extras' (ablations and extensions)." in
  Arg.(non_empty & pos_all string [] & info [] ~docv:"EXPERIMENT" ~doc)

let output_arg =
  let doc = "Write each experiment's report into $(docv)/<experiment>.txt instead of stdout." in
  Arg.(value & opt (some string) None & info [ "output"; "o" ] ~docv:"DIR" ~doc)

let trace_out_arg =
  let doc = "Also export a Chrome trace-event JSON of every request span to $(docv) (load it in Perfetto or chrome://tracing)." in
  Arg.(value & opt (some string) None & info [ "trace-out" ] ~docv:"FILE" ~doc)

let metrics_out_arg =
  let doc = "Also export a text snapshot of the metrics registry to $(docv)." in
  Arg.(value & opt (some string) None & info [ "metrics-out" ] ~docv:"FILE" ~doc)

let series_out_arg =
  let doc =
    "Also collect windowed time series (counter deltas, gauge samples, latency quantile \
     sketches) and export them to $(docv): Prometheus text exposition, or the JSON \
     series document when $(docv) ends in .json."
  in
  Arg.(value & opt (some string) None & info [ "series-out" ] ~docv:"FILE" ~doc)

let slo_out_arg =
  let doc =
    "Also evaluate the stock burn-rate SLOs (availability, p99 latency, cold-start \
     rate) at every front door and export their state and alert history as JSON to \
     $(docv)."
  in
  Arg.(value & opt (some string) None & info [ "slo" ] ~docv:"FILE" ~doc)

let run_cmd =
  let run profile seed jobs gc_stats output trace_out metrics_out series_out slo_out names
      =
    let cfg = with_jobs (with_seed profile seed) jobs in
    (* Observability sinks are attached only on request; either way the
       simulated runs are bit-identical (collectors only read clocks).
       Export notices for the extra collectors go to stderr so an
       instrumented `run all` keeps a byte-identical report on stdout. *)
    let spans = Gh_sim.Span.create () in
    let metrics = Gh_sim.Metrics.create () in
    let series = Gh_sim.Timeseries.create metrics in
    let slos = Gh_sim.Slo.standard ~metrics () in
    let cfg =
      if trace_out = None && metrics_out = None then cfg
      else { cfg with Gh_harness.Config.spans = Some spans; metrics = Some metrics }
    in
    (* Series and SLOs roll the same registry the nodes count into, so
       attaching either also shares the registry. *)
    let cfg =
      if series_out = None then cfg
      else { cfg with Gh_harness.Config.series = Some series; metrics = Some metrics }
    in
    let cfg =
      if slo_out = None then cfg
      else { cfg with Gh_harness.Config.slos = slos; metrics = Some metrics }
    in
    (* An instrumented run is forced serial (the collectors are shared
       mutable state): say so, naming the flags responsible, whenever
       that overrides an explicit -j request. *)
    (if
       cfg.Gh_harness.Config.jobs > 1
       && Gh_harness.Config.effective_jobs cfg < cfg.Gh_harness.Config.jobs
     then
       let reasons =
         List.filter_map
           (fun (passed, flag) -> if passed then Some flag else None)
           [
             (trace_out <> None, "--trace-out");
             (metrics_out <> None, "--metrics-out");
             (series_out <> None, "--series-out");
             (slo_out <> None, "--slo");
           ]
       in
       Printf.eprintf
         "gh-bench: warning: %s %s shared observability collectors; ignoring -j %d and \
          running serial\n\
          %!"
         (String.concat ", " reasons)
         (if List.length reasons = 1 then "attaches" else "attach")
         cfg.Gh_harness.Config.jobs);
    let with_ppf id k =
      match output with
      | None -> k Format.std_formatter
      | Some dir ->
          if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
          let path = Filename.concat dir (id ^ ".txt") in
          let oc = open_out path in
          let ppf = Format.formatter_of_out_channel oc in
          Fun.protect
            ~finally:(fun () ->
              Format.pp_print_flush ppf ();
              close_out oc;
              Printf.printf "wrote %s\n%!" path)
            (fun () -> k ppf)
    in
    let results =
      List.map
        (fun name ->
          if String.lowercase_ascii name = "all" then begin
            with_ppf "all" (fun ppf -> Gh_harness.Experiments.run_all cfg ppf);
            Ok ()
          end
          else if String.lowercase_ascii name = "extras" then begin
            with_ppf "extras" (fun ppf -> Gh_harness.Experiments.run_extras cfg ppf);
            Ok ()
          end
          else
            match Gh_harness.Experiments.of_string name with
            | Ok id ->
                with_ppf
                  (Gh_harness.Experiments.to_string id)
                  (fun ppf ->
                    Format.fprintf ppf "@.#### %s: %s@."
                      (Gh_harness.Experiments.to_string id)
                      (Gh_harness.Experiments.describe id);
                    Gh_harness.Experiments.run id cfg ppf);
                Ok ()
            | Error msg -> Error msg)
        names
    in
    export_observability ?trace_out ?metrics_out spans metrics;
    (match series_out with
    | None -> ()
    | Some path ->
        Gh_sim.Timeseries.flush series ~now:0;
        let content =
          if Filename.check_suffix path ".json" then
            Gh_sim.Json.to_string (Gh_sim.Timeseries.to_json series)
          else begin
            let buf = Buffer.create 4096 in
            let ppf = Format.formatter_of_buffer buf in
            Gh_sim.Timeseries.render_prom ppf series;
            Format.pp_print_flush ppf ();
            Buffer.contents buf
          end
        in
        let oc = open_out path in
        Fun.protect
          ~finally:(fun () -> close_out oc)
          (fun () -> output_string oc content);
        Printf.eprintf "wrote %s\n%!" path);
    (match slo_out with
    | None -> ()
    | Some path ->
        let doc = Gh_sim.Json.List (List.map Gh_sim.Slo.to_json slos) in
        let oc = open_out path in
        Fun.protect
          ~finally:(fun () -> close_out oc)
          (fun () -> output_string oc (Gh_sim.Json.to_string doc));
        Printf.eprintf "wrote %s\n%!" path);
    if gc_stats then print_gc_stats ();
    match List.find_opt Result.is_error results with
    | Some (Error msg) -> `Error (false, msg)
    | _ -> `Ok ()
  in
  let doc = "Regenerate one or more of the paper's tables/figures." in
  Cmd.v (Cmd.info "run" ~doc)
    Term.(
      ret
        (const run $ profile_arg $ seed_arg $ jobs_arg $ gc_stats_arg $ output_arg
       $ trace_out_arg $ metrics_out_arg $ series_out_arg $ slo_out_arg
       $ experiments_arg))

(* -- list -- *)

let list_cmd =
  let run () =
    print_endline "Paper tables/figures ('all'):";
    List.iter
      (fun id ->
        Printf.printf "  %-20s %s\n"
          (Gh_harness.Experiments.to_string id)
          (Gh_harness.Experiments.describe id))
      Gh_harness.Experiments.all;
    print_endline "Ablations and extensions ('extras'):";
    List.iter
      (fun id ->
        Printf.printf "  %-20s %s\n"
          (Gh_harness.Experiments.to_string id)
          (Gh_harness.Experiments.describe id))
      Gh_harness.Experiments.extras
  in
  let doc = "List the available experiments." in
  Cmd.v (Cmd.info "list" ~doc) Term.(const run $ const ())

(* -- catalog -- *)

let catalog_cmd =
  let run () =
    let open Gh_workloads in
    Printf.printf "%-18s %-14s %12s %10s %10s %8s\n" "benchmark" "suite" "base inv ms"
      "pages K" "restored K" "wasm";
    List.iter
      (fun (e : Catalog.entry) ->
        let r = e.Catalog.reference in
        Printf.printf "%-18s %-14s %12.1f %10.2f %10.2f %8s\n" e.Catalog.display
          (Catalog.suite_to_string e.Catalog.suite)
          r.Paper_ref.base_invoker_ms r.Paper_ref.pages_k r.Paper_ref.restored_k
          (if r.Paper_ref.faasm_invoker_ms <> None then "yes" else "no"))
      Catalog.all
  in
  let doc = "List the 58-benchmark catalog with its paper-reference parameters." in
  Cmd.v (Cmd.info "catalog" ~doc) Term.(const run $ const ())

(* -- invoke: run one benchmark under one strategy -- *)

let invoke_cmd =
  let bench_arg =
    Arg.(required & pos 0 (some string) None & info [] ~docv:"BENCHMARK" ~doc:"Benchmark name, e.g. 'json (n)' or json.")
  in
  let strat_arg =
    Arg.(value & opt string "gh" & info [ "strategy"; "s" ] ~doc:"Isolation strategy: base, gh, gh-nop, fork, faasm, coldstart, criu.")
  in
  let n_arg = Arg.(value & opt int 20 & info [ "n" ] ~doc:"Number of requests.") in
  let run profile seed bench strat n =
    let cfg = with_seed profile seed in
    match Gh_workloads.Catalog.find bench with
    | None -> `Error (false, Printf.sprintf "benchmark %S not in catalog (see gh-bench catalog)" bench)
    | Some entry -> begin
        match Gh_isolation.Registry.of_string strat with
        | Error msg -> `Error (false, msg)
        | Ok id -> begin
            let cfg = { cfg with Gh_harness.Config.latency_requests = n; latency_requests_medium = n; latency_requests_long = n } in
            match Gh_harness.Latency_exp.run_one cfg id entry with
            | None -> `Error (false, Printf.sprintf "strategy %s does not support %s" strat bench)
            | Some m ->
                let open Gh_sim in
                Format.printf "%s under %s (%d requests)@." entry.Gh_workloads.Catalog.display
                  strat n;
                Format.printf "  invoker latency: %a (ms)@." Stats.pp_summary
                  m.Gh_harness.Latency_exp.invoker;
                Format.printf "  e2e latency:     %a (ms)@." Stats.pp_summary
                  m.Gh_harness.Latency_exp.e2e;
                `Ok ()
          end
      end
  in
  let doc = "Measure one benchmark under one isolation strategy." in
  Cmd.v (Cmd.info "invoke" ~doc)
    Term.(ret (const run $ profile_arg $ seed_arg $ bench_arg $ strat_arg $ n_arg))

(* -- trace: a container timeline for one benchmark -- *)

let trace_cmd =
  let bench_arg =
    Arg.(required & pos 0 (some string) None & info [] ~docv:"BENCHMARK" ~doc:"Benchmark name.")
  in
  let n_arg = Arg.(value & opt int 6 & info [ "n" ] ~doc:"Requests to trace.") in
  let strat_arg =
    Arg.(
      value & opt string "gh"
      & info [ "strategy"; "s" ] ~doc:"Isolation strategy: base, gh, gh-nop, fork, faasm, coldstart, criu.")
  in
  let run seed bench n strat trace_out metrics_out =
    match (Gh_workloads.Catalog.find bench, Gh_isolation.Registry.of_string strat) with
    | None, _ -> `Error (false, Printf.sprintf "benchmark %S not in catalog" bench)
    | _, Error msg -> `Error (false, msg)
    | Some entry, Ok strategy -> (
        let spec = entry.Gh_workloads.Catalog.spec in
        if not (Gh_isolation.Registry.supports strategy spec) then
          `Error (false, Printf.sprintf "strategy %s does not support %s" strat bench)
        else begin
          let trace = Gh_sim.Trace.create () in
          let spans = Gh_sim.Span.create () in
          let root = Gh_sim.Rng.create seed in
          let make_strategy salt i =
            match
              Gh_isolation.Registry.make strategy
                ~rng:(Gh_sim.Rng.named_split root (salt ^ string_of_int i))
                spec
            with
            | Ok s -> s
            | Error msg -> failwith msg
          in
          let deployment =
            Gh_faas.Openwhisk.deploy ~trace ~spans
              { Gh_faas.Openwhisk.default_config with Gh_faas.Openwhisk.n_cores = 1; seed }
              ~make_strategy:(make_strategy "platform")
          in
          let principals =
            [|
              Gh_faas.Principal.make ~id:1 ~name:"alice";
              Gh_faas.Principal.make ~id:2 ~name:"bob";
            |]
          in
          ignore
            (Gh_faas.Client.closed_loop deployment.Gh_faas.Openwhisk.engine
               deployment.Gh_faas.Openwhisk.controller ~n_requests:n
               ~think_ns:(Gh_sim.Time_ns.of_ms 20.0) ~principals
               ~input_kb:spec.Gh_faas.Function_model.input_kb);
          Format.printf "Container timeline for %s under %s (%d requests):@."
            entry.Gh_workloads.Catalog.display strat n;
          Gh_sim.Trace.render Format.std_formatter trace;
          (* A second run of the same workload through the multi-tenant node
             populates the metrics registry (per-function counters, latency
             histogram, node gauges) for the metrics snapshot. *)
          let node_engine = Gh_sim.Engine.create () in
          let node =
            (* Restore verification and idle-time scrubbing are on so the
               snapshot-integrity counters land in the metrics snapshot. *)
            Gh_faas.Node.create node_engine
              {
                Gh_faas.Node.default_config with
                Gh_faas.Node.total_cores = 1;
                scrub = Some Gh_faas.Container.default_scrub;
              }
              ~make_strategy:(fun _name sp ->
                match
                  Gh_isolation.Registry.make strategy
                    ~verify:Groundhog_core.Manager.Verify_full
                    ~rng:(Gh_sim.Rng.named_split root "node")
                    sp
                with
                | Ok s -> s
                | Error msg -> failwith msg)
          in
          Gh_faas.Node.register node ~name:spec.Gh_faas.Function_model.name spec;
          for i = 1 to n do
            Gh_sim.Engine.at node_engine
              ~time:((i - 1) * Gh_sim.Time_ns.of_ms 30.0)
              (fun () ->
                Gh_faas.Node.submit node ~name:spec.Gh_faas.Function_model.name
                  (Gh_faas.Request.make ~id:i
                     ~principal:principals.((i - 1) mod Array.length principals)
                     ~input_kb:spec.Gh_faas.Function_model.input_kb ()))
          done;
          Gh_sim.Engine.run_all node_engine;
          (match Gh_sim.Span.check spans with
          | Ok () -> ()
          | Error msg -> Format.printf "@.SPAN INVARIANT VIOLATION: %s@." msg);
          Format.printf "@.%a@." Gh_sim.Critical_path.pp
            (Gh_sim.Critical_path.analyze spans);
          export_observability ?trace_out ?metrics_out spans
            (Gh_faas.Node.metrics node);
          `Ok ()
        end)
  in
  let doc =
    "Trace one benchmark: print the container timeline and the critical-path report; \
     optionally export request spans as Chrome trace-event JSON (--trace-out, \
     Perfetto-loadable) and a metrics snapshot (--metrics-out)."
  in
  Cmd.v (Cmd.info "trace" ~doc)
    Term.(
      ret
        (const run $ seed_arg $ bench_arg $ n_arg $ strat_arg $ trace_out_arg
       $ metrics_out_arg))

(* -- trace-validate: schema-check an exported Chrome trace -- *)

let trace_validate_cmd =
  let file_arg =
    Arg.(required & pos 0 (some string) None & info [] ~docv:"FILE" ~doc:"Trace JSON to validate.")
  in
  let run file =
    match In_channel.with_open_text file In_channel.input_all with
    | exception Sys_error msg -> `Error (false, msg)
    | content -> (
        match Gh_sim.Json.of_string content with
        | Error msg -> `Error (false, Printf.sprintf "%s: invalid JSON: %s" file msg)
        | Ok json -> (
            match Gh_sim.Span.validate_chrome json with
            | Error msg -> `Error (false, Printf.sprintf "%s: bad trace: %s" file msg)
            | Ok n ->
                Printf.printf "%s: valid Chrome trace, %d events\n" file n;
                `Ok ()))
  in
  let doc = "Validate an exported trace file against the Chrome trace-event schema." in
  Cmd.v (Cmd.info "trace-validate" ~doc) Term.(ret (const run $ file_arg))

(* -- compare: all strategies side by side on one benchmark -- *)

let compare_cmd =
  let bench_arg =
    Arg.(required & pos 0 (some string) None & info [] ~docv:"BENCHMARK" ~doc:"Benchmark name.")
  in
  let n_arg = Arg.(value & opt int 20 & info [ "n" ] ~doc:"Requests per strategy.") in
  let run profile seed bench n =
    let cfg = with_seed profile seed in
    match Gh_workloads.Catalog.find bench with
    | None -> `Error (false, Printf.sprintf "benchmark %S not in catalog" bench)
    | Some entry ->
        let cfg =
          {
            cfg with
            Gh_harness.Config.latency_requests = n;
            latency_requests_medium = n;
            latency_requests_long = max 3 (n / 4);
          }
        in
        Format.printf "%s — all isolation strategies (%d requests each)@."
          entry.Gh_workloads.Catalog.display n;
        Format.printf "%-10s %14s %14s %14s@." "strategy" "invoker ms" "e2e ms" "deferred ms";
        List.iter
          (fun id ->
            match Gh_harness.Latency_exp.run_one cfg id entry with
            | None -> Format.printf "%-10s %14s@." (Gh_isolation.Registry.to_string id) "unsupported"
            | Some m ->
                (* Mean deferred (off-path) work per request. *)
                let deferred =
                  match
                    Gh_isolation.Registry.make id
                      ~rng:(Gh_sim.Rng.create (seed + 1))
                      entry.Gh_workloads.Catalog.spec
                  with
                  | Error _ -> Float.nan
                  | Ok strat ->
                      let total = ref 0 in
                      for i = 1 to 5 do
                        let req =
                          Gh_faas.Request.make ~id:i
                            ~principal:(Gh_faas.Principal.make ~id:1 ~name:"a")
                            ()
                        in
                        total := !total + (strat.Gh_faas.Strategy_intf.invoke req).Gh_faas.Strategy_intf.post_ns
                      done;
                      Gh_sim.Time_ns.to_ms (!total / 5)
                in
                Format.printf "%-10s %14.2f %14.1f %14.2f@."
                  (Gh_isolation.Registry.to_string id)
                  m.Gh_harness.Latency_exp.invoker.Gh_sim.Stats.mean
                  m.Gh_harness.Latency_exp.e2e.Gh_sim.Stats.mean deferred)
          Gh_isolation.Registry.all;
        `Ok ()
  in
  let doc = "Compare every isolation strategy on one benchmark." in
  Cmd.v (Cmd.info "compare" ~doc)
    Term.(ret (const run $ profile_arg $ seed_arg $ bench_arg $ n_arg))

(* -- security-check: who leaks? -- *)

let security_cmd =
  let n_arg = Arg.(value & opt int 8 & info [ "n" ] ~doc:"Alternating requests per strategy.") in
  let run seed n =
    let alice = Gh_faas.Principal.make ~id:1 ~name:"alice" in
    let bob = Gh_faas.Principal.make ~id:2 ~name:"bob" in
    (* A buggy, residue-exfiltrating variant of a small catalog function. *)
    let base_spec =
      match Gh_workloads.Catalog.find "deltablue (p)" with
      | Some e -> e.Gh_workloads.Catalog.spec
      | None -> Gh_faas.Function_model.default_spec
    in
    let spec =
      {
        base_spec with
        Gh_faas.Function_model.buggy_residue_leak = true;
        read_pages = base_spec.Gh_faas.Function_model.mapped_pages;
      }
    in
    Format.printf
      "Buggy %s: does a residue-copying bug leak one caller's data to the next?@."
      spec.Gh_faas.Function_model.name;
    Format.printf "%-10s %-10s %s@." "strategy" "verdict" "foreign words observed";
    List.iter
      (fun id ->
        match Gh_isolation.Registry.make id ~rng:(Gh_sim.Rng.create seed) spec with
        | Error msg -> Format.printf "%-10s %-10s (%s)@." (Gh_isolation.Registry.to_string id) "n/a" msg
        | Ok strat ->
            let leaked = ref 0 in
            for i = 1 to n do
              let principal = if i mod 2 = 1 then alice else bob in
              let inv =
                strat.Gh_faas.Strategy_intf.invoke (Gh_faas.Request.make ~id:i ~principal ())
              in
              leaked :=
                !leaked
                + List.length
                    (List.filter
                       (fun w -> not (Gh_faas.Principal.owns_word principal w))
                       inv.Gh_faas.Strategy_intf.response.Gh_faas.Function_model.residue)
            done;
            Format.printf "%-10s %-10s %d@."
              (Gh_isolation.Registry.to_string id)
              (if !leaked > 0 then "LEAKS" else "isolated")
              !leaked)
      Gh_isolation.Registry.all;
    `Ok ()
  in
  let doc = "Demonstrate which isolation strategies stop a residue-leaking bug." in
  Cmd.v (Cmd.info "security-check" ~doc) Term.(ret (const run $ seed_arg $ n_arg))

(* -- fault: the fail-closed recovery pipeline under seeded faults -- *)

let fault_cmd =
  let bench_arg =
    Arg.(
      value & opt string "deltablue (p)"
      & info [ "benchmark"; "b" ] ~docv:"BENCHMARK" ~doc:"Benchmark to inject faults into.")
  in
  let smoke_arg =
    Arg.(value & flag & info [ "smoke" ] ~doc:"Tiny CI run: one nonzero rate, few requests.")
  in
  let n_arg =
    Arg.(value & opt int 120 & info [ "n" ] ~doc:"Requests per (strategy, rate) cell.")
  in
  let run profile seed bench smoke n =
    let cfg = with_seed profile seed in
    match Gh_workloads.Catalog.find bench with
    | None -> `Error (false, Printf.sprintf "benchmark %S not in catalog" bench)
    | Some entry ->
        let rates = if smoke then [ 0.0; 1e-3 ] else Gh_harness.Fault_exp.default_rates in
        let requests = if smoke then 30 else n in
        let points = Gh_harness.Fault_exp.run cfg ~rates ~requests entry in
        Gh_harness.Fault_exp.print Format.std_formatter entry points;
        let unsafe = Gh_harness.Fault_exp.total_unsafe points in
        if unsafe > 0 then
          `Error
            ( false,
              Printf.sprintf
                "FAIL-CLOSED VIOLATION: %d request(s) served by a non-clean process" unsafe )
        else `Ok ()
  in
  let doc =
    "Sweep seeded fault rates through the fail-closed recovery pipeline; exits nonzero if \
     any request was served by a non-clean process."
  in
  Cmd.v (Cmd.info "fault" ~doc)
    Term.(ret (const run $ profile_arg $ seed_arg $ bench_arg $ smoke_arg $ n_arg))

(* -- overload: deadlines + bounded admission + brownout vs a raw queue -- *)

let overload_cmd =
  let bench_arg =
    Arg.(
      value & opt string "deltablue (p)"
      & info [ "benchmark"; "b" ] ~docv:"BENCHMARK" ~doc:"Benchmark to overload.")
  in
  let smoke_arg =
    Arg.(
      value & flag & info [ "smoke" ] ~doc:"Tiny CI run: two utilization points, few requests.")
  in
  let n_arg =
    Arg.(
      value & opt int 240
      & info [ "n" ] ~doc:"Arrivals per (strategy, protection, utilization) cell.")
  in
  let run profile seed bench smoke n =
    let cfg = with_seed profile seed in
    match Gh_workloads.Catalog.find bench with
    | None -> `Error (false, Printf.sprintf "benchmark %S not in catalog" bench)
    | Some entry ->
        let utils = if smoke then [ 0.8; 1.6 ] else Gh_harness.Overload_exp.default_utils in
        let requests = if smoke then 90 else n in
        let points = Gh_harness.Overload_exp.run cfg ~utils ~requests entry in
        Gh_harness.Overload_exp.print Format.std_formatter entry points;
        let violations = Gh_harness.Overload_exp.violations points in
        if violations > 0 then
          `Error
            ( false,
              Printf.sprintf
                "OVERLOAD CONTRACT VIOLATION: %d breach(es) — non-clean serve, leaked \
                 residue, shed request consuming work, or uncounted late completion"
                violations )
        else `Ok ()
  in
  let doc =
    "Sweep offered load past capacity with overload protection (deadlines, bounded EDF \
     admission, brownout) on and off; exits nonzero if any request was served by a \
     non-clean process, a shed request consumed work, or a late completion went \
     uncounted."
  in
  Cmd.v (Cmd.info "overload" ~doc)
    Term.(ret (const run $ profile_arg $ seed_arg $ bench_arg $ smoke_arg $ n_arg))

(* -- cluster: multi-node fleet under node faults, failover on vs off -- *)

let cluster_cmd =
  let bench_arg =
    Arg.(
      value & opt string "deltablue (p)"
      & info [ "benchmark"; "b" ] ~docv:"BENCHMARK" ~doc:"Benchmark the fleet serves.")
  in
  let smoke_arg =
    Arg.(
      value & flag
      & info [ "smoke" ] ~doc:"Tiny CI run: one placement, rates 0 and 1%/min, few requests.")
  in
  let n_arg =
    Arg.(
      value & opt int 200
      & info [ "n" ] ~doc:"Arrivals per (rate, placement, failover) cell.")
  in
  let run profile seed bench smoke n =
    let cfg = with_seed profile seed in
    match Gh_workloads.Catalog.find bench with
    | None -> `Error (false, Printf.sprintf "benchmark %S not in catalog" bench)
    | Some entry ->
        let open Gh_harness.Cluster_exp in
        let rates = if smoke then [ 0.0; 0.01 ] else default_rates in
        let placements =
          if smoke then [ Gh_faas.Cluster.Least_loaded ] else default_placements
        in
        let requests = if smoke then 150 else n in
        let points = Gh_harness.Cluster_exp.run cfg ~rates ~placements ~requests entry in
        Gh_harness.Cluster_exp.print Format.std_formatter entry points;
        let violations = Gh_harness.Cluster_exp.violations points in
        (* Acceptance on the 1%/min cells (when present): failover on keeps
           availability >= 99% with bounded p99 inflation; failover off
           collapses on the same seeded streams. *)
        let rows = List.concat_map (fun (p : point) -> p.rows) points in
        let find ~rate ~failover =
          List.find_opt
            (fun (r : row) -> r.rate_per_min = rate && r.failover = failover)
            rows
        in
        let acceptance =
          match (find ~rate:0.01 ~failover:true, find ~rate:0.01 ~failover:false) with
          | Some on, Some off ->
              let baseline_p99 =
                match find ~rate:0.0 ~failover:true with
                | Some b when not (Float.is_nan b.p99_ms) -> b.p99_ms
                | _ -> Float.nan
              in
              let msgs = [] in
              let msgs =
                if on.availability < 0.99 then
                  Printf.sprintf "failover-on availability %.2f%% < 99%%"
                    (100.0 *. on.availability)
                  :: msgs
                else msgs
              in
              let msgs =
                if
                  (not (Float.is_nan baseline_p99))
                  && (not (Float.is_nan on.p99_ms))
                  && on.p99_ms > 8.0 *. baseline_p99
                then
                  Printf.sprintf "failover-on p99 %.1f ms > 8x fault-free %.1f ms"
                    on.p99_ms baseline_p99
                  :: msgs
                else msgs
              in
              let msgs =
                if off.availability > 0.90 then
                  Printf.sprintf
                    "failover-off availability %.2f%% did not collapse (> 90%%)"
                    (100.0 *. off.availability)
                  :: msgs
                else msgs
              in
              msgs
          | _ -> []
        in
        if violations > 0 then
          `Error
            ( false,
              Printf.sprintf
                "DELIVERY CONTRACT VIOLATION: %d breach(es) — double-serve, \
                 shed-and-served, unaccounted completion, or dangling attempt"
                violations )
        else if acceptance <> [] then
          `Error (false, "ACCEPTANCE FAILED: " ^ String.concat "; " acceptance)
        else `Ok ()
  in
  let doc =
    "Sweep node-level fault rates through the multi-node fleet with failover (health \
     checks, breakers, restarts, retries, hedging) on and off; exits nonzero on any \
     delivery-contract violation or if failover fails to hold availability."
  in
  Cmd.v (Cmd.info "cluster" ~doc)
    Term.(ret (const run $ profile_arg $ seed_arg $ bench_arg $ smoke_arg $ n_arg))

(* -- slo: burn-rate alerting + flight recorder under faults/overload -- *)

let slo_cmd =
  let bench_arg =
    Arg.(
      value & opt string "deltablue (p)"
      & info [ "benchmark"; "b" ] ~docv:"BENCHMARK" ~doc:"Benchmark the fleet serves.")
  in
  let smoke_arg =
    Arg.(
      value & flag
      & info [ "smoke" ]
          ~doc:"Tiny CI run: one nonzero fault rate, both load points, few requests.")
  in
  let n_arg =
    Arg.(
      value & opt int 160
      & info [ "n" ] ~doc:"Arrivals per (fault rate, load, failover) cell.")
  in
  let run profile seed bench smoke n =
    let cfg = with_seed profile seed in
    match Gh_workloads.Catalog.find bench with
    | None -> `Error (false, Printf.sprintf "benchmark %S not in catalog" bench)
    | Some entry ->
        let open Gh_harness.Slo_exp in
        let fault_rates = if smoke then [ 0.2 ] else default_fault_rates in
        let load_factors = default_load_factors in
        let requests = if smoke then 120 else n in
        let points =
          Gh_harness.Slo_exp.run cfg ~fault_rates ~load_factors ~requests entry
        in
        Gh_harness.Slo_exp.print Format.std_formatter entry points;
        let violations = Gh_harness.Slo_exp.violations points in
        if violations > 0 then
          `Error
            ( false,
              Printf.sprintf
                "OBSERVABILITY CONTRACT VIOLATION: %d breach(es) — objective left \
                 without a prior alert, invalid or window-short flight-recorder dump, \
                 or unclosed span tree"
                violations )
        else `Ok ()
  in
  let doc =
    "Sweep injected fault and offered-load rates through the fleet with the full \
     observability stack (windowed series, burn-rate SLO alerts, failure flight \
     recorder); exits nonzero if any availability/latency breach arrives without a \
     prior alert on the failover arm, or any flight-recorder dump fails validation."
  in
  Cmd.v (Cmd.info "slo" ~doc)
    Term.(ret (const run $ profile_arg $ seed_arg $ bench_arg $ smoke_arg $ n_arg))

(* -- scrub: snapshot integrity under seeded corruption -- *)

let scrub_cmd =
  let bench_arg =
    Arg.(
      value & opt string "deltablue (p)"
      & info [ "benchmark"; "b" ] ~docv:"BENCHMARK" ~doc:"Benchmark to corrupt.")
  in
  let smoke_arg =
    Arg.(
      value & flag
      & info [ "smoke" ]
          ~doc:"Tiny CI run: policies off and full, rates 0 and 5%, few requests.")
  in
  let n_arg =
    Arg.(
      value & opt int 60 & info [ "n" ] ~doc:"Requests per (strategy, rate, policy) cell.")
  in
  let run profile seed bench smoke n =
    let cfg = with_seed profile seed in
    match Gh_workloads.Catalog.find bench with
    | None -> `Error (false, Printf.sprintf "benchmark %S not in catalog" bench)
    | Some entry ->
        let open Gh_harness.Scrub_exp in
        let rates = if smoke then [ 0.0; 0.05 ] else default_rates in
        let policies = if smoke then [ Off; Full ] else default_policies in
        let requests = if smoke then 30 else n in
        let points = Gh_harness.Scrub_exp.run cfg ~rates ~policies ~requests entry in
        Gh_harness.Scrub_exp.print Format.std_formatter entry points;
        let corrupt = protected_corrupted_serves points in
        let window = unprotected_corrupted_serves points in
        let max_rate = List.fold_left Float.max 0.0 rates in
        if corrupt > 0 then
          `Error
            ( false,
              Printf.sprintf
                "INTEGRITY VIOLATION: %d request(s) served from corrupted state under \
                 full verification"
                corrupt )
        else if List.mem Off policies && max_rate > 0.0 && window = 0 then
          (* The sweep must also prove the hazard is real: with verification
             off and corruption injected, the oracle has to catch at least
             one corrupted serve, or the protected zero above means nothing. *)
          `Error
            ( false,
              "VACUOUS SWEEP: corruption injected but the unverified baseline served \
               nothing corrupt — the zero under full verification proves nothing" )
        else `Ok ()
  in
  let doc =
    "Sweep seeded snapshot-corruption rates against the verification policies (off, \
     scrub-only, sampled, full); exits nonzero if any request is served from corrupted \
     state under full verification, or if the unverified baseline fails to demonstrate \
     the hazard."
  in
  Cmd.v (Cmd.info "scrub" ~doc)
    Term.(ret (const run $ profile_arg $ seed_arg $ bench_arg $ smoke_arg $ n_arg))

let main =
  let doc = "Groundhog reproduction: regenerate the paper's evaluation." in
  Cmd.group (Cmd.info "gh-bench" ~version:"1.0.0" ~doc)
    [
      run_cmd;
      list_cmd;
      catalog_cmd;
      invoke_cmd;
      compare_cmd;
      security_cmd;
      trace_cmd;
      trace_validate_cmd;
      fault_cmd;
      overload_cmd;
      cluster_cmd;
      slo_cmd;
      scrub_cmd;
    ]

let () = exit (Cmd.eval main)
