(* Quickstart: the Groundhog core API on a bare simulated process.

   Builds a function process, takes the clean snapshot, runs a "request"
   that scribbles over memory, grows the heap, maps a scratch region and
   clobbers the registers — then restores and verifies the process is
   bit-for-bit back at the snapshot.

   Run with: dune exec examples/quickstart.exe *)

module As = Gh_mem.Address_space
module Vma = Gh_mem.Vma
module Prot = Gh_mem.Prot
module Process = Gh_proc.Process
module Registers = Gh_proc.Registers
module Account = Gh_sim.Account
module Time_ns = Gh_sim.Time_ns
open Groundhog_core

let () =
  (* A process with the default cost model: text, data, heap, stack. *)
  let cost = Gh_kernel.Cost.default in
  let mem = As.create ~heap_pages:4096 ~cost () in
  let proc = Process.create ~mem ~n_threads:2 () in

  (* "Initialize the runtime": touch some heap (global state). *)
  let init = Account.create () in
  As.dirty_range mem init (As.heap mem) ~pos:0 ~len:512 ~value:0xC0FFEE;
  Format.printf "initialized: %d pages present, init work %a@."
    (As.present_pages mem) Time_ns.pp (Account.total init);

  (* The manager snapshots the warm, secret-free state (§4.2). *)
  let mgr = Manager.create ~paranoid:true proc in
  let snapshot_ns = Manager.take_snapshot_exn mgr in
  Format.printf "snapshot taken in %a (%d pages copied)@." Time_ns.pp snapshot_ns
    (match Manager.snapshot mgr with
    | Some s -> s.Snapshot.present_pages
    | None -> 0);

  (* A request arrives: the function scribbles secrets everywhere. *)
  let req = Account.create () in
  let secret = 0x5EC7E7 in
  As.dirty_range mem req (As.heap mem) ~pos:100 ~len:200 ~value:secret;
  let scratch = Process.sys_mmap proc req ~n_pages:64 ~prot:Prot.rw Vma.Anon in
  As.dirty_range mem req scratch ~pos:0 ~len:64 ~value:secret;
  Process.sys_brk proc req (As.brk mem + (32 * Vma.page_size));
  let rng = Gh_sim.Rng.create 7 in
  List.iter (fun th -> Registers.scramble th.Gh_proc.Thread.regs rng) proc.Process.threads;
  Manager.mark_dirty mgr;
  Format.printf "request executed: %d pages dirty, %d regions, on-path work %a@."
    (As.dirty_pages mem) (As.vma_count mem) Time_ns.pp (Account.total req);

  (* Between requests, Groundhog restores — off the critical path (§4.4). *)
  let breakdown = Manager.restore_exn mgr in
  Format.printf "@.%a@." Breakdown.pp breakdown;

  (* Paranoid mode already verified it, but show the check explicitly. *)
  (match Manager.snapshot mgr with
  | Some snap -> begin
      match Verify.state_matches snap proc with
      | Ok () -> Format.printf "verified: process is bit-for-bit at the snapshot@."
      | Error m -> Format.printf "MISMATCH: %a@." Verify.pp_mismatch m
    end
  | None -> ());
  Format.printf "heap word at 100 is %#x again (was %#x during the request)@."
    (As.peek (As.heap mem) 100) secret;
  Format.printf "container is clean: %b — ready for the next caller@."
    (Manager.is_clean mgr)
