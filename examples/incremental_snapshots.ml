(* The §5.5 optimization, demonstrated: eager snapshots copy the whole
   paged-in footprint into the manager; incremental (CoW-salvage) snapshots
   start empty and save each page's original contents the first time it is
   ever modified — so manager memory tracks the working set, capture is
   near-instant, and the price is a one-time CoW fault per unique page.

   Run with: dune exec examples/incremental_snapshots.exe *)

module Fm = Gh_faas.Function_model
module Manager = Groundhog_core.Manager
module Account = Gh_sim.Account
module Time_ns = Gh_sim.Time_ns
module Rng = Gh_sim.Rng

let spec =
  (* A Node.js-sized function: big footprint, modest per-request dirty set. *)
  match Gh_workloads.Catalog.find "json (n)" with
  | Some e -> e.Gh_workloads.Catalog.spec
  | None -> failwith "catalog"

let alice = Gh_faas.Principal.make ~id:1 ~name:"alice"
let bob = Gh_faas.Principal.make ~id:2 ~name:"bob"

let mb pages = float_of_int pages *. 4096.0 /. 1048576.0

let build_and_warm rng_seed =
  let inst = Fm.build spec in
  let rng = Rng.create rng_seed in
  ignore (Fm.warmup inst (Account.create ()) rng);
  Fm.mark_clean inst;
  (inst, rng)

let serve inst rng mgr n =
  let on_path = ref 0 in
  for i = 1 to n do
    let acct = Account.create () in
    let principal = if i land 1 = 1 then alice else bob in
    ignore
      (Fm.invoke inst acct rng ~post_restore:(i > 1)
         (Gh_faas.Request.make ~id:i ~principal ~input_kb:spec.Fm.input_kb ()));
    Manager.mark_dirty mgr;
    ignore (Manager.restore_exn mgr);
    on_path := !on_path + Account.total acct
  done;
  Time_ns.to_ms (!on_path / n)

let () =
  Format.printf "Function: %s — %d mapped pages (%.0f MB), ~%d dirtied per request@.@."
    spec.Fm.name spec.Fm.mapped_pages (mb spec.Fm.mapped_pages) spec.Fm.dirtied_pages;

  (* Eager (the paper's evaluated configuration). *)
  let inst, rng = build_and_warm 1 in
  let mgr = Manager.create (Fm.proc inst) in
  let capture_ns = Manager.take_snapshot_exn mgr in
  let mean_on_path = serve inst rng mgr 10 in
  Format.printf "EAGER:       capture %8.2f ms   manager buffer %7.1f MB   mean on-path %6.2f ms@."
    (Time_ns.to_ms capture_ns)
    (mb (Manager.buffer_pages mgr))
    mean_on_path;

  (* Incremental (§5.5's proposed optimization). *)
  let inst, rng = build_and_warm 1 in
  let mgr = Manager.create ~mode:Manager.Incremental (Fm.proc inst) in
  let capture_ns = Manager.take_snapshot_exn mgr in
  let first_req =
    let acct = Account.create () in
    ignore
      (Fm.invoke inst acct rng ~post_restore:false
         (Gh_faas.Request.make ~id:1 ~principal:alice ~input_kb:spec.Fm.input_kb ()));
    Manager.mark_dirty mgr;
    ignore (Manager.restore_exn mgr);
    Time_ns.to_ms (Account.total acct)
  in
  let mean_on_path = serve inst rng mgr 9 in
  Format.printf
    "INCREMENTAL: capture %8.2f ms   manager buffer %7.1f MB   mean on-path %6.2f ms@."
    (Time_ns.to_ms capture_ns)
    (mb (Manager.buffer_pages mgr))
    mean_on_path;
  Format.printf
    "             (first request paid the salvage CoW faults: %.2f ms on-path)@.@."
    first_req;
  Format.printf
    "Same isolation guarantee, ~%.0fx less manager memory, near-zero capture —@.\
     at the cost of one CoW fault per unique modified page, once per container.@."
    (mb spec.Fm.mapped_pages /. Float.max 0.1 (mb (Manager.buffer_pages mgr)))
