(* Regenerate the golden Chrome-trace file used by test_observability:

     dune exec examples/gen_golden.exe > test/golden_trace.json

   The scenario must stay in lockstep with [golden_spans] in
   test/test_observability.ml: one request with a controller hand-off, an
   exec span with an I/O child, and a deferred (off-path) restore whose
   stop lies past the client response — exercising the watermark rule,
   attrs, parent links and the metadata rows in one small document. *)

module Span = Gh_sim.Span

let () =
  let t = Span.create () in
  let root = Span.ensure_root t ~at:0 ~req_id:1 ~attrs:[ ("principal", "alice") ] () in
  ignore
    (Span.complete t ~start:0 ~stop:1_000_000 ~parent:root ~name:"controller-front"
       ~cat:"controller" ());
  let exec =
    Span.complete t ~start:1_000_000 ~stop:5_000_000 ~parent:root ~name:"exec"
      ~cat:"container"
      ~attrs:[ ("container", "0"); ("outcome", "completed") ]
      ()
  in
  ignore
    (Span.complete t ~start:4_000_000 ~stop:5_000_000 ~parent:exec ~name:"actionloop-io"
       ~cat:"io" ());
  let restore =
    Span.complete t ~start:5_000_000 ~stop:7_000_000 ~parent:root ~name:"gh-restore"
      ~cat:"restore" ~attrs:[ ("offpath", "true") ] ()
  in
  ignore
    (Span.complete t ~start:5_000_000 ~stop:7_000_000 ~parent:restore ~name:"copy"
       ~cat:"restore-step" ());
  Span.finish_root t ~at:5_500_000 ~attrs:[ ("e2e_ns", "5500000") ] ~req_id:1 ();
  print_endline (Span.chrome_json t)
