(* Explore the §5.2 microbenchmark interactively: a custom sweep over
   dirtied pages at a fixed address-space size, printing the in-function
   (low-load) and with-restoration (high-load) latency per isolation
   method — plus the Uffd-tracking and no-coalescing cost-model ablations
   for the Groundhog configuration.

   Run with: dune exec examples/microbench_explore.exe *)

module Microbench = Gh_workloads.Microbench
module Registry = Gh_isolation.Registry
module Intf = Gh_faas.Strategy_intf
module Fm = Gh_faas.Function_model
module Time_ns = Gh_sim.Time_ns
module Rng = Gh_sim.Rng
module Account = Gh_sim.Account

let mapped = 20_000
let requests = 25

let principals =
  [| Gh_faas.Principal.make ~id:1 ~name:"a"; Gh_faas.Principal.make ~id:2 ~name:"b" |]

let measure strat =
  let low = ref 0.0 and high = ref 0.0 in
  for i = -2 to requests - 1 do
    let req =
      Gh_faas.Request.make ~id:(i + 3) ~principal:principals.((i + 2) mod 2) ~input_kb:1 ()
    in
    let inv = strat.Intf.invoke req in
    if i >= 0 then begin
      low := !low +. Time_ns.to_ms inv.Intf.on_path_ns;
      high := !high +. Time_ns.to_ms (inv.Intf.on_path_ns + inv.Intf.post_ns)
    end
  done;
  (!low /. float_of_int requests, !high /. float_of_int requests)

(* Groundhog with a variant cost model (ablations). *)
let gh_with_cost cost spec =
  let inst = Fm.build ~cost spec in
  let rng = Rng.create 99 in
  let init = Account.create () in
  ignore (Fm.warmup inst init rng);
  Fm.mark_clean inst;
  let mgr = Groundhog_core.Manager.create (Fm.proc inst) in
  ignore (Groundhog_core.Manager.take_snapshot_exn mgr);
  let restored = ref false in
  {
    Intf.name = "gh-ablation";
    init_ns = 0;
    invoke =
      (fun req ->
        let acct = Account.create () in
        let response = Fm.invoke inst acct rng ~post_restore:!restored req in
        Groundhog_core.Manager.mark_dirty mgr;
        let b = Groundhog_core.Manager.restore_exn mgr in
        restored := true;
        Intf.invocation ~on_path_ns:(Account.total acct)
          ~post_ns:b.Groundhog_core.Breakdown.total_ns ~breakdown:b ~isolated:true
          ~restore_label:"gh-restore" ~outcome:(Intf.outcome_of_response response)
          response);
    snapshot_pages = (fun () -> 0);
    describe = (fun () -> "gh with a variant cost model");
    status = Intf.no_status;
    kill = Intf.no_kill;
    degrade = Intf.no_degrade;
    scrub = Intf.no_scrub;
    audit = Intf.no_audit;
  }

let () =
  Format.printf
    "Microbenchmark sweep: %d mapped pages, varying dirtied pages (means over %d requests)@."
    mapped requests;
  Format.printf "%8s | %18s | %18s | %18s | %18s@." "dirtied" "BASE low/high"
    "GH low/high" "FORK low/high" "GH-uffd low/high";
  List.iter
    (fun dirtied ->
      let spec = Microbench.spec ~mapped_pages:mapped ~dirtied_pages:dirtied in
      let cell strategy =
        match Registry.make strategy ~rng:(Rng.create 5) spec with
        | Ok strat ->
            let low, high = measure strat in
            Printf.sprintf "%7.2f / %7.2f" low high
        | Error _ -> "      -       -"
      in
      let uffd =
        let low, high = measure (gh_with_cost Gh_kernel.Cost.uffd_tracking spec) in
        Printf.sprintf "%7.2f / %7.2f" low high
      in
      Format.printf "%8d | %18s | %18s | %18s | %18s@." dirtied (cell Registry.Base)
        (cell Registry.Gh) (cell Registry.Fork) uffd)
    [ 0; 500; 2_000; 8_000; 16_000; 20_000 ];
  Format.printf
    "@.Uffd tracking (§4.3 ablation): cheap restores only near zero dirtied pages —@.\
     the per-write user-space round trips dominate everywhere else, which is why@.\
     the paper chose soft-dirty bits.@.";

  (* No-coalescing ablation: restoration cost at high density. *)
  let spec = Microbench.spec ~mapped_pages:mapped ~dirtied_pages:16_000 in
  let _, high_coalesced = measure (gh_with_cost Gh_kernel.Cost.default spec) in
  let _, high_split = measure (gh_with_cost Gh_kernel.Cost.no_coalescing spec) in
  Format.printf
    "@.Coalescing ablation at 80%% density: with %7.2f ms vs without %7.2f ms per request@."
    high_coalesced high_split
