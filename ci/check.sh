#!/bin/sh
# Tier-1 CI gate: build everything, run every test suite.
# Usage: sh ci/check.sh
set -eu
cd "$(dirname "$0")/.."
dune build
dune runtest
