#!/bin/sh
# Tier-1 CI gate: build everything, run every test suite, then exercise
# the fault-injection pipeline.
# Usage: sh ci/check.sh
set -eu
cd "$(dirname "$0")/.."
dune build
dune build bench/main.exe
dune runtest

# Fault suite under three fixed seeds: the plan schedules and the whole
# recovery pipeline must replay bit-identically from each.
for seed in 1 42 1337; do
  GH_FAULT_SEED=$seed dune exec test/test_fault.exe >/dev/null
done

# End-to-end smoke sweep. The subcommand exits nonzero if any request was
# served by a non-clean process (the fail-closed gate).
dune exec bin/gh_bench.exe -- fault --smoke --seed 42 >/dev/null

# Cluster fault sweep under three fixed seeds. The subcommand exits
# nonzero on any delivery violation (double-serve, serve-after-fail,
# unaccounted request, conservation breach) or if the failover arm
# misses its availability/latency acceptance gates.
for seed in 1 42 1337; do
  dune exec bin/gh_bench.exe -- cluster --smoke --seed $seed >/dev/null
done

# Snapshot-integrity smoke sweep under three fixed seeds. The subcommand
# exits nonzero if any request is served from corrupted state under full
# verification (fail-closed), or if the unverified baseline fails to
# demonstrate the hazard the verification machinery closes.
for seed in 1 42 1337; do
  dune exec bin/gh_bench.exe -- scrub --smoke --seed $seed >/dev/null
done

# Overload smoke sweep. The subcommand exits nonzero on any overload
# contract breach: a request completing after its deadline without being
# counted a miss, a shed request that consumed restore work, a non-clean
# serve, or cross-principal residue.
dune exec bin/gh_bench.exe -- overload --smoke --seed 42 >/dev/null

# SLO observability smoke under three fixed seeds. The subcommand exits
# nonzero on any observability contract breach on the failover-on arm: a
# gated objective (availability, sustained latency) breached with no
# prior burn-rate alert, a flight-recorder dump that fails schema
# validation or does not cover its pre-failure window, or an unclosed
# span tree.
for seed in 1 42 1337; do
  dune exec bin/gh_bench.exe -- slo --smoke --seed $seed >/dev/null
done

# Engine hot-loop bench: the calendar-queue vs reference-heap group must
# build and run (the differential ordering property itself runs under
# `dune runtest` above), and it records the trajectory in BENCH_engine.json.
dune exec bench/main.exe -- --engine-only >/dev/null
test -s BENCH_engine.json

# Bit-identity gate: the quick-profile evaluation sweep must replay
# byte-for-byte against the committed baseline — the determinism contract
# (time, seq) event order, RNG streams, formatting — all of it. The run
# collects windowed time series and SLO state on the side: observability
# only reads the clock, so stdout must not move by a byte with the
# collectors attached. Regenerate ci/runall_quick.md5 only with an
# intentional, reviewed behavior change.
dune exec bin/gh_bench.exe -- run all --seed 42 --profile quick \
  --series-out /tmp/gh_ci_series.txt --slo /tmp/gh_ci_slo.json \
  > /tmp/gh_ci_runall_quick.txt
md5sum /tmp/gh_ci_runall_quick.txt | awk '{print $1}' \
  | diff - ci/runall_quick.md5
test -s /tmp/gh_ci_series.txt
test -s /tmp/gh_ci_slo.json

# Parallel bit-identity gate: the same sweep fanned across 4 domains must
# be byte-for-byte identical to the serial run (and hence to the committed
# baseline) — cells seed their own RNGs and merge in input order, so any
# difference means shared state leaked into a sweep.
dune exec bin/gh_bench.exe -- run all --seed 42 --profile quick -j 4 \
  > /tmp/gh_ci_runall_quick_j4.txt
diff /tmp/gh_ci_runall_quick.txt /tmp/gh_ci_runall_quick_j4.txt
md5sum /tmp/gh_ci_runall_quick_j4.txt | awk '{print $1}' \
  | diff - ci/runall_quick.md5

# Domain-pool suite once more with an oversubscribed job count: the
# List.map-equivalence properties must hold when workers outnumber cores.
GH_JOBS=8 dune exec test/test_parallel.exe >/dev/null

# Observability smoke: export a trace + metrics snapshot from a fixed-seed
# run, validate the Chrome trace JSON against our own parser/schema check,
# and diff the metrics snapshot against the committed baseline — any
# counting drift (or nondeterminism) in the instrumented stack fails CI.
dune exec bin/gh_bench.exe -- trace "json (n)" --seed 42 \
  --trace-out /tmp/gh_ci_trace.json --metrics-out /tmp/gh_ci_metrics.txt \
  >/dev/null
dune exec bin/gh_bench.exe -- trace-validate /tmp/gh_ci_trace.json >/dev/null
diff -u ci/metrics_baseline.txt /tmp/gh_ci_metrics.txt

# Shared-collector downgrade: asking for -j with a collector attached
# must keep the run serial and say so on stderr, naming the causing flag.
dune exec bin/gh_bench.exe -- run all --seed 42 --profile quick -j 4 \
  --series-out /tmp/gh_ci_series_warn.txt \
  >/dev/null 2>/tmp/gh_ci_downgrade_warn.txt
grep -q -- '--series-out' /tmp/gh_ci_downgrade_warn.txt
grep -q 'ignoring -j 4' /tmp/gh_ci_downgrade_warn.txt

echo "ci/check.sh: OK"
