(* The paper's §1 motivation, end to end: Alice and Bob call the same
   deployed function; the function (or a library it uses) is buggy and
   copies residual memory into its response.

   Under BASE (warm container reuse, no isolation) Bob's response carries
   Alice's secret. Under Groundhog the same buggy function leaks nothing,
   because the process is rolled back between the two activations. The
   demo also shows the platform-services side: per-caller ACLs stop Bob
   from reading Alice's records directly.

   Run with: dune exec examples/leak_demo.exe *)

module Fm = Gh_faas.Function_model
module Intf = Gh_faas.Strategy_intf
module Principal = Gh_faas.Principal
module Request = Gh_faas.Request
module Services = Gh_faas.Services
module Rng = Gh_sim.Rng

let alice = Principal.make ~id:1 ~name:"alice"
let bob = Principal.make ~id:2 ~name:"bob"

(* A sentiment-analysis-style function with a nasty bug: it scans its
   working buffers and includes whatever it finds in the response. *)
let buggy_function =
  {
    Fm.default_spec with
    Fm.name = "sentiment-buggy";
    lang = Gh_faas.Runtime.Python;
    exec_ns = Gh_sim.Time_ns.of_ms 6.5;
    mapped_pages = 16_000;
    dirtied_pages = 570;
    read_pages = 8_000;
    buggy_residue_leak = true;
  }

let serve strategy label =
  Format.printf "@.--- %s ---@." label;
  (* Alice's request carries her secret; Bob calls right after. *)
  let requests =
    [
      Request.make ~id:101 ~principal:alice ();
      Request.make ~id:102 ~principal:bob ();
      Request.make ~id:103 ~principal:alice ();
      Request.make ~id:104 ~principal:bob ();
    ]
  in
  List.iter
    (fun req ->
      let inv = strategy.Intf.invoke req in
      let foreign =
        List.filter
          (fun w -> not (Principal.owns_word req.Request.principal w))
          inv.Intf.response.Fm.residue
      in
      Format.printf "%-6s request #%d -> response"
        req.Request.principal.Principal.name req.Request.id;
      (match foreign with
      | [] -> Format.printf " (no foreign data)"
      | words ->
          Format.printf " LEAKED %d foreign word(s):" (List.length words);
          List.iter
            (fun w ->
              let owner = if Principal.owns_word alice w then "alice" else "other" in
              Format.printf " %#x(owner:%s)" w owner)
            words);
      Format.printf "@.")
    requests

let () =
  Format.printf "One buggy function, two mutually distrusting callers.@.";

  (* Insecure baseline: plain warm-container reuse. *)
  serve (Gh_isolation.Base.make ~rng:(Rng.create 42) buggy_function)
    "BASE: container reuse, no request isolation";

  (* Groundhog: same function, same bug — restored between activations. *)
  serve
    (Gh_isolation.Gh.make ~paranoid:true ~rng:(Rng.create 42) buggy_function)
    "GROUNDHOG: snapshot/restore between activations";

  (* Platform services enforce per-caller access control independently:
     even a correct function cannot move data across callers this way. *)
  Format.printf "@.--- platform services (per-caller credentials) ---@.";
  let kv = Services.create () in
  Services.grant kv alice ~key:"alice/notes";
  (match Services.put kv alice ~key:"alice/notes" 0xA11CE with
  | Ok () -> Format.printf "alice stored her record@."
  | Error e -> Format.printf "unexpected: %a@." Services.pp_error e);
  (match Services.get kv bob ~key:"alice/notes" with
  | Error e -> Format.printf "bob's read rejected: %a@." Services.pp_error e
  | Ok _ -> Format.printf "BUG: bob read alice's record@.");
  Format.printf
    "@.Groundhog closes the remaining channel: function-process memory reused across callers.@."
