examples/capacity_plan.ml: Float Format Gh_faas Gh_isolation Gh_sim Gh_workloads List
