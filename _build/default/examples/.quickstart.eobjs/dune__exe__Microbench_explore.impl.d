examples/microbench_explore.ml: Array Format Gh_faas Gh_isolation Gh_kernel Gh_sim Gh_workloads Groundhog_core List Printf
