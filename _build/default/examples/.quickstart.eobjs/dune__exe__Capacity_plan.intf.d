examples/capacity_plan.mli:
