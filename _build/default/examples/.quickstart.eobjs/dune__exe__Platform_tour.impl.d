examples/platform_tour.ml: Array Float Format Gh_faas Gh_isolation Gh_sim Gh_workloads List
