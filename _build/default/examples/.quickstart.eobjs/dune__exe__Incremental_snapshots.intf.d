examples/incremental_snapshots.mli:
