examples/leak_demo.mli:
