examples/microbench_explore.mli:
