examples/quickstart.ml: Breakdown Format Gh_kernel Gh_mem Gh_proc Gh_sim Groundhog_core List Manager Snapshot Verify
