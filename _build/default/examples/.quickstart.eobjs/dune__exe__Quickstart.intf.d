examples/quickstart.mli:
