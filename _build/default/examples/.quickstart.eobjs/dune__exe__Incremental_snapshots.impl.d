examples/incremental_snapshots.ml: Float Format Gh_faas Gh_sim Gh_workloads Groundhog_core
