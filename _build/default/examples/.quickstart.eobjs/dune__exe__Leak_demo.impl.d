examples/leak_demo.ml: Format Gh_faas Gh_isolation Gh_sim List
