examples/platform_tour.mli:
