(* Capacity planning with synthetic workloads: how many cores does a fleet
   need to hit a target request rate, with and without request isolation?

   Groundhog's restoration consumes container time off each request's
   critical path — invisible in latency at low load, but it is real CPU:
   a saturated fleet needs proportionally more cores. This example draws a
   random-but-plausible fleet of functions, measures each one's per-request
   container occupancy under BASE and GH, and prices the isolation in
   cores.

   Run with: dune exec examples/capacity_plan.exe *)

module Synthetic = Gh_workloads.Synthetic
module Registry = Gh_isolation.Registry
module Intf = Gh_faas.Strategy_intf
module Fm = Gh_faas.Function_model
module Rng = Gh_sim.Rng
module Time_ns = Gh_sim.Time_ns

let fleet_size = 8
let target_rps_per_function = 25.0

let alice = Gh_faas.Principal.make ~id:1 ~name:"alice"
let bob = Gh_faas.Principal.make ~id:2 ~name:"bob"

(* Mean container occupancy (on-path + deferred) per request. *)
let occupancy_ms strategy spec =
  match Registry.make strategy ~rng:(Rng.create 31) spec with
  | Error _ -> Float.nan
  | Ok strat ->
      let n = 10 in
      let total = ref 0 in
      for i = -2 to n - 1 do
        let principal = if i land 1 = 0 then alice else bob in
        let inv =
          strat.Intf.invoke
            (Gh_faas.Request.make ~id:(i + 3) ~principal ~input_kb:spec.Fm.input_kb ())
        in
        if i >= 0 then total := !total + inv.Intf.on_path_ns + inv.Intf.post_ns
      done;
      Time_ns.to_ms (!total / n)

let cores_needed occupancy_ms rps = rps *. occupancy_ms /. 1000.0

let () =
  let rng = Rng.create 2026 in
  let profile =
    {
      Synthetic.default_profile with
      Synthetic.max_exec_ms = 80.0;
      (* The catalog's §3.1 observation: invocations modify a small
         fraction of the mapped address space (mean 8.5 %). *)
      max_dirty_fraction = 0.09;
      allow_pathologies = false;
    }
  in
  let fleet = Synthetic.draw_many ~profile rng fleet_size in
  Format.printf
    "Fleet of %d synthetic functions, each targeting %.0f req/s. Cores = rate x occupancy.@.@."
    fleet_size target_rps_per_function;
  Format.printf "%-18s %-7s %11s %11s %10s %10s@." "function" "lang" "BASE ms/req"
    "GH ms/req" "BASE cores" "GH cores";
  let base_total = ref 0.0 and gh_total = ref 0.0 in
  List.iter
    (fun (spec : Fm.spec) ->
      let base = occupancy_ms Registry.Base spec in
      let gh = occupancy_ms Registry.Gh spec in
      let base_cores = cores_needed base target_rps_per_function in
      let gh_cores = cores_needed gh target_rps_per_function in
      base_total := !base_total +. base_cores;
      gh_total := !gh_total +. gh_cores;
      Format.printf "%-18s %-7s %11.2f %11.2f %10.2f %10.2f@." spec.Fm.name
        (Gh_faas.Runtime.lang_to_string spec.Fm.lang)
        base gh base_cores gh_cores)
    fleet;
  Format.printf "@.fleet total: %.2f cores insecure vs %.2f cores with Groundhog (+%.1f%%)@."
    !base_total !gh_total
    (100.0 *. (!gh_total -. !base_total) /. !base_total);
  Format.printf
    "The premium is the price of sequential request isolation at full utilization;@.\
     at typical (partial) utilization the same fleet absorbs it for free (§4).@."
