(* Tour of the simulated OpenWhisk deployment: a two-VM-style platform with
   a controller, an invoker hosting one Groundhog container per core, and
   closed-loop / saturating clients — the paper's two workloads (§5.1).

   Shows, for one catalog benchmark:
   - low-load latency: restoration hides between requests;
   - saturation throughput: restoration eats container cycles;
   - near-linear scaling from 1 to 4 cores.

   Run with: dune exec examples/platform_tour.exe *)

module Catalog = Gh_workloads.Catalog
module Registry = Gh_isolation.Registry
module Openwhisk = Gh_faas.Openwhisk
module Client = Gh_faas.Client
module Stats = Gh_sim.Stats
module Rng = Gh_sim.Rng

let benchmark = "deltablue (p)"

let principals =
  [|
    Gh_faas.Principal.make ~id:1 ~name:"alice";
    Gh_faas.Principal.make ~id:2 ~name:"bob";
    Gh_faas.Principal.make ~id:3 ~name:"carol";
  |]

let deploy ~strategy ~cores ~seed spec =
  let root = Rng.create seed in
  Openwhisk.deploy
    { Openwhisk.default_config with Openwhisk.n_cores = cores; seed }
    ~make_strategy:(fun i ->
      match Registry.make strategy ~rng:(Rng.named_split root (string_of_int i)) spec with
      | Ok s -> s
      | Error msg -> failwith msg)

let () =
  let entry =
    match Catalog.find benchmark with
    | Some e -> e
    | None -> failwith "benchmark missing from catalog"
  in
  let spec = entry.Catalog.spec in
  Format.printf "Benchmark: %s (%d mapped pages, %d dirtied per request)@." benchmark
    spec.Gh_faas.Function_model.mapped_pages spec.Gh_faas.Function_model.dirtied_pages;

  (* 1. Low load: one request at a time, think time between requests. *)
  Format.printf "@.== low load (closed loop, 1 container) ==@.";
  List.iter
    (fun strategy ->
      let d = deploy ~strategy ~cores:1 ~seed:7 spec in
      let r =
        Client.closed_loop d.Openwhisk.engine d.Openwhisk.controller ~n_requests:60
          ~think_ns:(Gh_sim.Time_ns.of_ms 30.0) ~principals
          ~input_kb:spec.Gh_faas.Function_model.input_kb
      in
      let inv = Stats.summarize r.Client.invoker_ms in
      let e2e = Stats.summarize r.Client.e2e_ms in
      Format.printf "%-7s invoker %6.2f ms (p95 %6.2f)   e2e %6.1f ms (p95 %6.1f)@."
        (Registry.to_string strategy) inv.Stats.mean inv.Stats.p95 e2e.Stats.mean
        e2e.Stats.p95)
    [ Registry.Base; Registry.Gh; Registry.Gh_nop; Registry.Fork ];
  Format.printf "(Groundhog's restoration hides in the gaps: latency ~= in-function overheads)@.";

  (* 2. Saturation: keep a big window in flight, 4 containers on 4 cores. *)
  Format.printf "@.== saturation (4 containers, windowed client) ==@.";
  let gh_saturated = ref None in
  List.iter
    (fun strategy ->
      let d = deploy ~strategy ~cores:4 ~seed:11 spec in
      let r =
        Client.saturate d.Openwhisk.engine d.Openwhisk.controller ~n_requests:400 ~window:192
          ~principals ~input_kb:spec.Gh_faas.Function_model.input_kb
      in
      if strategy = Registry.Gh then gh_saturated := Some r;
      Format.printf "%-7s sustained %7.1f req/s@." (Registry.to_string strategy)
        (Client.throughput_rps r))
    [ Registry.Base; Registry.Gh; Registry.Gh_nop; Registry.Fork ];
  Format.printf "(now restoration costs container cycles: GH < GH_NOP ~= BASE)@.";
  (match !gh_saturated with
  | Some r when Array.length r.Client.e2e_ms > 0 ->
      Format.printf "@.GH end-to-end latency distribution under saturation (ms):@.";
      let h = Gh_sim.Histogram.create ~min_value:1.0 ~max_value:100_000.0 () in
      Gh_sim.Histogram.add_all h r.Client.e2e_ms;
      Gh_sim.Histogram.render ~width:36 Format.std_formatter h
  | _ -> ());

  (* 3. Scaling: each core hosts an independent container + manager. *)
  Format.printf "@.== GH throughput scaling with cores ==@.";
  let t1 = ref 0.0 in
  List.iter
    (fun cores ->
      let d = deploy ~strategy:Registry.Gh ~cores ~seed:13 spec in
      let r =
        Client.saturate d.Openwhisk.engine d.Openwhisk.controller ~n_requests:(150 * cores)
          ~window:(48 * cores) ~principals ~input_kb:spec.Gh_faas.Function_model.input_kb
      in
      let tput = Client.throughput_rps r in
      if cores = 1 then t1 := tput;
      Format.printf "%d core%s: %7.1f req/s (x%.2f)@." cores
        (if cores > 1 then "s" else " ")
        tput
        (tput /. Float.max 1e-9 !t1))
    [ 1; 2; 3; 4 ]
