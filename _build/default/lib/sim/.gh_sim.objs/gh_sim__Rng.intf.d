lib/sim/rng.mli:
