lib/sim/engine.mli: Time_ns
