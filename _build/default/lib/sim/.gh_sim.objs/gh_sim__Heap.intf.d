lib/sim/heap.mli:
