lib/sim/account.ml: Time_ns
