lib/sim/account.mli: Time_ns
