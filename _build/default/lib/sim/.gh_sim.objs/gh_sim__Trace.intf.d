lib/sim/trace.mli: Format Time_ns
