lib/sim/histogram.ml: Array Format List String
