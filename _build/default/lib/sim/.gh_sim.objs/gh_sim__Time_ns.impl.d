lib/sim/time_ns.ml: Format
