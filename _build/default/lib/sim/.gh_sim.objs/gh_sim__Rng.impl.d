lib/sim/rng.ml: Array Float Hashtbl Int64
