type t = { mutable clock : Time_ns.t; queue : (unit -> unit) Heap.t }

let create () = { clock = 0; queue = Heap.create () }
let now t = t.clock

let at t ~time f =
  if time < t.clock then invalid_arg "Engine.at: instant in the simulated past";
  Heap.push t.queue ~key:time f

let schedule t ~after f =
  if after < 0 then invalid_arg "Engine.schedule: negative delay";
  at t ~time:(t.clock + after) f

let step t =
  match Heap.pop t.queue with
  | None -> false
  | Some (time, f) ->
      t.clock <- time;
      f ();
      true

let run t ~until =
  let continue = ref true in
  while !continue do
    match Heap.peek_key t.queue with
    | Some key when key <= until -> ignore (step t)
    | Some _ | None -> continue := false
  done;
  if t.clock < until then t.clock <- until

let run_all t =
  while step t do
    ()
  done

let pending t = Heap.size t.queue
