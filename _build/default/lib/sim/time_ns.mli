(** Simulated time, in integer nanoseconds.

    All durations and instants in the simulator are expressed in [ns].
    OCaml's native [int] gives 62 bits, i.e. ~146 years of simulated time,
    which is ample for any experiment in this repository. *)

type t = int
(** A duration or an instant, in nanoseconds. *)

val zero : t

val of_us : float -> t
(** [of_us x] is [x] microseconds as nanoseconds (rounded). *)

val of_ms : float -> t
(** [of_ms x] is [x] milliseconds as nanoseconds (rounded). *)

val of_sec : float -> t
(** [of_sec x] is [x] seconds as nanoseconds (rounded). *)

val to_us : t -> float
val to_ms : t -> float
val to_sec : t -> float

val pp_ms : Format.formatter -> t -> unit
(** Prints a duration as fractional milliseconds, e.g. ["3.71ms"]. *)

val pp : Format.formatter -> t -> unit
(** Human-friendly printer choosing ns/us/ms/s units. *)
