(** Cost accounts: where simulated CPU time is charged.

    Every substrate operation (page fault, pagemap scan, ptrace step, ...)
    charges nanoseconds to the account it was given. Components measure a
    step's cost by taking a {!mark} before and {!since} after, which is how
    the restore engine produces its per-step breakdown (Fig. 8). *)

type t

val create : unit -> t

val charge : t -> Time_ns.t -> unit
(** Add a duration to the account. Negative charges are rejected. *)

val total : t -> Time_ns.t
(** Total nanoseconds charged so far. *)

val reset : t -> unit

type mark

val mark : t -> mark
val since : t -> mark -> Time_ns.t
(** [since t m] is the time charged to [t] after [m] was taken. *)

val transfer : from:t -> into:t -> unit
(** Move the whole balance of [from] onto [into], resetting [from]. *)
