type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

(* SplitMix64's output mixer: a strong 64-bit finalizer. *)
let mix64 z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let create seed = { state = mix64 (Int64.of_int seed) }

let bits64 t =
  t.state <- Int64.add t.state golden_gamma;
  mix64 t.state

let split t = { state = bits64 t }

let named_split t name =
  { state = mix64 (Int64.logxor t.state (Int64.of_int (Hashtbl.hash name))) }

let int t bound =
  assert (bound > 0);
  (* Keep 62 bits so the value fits OCaml's 63-bit native int positively. *)
  let r = Int64.to_int (Int64.shift_right_logical (bits64 t) 2) in
  r mod bound

let int_in t lo hi =
  assert (lo <= hi);
  lo + int t (hi - lo + 1)

let float t bound =
  (* 53 random bits mapped to [0, 1). *)
  let r = Int64.to_int (Int64.shift_right_logical (bits64 t) 11) in
  float_of_int r /. 9007199254740992.0 *. bound

let bool t = Int64.logand (bits64 t) 1L = 1L

let gaussian t ~mu ~sigma =
  let rec nonzero () =
    let u = float t 1.0 in
    if u > 0.0 then u else nonzero ()
  in
  let u1 = nonzero () and u2 = float t 1.0 in
  mu +. (sigma *. sqrt (-2.0 *. log u1) *. cos (2.0 *. Float.pi *. u2))

let lognormal t ~mu ~sigma = exp (gaussian t ~mu ~sigma)

let exponential t ~mean =
  assert (mean > 0.0);
  let rec nonzero () =
    let u = float t 1.0 in
    if u > 0.0 then u else nonzero ()
  in
  -.mean *. log (nonzero ())

let shuffle t a =
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done
