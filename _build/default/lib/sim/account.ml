type t = { mutable total : Time_ns.t }
type mark = Time_ns.t

let create () = { total = 0 }

let charge t d =
  if d < 0 then invalid_arg "Account.charge: negative duration";
  t.total <- t.total + d

let total t = t.total
let reset t = t.total <- 0
let mark t = t.total
let since t m = t.total - m

let transfer ~from ~into =
  into.total <- into.total + from.total;
  from.total <- 0
