type event = { at : Time_ns.t; category : string; what : string; detail : string }

type t = {
  buf : event option array;
  mutable next : int;  (* total events ever emitted *)
}

let create ?(capacity = 4096) () =
  if capacity < 1 then invalid_arg "Trace.create: capacity must be positive";
  { buf = Array.make capacity None; next = 0 }

let emit t ~at ~category ~what detail =
  t.buf.(t.next mod Array.length t.buf) <- Some { at; category; what; detail };
  t.next <- t.next + 1

let emitf t ~at ~category ~what fmt =
  Printf.ksprintf (fun detail -> emit t ~at ~category ~what detail) fmt

let length t = min t.next (Array.length t.buf)
let dropped t = max 0 (t.next - Array.length t.buf)

let events t =
  let cap = Array.length t.buf in
  let n = length t in
  let start = if t.next > cap then t.next mod cap else 0 in
  List.init n (fun i ->
      match t.buf.((start + i) mod cap) with
      | Some e -> e
      | None -> assert false (* slots below [length] are always filled *))

let clear t =
  Array.fill t.buf 0 (Array.length t.buf) None;
  t.next <- 0

let find t ~category = List.filter (fun e -> e.category = category) (events t)

let pp_event ppf e =
  Format.fprintf ppf "[%a] %-10s %-18s %s" Time_ns.pp e.at e.category e.what e.detail

let render ppf t =
  if dropped t > 0 then Format.fprintf ppf "... (%d earlier events dropped)@." (dropped t);
  List.iter (fun e -> Format.fprintf ppf "%a@." pp_event e) (events t)
