(** Deterministic, splittable pseudo-random number generator.

    The whole simulator is reproducible from a single root seed: every
    component that needs randomness receives its own generator obtained via
    {!split}, so adding or removing a consumer never perturbs the random
    streams of the others (the classic splittable-PRNG discipline).

    The underlying generator is SplitMix64 (Steele, Lea, Flood; also the
    seeding generator of xoshiro). *)

type t

val create : int -> t
(** [create seed] makes a fresh generator from [seed]. Equal seeds give
    equal streams. *)

val split : t -> t
(** [split t] derives an independent generator. Advances [t] by one step. *)

val named_split : t -> string -> t
(** [named_split t name] derives an independent generator keyed by [name],
    without advancing [t]. Useful to hand stable streams to a dynamic set
    of consumers. *)

val bits64 : t -> int64
(** Next raw 64 bits. *)

val int : t -> int -> int
(** [int t bound] is uniform in [\[0, bound)]. Requires [bound > 0]. *)

val int_in : t -> int -> int -> int
(** [int_in t lo hi] is uniform in [\[lo, hi\]] (inclusive).
    Requires [lo <= hi]. *)

val float : t -> float -> float
(** [float t bound] is uniform in [\[0, bound)]. *)

val bool : t -> bool

val gaussian : t -> mu:float -> sigma:float -> float
(** Normal deviate via Box–Muller. *)

val lognormal : t -> mu:float -> sigma:float -> float
(** [exp] of a {!gaussian} deviate; handy for latency noise. *)

val exponential : t -> mean:float -> float
(** Exponential deviate with the given mean. Requires [mean > 0]. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher–Yates shuffle. *)
