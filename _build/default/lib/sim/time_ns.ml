type t = int

let zero = 0
let of_us x = int_of_float (x *. 1e3 +. 0.5)
let of_ms x = int_of_float (x *. 1e6 +. 0.5)
let of_sec x = int_of_float (x *. 1e9 +. 0.5)
let to_us t = float_of_int t /. 1e3
let to_ms t = float_of_int t /. 1e6
let to_sec t = float_of_int t /. 1e9
let pp_ms ppf t = Format.fprintf ppf "%.2fms" (to_ms t)

let pp ppf t =
  let a = abs t in
  if a < 1_000 then Format.fprintf ppf "%dns" t
  else if a < 1_000_000 then Format.fprintf ppf "%.2fus" (to_us t)
  else if a < 1_000_000_000 then Format.fprintf ppf "%.2fms" (to_ms t)
  else Format.fprintf ppf "%.3fs" (to_sec t)
