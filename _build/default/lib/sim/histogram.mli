(** Log-bucketed histograms for latency distributions.

    Latencies span orders of magnitude, so buckets grow geometrically.
    The text rendering gives each bucket a bar scaled to its share —
    enough to see bimodality (e.g. warm requests vs cold starts) that
    a mean and a p95 hide. *)

type t

val create : ?buckets_per_decade:int -> min_value:float -> max_value:float -> unit -> t
(** Geometric buckets covering [\[min_value, max_value\]]; out-of-range
    samples clamp into the edge buckets. Defaults to 5 buckets/decade.
    @raise Invalid_argument unless [0 < min_value < max_value]. *)

val add : t -> float -> unit
val add_all : t -> float array -> unit
val count : t -> int

val buckets : t -> (float * float * int) list
(** (lower bound, upper bound, count) for each bucket, ascending. *)

val quantile : t -> float -> float
(** [quantile t q] for [q] in [\[0,1\]]: the upper bound of the bucket
    holding the q-th sample (a bucket-resolution approximation).
    @raise Invalid_argument if empty or [q] out of range. *)

val render : ?width:int -> Format.formatter -> t -> unit
(** One line per non-empty bucket: range, count, bar. *)
