(** The 58-benchmark catalog of the paper's evaluation (§5.3):
    22 pyperformance (Python), 23 PolyBench (C), and 13 FaaSProfiler
    (6 Python + 7 Node.js) functions, parameterised from the measurements
    in Appendix A, Table 3 (plus FAASM latencies from Table 1).

    Every entry carries both the derived executable {!Gh_faas.Function_model.spec}
    and the paper's reference numbers, so the harness can regenerate each
    table/figure {e and} report paper-vs-measured deltas. *)

type suite = Pyperformance | Polybench | Faasprofiler

type entry = {
  display : string;  (** Paper-style name, e.g. ["chaos (p)"]. *)
  suite : suite;
  reference : Paper_ref.t;
  spec : Gh_faas.Function_model.spec;
}

val all : entry list
(** All 58 benchmarks, in Table 3's order (ascending restore time). *)

val find : string -> entry option
(** Lookup by display name or bare name (first match). *)

val by_suite : suite -> entry list
val by_lang : Gh_faas.Runtime.lang -> entry list

val wasm_ported : entry list
(** The subset with a FAASM (WebAssembly) port. *)

val suite_to_string : suite -> string
val names : unit -> string list
