lib/workloads/representative.mli: Catalog
