lib/workloads/representative.ml: Catalog List Printf
