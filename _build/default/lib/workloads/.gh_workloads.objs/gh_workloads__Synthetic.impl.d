lib/workloads/synthetic.ml: Array Float Gh_faas Gh_sim List Printf
