lib/workloads/catalog.mli: Gh_faas Paper_ref
