lib/workloads/catalog.ml: Float Gh_faas Gh_sim List Option Paper_ref Printf
