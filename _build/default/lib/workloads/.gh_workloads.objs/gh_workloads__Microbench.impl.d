lib/workloads/microbench.ml: Gh_faas Gh_sim Printf
