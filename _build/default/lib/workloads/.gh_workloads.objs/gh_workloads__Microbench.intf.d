lib/workloads/microbench.mli: Gh_faas
