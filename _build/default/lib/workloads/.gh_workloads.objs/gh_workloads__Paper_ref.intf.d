lib/workloads/paper_ref.mli:
