lib/workloads/paper_ref.ml: Float
