lib/workloads/synthetic.mli: Gh_faas Gh_sim
