module Fm = Gh_faas.Function_model

let spec ~mapped_pages ~dirtied_pages =
  {
    Fm.default_spec with
    Fm.name = Printf.sprintf "ubench-%dp-%dd" mapped_pages dirtied_pages;
    lang = Gh_faas.Runtime.C;
    (* The function does nothing but touch memory; a tiny fixed compute
       charge stands for its loop bookkeeping. *)
    exec_ns = Gh_sim.Time_ns.of_us 200.0;
    exec_jitter = 0.01;
    mapped_pages;
    dirtied_pages;
    (* (b): read every mapped page, even those not dirtied. *)
    read_pages = mapped_pages;
    input_kb = 1;
    output_kb = 1;
    scattered_writes = true;
  }

let fig3_left_fractions = [ 0.0; 0.1; 0.2; 0.3; 0.4; 0.5; 0.6; 0.7; 0.8; 0.9; 1.0 ]
let fig3_right_sizes = [ 1_000; 2_000; 5_000; 10_000; 20_000; 50_000; 75_000; 100_000 ]

let fig3_left_mapped = 100_000

let fig3_left_spec fraction =
  if fraction < 0.0 || fraction > 1.0 then invalid_arg "Microbench.fig3_left_spec";
  spec ~mapped_pages:fig3_left_mapped
    ~dirtied_pages:(int_of_float (fraction *. float_of_int fig3_left_mapped))

let fig3_right_spec mapped_pages = spec ~mapped_pages ~dirtied_pages:1_000
