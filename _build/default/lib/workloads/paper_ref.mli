(** Reference measurements from the paper's Appendix A (Tables 1–3).

    Stored alongside each benchmark so EXPERIMENTS.md can report
    paper-vs-measured programmatically. All latencies in milliseconds,
    throughputs in requests/second, page counts in thousands of 4 KiB
    pages — the paper's own units. *)

type t = {
  base_invoker_ms : float;  (** BASE invoker latency. *)
  base_invoker_std_ms : float;
  base_tput : float;  (** BASE throughput (4 cores / 4 containers). *)
  gh_invoker_ms : float;  (** GH invoker latency. *)
  gh_tput : float;
  restore_ms : float;  (** GH restoration time (off critical path). *)
  pages_k : float;  (** Mapped pages, thousands. *)
  faults_k : float;  (** In-function page faults per invocation, thousands. *)
  restored_k : float;  (** Pages restored per invocation, thousands. *)
  faasm_invoker_ms : float option;  (** FAASM invoker latency, if ported. *)
}

val gh_latency_overhead_pct : t -> float
(** Paper GH invoker-latency overhead vs BASE, percent. *)

val gh_tput_drop_pct : t -> float
(** Paper GH throughput reduction vs BASE, percent ([nan] when the BASE
    throughput column is 0, as for logging(p)). *)
