(** The 14 representative benchmarks used for Fig. 7 (core scaling) and
    Fig. 8 (restoration breakdown): a spread over duration, mapped pages
    and dirtied pages across all three languages. *)

val names : string list
(** Display names, e.g. ["json (n)"]. *)

val entries : Catalog.entry list
