(* Chosen to span three languages, five orders of magnitude of duration,
   1K–208K mapped pages and 10–54K dirtied pages. *)
let names =
  [
    "jacobi-1d (c)";
    "durbin (c)";
    "atax (c)";
    "deriche (c)";
    "heat-3d (c)";
    "cholesky (c)";
    "version (p)";
    "pickle (p)";
    "json (p)";
    "base64 (p)";
    "pyflate (p)";
    "get-time (n)";
    "json (n)";
    "base64 (n)";
  ]

let entries =
  List.map
    (fun name ->
      match Catalog.find name with
      | Some e -> e
      | None -> invalid_arg (Printf.sprintf "Representative: %s not in catalog" name))
    names
