type t = {
  base_invoker_ms : float;
  base_invoker_std_ms : float;
  base_tput : float;
  gh_invoker_ms : float;
  gh_tput : float;
  restore_ms : float;
  pages_k : float;
  faults_k : float;
  restored_k : float;
  faasm_invoker_ms : float option;
}

let gh_latency_overhead_pct t =
  100.0 *. (t.gh_invoker_ms -. t.base_invoker_ms) /. t.base_invoker_ms

let gh_tput_drop_pct t =
  if t.base_tput <= 0.0 then Float.nan
  else 100.0 *. (t.base_tput -. t.gh_tput) /. t.base_tput
