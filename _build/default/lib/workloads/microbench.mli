(** The §5.2 microbenchmark: a C function that pre-allocates a fixed
    address space; each invocation (a) writes one word to a chosen subset
    of the pages, then (b) reads one word from {e every} mapped page.

    Two sweeps reproduce Fig. 3:
    - vary the dirtied fraction at a fixed 100K mapped pages (left), and
    - vary the address-space size at a fixed 1K dirtied pages (right). *)

val spec :
  mapped_pages:int -> dirtied_pages:int -> Gh_faas.Function_model.spec
(** A microbenchmark spec. The dirty pattern spreads evenly over the pool,
    so the dirtied fraction controls run lengths (and therefore restore
    coalescing), as in the paper. *)

val fig3_left_fractions : float list
(** The dirtied-page fractions swept in Fig. 3 (left): 0–100 %. *)

val fig3_right_sizes : int list
(** The address-space sizes swept in Fig. 3 (right): 1K–100K pages. *)

val fig3_left_spec : float -> Gh_faas.Function_model.spec
(** 100K mapped pages, given fraction dirtied. *)

val fig3_right_spec : int -> Gh_faas.Function_model.spec
(** Given mapped pages, 1K dirtied. *)
