type align = L | R

let pad align width s =
  let n = String.length s in
  if n >= width then s
  else
    match align with
    | L -> s ^ String.make (width - n) ' '
    | R -> String.make (width - n) ' ' ^ s

let table ppf ~title ~header ?align rows =
  let n_cols = List.fold_left (fun acc r -> max acc (List.length r)) (List.length header) rows in
  let get lst i = match List.nth_opt lst i with Some s -> s | None -> "" in
  let aligns =
    match align with
    | Some a -> Array.init n_cols (fun i -> match List.nth_opt a i with Some x -> x | None -> R)
    | None -> Array.init n_cols (fun i -> if i = 0 then L else R)
  in
  let widths = Array.make n_cols 0 in
  List.iter
    (fun r ->
      for i = 0 to n_cols - 1 do
        widths.(i) <- max widths.(i) (String.length (get r i))
      done)
    (header :: rows);
  let render r =
    String.concat "  " (List.init n_cols (fun i -> pad aligns.(i) widths.(i) (get r i)))
  in
  let rule =
    String.concat "--" (Array.to_list (Array.map (fun w -> String.make w '-') widths))
  in
  Format.fprintf ppf "@.== %s ==@.%s@.%s@." title (render header) rule;
  List.iter (fun r -> Format.fprintf ppf "%s@." (render r)) rows;
  Format.fprintf ppf "@."

let series ppf ~title ~x_label ~columns rows =
  let header = x_label :: columns in
  let body =
    List.map
      (fun (x, ys) ->
        Printf.sprintf "%g" x
        :: List.map (function Some y -> Printf.sprintf "%.4g" y | None -> "-") ys)
      rows
  in
  table ppf ~title ~header body

let fmt_ms v =
  if Float.abs v >= 1000.0 then Printf.sprintf "%.0f" v
  else if Float.abs v >= 10.0 then Printf.sprintf "%.1f" v
  else Printf.sprintf "%.2f" v

let fmt_pct v =
  if Float.is_nan v then "-" else Printf.sprintf "%+.1f%%" v

let fmt_ratio v = if Float.is_nan v then "-" else Printf.sprintf "%.3f" v

let fmt_tput v =
  if v >= 100.0 then Printf.sprintf "%.0f" v
  else if v >= 1.0 then Printf.sprintf "%.2f" v
  else Printf.sprintf "%.3f" v
