(** Snapshotting overhead (§5.5): the one-time cost of capturing the clean
    state, across the catalog — time and manager memory are primarily
    proportional to the number of paged-in pages. *)

type row = {
  entry : Gh_workloads.Catalog.entry;
  snapshot_ms : float;
  present_pages : int;
  buffer_mb : float;  (** Manager-side snapshot buffer, 4 KiB per page. *)
  init_ms : float;  (** Full container init incl. boot, warm-up, snapshot. *)
  incr_capture_ms : float;
      (** §5.5 optimization: capture time with CoW-salvage snapshots. *)
  incr_buffer_mb : float;
      (** Manager memory after serving several requests incrementally —
          proportional to unique modified pages, not the footprint. *)
}

val run : Config.t -> Gh_workloads.Catalog.entry list -> row list
val print : Format.formatter -> row list -> unit
