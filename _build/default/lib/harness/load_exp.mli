(** Latency under offered load (open-loop Poisson arrivals).

    Supports the §4 design claim that restoration off the critical path
    costs nothing "in the common case of a less than fully utilized
    server": at low utilization GH's end-to-end latency tracks BASE's; as
    the offered rate approaches the container's GH service rate (which
    includes restoration), GH's queueing delay diverges before BASE's. *)

type point = {
  rate_rps : float;
  base_mean_ms : float;
  base_p95_ms : float;
  gh_mean_ms : float;
  gh_p95_ms : float;
}

val run :
  Config.t ->
  ?n_containers:int ->
  ?utilizations:float list ->
  Gh_workloads.Catalog.entry ->
  point list
(** Sweeps offered load as fractions of the GH saturation rate
    (default 0.2 … 1.1). *)

val print : Format.formatter -> Gh_workloads.Catalog.entry -> point list -> unit
