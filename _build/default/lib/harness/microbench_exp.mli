(** The Fig. 3 microbenchmark sweeps (§5.2).

    Left: latency vs the fraction of pages dirtied, at 100K mapped pages.
    Right: latency vs address-space size, at 1K dirtied pages.

    For each point and each isolation method we measure the {e low-load}
    latency (solid lines: in-function overheads only — restoration hides in
    the gaps between requests) and the {e high-load} latency (dashed lines:
    back-to-back requests must additionally wait for restoration). *)

type point = {
  x : float;  (** Dirtied fraction (left) or mapped pages (right). *)
  low_ms : (Gh_isolation.Registry.id * float) list;  (** Solid lines. *)
  high_ms : (Gh_isolation.Registry.id * float) list;  (** Dashed lines. *)
}

val strategies : Gh_isolation.Registry.id list
(** BASE, GH, GH_NOP, FORK — Fig. 3's methods. *)

val run_left : Config.t -> point list
val run_right : Config.t -> point list

val print : Format.formatter -> title:string -> x_label:string -> point list -> unit
