module Stats = Gh_sim.Stats
module Registry = Gh_isolation.Registry
module Catalog = Gh_workloads.Catalog
module Paper_ref = Gh_workloads.Paper_ref
module Breakdown = Groundhog_core.Breakdown

let strategies = [ Registry.Base; Registry.Gh; Registry.Gh_nop; Registry.Fork; Registry.Faasm ]

let lat_of latency display =
  List.find_opt (fun (r : Latency_exp.result) -> r.Latency_exp.entry.Catalog.display = display) latency

let tput_of tputs display =
  List.find_opt
    (fun (r : Throughput_exp.result) -> r.Throughput_exp.entry.Catalog.display = display)
    tputs

let print_table1 ppf latency tputs =
  let header =
    "benchmark" :: "config"
    :: [ "e2e ms"; "+/-"; "invoker ms"; "+/-"; "t'put r/s" ]
  in
  let rows =
    List.concat_map
      (fun (lr : Latency_exp.result) ->
        let display = lr.Latency_exp.entry.Catalog.display in
        let tr = tput_of tputs display in
        List.filter_map
          (fun s ->
            match Latency_exp.find lr s with
            | None -> None
            | Some m ->
                let tput =
                  match Option.bind tr (fun tr -> Throughput_exp.find tr s) with
                  | Some t -> Report.fmt_tput t.Throughput_exp.tput_rps
                  | None -> "-"
                in
                Some
                  [
                    display;
                    String.uppercase_ascii (Registry.to_string s);
                    Report.fmt_ms m.Latency_exp.e2e.Stats.mean;
                    Report.fmt_ms m.Latency_exp.e2e.Stats.std;
                    Report.fmt_ms m.Latency_exp.invoker.Stats.mean;
                    Report.fmt_ms m.Latency_exp.invoker.Stats.std;
                    tput;
                  ])
          strategies)
      latency
  in
  Report.table ppf
    ~title:"Table 1 — absolute latency and throughput per configuration" ~header rows

let pct now base = if base <= 0.0 then Float.nan else 100.0 *. (now -. base) /. base

let print_table2 ppf latency tputs =
  let header =
    [
      "benchmark";
      "GH-NOP e2e%";
      "GH e2e%";
      "FORK e2e%";
      "FAASM e2e%";
      "GH t'put%";
      "FORK t'put%";
      "GH inv% (paper)";
    ]
  in
  let rows =
    List.map
      (fun (lr : Latency_exp.result) ->
        let display = lr.Latency_exp.entry.Catalog.display in
        let base = Latency_exp.find lr Registry.Base in
        let e2e_pct s =
          match (base, Latency_exp.find lr s) with
          | Some b, Some m ->
              Report.fmt_pct (pct m.Latency_exp.e2e.Stats.mean b.Latency_exp.e2e.Stats.mean)
          | _ -> "-"
        in
        let tput_pct s =
          match tput_of tputs display with
          | None -> "-"
          | Some tr -> begin
              match (Throughput_exp.find tr Registry.Base, Throughput_exp.find tr s) with
              | Some b, Some m when b.Throughput_exp.tput_rps > 0.0 ->
                  Report.fmt_pct (pct m.Throughput_exp.tput_rps b.Throughput_exp.tput_rps)
              | _ -> "-"
            end
        in
        let paper =
          Report.fmt_pct
            (Paper_ref.gh_latency_overhead_pct lr.Latency_exp.entry.Catalog.reference)
        in
        [
          display;
          e2e_pct Registry.Gh_nop;
          e2e_pct Registry.Gh;
          e2e_pct Registry.Fork;
          e2e_pct Registry.Faasm;
          tput_pct Registry.Gh;
          tput_pct Registry.Fork;
          paper;
        ])
      latency
  in
  Report.table ppf ~title:"Table 2 — overheads relative to the insecure baseline" ~header rows

let print_table3 ppf latency tputs breakdowns =
  let header =
    [
      "benchmark";
      "BASE inv ms";
      "BASE r/s";
      "GH inv ms";
      "GH r/s";
      "restore ms";
      "(paper)";
      "pages K";
      "restored K";
      "snapshot ms";
    ]
  in
  let rows =
    List.filter_map
      (fun (b : Breakdown_exp.result) ->
        let display = b.Breakdown_exp.entry.Catalog.display in
        let lr = lat_of latency display in
        let tr = tput_of tputs display in
        let inv s =
          match Option.bind lr (fun lr -> Latency_exp.find lr s) with
          | Some m -> Report.fmt_ms m.Latency_exp.invoker.Stats.mean
          | None -> "-"
        in
        let tput s =
          match Option.bind tr (fun tr -> Throughput_exp.find tr s) with
          | Some m -> Report.fmt_tput m.Throughput_exp.tput_rps
          | None -> "-"
        in
        Some
          [
            display;
            inv Registry.Base;
            tput Registry.Base;
            inv Registry.Gh;
            tput Registry.Gh;
            Report.fmt_ms b.Breakdown_exp.restore_ms;
            Report.fmt_ms b.Breakdown_exp.entry.Catalog.reference.Paper_ref.restore_ms;
            Printf.sprintf "%.2f" (float_of_int b.Breakdown_exp.total_pages /. 1000.0);
            Printf.sprintf "%.2f"
              (float_of_int b.Breakdown_exp.mean.Breakdown.pages_restored /. 1000.0);
            Report.fmt_ms b.Breakdown_exp.snapshot_ms;
          ])
      (List.sort
         (fun (a : Breakdown_exp.result) b ->
           compare a.Breakdown_exp.restore_ms b.Breakdown_exp.restore_ms)
         breakdowns)
  in
  Report.table ppf
    ~title:"Table 3 — GH invoker latency & throughput vs restoration cost (sorted by restore time)"
    ~header rows
