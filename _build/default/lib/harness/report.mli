(** Plain-text rendering of experiment results: fixed-width tables and
    gnuplot-style series blocks, printed to a formatter. *)

type align = L | R

val table :
  Format.formatter ->
  title:string ->
  header:string list ->
  ?align:align list ->
  string list list ->
  unit
(** Render rows under a rule-separated header. [align] defaults to left for
    the first column and right for the rest. Ragged rows are padded. *)

val series :
  Format.formatter ->
  title:string ->
  x_label:string ->
  columns:string list ->
  (float * float option list) list ->
  unit
(** A plottable block: one x per row, one column per line/series; missing
    points print as "-". *)

val fmt_ms : float -> string
(** Milliseconds with adaptive precision. *)

val fmt_pct : float -> string
(** Signed percentage, e.g. ["+1.5%"]. *)

val fmt_ratio : float -> string
val fmt_tput : float -> string
