module Rng = Gh_sim.Rng
module Time_ns = Gh_sim.Time_ns
module Catalog = Gh_workloads.Catalog
module Fm = Gh_faas.Function_model
module Intf = Gh_faas.Strategy_intf
module Gh = Gh_isolation.Gh
module Policy = Gh_isolation.Policy
module Manager = Groundhog_core.Manager

type point = {
  burst : int;
  always_restores : int;
  trust_restores : int;
  skip_rate : float;
  always_cycle_ms : float;
  trust_cycle_ms : float;
  leaks : int;
}

let principals n = Array.init n (fun i -> Gh_faas.Principal.make ~id:(i + 1) ~name:(Printf.sprintf "p%d" i))

(* Serve [requests] requests in bursts of [burst] per principal (4
   principals rotating) with full lookahead (the queue is visible),
   counting restores and occupancy. *)
let serve cfg ~policy ~requests ~burst entry =
  let spec = { entry.Catalog.spec with Fm.buggy_residue_leak = true } in
  let seed =
    cfg.Config.seed lxor Hashtbl.hash (entry.Catalog.display, Policy.to_string policy, burst)
  in
  let _strategy, state = Gh.make_with_state ~policy ~rng:(Rng.create seed) spec in
  let ps = principals 4 in
  let reqs =
    List.init requests (fun i ->
        Gh_faas.Request.make ~id:(i + 1)
          ~principal:ps.(i / burst mod 4)
          ~input_kb:spec.Fm.input_kb ())
  in
  let busy = ref 0 in
  let leaks = ref 0 in
  let rec go = function
    | [] -> ()
    | req :: rest ->
        let next = match rest with [] -> None | r :: _ -> Some r in
        let inv = Gh.invoke_with_lookahead state req ~next in
        busy := !busy + inv.Intf.on_path_ns + inv.Intf.post_ns;
        leaks :=
          !leaks
          + List.length
              (List.filter
                 (fun w -> not (Gh_faas.Principal.owns_word req.Gh_faas.Request.principal w))
                 inv.Intf.response.Fm.residue);
        go rest
  in
  go reqs;
  let restores = Manager.restores_performed (Gh.manager state) in
  let cycle_ms = Time_ns.to_ms (!busy / max 1 requests) in
  (restores, cycle_ms, !leaks)

let run cfg ?(requests = 64) entry =
  List.map
    (fun burst ->
      let always_restores, always_cycle_ms, _ =
        serve cfg ~policy:Policy.Always_isolate ~requests ~burst entry
      in
      let trust_restores, trust_cycle_ms, leaks =
        serve cfg ~policy:Policy.Trust_same_principal ~requests ~burst entry
      in
      {
        burst;
        always_restores;
        trust_restores;
        skip_rate =
          float_of_int (always_restores - trust_restores)
          /. Float.max 1.0 (float_of_int always_restores);
        always_cycle_ms;
        trust_cycle_ms;
        leaks;
      })
    [ 1; 2; 4; 8; 16 ]

let print ppf entry points =
  let rows =
    List.map
      (fun p ->
        [
          string_of_int p.burst;
          string_of_int p.always_restores;
          string_of_int p.trust_restores;
          Printf.sprintf "%.0f%%" (100.0 *. p.skip_rate);
          Report.fmt_ms p.always_cycle_ms;
          Report.fmt_ms p.trust_cycle_ms;
          string_of_int p.leaks;
        ])
      points
  in
  Report.table ppf
    ~title:
      (Printf.sprintf
         "Rollback-skip policy (§4.4) on %s: restores and per-request occupancy vs traffic \
          locality (4 principals, bursts of consecutive requests)"
         entry.Catalog.display)
    ~header:
      [
        "burst";
        "restores (always)";
        "restores (trust-same)";
        "skipped";
        "cycle ms (always)";
        "cycle ms (trust)";
        "cross-leaks";
      ]
    rows
