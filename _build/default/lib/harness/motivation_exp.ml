module Stats = Gh_sim.Stats
module Time_ns = Gh_sim.Time_ns
module Registry = Gh_isolation.Registry
module Catalog = Gh_workloads.Catalog
module Intf = Gh_faas.Strategy_intf

type row = {
  entry : Catalog.entry;
  base_ms : float;
  gh_ms : float;
  gh_restore_ms : float;
  coldstart_ms : float;
  criu_restore_ms : float;
}

let default_benchmarks =
  [
    "jacobi-1d (c)";
    "atax (c)";
    "deriche (c)";
    "version (p)";
    "deltablue (p)";
    "telco (p)";
    "get-time (n)";
    "json (n)";
  ]

let mean_invoker cfg strategy entry =
  match Latency_exp.run_one cfg strategy entry with
  | Some m -> m.Latency_exp.invoker.Stats.mean
  | None -> Float.nan

let mean_post cfg strategy (entry : Catalog.entry) =
  (* Mean deferred work per request under [strategy]. *)
  let seed = cfg.Config.seed lxor Hashtbl.hash ("motivation", entry.Catalog.display) in
  match Registry.make strategy ~rng:(Gh_sim.Rng.create seed) entry.Catalog.spec with
  | Error _ -> Float.nan
  | Ok strat ->
      let n = 6 in
      let total = ref 0 in
      for i = 1 to n do
        let req =
          Gh_faas.Request.make ~id:i
            ~principal:(Gh_faas.Principal.make ~id:1 ~name:"a")
            ~input_kb:entry.Catalog.spec.Gh_faas.Function_model.input_kb ()
        in
        let inv = strat.Intf.invoke req in
        total := !total + inv.Intf.post_ns
      done;
      Time_ns.to_ms (!total / n)

let run cfg entries =
  List.map
    (fun entry ->
      {
        entry;
        base_ms = mean_invoker cfg Registry.Base entry;
        gh_ms = mean_invoker cfg Registry.Gh entry;
        gh_restore_ms = mean_post cfg Registry.Gh entry;
        coldstart_ms = mean_invoker cfg Registry.Coldstart entry;
        criu_restore_ms = mean_post cfg Registry.Criu entry;
      })
    entries

let print ppf rows =
  let table_rows =
    List.map
      (fun r ->
        [
          r.entry.Catalog.display;
          Report.fmt_ms r.base_ms;
          Report.fmt_ms r.gh_ms;
          Report.fmt_ms r.gh_restore_ms;
          Report.fmt_ms r.coldstart_ms;
          Report.fmt_ms r.criu_restore_ms;
        ])
      rows
  in
  Report.table ppf
    ~title:
      "Motivation (§1): per-request cost of isolation mechanisms — GH adds microseconds \
       on-path + ms off-path; cold starts and CRIU-style restores add tens to hundreds of ms"
    ~header:
      [ "benchmark"; "BASE inv ms"; "GH inv ms"; "GH restore ms"; "COLDSTART inv ms"; "CRIU restore ms" ]
    table_rows
