(** Throughput scaling with cores (§5.3.4, Fig. 7).

    Repeats the saturation throughput measurement with 1–4 containers
    (one per core); each container runs an independent function process and
    Groundhog manager, so the expectation is near-linear scaling. As in the
    paper (6 runs with error bars), each point averages several runs with
    different seeds and reports the standard deviation. *)

type result = {
  entry : Gh_workloads.Catalog.entry;
  by_cores : (int * float) list;  (** (cores, mean GH throughput r/s). *)
  std_by_cores : (int * float) list;  (** (cores, std over repeats). *)
}

val run :
  ?max_cores:int -> ?repeats:int -> Config.t -> Gh_workloads.Catalog.entry list -> result list
(** [repeats] defaults to 3 (the paper used 6). *)

val linearity : result -> float option
(** Throughput at max cores divided by (max cores × throughput at 1 core);
    1.0 = perfectly linear. *)

val print_fig7 : Format.formatter -> result list -> unit
