lib/harness/throughput_exp.ml: Config Float Gh_faas Gh_isolation Gh_sim Gh_workloads Hashtbl List Option Report String
