lib/harness/scaling_exp.mli: Config Format Gh_workloads
