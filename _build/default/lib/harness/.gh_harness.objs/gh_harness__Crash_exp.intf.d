lib/harness/crash_exp.mli: Config Format Gh_isolation Gh_workloads
