lib/harness/config.ml: Gh_faas Gh_sim
