lib/harness/throughput_exp.mli: Config Format Gh_isolation Gh_workloads
