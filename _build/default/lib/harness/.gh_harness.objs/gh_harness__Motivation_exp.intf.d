lib/harness/motivation_exp.mli: Config Format Gh_workloads
