lib/harness/latency_exp.mli: Config Format Gh_isolation Gh_sim Gh_workloads
