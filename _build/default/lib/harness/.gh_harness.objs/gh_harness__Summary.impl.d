lib/harness/summary.ml: Array Breakdown_exp Format Gh_isolation Gh_sim Gh_workloads Latency_exp List Printf Report Throughput_exp
