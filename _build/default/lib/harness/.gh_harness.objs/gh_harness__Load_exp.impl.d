lib/harness/load_exp.ml: Config Gh_faas Gh_isolation Gh_sim Gh_workloads Hashtbl List Printf Report Throughput_exp
