lib/harness/breakdown_exp.ml: Array Config Float Gh_faas Gh_isolation Gh_mem Gh_proc Gh_sim Gh_workloads Groundhog_core Hashtbl List Printf Report
