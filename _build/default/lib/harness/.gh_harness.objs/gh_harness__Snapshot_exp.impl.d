lib/harness/snapshot_exp.ml: Config Gh_faas Gh_isolation Gh_sim Gh_workloads Groundhog_core Hashtbl List Option Printf Report
