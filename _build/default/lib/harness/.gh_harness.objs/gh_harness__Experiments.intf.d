lib/harness/experiments.mli: Config Format
