lib/harness/microbench_exp.mli: Config Format Gh_isolation
