lib/harness/config.mli: Gh_faas Gh_sim
