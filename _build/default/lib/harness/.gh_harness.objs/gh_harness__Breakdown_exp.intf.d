lib/harness/breakdown_exp.mli: Config Format Gh_workloads Groundhog_core
