lib/harness/tenant_exp.mli: Config Format Gh_workloads
