lib/harness/tables.mli: Breakdown_exp Format Latency_exp Throughput_exp
