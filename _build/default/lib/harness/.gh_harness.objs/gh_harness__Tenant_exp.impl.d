lib/harness/tenant_exp.ml: Array Config Float Gh_faas Gh_isolation Gh_sim Gh_workloads Groundhog_core Hashtbl List Report
