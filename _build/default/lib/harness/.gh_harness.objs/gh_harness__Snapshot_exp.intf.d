lib/harness/snapshot_exp.mli: Config Format Gh_workloads
