lib/harness/scaling_exp.ml: Array Config Fun Gh_isolation Gh_sim Gh_workloads List Printf Report Throughput_exp
