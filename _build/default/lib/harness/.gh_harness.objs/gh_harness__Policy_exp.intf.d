lib/harness/policy_exp.mli: Config Format Gh_workloads
