lib/harness/tables.ml: Breakdown_exp Float Gh_isolation Gh_sim Gh_workloads Groundhog_core Latency_exp List Option Printf Report String Throughput_exp
