lib/harness/ablation_exp.ml: Array Config Float Gh_faas Gh_kernel Gh_sim Gh_workloads Groundhog_core Hashtbl List Report
