lib/harness/motivation_exp.ml: Config Float Gh_faas Gh_isolation Gh_sim Gh_workloads Hashtbl Latency_exp List Report
