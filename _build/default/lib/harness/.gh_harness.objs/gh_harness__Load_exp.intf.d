lib/harness/load_exp.mli: Config Format Gh_workloads
