lib/harness/summary.mli: Breakdown_exp Format Gh_sim Latency_exp Throughput_exp
