lib/harness/report.ml: Array Float Format List Printf String
