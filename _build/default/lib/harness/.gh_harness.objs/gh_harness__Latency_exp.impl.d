lib/harness/latency_exp.ml: Array Config Gh_faas Gh_isolation Gh_sim Gh_workloads Hashtbl List Printf Report String
