lib/harness/ablation_exp.mli: Config Format
