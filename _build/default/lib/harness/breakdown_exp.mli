(** Restoration-cost deconstruction (§5.4, Fig. 8) and the GH-vs-FAASM
    restoration comparison (Fig. 6), plus the one-time snapshotting
    overhead (§5.5). *)

type result = {
  entry : Gh_workloads.Catalog.entry;
  mean : Groundhog_core.Breakdown.t;  (** Averaged over many restores. *)
  restore_ms : float;
  snapshot_ms : float;  (** One-time snapshot capture cost. *)
  snapshot_pages : int;
  total_pages : int;
  faasm_reset_ms : float option;  (** When the benchmark has a wasm port. *)
}

val run_one : ?with_faasm:bool -> Config.t -> Gh_workloads.Catalog.entry -> result
val run : ?with_faasm:bool -> Config.t -> Gh_workloads.Catalog.entry list -> result list

val print_fig8 : Format.formatter -> result list -> unit
(** Per-benchmark stacked percentages of the nine restore steps, plus
    absolute restore time, page counts, and snapshot cost. *)

val print_fig6 : Format.formatter -> result list -> unit
(** Restoration duration (off the critical path): GH vs FAASM. *)
