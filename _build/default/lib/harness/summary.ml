module Stats = Gh_sim.Stats
module Registry = Gh_isolation.Registry
module Catalog = Gh_workloads.Catalog

type t = {
  latency_overhead_pct : Stats.summary;
  e2e_overhead_pct : Stats.summary;
  tput_drop_pct : Stats.summary;
  restore_ms : Stats.summary;
}

let overheads_of_latency results =
  let pick f =
    List.filter_map
      (fun (r : Latency_exp.result) ->
        match (Latency_exp.find r Registry.Base, Latency_exp.find r Registry.Gh) with
        | Some base, Some gh -> f base gh
        | _ -> None)
      results
  in
  let invoker =
    pick (fun base gh ->
        (* logging(p) is the paper's negative outlier (GH beats BASE thanks
           to the leak rollback); it is kept in the distribution, as the
           paper keeps it. *)
        Some
          (100.0
          *. (gh.Latency_exp.invoker.Stats.mean -. base.Latency_exp.invoker.Stats.mean)
          /. base.Latency_exp.invoker.Stats.mean))
  in
  let e2e =
    pick (fun base gh ->
        Some
          (100.0
          *. (gh.Latency_exp.e2e.Stats.mean -. base.Latency_exp.e2e.Stats.mean)
          /. base.Latency_exp.e2e.Stats.mean))
  in
  (Array.of_list invoker, Array.of_list e2e)

let drops_of_tput results =
  Array.of_list
    (List.filter_map
       (fun (r : Throughput_exp.result) ->
         match (Throughput_exp.find r Registry.Base, Throughput_exp.find r Registry.Gh) with
         | Some base, Some gh when base.Throughput_exp.tput_rps > 0.0 ->
             Some
               (100.0
               *. (base.Throughput_exp.tput_rps -. gh.Throughput_exp.tput_rps)
               /. base.Throughput_exp.tput_rps)
         | _ -> None)
       results)

let compute latency tput breakdowns =
  let invoker, e2e = overheads_of_latency latency in
  let restore =
    Array.of_list (List.map (fun (b : Breakdown_exp.result) -> b.Breakdown_exp.restore_ms) breakdowns)
  in
  {
    latency_overhead_pct = Stats.summarize invoker;
    e2e_overhead_pct = Stats.summarize e2e;
    tput_drop_pct = Stats.summarize (drops_of_tput tput);
    restore_ms = Stats.summarize restore;
  }

let print ppf t =
  let rows =
    [
      [
        "GH e2e latency overhead (%)";
        Printf.sprintf "%.1f" t.e2e_overhead_pct.Stats.median;
        Printf.sprintf "%.1f" t.e2e_overhead_pct.Stats.p95;
        "1.5";
        "7.0";
      ];
      [
        "GH invoker latency overhead (%)";
        Printf.sprintf "%.1f" t.latency_overhead_pct.Stats.median;
        Printf.sprintf "%.1f" t.latency_overhead_pct.Stats.p95;
        "-";
        "-";
      ];
      [
        "GH throughput reduction (%)";
        Printf.sprintf "%.1f" t.tput_drop_pct.Stats.median;
        Printf.sprintf "%.1f" t.tput_drop_pct.Stats.p95;
        "2.5";
        "49.6";
      ];
      [
        "GH restoration time (ms)";
        Printf.sprintf "%.1f" t.restore_ms.Stats.median;
        Printf.sprintf "%.1f" t.restore_ms.Stats.p95;
        "3.7";
        "16.1";
      ];
    ]
  in
  Report.table ppf ~title:"Headline numbers — measured vs paper"
    ~header:[ "metric"; "median"; "p95"; "paper median"; "paper p95" ]
    rows;
  Format.fprintf ppf
    "restore distribution: p10=%.1fms p25=%.1fms median=%.1fms p75=%.1fms p90=%.1fms (paper: 0.7 / 1 / 3.7 / 5.4 / 13)@."
    t.restore_ms.Stats.p10 t.restore_ms.Stats.p25 t.restore_ms.Stats.median
    t.restore_ms.Stats.p75 t.restore_ms.Stats.p90
