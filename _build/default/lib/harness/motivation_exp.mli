(** The §1 motivation table: what sequential request isolation costs under
    each available mechanism, on a spread of benchmarks.

    COLDSTART (a fresh container per request) and CRIU-style full-image
    restore are the pre-Groundhog options; both add latency comparable to —
    or exceeding — the execution time of short functions, which is exactly
    why the paper calls them impractical. Groundhog's per-request price is
    a few in-function microseconds plus a few off-path milliseconds. *)

type row = {
  entry : Gh_workloads.Catalog.entry;
  base_ms : float;  (** Warm-reuse invoker latency (no isolation). *)
  gh_ms : float;  (** GH invoker latency. *)
  gh_restore_ms : float;  (** GH off-path restore. *)
  coldstart_ms : float;  (** Fresh container per request, on path. *)
  criu_restore_ms : float;  (** Full-image restore, between requests. *)
}

val default_benchmarks : string list
(** A duration/footprint spread: short and long C, Python and Node. *)

val run : Config.t -> Gh_workloads.Catalog.entry list -> row list
val print : Format.formatter -> row list -> unit
