(** The §4.4 rollback-skip optimization, quantified.

    When consecutive requests come from mutually trusting callers and the
    next request is already visible, Groundhog may skip the rollback. This
    experiment sweeps traffic locality — four principals send {e bursts} of
    consecutive requests — and compares [Always_isolate] against
    [Trust_same_principal]: with bursts of length k, (k-1)/k of the
    rollbacks are skipped; with fully interleaved callers (burst 1) none
    are. *)

type point = {
  burst : int;  (** Consecutive requests per principal. *)
  always_restores : int;  (** Restores under Always_isolate. *)
  trust_restores : int;  (** Restores under Trust_same_principal. *)
  skip_rate : float;  (** Fraction of rollbacks avoided. *)
  always_cycle_ms : float;  (** Mean per-request container occupancy. *)
  trust_cycle_ms : float;
  leaks : int;  (** Foreign residues observed under the trust policy —
                    must be 0: skips only happen within one principal. *)
}

val run : Config.t -> ?requests:int -> Gh_workloads.Catalog.entry -> point list
val print : Format.formatter -> Gh_workloads.Catalog.entry -> point list -> unit
