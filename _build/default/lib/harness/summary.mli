(** The headline numbers (§1, §5): Groundhog's overheads across the whole
    benchmark suite, measured and set against the paper's claims —
    latency overhead median 1.5 % / 95p 7 %, throughput reduction median
    2.5 % / 95p 49.6 %, restoration median 3.7 ms (10p 0.7, 90p 13). *)

type t = {
  latency_overhead_pct : Gh_sim.Stats.summary;
      (** GH invoker-latency overhead vs BASE, % across benchmarks. *)
  e2e_overhead_pct : Gh_sim.Stats.summary;
  tput_drop_pct : Gh_sim.Stats.summary;
  restore_ms : Gh_sim.Stats.summary;
}

val compute :
  Latency_exp.result list ->
  Throughput_exp.result list ->
  Breakdown_exp.result list ->
  t

val print : Format.formatter -> t -> unit
(** Measured vs paper-claimed headline rows. *)
