(** The throughput experiment (§5.3, Fig. 5; Table 1's throughput column).

    The platform runs as a discrete-event simulation: [n_containers]
    containers (one per core) behind an invoker, saturated by a client that
    keeps a window of requests in flight. Deferred restoration work then
    occupies container time and reduces throughput — unlike in the
    low-load latency experiment. *)

type measurement = {
  strategy : Gh_isolation.Registry.id;
  tput_rps : float;
  mean_cycle_ms : float;  (** Mean busy time per request per container. *)
}

type result = {
  entry : Gh_workloads.Catalog.entry;
  measurements : measurement list;
}

val run_one :
  ?n_containers:int ->
  Config.t ->
  Gh_isolation.Registry.id ->
  Gh_workloads.Catalog.entry ->
  measurement option

val run :
  ?strategies:Gh_isolation.Registry.id list ->
  Config.t ->
  Gh_workloads.Catalog.entry list ->
  result list
(** Defaults to BASE, GH, GH_NOP and FORK (the paper's Fig. 5 set; FAASM
    throughput is shown only in Table 1). *)

val find : result -> Gh_isolation.Registry.id -> measurement option

val print_fig5 : Format.formatter -> result list -> unit
(** Relative throughput vs BASE, annotated with the paper's predicted
    reciprocal 1/(1 + overheads/baseline latency). *)
