(** Design-choice ablations called out in DESIGN.md (beyond the paper's
    measured configurations, but grounded in its §4.3/§4.4 discussion).

    - {b Tracking}: soft-dirty bits vs userfaultfd write-protection. The
      paper prototyped UFFD and rejected it: per-write user-space round
      trips beat the restore-time pagemap scan only when almost nothing is
      dirtied. The sweep reproduces that crossover.

    - {b Coalescing}: restoring each maximal dirty run with one large copy
      vs one operation per page. The per-run setup amortizes as density
      grows — without coalescing, high-density restores blow up. *)

type tracking_point = {
  dirtied : int;
  sd_low_ms : float;  (** Soft-dirty: in-function latency. *)
  sd_restore_ms : float;
  uffd_low_ms : float;  (** Uffd: in-function latency (per-write traps). *)
  uffd_restore_ms : float;  (** No scan needed at restore. *)
  klist_low_ms : float;  (** Footnote-6 kernel dirty lists. *)
  klist_restore_ms : float;  (** Dirty-proportional restore walk. *)
}

val run_tracking : Config.t -> ?mapped:int -> unit -> tracking_point list

type coalescing_point = {
  dirtied : int;
  with_ms : float;  (** Restore time with run coalescing. *)
  without_ms : float;  (** One copy operation per page. *)
}

val run_coalescing : Config.t -> ?mapped:int -> unit -> coalescing_point list

val print_tracking : Format.formatter -> tracking_point list -> unit
val print_coalescing : Format.formatter -> coalescing_point list -> unit
