(** Appendix A reproductions: Tables 1, 2 and 3. *)

val print_table1 :
  Format.formatter -> Latency_exp.result list -> Throughput_exp.result list -> unit
(** Absolute E2E latency, invoker latency and throughput for BASE, GH,
    GH_NOP, FORK and FAASM on every benchmark. *)

val print_table2 :
  Format.formatter -> Latency_exp.result list -> Throughput_exp.result list -> unit
(** Overheads relative to BASE (E2E latency % and throughput %), plus the
    paper's reference GH overheads for comparison. *)

val print_table3 :
  Format.formatter ->
  Latency_exp.result list ->
  Throughput_exp.result list ->
  Breakdown_exp.result list ->
  unit
(** BASE vs GH invoker latency and throughput against restoration time,
    address-space size and restored pages; sorted by restoration time,
    with the paper's columns alongside. *)
