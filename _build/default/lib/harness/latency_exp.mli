(** The latency experiment (§5.3, Fig. 4; Table 1's latency columns).

    Low-load closed loop: requests are submitted one at a time with enough
    think time for off-critical-path restoration to finish, so latencies
    reflect only in-function overheads. The invoker latency is the
    strategy's on-path time; the end-to-end latency adds a sampled platform
    overhead (§5.1's distributed OpenWhisk deployment). *)

type measurement = {
  strategy : Gh_isolation.Registry.id;
  invoker : Gh_sim.Stats.summary;  (** ms *)
  e2e : Gh_sim.Stats.summary;  (** ms *)
}

type result = {
  entry : Gh_workloads.Catalog.entry;
  measurements : measurement list;  (** Supported strategies only. *)
}

val run_one :
  Config.t -> Gh_isolation.Registry.id -> Gh_workloads.Catalog.entry -> measurement option
(** [None] when the benchmark/strategy combination is unsupported. *)

val run :
  ?strategies:Gh_isolation.Registry.id list ->
  Config.t ->
  Gh_workloads.Catalog.entry list ->
  result list
(** Defaults to the paper's five configurations
    (BASE, GH, GH_NOP, FORK, FAASM). *)

val find : result -> Gh_isolation.Registry.id -> measurement option

val relative_to_base : result -> (Gh_isolation.Registry.id * float * float) list
(** Per strategy: (id, e2e ratio vs BASE, invoker ratio vs BASE) — the
    normalized heights of Fig. 4's bars. *)

val print_fig4 : Format.formatter -> result list -> unit
(** Fig. 4 (a)–(f): relative E2E and invoker latency per suite. *)
