lib/kernel/cost.mli: Format
