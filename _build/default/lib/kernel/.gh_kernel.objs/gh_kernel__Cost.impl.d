lib/kernel/cost.ml: Format
