module Account = Gh_sim.Account
module Process = Gh_proc.Process

type mode = Eager | Incremental

type t = {
  proc : Process.t;
  acct : Account.t;
  paranoid : bool;
  mode : mode;
  mutable snap : Snapshot.t option;
  mutable incr : Incremental.t option;
  mutable clean : bool;
  mutable restores : int;
}

let create ?(paranoid = false) ?(mode = Eager) proc =
  if paranoid && mode = Incremental then
    invalid_arg "Manager.create: paranoid verification requires eager snapshots";
  {
    proc;
    acct = Account.create ();
    paranoid;
    mode;
    snap = None;
    incr = None;
    clean = false;
    restores = 0;
  }

let process t = t.proc
let account t = t.acct

let take_snapshot t =
  (match t.snap with
  | Some _ -> failwith "Groundhog manager: snapshot already taken"
  | None -> ());
  let snap =
    match t.mode with
    | Eager -> Snapshot.capture t.acct t.proc
    | Incremental ->
        let incr = Incremental.capture t.acct t.proc in
        t.incr <- Some incr;
        Incremental.snapshot incr
  in
  t.snap <- Some snap;
  t.clean <- true;
  snap.Snapshot.capture_ns

let snapshot t = t.snap
let mark_dirty t = t.clean <- false
let is_clean t = t.clean

let restore t =
  match t.snap with
  | None -> failwith "Groundhog manager: restore before snapshot"
  | Some snap ->
      let breakdown = Restore.run t.acct snap t.proc in
      if t.paranoid then begin
        match Verify.state_matches snap t.proc with
        | Ok () -> ()
        | Error m -> failwith (Format.asprintf "restore verification failed: %a" Verify.pp_mismatch m)
      end;
      t.clean <- true;
      t.restores <- t.restores + 1;
      breakdown

let skip_restore t = t.clean <- true
let restores_performed t = t.restores
let total_manager_ns t = Account.total t.acct

let buffer_pages t =
  match (t.mode, t.incr, t.snap) with
  | Incremental, Some incr, _ -> Incremental.saved_pages incr
  | _, _, Some snap -> snap.Snapshot.present_pages
  | _ -> 0
