lib/core/incremental.mli: Breakdown Gh_proc Gh_sim Snapshot
