lib/core/snapshot.ml: Array Format Gh_kernel Gh_mem Gh_proc Gh_sim List
