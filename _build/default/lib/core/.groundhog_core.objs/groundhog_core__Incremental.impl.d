lib/core/incremental.ml: Array Gh_kernel Gh_mem Gh_proc Gh_sim Hashtbl List Restore Snapshot
