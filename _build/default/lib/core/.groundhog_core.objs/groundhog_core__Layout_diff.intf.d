lib/core/layout_diff.mli: Gh_kernel Gh_proc Gh_sim Snapshot
