lib/core/breakdown.mli: Format
