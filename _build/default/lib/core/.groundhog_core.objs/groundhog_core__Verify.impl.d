lib/core/verify.ml: Array Format Gh_mem Gh_proc List Printf Snapshot
