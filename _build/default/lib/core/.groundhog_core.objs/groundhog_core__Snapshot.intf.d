lib/core/snapshot.mli: Format Gh_mem Gh_proc Gh_sim
