lib/core/restore.mli: Breakdown Gh_proc Gh_sim Snapshot
