lib/core/manager.mli: Breakdown Gh_proc Gh_sim Snapshot
