lib/core/restore.ml: Array Breakdown Gh_kernel Gh_mem Gh_proc Gh_sim Hashtbl Layout_diff List Option Snapshot
