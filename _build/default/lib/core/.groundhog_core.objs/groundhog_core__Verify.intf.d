lib/core/verify.mli: Format Gh_proc Snapshot
