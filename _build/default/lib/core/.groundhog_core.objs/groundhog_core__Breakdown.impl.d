lib/core/breakdown.ml: Format Gh_sim List
