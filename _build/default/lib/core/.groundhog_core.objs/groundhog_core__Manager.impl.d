lib/core/manager.ml: Format Gh_proc Gh_sim Incremental Restore Snapshot Verify
