lib/core/layout_diff.ml: Gh_kernel Gh_mem Gh_proc Gh_sim Hashtbl List Snapshot
