(** The Groundhog manager (§4, Fig. 2): the per-container process that
    interposes between the FaaS platform and the function process.

    Lifecycle: the manager is created around a freshly exec'd function
    process; after the runtime has served a dummy request (triggering lazy
    paging, class loading and global-state initialization), the manager
    takes the snapshot; thereafter each completed invocation is followed by
    a {!restore} before the next request may be forwarded ({!is_clean}
    gates request delivery — Groundhog buffers inputs until the process is
    clean, §4.5).

    The manager's CPU time accumulates on its own {!account}: this work is
    off the request's critical path, which is why it only shows up in
    throughput (high-load) measurements. *)

type t

type mode =
  | Eager  (** Copy every present page at snapshot time (the paper's
               evaluated configuration). *)
  | Incremental
      (** §5.5's optimization: arm copy-on-write at snapshot time and
          salvage originals on first modification — manager memory then
          grows with the pages ever modified, at the price of a one-time
          on-critical-path CoW fault per unique page. *)

val create : ?paranoid:bool -> ?mode:mode -> Gh_proc.Process.t -> t
(** [paranoid] makes every {!restore} verify the result against the
    snapshot and raise [Failure] on any mismatch (testing aid; off by
    default; incompatible with [Incremental]). [mode] defaults to
    [Eager]. *)

val process : t -> Gh_proc.Process.t
val account : t -> Gh_sim.Account.t

val take_snapshot : t -> Gh_sim.Time_ns.t
(** Capture the clean state; returns the capture cost. Must be called
    exactly once, before the first {!restore}.
    @raise Failure if a snapshot was already taken. *)

val snapshot : t -> Snapshot.t option

val mark_dirty : t -> unit
(** Note that a request reached the function process: the container is no
    longer clean and the next request must wait for a restore. *)

val is_clean : t -> bool
(** True when the process provably holds no residue of a previous request:
    right after the snapshot, or right after a restore. *)

val restore : t -> Breakdown.t
(** Revert to the snapshot (§4.4). @raise Failure if no snapshot exists. *)

val skip_restore : t -> unit
(** The same-security-domain optimization (§4.4): consecutive requests from
    mutually trusting callers may skip the rollback. Marks the container
    clean {e without} restoring — the caller is responsible for the policy
    decision (see [Gh_isolation.Policy]). *)

val restores_performed : t -> int

val total_manager_ns : t -> Gh_sim.Time_ns.t
(** All manager CPU time so far: snapshot + every restore. *)

val buffer_pages : t -> int
(** Pages of function memory held in the manager: the whole present
    footprint for [Eager], only the salvaged pages for [Incremental]. *)
