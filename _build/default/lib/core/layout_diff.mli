(** Diffing the current memory layout against the snapshot (§4.4).

    The manager compares /proc/pid/maps against the layout recorded in the
    snapshot to identify regions that appeared, disappeared, changed size,
    or changed protection during the invocation. The comparison is by
    address range, as the real system's must be. *)

type change =
  | Added of Gh_proc.Procfs.maps_entry
      (** Mapped now, absent from the snapshot: must be munmapped. *)
  | Removed of Snapshot.region
      (** In the snapshot, unmapped now: must be re-mapped and refilled. *)
  | Resized of { now : Gh_proc.Procfs.maps_entry; snap : Snapshot.region }
      (** Same base address, different length: brk for the heap,
          mremap otherwise. *)
  | Prot_changed of { now : Gh_proc.Procfs.maps_entry; snap : Snapshot.region }

val diff :
  Gh_sim.Account.t ->
  cost:Gh_kernel.Cost.t ->
  Snapshot.t ->
  Gh_proc.Procfs.maps_entry list ->
  change list
(** Charged per VMA compared. A region that merely moved appears as one
    [Added] plus one [Removed], which the reversal handles naturally. *)

val count : change list -> int * int * int * int
(** (added, removed, resized, prot-changed). *)
