(** Bit-for-bit comparison of a process against a snapshot.

    This is the security property: a restored process must be
    indistinguishable from the snapshotted one, so no data written by the
    previous request can survive. Used by the test suite and by the
    manager's optional paranoid mode. *)

type mismatch = {
  what : string;  (** e.g. ["page content"], ["brk"], ["region missing"]. *)
  where : string;  (** Address / tid context for diagnostics. *)
}

val state_matches : Snapshot.t -> Gh_proc.Process.t -> (unit, mismatch) result
(** [Ok ()] iff layout (regions, sizes, protections), brk, every present
    bit, every page's content, the thread set, and every register file all
    equal the snapshot. Stops at the first mismatch. *)

val pp_mismatch : Format.formatter -> mismatch -> unit
