module Account = Gh_sim.Account
module Cost = Gh_kernel.Cost
module Procfs = Gh_proc.Procfs

type change =
  | Added of Procfs.maps_entry
  | Removed of Snapshot.region
  | Resized of { now : Procfs.maps_entry; snap : Snapshot.region }
  | Prot_changed of { now : Procfs.maps_entry; snap : Snapshot.region }

let diff acct ~cost (snapshot : Snapshot.t) (maps : Procfs.maps_entry list) =
  let n_snap = List.length snapshot.Snapshot.regions in
  let n_now = List.length maps in
  Account.charge acct (max n_snap n_now * cost.Cost.layout_diff_per_vma_ns);
  let snap_by_start = Hashtbl.create 64 in
  List.iter
    (fun (r : Snapshot.region) -> Hashtbl.replace snap_by_start r.Snapshot.start_addr r)
    snapshot.Snapshot.regions;
  let changes = ref [] in
  let matched = Hashtbl.create 64 in
  List.iter
    (fun (e : Procfs.maps_entry) ->
      match Hashtbl.find_opt snap_by_start e.Procfs.start_addr with
      | None -> changes := Added e :: !changes
      | Some snap ->
          Hashtbl.replace matched snap.Snapshot.start_addr ();
          if e.Procfs.n_pages <> snap.Snapshot.n_pages then
            changes := Resized { now = e; snap } :: !changes;
          if not (Gh_mem.Prot.equal e.Procfs.prot snap.Snapshot.prot) then
            changes := Prot_changed { now = e; snap } :: !changes)
    maps;
  List.iter
    (fun (r : Snapshot.region) ->
      if not (Hashtbl.mem matched r.Snapshot.start_addr) then changes := Removed r :: !changes)
    snapshot.Snapshot.regions;
  List.rev !changes

let count changes =
  List.fold_left
    (fun (a, rm, rs, pc) -> function
      | Added _ -> (a + 1, rm, rs, pc)
      | Removed _ -> (a, rm + 1, rs, pc)
      | Resized _ -> (a, rm, rs + 1, pc)
      | Prot_changed _ -> (a, rm, rs, pc + 1))
    (0, 0, 0, 0) changes
