type t = { id : int; principal : Principal.t; nonce : int; input_kb : int }

let make ~id ~principal ?(input_kb = 4) () = { id; principal; nonce = id; input_kb }
let secret t = Principal.secret_word t.principal ~nonce:t.nonce
let pp ppf t = Format.fprintf ppf "req#%d from %a" t.id Principal.pp t.principal
