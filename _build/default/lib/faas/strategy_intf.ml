type invocation = {
  on_path_ns : Gh_sim.Time_ns.t;
  post_ns : Gh_sim.Time_ns.t;
  response : Function_model.response;
  breakdown : Groundhog_core.Breakdown.t option;
  isolated : bool;
}

type t = {
  name : string;
  init_ns : Gh_sim.Time_ns.t;
  invoke : Request.t -> invocation;
  snapshot_pages : unit -> int;
  describe : unit -> string;
}

let no_post inv = inv.post_ns = 0
