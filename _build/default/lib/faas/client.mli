(** Load generators.

    {!closed_loop} reproduces the latency workload (§5.3): one request in
    flight at a time, with a think-time gap that lets off-critical-path
    restoration finish — latency then reflects only in-function overheads.

    {!saturate} reproduces the throughput workload: a fixed window of
    in-flight requests keeps every container busy, so deferred restoration
    work eats into throughput. *)

type results = {
  e2e_ms : float array;  (** One entry per completed request. *)
  invoker_ms : float array;
  duration_s : float;  (** Simulated time from first submit to last reply. *)
  completed : int;
}

val throughput_rps : results -> float

val closed_loop :
  Gh_sim.Engine.t ->
  Controller.t ->
  n_requests:int ->
  think_ns:Gh_sim.Time_ns.t ->
  principals:Principal.t array ->
  input_kb:int ->
  results
(** Submit [n_requests] one at a time, cycling through [principals]. Runs
    the engine to completion. *)

val saturate :
  Gh_sim.Engine.t ->
  Controller.t ->
  n_requests:int ->
  window:int ->
  principals:Principal.t array ->
  input_kb:int ->
  results
(** Keep [window] requests in flight until [n_requests] complete. *)

val open_loop :
  Gh_sim.Engine.t ->
  Controller.t ->
  rng:Gh_sim.Rng.t ->
  rate_rps:float ->
  n_requests:int ->
  principals:Principal.t array ->
  input_kb:int ->
  results
(** Poisson arrivals at [rate_rps], independent of completions — the
    workload for latency-vs-offered-load curves: under low load Groundhog's
    restoration hides between arrivals; near saturation it queues requests
    and latency diverges earlier than BASE's. *)
