lib/faas/services.mli: Format Principal
