lib/faas/client.ml: Array Controller Gh_sim List Request
