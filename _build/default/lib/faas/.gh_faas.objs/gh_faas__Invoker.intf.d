lib/faas/invoker.mli: Container Gh_sim Request Strategy_intf
