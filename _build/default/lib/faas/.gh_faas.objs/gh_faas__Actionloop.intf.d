lib/faas/actionloop.mli: Gh_sim Request Runtime
