lib/faas/node.mli: Function_model Gh_sim Request Strategy_intf
