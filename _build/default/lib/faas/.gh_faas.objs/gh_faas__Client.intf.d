lib/faas/client.mli: Controller Gh_sim Principal
