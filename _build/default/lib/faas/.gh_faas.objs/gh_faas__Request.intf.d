lib/faas/request.mli: Format Principal
