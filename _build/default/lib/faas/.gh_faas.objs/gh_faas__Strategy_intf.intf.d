lib/faas/strategy_intf.mli: Function_model Gh_sim Groundhog_core Request
