lib/faas/container.ml: Format Gh_sim Printf Request Strategy_intf
