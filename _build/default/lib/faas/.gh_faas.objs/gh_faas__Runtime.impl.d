lib/faas/runtime.ml: Format Gh_sim
