lib/faas/strategy_intf.ml: Function_model Gh_sim Groundhog_core Request
