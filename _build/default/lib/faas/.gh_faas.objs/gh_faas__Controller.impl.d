lib/faas/controller.ml: Float Gh_sim Invoker Request Strategy_intf
