lib/faas/runtime.mli: Format Gh_sim
