lib/faas/invoker.ml: Array Container Gh_sim Queue Request Strategy_intf
