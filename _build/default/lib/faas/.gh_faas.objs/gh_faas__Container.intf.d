lib/faas/container.mli: Gh_sim Request Strategy_intf
