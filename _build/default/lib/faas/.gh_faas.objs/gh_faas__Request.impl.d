lib/faas/request.ml: Format Principal
