lib/faas/controller.mli: Gh_sim Invoker Request Strategy_intf
