lib/faas/function_model.mli: Gh_kernel Gh_proc Gh_sim Principal Request Runtime Services
