lib/faas/actionloop.ml: Gh_sim List Queue Request Runtime
