lib/faas/openwhisk.ml: Controller Gh_sim Invoker Services
