lib/faas/services.ml: Format Hashtbl Principal
