lib/faas/principal.ml: Format
