lib/faas/function_model.ml: Array Float Fun Gh_kernel Gh_mem Gh_proc Gh_sim Hashtbl List Principal Printf Request Result Runtime Services
