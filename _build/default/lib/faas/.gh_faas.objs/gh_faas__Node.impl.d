lib/faas/node.ml: Container Function_model Gh_sim Hashtbl Invoker List Printf Queue Request Strategy_intf
