lib/faas/principal.mli: Format
