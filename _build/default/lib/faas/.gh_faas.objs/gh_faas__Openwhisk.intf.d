lib/faas/openwhisk.mli: Controller Gh_sim Invoker Services Strategy_intf
