(** The invoker: the platform component that hosts containers on one VM and
    dispatches requests to them (§5.1's deployment isolates it on its own
    VM; Groundhog lives inside its containers).

    One container per core, as in the paper's throughput setup. Requests
    queue FIFO when every container is busy or restoring. *)

type t

val create :
  ?prestarted:bool ->
  ?trace:Gh_sim.Trace.t ->
  Gh_sim.Engine.t ->
  n_containers:int ->
  dispatch_ns:Gh_sim.Time_ns.t ->
  make_strategy:(int -> Strategy_intf.t) ->
  t
(** [make_strategy i] builds container [i]'s strategy (its own process).
    With [prestarted = false], each container pays its strategy's one-time
    initialization (runtime boot + warm-up + snapshot) on the simulated
    timeline before serving its first request — container cold starts. *)

val submit :
  t -> Request.t -> on_response:(Request.t -> Strategy_intf.invocation -> unit) -> unit
(** Dispatch to an idle container (after the dispatch overhead) or queue. *)

val with_cold_start : Strategy_intf.t -> Strategy_intf.t
(** Wrap a strategy so its one-time initialization lands on its first
    request's critical path (used by cold-started containers). *)

val queue_length : t -> int
val completed : t -> int
val containers : t -> Container.t array
val init_ns : t -> Gh_sim.Time_ns.t
(** Total one-time initialization cost across containers. *)
