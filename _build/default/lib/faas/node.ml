module Engine = Gh_sim.Engine
module Time_ns = Gh_sim.Time_ns
module Trace = Gh_sim.Trace

type config = {
  total_cores : int;
  memory_mb : int;
  idle_timeout : Time_ns.t;
  dispatch_ns : Time_ns.t;
}

let default_config =
  {
    total_cores = 4;
    memory_mb = 8_192;
    idle_timeout = Time_ns.of_sec 60.0;
    dispatch_ns = Time_ns.of_us 800.0;
  }

type slot = {
  container : Container.t;
  memory_mb : int;
  mutable epoch : int;  (* bumped on every dispatch; guards eviction *)
  mutable alive : bool;
}

type pending = { req : Request.t; submitted : Time_ns.t }

type fn_stats = {
  fn_name : string;
  completed : int;
  cold_starts : int;
  evictions : int;
  queue_len : int;
  containers : int;
  e2e_ms : float list;
}

type pool = {
  fn_name : string;
  spec : Function_model.spec;
  mutable slots : slot list;
  queue : pending Queue.t;
  mutable completed : int;
  mutable cold_starts : int;
  mutable evictions : int;
  mutable e2e_ms : float list;
}

type t = {
  engine : Engine.t;
  config : config;
  trace : Trace.t option;
  make_strategy : string -> Function_model.spec -> Strategy_intf.t;
  pools : (string, pool) Hashtbl.t;
  mutable used_mb : int;
  mutable high_water_mb : int;
  mutable busy : int;
  mutable next_container_id : int;
}

let create ?trace engine config ~make_strategy =
  {
    engine;
    config;
    trace;
    make_strategy;
    pools = Hashtbl.create 16;
    used_mb = 0;
    high_water_mb = 0;
    busy = 0;
    next_container_id = 0;
  }

let trace_emit t what detail =
  match t.trace with
  | Some tr -> Trace.emit tr ~at:(Engine.now t.engine) ~category:"node" ~what detail
  | None -> ()

let register t ~name spec =
  if Hashtbl.mem t.pools name then invalid_arg "Node.register: duplicate function";
  Hashtbl.replace t.pools name
    {
      fn_name = name;
      spec;
      slots = [];
      queue = Queue.create ();
      completed = 0;
      cold_starts = 0;
      evictions = 0;
      e2e_ms = [];
    }

(* Memory a container of this function will pin: the process footprint plus
   whatever the freshly built strategy's manager buffers (the full snapshot
   for eager Groundhog, ~nothing for BASE or incremental mode). *)
let slot_memory_mb spec (strategy : Strategy_intf.t) =
  let pages = spec.Function_model.mapped_pages + strategy.Strategy_intf.snapshot_pages () in
  max 1 (pages * 4096 / 1048576)

let rec dispatch t pool slot pending =
  slot.epoch <- slot.epoch + 1;
  t.busy <- t.busy + 1;
  Container.submit ~dispatch_ns:t.config.dispatch_ns slot.container pending.req
    ~on_response:(fun _ _ ->
      pool.completed <- pool.completed + 1;
      pool.e2e_ms <-
        Time_ns.to_ms (Engine.now t.engine - pending.submitted) :: pool.e2e_ms)

(* A container just went idle: feed it, retarget the freed core, or start
   the eviction clock. *)
and on_slot_idle t pool slot =
  t.busy <- t.busy - 1;
  match Queue.take_opt pool.queue with
  | Some pending when t.busy < t.config.total_cores -> dispatch t pool slot pending
  | Some pending ->
      (* No core after all (shouldn't happen: one just freed) — requeue. *)
      Queue.push pending pool.queue
  | None ->
      pump_other_pools t;
      let epoch = slot.epoch in
      Engine.schedule t.engine ~after:t.config.idle_timeout (fun () ->
          if slot.alive && slot.epoch = epoch && Container.is_idle slot.container then
            evict t pool slot)

and evict t pool slot =
  slot.alive <- false;
  pool.slots <- List.filter (fun s -> s != slot) pool.slots;
  pool.evictions <- pool.evictions + 1;
  t.used_mb <- t.used_mb - slot.memory_mb;
  trace_emit t "evict" (Printf.sprintf "%s (-%d MB)" pool.fn_name slot.memory_mb);
  (* Freed memory may unblock a queued cold start elsewhere. *)
  pump_other_pools t

(* Create a new container for [pool] if a core and memory allow; the new
   container pays its initialization on its first request. *)
and try_cold_start t pool =
  if t.busy >= t.config.total_cores then None
  else begin
    let strategy = t.make_strategy pool.fn_name pool.spec in
    let memory_mb = slot_memory_mb pool.spec strategy in
    if t.used_mb + memory_mb > t.config.memory_mb then None
    else begin
      let strategy = Invoker.with_cold_start strategy in
      let id = t.next_container_id in
      t.next_container_id <- id + 1;
      let container = Container.create ?trace:t.trace t.engine ~id strategy in
      let slot = { container; memory_mb; epoch = 0; alive = true } in
      Container.set_on_idle container (fun _ -> on_slot_idle t pool slot);
      pool.slots <- slot :: pool.slots;
      pool.cold_starts <- pool.cold_starts + 1;
      t.used_mb <- t.used_mb + memory_mb;
      t.high_water_mb <- max t.high_water_mb t.used_mb;
      trace_emit t "cold-start" (Printf.sprintf "%s (+%d MB)" pool.fn_name memory_mb);
      Some slot
    end
  end

and pump_pool t pool =
  let progress = ref true in
  while !progress && not (Queue.is_empty pool.queue) do
    progress := false;
    let idle =
      List.find_opt (fun s -> s.alive && Container.is_idle s.container) pool.slots
    in
    match idle with
    | Some slot when t.busy < t.config.total_cores ->
        dispatch t pool slot (Queue.take pool.queue);
        progress := true
    | Some _ -> ()
    | None -> begin
        match try_cold_start t pool with
        | Some slot ->
            dispatch t pool slot (Queue.take pool.queue);
            progress := true
        | None -> ()
      end
  done

and pump_other_pools t = Hashtbl.iter (fun _ pool -> pump_pool t pool) t.pools

let submit t ~name req =
  let pool =
    match Hashtbl.find_opt t.pools name with
    | Some p -> p
    | None -> raise Not_found
  in
  Queue.push { req; submitted = Engine.now t.engine } pool.queue;
  pump_pool t pool

let stats t =
  Hashtbl.fold
    (fun _ pool acc ->
      ({
         fn_name = pool.fn_name;
         completed = pool.completed;
         cold_starts = pool.cold_starts;
         evictions = pool.evictions;
         queue_len = Queue.length pool.queue;
         containers = List.length pool.slots;
         e2e_ms = pool.e2e_ms;
       }
        : fn_stats)
      :: acc)
    t.pools []
  |> List.sort (fun (a : fn_stats) (b : fn_stats) -> compare a.fn_name b.fn_name)

let memory_used_mb t = t.used_mb
let memory_high_water_mb t = t.high_water_mb
let cores_busy t = t.busy
let total_cold_starts t = Hashtbl.fold (fun _ p n -> n + p.cold_starts) t.pools 0
let total_evictions t = Hashtbl.fold (fun _ p n -> n + p.evictions) t.pools 0
