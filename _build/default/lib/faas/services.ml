type t = {
  store : (string, int) Hashtbl.t;
  acl : (string * int, unit) Hashtbl.t;  (* (key, principal id) *)
}

type error = Access_denied of { key : string; principal : Principal.t }

let create () = { store = Hashtbl.create 64; acl = Hashtbl.create 64 }
let grant t p ~key = Hashtbl.replace t.acl (key, p.Principal.id) ()
let revoke t p ~key = Hashtbl.remove t.acl (key, p.Principal.id)
let allowed t p ~key = Hashtbl.mem t.acl (key, p.Principal.id)

let put t p ~key v =
  if allowed t p ~key then begin
    Hashtbl.replace t.store key v;
    Ok ()
  end
  else Error (Access_denied { key; principal = p })

let get t p ~key =
  if allowed t p ~key then Ok (Hashtbl.find_opt t.store key)
  else Error (Access_denied { key; principal = p })

let pp_error ppf (Access_denied { key; principal }) =
  Format.fprintf ppf "access denied: %a on key %S" Principal.pp principal key
