(** Platform services: an access-controlled key-value store (§2).

    Functions are expected to externalize all persistent state to services
    like this one, and access is checked against the {e activation's}
    per-caller credentials — the tenant's tool for controlling information
    flow among differently privileged callers of the same function. *)

type t

type error = Access_denied of { key : string; principal : Principal.t }

val create : unit -> t

val grant : t -> Principal.t -> key:string -> unit
(** Allow [principal] to read and write [key]. *)

val revoke : t -> Principal.t -> key:string -> unit

val put : t -> Principal.t -> key:string -> int -> (unit, error) result
val get : t -> Principal.t -> key:string -> (int option, error) result

val pp_error : Format.formatter -> error -> unit
