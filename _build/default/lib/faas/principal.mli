(** Callers of functions — the security identities of the paper's threat
    model (§2, §3.3).

    Activations of the same function can run on behalf of differently
    privileged end-clients; sequential request isolation exists precisely
    so data from Alice's activation cannot reach Bob's. *)

type t = { id : int; name : string }

val make : id:int -> name:string -> t
val equal : t -> t -> bool

val secret_word : t -> nonce:int -> int
(** A per-principal, per-request data word standing in for private request
    data. Guaranteed non-zero and distinct across principals, so residue in
    page contents is attributable. *)

val owns_word : t -> int -> bool
(** Does this word carry [t]'s secret tag? *)

val pp : Format.formatter -> t -> unit
