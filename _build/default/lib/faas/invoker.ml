module Engine = Gh_sim.Engine

type pending = {
  req : Request.t;
  on_response : Request.t -> Strategy_intf.invocation -> unit;
}

type t = {
  engine : Engine.t;
  containers : Container.t array;
  queue : pending Queue.t;
  dispatch_ns : Gh_sim.Time_ns.t;
  init_ns : Gh_sim.Time_ns.t;
}

(* A cold container pays its one-time initialization (runtime boot,
   warm-up, snapshot) on the first request's critical path. *)
let with_cold_start (s : Strategy_intf.t) =
  let started = ref false in
  {
    s with
    Strategy_intf.invoke =
      (fun req ->
        let inv = s.Strategy_intf.invoke req in
        if !started then inv
        else begin
          started := true;
          {
            inv with
            Strategy_intf.on_path_ns =
              inv.Strategy_intf.on_path_ns + s.Strategy_intf.init_ns;
          }
        end);
  }

let create ?(prestarted = true) ?trace engine ~n_containers ~dispatch_ns ~make_strategy =
  if n_containers < 1 then invalid_arg "Invoker.create: need at least one container";
  let strategies = Array.init n_containers make_strategy in
  let strategies = if prestarted then strategies else Array.map with_cold_start strategies in
  let containers =
    Array.mapi (fun i strategy -> Container.create ?trace engine ~id:i strategy) strategies
  in
  let init_ns =
    Array.fold_left (fun n (s : Strategy_intf.t) -> n + s.Strategy_intf.init_ns) 0 strategies
  in
  let t = { engine; containers; queue = Queue.create (); dispatch_ns; init_ns } in
  Array.iter
    (fun c ->
      Container.set_on_idle c (fun c ->
          match Queue.take_opt t.queue with
          | Some { req; on_response } ->
              Container.submit ~dispatch_ns:t.dispatch_ns c req ~on_response
          | None -> ()))
    containers;
  t

let find_idle t = Array.find_opt Container.is_idle t.containers

let submit t req ~on_response =
  match find_idle t with
  | Some c -> Container.submit ~dispatch_ns:t.dispatch_ns c req ~on_response
  | None -> Queue.add { req; on_response } t.queue

let queue_length t = Queue.length t.queue
let completed t = Array.fold_left (fun n c -> n + Container.completed c) 0 t.containers
let containers t = t.containers
let init_ns t = t.init_ns
