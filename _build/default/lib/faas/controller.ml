module Engine = Gh_sim.Engine
module Rng = Gh_sim.Rng
module Time_ns = Gh_sim.Time_ns

type overhead_model = {
  base_ns : Time_ns.t;
  jitter_mu_ns : float;
  jitter_sigma : float;
}

(* Calibrated against Appendix A: e2e − invoker ≈ 28–43 ms. *)
let default_overhead =
  { base_ns = Time_ns.of_ms 24.0; jitter_mu_ns = Float.log 8.0e6; jitter_sigma = 0.65 }

let sample_overhead m rng =
  m.base_ns + int_of_float (Rng.lognormal rng ~mu:m.jitter_mu_ns ~sigma:m.jitter_sigma)

type t = {
  engine : Engine.t;
  rng : Rng.t;
  invoker : Invoker.t;
  overhead : overhead_model;
  mutable completions : int;
}

type completion = {
  request : Request.t;
  invocation : Strategy_intf.invocation;
  e2e_ns : Time_ns.t;
  invoker_ns : Time_ns.t;
}

let create ?(overhead = default_overhead) engine ~rng invoker =
  { engine; rng = Rng.split rng; invoker; overhead; completions = 0 }

let submit t req ~on_complete =
  let t0 = Engine.now t.engine in
  (* Authentication, routing and the trip to the invoker VM. *)
  let front = sample_overhead t.overhead t.rng * 6 / 10 in
  let back = sample_overhead t.overhead t.rng * 4 / 10 in
  Engine.schedule t.engine ~after:front (fun () ->
      Invoker.submit t.invoker req ~on_response:(fun request invocation ->
          Engine.schedule t.engine ~after:back (fun () ->
              t.completions <- t.completions + 1;
              on_complete
                {
                  request;
                  invocation;
                  e2e_ns = Engine.now t.engine - t0;
                  invoker_ns = invocation.Strategy_intf.on_path_ns;
                })))

let completions t = t.completions
