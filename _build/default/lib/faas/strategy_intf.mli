(** The contract between the platform's containers and a request-isolation
    strategy.

    The container does not know how isolation is implemented; it sees a
    {!t} with a one-time initialization cost and an [invoke] that reports,
    for each request, which costs sat on the request's critical path
    ([on_path_ns]) and which work must finish before the {e next} request
    may enter the container ([post_ns], e.g. Groundhog's restoration).
    Under low load [post_ns] overlaps idle time and is invisible in
    latency; under saturation it eats into throughput — exactly the split
    the paper's low-load / high-load workloads expose (§5.2). *)

type invocation = {
  on_path_ns : Gh_sim.Time_ns.t;
      (** Function execution incl. in-function isolation overheads (page
          faults, proxying). Determines invoker-measured latency. *)
  post_ns : Gh_sim.Time_ns.t;
      (** Off-critical-path work (restore / reset / reap) occupying the
          container's core before it can accept the next request. *)
  response : Function_model.response;
  breakdown : Groundhog_core.Breakdown.t option;
      (** Restoration breakdown, for strategies that restore. *)
  isolated : bool;
      (** Did the strategy guarantee the next request sees a clean state? *)
}

type t = {
  name : string;
  init_ns : Gh_sim.Time_ns.t;
      (** One-time container initialization: runtime boot, warm-up dummy
          request, snapshot (where applicable). *)
  invoke : Request.t -> invocation;
  snapshot_pages : unit -> int;
      (** Pages held in the manager's snapshot buffer (0 when the strategy
          keeps none). *)
  describe : unit -> string;
}

val no_post : invocation -> bool
(** True when the invocation leaves no deferred work. *)
