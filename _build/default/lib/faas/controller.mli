(** The platform front door: authentication, routing, result handling.

    Adds the end-to-end overhead that is {e not} the invoker's: the paper's
    E2E latencies exceed invoker latencies by roughly 28–43 ms of platform
    machinery, which dilutes Groundhog's relative overhead in Fig. 4
    (a/c/e). The overhead model reproduces that distribution. *)

type overhead_model = {
  base_ns : Gh_sim.Time_ns.t;  (** Deterministic floor of platform work. *)
  jitter_mu_ns : float;  (** Median of the lognormal jitter component. *)
  jitter_sigma : float;
}

val default_overhead : overhead_model

val sample_overhead : overhead_model -> Gh_sim.Rng.t -> Gh_sim.Time_ns.t

type t

type completion = {
  request : Request.t;
  invocation : Strategy_intf.invocation;
  e2e_ns : Gh_sim.Time_ns.t;  (** Client-observed latency. *)
  invoker_ns : Gh_sim.Time_ns.t;  (** Invoker-measured latency (on-path). *)
}

val create :
  ?overhead:overhead_model -> Gh_sim.Engine.t -> rng:Gh_sim.Rng.t -> Invoker.t -> t

val submit : t -> Request.t -> on_complete:(completion -> unit) -> unit
(** Accept a request at the endpoint now; the completion callback fires when
    the response has traversed the platform back to the client. *)

val completions : t -> int
