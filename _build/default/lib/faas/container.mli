(** A function container in the discrete-event platform simulation.

    Each container runs one isolation strategy instance, pinned to one core:
    it serves one request at a time ([Busy]) and then performs the
    strategy's deferred work ([Restoring]) before becoming [Idle] again.
    Requests never reach the function process while it is restoring —
    Groundhog's buffering rule (§4.5) — which the state machine enforces
    for every strategy uniformly. *)

type state = Idle | Busy | Restoring

type t

val create : ?trace:Gh_sim.Trace.t -> Gh_sim.Engine.t -> id:int -> Strategy_intf.t -> t
(** [trace] records serve/respond/restore/idle transitions. *)

val id : t -> int
val state : t -> state
val is_idle : t -> bool
val completed : t -> int
val strategy : t -> Strategy_intf.t

val set_on_idle : t -> (t -> unit) -> unit
(** Called (at simulated time) whenever the container becomes idle. *)

val submit :
  ?dispatch_ns:Gh_sim.Time_ns.t ->
  t ->
  Request.t ->
  on_response:(Request.t -> Strategy_intf.invocation -> unit) ->
  unit
(** Start serving a request now (claiming the container immediately; the
    optional dispatch overhead delays the work). The response callback
    fires after dispatch plus on-path time; the container goes idle only
    after the strategy's deferred work completes as well.
    @raise Invalid_argument if the container is not idle. *)
