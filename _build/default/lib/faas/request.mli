(** One function invocation request, as accepted at the platform's HTTP/S
    endpoint. *)

type t = {
  id : int;  (** Unique per experiment run. *)
  principal : Principal.t;  (** The authenticated caller. *)
  nonce : int;  (** Varies the request's private payload. *)
  input_kb : int;  (** Payload size; drives proxying costs. *)
}

val make : id:int -> principal:Principal.t -> ?input_kb:int -> unit -> t
(** [nonce] defaults to [id]; [input_kb] to 4. *)

val secret : t -> int
(** The private data word this request carries. *)

val pp : Format.formatter -> t -> unit
