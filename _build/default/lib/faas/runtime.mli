(** Language-runtime behaviour models: C, CPython, Node.js.

    Captures the per-language characteristics the evaluation turns on:
    thread count after initialization (fork-based isolation only works when
    this is 1), address-space composition (Node maps memory aggressively —
    huge page counts dominate its scan costs), layout churn per invocation
    (syscall-injection work during restore), startup and warm-up costs
    (cold starts, snapshot timing), proxying cost of the actionloop wrapper
    (Groundhog interposes on stdin/stdout), fork peculiarities, and
    Node.js's time-dependent GC interaction with restoration (§5.3.1). *)

type lang = C | Python | Nodejs

type t = {
  lang : lang;
  threads : int;
      (** Threads alive after runtime initialization. C and CPython
          function processes are single-threaded (which is why the paper
          can evaluate FORK on them); Node.js keeps a worker pool. *)
  text_pages : int;  (** Binary + shared libraries (and JIT code). *)
  data_pages : int;
  stack_pages : int;
  arena_count : int;  (** Anonymous mappings created at init. *)
  init_ns : Gh_sim.Time_ns.t;  (** exec + runtime boot (container cold start). *)
  warmup_factor : float;
      (** Dummy-request time as a multiple of a normal invocation (lazy
          class loading makes the first run slower, §4.1). *)
  layout_churn : int;  (** Persistent layout changes per invocation. *)
  dirty_chunk_pages : int;
      (** Typical contiguity of dirtied pages: C kernels write arrays in
          long runs; CPython scatters reference-count updates across small
          object pages, leaving short dirty runs that restore expensively
          per page. *)
  proxy_fixed_ns : int;
      (** Fixed per-request cost of interposing on the platform protocol
          (high for Node.js, whose single-process wrapper we had to
          refactor into an actionloop shape, §5.3.1). *)
  proxy_per_kb_ns : int;  (** Plus this much per payload KiB copied. *)
  restore_warmup_ns : int;
      (** On-path penalty of the first invocation after a restore: madvised
          pages refault, caches and TLBs are cold, runtime bookkeeping was
          reverted. Grows with runtime complexity. *)
  fork_extra_ns : Gh_sim.Time_ns.t;
      (** Runtime-specific atfork work (CPython arena bookkeeping). *)
  gc_time_dependent : bool;
      (** Node.js: restoration reverts GC bookkeeping, re-triggering
          collections whose cost shows up as extra dirtying and latency. *)
}

val for_lang : lang -> t
val lang_to_string : lang -> string
val lang_suffix : lang -> string
(** The paper's benchmark tag: ["(c)"], ["(p)"] or ["(n)"]. *)

val pp : Format.formatter -> t -> unit
