module Engine = Gh_sim.Engine
module Time_ns = Gh_sim.Time_ns

type results = {
  e2e_ms : float array;
  invoker_ms : float array;
  duration_s : float;
  completed : int;
}

let throughput_rps r = if r.duration_s <= 0.0 then 0.0 else float_of_int r.completed /. r.duration_s

type collector = {
  mutable e2e : float list;
  mutable invoker : float list;
  mutable done_ : int;
  mutable first_submit : Time_ns.t;
  mutable first_reply : Time_ns.t;
  mutable last_reply : Time_ns.t;
}

let new_collector () =
  {
    e2e = [];
    invoker = [];
    done_ = 0;
    first_submit = max_int;
    first_reply = max_int;
    last_reply = 0;
  }

let record c engine (completion : Controller.completion) =
  c.e2e <- Time_ns.to_ms completion.Controller.e2e_ns :: c.e2e;
  c.invoker <- Time_ns.to_ms completion.Controller.invoker_ns :: c.invoker;
  c.done_ <- c.done_ + 1;
  if c.first_reply = max_int then c.first_reply <- Engine.now engine;
  c.last_reply <- Engine.now engine

let finish ~steady c =
  (* Sustained rate (saturation): time the steady state from the first
     reply, excluding it from the count, so the pipeline fill does not
     bias short runs. Closed-loop runs report every completion. *)
  let steady = steady && c.done_ > 1 && c.first_reply < c.last_reply in
  let span, counted =
    if steady then (c.last_reply - c.first_reply, c.done_ - 1)
    else (c.last_reply - min c.first_submit c.last_reply, c.done_)
  in
  {
    e2e_ms = Array.of_list (List.rev c.e2e);
    invoker_ms = Array.of_list (List.rev c.invoker);
    duration_s = Time_ns.to_sec (max 0 span);
    completed = counted;
  }

let closed_loop engine controller ~n_requests ~think_ns ~principals ~input_kb =
  if Array.length principals = 0 then invalid_arg "Client.closed_loop: no principals";
  let c = new_collector () in
  let rec send i =
    if i < n_requests then begin
      if c.first_submit = max_int then c.first_submit <- Engine.now engine;
      let principal = principals.(i mod Array.length principals) in
      let req = Request.make ~id:(i + 1) ~principal ~input_kb () in
      Controller.submit controller req ~on_complete:(fun completion ->
          record c engine completion;
          Engine.schedule engine ~after:think_ns (fun () -> send (i + 1)))
    end
  in
  send 0;
  Engine.run_all engine;
  finish ~steady:false c

let open_loop engine controller ~rng ~rate_rps ~n_requests ~principals ~input_kb =
  if Array.length principals = 0 then invalid_arg "Client.open_loop: no principals";
  if rate_rps <= 0.0 then invalid_arg "Client.open_loop: non-positive rate";
  let c = new_collector () in
  let mean_gap_ns = 1.0e9 /. rate_rps in
  let rec arrive i =
    if i < n_requests then begin
      if c.first_submit = max_int then c.first_submit <- Engine.now engine;
      let principal = principals.(i mod Array.length principals) in
      let req = Request.make ~id:(i + 1) ~principal ~input_kb () in
      Controller.submit controller req ~on_complete:(record c engine);
      let gap = int_of_float (Gh_sim.Rng.exponential rng ~mean:mean_gap_ns) in
      Engine.schedule engine ~after:(max 1 gap) (fun () -> arrive (i + 1))
    end
  in
  arrive 0;
  Engine.run_all engine;
  finish ~steady:false c

let saturate engine controller ~n_requests ~window ~principals ~input_kb =
  if Array.length principals = 0 then invalid_arg "Client.saturate: no principals";
  if window < 1 then invalid_arg "Client.saturate: empty window";
  let c = new_collector () in
  let next_id = ref 0 in
  let rec send () =
    if !next_id < n_requests then begin
      if c.first_submit = max_int then c.first_submit <- Engine.now engine;
      let i = !next_id in
      incr next_id;
      let principal = principals.(i mod Array.length principals) in
      let req = Request.make ~id:(i + 1) ~principal ~input_kb () in
      Controller.submit controller req ~on_complete:(fun completion ->
          record c engine completion;
          send ())
    end
  in
  for _ = 1 to window do
    send ()
  done;
  Engine.run_all engine;
  finish ~steady:true c
