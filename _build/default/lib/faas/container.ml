module Engine = Gh_sim.Engine
module Trace = Gh_sim.Trace

type state = Idle | Busy | Restoring

type t = {
  id : int;
  strategy : Strategy_intf.t;
  engine : Engine.t;
  trace : Trace.t option;
  mutable state : state;
  mutable completed : int;
  mutable on_idle : t -> unit;
}

let create ?trace engine ~id strategy =
  { id; strategy; engine; trace; state = Idle; completed = 0; on_idle = ignore }

let trace_emit t ~what detail =
  match t.trace with
  | Some tr ->
      Trace.emitf tr ~at:(Engine.now t.engine) ~category:"container" ~what "c%d %s" t.id detail
  | None -> ()

let id t = t.id
let state t = t.state
let is_idle t = t.state = Idle
let completed t = t.completed
let strategy t = t.strategy
let set_on_idle t f = t.on_idle <- f

let become_idle t =
  t.state <- Idle;
  trace_emit t ~what:"idle" "";
  t.on_idle t

let submit ?(dispatch_ns = 0) t req ~on_response =
  if t.state <> Idle then invalid_arg "Container.submit: container busy";
  t.state <- Busy;
  trace_emit t ~what:"serve" (Format.asprintf "%a" Request.pp req);
  (* The strategy computes costs immediately (the simulated work is pure);
     the engine realizes them as elapsed simulated time. *)
  let inv = t.strategy.Strategy_intf.invoke req in
  Engine.schedule t.engine ~after:(dispatch_ns + inv.Strategy_intf.on_path_ns) (fun () ->
      t.completed <- t.completed + 1;
      trace_emit t ~what:"respond"
        (Printf.sprintf "req#%d isolated=%b" req.Request.id inv.Strategy_intf.isolated);
      on_response req inv;
      if inv.Strategy_intf.post_ns > 0 then begin
        t.state <- Restoring;
        trace_emit t ~what:"restore"
          (Printf.sprintf "%.2fms deferred" (Gh_sim.Time_ns.to_ms inv.Strategy_intf.post_ns));
        Engine.schedule t.engine ~after:inv.Strategy_intf.post_ns (fun () -> become_idle t)
      end
      else become_idle t)
