type lang = C | Python | Nodejs

type t = {
  lang : lang;
  threads : int;
  text_pages : int;
  data_pages : int;
  stack_pages : int;
  arena_count : int;
  init_ns : Gh_sim.Time_ns.t;
  warmup_factor : float;
  layout_churn : int;
  dirty_chunk_pages : int;
  proxy_fixed_ns : int;
  proxy_per_kb_ns : int;
  restore_warmup_ns : int;
  fork_extra_ns : Gh_sim.Time_ns.t;
  gc_time_dependent : bool;
}

let ms = Gh_sim.Time_ns.of_ms

let c_runtime =
  {
    lang = C;
    threads = 1;
    text_pages = 180;
    data_pages = 40;
    stack_pages = 34;
    arena_count = 2;
    init_ns = ms 55.0;
    warmup_factor = 1.15;
    layout_churn = 2;
    dirty_chunk_pages = 8;
    proxy_fixed_ns = 60_000;
    proxy_per_kb_ns = 1_500;
    restore_warmup_ns = 330_000;
    fork_extra_ns = 0;
    gc_time_dependent = false;
  }

let python_runtime =
  {
    lang = Python;
    threads = 1;
    text_pages = 900;
    data_pages = 220;
    stack_pages = 64;
    arena_count = 14;
    init_ns = ms 185.0;
    warmup_factor = 1.6;
    layout_churn = 7;
    dirty_chunk_pages = 3;
    proxy_fixed_ns = 90_000;
    proxy_per_kb_ns = 1_500;
    restore_warmup_ns = 950_000;
    fork_extra_ns = ms 2.2;
    gc_time_dependent = false;
  }

let node_runtime =
  {
    lang = Nodejs;
    threads = 6;
    text_pages = 2_600;
    data_pages = 700;
    stack_pages = 128;
    arena_count = 42;
    init_ns = ms 260.0;
    warmup_factor = 1.8;
    layout_churn = 24;
    dirty_chunk_pages = 8;
    proxy_fixed_ns = 700_000;
    proxy_per_kb_ns = 20_000;
    restore_warmup_ns = 1_700_000;
    fork_extra_ns = ms 4.0;
    gc_time_dependent = true;
  }

let for_lang = function C -> c_runtime | Python -> python_runtime | Nodejs -> node_runtime
let lang_to_string = function C -> "c" | Python -> "python" | Nodejs -> "nodejs"
let lang_suffix = function C -> "(c)" | Python -> "(p)" | Nodejs -> "(n)"

let pp ppf t =
  Format.fprintf ppf "%s: %d threads, %d arenas, churn=%d" (lang_to_string t.lang) t.threads
    t.arena_count t.layout_churn
