(** CPU register state of one thread.

    We model the user-visible register file as the instruction pointer, the
    stack pointer, and fourteen general-purpose registers — enough for the
    restore engine to demonstrate (and for tests to verify) that register
    state is captured and reverted exactly. *)

type t = { mutable rip : int; mutable rsp : int; gpr : int array }

val n_gpr : int

val create : unit -> t
(** All-zero register file. *)

val copy : t -> t
val assign : t -> from:t -> unit
val equal : t -> t -> bool

val scramble : t -> Gh_sim.Rng.t -> unit
(** Randomize the file — stands in for whatever the function computed. *)

val pp : Format.formatter -> t -> unit
