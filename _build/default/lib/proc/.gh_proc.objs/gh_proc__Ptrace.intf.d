lib/proc/ptrace.mli: Gh_mem Gh_sim Process Registers Thread
