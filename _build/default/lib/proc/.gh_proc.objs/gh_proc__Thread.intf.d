lib/proc/thread.mli: Format Registers
