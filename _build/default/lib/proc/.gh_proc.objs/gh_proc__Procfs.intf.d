lib/proc/procfs.mli: Gh_mem Gh_sim Process
