lib/proc/ptrace.ml: Array Gh_kernel Gh_mem Gh_sim Hashtbl List Process Registers Thread
