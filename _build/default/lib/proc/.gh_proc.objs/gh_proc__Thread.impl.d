lib/proc/thread.ml: Format Registers
