lib/proc/process.mli: Format Gh_kernel Gh_mem Gh_sim Thread
