lib/proc/registers.ml: Array Format Gh_sim
