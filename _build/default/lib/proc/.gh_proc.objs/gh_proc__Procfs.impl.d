lib/proc/procfs.ml: Gh_kernel Gh_mem Gh_sim List Process
