lib/proc/process.ml: Format Gh_kernel Gh_mem Gh_sim List Registers Thread
