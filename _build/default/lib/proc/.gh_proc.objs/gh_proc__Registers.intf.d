lib/proc/registers.mli: Format Gh_sim
