type state = Running | Stopped
type t = { tid : int; regs : Registers.t; mutable state : state }

let create ~tid = { tid; regs = Registers.create (); state = Running }

let pp ppf t =
  let st = match t.state with Running -> "R" | Stopped -> "T" in
  Format.fprintf ppf "tid=%d [%s] %a" t.tid st Registers.pp t.regs
