(** One thread of a simulated process. *)

type state = Running | Stopped  (** Stopped = held by a ptrace tracer. *)

type t = { tid : int; regs : Registers.t; mutable state : state }

val create : tid:int -> t
val pp : Format.formatter -> t -> unit
