type t = { mutable rip : int; mutable rsp : int; gpr : int array }

let n_gpr = 14
let create () = { rip = 0; rsp = 0; gpr = Array.make n_gpr 0 }
let copy t = { rip = t.rip; rsp = t.rsp; gpr = Array.copy t.gpr }

let assign t ~from =
  t.rip <- from.rip;
  t.rsp <- from.rsp;
  Array.blit from.gpr 0 t.gpr 0 n_gpr

let equal a b = a.rip = b.rip && a.rsp = b.rsp && a.gpr = b.gpr

let scramble t rng =
  t.rip <- Gh_sim.Rng.int rng max_int;
  t.rsp <- Gh_sim.Rng.int rng max_int;
  for i = 0 to n_gpr - 1 do
    t.gpr.(i) <- Gh_sim.Rng.int rng max_int
  done

let pp ppf t = Format.fprintf ppf "rip=%x rsp=%x gpr0=%x" t.rip t.rsp t.gpr.(0)
