(** Rollback policies: when may the restore be skipped? (§4.4)

    Groundhog restores after every request by default. As an optimization,
    consecutive requests from mutually trusting callers may share the
    container state without a rollback in between. *)

type t =
  | Always_isolate  (** The evaluated default: restore after every request. *)
  | Trust_same_principal
      (** Skip the rollback when the next caller is the same principal. *)
  | Trust_all  (** Never restore — equivalent to the GH_NOP configuration. *)

val requires_restore : t -> prev:Gh_faas.Request.t option -> next:Gh_faas.Request.t -> bool
(** Must the state be rolled back before [next] runs, given who ran last? *)

val to_string : t -> string
