module Account = Gh_sim.Account
module Rng = Gh_sim.Rng
module Fm = Gh_faas.Function_model
module Intf = Gh_faas.Strategy_intf
module Manager = Groundhog_core.Manager

let make ~rng spec =
  let inst = Fm.build spec in
  let rng = Rng.split rng in
  let init_acct = Account.create () in
  let _warm = Fm.warmup inst init_acct rng in
  Fm.mark_clean inst;
  let mgr = Manager.create (Fm.proc inst) in
  let snap_ns = Manager.take_snapshot mgr in
  let rt = Fm.runtime inst in
  let init_ns = rt.Gh_faas.Runtime.init_ns + Account.total init_acct + snap_ns in
  let loop = Gh_faas.Actionloop.create rt in
  let invoke req =
    let acct = Account.create () in
    (* Same interposition as full Groundhog; the single-domain container is
       always "clean" in the policy sense, so inputs flow immediately. *)
    ignore (Gh_faas.Actionloop.offer loop acct ~clean:true req);
    let response = Fm.invoke inst acct rng ~post_restore:false req in
    Manager.mark_dirty mgr;
    Gh_faas.Actionloop.return_output loop acct ~output_kb:response.Fm.output_kb;
    (* Restoration is skipped between same-domain requests — but a crashed
       process is rolled back: the snapshot doubles as crash recovery. *)
    let post_ns, breakdown =
      if response.Fm.crashed then begin
        let b = Manager.restore mgr in
        (b.Groundhog_core.Breakdown.total_ns, Some b)
      end
      else begin
        Manager.skip_restore mgr;
        (0, None)
      end
    in
    {
      Intf.on_path_ns = Account.total acct;
      post_ns;
      response;
      breakdown;
      isolated = false;
    }
  in
  {
    Intf.name = "gh-nop";
    init_ns;
    invoke;
    snapshot_pages =
      (fun () ->
        match Manager.snapshot mgr with
        | Some snap -> snap.Groundhog_core.Snapshot.present_pages
        | None -> 0);
    describe = (fun () -> "Groundhog without restoration (single security domain)");
  }
