type t = Always_isolate | Trust_same_principal | Trust_all

let requires_restore t ~prev ~next =
  match (t, prev) with
  | _, None -> false
  | Always_isolate, Some _ -> true
  | Trust_same_principal, Some p ->
      not (Gh_faas.Principal.equal p.Gh_faas.Request.principal next.Gh_faas.Request.principal)
  | Trust_all, Some _ -> false

let to_string = function
  | Always_isolate -> "always-isolate"
  | Trust_same_principal -> "trust-same-principal"
  | Trust_all -> "trust-all"
