lib/isolation/policy.ml: Gh_faas
