lib/isolation/fork_isolation.ml: Gh_faas Gh_proc Gh_sim Printf
