lib/isolation/fork_isolation.mli: Gh_faas Gh_sim
