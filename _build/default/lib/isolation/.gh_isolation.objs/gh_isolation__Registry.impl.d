lib/isolation/registry.ml: Base Coldstart Criu Faasm Fork_isolation Gh Gh_faas Gh_nop Printf String
