lib/isolation/registry.mli: Gh_faas Gh_sim
