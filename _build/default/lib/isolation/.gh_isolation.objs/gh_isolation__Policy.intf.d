lib/isolation/policy.mli: Gh_faas
