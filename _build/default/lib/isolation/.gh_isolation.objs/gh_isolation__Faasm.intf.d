lib/isolation/faasm.mli: Gh_faas Gh_sim
