lib/isolation/gh_nop.mli: Gh_faas Gh_sim
