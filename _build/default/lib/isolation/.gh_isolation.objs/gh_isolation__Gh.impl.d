lib/isolation/gh.ml: Gh_faas Gh_sim Groundhog_core Policy Printf
