lib/isolation/gh_nop.ml: Gh_faas Gh_sim Groundhog_core
