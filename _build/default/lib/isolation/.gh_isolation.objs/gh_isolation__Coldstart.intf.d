lib/isolation/coldstart.mli: Gh_faas Gh_sim
