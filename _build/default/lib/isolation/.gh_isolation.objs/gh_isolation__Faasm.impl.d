lib/isolation/faasm.ml: Gh_faas Gh_kernel Gh_mem Gh_proc Gh_sim Groundhog_core Printf
