lib/isolation/criu.ml: Gh_faas Gh_sim Groundhog_core
