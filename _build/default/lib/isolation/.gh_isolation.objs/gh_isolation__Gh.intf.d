lib/isolation/gh.mli: Gh_faas Gh_sim Groundhog_core Policy
