lib/isolation/base.ml: Gh_faas Gh_sim Groundhog_core
