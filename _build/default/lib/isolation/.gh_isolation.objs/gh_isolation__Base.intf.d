lib/isolation/base.mli: Gh_faas Gh_sim
