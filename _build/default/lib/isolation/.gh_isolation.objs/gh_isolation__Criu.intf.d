lib/isolation/criu.mli: Gh_faas Gh_sim
