lib/isolation/coldstart.ml: Gh_faas Gh_sim Groundhog_core
