type t = { read : bool; write : bool; exec : bool }

let rw = { read = true; write = true; exec = false }
let r = { read = true; write = false; exec = false }
let rx = { read = true; write = false; exec = true }
let rwx = { read = true; write = true; exec = true }
let none = { read = false; write = false; exec = false }
let equal a b = a = b

let to_string t =
  let c b ch = if b then ch else '-' in
  Printf.sprintf "%c%c%c" (c t.read 'r') (c t.write 'w') (c t.exec 'x')

let pp ppf t = Format.pp_print_string ppf (to_string t)
