type t = Bytes.t

let create n = Bytes.make n '\000'
let length = Bytes.length
let get t i = Bytes.unsafe_get t i <> '\000'
let set t i v = Bytes.unsafe_set t i (if v then '\001' else '\000')
let fill t v = Bytes.fill t 0 (Bytes.length t) (if v then '\001' else '\000')
let copy = Bytes.copy

let resize t n =
  let nt = Bytes.make n '\000' in
  Bytes.blit t 0 nt 0 (min (Bytes.length t) n);
  nt

let count t =
  let c = ref 0 in
  for i = 0 to Bytes.length t - 1 do
    if Bytes.unsafe_get t i <> '\000' then incr c
  done;
  !c

let iter_set t f =
  for i = 0 to Bytes.length t - 1 do
    if Bytes.unsafe_get t i <> '\000' then f i
  done

let fold_runs t ~init ~f =
  let n = Bytes.length t in
  let acc = ref init in
  let i = ref 0 in
  while !i < n do
    if Bytes.unsafe_get t !i <> '\000' then begin
      let start = !i in
      while !i < n && Bytes.unsafe_get t !i <> '\000' do
        incr i
      done;
      acc := f !acc ~pos:start ~len:(!i - start)
    end
    else incr i
  done;
  !acc
