lib/mem/prot.ml: Format Printf
