lib/mem/address_space.mli: Format Gh_kernel Gh_sim Prot Vma
