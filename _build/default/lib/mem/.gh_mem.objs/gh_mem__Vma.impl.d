lib/mem/vma.ml: Array Bitmap Format Prot
