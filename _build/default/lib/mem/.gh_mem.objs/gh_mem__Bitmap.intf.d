lib/mem/bitmap.mli:
