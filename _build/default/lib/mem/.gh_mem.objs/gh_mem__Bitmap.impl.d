lib/mem/bitmap.ml: Bytes
