lib/mem/vma.mli: Bitmap Format Prot
