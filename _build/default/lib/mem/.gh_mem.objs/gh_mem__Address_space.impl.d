lib/mem/address_space.ml: Array Bitmap Format Gh_kernel Gh_sim List Prot Vma
