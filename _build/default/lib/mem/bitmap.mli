(** Dense per-page bit maps (present, soft-dirty, CoW-pending, ...).

    One byte per page: address spaces top out around 210K pages in our
    workloads, so compactness matters less than scan speed and simplicity. *)

type t

val create : int -> t
(** [create n] is an all-zero map over [n] pages. *)

val length : t -> int
val get : t -> int -> bool
val set : t -> int -> bool -> unit
val fill : t -> bool -> unit
val copy : t -> t

val resize : t -> int -> t
(** [resize t n] keeps the common prefix, zero-extends when growing. *)

val count : t -> int
(** Number of set bits. *)

val iter_set : t -> (int -> unit) -> unit
(** Apply to each set index, ascending. *)

val fold_runs : t -> init:'a -> f:('a -> pos:int -> len:int -> 'a) -> 'a
(** Fold over maximal runs of consecutive set bits, ascending — used by the
    restore engine's copy coalescing. *)
