(** Memory-protection flags, as carried by every VMA. *)

type t = { read : bool; write : bool; exec : bool }

val rw : t
val r : t
val rx : t
val rwx : t
val none : t

val equal : t -> t -> bool

val to_string : t -> string
(** /proc/pid/maps style, e.g. ["rw-"]. *)

val pp : Format.formatter -> t -> unit
