(* Unit tests for the isolation strategies: the security property (who
   leaks, who doesn't), the cost structure (who pays what, where), and the
   rollback policies. *)

module Fm = Gh_faas.Function_model
module Intf = Gh_faas.Strategy_intf
module Request = Gh_faas.Request
module Principal = Gh_faas.Principal
module Runtime = Gh_faas.Runtime
module Rng = Gh_sim.Rng
open Gh_isolation

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let alice = Principal.make ~id:1 ~name:"alice"
let bob = Principal.make ~id:2 ~name:"bob"

(* A buggy function: copies residual foreign data into its response. *)
let buggy_spec ?(lang = Runtime.C) () =
  {
    Fm.default_spec with
    Fm.name = "buggy";
    lang;
    mapped_pages = 2_000;
    dirtied_pages = 64;
    read_pages = 300;
    buggy_residue_leak = true;
  }

let rng () = Rng.create 42

let alternate strat n =
  (* Alice then Bob, n rounds; return Bob's observed residues. *)
  let residues = ref [] in
  for i = 1 to n do
    let principal = if i mod 2 = 1 then alice else bob in
    let inv = strat.Intf.invoke (Request.make ~id:i ~principal ()) in
    if Principal.equal principal bob then
      residues := inv.Intf.response.Fm.residue @ !residues
  done;
  !residues

let test_base_leaks () =
  let strat = Base.make ~rng:(rng ()) (buggy_spec ()) in
  let residues = alternate strat 6 in
  check_bool "BASE leaks alice's data to bob" true
    (List.exists (Principal.owns_word alice) residues)

let test_gh_never_leaks () =
  let strat = Gh.make ~paranoid:true ~rng:(rng ()) (buggy_spec ()) in
  let residues = alternate strat 10 in
  check_int "GH: bob never observes residue" 0 (List.length residues)

let test_gh_nop_leaks () =
  let strat = Gh_nop.make ~rng:(rng ()) (buggy_spec ()) in
  let residues = alternate strat 6 in
  check_bool "GH_NOP (no restore) leaks like BASE" true
    (List.exists (Principal.owns_word alice) residues)

let test_fork_never_leaks () =
  match Fork_isolation.make ~rng:(rng ()) (buggy_spec ()) with
  | Error msg -> Alcotest.fail msg
  | Ok strat ->
      let residues = alternate strat 10 in
      check_int "FORK: bob never observes residue" 0 (List.length residues)

let test_faasm_never_leaks () =
  match Faasm.make ~rng:(rng ()) (buggy_spec ()) with
  | Error msg -> Alcotest.fail msg
  | Ok strat ->
      let residues = alternate strat 10 in
      check_int "FAASM: bob never observes residue" 0 (List.length residues)

let test_coldstart_never_leaks () =
  let strat = Coldstart.make ~rng:(rng ()) (buggy_spec ()) in
  let residues = alternate strat 8 in
  check_int "COLDSTART: bob never observes residue" 0 (List.length residues)

(* -- Support matrix -- *)

let test_fork_rejects_multithreaded () =
  match Fork_isolation.make ~rng:(rng ()) (buggy_spec ~lang:Runtime.Nodejs ()) with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "fork must reject Node.js"

let test_faasm_requires_wasm_port () =
  let spec = { (buggy_spec ()) with Fm.wasm_factor = None } in
  match Faasm.make ~rng:(rng ()) spec with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "faasm requires a wasm port"

let test_registry () =
  check_int "seven strategies" 7 (List.length Registry.all);
  List.iter
    (fun id ->
      match Registry.of_string (Registry.to_string id) with
      | Ok id' -> check_bool "roundtrip" true (id = id')
      | Error msg -> Alcotest.fail msg)
    Registry.all;
  (match Registry.of_string "nonsense" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "unknown name must fail");
  let node = buggy_spec ~lang:Runtime.Nodejs () in
  check_bool "fork unsupported on node" false (Registry.supports Registry.Fork node);
  check_bool "gh supported everywhere" true (Registry.supports Registry.Gh node);
  check_bool "faasm needs wasm" false
    (Registry.supports Registry.Faasm { node with Fm.wasm_factor = None })

(* -- Cost structure -- *)

let c_spec =
  {
    Fm.default_spec with
    Fm.name = "cost-probe";
    mapped_pages = 4_000;
    dirtied_pages = 512;
    read_pages = 1_000;
    exec_ns = Gh_sim.Time_ns.of_ms 2.0;
  }

let mean_on_path strat n =
  (* Skip the first two warm-up invocations, as the harness does. *)
  let total = ref 0 in
  for i = 1 to n + 2 do
    let inv = strat.Intf.invoke (Request.make ~id:i ~principal:alice ()) in
    if i > 2 then total := !total + inv.Intf.on_path_ns
  done;
  !total / n

let test_overhead_ordering () =
  let base = Base.make ~rng:(rng ()) c_spec in
  let gh = Gh.make ~rng:(rng ()) c_spec in
  let gh_nop = Gh_nop.make ~rng:(rng ()) c_spec in
  let fork = Result.get_ok (Fork_isolation.make ~rng:(rng ()) c_spec) in
  let b = mean_on_path base 8 in
  let g = mean_on_path gh 8 in
  let n = mean_on_path gh_nop 8 in
  let f = mean_on_path fork 8 in
  check_bool "GH costs more than BASE on path" true (g > b);
  check_bool "GH_NOP close to BASE (within 10%)" true
    (float_of_int (abs (n - b)) < 0.1 *. float_of_int b);
  check_bool "FORK costs more than GH on path" true (f > g)

let test_gh_restores_off_path () =
  let gh = Gh.make ~rng:(rng ()) c_spec in
  let inv = gh.Intf.invoke (Request.make ~id:1 ~principal:alice ()) in
  check_bool "restoration is deferred work" true (inv.Intf.post_ns > 0);
  check_bool "breakdown reported" true (inv.Intf.breakdown <> None);
  check_bool "isolated" true inv.Intf.isolated

let test_base_and_nop_have_no_post_work () =
  let base = Base.make ~rng:(rng ()) c_spec in
  let inv = base.Intf.invoke (Request.make ~id:1 ~principal:alice ()) in
  check_bool "no deferred work" true (Intf.no_post inv);
  check_bool "not isolated" false inv.Intf.isolated;
  let nop = Gh_nop.make ~rng:(rng ()) c_spec in
  let inv = nop.Intf.invoke (Request.make ~id:1 ~principal:alice ()) in
  check_bool "nop: no deferred work" true (Intf.no_post inv);
  check_bool "nop: not isolated" false inv.Intf.isolated

let test_coldstart_pays_init_on_path () =
  let base = Base.make ~rng:(rng ()) c_spec in
  let cold = Coldstart.make ~rng:(rng ()) c_spec in
  let b = mean_on_path base 4 in
  let c = mean_on_path cold 4 in
  check_bool "cold start dwarfs warm reuse" true (c > b + Gh_sim.Time_ns.of_ms 50.0)

let test_snapshot_pages_reporting () =
  let gh = Gh.make ~rng:(rng ()) c_spec in
  check_bool "GH holds a snapshot" true (gh.Intf.snapshot_pages () > 0);
  let base = Base.make ~rng:(rng ()) c_spec in
  check_int "BASE holds none" 0 (base.Intf.snapshot_pages ())

(* -- Interposition variants (§4.5) -- *)

let test_platform_signal_removes_copy_cost () =
  (* With a big payload, the §4.5 platform modification should shave the
     whole interposition copy off the critical path. *)
  let spec = { c_spec with Fm.input_kb = 200 } in
  let intercept = Gh.make ~rng:(rng ()) spec in
  let signal = Gh.make ~interposition:Gh.Platform_signal ~rng:(rng ()) spec in
  let mean_on_path strat n =
    let total = ref 0 in
    for i = 1 to n + 2 do
      let inv =
        strat.Intf.invoke
          (Request.make ~id:i ~principal:alice ~input_kb:spec.Fm.input_kb ())
      in
      if i > 2 then total := !total + inv.Intf.on_path_ns
    done;
    !total / n
  in
  let i = mean_on_path intercept 6 in
  let sg = mean_on_path signal 6 in
  let rt = Runtime.for_lang spec.Fm.lang in
  let copy =
    rt.Runtime.proxy_fixed_ns
    + ((spec.Fm.input_kb + spec.Fm.output_kb) * rt.Runtime.proxy_per_kb_ns)
  in
  check_bool "signal variant cheaper" true (sg < i);
  check_bool "saves roughly the copy cost" true
    (abs (i - sg - copy) < copy / 2)

let test_platform_signal_still_isolates () =
  let signal = Gh.make ~interposition:Gh.Platform_signal ~rng:(rng ()) (buggy_spec ()) in
  let residues = alternate signal 8 in
  check_int "no leaks without interception either" 0 (List.length residues)

(* -- Policy -- *)

let test_policy_rules () =
  let r1 = Request.make ~id:1 ~principal:alice () in
  let r2 = Request.make ~id:2 ~principal:alice () in
  let r3 = Request.make ~id:3 ~principal:bob () in
  check_bool "first request never needs restore" false
    (Policy.requires_restore Policy.Always_isolate ~prev:None ~next:r1);
  check_bool "always isolates" true
    (Policy.requires_restore Policy.Always_isolate ~prev:(Some r1) ~next:r2);
  check_bool "same principal trusted" false
    (Policy.requires_restore Policy.Trust_same_principal ~prev:(Some r1) ~next:r2);
  check_bool "cross principal not trusted" true
    (Policy.requires_restore Policy.Trust_same_principal ~prev:(Some r1) ~next:r3);
  check_bool "trust all never restores" false
    (Policy.requires_restore Policy.Trust_all ~prev:(Some r1) ~next:r3)

let test_gh_lookahead_skip () =
  let _, state =
    Gh.make_with_state ~policy:Policy.Trust_same_principal ~rng:(rng ()) c_spec
  in
  let r1 = Request.make ~id:1 ~principal:alice () in
  let r2 = Request.make ~id:2 ~principal:alice () in
  let r3 = Request.make ~id:3 ~principal:bob () in
  (* Same principal queued next: rollback skipped. *)
  let inv = Gh.invoke_with_lookahead state r1 ~next:(Some r2) in
  check_int "skipped rollback" 0 inv.Intf.post_ns;
  (* Bob queued next: rollback must run. *)
  let inv = Gh.invoke_with_lookahead state r2 ~next:(Some r3) in
  check_bool "restored before bob" true (inv.Intf.post_ns > 0);
  (* No lookahead: restore eagerly (safe default). *)
  let inv = Gh.invoke_with_lookahead state r3 ~next:None in
  check_bool "eager restore without lookahead" true (inv.Intf.post_ns > 0)

let test_gh_lookahead_skip_is_still_safe_for_same_principal () =
  (* Even with skips, a buggy function never leaks across principals. *)
  let _, state =
    Gh.make_with_state ~policy:Policy.Trust_same_principal ~rng:(rng ()) (buggy_spec ())
  in
  let reqs =
    [
      Request.make ~id:1 ~principal:alice ();
      Request.make ~id:2 ~principal:alice ();
      Request.make ~id:3 ~principal:bob ();
      Request.make ~id:4 ~principal:bob ();
    ]
  in
  let rec go = function
    | [] -> ()
    | req :: rest ->
        let next = match rest with [] -> None | n :: _ -> Some n in
        let inv = Gh.invoke_with_lookahead state req ~next in
        if Principal.equal req.Request.principal bob then
          check_int "bob sees no foreign residue" 0
            (List.length
               (List.filter (Principal.owns_word alice) inv.Intf.response.Fm.residue));
        go rest
  in
  go reqs

let () =
  Alcotest.run "gh_isolation"
    [
      ( "security",
        [
          Alcotest.test_case "BASE leaks" `Quick test_base_leaks;
          Alcotest.test_case "GH never leaks" `Quick test_gh_never_leaks;
          Alcotest.test_case "GH_NOP leaks" `Quick test_gh_nop_leaks;
          Alcotest.test_case "FORK never leaks" `Quick test_fork_never_leaks;
          Alcotest.test_case "FAASM never leaks" `Quick test_faasm_never_leaks;
          Alcotest.test_case "COLDSTART never leaks" `Quick test_coldstart_never_leaks;
        ] );
      ( "support",
        [
          Alcotest.test_case "fork rejects multithreaded" `Quick test_fork_rejects_multithreaded;
          Alcotest.test_case "faasm requires wasm" `Quick test_faasm_requires_wasm_port;
          Alcotest.test_case "registry" `Quick test_registry;
        ] );
      ( "costs",
        [
          Alcotest.test_case "overhead ordering" `Quick test_overhead_ordering;
          Alcotest.test_case "GH restores off path" `Quick test_gh_restores_off_path;
          Alcotest.test_case "BASE/NOP have no post work" `Quick
            test_base_and_nop_have_no_post_work;
          Alcotest.test_case "coldstart pays init on path" `Quick
            test_coldstart_pays_init_on_path;
          Alcotest.test_case "snapshot pages reporting" `Quick test_snapshot_pages_reporting;
        ] );
      ( "interposition",
        [
          Alcotest.test_case "platform-signal removes copy cost" `Quick
            test_platform_signal_removes_copy_cost;
          Alcotest.test_case "platform-signal still isolates" `Quick
            test_platform_signal_still_isolates;
        ] );
      ( "policy",
        [
          Alcotest.test_case "rules" `Quick test_policy_rules;
          Alcotest.test_case "lookahead skip" `Quick test_gh_lookahead_skip;
          Alcotest.test_case "skip remains safe across principals" `Quick
            test_gh_lookahead_skip_is_still_safe_for_same_principal;
        ] );
    ]
