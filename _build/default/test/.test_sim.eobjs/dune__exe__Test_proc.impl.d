test/test_proc.ml: Alcotest Array Gh_kernel Gh_mem Gh_proc Gh_sim List Option Process Procfs Ptrace Registers Thread
