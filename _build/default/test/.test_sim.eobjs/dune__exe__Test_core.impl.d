test/test_core.ml: Alcotest Array Breakdown Format Gh_kernel Gh_mem Gh_proc Gh_sim Groundhog_core Layout_diff List Manager Option Restore Snapshot String Verify
