test/test_isolation.ml: Alcotest Base Coldstart Faasm Fork_isolation Gh Gh_faas Gh_isolation Gh_nop Gh_sim List Policy Registry Result
