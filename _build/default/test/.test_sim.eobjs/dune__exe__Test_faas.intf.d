test/test_faas.mli:
