test/test_sim.ml: Account Alcotest Array Engine Float Format Fun Gh_sim Heap Histogram List Rng Stats String Time_ns Trace
