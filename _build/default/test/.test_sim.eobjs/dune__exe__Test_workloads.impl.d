test/test_workloads.ml: Alcotest Catalog Float Gh_faas Gh_sim Gh_workloads List Microbench Option Paper_ref Representative Synthetic
