test/test_mem.ml: Address_space Alcotest Array Bitmap Gh_kernel Gh_mem Gh_sim List Prot Vma
