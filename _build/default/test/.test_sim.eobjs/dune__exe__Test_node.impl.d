test/test_node.ml: Alcotest Gh_faas Gh_harness Gh_sim Gh_workloads List
