(* Integration tests for the experiment harness: the experiments run, the
   measurements have the paper's qualitative shape, the reports render. *)

module Stats = Gh_sim.Stats
module Registry = Gh_isolation.Registry
module Catalog = Gh_workloads.Catalog
open Gh_harness

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* A tiny config so the integration tests stay fast. *)
let cfg =
  {
    Config.quick with
    Config.latency_requests = 12;
    latency_requests_medium = 6;
    latency_requests_long = 3;
    tput_requests = 12;
    microbench_requests = 5;
    breakdown_requests = 4;
  }

let entry name = Option.get (Catalog.find name)

(* -- Config -- *)

let test_config_adaptive_counts () =
  let fast = entry "version (p)" and slow = entry "cholesky (c)" in
  check_int "fast benchmarks get full runs" cfg.Config.latency_requests
    (Config.latency_requests_for cfg fast.Catalog.spec);
  check_int "multi-minute kernels get few" cfg.Config.latency_requests_long
    (Config.latency_requests_for cfg slow.Catalog.spec);
  check_bool "tput adapts too" true
    (Config.tput_requests_for cfg slow.Catalog.spec
    < Config.tput_requests_for cfg fast.Catalog.spec)

(* -- Latency experiment -- *)

let test_latency_exp_shape () =
  let e = entry "version (p)" in
  let results = Latency_exp.run cfg [ e ] in
  match results with
  | [ r ] ->
      let base = Option.get (Latency_exp.find r Registry.Base) in
      let gh = Option.get (Latency_exp.find r Registry.Gh) in
      check_bool "GH invoker latency above BASE" true
        (gh.Latency_exp.invoker.Stats.mean > base.Latency_exp.invoker.Stats.mean);
      check_bool "e2e above invoker (platform overhead)" true
        (base.Latency_exp.e2e.Stats.mean > base.Latency_exp.invoker.Stats.mean +. 20.0);
      (* Relative e2e overhead is diluted vs invoker overhead. *)
      let rel = Latency_exp.relative_to_base r in
      let _, gh_e2e, gh_inv =
        List.find (fun (id, _, _) -> id = Registry.Gh) rel
      in
      check_bool "platform dilutes relative overhead" true (gh_e2e < gh_inv);
      (* FORK is measured for this single-threaded python benchmark. *)
      check_bool "fork measured" true (Latency_exp.find r Registry.Fork <> None)
  | _ -> Alcotest.fail "one result expected"

let test_latency_exp_skips_unsupported () =
  let e = entry "json (n)" in
  let results = Latency_exp.run cfg [ e ] in
  match results with
  | [ r ] ->
      check_bool "no fork on node" true (Latency_exp.find r Registry.Fork = None);
      check_bool "no faasm without port" true (Latency_exp.find r Registry.Faasm = None);
      check_bool "gh measured" true (Latency_exp.find r Registry.Gh <> None)
  | _ -> Alcotest.fail "one result expected"

let test_latency_logging_anomaly () =
  (* GH beats BASE on logging(p): the restore rolls the leak back. *)
  let lcfg = { cfg with Config.latency_requests_medium = 40 } in
  let results = Latency_exp.run ~strategies:[ Registry.Base; Registry.Gh ] lcfg
      [ entry "logging (p)" ] in
  match results with
  | [ r ] ->
      let base = Option.get (Latency_exp.find r Registry.Base) in
      let gh = Option.get (Latency_exp.find r Registry.Gh) in
      check_bool "GH is faster than the leaking BASE" true
        (gh.Latency_exp.invoker.Stats.mean < base.Latency_exp.invoker.Stats.mean)
  | _ -> Alcotest.fail "one result expected"

(* -- Throughput experiment -- *)

let test_throughput_exp_shape () =
  let e = entry "fannkuch (p)" in
  let results = Throughput_exp.run cfg [ e ] in
  match results with
  | [ r ] ->
      let base = Option.get (Throughput_exp.find r Registry.Base) in
      let gh = Option.get (Throughput_exp.find r Registry.Gh) in
      let nop = Option.get (Throughput_exp.find r Registry.Gh_nop) in
      check_bool "positive throughput" true (base.Throughput_exp.tput_rps > 0.0);
      check_bool "GH below BASE (restore eats cycles)" true
        (gh.Throughput_exp.tput_rps < base.Throughput_exp.tput_rps);
      check_bool "GH_NOP within 15% of BASE" true
        (Float.abs (nop.Throughput_exp.tput_rps -. base.Throughput_exp.tput_rps)
        < 0.15 *. base.Throughput_exp.tput_rps)
  | _ -> Alcotest.fail "one result expected"

(* -- Scaling -- *)

let test_scaling_linearity () =
  let results = Scaling_exp.run ~max_cores:3 cfg [ entry "deltablue (p)" ] in
  match results with
  | [ r ] ->
      check_int "three points" 3 (List.length r.Scaling_exp.by_cores);
      (match Scaling_exp.linearity r with
      | Some l -> check_bool "near-linear scaling" true (l > 0.8 && l < 1.25)
      | None -> Alcotest.fail "linearity undefined");
      let t1 = List.assoc 1 r.Scaling_exp.by_cores in
      let t3 = List.assoc 3 r.Scaling_exp.by_cores in
      check_bool "monotone" true (t3 > t1)
  | _ -> Alcotest.fail "one result expected"

(* -- Breakdown -- *)

let test_breakdown_exp () =
  let r = Breakdown_exp.run_one cfg (entry "pickle (p)") in
  check_bool "restore time positive" true (r.Breakdown_exp.restore_ms > 0.0);
  check_bool "snapshot time positive" true (r.Breakdown_exp.snapshot_ms > 0.0);
  check_bool "snapshot pages positive" true (r.Breakdown_exp.snapshot_pages > 0);
  check_bool "faasm reset measured (wasm port)" true (r.Breakdown_exp.faasm_reset_ms <> None);
  let steps = Groundhog_core.Breakdown.steps r.Breakdown_exp.mean in
  let sum = List.fold_left (fun n (_, ns) -> n + ns) 0 steps in
  check_bool "steps sum to ~total" true
    (abs (sum - r.Breakdown_exp.mean.Groundhog_core.Breakdown.total_ns) <= List.length steps);
  let r2 = Breakdown_exp.run_one cfg (entry "json (n)") in
  check_bool "node restore dominated by scan+reset share" true
    (r2.Breakdown_exp.mean.Groundhog_core.Breakdown.scan_ns
    > r2.Breakdown_exp.mean.Groundhog_core.Breakdown.copy_ns);
  check_bool "no faasm for node" true (r2.Breakdown_exp.faasm_reset_ms = None)

(* -- Microbench -- *)

let test_microbench_points () =
  let points = Microbench_exp.run_right { cfg with Config.microbench_requests = 4 } in
  check_int "8 points" 8 (List.length points);
  let first = List.hd points and last = List.nth points (List.length points - 1) in
  let gh_high p = List.assoc Registry.Gh p.Microbench_exp.high_ms in
  let gh_low p = List.assoc Registry.Gh p.Microbench_exp.low_ms in
  check_bool "high-load latency grows with address space" true (gh_high last > gh_high first);
  (* In-function overhead is roughly independent of address-space size. *)
  check_bool "low-load latency grows far less" true
    (gh_low last -. gh_low first < 0.3 *. (gh_high last -. gh_high first));
  let fork_low p = List.assoc Registry.Fork p.Microbench_exp.low_ms in
  check_bool "fork's on-path cost grows with address space" true
    (fork_low last > fork_low first +. 5.0)

(* -- Summary -- *)

let test_summary_compute () =
  let entries = [ entry "version (p)"; entry "fannkuch (p)"; entry "atax (c)" ] in
  let lat = Latency_exp.run ~strategies:[ Registry.Base; Registry.Gh ] cfg entries in
  let tput = Throughput_exp.run ~strategies:[ Registry.Base; Registry.Gh ] cfg entries in
  let bd = Breakdown_exp.run ~with_faasm:false cfg entries in
  let s = Summary.compute lat tput bd in
  check_int "three latency points" 3 s.Summary.latency_overhead_pct.Stats.n;
  check_bool "median restore in sane range" true
    (s.Summary.restore_ms.Stats.median > 0.1 && s.Summary.restore_ms.Stats.median < 50.0)

(* -- Report rendering -- *)

let test_report_table () =
  let buf = Buffer.create 256 in
  let ppf = Format.formatter_of_buffer buf in
  Report.table ppf ~title:"T" ~header:[ "a"; "b" ] [ [ "x"; "1" ]; [ "longer"; "22" ] ];
  Format.pp_print_flush ppf ();
  let s = Buffer.contents buf in
  check_bool "title" true (String.length s > 0);
  check_bool "contains rows" true
    (String.split_on_char '\n' s |> List.exists (fun l -> String.length l > 0))

let test_report_series () =
  let buf = Buffer.create 256 in
  let ppf = Format.formatter_of_buffer buf in
  Report.series ppf ~title:"S" ~x_label:"x" ~columns:[ "a"; "b" ]
    [ (1.0, [ Some 2.0; None ]); (2.0, [ Some 4.0; Some 8.0 ]) ];
  Format.pp_print_flush ppf ();
  let out = Buffer.contents buf in
  check_bool "missing points dash" true (String.contains out '-');
  check_bool "x label present" true (String.length out > 10)

let test_print_functions_render () =
  (* Smoke: every print function renders without raising on tiny data. *)
  let buf = Buffer.create 4096 in
  let ppf = Format.formatter_of_buffer buf in
  let e = entry "version (p)" in
  let lat = Latency_exp.run ~strategies:[ Registry.Base; Registry.Gh ] cfg [ e ] in
  Latency_exp.print_fig4 ppf lat;
  let tput = Throughput_exp.run ~strategies:[ Registry.Base; Registry.Gh ] cfg [ e ] in
  Throughput_exp.print_fig5 ppf tput;
  let bd = Breakdown_exp.run ~with_faasm:false cfg [ e ] in
  Breakdown_exp.print_fig8 ppf bd;
  Breakdown_exp.print_fig6 ppf bd;
  Tables.print_table1 ppf lat tput;
  Tables.print_table2 ppf lat tput;
  Tables.print_table3 ppf lat tput bd;
  Format.pp_print_flush ppf ();
  check_bool "substantial output" true (Buffer.length buf > 500)

let test_report_formats () =
  Alcotest.(check string) "pct" "+1.5%" (Report.fmt_pct 1.5);
  Alcotest.(check string) "pct nan" "-" (Report.fmt_pct Float.nan);
  Alcotest.(check string) "ms small" "0.50" (Report.fmt_ms 0.5);
  Alcotest.(check string) "ms large" "1234" (Report.fmt_ms 1234.0);
  Alcotest.(check string) "tput" "12.00" (Report.fmt_tput 12.0)

(* -- Determinism -- *)

let test_experiments_deterministic () =
  let e = entry "version (p)" in
  let run () =
    match Latency_exp.run ~strategies:[ Registry.Base; Registry.Gh ] cfg [ e ] with
    | [ r ] ->
        let m = Option.get (Latency_exp.find r Registry.Gh) in
        (m.Latency_exp.invoker.Stats.mean, m.Latency_exp.e2e.Stats.mean)
    | _ -> Alcotest.fail "one result"
  in
  let a = run () and b = run () in
  Alcotest.(check (pair (float 0.0) (float 0.0))) "bit-identical reruns" a b;
  let tput () =
    match Throughput_exp.run_one cfg Registry.Gh e with
    | Some m -> m.Throughput_exp.tput_rps
    | None -> Alcotest.fail "supported"
  in
  Alcotest.(check (float 0.0)) "throughput deterministic too" (tput ()) (tput ())

let test_seed_changes_results () =
  let e = entry "version (p)" in
  let with_seed seed =
    let cfg = { cfg with Config.seed } in
    match Latency_exp.run_one cfg Registry.Base e with
    | Some m -> m.Latency_exp.invoker.Stats.mean
    | None -> Alcotest.fail "supported"
  in
  check_bool "different seeds perturb the noise" true (with_seed 1 <> with_seed 2)

(* -- Experiments registry -- *)

let test_experiments_registry () =
  check_int "11 experiments" 11 (List.length Experiments.all);
  List.iter
    (fun id ->
      match Experiments.of_string (Experiments.to_string id) with
      | Ok id' -> check_bool "roundtrip" true (id = id')
      | Error msg -> Alcotest.fail msg)
    Experiments.all;
  match Experiments.of_string "fig99" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "unknown experiment must fail"

let () =
  Alcotest.run "gh_harness"
    [
      ("config", [ Alcotest.test_case "adaptive counts" `Quick test_config_adaptive_counts ]);
      ( "latency",
        [
          Alcotest.test_case "shape" `Quick test_latency_exp_shape;
          Alcotest.test_case "skips unsupported" `Quick test_latency_exp_skips_unsupported;
          Alcotest.test_case "logging anomaly" `Quick test_latency_logging_anomaly;
        ] );
      ("throughput", [ Alcotest.test_case "shape" `Quick test_throughput_exp_shape ]);
      ("scaling", [ Alcotest.test_case "linearity" `Quick test_scaling_linearity ]);
      ("breakdown", [ Alcotest.test_case "fields" `Quick test_breakdown_exp ]);
      ("microbench", [ Alcotest.test_case "points" `Quick test_microbench_points ]);
      ("summary", [ Alcotest.test_case "compute" `Quick test_summary_compute ]);
      ( "report",
        [
          Alcotest.test_case "table" `Quick test_report_table;
          Alcotest.test_case "series" `Quick test_report_series;
          Alcotest.test_case "all print functions" `Quick test_print_functions_render;
          Alcotest.test_case "formats" `Quick test_report_formats;
        ] );
      ( "determinism",
        [
          Alcotest.test_case "reruns identical" `Quick test_experiments_deterministic;
          Alcotest.test_case "seed matters" `Quick test_seed_changes_results;
        ] );
      ("experiments", [ Alcotest.test_case "registry" `Quick test_experiments_registry ]);
    ]
