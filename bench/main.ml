(* The benchmark harness, in two parts.

   Part 1 — Bechamel micro-benchmarks: one [Test.make] per table/figure of
   the paper, each exercising the hot library operation that experiment
   leans on (snapshot capture, pagemap scan, restore, layout diff, fork,
   FAASM reset, strategy invocations, the DES). These measure {e this
   implementation's} real CPU cost per operation.

   Part 2 — regenerate every table and figure of the paper's evaluation via
   the experiment harness (the same thing `gh-bench run all` does).

   Run with: dune exec bench/main.exe
   Pass `--quick` to shrink part 2's request counts (CI), or
   `--bechamel-only` / `--figures-only` to run one part;
   `--bitmap-only` / `--mem-only` / `--engine-only` run a single
   micro-benchmark group (the latter two also write BENCH_mem.json /
   BENCH_engine.json). *)

open Bechamel
open Toolkit

module As = Gh_mem.Address_space
module Vma = Gh_mem.Vma
module Prot = Gh_mem.Prot
module Process = Gh_proc.Process
module Procfs = Gh_proc.Procfs
module Account = Gh_sim.Account
module Rng = Gh_sim.Rng
module Fm = Gh_faas.Function_model
module Intf = Gh_faas.Strategy_intf
module Registry = Gh_isolation.Registry
open Groundhog_core

let cost = Gh_kernel.Cost.default

let alice = Gh_faas.Principal.make ~id:1 ~name:"alice"
let bob = Gh_faas.Principal.make ~id:2 ~name:"bob"

(* A mid-size warmed process shared by the substrate benchmarks. *)
let bench_process () =
  let mem = As.create ~heap_pages:2048 ~cost () in
  let p = Process.create ~mem ~n_threads:2 () in
  let a = Account.create () in
  As.dirty_range mem a (As.heap mem) ~pos:0 ~len:1024 ~value:7;
  p

let bench_strategy id spec =
  match Registry.make id ~rng:(Rng.create 17) spec with
  | Ok s -> s
  | Error msg -> failwith msg

let small_python_spec =
  {
    Fm.default_spec with
    Fm.name = "bench-fn";
    lang = Gh_faas.Runtime.Python;
    exec_ns = 0;  (* measure the machinery, not the modelled compute *)
    mapped_pages = 4_000;
    dirtied_pages = 300;
    read_pages = 400;
  }

(* fig3: one full GH microbenchmark cycle (invoke + restore). *)
let test_fig3 =
  let spec = Gh_workloads.Microbench.spec ~mapped_pages:5_000 ~dirtied_pages:500 in
  let spec = { spec with Fm.exec_ns = 0 } in
  let strat = bench_strategy Registry.Gh spec in
  let i = ref 0 in
  Test.make ~name:"fig3/gh-microbench-cycle"
    (Staged.stage (fun () ->
         incr i;
         ignore (strat.Intf.invoke (Gh_faas.Request.make ~id:!i ~principal:alice ()))))

(* fig4: the latency experiment's unit of work — one GH invocation. *)
let test_fig4 =
  let strat = bench_strategy Registry.Gh small_python_spec in
  let i = ref 0 in
  Test.make ~name:"fig4/gh-invoke"
    (Staged.stage (fun () ->
         incr i;
         ignore (strat.Intf.invoke (Gh_faas.Request.make ~id:!i ~principal:bob ()))))

(* fig5: a slice of the saturation DES (submit + drain a window). *)
let test_fig5 =
  Test.make ~name:"fig5/des-saturation-slice"
    (Staged.stage (fun () ->
         let engine = Gh_sim.Engine.create () in
         let strat = bench_strategy Registry.Base small_python_spec in
         let invoker =
           Gh_faas.Invoker.create engine ~n_containers:2 ~dispatch_ns:1000
             ~make_strategy:(fun _ -> strat)
         in
         for i = 1 to 16 do
           Gh_faas.Invoker.submit invoker
             (Gh_faas.Request.make ~id:i ~principal:alice ())
             ~on_response:(fun _ _ -> ())
         done;
         Gh_sim.Engine.run_all engine))

(* fig6: the FAASM reset path. *)
let test_fig6 =
  let strat = bench_strategy Registry.Faasm small_python_spec in
  let i = ref 0 in
  Test.make ~name:"fig6/faasm-reset-cycle"
    (Staged.stage (fun () ->
         incr i;
         ignore (strat.Intf.invoke (Gh_faas.Request.make ~id:!i ~principal:alice ()))))

(* fig7: multi-container scaling — four independent managers restoring. *)
let test_fig7 =
  let strats = Array.init 4 (fun _ -> bench_strategy Registry.Gh small_python_spec) in
  let i = ref 0 in
  Test.make ~name:"fig7/four-containers-round"
    (Staged.stage (fun () ->
         incr i;
         Array.iter
           (fun s -> ignore (s.Intf.invoke (Gh_faas.Request.make ~id:!i ~principal:alice ())))
           strats))

(* fig8: the restore engine alone, on a dirtied process. *)
let test_fig8 =
  let p = bench_process () in
  let snap = Snapshot.capture_exn (Account.create ()) p in
  let scratch = Account.create () in
  Test.make ~name:"fig8/restore-run"
    (Staged.stage (fun () ->
         As.dirty_range p.Process.mem scratch (As.heap p.Process.mem) ~pos:0 ~len:256 ~value:3;
         ignore (Restore.run_exn scratch snap p)))

(* table1: snapshot capture (the one-time cost column). *)
let test_table1 =
  Test.make ~name:"table1/snapshot-capture"
    (Staged.stage (fun () ->
         let p = bench_process () in
         ignore (Snapshot.capture_exn (Account.create ()) p)))

(* table2: the soft-dirty pagemap scan (the per-request tracking cost). *)
let test_table2 =
  let p = bench_process () in
  let scratch = Account.create () in
  Test.make ~name:"table2/pagemap-scan"
    (Staged.stage (fun () -> ignore (Procfs.scan_soft_dirty scratch p)))

(* table3: layout diffing plus fork cloning (restore-vs-fork economics). *)
let test_table3 =
  let p = bench_process () in
  let snap = Snapshot.capture_exn (Account.create ()) p in
  let scratch = Account.create () in
  Test.make ~name:"table3/layout-diff+fork"
    (Staged.stage (fun () ->
         match Procfs.read_maps scratch p with
         | Error _ -> assert false
         | Ok maps ->
             ignore (Layout_diff.diff scratch ~cost snap maps);
             ignore (Process.fork p scratch)))

let bechamel_tests =
  [
    test_fig3;
    test_fig4;
    test_fig5;
    test_fig6;
    test_fig7;
    test_fig8;
    test_table1;
    test_table2;
    test_table3;
  ]

(* -- Bitmap kernel: packed 63-bit words vs the byte-per-page
   representation it replaced. [Byte_bitmap] is a faithful copy of the old
   [Gh_mem.Bitmap], kept here so before/after numbers come from a single
   binary run. -- *)

module Bitmap = Gh_mem.Bitmap

module Byte_bitmap = struct
  let create n = Bytes.make n '\000'
  let set t i v = Bytes.unsafe_set t i (if v then '\001' else '\000')

  let count t =
    let c = ref 0 in
    for i = 0 to Bytes.length t - 1 do
      if Bytes.unsafe_get t i <> '\000' then incr c
    done;
    !c

  let iter_set t f =
    for i = 0 to Bytes.length t - 1 do
      if Bytes.unsafe_get t i <> '\000' then f i
    done

  let fold_runs t ~init ~f =
    let n = Bytes.length t in
    let acc = ref init in
    let i = ref 0 in
    while !i < n do
      if Bytes.unsafe_get t !i <> '\000' then begin
        let start = !i in
        while !i < n && Bytes.unsafe_get t !i <> '\000' do
          incr i
        done;
        acc := f !acc ~pos:start ~len:(!i - start)
      end
      else incr i
    done;
    !acc
end

(* Sparse: runs of 4 dirty pages every 512 (~0.8 % set) — the shape a
   lightly-dirtying request leaves in the soft-dirty map. Dense: 7 of every
   8 pages set — a memory-hungry request's present map. *)
let sparse_pattern n set =
  let i = ref 0 in
  while !i < n do
    for j = !i to min (n - 1) (!i + 3) do
      set j
    done;
    i := !i + 512
  done

let dense_pattern n set =
  for i = 0 to n - 1 do
    if i land 7 <> 0 then set i
  done

let bitmap_pair n pattern =
  let packed = Bitmap.create n in
  let bytes = Byte_bitmap.create n in
  pattern n (fun i ->
      Bitmap.set packed i true;
      Byte_bitmap.set bytes i true);
  (packed, bytes)

let bitmap_tests =
  let sizes = [ (1_024, "1K"); (65_536, "64K"); (1_048_576, "1M") ] in
  let densities = [ (sparse_pattern, "sparse"); (dense_pattern, "dense") ] in
  List.concat_map
    (fun (n, size_name) ->
      List.concat_map
        (fun (pattern, density_name) ->
          let packed, bytes = bitmap_pair n pattern in
          let name op impl =
            Printf.sprintf "bitmap/%s-%s-%s/%s" op size_name density_name impl
          in
          [
            Test.make ~name:(name "count" "packed")
              (Staged.stage (fun () -> Sys.opaque_identity (Bitmap.count packed)));
            Test.make ~name:(name "count" "bytes")
              (Staged.stage (fun () -> Sys.opaque_identity (Byte_bitmap.count bytes)));
            Test.make ~name:(name "iter_set" "packed")
              (Staged.stage (fun () ->
                   let s = ref 0 in
                   Bitmap.iter_set packed (fun i -> s := !s + i);
                   Sys.opaque_identity !s));
            Test.make ~name:(name "iter_set" "bytes")
              (Staged.stage (fun () ->
                   let s = ref 0 in
                   Byte_bitmap.iter_set bytes (fun i -> s := !s + i);
                   Sys.opaque_identity !s));
            Test.make ~name:(name "fold_runs" "packed")
              (Staged.stage (fun () ->
                   Sys.opaque_identity
                     (Bitmap.fold_runs packed ~init:0 ~f:(fun acc ~pos ~len ->
                          acc + pos + len))));
            Test.make ~name:(name "fold_runs" "bytes")
              (Staged.stage (fun () ->
                   Sys.opaque_identity
                     (Byte_bitmap.fold_runs bytes ~init:0 ~f:(fun acc ~pos ~len ->
                          acc + pos + len))));
          ])
        densities)
    sizes

(* -- Memory fast paths: the word-batched bulk kernels vs the retained
   scalar reference ([As.Scalar]), on a warm heap of 4K / 64K / 1M pages.
   Each run touches the whole heap, so ns-per-run divided by the page
   count gives the per-page cost each kernel charges in wall-clock. -- *)

let mem_sizes = [ (4_096, "4K"); (65_536, "64K"); (1_048_576, "1M") ]

let warm_heap n =
  let mem = As.create ~heap_pages:n ~cost () in
  let a = Account.create () in
  let heap = As.heap mem in
  As.dirty_range mem a heap ~pos:0 ~len:n ~value:7;
  (mem, heap)

let mem_tests_for (n, size_name) =
  (* Separate spaces per impl so neither warms pages for the other. *)
  let m_bulk, h_bulk = warm_heap n in
  let m_scal, h_scal = warm_heap n in
  let scratch = Account.create () in
  let name op impl = Printf.sprintf "mem/%s-%s/%s" op size_name impl in
  [
    Test.make ~name:(name "dirty" "bulk")
      (Staged.stage (fun () ->
           As.dirty_range m_bulk scratch h_bulk ~pos:0 ~len:n ~value:3));
    Test.make ~name:(name "dirty" "scalar")
      (Staged.stage (fun () ->
           As.Scalar.dirty_range m_scal scratch h_scal ~pos:0 ~len:n ~value:3));
    Test.make ~name:(name "read" "bulk")
      (Staged.stage (fun () -> As.read_range m_bulk scratch h_bulk ~pos:0 ~len:n));
    Test.make ~name:(name "read" "scalar")
      (Staged.stage (fun () ->
           As.Scalar.read_range m_scal scratch h_scal ~pos:0 ~len:n));
  ]

let mem_tests = List.concat_map mem_tests_for mem_sizes

(* Run one bechamel test and return its (name, ns-per-run) estimates. *)
let estimates test =
  let instances = Instance.[ monotonic_clock ] in
  let cfg = Benchmark.cfg ~limit:1000 ~quota:(Time.second 0.4) ~kde:(Some 100) () in
  let results = Benchmark.all cfg instances test in
  Hashtbl.fold
    (fun name raw acc ->
      let ols =
        Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |]
      in
      let est = Analyze.one ols Instance.monotonic_clock raw in
      match Analyze.OLS.estimates est with
      | Some [ t ] -> (name, t) :: acc
      | _ -> acc)
    results []

let time_str t =
  if t > 1e6 then Printf.sprintf "%.3f ms" (t /. 1e6)
  else if t > 1e3 then Printf.sprintf "%.3f us" (t /. 1e3)
  else Printf.sprintf "%.1f ns" t

let run_bechamel_list title tests =
  print_endline title;
  Printf.printf "%-32s %14s\n" "benchmark" "time/run";
  List.iter
    (fun test ->
      List.iter
        (fun (name, t) -> Printf.printf "%-32s %14s\n" name (time_str t))
        (estimates test))
    tests;
  print_newline ()

let run_bechamel () =
  run_bechamel_list "== Bechamel micro-benchmarks (one per table/figure) ==" bechamel_tests

let run_bitmap_bench () =
  run_bechamel_list "== Bitmap kernel: packed words vs byte-per-page ==" bitmap_tests

(* Measured on this machine immediately before the batched kernels landed
   (same binary layout, same bechamel config); kept here so the JSON
   records the fig3 before/after delta alongside the bulk/scalar ratios. *)
let fig3_pre_pr_us = 120.625

let run_mem_bench () =
  print_endline "== Memory fast paths: bulk kernels vs scalar reference ==";
  Printf.printf "%-32s %14s\n" "benchmark" "time/run";
  let results =
    List.concat_map
      (fun test ->
        let es = estimates test in
        List.iter (fun (name, t) -> Printf.printf "%-32s %14s\n" name (time_str t)) es;
        es)
      mem_tests
  in
  let find name = List.assoc_opt name results in
  let fig3 =
    match estimates test_fig3 with (_, t) :: _ -> Some t | [] -> None
  in
  print_newline ();
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "{\n  \"unit\": \"ns/run unless noted\",\n  \"groups\": {\n";
  let n_sizes = List.length mem_sizes in
  List.iteri
    (fun si (n, size_name) ->
      Buffer.add_string buf (Printf.sprintf "    \"%s\": {\n      \"pages\": %d" size_name n);
      List.iter
        (fun op ->
          match
            ( find (Printf.sprintf "mem/%s-%s/bulk" op size_name),
              find (Printf.sprintf "mem/%s-%s/scalar" op size_name) )
          with
          | Some b, Some s ->
              Buffer.add_string buf
                (Printf.sprintf
                   ",\n      \"%s_bulk_ns\": %.1f,\n      \"%s_scalar_ns\": %.1f,\n      \"%s_speedup\": %.2f"
                   op b op s op (s /. b));
              Printf.printf "mem/%s-%s: %.2fx (scalar %s -> bulk %s)\n" op size_name
                (s /. b) (time_str s) (time_str b)
          | _ -> ())
        [ "dirty"; "read" ];
      Buffer.add_string buf
        (if si = n_sizes - 1 then "\n    }\n" else "\n    },\n"))
    mem_sizes;
  Buffer.add_string buf "  }";
  (match fig3 with
  | Some t ->
      Buffer.add_string buf
        (Printf.sprintf
           ",\n  \"fig3_cycle_us\": %.3f,\n  \"fig3_cycle_pre_pr_us\": %.3f,\n  \"fig3_speedup\": %.2f"
           (t /. 1e3) fig3_pre_pr_us (fig3_pre_pr_us /. (t /. 1e3)));
      Printf.printf "fig3/gh-microbench-cycle: %s (pre-PR %.3f us, %.2fx)\n" (time_str t)
        fig3_pre_pr_us
        (fig3_pre_pr_us /. (t /. 1e3))
  | None -> ());
  Buffer.add_string buf "\n}\n";
  let oc = open_out "BENCH_mem.json" in
  Buffer.output_buffer oc buf;
  close_out oc;
  print_endline "wrote BENCH_mem.json"

(* == Engine hot loop: calendar queue vs reference binary heap == *)

module Engine = Gh_sim.Engine
module Heap = Gh_sim.Heap
module Event_queue = Gh_sim.Event_queue

let churn_sizes = [ (256, "256"); (16_384, "16k"); (262_144, "256k") ]

(* Sustained churn at a fixed pending count: pop the earliest event,
   schedule a replacement one average event-gap later — the steady state the
   DES hot loop lives in. Replacement gaps scale with the population (a
   bigger sweep spreads its pending events over a wider horizon), and each
   run batches [churn_ops] pairs so per-sample harness noise amortizes. *)
let churn_ops = 64

let engine_churn_tests (p, size_name) =
  let gap tick = 1 + (tick * 7919 mod (48 * p)) in
  let heap = Heap.create () in
  let q = Event_queue.create ~dummy:() in
  for i = 1 to p do
    Heap.push heap ~key:(i * 24) ();
    Event_queue.push q ~key:(i * 24) ()
  done;
  let htick = ref 0 and qtick = ref 0 in
  [
    Test.make ~name:(Printf.sprintf "engine/churn-%s/calendar" size_name)
      (Staged.stage (fun () ->
           for _ = 1 to churn_ops do
             match Event_queue.pop q with
             | Some (k, ()) ->
                 incr qtick;
                 Event_queue.push q ~key:(k + gap !qtick) ()
             | None -> assert false
           done));
    Test.make ~name:(Printf.sprintf "engine/churn-%s/heap" size_name)
      (Staged.stage (fun () ->
           for _ = 1 to churn_ops do
             match Heap.pop heap with
             | Some (k, ()) ->
                 incr htick;
                 Heap.push heap ~key:(k + gap !htick) ()
             | None -> assert false
           done));
  ]

(* One full engine event storm: dispatch 20k chained events over a pending
   population of 1k, engine creation included (it is ~nothing). *)
let storm_events = 20_000
let storm_pending = 1_000

let test_engine_storm =
  Test.make ~name:"engine/storm-20k"
    (Staged.stage (fun () ->
         let e = Engine.create () in
         let fired = ref 0 in
         let rec cb () =
           incr fired;
           if !fired + storm_pending <= storm_events then
             Engine.schedule e ~after:(1 + (!fired land 7)) cb
         in
         for i = 1 to storm_pending do
           Engine.at e ~time:i cb
         done;
         Engine.run_all e))

(* Bulk admission of a burst arrival schedule: one [at_batch] pass vs the
   per-arrival [at] loop it replaced at the experiment call sites. *)
let admit_n = 10_000

let admit_list =
  let rng = Rng.create 11 in
  List.map
    (fun t -> (t, fun () -> ()))
    (Gh_workloads.Synthetic.burst rng ~rate_rps:50_000.0 ~n:admit_n)

let test_admit_loop =
  Test.make ~name:"engine/admit-10k/at-loop"
    (Staged.stage (fun () ->
         let e = Engine.create () in
         List.iter (fun (t, f) -> Engine.at e ~time:t f) admit_list))

let test_admit_batch =
  Test.make ~name:"engine/admit-10k/at-batch"
    (Staged.stage (fun () ->
         let e = Engine.create () in
         Engine.at_batch e admit_list))

(* Wall-clock of `gh_bench run all --seed 42` (default profile) on this
   machine, measured immediately before and after the engine moved to the
   calendar queue — same discipline as [fig3_pre_pr_us]. The sweep is
   dominated by per-request memory-model work (a ~45 us GH invoke dwarfs a
   ~0.2 us event dispatch), so the queue swap holds the sweep at parity
   while the queue-level rows above carry the speedup; the trajectory
   toward ROADMAP item 2 is recorded here so the next optimization knows
   its starting point. *)
let runall_wall_s_pre_pr = 40.7
let runall_wall_s_post_pr = 39.5
let runall_md5 = "09fde233dc7f8a93b99557ab479b780f"

(* Domain-parallel sweep runner + buffer pooling (the `-j` flag), measured
   on the CI container — which exposes a single CPU, so the -j2/-j4 rows
   show domain overhead under time-slicing, not scaling; the md5 equality
   across all job counts is the result that transfers (on a >= 4-core
   host the same sharding is where the wall-clock win lands). What does
   land here: recycling fork-clone/resize page arrays through
   Buffer_pool cut the serial sweep 64.3 s -> 53.7 s and major-heap
   allocation 10.3x (GH_BUFFER_POOL=off vs on, `--gc-stats`). *)
let runall_wall_s_j1 = 53.7
let runall_wall_s_j2 = 69.4
let runall_wall_s_j4 = 64.5
let runall_wall_s_j1_prepool = 64.3
let runall_gc_minor_words_prepool = 1.816e9
let runall_gc_major_words_prepool = 3.498e9
let runall_gc_minor_words = 1.780e9
let runall_gc_major_words = 0.339e9
let runall_host_cores = 1

let run_engine_bench () =
  print_endline "== Engine hot loop: calendar queue vs reference binary heap ==";
  Printf.printf "%-32s %14s\n" "benchmark" "time/run";
  let run tests =
    List.concat_map
      (fun test ->
        let es = estimates test in
        List.iter (fun (name, t) -> Printf.printf "%-32s %14s\n" name (time_str t)) es;
        es)
      tests
  in
  let churn = run (List.concat_map engine_churn_tests churn_sizes) in
  let rest = run [ test_engine_storm; test_admit_loop; test_admit_batch ] in
  let find results name = List.assoc_opt name results in
  print_newline ();
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "{\n  \"unit\": \"ns/run unless noted\",\n  \"churn\": {\n";
  let n_sizes = List.length churn_sizes in
  List.iteri
    (fun si (p, size_name) ->
      Buffer.add_string buf (Printf.sprintf "    \"%s\": {\n      \"pending\": %d" size_name p);
      (match
         ( find churn (Printf.sprintf "engine/churn-%s/calendar" size_name),
           find churn (Printf.sprintf "engine/churn-%s/heap" size_name) )
       with
      | Some c, Some h ->
          (* per-run figures cover [churn_ops] pop+push pairs *)
          let c = c /. float_of_int churn_ops and h = h /. float_of_int churn_ops in
          Buffer.add_string buf
            (Printf.sprintf
               ",\n      \"calendar_ns\": %.1f,\n      \"heap_ns\": %.1f,\n      \"speedup\": %.2f"
               c h (h /. c));
          Printf.printf "engine/churn-%s: %.2fx (heap %s -> calendar %s)\n" size_name (h /. c)
            (time_str h) (time_str c)
      | _ -> ());
      Buffer.add_string buf (if si = n_sizes - 1 then "\n    }\n" else "\n    },\n"))
    churn_sizes;
  Buffer.add_string buf "  }";
  (match find rest "engine/storm-20k" with
  | Some t ->
      Buffer.add_string buf
        (Printf.sprintf ",\n  \"storm_ns_per_event\": %.1f" (t /. float_of_int storm_events));
      Printf.printf "engine/storm: %.1f ns/event\n" (t /. float_of_int storm_events)
  | None -> ());
  (match (find rest "engine/admit-10k/at-batch", find rest "engine/admit-10k/at-loop") with
  | Some b, Some l ->
      Buffer.add_string buf
        (Printf.sprintf
           ",\n  \"admit_batch_ns_per_event\": %.1f,\n  \"admit_loop_ns_per_event\": %.1f,\n  \"admit_speedup\": %.2f"
           (b /. float_of_int admit_n)
           (l /. float_of_int admit_n)
           (l /. b));
      Printf.printf "engine/admit-10k: %.2fx (at-loop %s -> at-batch %s)\n" (l /. b)
        (time_str l) (time_str b)
  | _ -> ());
  Buffer.add_string buf
    (Printf.sprintf
       ",\n  \"runall_seed42_wall_s_pre_pr\": %.1f,\n  \"runall_seed42_wall_s\": %.1f,\n  \"runall_seed42_md5\": \"%s\""
       runall_wall_s_pre_pr runall_wall_s_post_pr runall_md5);
  Buffer.add_string buf
    (Printf.sprintf
       ",\n  \"runall_seed42_wall_s_j1_prepool\": %.1f,\n  \"runall_seed42_wall_s_j1\": %.1f,\n  \"runall_seed42_wall_s_j2\": %.1f,\n  \"runall_seed42_wall_s_j4\": %.1f,\n  \"runall_seed42_speedup_j4\": %.2f,\n  \"runall_seed42_pool_speedup_j1\": %.2f,\n  \"runall_gc_minor_words_prepool\": %.3e,\n  \"runall_gc_major_words_prepool\": %.3e,\n  \"runall_gc_minor_words\": %.3e,\n  \"runall_gc_major_words\": %.3e,\n  \"runall_host_cores\": %d\n}\n"
       runall_wall_s_j1_prepool runall_wall_s_j1 runall_wall_s_j2 runall_wall_s_j4
       (runall_wall_s_j1 /. runall_wall_s_j4)
       (runall_wall_s_j1_prepool /. runall_wall_s_j1)
       runall_gc_minor_words_prepool runall_gc_major_words_prepool
       runall_gc_minor_words runall_gc_major_words runall_host_cores);
  let oc = open_out "BENCH_engine.json" in
  Buffer.output_buffer oc buf;
  close_out oc;
  print_endline "wrote BENCH_engine.json"

let run_figures profile =
  print_endline "== Regenerating every table and figure of the evaluation ==";
  Gh_harness.Experiments.run_all profile Format.std_formatter;
  print_endline "";
  print_endline "== Ablations and extensions (beyond the paper's configurations) ==";
  Gh_harness.Experiments.run_extras profile Format.std_formatter

let () =
  let args = Array.to_list Sys.argv in
  let quick = List.mem "--quick" args in
  let bechamel_only = List.mem "--bechamel-only" args in
  let figures_only = List.mem "--figures-only" args in
  let bitmap_only = List.mem "--bitmap-only" args in
  let mem_only = List.mem "--mem-only" args in
  let engine_only = List.mem "--engine-only" args in
  let profile = if quick then Gh_harness.Config.quick else Gh_harness.Config.default in
  if bitmap_only then run_bitmap_bench ()
  else if mem_only then run_mem_bench ()
  else if engine_only then run_engine_bench ()
  else begin
    if not figures_only then begin
      run_bechamel ();
      run_bitmap_bench ();
      run_mem_bench ();
      run_engine_bench ()
    end;
    if not bechamel_only then run_figures profile
  end
